// Property-style parameterized sweeps over the substrate and the framework:
// statistics invariants, replay robustness under damaged traces, scheduler
// ordering properties, and conservation laws under randomized churn.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/enoki/replay.h"
#include "src/enoki/runtime.h"
#include "src/sched/cfs.h"
#include "src/sched/fifo.h"
#include "src/sched/shinjuku.h"
#include "src/sched/wfq.h"
#include "src/simkernel/bodies.h"
#include "src/workloads/pipe.h"

namespace enoki {
namespace {

// ---- LatencyRecorder: percentile accuracy across distributions ----

enum class Dist { kUniform, kExponential, kLogNormal, kBimodal };

class RecorderAccuracy : public ::testing::TestWithParam<std::tuple<Dist, double>> {};

TEST_P(RecorderAccuracy, WithinTwoPercentOfExact) {
  const auto [dist, pct] = GetParam();
  Rng rng(99);
  LatencyRecorder rec;
  std::vector<Duration> exact;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    double v = 0;
    switch (dist) {
      case Dist::kUniform:
        v = 100.0 + rng.NextDouble() * 1e6;
        break;
      case Dist::kExponential:
        v = rng.NextExponential(50'000.0);
        break;
      case Dist::kLogNormal:
        v = rng.NextLogNormal(10.0, 1.0);
        break;
      case Dist::kBimodal:
        v = rng.NextBernoulli(0.99) ? 4'000.0 : 10'000'000.0;
        break;
    }
    const Duration d = static_cast<Duration>(std::max(v, 1.0));
    rec.Record(d);
    exact.push_back(d);
  }
  std::sort(exact.begin(), exact.end());
  const size_t rank = std::min<size_t>(
      exact.size() - 1,
      static_cast<size_t>(std::ceil(pct / 100.0 * static_cast<double>(exact.size()))));
  const double want = static_cast<double>(exact[rank]);
  const double got = static_cast<double>(rec.Percentile(pct));
  EXPECT_NEAR(got, want, want * 0.02 + 1.0);
}

std::string DistParamName(const ::testing::TestParamInfo<std::tuple<Dist, double>>& info) {
  const char* name = "unknown";
  switch (std::get<0>(info.param)) {
    case Dist::kUniform:
      name = "uniform";
      break;
    case Dist::kExponential:
      name = "exponential";
      break;
    case Dist::kLogNormal:
      name = "lognormal";
      break;
    case Dist::kBimodal:
      name = "bimodal";
      break;
  }
  return std::string(name) + "_p" + std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, RecorderAccuracy,
    ::testing::Combine(::testing::Values(Dist::kUniform, Dist::kExponential, Dist::kLogNormal,
                                         Dist::kBimodal),
                       ::testing::Values(50.0, 90.0, 99.0, 99.9)),
    DistParamName);

// ---- Replay robustness: damaged traces degrade gracefully ----

std::vector<RecordEntry> RecordSmallWfqRun() {
  Recorder recorder(1 << 18);
  SetLockHooks(&recorder);
  {
    SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
    EnokiRuntime runtime(std::make_unique<WfqSched>(0));
    runtime.SetRecorder(&recorder);
    CfsClass cfs;
    const int policy = core.RegisterClass(&runtime);
    core.RegisterClass(&cfs);
    PipeBenchConfig cfg;
    cfg.messages = 60;
    EXPECT_TRUE(RunPipeBench(core, policy, cfg).completed);
  }
  SetLockHooks(nullptr);
  return recorder.TakeLog();
}

TEST(ReplayRobustness, EmptyTraceIsHarmless) {
  ReplayEngine engine({}, 8);
  engine.InstallHooks();
  auto module = std::make_unique<WfqSched>(0);
  module->Attach(engine.env());
  const auto result = engine.Run(module.get());
  EXPECT_EQ(result.calls_replayed, 0u);
  EXPECT_EQ(result.response_mismatches, 0u);
}

TEST(ReplayRobustness, TruncatedTraceStillReplays) {
  auto log = RecordSmallWfqRun();
  ASSERT_GT(log.size(), 100u);
  log.resize(log.size() / 2);  // simulate a run cut short
  ReplayEngine engine(log, 8);
  engine.InstallHooks();
  auto module = std::make_unique<WfqSched>(0);
  module->Attach(engine.env());
  const auto result = engine.Run(module.get());
  EXPECT_GT(result.calls_replayed, 0u);
  // A prefix of a valid trace is itself valid: no mismatches.
  EXPECT_EQ(result.response_mismatches, 0u);
}

TEST(ReplayRobustness, CallsOnlyTraceNeedsNoLockEntries) {
  auto log = RecordSmallWfqRun();
  std::vector<RecordEntry> calls_only;
  for (const auto& e : log) {
    if (e.type != RecordType::kLockCreate && e.type != RecordType::kLockAcquire &&
        e.type != RecordType::kLockRelease) {
      calls_only.push_back(e);
    }
  }
  ReplayEngine engine(calls_only, 8);
  engine.InstallHooks();
  auto module = std::make_unique<WfqSched>(0);
  module->Attach(engine.env());
  const auto result = engine.Run(module.get());
  EXPECT_EQ(result.calls_replayed, calls_only.size());
  // Without lock entries ordering is only per-kthread; the engine must not
  // hang or crash (mismatches are possible and acceptable here).
}

TEST(ReplayRobustness, ReplayTwiceFromSameTrace) {
  const auto log = RecordSmallWfqRun();
  for (int round = 0; round < 2; ++round) {
    ReplayEngine engine(log, 8);
    engine.InstallHooks();
    auto module = std::make_unique<WfqSched>(0);
    module->Attach(engine.env());
    const auto result = engine.Run(module.get());
    EXPECT_EQ(result.response_mismatches, 0u) << "round " << round;
  }
}

// ---- Shinjuku: FCFS ordering property ----

TEST(ShinjukuProperty, EqualTasksCompleteInArrivalOrder) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<ShinjukuSched>(0));
  CfsClass cfs;
  const int policy = core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  std::vector<int> completion_order;
  // 12 equal tasks arriving 50us apart on one core (ncpus stay busy).
  for (int i = 0; i < 12; ++i) {
    const int id = i;
    core.loop().ScheduleAfter(Microseconds(50) * (i + 1), [&core, &completion_order, id, policy] {
      auto done = std::make_shared<bool>(false);
      core.CreateTaskOn("t" + std::to_string(id),
                        MakeFnBody([done, &completion_order, id](SimContext&) -> Action {
                          if (!*done) {
                            *done = true;
                            return Action::Compute(Microseconds(200));
                          }
                          completion_order.push_back(id);
                          return Action::Exit();
                        }),
                        policy, 0, CpuMask::Single(1));
    });
  }
  core.Start();
  core.RunFor(Milliseconds(50));
  ASSERT_EQ(completion_order.size(), 12u);
  // FCFS with preempt-requeue of equal-length tasks preserves arrival order
  // for the *first* completions; verify global order is close to FIFO:
  // no task finishes more than 3 positions early.
  for (size_t pos = 0; pos < completion_order.size(); ++pos) {
    EXPECT_LE(std::abs(static_cast<int>(pos) - completion_order[pos]), 3)
        << "task " << completion_order[pos] << " at position " << pos;
  }
}

// ---- Conservation under randomized churn (seed sweep) ----

class RandomChurn : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomChurn, NothingLostNoTokensForged) {
  const uint64_t seed = GetParam();
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<WfqSched>(0));
  CfsClass cfs;
  const int policy = core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  auto rng = std::make_shared<Rng>(seed);
  for (int i = 0; i < 16; ++i) {
    auto left = std::make_shared<int>(30 + static_cast<int>(rng->NextBelow(40)));
    auto trng = std::make_shared<Rng>(rng->Fork());
    core.CreateTask("t", MakeFnBody([left, trng](SimContext&) -> Action {
                      if (*left == 0) {
                        return Action::Exit();
                      }
                      --*left;
                      switch (trng->NextBelow(4)) {
                        case 0:
                          return Action::Sleep(Nanoseconds(50'000 + trng->NextBelow(200'000)));
                        case 1:
                          return Action::Yield();
                        default:
                          return Action::Compute(Nanoseconds(20'000 + trng->NextBelow(150'000)));
                      }
                    }),
                    policy, static_cast<int>(rng->NextBelow(10)) - 5);
  }
  core.Start();
  EXPECT_TRUE(core.RunUntilAllExit(Seconds(60))) << "seed " << seed;
  EXPECT_EQ(core.pick_errors(), 0u) << "seed " << seed;
  for (int cpu = 0; cpu < core.ncpus(); ++cpu) {
    EXPECT_EQ(runtime.QueuedCount(cpu), 0u) << "seed " << seed << " cpu " << cpu;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChurn, ::testing::Values(1, 7, 42, 1234, 99999));

// ---- CFS NUMA property: no cross-node pull for small imbalances ----

TEST(CfsNuma, SmallImbalanceStaysOnNode) {
  SchedCore core(MachineSpec::TwoSocket80(), SimCosts{});
  CfsClass cfs;
  core.RegisterClass(&cfs);
  // One extra task on node 0 (41 tasks on 40 cores); node 1 idle. The
  // single-task imbalance is below the threshold: it must NOT migrate to
  // node 1; instead the node-0 cores share.
  std::vector<Task*> tasks;
  CpuMask node0;
  for (int c = 0; c < 40; ++c) {
    node0.Set(c);
  }
  for (int i = 0; i < 41; ++i) {
    // Affinity technically allows both nodes; placement should still prefer
    // node 0 spreading... so pin creation there but leave wake affinity open.
    tasks.push_back(core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(4), Milliseconds(1)),
                                    0));
  }
  core.Start();
  ASSERT_TRUE(core.RunUntilAllExit(Seconds(10)));
  // 41 x 4ms over 80 cores: everything fits; main check is completion and
  // that migrations stayed bounded (no ping-ponging across sockets).
  EXPECT_LT(cfs.migrations(), 50u);
}

// ---- Hint queue properties ----

class HintCapacity : public ::testing::TestWithParam<size_t> {};

TEST_P(HintCapacity, AcceptsExactlyCapacity) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<FifoSched>(0));
  CfsClass cfs;
  core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  const size_t cap = GetParam();
  const int q = runtime.CreateHintQueue(cap);
  size_t accepted = 0;
  for (size_t i = 0; i < 4 * cap + 8; ++i) {
    if (runtime.SendHint(q, HintBlob{})) {
      ++accepted;
    }
  }
  // The hint-queue layer rounds the requested capacity up to a power of
  // two before constructing the ring (which requires pow2).
  size_t pow2 = 1;
  while (pow2 < cap) {
    pow2 <<= 1;
  }
  EXPECT_EQ(accepted, pow2);
}

INSTANTIATE_TEST_SUITE_P(Capacities, HintCapacity, ::testing::Values(1, 3, 16, 100, 1024));

}  // namespace
}  // namespace enoki
