// Tests for the Enoki framework: Schedulable token discipline, runtime
// validation and pnt_err routing, transfer state, live upgrade, hint queues,
// the record system, and userspace replay.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "src/enoki/api.h"
#include "src/enoki/replay.h"
#include "src/enoki/runtime.h"
#include "src/sched/cfs.h"
#include "src/sched/fifo.h"
#include "src/sched/wfq.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sharded_event_loop.h"
#include "src/workloads/pipe.h"

namespace enoki {
namespace {

// ---- Schedulable ----

TEST(Schedulable, IsMoveOnly) {
  static_assert(!std::is_copy_constructible_v<Schedulable>);
  static_assert(!std::is_copy_assignable_v<Schedulable>);
  static_assert(std::is_move_constructible_v<Schedulable>);
}

TEST(Schedulable, MoveInvalidatesSource) {
  Schedulable a = SchedulableMinter::Mint(42, 3, 7);
  EXPECT_TRUE(a.valid());
  Schedulable b = std::move(a);
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): the property under test
  EXPECT_EQ(b.pid(), 42u);
  EXPECT_EQ(b.cpu(), 3);
  EXPECT_EQ(SchedulableMinter::Generation(b), 7u);
}

// ---- TransferState ----

TEST(TransferState, RoundTripsTypedState) {
  struct State {
    int x;
  };
  TransferState s = TransferState::Of(std::make_unique<State>(State{99}));
  EXPECT_FALSE(s.empty());
  auto out = s.Take<State>();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->x, 99);
  EXPECT_TRUE(s.empty());
}

TEST(TransferState, TypeMismatchYieldsNull) {
  struct A {
    int x;
  };
  struct B {
    int y;
  };
  TransferState s = TransferState::Of(std::make_unique<A>(A{1}));
  EXPECT_EQ(s.Take<B>(), nullptr);
}

TEST(TransferState, EmptyTakeIsNull) {
  TransferState s;
  EXPECT_TRUE(s.empty());
  struct A {
    int x;
  };
  EXPECT_EQ(s.Take<A>(), nullptr);
}

// ---- A deliberately buggy module for validation tests ----

// Returns a token for the wrong CPU from pick_next_task: the classic bug
// section 3.1's Schedulable check exists to catch.
class WrongCpuSched : public FifoSched {
 public:
  explicit WrongCpuSched(int policy) : FifoSched(policy) {}

  std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) override {
    auto token = FifoSched::PickNextTask(cpu, std::move(curr));
    if (token.has_value() && !sabotaged_) {
      sabotaged_ = true;
      // Forge a token for another CPU by re-minting (only possible here
      // because tests sit inside the framework boundary; real schedulers
      // cannot mint).
      Schedulable forged =
          SchedulableMinter::Mint(token->pid(), (cpu + 1) % 8, SchedulableMinter::Generation(*token));
      stash_.push_back(std::move(*token));
      return forged;
    }
    return token;
  }

  void PntErr(int cpu, std::optional<Schedulable> sched) override { ++pnt_errs_; }

  int pnt_errs() const { return pnt_errs_; }

 private:
  bool sabotaged_ = false;
  std::vector<Schedulable> stash_;
  int pnt_errs_ = 0;
};

TEST(Runtime, WrongCpuTokenRoutedToPntErr) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  auto module = std::make_unique<WrongCpuSched>(0);
  WrongCpuSched* raw = module.get();
  EnokiRuntime runtime(std::move(module));
  CfsClass cfs;
  const int policy = core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(1), Milliseconds(1)), policy);
  core.Start();
  core.RunFor(Milliseconds(50));
  EXPECT_GE(raw->pnt_errs(), 1);
  EXPECT_GE(runtime.pick_errors(), 1u);
  EXPECT_GE(core.pick_errors(), 1u);
}

TEST(Runtime, StaleTokenGenerationRejected) {
  // After a task blocks, any token minted before the block is stale. We
  // simulate a module holding a stale token via a module that re-returns the
  // last token it saw even after TaskBlocked.
  class StaleSched : public FifoSched {
   public:
    explicit StaleSched(int policy) : FifoSched(policy) {}
    void PntErr(int cpu, std::optional<Schedulable> sched) override { ++pnt_errs; }
    int pnt_errs = 0;
  };
  // Covered behaviourally by WrongCpuTokenRoutedToPntErr; here verify the
  // generation check directly.
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<StaleSched>(0));
  CfsClass cfs;
  core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  Task* t = core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(1), Milliseconds(1)), 0);
  // A token minted with a stale generation must not validate.
  Schedulable stale = SchedulableMinter::Mint(t->pid(), t->cpu(), 0);
  EXPECT_EQ(SchedulableMinter::Generation(stale), 0u);
  // The runtime's mint bumped the generation at enqueue, so 0 is stale.
  core.Start();
  core.RunFor(Milliseconds(5));
  SUCCEED();
}

TEST(Runtime, FrameworkOverheadCharged) {
  // The same workload takes longer under the Enoki framework than under an
  // overhead-free native class, by roughly 4 calls x enoki_call_ns per
  // schedule operation (section 5.2).
  auto run = [](bool use_enoki) {
    SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
    CfsClass cfs;
    std::unique_ptr<EnokiRuntime> rt;
    int policy;
    if (use_enoki) {
      rt = std::make_unique<EnokiRuntime>(std::make_unique<WfqSched>(0));
      policy = core.RegisterClass(rt.get());
      core.RegisterClass(&cfs);
    } else {
      policy = core.RegisterClass(&cfs);
    }
    PipeBenchConfig cfg;
    cfg.messages = 2000;
    return RunPipeBench(core, policy, cfg).usec_per_wakeup;
  };
  const double cfs_lat = run(false);
  const double enoki_lat = run(true);
  EXPECT_GT(enoki_lat, cfs_lat + 0.2);  // framework adds measurable latency
  EXPECT_LT(enoki_lat, cfs_lat + 1.5);  // ...but well under ghOSt-scale costs
}

// ---- Hints ----

TEST(Runtime, HintsReachModuleBeforePick) {
  class HintCounter : public FifoSched {
   public:
    explicit HintCounter(int policy) : FifoSched(policy) {}
    void ParseHint(const HintBlob& hint) override {
      ++hints;
      last = hint;
    }
    int hints = 0;
    HintBlob last;
  };
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  auto module = std::make_unique<HintCounter>(0);
  HintCounter* raw = module.get();
  EnokiRuntime runtime(std::move(module));
  CfsClass cfs;
  core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  const int q = runtime.CreateHintQueue(64);
  HintBlob hint;
  hint.w[0] = 1234;
  hint.w[1] = 5678;
  EXPECT_TRUE(runtime.SendHint(q, hint));
  core.CreateTask("t", std::make_unique<CpuBoundBody>(Microseconds(10), Microseconds(10)), 0);
  core.Start();
  core.RunFor(Milliseconds(1));
  EXPECT_EQ(raw->hints, 1);
  EXPECT_EQ(raw->last.w[0], 1234u);
  EXPECT_EQ(raw->last.w[1], 5678u);
}

TEST(Runtime, ReverseQueueDeliversToUser) {
  class RevSender : public FifoSched {
   public:
    explicit RevSender(int policy) : FifoSched(policy) {}
    void ParseHint(const HintBlob& hint) override {
      HintBlob reply;
      reply.w[0] = hint.w[0] + 1;
      env_->PushRevHint(0, reply);
    }
  };
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<RevSender>(0));
  CfsClass cfs;
  core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  const int q = runtime.CreateHintQueue(64);
  const int rq = runtime.CreateRevQueue(64);
  HintBlob hint;
  hint.w[0] = 7;
  runtime.SendHint(q, hint);
  core.CreateTask("t", std::make_unique<CpuBoundBody>(Microseconds(10), Microseconds(10)), 0);
  core.Start();
  core.RunFor(Milliseconds(1));
  auto reply = runtime.PollRevHint(rq);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->w[0], 8u);
}

TEST(Runtime, HintQueueOverrunDropsNotCrashes) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<FifoSched>(0));
  CfsClass cfs;
  core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  const int q = runtime.CreateHintQueue(4);
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    if (runtime.SendHint(q, HintBlob{})) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 4);
}

// ---- Live upgrade ----

TEST(Upgrade, StatePreservedAcrossUpgrade) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<WfqSched>(0));
  CfsClass cfs;
  const int policy = core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  std::vector<Task*> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(core.CreateTask(
        "t", std::make_unique<CpuBoundBody>(Milliseconds(20), Milliseconds(1)), policy));
  }
  core.loop().ScheduleAfter(Milliseconds(5), [&] {
    auto report = runtime.Upgrade(std::make_unique<WfqSched>(0));
    EXPECT_TRUE(report.ok);
  });
  core.Start();
  ASSERT_TRUE(core.RunUntilAllExit(Seconds(10)));
  EXPECT_EQ(runtime.upgrades(), 1u);
  EXPECT_EQ(core.pick_errors(), 0u);
  for (Task* t : tasks) {
    EXPECT_EQ(t->state(), TaskState::kDead);
    EXPECT_GE(t->total_runtime(), Milliseconds(20));
  }
}

TEST(Upgrade, PauseScalesWithCoreCount) {
  SimCosts costs;
  SchedCore small(MachineSpec::OneSocket8(), costs);
  EnokiRuntime rt_small(std::make_unique<WfqSched>(0));
  CfsClass cfs1;
  small.RegisterClass(&rt_small);
  small.RegisterClass(&cfs1);
  auto r1 = rt_small.Upgrade(std::make_unique<WfqSched>(0));

  SchedCore big(MachineSpec::TwoSocket80(), costs);
  EnokiRuntime rt_big(std::make_unique<WfqSched>(0));
  CfsClass cfs2;
  big.RegisterClass(&rt_big);
  big.RegisterClass(&cfs2);
  auto r2 = rt_big.Upgrade(std::make_unique<WfqSched>(0));

  EXPECT_TRUE(r1.ok);
  EXPECT_TRUE(r2.ok);
  EXPECT_GT(r2.pause_ns, r1.pause_ns);
  // Paper: ~1.5 us on 8 cores, ~10 us on 80 cores.
  EXPECT_NEAR(ToMicroseconds(r1.pause_ns), 1.5, 1.0);
  EXPECT_NEAR(ToMicroseconds(r2.pause_ns), 10.0, 3.0);
}

TEST(Upgrade, IncompatibleTransferStartsFresh) {
  // Upgrading WFQ -> FIFO: transfer types differ; the new module must come
  // up empty but functional (tasks re-enter it via subsequent events).
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<WfqSched>(0));
  CfsClass cfs;
  const int policy = core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  // Tasks that block/wake so they re-register with the new module.
  for (int i = 0; i < 3; ++i) {
    auto steps = std::make_shared<int>(40);
    core.CreateTask("t", MakeFnBody([steps](SimContext&) -> Action {
                      if (*steps == 0) {
                        return Action::Exit();
                      }
                      --*steps;
                      if (*steps % 2 == 0) {
                        return Action::Compute(Microseconds(300));
                      }
                      return Action::Sleep(Microseconds(200));
                    }),
                    policy);
  }
  core.loop().ScheduleAfter(Milliseconds(2), [&] {
    auto report = runtime.Upgrade(std::make_unique<FifoSched>(0));
    EXPECT_TRUE(report.ok);
  });
  core.Start();
  EXPECT_TRUE(core.RunUntilAllExit(Seconds(10)));
}

TEST(Upgrade, ChainedUpgrades) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<WfqSched>(0));
  CfsClass cfs;
  const int policy = core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(30), Milliseconds(1)), policy);
  for (int i = 1; i <= 3; ++i) {
    core.loop().ScheduleAfter(Milliseconds(5) * i, [&] {
      EXPECT_TRUE(runtime.Upgrade(std::make_unique<WfqSched>(0)).ok);
    });
  }
  core.Start();
  ASSERT_TRUE(core.RunUntilAllExit(Seconds(10)));
  EXPECT_EQ(runtime.upgrades(), 3u);
  EXPECT_EQ(core.pick_errors(), 0u);
}

// ---- Live upgrade failure paths ----

// An old module that will not quiesce: prepare throws.
class RefusesQuiesceSched : public WfqSched {
 public:
  using WfqSched::WfqSched;
  TransferState ReregisterPrepare() override { throw std::runtime_error("still busy"); }
};

// A new module that rejects whatever state it is handed: init throws.
class RejectsStateSched : public WfqSched {
 public:
  using WfqSched::WfqSched;
  void ReregisterInit(TransferState state) override { throw std::runtime_error("bad state"); }
};

TEST(Upgrade, NullModuleReportsError) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<WfqSched>(0));
  CfsClass cfs;
  core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  auto report = runtime.Upgrade(nullptr);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.error, "null module");
  EXPECT_EQ(report.pause_ns, 0);
  EXPECT_EQ(runtime.upgrades(), 0u);
}

TEST(Upgrade, PrepareFailureAbortsBeforeSwap) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<RefusesQuiesceSched>(0));
  CfsClass cfs;
  const int policy = core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  EnokiSched* old_module = runtime.module();
  auto report = runtime.Upgrade(std::make_unique<WfqSched>(0));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("refused to quiesce"), std::string::npos);
  // The old module stays installed and keeps scheduling.
  EXPECT_EQ(runtime.module(), old_module);
  EXPECT_EQ(runtime.upgrades(), 0u);
  core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(2), Milliseconds(1)), policy);
  core.Start();
  EXPECT_TRUE(core.RunUntilAllExit(Seconds(5)));
}

// An outgoing module that predates checkpoint support (SaveCheckpoint
// declines), forcing the legacy non-transactional failure path.
class UncheckpointableSched : public WfqSched {
 public:
  using WfqSched::WfqSched;
  bool SaveCheckpoint(ByteWriter* out) const override { return false; }
};

TEST(Upgrade, InitFailureRollsBackToCheckpointedPredecessor) {
  // The outgoing WFQ module supports checkpoints, so a failed init is a
  // transaction abort: the predecessor is reinstalled with its state
  // restored, and the broken incoming module never owns a task.
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<WfqSched>(0));
  CfsClass cfs;
  core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  EnokiSched* old_module = runtime.module();
  auto report = runtime.Upgrade(std::make_unique<RejectsStateSched>(0));
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.checkpointed);
  EXPECT_TRUE(report.rolled_back);
  EXPECT_NE(report.error.find("rolled back"), std::string::npos);
  EXPECT_GT(report.pause_ns, 0);
  EXPECT_EQ(runtime.module(), old_module);
  EXPECT_EQ(runtime.rollbacks(), 1u);
  // A rolled-back transaction is not an upgrade.
  EXPECT_EQ(runtime.upgrades(), 0u);
}

TEST(Upgrade, InitFailureWithoutCheckpointReportsError) {
  // Legacy path: the outgoing module cannot checkpoint, so the swap cannot
  // be undone. Without a watchdog the runtime can only report: the old
  // state is gone and the broken new module stays installed.
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<UncheckpointableSched>(0));
  CfsClass cfs;
  core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  auto next = std::make_unique<RejectsStateSched>(0);
  EnokiSched* incoming = next.get();
  auto report = runtime.Upgrade(std::move(next));
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.checkpointed);
  EXPECT_FALSE(report.rolled_back);
  EXPECT_NE(report.error.find("rejected transferred state"), std::string::npos);
  EXPECT_GT(report.pause_ns, 0);
  EXPECT_EQ(runtime.module(), incoming);
  // Failed swaps no longer count as upgrades.
  EXPECT_EQ(runtime.upgrades(), 0u);
}

TEST(Upgrade, PrepareFailureChargesNoPauseAndCountsNoUpgrade) {
  // Regression: a pre-swap abort must not charge any blackout to the CPUs
  // and must leave the upgrade counter untouched.
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<RefusesQuiesceSched>(0));
  CfsClass cfs;
  core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  auto report = runtime.Upgrade(std::make_unique<WfqSched>(0));
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.pause_ns, 0);
  EXPECT_FALSE(report.rolled_back);
  EXPECT_EQ(runtime.upgrades(), 0u);
  EXPECT_EQ(runtime.rollbacks(), 0u);
}

// ---- Record & replay ----

std::vector<RecordEntry> RecordWfqPipeRun(uint64_t messages) {
  Recorder recorder(1 << 20);
  SetLockHooks(&recorder);
  std::vector<RecordEntry> log;
  {
    SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
    EnokiRuntime runtime(std::make_unique<WfqSched>(0));
    runtime.SetRecorder(&recorder);
    CfsClass cfs;
    const int policy = core.RegisterClass(&runtime);
    core.RegisterClass(&cfs);
    PipeBenchConfig cfg;
    cfg.messages = messages;
    EXPECT_TRUE(RunPipeBench(core, policy, cfg).completed);
  }
  SetLockHooks(nullptr);
  log = recorder.TakeLog();
  EXPECT_EQ(recorder.dropped(), 0u);
  return log;
}

TEST(Record, CapturesCallsAndLocks) {
  auto log = RecordWfqPipeRun(100);
  ASSERT_GT(log.size(), 100u);
  int picks = 0;
  int lock_ops = 0;
  int creates = 0;
  for (const auto& e : log) {
    if (e.type == RecordType::kPickNextTask) {
      ++picks;
    }
    if (e.type == RecordType::kLockAcquire || e.type == RecordType::kLockRelease) {
      ++lock_ops;
    }
    if (e.type == RecordType::kLockCreate) {
      ++creates;
    }
  }
  EXPECT_GT(picks, 100);
  EXPECT_GT(lock_ops, 100);
  EXPECT_GE(creates, 1);
  // Sequence numbers are strictly increasing.
  for (size_t i = 1; i < log.size(); ++i) {
    EXPECT_GT(log[i].seq, log[i - 1].seq);
  }
}

TEST(Record, FileRoundTrip) {
  auto log = RecordWfqPipeRun(50);
  Recorder recorder(1024);
  // Build a recorder holding the log for SaveToFile.
  for (const auto& e : log) {
    RecordEntry copy = e;
    recorder.Append(copy);
  }
  recorder.Drain();
  const std::string path = "/tmp/enoki_record_test.log";
  ASSERT_TRUE(recorder.SaveToFile(path));
  std::vector<RecordEntry> loaded;
  ASSERT_TRUE(Recorder::LoadFromFile(path, &loaded));
  ASSERT_EQ(loaded.size(), recorder.log().size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(static_cast<int>(loaded[i].type), static_cast<int>(recorder.log()[i].type));
    EXPECT_EQ(loaded[i].pid, recorder.log()[i].pid);
    EXPECT_EQ(loaded[i].resp0, recorder.log()[i].resp0);
  }
}

TEST(Replay, WfqReplayMatchesRecordedResponses) {
  auto log = RecordWfqPipeRun(300);
  ReplayEngine engine(log, 8);
  engine.InstallHooks();
  auto module = std::make_unique<WfqSched>(0);
  module->Attach(engine.env());
  auto result = engine.Run(module.get());
  EXPECT_GT(result.calls_replayed, 600u);
  EXPECT_EQ(result.response_mismatches, 0u);
  EXPECT_EQ(result.lock_timeouts, 0u);
}

TEST(Replay, DivergentModuleDetected) {
  // Record WFQ scheduling several CPU-bound tasks of different priorities on
  // one core: picks are ordered by weighted vruntime, which plain FIFO will
  // not reproduce. Replay validation must flag the divergence.
  Recorder recorder(1 << 20);
  SetLockHooks(&recorder);
  {
    SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
    EnokiRuntime runtime(std::make_unique<WfqSched>(0));
    runtime.SetRecorder(&recorder);
    CfsClass cfs;
    const int policy = core.RegisterClass(&runtime);
    core.RegisterClass(&cfs);
    for (int i = 0; i < 4; ++i) {
      core.CreateTaskOn("t" + std::to_string(i),
                        std::make_unique<CpuBoundBody>(Milliseconds(8), Microseconds(400)),
                        policy, i * 5 - 10, CpuMask::Single(0));
    }
    core.Start();
    ASSERT_TRUE(core.RunUntilAllExit(Seconds(10)));
  }
  SetLockHooks(nullptr);
  auto log = recorder.TakeLog();
  ASSERT_EQ(recorder.dropped(), 0u);
  ReplayEngine engine(log, 8);
  engine.InstallHooks();
  auto module = std::make_unique<FifoSched>(0);
  module->Attach(engine.env());
  auto result = engine.Run(module.get());
  EXPECT_GT(result.response_mismatches, 0u);
}

TEST(Record, OverrunCounted) {
  Recorder recorder(8);
  for (int i = 0; i < 100; ++i) {
    recorder.Append(RecordEntry{});
  }
  EXPECT_GT(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.appended(), 100u);
}

TEST(Record, DrainTaskEmptiesRing) {
  Recorder recorder(1 << 12);
  for (int i = 0; i < 100; ++i) {
    recorder.Append(RecordEntry{});
  }
  EXPECT_EQ(recorder.Drain(), 100u);
  EXPECT_EQ(recorder.log().size(), 100u);
}

// ---- Sharded merge recording ----

// The committed cross-shard merge sequence streams into the trace as
// kShardMerge entries; the recorded sequence must be identical for any
// host thread count (it is the determinism contract, made auditable).
TEST(Record, ShardMergeSequenceIdenticalAcrossThreads) {
  auto run = [](int threads) {
    ShardedEventLoop::Options opts;
    opts.nshards = 4;
    opts.epoch_ns = 1'000;
    opts.threads = threads;
    ShardedEventLoop engine(opts);
    Recorder recorder(1 << 12);
    AttachShardMergeRecorder(engine, &recorder);
    // A deterministic cross-shard ring: each shard forwards a token around
    // the machine a few times.
    std::function<void(int, int)> hop = [&](int s, int depth) {
      if (depth == 0) {
        return;
      }
      engine.PostCross(s, (s + 1) % 4, 1'000 + static_cast<Duration>(depth % 7) * 100,
                       [&hop, s, depth] { hop((s + 1) % 4, depth - 1); });
    };
    for (int s = 0; s < 4; ++s) {
      engine.shard(s).ScheduleAt(static_cast<Time>(50 * (s + 1)), [&hop, s] { hop(s, 20); });
    }
    engine.RunUntilIdle();
    recorder.Drain();
    std::vector<std::string> lines;
    for (const RecordEntry& e : recorder.log()) {
      EXPECT_EQ(e.type, RecordType::kShardMerge);
      lines.push_back(std::to_string(e.time) + "/" + std::to_string(e.arg[0]) + ":" +
                      std::to_string(e.arg[1]) + ">" + std::to_string(e.arg[2]) + "#" +
                      std::to_string(e.arg[3]));
    }
    EXPECT_EQ(lines.size(), engine.cross_messages());
    return lines;
  };
  const std::vector<std::string> t1 = run(1);
  EXPECT_EQ(t1.size(), 80u);  // 4 tokens x 20 hops
  EXPECT_EQ(run(2), t1);
  EXPECT_EQ(run(4), t1);
}

TEST(Record, ShardMergeEntriesSurviveSaveLoad) {
  Recorder recorder(64);
  RecordEntry e;
  e.type = RecordType::kShardMerge;
  e.arg[0] = 12'345;
  e.arg[1] = 1;
  e.arg[2] = 3;
  e.arg[3] = 42;
  recorder.SetTime(12'345);
  recorder.Append(e);
  recorder.Drain();
  const std::string path = ::testing::TempDir() + "/shard_merge_trace.txt";
  ASSERT_TRUE(recorder.SaveToFile(path));
  std::vector<RecordEntry> loaded;
  ASSERT_TRUE(Recorder::LoadFromFile(path, &loaded));
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].type, RecordType::kShardMerge);
  EXPECT_EQ(loaded[0].arg[0], 12'345u);
  EXPECT_EQ(loaded[0].arg[3], 42u);
  EXPECT_STREQ(RecordTypeName(loaded[0].type), "shard_merge");
}

}  // namespace
}  // namespace enoki
