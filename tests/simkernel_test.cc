// Tests for the simulated kernel: task lifecycle, wake/block semantics,
// preemption, cost charging, idle-exit latencies, and scheduling-class
// dispatch — using a minimal native FIFO class to isolate the core from any
// real scheduler policy.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_core.h"
#include "src/workloads/multitenant.h"

namespace enoki {
namespace {

// Minimal native scheduling class: per-CPU FIFO, no balancing.
class TestFifoClass : public SchedClass {
 public:
  const char* name() const override { return "test_fifo"; }
  void Attach(SchedCore* core) override {
    SchedClass::Attach(core);
    queues_.resize(static_cast<size_t>(core->ncpus()));
  }
  int SelectTaskRq(Task* t, int prev_cpu, bool wake_sync, bool is_new) override {
    if (is_new) {
      next_ = (next_ + 1) % core_->ncpus();
      for (int i = 0; i < core_->ncpus(); ++i) {
        const int c = (next_ + i) % core_->ncpus();
        if (t->affinity().Test(c)) {
          return c;
        }
      }
    }
    return t->affinity().Test(prev_cpu) ? prev_cpu : t->affinity().First();
  }
  void EnqueueTask(int cpu, Task* t, bool wakeup) override { queues_[cpu].push_back(t); }
  void DequeueTask(int cpu, Task* t, DequeueReason reason) override {
    for (auto& q : queues_) {
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (*it == t) {
          q.erase(it);
          return;
        }
      }
    }
  }
  Task* PickNextTask(int cpu) override {
    if (queues_[cpu].empty()) {
      return nullptr;
    }
    Task* t = queues_[cpu].front();
    queues_[cpu].pop_front();
    return t;
  }
  void TaskPreempted(int cpu, Task* t) override { queues_[cpu].push_back(t); }
  void TaskYielded(int cpu, Task* t) override { queues_[cpu].push_back(t); }
  void TaskTick(int cpu, Task* t) override {
    if (!queues_[cpu].empty()) {
      core_->SetNeedResched(cpu);  // round robin at tick
    }
  }

  size_t depth(int cpu) const { return queues_[cpu].size(); }

 private:
  std::vector<std::deque<Task*>> queues_;
  int next_ = -1;
};

struct Sim {
  explicit Sim(MachineSpec spec = MachineSpec::OneSocket8(), SimCosts costs = SimCosts{})
      : core(spec, costs) {
    core.RegisterClass(&fifo);
  }
  SchedCore core;
  TestFifoClass fifo;
};

TEST(SimKernel, TaskRunsAndExits) {
  Sim sim;
  Task* t = sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(5), Milliseconds(1)), 0);
  sim.core.Start();
  EXPECT_TRUE(sim.core.RunUntilAllExit(Seconds(1)));
  EXPECT_EQ(t->state(), TaskState::kDead);
  EXPECT_GE(t->total_runtime(), Milliseconds(5));
}

TEST(SimKernel, RuntimeAccountingMatchesWork) {
  Sim sim;
  Task* t = sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(10), Milliseconds(1)), 0);
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(1)));
  // Runtime covers the compute; action processing adds nothing here.
  EXPECT_GE(t->total_runtime(), Milliseconds(10));
  EXPECT_LE(t->total_runtime(), Milliseconds(11));
}

TEST(SimKernel, NewTasksSpreadAcrossCpus) {
  Sim sim;
  std::vector<Task*> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(sim.core.CreateTask(
        "t", std::make_unique<CpuBoundBody>(Milliseconds(2), Milliseconds(1)), 0));
  }
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(1)));
  // With one task per CPU all should finish at roughly the same time.
  for (Task* t : tasks) {
    EXPECT_GE(t->total_runtime(), Milliseconds(2));
  }
  EXPECT_LE(ToSeconds(sim.core.now()), 0.01);
}

TEST(SimKernel, BlockAndWakeRoundTrip) {
  Sim sim;
  WaitQueue wq("test");
  auto steps = std::make_shared<int>(0);
  sim.core.CreateTask("sleeper", MakeFnBody([&wq, steps](SimContext&) -> Action {
                        if (*steps == 0) {
                          *steps = 1;
                          return Action::Block(&wq);
                        }
                        return Action::Exit();
                      }),
                      0);
  sim.core.CreateTask("waker", MakeFnBody([&wq](SimContext&) -> Action {
                        static int s = 0;
                        if (s == 0) {
                          s = 1;
                          return Action::Compute(Microseconds(50));
                        }
                        if (s == 1) {
                          s = 2;
                          return Action::Wake(&wq);
                        }
                        return Action::Exit();
                      }),
                      0);
  sim.core.Start();
  EXPECT_TRUE(sim.core.RunUntilAllExit(Seconds(1)));
}

TEST(SimKernel, CountingSignalsPreventLostWakeups) {
  Sim sim;
  WaitQueue wq("test");
  // Waker signals before sleeper ever blocks: the signal must be consumed.
  auto wsteps = std::make_shared<int>(0);
  sim.core.CreateTask("waker", MakeFnBody([&wq, wsteps](SimContext&) -> Action {
                        if (*wsteps == 0) {
                          *wsteps = 1;
                          return Action::Wake(&wq);
                        }
                        return Action::Exit();
                      }),
                      0);
  auto ssteps = std::make_shared<int>(0);
  sim.core.CreateTask("sleeper", MakeFnBody([&wq, ssteps](SimContext&) -> Action {
                        if (*ssteps == 0) {
                          *ssteps = 1;
                          return Action::Compute(Milliseconds(1));  // arrive late
                        }
                        if (*ssteps == 1) {
                          *ssteps = 2;
                          return Action::Block(&wq);  // consumes pending signal
                        }
                        return Action::Exit();
                      }),
                      0);
  sim.core.Start();
  EXPECT_TRUE(sim.core.RunUntilAllExit(Seconds(1)));
}

TEST(SimKernel, SleepWakesAfterDuration) {
  Sim sim;
  auto woke_at = std::make_shared<Time>(0);
  auto steps = std::make_shared<int>(0);
  sim.core.CreateTask("t", MakeFnBody([steps, woke_at](SimContext& ctx) -> Action {
                        if (*steps == 0) {
                          *steps = 1;
                          return Action::Sleep(Milliseconds(3));
                        }
                        *woke_at = ctx.now();
                        return Action::Exit();
                      }),
                      0);
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(1)));
  EXPECT_GE(*woke_at, Milliseconds(3));
  EXPECT_LE(*woke_at, Milliseconds(4));
}

TEST(SimKernel, TickPreemptsWithRoundRobin) {
  // Two CPU-bound tasks pinned to one core share it via tick preemption.
  Sim sim;
  Task* a = sim.core.CreateTaskOn("a", std::make_unique<CpuBoundBody>(Milliseconds(20), Milliseconds(10)), 0,
                                  0, CpuMask::Single(0));
  Task* b = sim.core.CreateTaskOn("b", std::make_unique<CpuBoundBody>(Milliseconds(20), Milliseconds(10)), 0,
                                  0, CpuMask::Single(0));
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(10)));
  // Both ran for 20ms on a shared core: elapsed ~40ms, and neither task
  // finished before the other had started (interleaving).
  EXPECT_GE(sim.core.now(), Milliseconds(40));
  EXPECT_GT(a->switch_in_count(), 1u);
  EXPECT_GT(b->switch_in_count(), 1u);
}

TEST(SimKernel, WakeLatencyRecorded) {
  Sim sim;
  auto steps = std::make_shared<int>(0);
  sim.core.CreateTask("t", MakeFnBody([steps](SimContext&) -> Action {
                        if (*steps == 0) {
                          *steps = 1;
                          return Action::Sleep(Milliseconds(1));
                        }
                        return Action::Exit();
                      }),
                      0);
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(1)));
  // New-task dispatch + post-sleep dispatch.
  EXPECT_GE(sim.core.wake_latency().count(), 2u);
}

TEST(SimKernel, WakeLatencyHookFires) {
  Sim sim;
  int hook_calls = 0;
  sim.core.set_wake_latency_hook([&](Task*, Duration) { ++hook_calls; });
  sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Microseconds(10), Microseconds(10)), 0);
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(1)));
  EXPECT_GE(hook_calls, 1);
}

TEST(SimKernel, DeepIdleExitSlowerThanShallow) {
  SimCosts costs;
  // Measure wakeup latency after a short vs long idle period.
  auto measure = [&](Duration idle_gap) {
    Sim sim(MachineSpec::OneSocket8(), costs);
    auto steps = std::make_shared<int>(0);
    sim.core.CreateTaskOn("t", MakeFnBody([steps, idle_gap](SimContext&) -> Action {
                            if (*steps == 0) {
                              *steps = 1;
                              return Action::Sleep(idle_gap);
                            }
                            return Action::Exit();
                          }),
                          0, 0, CpuMask::Single(3));
    sim.core.Start();
    LatencyRecorder& rec = sim.core.mutable_wake_latency();
    rec.Reset();
    EXPECT_TRUE(sim.core.RunUntilAllExit(Seconds(2)));
    return sim.core.wake_latency().max();
  };
  const Duration shallow = measure(Microseconds(5));
  const Duration deep = measure(Milliseconds(5));
  EXPECT_GT(deep, shallow + costs.deep_idle_exit_ns / 2);
}

TEST(SimKernel, AffinityRespectedOnWake) {
  Sim sim;
  Task* t = sim.core.CreateTaskOn("t", std::make_unique<CpuBoundBody>(Milliseconds(2), Microseconds(100)),
                                  0, 0, CpuMask::Single(5));
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(1)));
  EXPECT_EQ(t->cpu(), 5);
}

TEST(SimKernel, SetNiceAndAffinityValidate) {
  Sim sim;
  Task* t = sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(1), Milliseconds(1)), 0);
  sim.core.SetTaskNice(t, 10);
  EXPECT_EQ(t->nice(), 10);
  sim.core.SetTaskAffinity(t, CpuMask::All(4));
  EXPECT_EQ(t->affinity().Count(), 4);
  sim.core.Start();
  EXPECT_TRUE(sim.core.RunUntilAllExit(Seconds(1)));
}

TEST(SimKernel, YieldRotatesTasks) {
  Sim sim;
  std::vector<int> order;
  auto make_body = [&order](int id, std::shared_ptr<int> left) {
    return MakeFnBody([&order, id, left](SimContext&) -> Action {
      if (*left == 0) {
        return Action::Exit();
      }
      --*left;
      order.push_back(id);
      return Action::Yield();
    });
  };
  sim.core.CreateTaskOn("a", make_body(1, std::make_shared<int>(3)), 0, 0, CpuMask::Single(0));
  sim.core.CreateTaskOn("b", make_body(2, std::make_shared<int>(3)), 0, 0, CpuMask::Single(0));
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(1)));
  // FIFO + yield alternates the two tasks.
  ASSERT_GE(order.size(), 4u);
  EXPECT_NE(order[0], order[1]);
  EXPECT_NE(order[1], order[2]);
}

TEST(SimKernel, ContextSwitchesCounted) {
  Sim sim;
  sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(1), Milliseconds(1)), 0);
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(1)));
  EXPECT_GE(sim.core.context_switches(), 1u);
}

TEST(SimKernel, ChargeDelaysDispatch) {
  // A large pending charge on a CPU delays the next task's start.
  SimCosts costs;
  Sim sim(MachineSpec::OneSocket8(), costs);
  sim.core.ChargeCpu(0, Microseconds(500));
  Task* t = sim.core.CreateTaskOn("t", std::make_unique<CpuBoundBody>(Microseconds(1), Microseconds(1)),
                                  0, 0, CpuMask::Single(0));
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(1)));
  EXPECT_GE(sim.core.wake_latency().max(), Microseconds(500));
  EXPECT_EQ(t->state(), TaskState::kDead);
}

TEST(SimKernel, RunUntilTasksDeadIgnoresDaemons) {
  Sim sim;
  // A daemon that never exits.
  sim.core.CreateTask("daemon", std::make_unique<SpinForeverBody>(Milliseconds(1)), 0);
  Task* worker =
      sim.core.CreateTask("worker", std::make_unique<CpuBoundBody>(Milliseconds(2), Milliseconds(1)), 0);
  sim.core.Start();
  EXPECT_TRUE(sim.core.RunUntilTasksDead({worker}, sim.core.now() + Seconds(1)));
  EXPECT_EQ(worker->state(), TaskState::kDead);
  EXPECT_EQ(sim.core.live_task_count(), 1u);
}

TEST(SimKernel, TwoSocketTopology) {
  SchedCore core(MachineSpec::TwoSocket80(), SimCosts{});
  EXPECT_EQ(core.ncpus(), 80);
  EXPECT_EQ(core.NodeOf(0), 0);
  EXPECT_EQ(core.NodeOf(39), 0);
  EXPECT_EQ(core.NodeOf(40), 1);
  EXPECT_EQ(core.NodeOf(79), 1);
}

TEST(SimKernel, FindTaskByPid) {
  Sim sim;
  Task* t = sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Microseconds(1), Microseconds(1)), 0);
  EXPECT_EQ(sim.core.FindTask(t->pid()), t);
  EXPECT_EQ(sim.core.FindTask(999999), nullptr);
}

TEST(SimKernel, DeterministicAcrossRuns) {
  auto run = [] {
    Sim sim;
    for (int i = 0; i < 10; ++i) {
      sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(3), Microseconds(250)), 0);
    }
    sim.core.Start();
    sim.core.RunUntilAllExit(Seconds(5));
    return sim.core.now();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace enoki

namespace enoki {
namespace {

TEST(SimKernel, AffinityChangeMigratesRunningTask) {
  Sim sim;
  Task* t = sim.core.CreateTaskOn("t", std::make_unique<CpuBoundBody>(Milliseconds(20), Milliseconds(20)),
                                  0, 0, CpuMask::Single(2));
  sim.core.Start();
  sim.core.RunFor(Milliseconds(5));
  ASSERT_EQ(t->state(), TaskState::kRunning);
  ASSERT_EQ(t->cpu(), 2);
  // Restrict to CPU 5 while running: the task must be forced off CPU 2.
  sim.core.SetTaskAffinity(t, CpuMask::Single(5));
  sim.core.RunFor(Milliseconds(1));
  EXPECT_EQ(t->cpu(), 5);
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(1)));
}

TEST(SimKernel, SameArrivalIpisCoalesce) {
  // Two kicks to the same busy CPU from the same source at the same instant
  // must schedule one resched event, not two (batched wakeup delivery).
  Sim sim;
  sim.core.CreateTaskOn("spin", std::make_unique<SpinForeverBody>(Milliseconds(10)), 0, 0,
                        CpuMask::Single(0));
  sim.core.Start();
  sim.core.RunFor(Microseconds(50));  // task now current on CPU 0
  const uint64_t before = sim.core.loop().events_executed();
  sim.core.KickCpu(0, /*from_cpu=*/1);
  sim.core.KickCpu(0, /*from_cpu=*/1);
  sim.core.KickCpu(0, /*from_cpu=*/1);
  EXPECT_EQ(sim.core.coalesced_ipis(), 2u);
  sim.core.RunFor(Microseconds(50));
  // Exactly one IPI delivery event ran for the three kicks (plus whatever
  // the preemption itself schedules — count only up to the arrival).
  EXPECT_GE(sim.core.loop().events_executed(), before + 1);
}

TEST(SimKernel, DistinctArrivalIpisNotCoalesced) {
  // Kicks with different in-flight arrival times (local vs remote) are
  // distinct IPIs and must not be merged.
  Sim sim;
  sim.core.CreateTaskOn("spin", std::make_unique<SpinForeverBody>(Milliseconds(10)), 0, 0,
                        CpuMask::Single(0));
  sim.core.Start();
  sim.core.RunFor(Microseconds(50));
  sim.core.KickCpu(0, /*from_cpu=*/1);   // remote: +ipi_ns
  sim.core.KickCpu(0, /*from_cpu=*/0);   // local: immediate
  EXPECT_EQ(sim.core.coalesced_ipis(), 0u);
}

TEST(SimKernel, ShardSpecSplitsMachineEvenly) {
  const MachineSpec m = MachineSpec::EightNode256();
  EXPECT_EQ(m.ncpus, 256);
  EXPECT_EQ(m.nodes, 8);
  const MachineSpec s = m.ShardSpec(3, 8);
  EXPECT_EQ(s.ncpus, 32);
  EXPECT_EQ(s.nodes, 1);
  const MachineSpec quad = MachineSpec::FourNode128().ShardSpec(0, 4);
  EXPECT_EQ(quad.ncpus, 32);
  EXPECT_EQ(quad.nodes, 1);
}

// The tentpole determinism contract: the multitenant workload on a sharded
// engine produces byte-identical fingerprints for any host thread count,
// across a seed sweep, with every configuration run twice (double-run) to
// also catch state leaking between runs through globals.
TEST(SimKernel, ShardedDeterminismSweepAcrossSeedsAndThreads) {
  // Small 4-node box so 100 seeds x {1,2,4} threads stays fast; the large
  // configs run in sharded_scale_test (ctest label "large").
  const MachineSpec machine{16, 4, "4-node mini (4x4)"};
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    MultitenantConfig cfg;
    cfg.machine = machine;
    cfg.nshards = 4;
    cfg.tenants_per_group = 2;
    cfg.rate_per_tenant = 20'000.0;
    cfg.workers_per_group = 3;
    cfg.warmup = Microseconds(200);
    cfg.runtime = Milliseconds(2);
    cfg.seed = seed;

    cfg.shard_threads = 1;
    const MultitenantResult base = RunMultitenant(cfg);
    ASSERT_GT(base.events, 0u) << "seed " << seed;
    for (int threads : {1, 2, 4}) {
      cfg.shard_threads = threads;
      const MultitenantResult r = RunMultitenant(cfg);
      ASSERT_EQ(r.fingerprint, base.fingerprint) << "seed " << seed << " threads " << threads;
      ASSERT_EQ(r.completed, base.completed) << "seed " << seed << " threads " << threads;
      ASSERT_EQ(r.events, base.events) << "seed " << seed << " threads " << threads;
      ASSERT_EQ(r.cross_messages, base.cross_messages)
          << "seed " << seed << " threads " << threads;
      ASSERT_EQ(r.p99, base.p99) << "seed " << seed << " threads " << threads;
    }
  }
}

// Batched mailbox commit is an encoding change, not a behaviour change: the
// coalesced headers must expand to the exact per-message merge sequence, so
// for every seed and host thread count the fingerprint and all scalar outputs
// are identical with coalescing on and off.
TEST(SimKernel, BatchedCommitFingerprintInvariantAcrossSeedsAndThreads) {
  const MachineSpec machine{16, 4, "4-node mini (4x4)"};
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    MultitenantConfig cfg;
    cfg.machine = machine;
    cfg.nshards = 4;
    cfg.tenants_per_group = 2;
    cfg.rate_per_tenant = 20'000.0;
    cfg.workers_per_group = 3;
    cfg.warmup = Microseconds(200);
    cfg.runtime = Milliseconds(2);
    cfg.seed = seed;

    cfg.batched_commit = true;
    cfg.shard_threads = 1;
    const MultitenantResult batched = RunMultitenant(cfg);
    ASSERT_GT(batched.events, 0u) << "seed " << seed;
    cfg.batched_commit = false;
    for (int threads : {1, 2, 4}) {
      cfg.shard_threads = threads;
      const MultitenantResult plain = RunMultitenant(cfg);
      ASSERT_EQ(plain.fingerprint, batched.fingerprint)
          << "seed " << seed << " threads " << threads;
      ASSERT_EQ(plain.completed, batched.completed)
          << "seed " << seed << " threads " << threads;
      ASSERT_EQ(plain.events, batched.events) << "seed " << seed << " threads " << threads;
      ASSERT_EQ(plain.cross_messages, batched.cross_messages)
          << "seed " << seed << " threads " << threads;
      ASSERT_EQ(plain.p99, batched.p99) << "seed " << seed << " threads " << threads;
    }
  }
}

// The same sweep with the epoch controller live: adaptive mode consumes only
// committed state, so the widen/narrow schedule — folded into the fingerprint
// along with the final window — must be identical across thread counts too.
TEST(SimKernel, AdaptiveShardedDeterminismSweepAcrossSeedsAndThreads) {
  const MachineSpec machine{16, 4, "4-node mini (4x4)"};
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    MultitenantConfig cfg;
    cfg.machine = machine;
    cfg.nshards = 4;
    cfg.tenants_per_group = 2;
    cfg.rate_per_tenant = 20'000.0;
    cfg.workers_per_group = 3;
    cfg.warmup = Microseconds(200);
    cfg.runtime = Milliseconds(2);
    cfg.seed = seed;
    cfg.adaptive_epochs = true;
    cfg.remote_latency = Microseconds(100);  // widening headroom above 20us

    cfg.shard_threads = 1;
    const MultitenantResult base = RunMultitenant(cfg);
    ASSERT_GT(base.events, 0u) << "seed " << seed;
    for (int threads : {1, 2, 4}) {
      cfg.shard_threads = threads;
      const MultitenantResult r = RunMultitenant(cfg);
      ASSERT_EQ(r.fingerprint, base.fingerprint) << "seed " << seed << " threads " << threads;
      ASSERT_EQ(r.completed, base.completed) << "seed " << seed << " threads " << threads;
      ASSERT_EQ(r.events, base.events) << "seed " << seed << " threads " << threads;
      ASSERT_EQ(r.epochs, base.epochs) << "seed " << seed << " threads " << threads;
      ASSERT_EQ(r.widens, base.widens) << "seed " << seed << " threads " << threads;
      ASSERT_EQ(r.final_window_ns, base.final_window_ns)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// Heavy-tailed arrivals must preserve the determinism contract and the
// long-run rate: Pareto and log-normal gaps are mean-matched to the Poisson
// configuration, so completed counts stay within burstiness slack.
TEST(SimKernel, HeavyTailArrivalsDeterministicAndMeanMatched) {
  const MachineSpec machine{16, 4, "4-node mini (4x4)"};
  MultitenantConfig cfg;
  cfg.machine = machine;
  cfg.nshards = 4;
  cfg.tenants_per_group = 2;
  cfg.rate_per_tenant = 20'000.0;
  cfg.workers_per_group = 3;
  cfg.warmup = Milliseconds(1);
  cfg.runtime = Milliseconds(20);
  cfg.seed = 9;
  cfg.arrival = ArrivalDist::kPoisson;
  const MultitenantResult poisson = RunMultitenant(cfg);
  ASSERT_GT(poisson.completed, 0u);
  for (ArrivalDist dist : {ArrivalDist::kPareto, ArrivalDist::kLogNormal}) {
    cfg.arrival = dist;
    cfg.shard_threads = 1;
    const MultitenantResult t1 = RunMultitenant(cfg);
    cfg.shard_threads = 4;
    const MultitenantResult t4 = RunMultitenant(cfg);
    EXPECT_EQ(t1.fingerprint, t4.fingerprint);
    EXPECT_EQ(t1.completed, t4.completed);
    // Mean-matched: same long-run arrival rate despite the heavier tail.
    const double ratio =
        static_cast<double>(t1.completed) / static_cast<double>(poisson.completed);
    EXPECT_GT(ratio, 0.7);
    EXPECT_LT(ratio, 1.3);
  }
}

TEST(SimKernel, ShardedAndUnshardedAgreeOnThroughput) {
  // nshards=1 and nshards=nodes simulate the same logical system; completed
  // counts agree to within boundary-request slack.
  const MachineSpec machine{16, 4, "4-node mini (4x4)"};
  MultitenantConfig cfg;
  cfg.machine = machine;
  cfg.tenants_per_group = 2;
  cfg.rate_per_tenant = 20'000.0;
  cfg.workers_per_group = 3;
  cfg.warmup = Microseconds(200);
  cfg.runtime = Milliseconds(10);
  cfg.seed = 5;
  cfg.nshards = 4;
  const MultitenantResult sharded = RunMultitenant(cfg);
  cfg.nshards = 1;
  const MultitenantResult flat = RunMultitenant(cfg);
  ASSERT_GT(sharded.completed, 0u);
  ASSERT_GT(flat.completed, 0u);
  EXPECT_GT(sharded.cross_messages, 0u);
  EXPECT_EQ(flat.cross_messages, 0u);  // self-posts skip the mailboxes
  const double ratio =
      static_cast<double>(sharded.completed) / static_cast<double>(flat.completed);
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
}

TEST(SimKernel, FingerprintSensitiveToState) {
  // Sanity for the determinism sweeps: the fingerprint must actually change
  // when the simulation does.
  MultitenantConfig cfg;
  cfg.machine = MachineSpec{16, 4, "4-node mini (4x4)"};
  cfg.nshards = 4;
  cfg.tenants_per_group = 2;
  cfg.workers_per_group = 3;
  cfg.warmup = Microseconds(200);
  cfg.runtime = Milliseconds(2);
  cfg.seed = 1;
  const MultitenantResult a = RunMultitenant(cfg);
  cfg.seed = 2;
  const MultitenantResult b = RunMultitenant(cfg);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(SimKernel, KickPendingVisibleDuringIdleExit) {
  // While a wakeup kick is in flight to an idle CPU, CpuKickPending reports
  // it (balancers rely on this to avoid double-dispatch).
  Sim sim;
  auto steps = std::make_shared<int>(0);
  Task* t = sim.core.CreateTaskOn("t", MakeFnBody([steps](SimContext&) -> Action {
                                    if (*steps == 0) {
                                      *steps = 1;
                                      return Action::Sleep(Milliseconds(1));
                                    }
                                    return Action::Exit();
                                  }),
                                  0, 0, CpuMask::Single(4));
  sim.core.Start();
  // Run just past the sleep expiry: the wake fires, the kick (deep idle
  // exit) is pending, the task not yet dispatched.
  sim.core.RunUntil(Milliseconds(1) + Microseconds(2));
  if (t->state() == TaskState::kRunnable) {
    EXPECT_TRUE(sim.core.CpuKickPending(4));
  }
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(1)));
}

}  // namespace
}  // namespace enoki
