// Large-machine smoke tests for the sharded event engine (ctest label:
// "large"). These drive the multitenant workload on the 128- and 256-CPU
// machine specs from ISSUE 7 and assert the core sharding contract at
// scale: the merged simulation fingerprint is byte-identical no matter how
// many host threads execute the shards.
//
// Kept out of the default ctest run (-LE large) because a 256-CPU run is
// slow under sanitizers; CI runs them in a dedicated matrix entry with
// ENOKI_SHARD_THREADS=4.

#include <gtest/gtest.h>

#include "src/workloads/multitenant.h"

namespace enoki {
namespace {

MultitenantConfig ScaleConfig(MachineSpec machine, int nshards) {
  MultitenantConfig cfg;
  cfg.machine = machine;
  cfg.nshards = nshards;
  cfg.tenants_per_group = 8;
  cfg.rate_per_tenant = 2000.0;
  cfg.workers_per_group = 16;
  cfg.warmup = Milliseconds(5);
  cfg.runtime = Milliseconds(40);
  cfg.seed = 77;
  return cfg;
}

TEST(ShardedScale, FourNode128FingerprintStableAcrossThreads) {
  const MachineSpec machine = MachineSpec::FourNode128();
  MultitenantResult base;
  for (int pass = 0; pass < 3; ++pass) {
    const int threads[] = {1, 2, 4};
    MultitenantConfig cfg = ScaleConfig(machine, machine.nodes);
    cfg.shard_threads = threads[pass];
    MultitenantResult r = RunMultitenant(cfg);
    EXPECT_GT(r.completed, 0u);
    EXPECT_GT(r.handoffs, 0u);
    if (pass == 0) {
      base = r;
    } else {
      EXPECT_EQ(r.fingerprint, base.fingerprint)
          << "threads=" << threads[pass];
      EXPECT_EQ(r.completed, base.completed);
      EXPECT_EQ(r.events, base.events);
      EXPECT_EQ(r.cross_messages, base.cross_messages);
      EXPECT_EQ(r.p99, base.p99);
    }
  }
}

TEST(ShardedScale, EightNode256FingerprintStableAcrossThreads) {
  const MachineSpec machine = MachineSpec::EightNode256();
  MultitenantConfig cfg = ScaleConfig(machine, machine.nodes);
  cfg.runtime = Milliseconds(25);
  cfg.shard_threads = 1;
  const MultitenantResult serial = RunMultitenant(cfg);
  cfg.shard_threads = 4;
  const MultitenantResult parallel = RunMultitenant(cfg);
  EXPECT_GT(serial.completed, 0u);
  EXPECT_GT(serial.cross_messages, 0u);
  EXPECT_EQ(serial.fingerprint, parallel.fingerprint);
  EXPECT_EQ(serial.completed, parallel.completed);
  EXPECT_EQ(serial.events, parallel.events);
  EXPECT_EQ(serial.p50, parallel.p50);
  EXPECT_EQ(serial.p99, parallel.p99);
}

MultitenantConfig AdaptiveScaleConfig(MachineSpec machine, int nshards) {
  MultitenantConfig cfg = ScaleConfig(machine, nshards);
  cfg.adaptive_epochs = true;
  // 100us cross-node latency gives the controller real widening headroom
  // (20us initial window -> up to 100us ceiling).
  cfg.remote_latency = Microseconds(100);
  return cfg;
}

// The adaptive-mode tentpole contract: the controller's inputs are committed
// simulation state only, so the window schedule — and therefore the merged
// fingerprint, which folds in epochs/widens/narrows/final window — is
// byte-identical for any host thread count. Each thread count runs twice to
// also catch state leaking through globals.
TEST(ShardedScale, AdaptiveEpochsFingerprintStableAcrossThreads) {
  const MachineSpec machine = MachineSpec::FourNode128();
  MultitenantResult base;
  bool have_base = false;
  for (int pass = 0; pass < 2; ++pass) {
    for (int threads : {1, 2, 4}) {
      MultitenantConfig cfg = AdaptiveScaleConfig(machine, machine.nodes);
      cfg.shard_threads = threads;
      const MultitenantResult r = RunMultitenant(cfg);
      EXPECT_GT(r.completed, 0u);
      if (!have_base) {
        base = r;
        have_base = true;
        EXPECT_GT(base.widens, 0u) << "controller never engaged";
      } else {
        EXPECT_EQ(r.fingerprint, base.fingerprint)
            << "pass=" << pass << " threads=" << threads;
        EXPECT_EQ(r.completed, base.completed);
        EXPECT_EQ(r.events, base.events);
        EXPECT_EQ(r.epochs, base.epochs);
        EXPECT_EQ(r.widens, base.widens);
        EXPECT_EQ(r.narrows, base.narrows);
        EXPECT_EQ(r.final_window_ns, base.final_window_ns);
        EXPECT_EQ(r.p99, base.p99);
      }
    }
  }
}

// Adaptive epochs exist to amortize the barrier: on the same logical system
// (identical cross-node latency) the widened windows must cut the epoch
// count substantially without changing what the simulation computes.
TEST(ShardedScale, AdaptiveEpochsCutEpochCountVsStatic) {
  const MachineSpec machine = MachineSpec::FourNode128();
  MultitenantConfig fixed = ScaleConfig(machine, machine.nodes);
  fixed.remote_latency = Microseconds(100);
  MultitenantConfig adaptive = AdaptiveScaleConfig(machine, machine.nodes);
  const MultitenantResult a = RunMultitenant(fixed);
  const MultitenantResult b = RunMultitenant(adaptive);
  EXPECT_GT(a.epochs, 0u);
  EXPECT_LT(b.epochs * 2, a.epochs)
      << "adaptive mode should at least halve the epoch count here";
  const double ratio =
      static_cast<double>(b.completed) / static_cast<double>(a.completed);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

// With the window pinned (floor == ceiling == epoch_ns) the controller can
// never move it, so adaptive mode must reproduce static mode byte for byte —
// the adaptive machinery itself adds no nondeterminism.
TEST(ShardedScale, AdaptivePinnedWindowMatchesStaticExactly) {
  const MachineSpec machine = MachineSpec::FourNode128();
  MultitenantConfig fixed = ScaleConfig(machine, machine.nodes);
  fixed.remote_latency = fixed.epoch_ns;  // ceiling = epoch
  MultitenantConfig pinned = fixed;
  pinned.adaptive_epochs = true;
  pinned.min_epoch_ns = fixed.epoch_ns;  // floor = epoch
  const MultitenantResult a = RunMultitenant(fixed);
  const MultitenantResult b = RunMultitenant(pinned);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(b.widens, 0u);
  EXPECT_EQ(b.narrows, 0u);
  EXPECT_EQ(b.final_window_ns, fixed.epoch_ns);
}

TEST(ShardedScale, ShardedBeatsUnshardedOnEventCountParity) {
  // The unsharded (nshards=1) and sharded (nshards=nodes) builds of the
  // workload simulate the same logical system: same groups, same pinned CPU
  // ranges, same handoff latencies. Completed-request counts must agree to
  // within the slack introduced by in-flight boundary requests.
  const MachineSpec machine = MachineSpec::FourNode128();
  MultitenantConfig sharded = ScaleConfig(machine, machine.nodes);
  MultitenantConfig flat = ScaleConfig(machine, 1);
  const MultitenantResult a = RunMultitenant(sharded);
  const MultitenantResult b = RunMultitenant(flat);
  EXPECT_GT(a.completed, 0u);
  EXPECT_GT(b.completed, 0u);
  const double ratio =
      static_cast<double>(a.completed) / static_cast<double>(b.completed);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

}  // namespace
}  // namespace enoki
