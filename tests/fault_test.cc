// Tests for the fault-containment subsystem (src/fault): the FaultInjector
// decorator, the Watchdog trip policy, and the runtime's quarantine +
// graceful-fallback path. The capstone is a 100-seed sweep throwing the full
// fault menu at WfqSched under the pipe workload: zero crashes, zero task
// loss, and bit-identical CrashReports for identical seeds.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/enoki/runtime.h"
#include "src/fault/injector.h"
#include "src/fault/watchdog.h"
#include "src/sched/cfs.h"
#include "src/sched/wfq.h"
#include "src/simkernel/bodies.h"
#include "src/workloads/pipe.h"

namespace enoki {
namespace {

// Enoki module above CFS, the fallback target.
struct FaultStack {
  std::unique_ptr<SchedCore> core;
  std::unique_ptr<EnokiRuntime> runtime;
  std::unique_ptr<CfsClass> cfs;
  int enoki_policy = 0;
  int cfs_policy = 1;
};

FaultStack MakeFaultStack(std::unique_ptr<EnokiSched> module,
                          MachineSpec spec = MachineSpec::OneSocket8()) {
  FaultStack s;
  s.core = std::make_unique<SchedCore>(spec, SimCosts{});
  s.runtime = std::make_unique<EnokiRuntime>(std::move(module));
  s.cfs = std::make_unique<CfsClass>();
  s.enoki_policy = s.core->RegisterClass(s.runtime.get());
  s.cfs_policy = s.core->RegisterClass(s.cfs.get());
  return s;
}

std::unique_ptr<FaultInjector> MakeInjectedWfq(FaultPlan plan,
                                               FaultInjector** out = nullptr) {
  auto inj = std::make_unique<FaultInjector>(std::make_unique<WfqSched>(0), plan);
  if (out != nullptr) {
    *out = inj.get();
  }
  return inj;
}

// ---- FaultInjector ----

TEST(FaultInjector, TransparentAtZeroRates) {
  // A default FaultPlan injects nothing: the wrapped run must be identical
  // to the bare run, event for event.
  PipeBenchConfig cfg;
  cfg.messages = 200;

  FaultStack bare = MakeFaultStack(std::make_unique<WfqSched>(0));
  auto bare_result = RunPipeBench(*bare.core, bare.enoki_policy, cfg);
  ASSERT_TRUE(bare_result.completed);

  FaultInjector* inj = nullptr;
  FaultStack wrapped = MakeFaultStack(MakeInjectedWfq(FaultPlan{}, &inj));
  auto wrapped_result = RunPipeBench(*wrapped.core, wrapped.enoki_policy, cfg);
  ASSERT_TRUE(wrapped_result.completed);

  EXPECT_EQ(inj->counts().total(), 0u);
  EXPECT_EQ(bare_result.elapsed_ns, wrapped_result.elapsed_ns);
  EXPECT_EQ(bare.core->context_switches(), wrapped.core->context_switches());
}

TEST(FaultInjector, WithoutWatchdogInjectedThrowPropagates) {
  // Containment off: the pre-watchdog contract is that module exceptions
  // propagate out of the simulation.
  FaultPlan plan;
  plan.seed = 7;
  plan.throw_rate = 1.0;
  FaultStack s = MakeFaultStack(MakeInjectedWfq(plan));
  PipeBenchConfig cfg;
  cfg.messages = 10;
  EXPECT_THROW(RunPipeBench(*s.core, s.enoki_policy, cfg), InjectedFault);
}

// ---- Watchdog trips, one per fault kind ----

struct TripOutcome {
  bool completed = false;
  bool tripped = false;
  CrashReport report;
};

TripOutcome RunWithPlan(FaultPlan plan, WatchdogConfig cfg, uint64_t messages = 200) {
  FaultStack s = MakeFaultStack(MakeInjectedWfq(plan));
  s.runtime->EnableWatchdog(cfg, s.cfs_policy);
  PipeBenchConfig pcfg;
  pcfg.messages = messages;
  auto r = RunPipeBench(*s.core, s.enoki_policy, pcfg);
  TripOutcome out;
  out.completed = r.completed;
  out.tripped = s.runtime->quarantined();
  if (s.runtime->crash_report().has_value()) {
    out.report = *s.runtime->crash_report();
  }
  return out;
}

TEST(Watchdog, TripsOnEscapedException) {
  FaultPlan plan;
  plan.seed = 11;
  plan.throw_rate = 1.0;
  WatchdogConfig cfg;
  cfg.max_escaped_exceptions = 1;
  TripOutcome out = RunWithPlan(plan, cfg);
  EXPECT_TRUE(out.tripped);
  EXPECT_EQ(out.report.reason, TripReason::kEscapedException);
  EXPECT_GE(out.report.escaped_exceptions, 1u);
  // Zero task loss: both pipe tasks finish under the CFS fallback.
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.report.tasks_repolicied, 2u);
  EXPECT_GT(out.report.fallback_pause_ns, 0);
}

TEST(Watchdog, TripsOnCallbackBudget) {
  FaultPlan plan;
  plan.seed = 12;
  plan.busy_spin_rate = 1.0;
  plan.busy_spin_ns = Milliseconds(20);
  WatchdogConfig cfg;
  cfg.callback_budget_ns = Milliseconds(10);
  TripOutcome out = RunWithPlan(plan, cfg);
  EXPECT_TRUE(out.tripped);
  EXPECT_EQ(out.report.reason, TripReason::kCallbackBudget);
  EXPECT_TRUE(out.completed);
  // The over-budget call is visible in the latency aggregates.
  EXPECT_GE(out.report.callback_stats.max(), static_cast<double>(Milliseconds(20)));
}

TEST(Watchdog, TripsOnRepeatedPickErrors) {
  // Every pick returns a stale-generation forgery; the injector's pnt_err
  // recovery keeps the task alive, so the error count is what trips.
  FaultPlan plan;
  plan.seed = 13;
  plan.stale_token_rate = 1.0;
  WatchdogConfig cfg;
  cfg.max_pick_errors = 4;
  cfg.starvation_bound_ns = Milliseconds(500);  // let pick errors trip first
  TripOutcome out = RunWithPlan(plan, cfg);
  EXPECT_TRUE(out.tripped);
  EXPECT_EQ(out.report.reason, TripReason::kPickErrors);
  EXPECT_GE(out.report.pick_errors, 4u);
  EXPECT_TRUE(out.completed);
}

TEST(Watchdog, TripsOnStarvationFromDroppedEnqueues) {
  // Every wakeup is swallowed before the module sees it: the classic
  // lost-task bug. Only the core's starvation scan can notice.
  FaultPlan plan;
  plan.seed = 14;
  plan.drop_enqueue_rate = 1.0;
  WatchdogConfig cfg;
  cfg.starvation_bound_ns = Milliseconds(20);
  TripOutcome out = RunWithPlan(plan, cfg);
  EXPECT_TRUE(out.tripped);
  EXPECT_EQ(out.report.reason, TripReason::kStarvation);
  EXPECT_NE(out.report.starved_pid, 0u);
  EXPECT_TRUE(out.completed);
}

// ---- Manual abort, fallback mechanics ----

TEST(Fallback, ManualAbortRepoliciesAllTasksAndRefusesUpgrade) {
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  EnokiRuntime* rt = s.runtime.get();
  // Trip mid-workload, from event context (sysrq-style).
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt] { rt->AbortModule("operator abort"); });
  PipeBenchConfig cfg;
  cfg.messages = 2000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  ASSERT_TRUE(rt->quarantined());
  ASSERT_TRUE(rt->crash_report().has_value());
  EXPECT_EQ(rt->crash_report()->reason, TripReason::kManual);
  EXPECT_EQ(rt->crash_report()->detail, "operator abort");
  EXPECT_EQ(rt->crash_report()->tasks_repolicied, 2u);
  // Every former module task now runs CFS.
  for (const auto& t : s.core->tasks()) {
    EXPECT_EQ(t->sched_class(), s.cfs.get()) << t->name();
  }
  // A quarantined runtime refuses live upgrades.
  auto report = rt->Upgrade(std::make_unique<WfqSched>(0));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("quarantined"), std::string::npos);
}

TEST(Fallback, TaskCreatedAfterFallbackIsHandedToFallbackClass) {
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  s.core->Start();
  s.core->RunFor(Milliseconds(1));
  s.runtime->AbortModule("abort before late task");
  s.core->RunFor(Milliseconds(1));
  ASSERT_TRUE(s.runtime->fallback_done());
  // A task created with the quarantined policy must still run to completion.
  Task* late = s.core->CreateTask(
      "late",
      MakeFnBody([](SimContext&) -> Action {
        static int step = 0;
        return step++ == 0 ? Action::Compute(Microseconds(10)) : Action::Exit();
      }),
      s.enoki_policy);
  EXPECT_TRUE(s.core->RunUntilTasksDead({late}, s.core->now() + Seconds(1)));
  EXPECT_EQ(late->sched_class(), s.cfs.get());
}

TEST(Fallback, CrashReportCapturesRecorderTail) {
  // Trip via accumulated pick errors so a history of successful calls
  // precedes the trip and lands in the report's tail.
  FaultPlan plan;
  plan.seed = 21;
  plan.stale_token_rate = 1.0;
  FaultStack s = MakeFaultStack(MakeInjectedWfq(plan));
  Recorder recorder(1024);
  s.runtime->SetRecorder(&recorder);
  WatchdogConfig cfg;
  cfg.max_pick_errors = 3;
  cfg.starvation_bound_ns = Milliseconds(500);
  cfg.crash_ring_entries = 8;
  s.runtime->EnableWatchdog(cfg, s.cfs_policy);
  PipeBenchConfig pcfg;
  pcfg.messages = 50;
  auto r = RunPipeBench(*s.core, s.enoki_policy, pcfg);
  EXPECT_TRUE(r.completed);
  ASSERT_TRUE(s.runtime->crash_report().has_value());
  const CrashReport& report = *s.runtime->crash_report();
  EXPECT_FALSE(report.last_calls.empty());
  EXPECT_LE(report.last_calls.size(), 8u);
  // The rendering is the determinism fingerprint; it must be non-trivial.
  EXPECT_NE(report.ToString().find("pick-errors"), std::string::npos);
}

namespace {

// A new module that rejects whatever state it is handed: init throws.
class RejectsStateSched : public WfqSched {
 public:
  using WfqSched::WfqSched;
  void ReregisterInit(TransferState state) override { throw std::runtime_error("bad state"); }
};

// An outgoing module without checkpoint support: failed swaps cannot be
// rolled back and must fall through to the quarantine ladder rung.
class UncheckpointableWfq : public WfqSched {
 public:
  using WfqSched::WfqSched;
  bool SaveCheckpoint(ByteWriter* out) const override { return false; }
};

}  // namespace

TEST(Fallback, FailedUpgradeRollsBackAndKeepsModuleOnline) {
  // The swap succeeds but the incoming module rejects the transferred
  // state. The outgoing WFQ module checkpoints, so the failure is a
  // transaction abort: the predecessor is reinstalled, its tasks are
  // re-injected, and the watchdog never trips.
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  EnokiRuntime* rt = s.runtime.get();
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt] {
    auto report = rt->Upgrade(std::make_unique<RejectsStateSched>(0));
    EXPECT_FALSE(report.ok);
    EXPECT_TRUE(report.rolled_back);
  });
  PipeBenchConfig cfg;
  cfg.messages = 2000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(rt->quarantined());
  EXPECT_FALSE(rt->fallback_done());
  EXPECT_EQ(rt->rollbacks(), 1u);
  EXPECT_EQ(rt->upgrades(), 0u);
}

TEST(Fallback, FailedUpgradeWithoutCheckpointTripsWatchdogAndRescuesTasks) {
  // Legacy path: no checkpoint means no rollback target, so a post-swap
  // init failure is a containment event — the broken module is quarantined
  // and its tasks survive on CFS.
  FaultStack s = MakeFaultStack(std::make_unique<UncheckpointableWfq>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  EnokiRuntime* rt = s.runtime.get();
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt] {
    auto report = rt->Upgrade(std::make_unique<RejectsStateSched>(0));
    EXPECT_FALSE(report.ok);
    EXPECT_FALSE(report.rolled_back);
  });
  PipeBenchConfig cfg;
  cfg.messages = 2000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  ASSERT_TRUE(rt->quarantined());
  ASSERT_TRUE(rt->crash_report().has_value());
  EXPECT_EQ(rt->crash_report()->reason, TripReason::kUpgradeFailure);
  EXPECT_EQ(rt->crash_report()->tasks_repolicied, 2u);
}

TEST(Fallback, QuarantinedUpgradeRefusalChargesNoPause) {
  // Regression: the refusal happens before any quiesce attempt, so no
  // blackout may be charged and the upgrade counter must stay untouched.
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  s.core->Start();
  s.core->RunFor(Milliseconds(1));
  s.runtime->AbortModule("operator abort");
  s.core->RunFor(Milliseconds(1));
  ASSERT_TRUE(s.runtime->quarantined());
  auto report = s.runtime->Upgrade(std::make_unique<WfqSched>(0));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("quarantined"), std::string::npos);
  EXPECT_EQ(report.pause_ns, 0);
  EXPECT_FALSE(report.checkpointed);
  EXPECT_EQ(s.runtime->upgrades(), 0u);
}

// ---- The seeded fault sweep (acceptance criterion) ----

struct SweepOutcome {
  bool completed = false;
  bool tripped = false;
  std::string report;  // empty when the watchdog never tripped
  uint64_t faults = 0;
  uint64_t reinjected = 0;
  Time end_time = 0;
};

SweepOutcome RunSweep(uint64_t seed) {
  FaultInjector* inj = nullptr;
  FaultStack s = MakeFaultStack(MakeInjectedWfq(FaultPlan::FullMenu(seed), &inj));
  Recorder recorder(1024);
  s.runtime->SetRecorder(&recorder);
  s.runtime->CreateRevQueue(64);  // give hint floods somewhere to land
  WatchdogConfig cfg;
  cfg.callback_budget_ns = Milliseconds(5);
  cfg.max_escaped_exceptions = 3;
  cfg.max_pick_errors = 8;
  cfg.starvation_bound_ns = Milliseconds(20);
  s.runtime->EnableWatchdog(cfg, s.cfs_policy);
  PipeBenchConfig pcfg;
  pcfg.messages = 300;
  auto r = RunPipeBench(*s.core, s.enoki_policy, pcfg);
  SweepOutcome out;
  out.completed = r.completed;
  out.tripped = s.runtime->quarantined();
  if (s.runtime->crash_report().has_value()) {
    out.report = s.runtime->crash_report()->ToString();
  }
  out.faults = inj->counts().total();
  out.reinjected = inj->counts().reinjected;
  out.end_time = s.core->now();
  return out;
}

TEST(FaultSweep, HundredSeedsFullMenuZeroTaskLoss) {
  int tripped_seeds = 0;
  uint64_t total_faults = 0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    SweepOutcome a = RunSweep(seed);
    // Zero task loss: every pipe task completes, tripped or not.
    EXPECT_TRUE(a.completed) << "seed " << seed << " lost tasks";
    // Determinism: the identical seed yields the identical run, down to the
    // CrashReport rendering and the final simulated clock.
    SweepOutcome b = RunSweep(seed);
    EXPECT_EQ(a.completed, b.completed) << "seed " << seed;
    EXPECT_EQ(a.tripped, b.tripped) << "seed " << seed;
    EXPECT_EQ(a.report, b.report) << "seed " << seed;
    EXPECT_EQ(a.faults, b.faults) << "seed " << seed;
    EXPECT_EQ(a.reinjected, b.reinjected) << "seed " << seed;
    EXPECT_EQ(a.end_time, b.end_time) << "seed " << seed;
    tripped_seeds += a.tripped ? 1 : 0;
    total_faults += a.faults;
  }
  // The menu must actually bite: faults were injected and some seeds tripped.
  EXPECT_GT(total_faults, 0u);
  EXPECT_GT(tripped_seeds, 0);
}

}  // namespace
}  // namespace enoki
