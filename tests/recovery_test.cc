// Tests for the deepened recovery ladder: the CheckpointStore generation
// ring, metadata-sealed checksums, periodic CheckpointNow() cadence,
// per-policy probation budgets, version-fingerprint flap damping,
// cross-MachineSpec checkpoint renormalization, and the versioned v1
// checkpoint formats of the locality / nest / ghost policies. The capstone
// is a 100-seed sweep mixing upgrade-boundary faults with ring-slot bit-rot
// and crash-during-CheckpointNow, asserting zero task loss and
// byte-identical fallback order (restore timelines) across reruns.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/enoki/checkpoint.h"
#include "src/enoki/replay.h"
#include "src/enoki/runtime.h"
#include "src/fault/injector.h"
#include "src/fault/supervisor.h"
#include "src/fault/watchdog.h"
#include "src/sched/cfs.h"
#include "src/sched/ext/central.h"
#include "src/sched/ext/rusty.h"
#include "src/sched/ghost.h"
#include "src/sched/locality.h"
#include "src/sched/nest.h"
#include "src/sched/nice_weights.h"
#include "src/sched/wfq.h"
#include "src/simkernel/sched_core.h"
#include "src/workloads/pipe.h"

namespace enoki {
namespace {

// ---- CheckpointStore: the generation ring ----

Checkpoint MakeSealed(uint64_t seq, Time taken_at = 0, uint64_t fp = 0) {
  ByteWriter w;
  w.U64(seq * 1000);
  Checkpoint ck;
  ck.state_version = 1;
  ck.sequence = seq;
  ck.taken_at = taken_at;
  ck.module_fingerprint = fp;
  ck.bytes = w.Take();
  ck.Seal();
  return ck;
}

TEST(CheckpointStore, PushEvictsOldestAtCapacity) {
  CheckpointStore store(3);
  EXPECT_TRUE(store.empty());
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    store.Push(MakeSealed(seq));
  }
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.pushed(), 5u);
  EXPECT_EQ(store.evicted(), 2u);
  // Newest-first indexing: generations 5, 4, 3 remain.
  EXPECT_EQ(store.FromNewest(0).sequence, 5u);
  EXPECT_EQ(store.FromNewest(1).sequence, 4u);
  EXPECT_EQ(store.FromNewest(2).sequence, 3u);
  EXPECT_EQ(store.newest()->sequence, 5u);
}

TEST(CheckpointStore, DropNewestWalksBackward) {
  CheckpointStore store(4);
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    store.Push(MakeSealed(seq));
  }
  store.DropNewest();
  EXPECT_EQ(store.newest()->sequence, 2u);
  store.DropNewest();
  EXPECT_EQ(store.newest()->sequence, 1u);
  store.DropNewest();
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.newest(), nullptr);
  store.DropNewest();  // harmless on empty
}

TEST(CheckpointStore, ShrinkingCapacityEvictsOldest) {
  CheckpointStore store(4);
  for (uint64_t seq = 1; seq <= 4; ++seq) {
    store.Push(MakeSealed(seq));
  }
  store.set_capacity(2);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.FromNewest(0).sequence, 4u);
  EXPECT_EQ(store.FromNewest(1).sequence, 3u);
  EXPECT_EQ(store.evicted(), 2u);
}

// ---- Metadata-sealed checksums ----

TEST(CheckpointSeal, CoversSequenceTakenAtAndFingerprint) {
  Checkpoint ck = MakeSealed(7, Milliseconds(3), 0xFEEDull);
  ASSERT_TRUE(ck.Valid());

  // A stale generation replayed into a different ring slot: same payload,
  // forged sequence. The seal must break.
  ck.sequence = 8;
  EXPECT_FALSE(ck.Valid());
  ck.sequence = 7;
  EXPECT_TRUE(ck.Valid());

  ck.taken_at = Milliseconds(4);
  EXPECT_FALSE(ck.Valid());
  ck.taken_at = Milliseconds(3);
  EXPECT_TRUE(ck.Valid());

  ck.module_fingerprint = 0xBEEFull;
  EXPECT_FALSE(ck.Valid());
  ck.module_fingerprint = 0xFEEDull;
  EXPECT_TRUE(ck.Valid());
}

// ---- Version fingerprints and per-policy probation defaults ----

TEST(VersionFingerprint, StablePerBuildDistinctAcrossPolicies) {
  WfqSched a(0), b(0), c(1);
  NestSched n(0);
  EXPECT_NE(a.VersionFingerprint(), 0u);
  EXPECT_EQ(a.VersionFingerprint(), b.VersionFingerprint());  // same build
  EXPECT_NE(a.VersionFingerprint(), c.VersionFingerprint());  // policy id folded
  EXPECT_NE(a.VersionFingerprint(), n.VersionFingerprint());  // type folded
}

TEST(DefaultProbation, PoliciesDeclareTheirOwnBudgets) {
  const ProbationConfig base;
  CentralSched central(0);
  EXPECT_EQ(central.DefaultProbation().max_pick_errors, 8u);
  EXPECT_EQ(central.DefaultProbation().window_ns, base.window_ns);
  EXPECT_EQ(central.DefaultProbation().window_calls, base.window_calls);
  RustySched rusty(0);
  EXPECT_EQ(rusty.DefaultProbation().max_balance_errors, 64u);
  EXPECT_EQ(rusty.DefaultProbation().window_ns, base.window_ns);
  // Policies without an override keep the ladder defaults.
  WfqSched wfq(0);
  EXPECT_EQ(wfq.DefaultProbation().max_pick_errors, base.max_pick_errors);
  // Decorators are transparent: the inner module's budgets and identity win.
  FaultPlan plan;
  FaultInjector inj(std::make_unique<CentralSched>(0), plan);
  EXPECT_EQ(inj.DefaultProbation().max_pick_errors, 8u);
  EXPECT_EQ(inj.VersionFingerprint(), CentralSched(0).VersionFingerprint());
}

// ---- Policy checkpoint round-trips (locality / nest / ghost) ----

TaskMessage Msg(uint64_t pid, int cpu, int nice = 0) {
  TaskMessage msg;
  msg.pid = pid;
  msg.cpu = cpu;
  msg.prev_cpu = cpu;
  msg.nice = nice;
  return msg;
}

TEST(LocalityCheckpoint, RoundTripKeepsCoLocationAcrossMachineShapes) {
  ReplayEnv env(4);
  LocalitySched a(0, /*use_hints=*/true);
  a.Attach(&env);
  HintBlob h;
  h.w[0] = 1;  // pid 1 -> group 7
  h.w[1] = 7;
  a.ParseHint(h);
  h.w[0] = 2;  // pid 2 -> group 7
  a.ParseHint(h);
  h.w[0] = 3;  // pid 3 -> group 9 (a second group advances the cursor)
  h.w[1] = 9;
  a.ParseHint(h);

  ByteWriter w;
  ASSERT_TRUE(a.SaveCheckpoint(&w));
  EXPECT_EQ(a.CheckpointVersion(), 1u);
  const std::vector<uint8_t> bytes = w.Take();

  // Same shape: byte-for-byte identical placement.
  LocalitySched b(0, /*use_hints=*/true);
  b.Attach(&env);
  {
    ByteReader r(bytes);
    ASSERT_TRUE(b.LoadCheckpoint(1, &r));
  }
  EXPECT_EQ(b.SelectTaskRq(Msg(1, 0)), a.SelectTaskRq(Msg(1, 0)));
  EXPECT_EQ(b.SelectTaskRq(Msg(1, 0)), b.SelectTaskRq(Msg(2, 0)));

  // Shrunk machine: homes renormalize by % live instead of being dropped —
  // the group still has one stable home and co-location survives.
  ReplayEnv small(2);
  LocalitySched c(0, /*use_hints=*/true);
  c.Attach(&small);
  {
    ByteReader r(bytes);
    ASSERT_TRUE(c.LoadCheckpoint(1, &r));
  }
  const int home1 = c.SelectTaskRq(Msg(1, 0));
  EXPECT_LT(home1, 2);
  EXPECT_EQ(home1, c.SelectTaskRq(Msg(2, 0)));
}

TEST(LocalityCheckpoint, RejectsWrongVersionTruncationAndGarbage) {
  ReplayEnv env(2);
  LocalitySched s(0, /*use_hints=*/true);
  s.Attach(&env);

  ByteWriter w;
  w.U64(1);  // cursor
  w.U64(0);  // no groups
  w.U64(0);  // no pids
  const std::vector<uint8_t> good = w.bytes();
  {
    ByteReader r(good);
    EXPECT_FALSE(s.LoadCheckpoint(2, &r));  // unknown future version
  }
  {
    std::vector<uint8_t> truncated(good.begin(), good.begin() + 10);
    ByteReader r(truncated);
    EXPECT_FALSE(s.LoadCheckpoint(1, &r));
  }
  {
    ByteWriter bad;
    bad.U64(0);
    bad.U64(0);
    bad.U64(1);  // one membership...
    bad.U64(0);  // ...for pid 0 (pids are assigned from 1)
    bad.U64(3);
    const std::vector<uint8_t> bytes = bad.Take();
    ByteReader r(bytes);
    EXPECT_FALSE(s.LoadCheckpoint(1, &r));
  }
}

TEST(NestCheckpoint, RoundTripKeepsWarmCoresAndFoldsOnShrink) {
  ReplayEnv env(8);
  NestSched a(0);
  a.Attach(&env);
  // Touch core 2 early (will have decayed cold by 3ms) and core 6 late
  // (still inside the 2ms decay horizon at 3ms).
  env.SetNow(Microseconds(500));
  a.TaskNew(Msg(1, 2), SchedulableMinter::Mint(1, 2, 1));
  (void)a.PickNextTask(2, std::nullopt);
  env.SetNow(Microseconds(2500));
  a.TaskNew(Msg(2, 6), SchedulableMinter::Mint(2, 6, 1));
  (void)a.PickNextTask(6, std::nullopt);

  ByteWriter w;
  ASSERT_TRUE(a.SaveCheckpoint(&w));
  EXPECT_EQ(a.CheckpointVersion(), 1u);
  const std::vector<uint8_t> bytes = w.Take();

  // Same shape: warm cores restored exactly.
  NestSched b(0);
  b.Attach(&env);
  {
    ByteReader r(bytes);
    ASSERT_TRUE(b.LoadCheckpoint(1, &r));
  }
  env.SetNow(Milliseconds(3));  // decay horizon 2ms: only the 2.5ms core is warm
  EXPECT_EQ(b.WarmCoreCount(), 1u);
  EXPECT_EQ(b.SelectTaskRq(Msg(9, 0)), 6);  // wakeup lands on the warm core

  // Shrunk machine: recency folds by cpu % live keeping the most recent use,
  // so cores 2 and 6 both land on slot 2 and the nest stays warm there.
  ReplayEnv small(4);
  small.SetNow(Milliseconds(3));
  NestSched c(0);
  c.Attach(&small);
  {
    ByteReader r(bytes);
    ASSERT_TRUE(c.LoadCheckpoint(1, &r));
  }
  EXPECT_EQ(c.WarmCoreCount(), 1u);
  EXPECT_EQ(c.SelectTaskRq(Msg(9, 0)), 2);
}

TEST(NestCheckpoint, RejectsWrongVersionTruncationAndGarbage) {
  ReplayEnv env(4);
  NestSched s(0);
  s.Attach(&env);
  ByteWriter w;
  w.U64(4);
  for (int i = 0; i < 4; ++i) {
    w.U64(0);
  }
  const std::vector<uint8_t> good = w.bytes();
  {
    ByteReader r(good);
    EXPECT_FALSE(s.LoadCheckpoint(2, &r));
  }
  {
    std::vector<uint8_t> truncated(good.begin(), good.begin() + 12);
    ByteReader r(truncated);
    EXPECT_FALSE(s.LoadCheckpoint(1, &r));
  }
  {
    ByteWriter bad;
    bad.U64(100000);  // absurd cpu count
    const std::vector<uint8_t> bytes = bad.Take();
    ByteReader r(bytes);
    EXPECT_FALSE(s.LoadCheckpoint(1, &r));
  }
}

TEST(GhostCheckpoint, RoundTripRestoresAgentCursors) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  GhostClass a(GhostClass::Mode::kPerCpuFifo, CpuMask::All(8));
  GhostClass b(GhostClass::Mode::kPerCpuFifo, CpuMask::All(8));
  const int ga = core.RegisterClass(&a);
  core.RegisterClass(&b);
  // Creating tasks in the ghost class drives the arrival cursor, message
  // counter, and round-robin placement cursor exactly like live traffic.
  core.CreateTaskOn("g1", MakeFnBody([](SimContext&) { return Action::Exit(); }), ga, 0,
                    CpuMask::All(8));
  core.CreateTaskOn("g2", MakeFnBody([](SimContext&) { return Action::Exit(); }), ga, 0,
                    CpuMask::All(8));
  EXPECT_GE(a.messages(), 2u);

  ByteWriter w;
  ASSERT_TRUE(a.SaveCheckpoint(&w));
  EXPECT_EQ(a.CheckpointVersion(), 1u);
  const std::vector<uint8_t> bytes = w.Take();

  ByteReader r(bytes);
  ASSERT_TRUE(b.LoadCheckpoint(1, &r));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(b.messages(), a.messages());
  EXPECT_EQ(b.commits(), a.commits());
}

TEST(GhostCheckpoint, RejectsWrongVersionTruncationAndGarbage) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  GhostClass s(GhostClass::Mode::kSol, CpuMask::All(8));
  s.Attach(&core);
  ByteWriter w;
  w.U64(5);  // next_seq
  w.U64(2);  // commits
  w.U64(9);  // messages
  w.U64(3);  // rr cursor
  const std::vector<uint8_t> good = w.bytes();
  {
    ByteReader r(good);
    EXPECT_FALSE(s.LoadCheckpoint(2, &r));  // unknown future version
  }
  {
    std::vector<uint8_t> truncated(good.begin(), good.begin() + 20);
    ByteReader r(truncated);
    EXPECT_FALSE(s.LoadCheckpoint(1, &r));
  }
  {
    ByteWriter bad;
    bad.U64(0);  // sequence cursors start at 1
    bad.U64(0);
    bad.U64(0);
    bad.U64(0);
    const std::vector<uint8_t> bytes = bad.Take();
    ByteReader r(bytes);
    EXPECT_FALSE(s.LoadCheckpoint(1, &r));
  }
}

// ---- Cross-MachineSpec renormalization (WFQ) ----

// Builds a WFQ v2 payload for `ncpus` with the given per-CPU vruntime
// baselines and no entities.
std::vector<uint8_t> WfqPayload(const std::vector<uint64_t>& cursors) {
  ByteWriter w;
  w.U64(cursors.size());
  for (uint64_t c : cursors) {
    w.U64(c);
  }
  w.U64(0);  // no entities
  return w.Take();
}

TEST(WfqRenormalization, ShrinkFoldsBaselinesByMin) {
  // 8 saved CPUs with baselines 10ms..80ms, restored onto 4: slot k folds
  // min(saved[k], saved[k+4]) so restored sleepers join at the *fair* (low)
  // frontier instead of a starving high one.
  std::vector<uint64_t> cursors;
  for (uint64_t cpu = 0; cpu < 8; ++cpu) {
    cursors.push_back(Milliseconds(10) * (cpu + 1));
  }
  const std::vector<uint8_t> bytes = WfqPayload(cursors);

  ReplayEnv env(4);
  WfqSched s(0);
  s.Attach(&env);
  ByteReader r(bytes);
  ASSERT_TRUE(s.LoadCheckpoint(2, &r));

  // A first-sighting wakeup on cpu 1 adopts at the sleeper floor of that
  // cpu's baseline: min(20ms, 60ms) = 20ms, so vruntime lands within
  // [20ms - sched_latency, 20ms]. A max fold (60ms) would land far above.
  s.TaskWakeup(Msg(42, 1), SchedulableMinter::Mint(42, 1, 1));
  EXPECT_GE(s.VruntimeOf(42), Milliseconds(20) - WfqSched::kSchedLatencyNs);
  EXPECT_LE(s.VruntimeOf(42), Milliseconds(20));
}

TEST(WfqRenormalization, GrowSeedsNewCpusAtGlobalMin) {
  // 2 saved CPUs restored onto 8: the 6 new CPUs start at the global minimum
  // baseline (30ms), not at zero — a zero baseline would hand every task
  // placed there a huge fairness credit over restored ones.
  const std::vector<uint8_t> bytes =
      WfqPayload({Milliseconds(40), Milliseconds(30)});
  ReplayEnv env(8);
  WfqSched s(0);
  s.Attach(&env);
  ByteReader r(bytes);
  ASSERT_TRUE(s.LoadCheckpoint(2, &r));

  s.TaskWakeup(Msg(43, 5), SchedulableMinter::Mint(43, 5, 1));
  EXPECT_GE(s.VruntimeOf(43), Milliseconds(30) - WfqSched::kSchedLatencyNs);
  EXPECT_LE(s.VruntimeOf(43), Milliseconds(30));
}

TEST(WfqRenormalization, EntityCpuRemapsInsteadOfDropping) {
  // An entity parked on cpu 6 restores onto a 4-CPU machine at cpu 6 % 4,
  // with its accounting intact.
  ByteWriter w;
  w.U64(8);
  for (int cpu = 0; cpu < 8; ++cpu) {
    w.U64(Milliseconds(1));
  }
  w.U64(1);  // one entity
  w.U64(7);  // pid
  w.U64(Milliseconds(2));
  w.U64(NiceToWeight(0));
  w.U64(0);
  w.U64(0);
  w.U64(6);  // cpu on the old machine
  const std::vector<uint8_t> bytes = w.Take();

  ReplayEnv env(4);
  WfqSched s(0);
  s.Attach(&env);
  ByteReader r(bytes);
  ASSERT_TRUE(s.LoadCheckpoint(2, &r));
  EXPECT_EQ(s.VruntimeOf(7), Milliseconds(2));
  EXPECT_EQ(s.WeightOf(7), NiceToWeight(0));
}

// ---- Runtime integration: the generation ring end to end ----

struct FaultStack {
  std::unique_ptr<SchedCore> core;
  std::unique_ptr<EnokiRuntime> runtime;
  std::unique_ptr<CfsClass> cfs;
  int enoki_policy = 0;
  int cfs_policy = 1;
};

FaultStack MakeFaultStack(std::unique_ptr<EnokiSched> module,
                          MachineSpec spec = MachineSpec::OneSocket8()) {
  FaultStack s;
  s.core = std::make_unique<SchedCore>(spec, SimCosts{});
  s.runtime = std::make_unique<EnokiRuntime>(std::move(module));
  s.cfs = std::make_unique<CfsClass>();
  s.enoki_policy = s.core->RegisterClass(s.runtime.get());
  s.cfs_policy = s.core->RegisterClass(s.cfs.get());
  return s;
}

std::unique_ptr<FaultInjector> InjectedWfq(FaultPlan plan) {
  return std::make_unique<FaultInjector>(std::make_unique<WfqSched>(0), plan);
}

TEST(GenerationRing, RestoreSkipsCorruptGenerationsInOrder) {
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  s.runtime->EnableSupervisor(SupervisorConfig{}, [] { return std::make_unique<WfqSched>(0); });
  EnokiRuntime* rt = s.runtime.get();
  // Three generations: the supervisor's seed plus two explicit saves.
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt] { EXPECT_TRUE(rt->CheckpointNow()); });
  s.core->loop().ScheduleAfter(Milliseconds(2), [rt] { EXPECT_TRUE(rt->CheckpointNow()); });
  s.core->loop().ScheduleAfter(Milliseconds(3), [rt] {
    ASSERT_EQ(rt->checkpoint_store().size(), 3u);
    // Rot the two NEWEST generations in storage; the oldest stays clean.
    rt->mutable_checkpoint_store()->MutableFromNewest(0)->bytes[0] ^= 0xFF;
    rt->mutable_checkpoint_store()->MutableFromNewest(1)->bytes[0] ^= 0xFF;
    rt->AbortModule("abort with a rotten ring");
  });
  PipeBenchConfig cfg;
  cfg.messages = 4000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(rt->quarantined());
  EXPECT_EQ(rt->module_restarts(), 1u);
  // Both rotten generations were rejected by checksum — never deserialized —
  // and the walk landed on the third (depth 3), oldest, clean generation.
  EXPECT_EQ(rt->checkpoint_rejects(), 2u);
  EXPECT_GE(rt->restore_fallbacks(), 2u);
  EXPECT_EQ(rt->last_restore_depth(), 3u);
  EXPECT_GT(rt->last_restore_age_ns(), 0);
  ASSERT_GE(rt->supervisor()->timeline().size(), 1u);
  EXPECT_TRUE(rt->supervisor()->timeline()[0].restored_from_checkpoint);
  // The timeline records the walk newest -> oldest, with reasons.
  const std::string timeline = rt->RestoreTimelineString();
  const size_t skip3 = timeline.find("skip seq=3");
  const size_t skip2 = timeline.find("skip seq=2");
  const size_t restore1 = timeline.find("restore seq=1");
  ASSERT_NE(skip3, std::string::npos) << timeline;
  ASSERT_NE(skip2, std::string::npos) << timeline;
  ASSERT_NE(restore1, std::string::npos) << timeline;
  EXPECT_LT(skip3, skip2);
  EXPECT_LT(skip2, restore1);
  EXPECT_NE(timeline.find("reason=checksum"), std::string::npos);
}

TEST(GenerationRing, CapacityBoundsGenerations) {
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  s.runtime->SetCheckpointCapacity(2);
  EnokiRuntime* rt = s.runtime.get();
  for (int i = 1; i <= 4; ++i) {
    s.core->loop().ScheduleAfter(Milliseconds(i), [rt] { EXPECT_TRUE(rt->CheckpointNow()); });
  }
  PipeBenchConfig cfg;
  cfg.messages = 6000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(rt->checkpoint_store().size(), 2u);
  EXPECT_EQ(rt->checkpoint_store().evicted(), 2u);
  EXPECT_EQ(rt->last_good_checkpoint()->sequence, 4u);
}

TEST(PeriodicCadence, SavesGenerationsAndSurvivesRestartDeterministically) {
  auto drive = [] {
    FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
    s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
    s.runtime->EnableSupervisor(SupervisorConfig{},
                                [] { return std::make_unique<WfqSched>(0); });
    s.runtime->SetCheckpointInterval(Microseconds(500));
    EnokiRuntime* rt = s.runtime.get();
    s.core->loop().ScheduleAfter(Milliseconds(3), [rt] { rt->AbortModule("mid-cadence abort"); });
    PipeBenchConfig cfg;
    cfg.messages = 6000;
    auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
    EXPECT_TRUE(r.completed);
    struct Out {
      uint64_t periodic;
      uint64_t depth;
      Duration age;
      std::string timeline;
      Time end_time;
    } out;
    out.periodic = rt->periodic_checkpoints();
    out.depth = rt->last_restore_depth();
    out.age = rt->last_restore_age_ns();
    out.timeline = rt->RestoreTimelineString();
    out.end_time = s.core->now();
    return std::make_tuple(out.periodic, out.depth, out.age, out.timeline, out.end_time);
  };
  auto a = drive();
  auto b = drive();
  // The cadence actually saved between upgrades, the restore consumed the
  // newest (periodic) generation, and the lost window is below the interval
  // plus scheduling jitter — bounded by the cadence, not by upgrade timing.
  EXPECT_GE(std::get<0>(a), 4u);
  EXPECT_EQ(std::get<1>(a), 1u);
  EXPECT_GT(std::get<2>(a), 0);
  EXPECT_LE(std::get<2>(a), Milliseconds(1));
  EXPECT_NE(std::get<3>(a).find("restore"), std::string::npos);
  // Double-run determinism: byte-identical timelines and clocks.
  EXPECT_EQ(a, b);
}

TEST(PeriodicCadence, CrashDuringCheckpointNowKeepsRing) {
  FaultPlan plan;
  plan.seed = 11;
  plan.checkpoint_crash_rate = 1.0;  // every save crashes
  FaultStack s = MakeFaultStack(InjectedWfq(plan));
  EnokiRuntime* rt = s.runtime.get();
  // Without a watchdog the crash is contained and counted; the ring simply
  // keeps whatever generations it had.
  EXPECT_FALSE(rt->CheckpointNow());
  EXPECT_EQ(rt->checkpoint_save_failures(), 1u);
  EXPECT_TRUE(rt->checkpoint_store().empty());
  EXPECT_FALSE(rt->last_good_checkpoint().has_value());
}

TEST(PeriodicCadence, MidCadenceCrashEscalatesAndLosesNoTasks) {
  FaultPlan plan;
  plan.seed = 21;
  plan.checkpoint_crash_rate = 1.0;
  FaultStack s = MakeFaultStack(InjectedWfq(plan));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  s.runtime->EnableSupervisor(SupervisorConfig{}, [] {
    FaultPlan p;
    p.seed = 21;
    p.checkpoint_crash_rate = 1.0;
    return InjectedWfq(p);
  });
  s.runtime->SetCheckpointInterval(Microseconds(500));
  EnokiRuntime* rt = s.runtime.get();
  PipeBenchConfig cfg;
  cfg.messages = 4000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  // Every save crashes: each one is escalated to the watchdog like any other
  // escaped exception, the ladder runs, and no task is ever lost — the
  // terminal rung at worst.
  EXPECT_TRUE(r.completed);
  EXPECT_GE(rt->checkpoint_save_failures(), 1u);
  EXPECT_GE(rt->module_restarts() + (rt->quarantined() ? 1u : 0u), 1u);
}

// ---- Flap damping ----

TEST(FlapDamping, RepeatedProbationFailuresRefuseTheFingerprint) {
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  EnokiRuntime* rt = s.runtime.get();
  auto misbehaving = [] {
    FaultPlan plan;
    plan.seed = 5;
    plan.probation_misbehave_rate = 1.0;
    return InjectedWfq(plan);
  };
  // Three upgrades of the same build, each tripping inside probation.
  for (int i = 1; i <= 3; ++i) {
    s.core->loop().ScheduleAfter(Milliseconds(2 * i), [rt, misbehaving, i] {
      auto report = rt->Upgrade(misbehaving());
      EXPECT_TRUE(report.ok) << "upgrade " << i;
      EXPECT_NE(report.incoming_fingerprint, 0u);
    });
  }
  // The fourth is refused outright: same fingerprint, three failures inside
  // the rolling window. No quiesce, no pause.
  s.core->loop().ScheduleAfter(Milliseconds(8), [rt, misbehaving] {
    auto report = rt->Upgrade(misbehaving());
    EXPECT_FALSE(report.ok);
    EXPECT_TRUE(report.refused_flapping);
    EXPECT_EQ(report.pause_ns, 0);
    EXPECT_NE(report.error.find("flapping"), std::string::npos);
    // A different build (different policy id => different fingerprint) is
    // not damped by the flapping one's failures.
    auto other = rt->Upgrade(std::make_unique<WfqSched>(1));
    EXPECT_FALSE(other.refused_flapping);
  });
  PipeBenchConfig cfg;
  cfg.messages = 16000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(rt->rollbacks(), 3u);
  EXPECT_EQ(rt->fingerprint_refusals(), 1u);
}

TEST(FlapDamping, WindowDrainAllowsTheFingerprintAgain) {
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  FlapDampingConfig damp;
  damp.max_failures = 1;
  damp.window_ns = Milliseconds(2);
  s.runtime->SetFlapDamping(damp);
  EnokiRuntime* rt = s.runtime.get();
  auto misbehaving = [] {
    FaultPlan plan;
    plan.seed = 7;
    plan.probation_misbehave_rate = 1.0;
    return InjectedWfq(plan);
  };
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt, misbehaving] {
    EXPECT_TRUE(rt->Upgrade(misbehaving()).ok);  // fails probation, rolls back
  });
  s.core->loop().ScheduleAfter(Milliseconds(2), [rt, misbehaving] {
    EXPECT_TRUE(rt->Upgrade(misbehaving()).refused_flapping);  // inside window
  });
  s.core->loop().ScheduleAfter(Milliseconds(6), [rt, misbehaving] {
    auto report = rt->Upgrade(misbehaving());  // window drained: admitted again
    EXPECT_FALSE(report.refused_flapping);
    EXPECT_TRUE(report.ok);
  });
  PipeBenchConfig cfg;
  cfg.messages = 12000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(rt->fingerprint_refusals(), 1u);
  EXPECT_EQ(rt->rollbacks(), 2u);
}

// ---- Per-policy probation through the runtime ----

TEST(UpgradeProbation, UsesIncomingModulesDefaultBudgets) {
  FaultStack s = MakeFaultStack(std::make_unique<CentralSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  EnokiRuntime* rt = s.runtime.get();
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt] {
    auto report = rt->Upgrade(std::make_unique<CentralSched>(0));
    EXPECT_TRUE(report.ok);
    ASSERT_TRUE(rt->in_probation());
    // No explicit override: the incoming CentralSched's own (looser pick)
    // budget governs the window.
    EXPECT_EQ(rt->watchdog()->probation().max_pick_errors, 8u);
  });
  s.core->loop().ScheduleAfter(Milliseconds(2), [rt] {
    // An explicit UpgradeOptions.probation still overrides the default.
    UpgradeOptions opts;
    ProbationConfig probation;
    probation.max_pick_errors = 2;
    opts.probation = probation;
    auto report = rt->Upgrade(std::make_unique<CentralSched>(0), opts);
    if (report.ok) {
      EXPECT_EQ(rt->watchdog()->probation().max_pick_errors, 2u);
    }
  });
  PipeBenchConfig cfg;
  cfg.messages = 8000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
}

TEST(Upgrade, OptionsReArmCheckpointCadence) {
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  EnokiRuntime* rt = s.runtime.get();
  EXPECT_EQ(rt->checkpoint_interval(), 0);
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt] {
    UpgradeOptions opts;
    opts.checkpoint_interval_ns = Microseconds(400);
    EXPECT_TRUE(rt->Upgrade(std::make_unique<WfqSched>(0), opts).ok);
  });
  PipeBenchConfig cfg;
  cfg.messages = 8000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(rt->checkpoint_interval(), Microseconds(400));
  EXPECT_GE(rt->periodic_checkpoints(), 1u);
}

// ---- The 100-seed sweep (acceptance criteria) ----

struct RingSweepOutcome {
  bool completed = false;
  bool quarantined = false;
  bool fallback = false;
  uint64_t restarts = 0;
  uint64_t rollbacks = 0;
  uint64_t periodic = 0;
  uint64_t save_failures = 0;
  uint64_t rejects = 0;
  uint64_t restore_fallbacks = 0;
  uint64_t slot_rot = 0;
  std::string restore_timeline;
  std::string supervisor_timeline;
  std::string report;
  Time end_time = 0;

  bool operator==(const RingSweepOutcome& o) const {
    return completed == o.completed && quarantined == o.quarantined && fallback == o.fallback &&
           restarts == o.restarts && rollbacks == o.rollbacks && periodic == o.periodic &&
           save_failures == o.save_failures && rejects == o.rejects &&
           restore_fallbacks == o.restore_fallbacks && slot_rot == o.slot_rot &&
           restore_timeline == o.restore_timeline &&
           supervisor_timeline == o.supervisor_timeline && report == o.report &&
           end_time == o.end_time;
  }
};

RingSweepOutcome RunRingSweep(uint64_t seed) {
  FaultStack s =
      MakeFaultStack(InjectedWfq(FaultPlan::UpgradeMenu(seed, /*checkpoint_faults=*/true)));
  CheckpointSaboteur sab(seed, /*corrupt_rate=*/0.0, /*slot_rot_rate=*/0.5);
  s.runtime->SetCheckpointSaboteur(&sab);
  WatchdogConfig cfg;
  cfg.starvation_bound_ns = Milliseconds(20);
  s.runtime->EnableWatchdog(cfg, s.cfs_policy);
  s.runtime->EnableSupervisor(SupervisorConfig{}, [seed] {
    return InjectedWfq(FaultPlan::UpgradeMenu(seed, /*checkpoint_faults=*/true));
  });
  s.runtime->SetCheckpointCapacity(3);
  s.runtime->SetCheckpointInterval(Microseconds(250));
  EnokiRuntime* rt = s.runtime.get();
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt, seed] {
    UpgradeOptions opts;
    opts.checkpoint_interval_ns = Microseconds(250);
    (void)rt->Upgrade(
        InjectedWfq(FaultPlan::UpgradeMenu(seed ^ 0xBADC0FFEull, /*checkpoint_faults=*/true)),
        opts);
  });
  PipeBenchConfig pcfg;
  pcfg.messages = 300;
  auto r = RunPipeBench(*s.core, s.enoki_policy, pcfg);
  RingSweepOutcome out;
  out.completed = r.completed;
  out.quarantined = rt->quarantined();
  out.fallback = rt->fallback_done();
  out.restarts = rt->module_restarts();
  out.rollbacks = rt->rollbacks();
  out.periodic = rt->periodic_checkpoints();
  out.save_failures = rt->checkpoint_save_failures();
  out.rejects = rt->checkpoint_rejects();
  out.restore_fallbacks = rt->restore_fallbacks();
  out.slot_rot = sab.slot_corruptions();
  out.restore_timeline = rt->RestoreTimelineString();
  out.supervisor_timeline = rt->supervisor()->TimelineString();
  if (rt->crash_report().has_value()) {
    out.report = rt->crash_report()->ToString();
  }
  out.end_time = s.core->now();
  return out;
}

TEST(RecoverySweep, RingFaultsHundredSeedsZeroTaskLossIdenticalFallbackOrder) {
  uint64_t seeds_with_periodic = 0, seeds_with_save_crash = 0, seeds_with_rot = 0,
           seeds_with_fallback_walk = 0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    RingSweepOutcome a = RunRingSweep(seed);
    // Zero task loss under ring-slot bit-rot + crash-during-CheckpointNow on
    // every rung — the terminal CFS rung included.
    EXPECT_TRUE(a.completed) << "seed " << seed << " lost tasks";
    // Byte-identical fallback order across reruns: the restore timeline (the
    // exact generations skipped, in order, with reasons) plus the rest of
    // the recovery record.
    RingSweepOutcome b = RunRingSweep(seed);
    EXPECT_TRUE(a == b) << "seed " << seed << " diverged:\n"
                        << a.restore_timeline << "--- vs ---\n"
                        << b.restore_timeline;
    seeds_with_periodic += a.periodic > 0 ? 1 : 0;
    seeds_with_save_crash += a.save_failures > 0 ? 1 : 0;
    seeds_with_rot += a.slot_rot > 0 ? 1 : 0;
    seeds_with_fallback_walk += a.restore_fallbacks > 0 ? 1 : 0;
  }
  // The sweep must actually exercise the new failure modes, not skate by.
  EXPECT_GT(seeds_with_periodic, 0u);
  EXPECT_GT(seeds_with_save_crash, 0u);
  EXPECT_GT(seeds_with_rot, 0u);
  EXPECT_GT(seeds_with_fallback_walk, 0u);
}

}  // namespace
}  // namespace enoki
