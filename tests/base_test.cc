// Unit tests for the base substrate: RNG, stats, ring buffer, CPU mask,
// event loop, and the log-bucketed latency recorder.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "src/base/arena.h"
#include "src/base/cpumask.h"
#include "src/base/ring_buffer.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/simkernel/event_loop.h"

namespace enoki {
namespace {

// ---- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(100.0);
  }
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.25)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  StatAccumulator acc;
  for (int i = 0; i < 100000; ++i) {
    acc.Record(rng.NextGaussian());
  }
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Rng, ForkIndependent) {
  Rng parent(21);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

// ---- StatAccumulator ----

TEST(StatAccumulator, BasicMoments) {
  StatAccumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    acc.Record(x);
  }
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  EXPECT_NEAR(acc.variance(), 2.5, 1e-9);
}

TEST(StatAccumulator, EmptyIsZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(StatAccumulator, EmptyMinMaxAreZero) {
  // min()/max() must not leak the +/-inf sentinels on an empty accumulator.
  StatAccumulator acc;
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.sum(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(StatAccumulator, SingleSampleHasZeroVariance) {
  StatAccumulator acc;
  acc.Record(42.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 42.0);
  EXPECT_DOUBLE_EQ(acc.min(), 42.0);
  EXPECT_DOUBLE_EQ(acc.max(), 42.0);
  // Sample variance is undefined at n=1; the accumulator reports 0, not NaN.
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(StatAccumulator, ResetRestoresEmptyState) {
  StatAccumulator acc;
  acc.Record(-7.0);
  acc.Record(9.0);
  acc.Reset();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  // A reset accumulator must accept new samples as if freshly constructed
  // (in particular the min/max sentinels must be re-armed).
  acc.Record(5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
}

// ---- LatencyRecorder ----

TEST(LatencyRecorder, ExactSmallValues) {
  LatencyRecorder rec;
  for (Duration d = 0; d < 64; ++d) {
    rec.Record(d);
  }
  EXPECT_EQ(rec.count(), 64u);
  EXPECT_EQ(rec.min(), 0u);
  EXPECT_EQ(rec.max(), 63u);
  EXPECT_LE(rec.Percentile(50.0), 32u);
}

TEST(LatencyRecorder, PercentileWithinRelativeError) {
  LatencyRecorder rec;
  // Uniform 1..100000 ns.
  for (Duration d = 1; d <= 100000; ++d) {
    rec.Record(d);
  }
  const Duration p50 = rec.Percentile(50.0);
  const Duration p99 = rec.Percentile(99.0);
  EXPECT_NEAR(static_cast<double>(p50), 50000.0, 50000.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(p99), 99000.0, 99000.0 * 0.05);
}

TEST(LatencyRecorder, LargeValues) {
  LatencyRecorder rec;
  rec.Record(Seconds(10));
  rec.Record(Seconds(20));
  EXPECT_GE(rec.Percentile(99.0), Seconds(10));
  EXPECT_EQ(rec.max(), Seconds(20));
}

TEST(LatencyRecorder, MergeCombinesCounts) {
  LatencyRecorder a;
  LatencyRecorder b;
  a.Record(100);
  b.Record(200);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 200u);
}

TEST(LatencyRecorder, MonotonePercentiles) {
  LatencyRecorder rec;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    rec.Record(rng.NextBelow(1'000'000));
  }
  Duration prev = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    const Duration v = rec.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
}

TEST(LatencyRecorder, EmptyPercentileIsZero) {
  // Percentile on an empty recorder must not divide by zero or walk off the
  // bucket array; every query answers 0.
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.Percentile(0.0), 0);
  EXPECT_EQ(rec.Percentile(50.0), 0);
  EXPECT_EQ(rec.Percentile(100.0), 0);
  EXPECT_EQ(rec.min(), 0);
  EXPECT_EQ(rec.max(), 0);
  EXPECT_EQ(rec.mean_ns(), 0.0);
}

TEST(LatencyRecorder, SingleSamplePercentiles) {
  LatencyRecorder rec;
  rec.Record(777);
  // Every percentile of a single sample is that sample (to bucket
  // resolution: the upper edge of its containing bucket).
  const Duration p0 = rec.Percentile(0.0);
  const Duration p100 = rec.Percentile(100.0);
  EXPECT_EQ(p0, p100);
  EXPECT_GE(p100, 777);
  EXPECT_LE(static_cast<double>(p100), 777.0 * 1.05);
}

TEST(LatencyRecorder, ResetRestoresEmptyState) {
  LatencyRecorder rec;
  rec.Record(1000);
  rec.Record(2000);
  rec.Reset();
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.Percentile(99.0), 0);
  EXPECT_EQ(rec.max(), 0);
  rec.Record(30);
  EXPECT_EQ(rec.count(), 1u);
  EXPECT_EQ(rec.min(), 30);
  EXPECT_EQ(rec.max(), 30);
}

TEST(GeometricMeanTest, KnownValue) {
  EXPECT_NEAR(GeometricMean({1.0, 4.0}), 2.0, 1e-9);
  EXPECT_NEAR(GeometricMean({2.0, 2.0, 2.0}), 2.0, 1e-9);
}

// ---- RingBuffer ----

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> rb(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(rb.Push(i));
  }
  for (int i = 0; i < 8; ++i) {
    auto v = rb.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(rb.Pop().has_value());
}

TEST(RingBuffer, OverrunDrops) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 10; ++i) {
    rb.Push(i);
  }
  EXPECT_EQ(rb.dropped(), 6u);
  EXPECT_EQ(rb.size(), 4u);
}

TEST(RingBuffer, CapacityIsExactForPow2) {
  RingBuffer<int> rb(8);
  EXPECT_EQ(rb.capacity(), 8u);
}

TEST(RingBuffer, RoundUpPow2Helper) {
  EXPECT_EQ(RingBuffer<int>::RoundUpPow2(0), 1u);
  EXPECT_EQ(RingBuffer<int>::RoundUpPow2(1), 1u);
  EXPECT_EQ(RingBuffer<int>::RoundUpPow2(5), 8u);
  EXPECT_EQ(RingBuffer<int>::RoundUpPow2(1024), 1024u);
  EXPECT_EQ(RingBuffer<int>::RoundUpPow2(1025), 2048u);
}

TEST(RingBufferDeathTest, RejectsNonPow2Capacity) {
  EXPECT_DEATH(RingBuffer<int>(5), "power of two");
  EXPECT_DEATH(RingBuffer<int>(0), "power of two");
}

TEST(RingBuffer, SpscThreaded) {
  RingBuffer<uint64_t> rb(1024);
  constexpr uint64_t kCount = 200000;
  std::thread producer([&rb] {
    for (uint64_t i = 1; i <= kCount; ++i) {
      while (!rb.Push(i)) {
      }
    }
  });
  uint64_t expected = 1;
  while (expected <= kCount) {
    if (auto v = rb.Pop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
  // All values arrived intact and in order (failed pushes were retried, so
  // nothing was actually lost).
  EXPECT_EQ(expected, kCount + 1);
}

TEST(RingBuffer, MoveOnlyElements) {
  RingBuffer<std::unique_ptr<int>> rb(4);
  rb.Push(std::make_unique<int>(42));
  auto v = rb.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

// ---- CpuMask ----

TEST(CpuMask, SetTestClear) {
  CpuMask m;
  EXPECT_TRUE(m.Empty());
  m.Set(5);
  m.Set(79);
  EXPECT_TRUE(m.Test(5));
  EXPECT_TRUE(m.Test(79));
  EXPECT_FALSE(m.Test(6));
  EXPECT_EQ(m.Count(), 2);
  m.Clear(5);
  EXPECT_FALSE(m.Test(5));
}

TEST(CpuMask, AllAndFirst) {
  CpuMask m = CpuMask::All(8);
  EXPECT_EQ(m.Count(), 8);
  EXPECT_EQ(m.First(), 0);
  EXPECT_FALSE(m.Test(8));
}

TEST(CpuMask, NextAfterIterates) {
  CpuMask m;
  m.Set(3);
  m.Set(70);
  EXPECT_EQ(m.First(), 3);
  EXPECT_EQ(m.NextAfter(3), 70);
  EXPECT_EQ(m.NextAfter(70), -1);
}

TEST(CpuMask, IntersectAndWords) {
  CpuMask a = CpuMask::All(10);
  CpuMask b = CpuMask::Single(4);
  EXPECT_EQ(a.Intersect(b), b);
  CpuMask c = CpuMask::FromWords(a.word(0), a.word(1));
  EXPECT_EQ(a, c);
}

TEST(CpuMask, OutOfRangeTestIsFalse) {
  CpuMask m = CpuMask::All(128);
  EXPECT_FALSE(m.Test(-1));
  EXPECT_FALSE(m.Test(128));
}

// ---- EventLoop ----

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(30, [&] { order.push_back(3); });
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(20, [&] { order.push_back(2); });
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30u);
}

TEST(EventLoop, TieBreakBySequence) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(10, [&] { order.push_back(2); });
  loop.ScheduleAt(10, [&] { order.push_back(3); });
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.ScheduleAt(10, [&] { ran = true; });
  loop.Cancel(id);
  loop.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  loop.ScheduleAt(10, [&] { ++count; });
  loop.ScheduleAt(100, [&] { ++count; });
  loop.RunUntil(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now(), 50u);
  loop.RunUntil(100);
  EXPECT_EQ(count, 2);
}

TEST(EventLoop, EventsScheduleEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) {
      loop.ScheduleAfter(10, recur);
    }
  };
  loop.ScheduleAfter(10, recur);
  loop.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now(), 50u);
}

TEST(EventLoop, ExecutedCountExcludesCancelled) {
  EventLoop loop;
  loop.ScheduleAt(1, [] {});
  const EventId id = loop.ScheduleAt(2, [] {});
  loop.Cancel(id);
  loop.RunUntilIdle();
  EXPECT_EQ(loop.events_executed(), 1u);
}

// ---- RingBuffer compile-time capacity ----

TEST(RingBuffer, CheckedCapacityConstructsValidRing) {
  RingBuffer<int> rb = RingBuffer<int>::ForCapacity<8>();
  EXPECT_EQ(rb.capacity(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(rb.Push(i));
  }
  EXPECT_FALSE(rb.Push(99));  // bounded: the ninth push is observed dropped
  EXPECT_EQ(rb.dropped(), 1u);
  EXPECT_EQ(rb.Pop().value(), 0);
  // CheckedCapacity is usable in constant expressions.
  static_assert(RingBuffer<int>::CheckedCapacity<4096>() == 4096);
  // Note: RingBuffer<int>::CheckedCapacity<48>() is (deliberately) a
  // compile error — mailbox sizing mistakes fail at build time.
}

// ---- Arena ----

TEST(Arena, BumpAllocatesAndAligns) {
  Arena arena(64);
  auto* a = static_cast<uint8_t*>(arena.Allocate(3, 1));
  auto* b = static_cast<uint64_t*>(arena.Allocate(8, 8));
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  *b = 42;  // must be writable
  EXPECT_EQ(*b, 42u);
  EXPECT_GE(arena.bytes_used(), 11u);
}

TEST(Arena, GrowsAcrossChunksAndResetsToOne) {
  Arena arena(64);
  for (int i = 0; i < 100; ++i) {
    arena.Allocate(32, 8);
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  arena.Reset();
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.bytes_used(), 0u);
  // A warmed arena absorbs the same load without growing again... provided
  // the retained (largest) chunk covers it.
  const size_t retained = arena.chunk_count();
  arena.Allocate(32, 8);
  EXPECT_EQ(arena.chunk_count(), retained);
}

TEST(Arena, VectorGrowthReusesTrailingAllocation) {
  Arena arena(1024);
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 200; ++i) {
    v.push_back(i);
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(v[i], i);
  }
  // Growth happened entirely inside the arena: no per-element heap churn and
  // the deallocate-trailing fast path keeps usage near the final capacity.
  EXPECT_GE(arena.bytes_used(), 200 * sizeof(int));
}

TEST(Arena, NewConstructsInPlace) {
  struct Pod {
    int x;
    double y;
  };
  Arena arena;
  Pod* p = arena.New<Pod>(Pod{7, 2.5});
  EXPECT_EQ(p->x, 7);
  EXPECT_EQ(p->y, 2.5);
}

}  // namespace
}  // namespace enoki
