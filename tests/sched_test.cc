// Behavioural tests for every scheduler: CFS, Enoki WFQ, FIFO, Shinjuku,
// locality-aware, the Arachne core arbiter, and the ghOSt model.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "src/enoki/runtime.h"
#include "src/sched/arbiter.h"
#include "src/sched/cfs.h"
#include "src/sched/fifo.h"
#include "src/sched/ghost.h"
#include "src/sched/locality.h"
#include "src/sched/nice_weights.h"
#include "src/sched/shinjuku.h"
#include "src/sched/wfq.h"
#include "src/simkernel/bodies.h"
#include "src/workloads/fairness.h"

namespace enoki {
namespace {

// ---- Nice weights ----

TEST(NiceWeights, MatchesLinuxTable) {
  EXPECT_EQ(NiceToWeight(0), 1024u);
  EXPECT_EQ(NiceToWeight(-20), 88761u);
  EXPECT_EQ(NiceToWeight(19), 15u);
}

TEST(NiceWeights, EachStepIsAbout25Percent) {
  for (int nice = kMinNice; nice < kMaxNice; ++nice) {
    const double ratio =
        static_cast<double>(NiceToWeight(nice)) / static_cast<double>(NiceToWeight(nice + 1));
    EXPECT_GT(ratio, 1.15) << nice;
    EXPECT_LT(ratio, 1.35) << nice;
  }
}

TEST(NiceWeights, VruntimeScalesInversely) {
  EXPECT_EQ(CalcDeltaVruntime(1024, kNice0Weight), 1024u);
  EXPECT_LT(CalcDeltaVruntime(1024, NiceToWeight(-5)), 1024u);
  EXPECT_GT(CalcDeltaVruntime(1024, NiceToWeight(5)), 1024u);
}

// ---- Helpers ----

struct CfsSim {
  CfsSim(MachineSpec spec = MachineSpec::OneSocket8()) : core(spec, SimCosts{}) {
    core.RegisterClass(&cfs);
  }
  SchedCore core;
  CfsClass cfs;
};

template <typename Module>
struct EnokiSim {
  template <typename... Args>
  explicit EnokiSim(Args&&... args)
      : core(MachineSpec::OneSocket8(), SimCosts{}),
        runtime(std::make_unique<Module>(0, std::forward<Args>(args)...)) {
    policy = core.RegisterClass(&runtime);
    core.RegisterClass(&cfs);
  }
  SchedCore core;
  EnokiRuntime runtime;
  CfsClass cfs;
  int policy = 0;
  Module* module() { return static_cast<Module*>(runtime.module()); }
};

// ---- CFS ----

TEST(Cfs, EqualSharesOnOneCore) {
  CfsSim sim;
  auto result = RunFairness(sim.core, 0, 4, Seconds(1), /*same_core=*/true, {});
  ASSERT_TRUE(result.completed);
  const double first = *std::min_element(result.completion_seconds.begin(),
                                         result.completion_seconds.end());
  const double last = *std::max_element(result.completion_seconds.begin(),
                                        result.completion_seconds.end());
  // 4 x 1s of work sharing one core: all finish close to 4s.
  EXPECT_NEAR(last, 4.0, 0.3);
  EXPECT_LT(last - first, 0.25);
}

TEST(Cfs, LowPriorityTaskFinishesLast) {
  CfsSim sim;
  auto result = RunFairness(sim.core, 0, 3, Milliseconds(600), /*same_core=*/true,
                            {0, 0, kMaxNice});
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.completion_seconds[2], result.completion_seconds[0]);
  EXPECT_GT(result.completion_seconds[2], result.completion_seconds[1]);
}

TEST(Cfs, HighWeightGetsProportionallyMore) {
  // nice -5 vs nice 5: weight ratio ~9.3; the favored task should finish
  // much earlier when both share a core.
  CfsSim sim;
  auto result =
      RunFairness(sim.core, 0, 2, Milliseconds(500), /*same_core=*/true, {-5, 5});
  ASSERT_TRUE(result.completed);
  EXPECT_LT(result.completion_seconds[0] * 1.5, result.completion_seconds[1]);
}

TEST(Cfs, SpreadsTasksAcrossIdleCores) {
  CfsSim sim;
  auto result = RunFairness(sim.core, 0, 8, Milliseconds(100), /*same_core=*/false, {});
  ASSERT_TRUE(result.completed);
  // One task per core: everything completes in ~0.1s, not 0.8s.
  for (double c : result.completion_seconds) {
    EXPECT_LT(c, 0.2);
  }
}

TEST(Cfs, NewidleBalancePullsWork) {
  // 2 long tasks pinned nowhere; start 4 tasks on a machine and watch
  // migrations happen when cores go idle at different times.
  CfsSim sim;
  for (int i = 0; i < 12; ++i) {
    sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(20 + 10 * i),
                                                            Milliseconds(1)),
                        0);
  }
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(10)));
  EXPECT_GT(sim.cfs.migrations(), 0u);
}

TEST(Cfs, WakeupPreemptionByVruntime) {
  // A task that slept accumulates less vruntime and preempts a CPU hog when
  // it wakes on the same core.
  CfsSim sim;
  Task* hog = sim.core.CreateTaskOn("hog", std::make_unique<CpuBoundBody>(Milliseconds(100), Milliseconds(50)),
                                    0, 0, CpuMask::Single(0));
  auto steps = std::make_shared<int>(0);
  auto wake_lat = std::make_shared<Duration>(0);
  Task* sleeper = sim.core.CreateTaskOn(
      "sleeper", MakeFnBody([steps](SimContext&) -> Action {
        if (*steps >= 20) {
          return Action::Exit();
        }
        ++*steps;
        if (*steps % 2 == 1) {
          return Action::Sleep(Milliseconds(2));
        }
        return Action::Compute(Microseconds(100));
      }),
      0, 0, CpuMask::Single(0));
  sim.core.set_wake_latency_hook([&, sleeper_pid = sleeper->pid()](Task* t, Duration lat) {
    // Skip the initial new-task dispatch (no sleeper credit yet); measure
    // post-sleep wakeups, which is what wakeup preemption governs.
    if (t->pid() == sleeper_pid && t->wake_count() > 1 && lat > *wake_lat) {
      *wake_lat = lat;
    }
  });
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilTasksDead({sleeper}, Seconds(5)));
  (void)hog;
  // The sleeper never waits anywhere near a full CFS slice behind the hog.
  EXPECT_LT(*wake_lat, Milliseconds(2));
}

// ---- Enoki WFQ ----

TEST(Wfq, EqualSharesOnOneCore) {
  EnokiSim<WfqSched> sim;
  auto result = RunFairness(sim.core, sim.policy, 4, Seconds(1), /*same_core=*/true, {});
  ASSERT_TRUE(result.completed);
  const double last = *std::max_element(result.completion_seconds.begin(),
                                        result.completion_seconds.end());
  const double first = *std::min_element(result.completion_seconds.begin(),
                                         result.completion_seconds.end());
  EXPECT_NEAR(last, 4.0, 0.3);
  EXPECT_LT(last - first, 0.25);
  EXPECT_EQ(sim.core.pick_errors(), 0u);
}

TEST(Wfq, WeightingRespected) {
  EnokiSim<WfqSched> sim;
  auto result = RunFairness(sim.core, sim.policy, 3, Milliseconds(600), /*same_core=*/true,
                            {0, 0, kMaxNice});
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.completion_seconds[2], result.completion_seconds[0]);
}

TEST(Wfq, IdleStealingDrainsLongQueue) {
  // All tasks start pinned... rather: create 8 tasks while 7 cores are kept
  // busy is complex; instead create 16 tasks and verify total time ~2x the
  // single-task time (full utilization requires stealing to work).
  EnokiSim<WfqSched> sim;
  for (int i = 0; i < 16; ++i) {
    sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(50), Milliseconds(1)),
                        sim.policy);
  }
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(10)));
  // 16 x 50ms over 8 cores = 100ms ideal; allow 30% overhead.
  EXPECT_LT(ToSeconds(sim.core.now()), 0.13);
}

TEST(Wfq, VruntimeAdvancesWithRuntime) {
  EnokiSim<WfqSched> sim;
  Task* t = sim.core.CreateTaskOn("t", std::make_unique<CpuBoundBody>(Milliseconds(10), Milliseconds(1)),
                                  sim.policy, 0, CpuMask::Single(0));
  // A competitor keeps the queue non-empty so vruntime is observable.
  sim.core.CreateTaskOn("u", std::make_unique<CpuBoundBody>(Milliseconds(10), Milliseconds(1)),
                        sim.policy, 0, CpuMask::Single(0));
  sim.core.Start();
  sim.core.RunFor(Milliseconds(5));
  const uint64_t vr_mid = sim.module()->VruntimeOf(t->pid());
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(5)));
  EXPECT_GT(vr_mid, 0u);
}

TEST(Wfq, NoTaskLostUnderChurn) {
  // Tasks that block/wake/migrate continuously must all exit: nothing gets
  // lost in queues or token maps (task conservation).
  EnokiSim<WfqSched> sim;
  for (int i = 0; i < 24; ++i) {
    auto left = std::make_shared<int>(50);
    sim.core.CreateTask("churn-" + std::to_string(i),
                        MakeFnBody([left](SimContext&) -> Action {
                          if (*left == 0) {
                            return Action::Exit();
                          }
                          --*left;
                          if (*left % 3 == 0) {
                            return Action::Sleep(Microseconds(130));
                          }
                          if (*left % 7 == 0) {
                            return Action::Yield();
                          }
                          return Action::Compute(Microseconds(90));
                        }),
                        sim.policy);
  }
  sim.core.Start();
  EXPECT_TRUE(sim.core.RunUntilAllExit(Seconds(10)));
  EXPECT_EQ(sim.core.pick_errors(), 0u);
  for (int cpu = 0; cpu < sim.core.ncpus(); ++cpu) {
    EXPECT_EQ(sim.module()->QueueDepth(cpu), 0u) << cpu;
    EXPECT_EQ(sim.runtime.QueuedCount(cpu), 0u) << cpu;
  }
}

// ---- FIFO ----

TEST(Fifo, RunsTasksInArrivalOrderPerCore) {
  EnokiSim<FifoSched> sim;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    const int id = i;
    auto ran = std::make_shared<bool>(false);
    sim.core.CreateTaskOn("t" + std::to_string(i),
                          MakeFnBody([&order, id, ran](SimContext&) -> Action {
                            if (!*ran) {
                              *ran = true;
                              order.push_back(id);
                              return Action::Compute(Milliseconds(3));
                            }
                            return Action::Exit();
                          }),
                          sim.policy, 0, CpuMask::Single(2));
  }
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(5)));
  // First scheduled in arrival order (round-robin ticks interleave later).
  EXPECT_EQ(order[0], 0);
}

TEST(Fifo, BalanceStealsFromLongestQueue) {
  EnokiSim<FifoSched> sim;
  // Round-robin placement puts one task per cpu; make 16 so queues form,
  // then watch the overall makespan stay near ideal (stealing works).
  for (int i = 0; i < 16; ++i) {
    sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(30), Milliseconds(1)),
                        sim.policy);
  }
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(10)));
  EXPECT_LT(ToSeconds(sim.core.now()), 0.09);
  EXPECT_EQ(sim.core.pick_errors(), 0u);
}

// ---- Shinjuku ----

TEST(Shinjuku, PreemptsLongTasksQuickly) {
  // One long task and a stream of short tasks on a single worker CPU: the
  // short tasks must not wait for the long one to finish.
  EnokiSim<ShinjukuSched> sim;
  CpuMask one = CpuMask::Single(1);
  sim.core.CreateTaskOn("long", std::make_unique<CpuBoundBody>(Milliseconds(10), Milliseconds(10)),
                        sim.policy, 0, one);
  std::vector<Task*> shorts;
  std::vector<Time> done(4, 0);
  for (int i = 0; i < 4; ++i) {
    auto state = std::make_shared<int>(0);
    const int idx = i;
    auto done_ptr = &done;
    shorts.push_back(sim.core.CreateTaskOn(
        "short" + std::to_string(i), MakeFnBody([state, idx, done_ptr](SimContext& ctx) -> Action {
          if (*state == 0) {
            *state = 1;
            return Action::Compute(Microseconds(5));
          }
          (*done_ptr)[idx] = ctx.now();
          return Action::Exit();
        }),
        sim.policy, 0, one));
  }
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilTasksDead(shorts, Seconds(5)));
  for (Time t : done) {
    // Without 10us preemption the shorts would wait ~10ms behind the long
    // task; with it they finish within a few slices.
    EXPECT_LT(t, Microseconds(300));
  }
  EXPECT_EQ(sim.core.pick_errors(), 0u);
}

TEST(Shinjuku, ApproximatesGlobalFcfsViaStealing) {
  EnokiSim<ShinjukuSched> sim;
  for (int i = 0; i < 20; ++i) {
    sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(5), Milliseconds(5)),
                        sim.policy);
  }
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(10)));
  // 20 x 5ms on 8 cores ~ 15ms ideal.
  EXPECT_LT(ToSeconds(sim.core.now()), 0.030);
  EXPECT_EQ(sim.core.pick_errors(), 0u);
}

TEST(Shinjuku, UpgradePreservesQueue) {
  EnokiSim<ShinjukuSched> sim;
  for (int i = 0; i < 6; ++i) {
    sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(10), Milliseconds(1)),
                        sim.policy);
  }
  sim.core.loop().ScheduleAfter(Milliseconds(3), [&] {
    EXPECT_TRUE(sim.runtime.Upgrade(std::make_unique<ShinjukuSched>(0)).ok);
  });
  sim.core.Start();
  EXPECT_TRUE(sim.core.RunUntilAllExit(Seconds(10)));
  EXPECT_EQ(sim.core.pick_errors(), 0u);
}

// ---- Locality ----

TEST(Locality, HintsCoLocateGroups) {
  EnokiSim<LocalitySched> sim(/*use_hints=*/true);
  const int q = sim.runtime.CreateHintQueue(256);
  // Two groups of blocking/waking tasks.
  std::vector<Task*> tasks;
  for (int g = 0; g < 2; ++g) {
    for (int i = 0; i < 2; ++i) {
      auto left = std::make_shared<int>(30);
      Task* t = sim.core.CreateTask("g" + std::to_string(g),
                                    MakeFnBody([left](SimContext&) -> Action {
                                      if (*left == 0) {
                                        return Action::Exit();
                                      }
                                      --*left;
                                      if (*left % 2 == 0) {
                                        return Action::Sleep(Microseconds(100));
                                      }
                                      return Action::Compute(Microseconds(50));
                                    }),
                                    sim.policy);
      HintBlob hint;
      hint.w[0] = t->pid();
      hint.w[1] = static_cast<uint64_t>(g);
      sim.runtime.SendHint(q, hint);
      tasks.push_back(t);
    }
  }
  sim.core.Start();
  sim.core.RunFor(Milliseconds(2));
  // After the first wake cycle, group members share a CPU.
  EXPECT_EQ(tasks[0]->cpu(), tasks[1]->cpu());
  EXPECT_EQ(tasks[2]->cpu(), tasks[3]->cpu());
  EXPECT_NE(tasks[0]->cpu(), tasks[2]->cpu());
  EXPECT_TRUE(sim.core.RunUntilAllExit(Seconds(5)));
}

TEST(Locality, WithoutHintsPlacementIsSpread) {
  EnokiSim<LocalitySched> sim(/*use_hints=*/false);
  std::vector<Task*> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back(sim.core.CreateTask(
        "t", std::make_unique<CpuBoundBody>(Milliseconds(3), Microseconds(500)), sim.policy));
  }
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(5)));
  // Random placement across 8 cores: more than 2 distinct cores used.
  std::set<int> cpus;
  for (Task* t : tasks) {
    cpus.insert(t->cpu());
  }
  EXPECT_GT(cpus.size(), 2u);
}

// ---- Arbiter ----

struct ArbiterSim {
  ArbiterSim()
      : core(MachineSpec::OneSocket8(), SimCosts{}),
        runtime(std::make_unique<ArbiterSched>(0, 1, 7)) {
    policy = core.RegisterClass(&runtime);
    core.RegisterClass(&cfs);
    hint_q = runtime.CreateHintQueue(256);
    rev_q = runtime.CreateRevQueue(256);
  }
  ArbiterSched* module() { return static_cast<ArbiterSched*>(runtime.module()); }
  SchedCore core;
  EnokiRuntime runtime;
  CfsClass cfs;
  int policy = 0;
  int hint_q = 0;
  int rev_q = 0;
};

TEST(Arbiter, GrantsRequestedCores) {
  ArbiterSim sim;
  // Three activations, app requests 2 cores.
  std::vector<Task*> acts;
  for (int i = 0; i < 3; ++i) {
    auto first = std::make_shared<bool>(true);
    acts.push_back(sim.core.CreateTask("act", MakeFnBody([first](SimContext&) -> Action {
                                         return Action::Compute(Microseconds(100));
                                       }),
                                       sim.policy));
    HintBlob bind;
    bind.w[0] = ArbiterSched::kBindActivation;
    bind.w[1] = 1;
    bind.w[2] = acts.back()->pid();
    sim.runtime.SendHint(sim.hint_q, bind);
  }
  HintBlob req;
  req.w[0] = ArbiterSched::kReqCores;
  req.w[1] = 1;
  req.w[2] = 2;
  sim.runtime.SendHint(sim.hint_q, req);
  sim.core.Start();
  sim.core.RunFor(Milliseconds(10));
  EXPECT_EQ(sim.module()->granted_cores(1), 2u);
  // Two grant hints arrived on the reverse queue.
  int grants = 0;
  while (auto h = sim.runtime.PollRevHint(sim.rev_q)) {
    if (h->w[0] == ArbiterSched::kGrantCore) {
      ++grants;
    }
  }
  EXPECT_EQ(grants, 2);
  EXPECT_EQ(sim.core.pick_errors(), 0u);
}

TEST(Arbiter, ReclaimReleasesOnBlock) {
  ArbiterSim sim;
  auto park = std::make_shared<WaitQueue>("park");
  auto should_park = std::make_shared<bool>(false);
  Task* act = sim.core.CreateTask("act", MakeFnBody([park, should_park](SimContext&) -> Action {
                                    if (*should_park) {
                                      *should_park = false;
                                      return Action::Block(park.get());
                                    }
                                    return Action::Compute(Microseconds(100));
                                  }),
                                  sim.policy);
  HintBlob bind;
  bind.w[0] = ArbiterSched::kBindActivation;
  bind.w[1] = 1;
  bind.w[2] = act->pid();
  sim.runtime.SendHint(sim.hint_q, bind);
  HintBlob req;
  req.w[0] = ArbiterSched::kReqCores;
  req.w[1] = 1;
  req.w[2] = 1;
  sim.runtime.SendHint(sim.hint_q, req);
  sim.core.Start();
  sim.core.RunFor(Milliseconds(5));
  EXPECT_EQ(sim.module()->granted_cores(1), 1u);

  // Now request zero cores; the arbiter asks for the core back; the
  // activation parks at its next check; the core returns to the free pool.
  req.w[2] = 0;
  sim.runtime.SendHint(sim.hint_q, req);
  sim.core.loop().ScheduleAfter(Milliseconds(2), [&] { *should_park = true; });
  sim.core.RunFor(Milliseconds(10));
  EXPECT_EQ(sim.module()->granted_cores(1), 0u);
  EXPECT_EQ(sim.module()->free_cores(), 7u);
}

// ---- ghOSt ----

struct GhostSim {
  explicit GhostSim(GhostClass::Mode mode, int agent_cpu = 7)
      : core(MachineSpec::OneSocket8(), SimCosts{}),
        ghost(mode, mode == GhostClass::Mode::kPerCpuFifo ? CpuMask::All(8) : CpuMask::All(7)) {
    agent_policy = core.RegisterClass(&agents);
    ghost_policy = core.RegisterClass(&ghost);
    core.RegisterClass(&cfs);
    ghost.SpawnAgents(agent_policy, agent_cpu);
  }
  SchedCore core;
  AgentClass agents;
  GhostClass ghost;
  CfsClass cfs;
  int agent_policy = 0;
  int ghost_policy = 0;
};

TEST(Ghost, PerCpuFifoRunsTasks) {
  GhostSim sim(GhostClass::Mode::kPerCpuFifo);
  std::vector<Task*> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(sim.core.CreateTask(
        "t", std::make_unique<CpuBoundBody>(Milliseconds(3), Milliseconds(1)), sim.ghost_policy));
  }
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilTasksDead(tasks, sim.core.now() + Seconds(5)));
  EXPECT_GT(sim.ghost.commits(), 0u);
  EXPECT_GT(sim.ghost.messages(), 0u);
}

TEST(Ghost, SolRunsTasksFromDedicatedAgent) {
  GhostSim sim(GhostClass::Mode::kSol);
  std::vector<Task*> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(sim.core.CreateTask(
        "t", std::make_unique<CpuBoundBody>(Milliseconds(3), Milliseconds(1)), sim.ghost_policy));
  }
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilTasksDead(tasks, sim.core.now() + Seconds(5)));
  // The agent occupies core 7 continuously.
  Task* agent = sim.core.CurrentOn(7);
  ASSERT_NE(agent, nullptr);
  EXPECT_EQ(agent->name(), "ghost-agent-global");
}

TEST(Ghost, ShinjukuModePreemptsLongTasks) {
  GhostSim sim(GhostClass::Mode::kShinjuku);
  CpuMask one = CpuMask::Single(1);
  sim.core.CreateTaskOn("long", std::make_unique<CpuBoundBody>(Milliseconds(10), Milliseconds(10)),
                        sim.ghost_policy, 0, one);
  auto state = std::make_shared<int>(0);
  auto done = std::make_shared<Time>(0);
  Task* short_task = sim.core.CreateTaskOn(
      "short", MakeFnBody([state, done](SimContext& ctx) -> Action {
        if (*state == 0) {
          *state = 1;
          return Action::Compute(Microseconds(5));
        }
        *done = ctx.now();
        return Action::Exit();
      }),
      sim.ghost_policy, 0, one);
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilTasksDead({short_task}, sim.core.now() + Seconds(5)));
  // Preempted within a few 10us slices plus agent latency, far below 10ms.
  EXPECT_LT(*done, Milliseconds(1));
}

TEST(Ghost, CedesIdleCpusToCfs) {
  // A CFS batch task shares the machine: when ghost has nothing runnable,
  // CFS runs.
  GhostSim sim(GhostClass::Mode::kSol);
  Task* batch = sim.core.CreateTask("batch", std::make_unique<CpuBoundBody>(Milliseconds(20), Milliseconds(1)),
                                    2 /* cfs policy */);
  std::vector<Task*> tasks{batch};
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilTasksDead(tasks, sim.core.now() + Seconds(5)));
  EXPECT_GE(batch->total_runtime(), Milliseconds(20));
}

}  // namespace
}  // namespace enoki
