#include <gtest/gtest.h>

#include "src/enoki/runtime.h"
#include "src/sched/cfs.h"
#include "src/sched/wfq.h"
#include "src/workloads/pipe.h"

namespace enoki {
namespace {

TEST(Smoke, PipeOnCfs) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  CfsClass cfs;
  core.RegisterClass(&cfs);
  PipeBenchConfig cfg;
  cfg.messages = 1000;
  auto result = RunPipeBench(core, 0, cfg);
  ASSERT_TRUE(result.completed);
  printf("CFS two-core: %.2f us/wakeup\n", result.usec_per_wakeup);
  EXPECT_GT(result.usec_per_wakeup, 0.5);
  EXPECT_LT(result.usec_per_wakeup, 50.0);
}

TEST(Smoke, PipeOnWfq) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  auto runtime = std::make_unique<EnokiRuntime>(std::make_unique<WfqSched>(0));
  CfsClass cfs;
  const int wfq_policy = core.RegisterClass(runtime.get());
  core.RegisterClass(&cfs);
  PipeBenchConfig cfg;
  cfg.messages = 1000;
  auto result = RunPipeBench(core, wfq_policy, cfg);
  ASSERT_TRUE(result.completed);
  printf("WFQ two-core: %.2f us/wakeup (pick errors %llu)\n", result.usec_per_wakeup,
         (unsigned long long)core.pick_errors());
  EXPECT_EQ(core.pick_errors(), 0u);
}

TEST(Smoke, PipeSameCore) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  CfsClass cfs;
  core.RegisterClass(&cfs);
  PipeBenchConfig cfg;
  cfg.messages = 1000;
  cfg.same_core = true;
  auto result = RunPipeBench(core, 0, cfg);
  ASSERT_TRUE(result.completed);
  printf("CFS one-core: %.2f us/wakeup\n", result.usec_per_wakeup);
}

}  // namespace
}  // namespace enoki

#include "src/enoki/replay.h"
#include "src/sched/fifo.h"
#include "src/sched/ghost.h"
#include "src/sched/locality.h"
#include "src/sched/shinjuku.h"

namespace enoki {
namespace {

TEST(Smoke, PipeOnGhostSol) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  AgentClass agents;
  CpuMask workers = CpuMask::All(7);  // core 7 dedicated to the agent
  GhostClass ghost(GhostClass::Mode::kSol, workers);
  const int agent_policy = core.RegisterClass(&agents);
  const int ghost_policy = core.RegisterClass(&ghost);
  CfsClass cfs;
  core.RegisterClass(&cfs);
  ghost.SpawnAgents(agent_policy, 7);
  PipeBenchConfig cfg;
  cfg.messages = 500;
  auto result = RunPipeBench(core, ghost_policy, cfg);
  ASSERT_TRUE(result.completed);
  printf("ghOSt SOL two-core: %.2f us/wakeup\n", result.usec_per_wakeup);
}

TEST(Smoke, PipeOnGhostFifo) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  AgentClass agents;
  GhostClass ghost(GhostClass::Mode::kPerCpuFifo, CpuMask::All(8));
  const int agent_policy = core.RegisterClass(&agents);
  const int ghost_policy = core.RegisterClass(&ghost);
  CfsClass cfs;
  core.RegisterClass(&cfs);
  ghost.SpawnAgents(agent_policy, -1);
  PipeBenchConfig cfg;
  cfg.messages = 500;
  auto result = RunPipeBench(core, ghost_policy, cfg);
  ASSERT_TRUE(result.completed);
  printf("ghOSt FIFO two-core: %.2f us/wakeup\n", result.usec_per_wakeup);
}

TEST(Smoke, PipeOnShinjuku) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<ShinjukuSched>(0));
  CfsClass cfs;
  const int policy = core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  PipeBenchConfig cfg;
  cfg.messages = 500;
  auto result = RunPipeBench(core, policy, cfg);
  ASSERT_TRUE(result.completed);
  printf("Shinjuku two-core: %.2f us/wakeup (pick errors %llu)\n", result.usec_per_wakeup,
         (unsigned long long)core.pick_errors());
  EXPECT_EQ(core.pick_errors(), 0u);
}

TEST(Smoke, UpgradeWfqLive) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<WfqSched>(0));
  CfsClass cfs;
  const int policy = core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  PipeBenchConfig cfg;
  cfg.messages = 2000;
  // Schedule an upgrade mid-run.
  core.loop().ScheduleAfter(Milliseconds(2), [&] {
    auto report = runtime.Upgrade(std::make_unique<WfqSched>(0));
    EXPECT_TRUE(report.ok);
    printf("upgrade pause: %.2f us\n", ToMicroseconds(report.pause_ns));
  });
  auto result = RunPipeBench(core, policy, cfg);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(core.pick_errors(), 0u);
  EXPECT_EQ(runtime.upgrades(), 1u);
}

TEST(Smoke, RecordReplayFifo) {
  std::vector<RecordEntry> log;
  {
    Recorder recorder(1 << 20);
    SetLockHooks(&recorder);
    SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
    EnokiRuntime runtime(std::make_unique<FifoSched>(0));
    runtime.SetRecorder(&recorder);
    CfsClass cfs;
    const int policy = core.RegisterClass(&runtime);
    core.RegisterClass(&cfs);
    PipeBenchConfig cfg;
    cfg.messages = 200;
    auto result = RunPipeBench(core, policy, cfg);
    ASSERT_TRUE(result.completed);
    SetLockHooks(nullptr);
    log = recorder.TakeLog();
    EXPECT_EQ(recorder.dropped(), 0u);
  }
  printf("recorded %zu entries\n", log.size());
  ASSERT_GT(log.size(), 500u);
  ReplayEngine engine(log, 8);
  engine.InstallHooks();
  auto module = std::make_unique<FifoSched>(0);
  module->Attach(engine.env());
  auto result = engine.Run(module.get());
  printf("replayed %llu calls, %llu mismatches, %llu lock blocks, %llu timeouts\n",
         (unsigned long long)result.calls_replayed, (unsigned long long)result.response_mismatches,
         (unsigned long long)result.lock_blocks, (unsigned long long)result.lock_timeouts);
  EXPECT_EQ(result.response_mismatches, 0u);
  EXPECT_EQ(result.lock_timeouts, 0u);
}

}  // namespace
}  // namespace enoki
