// Tests for the recovery ladder (probation -> rollback -> supervised
// restart -> quarantine): the Checkpoint format, the ModuleSupervisor
// restart policy, the runtime's transactional upgrades, and replay's
// graceful degradation on truncated traces. The capstones are two seeded
// sweeps — upgrade-boundary faults (100 seeds) and runtime faults under a
// supervisor (200 seeds) — asserting zero task loss, zero CFS fallbacks
// whenever the restart budget suffices, and bit-identical recovery
// timelines for identical seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/enoki/checkpoint.h"
#include "src/enoki/replay.h"
#include "src/enoki/runtime.h"
#include "src/fault/injector.h"
#include "src/fault/supervisor.h"
#include "src/fault/watchdog.h"
#include "src/sched/cfs.h"
#include "src/sched/nice_weights.h"
#include "src/sched/wfq.h"
#include "src/simkernel/bodies.h"
#include "src/workloads/pipe.h"

namespace enoki {
namespace {

// ---- Checkpoint byte format ----

TEST(Checkpoint, ByteRoundTripSealAndTamper) {
  ByteWriter w;
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.U64(42);

  Checkpoint ck;
  ck.state_version = 7;
  ck.bytes = w.Take();
  ck.Seal();
  EXPECT_TRUE(ck.Valid());

  ByteReader r(ck.bytes);
  uint32_t a = 0;
  uint64_t b = 0, c = 0;
  ASSERT_TRUE(r.U32(&a));
  ASSERT_TRUE(r.U64(&b));
  ASSERT_TRUE(r.U64(&c));
  EXPECT_EQ(a, 0xDEADBEEFu);
  EXPECT_EQ(b, 0x0123456789ABCDEFull);
  EXPECT_EQ(c, 42u);
  EXPECT_TRUE(r.AtEnd());

  // A single flipped byte must invalidate the seal, and so must a version
  // mismatch (the checksum folds the format version).
  ck.bytes[3] ^= 0x01;
  EXPECT_FALSE(ck.Valid());
  ck.bytes[3] ^= 0x01;
  EXPECT_TRUE(ck.Valid());
  ck.state_version = 8;
  EXPECT_FALSE(ck.Valid());
}

TEST(Checkpoint, ByteReaderOverrunPoisons) {
  ByteWriter w;
  w.U32(5);
  const std::vector<uint8_t> bytes = w.Take();  // only 4 bytes
  ByteReader r(bytes);
  uint64_t v = 0;
  EXPECT_FALSE(r.U64(&v));  // needs 8
  EXPECT_TRUE(r.overrun());
  // Poisoned: even a read that would fit now fails.
  uint32_t u = 0;
  EXPECT_FALSE(r.U32(&u));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Checkpoint, SaboteurCorruptionIsDetected) {
  ByteWriter w;
  for (int i = 0; i < 16; ++i) {
    w.U64(static_cast<uint64_t>(i));
  }
  Checkpoint ck;
  ck.state_version = 2;
  ck.bytes = w.Take();
  ck.Seal();
  ASSERT_TRUE(ck.Valid());
  CheckpointSaboteur sab(123, 1.0);
  EXPECT_TRUE(sab.MaybeCorrupt(&ck));
  EXPECT_EQ(sab.corruptions(), 1u);
  EXPECT_FALSE(ck.Valid());
}

// ---- WFQ / FIFO checkpoint implementations ----

TaskMessage Msg(uint64_t pid, int cpu, int nice = 0, Duration runtime = 0) {
  TaskMessage msg;
  msg.pid = pid;
  msg.cpu = cpu;
  msg.prev_cpu = cpu;
  msg.runtime = runtime;
  msg.nice = nice;
  return msg;
}

TEST(WfqCheckpoint, RoundTripRestoresAccounting) {
  ReplayEnv env(4);
  WfqSched a(0);
  a.Attach(&env);
  a.TaskNew(Msg(1, 0, /*nice=*/0), SchedulableMinter::Mint(1, 0, 1));
  a.TaskNew(Msg(2, 1, /*nice=*/-5), SchedulableMinter::Mint(2, 1, 1));
  a.TaskTick(0, 1, Milliseconds(3));  // accumulate some vruntime for pid 1

  ByteWriter w;
  ASSERT_TRUE(a.SaveCheckpoint(&w));
  EXPECT_EQ(a.CheckpointVersion(), 2u);
  const std::vector<uint8_t> bytes = w.Take();

  WfqSched b(0);
  b.Attach(&env);
  ByteReader r(bytes);
  ASSERT_TRUE(b.LoadCheckpoint(2, &r));
  EXPECT_EQ(b.WeightOf(1), NiceToWeight(0));
  EXPECT_EQ(b.WeightOf(2), NiceToWeight(-5));
  EXPECT_EQ(b.VruntimeOf(1), a.VruntimeOf(1));
  EXPECT_GT(b.VruntimeOf(1), 0u);
  // Queue membership is deliberately NOT part of a checkpoint: restored
  // entities start parked until the runtime re-injects wakeups.
  EXPECT_EQ(b.QueueDepth(0), 0u);
  EXPECT_EQ(b.QueueDepth(1), 0u);
}

TEST(WfqCheckpoint, AcceptsV1PayloadWithoutSliceStart) {
  // v1 predates the slice_start_runtime field; a v1 payload must still load
  // (cross-version restore), seeding the missing field from last_runtime.
  ByteWriter w;
  w.U64(2);  // ncpus
  w.U64(1000);
  w.U64(2000);
  w.U64(1);        // one live entity
  w.U64(7);        // pid
  w.U64(1234);     // vruntime
  w.U64(NiceToWeight(0));
  w.U64(5555);     // last_runtime
  w.U64(1);        // cpu (no slice_start field in v1)
  const std::vector<uint8_t> bytes = w.Take();

  ReplayEnv env(2);
  WfqSched s(0);
  s.Attach(&env);
  ByteReader r(bytes);
  ASSERT_TRUE(s.LoadCheckpoint(1, &r));
  EXPECT_EQ(s.VruntimeOf(7), 1234u);
  EXPECT_EQ(s.WeightOf(7), NiceToWeight(0));
}

TEST(WfqCheckpoint, RejectsWrongVersionTruncationAndGarbage) {
  ReplayEnv env(2);
  WfqSched s(0);
  s.Attach(&env);

  ByteWriter w;
  w.U64(2);
  w.U64(0);
  w.U64(0);
  w.U64(0);
  std::vector<uint8_t> good = w.bytes();
  {
    ByteReader r(good);
    EXPECT_FALSE(s.LoadCheckpoint(3, &r));  // unknown future version
  }
  {
    std::vector<uint8_t> truncated(good.begin(), good.begin() + 10);
    ByteReader r(truncated);
    EXPECT_FALSE(s.LoadCheckpoint(2, &r));
  }
  {
    ByteWriter bad;
    bad.U64(2);
    bad.U64(0);
    bad.U64(0);
    bad.U64(1);  // one entity...
    bad.U64(0);  // ...with pid 0 (pids are assigned from 1)
    bad.U64(1);
    bad.U64(NiceToWeight(0));
    bad.U64(0);
    bad.U64(0);
    bad.U64(0);
    std::vector<uint8_t> bytes = bad.Take();
    ByteReader r(bytes);
    EXPECT_FALSE(s.LoadCheckpoint(2, &r));
  }
}

TEST(WfqSched, AdoptsUnknownTaskOnFirstSighting) {
  // The wfq.cc "first sighting after an upgrade with partial state" path: a
  // wakeup for a pid absent from the restored accounting must be adopted
  // with the message's nice and a vruntime clamped to the sleeper floor.
  ByteWriter w;
  w.U64(2);
  w.U64(0);
  w.U64(Milliseconds(50));  // min_vruntime on cpu 1
  w.U64(1);                 // one known entity: pid 1
  w.U64(1);
  w.U64(Milliseconds(50));
  w.U64(NiceToWeight(0));
  w.U64(0);
  w.U64(0);
  w.U64(1);
  const std::vector<uint8_t> bytes = w.Take();

  ReplayEnv env(2);
  WfqSched s(0);
  s.Attach(&env);
  ByteReader r(bytes);
  ASSERT_TRUE(s.LoadCheckpoint(2, &r));

  // pid 2 was never transferred: first sighting adopts it.
  s.TaskWakeup(Msg(2, 1, /*nice=*/5), SchedulableMinter::Mint(2, 1, 1));
  EXPECT_EQ(s.WeightOf(2), NiceToWeight(5));
  EXPECT_EQ(s.QueueDepth(1), 1u);
  // Sleeper fairness: the adopted task lands at min_vruntime - sched_latency,
  // not at zero (which would starve everyone else).
  EXPECT_GE(s.VruntimeOf(2), Milliseconds(50) - WfqSched::kSchedLatencyNs);
  auto token = s.PickNextTask(1, std::nullopt);
  ASSERT_TRUE(token.has_value());
  EXPECT_EQ(token->pid(), 2u);
}

// ---- FlightRecorder ----

TEST(FlightRecorder, KeepsBoundedTailInOrder) {
  FlightRecorder fr(8);
  for (uint64_t i = 1; i <= 100; ++i) {
    RecordEntry e;
    e.type = RecordType::kTaskTick;
    e.pid = i;
    fr.Append(static_cast<Time>(i), e);
  }
  EXPECT_EQ(fr.appended(), 100u);
  auto tail = fr.Tail(4);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().pid, 97u);
  EXPECT_EQ(tail.back().pid, 100u);
  // Asking for more than the capacity returns at most the capacity.
  EXPECT_EQ(fr.Tail(64).size(), 8u);
}

// ---- ModuleSupervisor policy ----

CrashReport FakeReport(TripReason reason = TripReason::kManual) {
  CrashReport r;
  r.reason = reason;
  r.detail = "test";
  return r;
}

TEST(Supervisor, BackoffIsExponentialAndClamped) {
  SupervisorConfig cfg;
  cfg.backoff_initial_ns = Microseconds(50);
  cfg.backoff_multiplier = 2;
  cfg.backoff_max_ns = Milliseconds(5);
  ModuleSupervisor sup(cfg, [] { return std::make_unique<WfqSched>(0); });
  EXPECT_EQ(sup.BackoffFor(1), Microseconds(50));
  EXPECT_EQ(sup.BackoffFor(2), Microseconds(100));
  EXPECT_EQ(sup.BackoffFor(3), Microseconds(200));
  EXPECT_EQ(sup.BackoffFor(30), Milliseconds(5));  // clamped, no overflow
}

TEST(Supervisor, WindowBudgetExhaustionEscalates) {
  SupervisorConfig cfg;
  cfg.restart_budget = 2;
  cfg.restart_window_ns = Seconds(1);
  ModuleSupervisor sup(cfg, [] { return std::make_unique<WfqSched>(0); });

  auto d1 = sup.OnTrip(FakeReport(), Milliseconds(1));
  EXPECT_EQ(d1.action, RecoveryAction::kRestart);
  EXPECT_EQ(d1.attempt, 1u);
  sup.OnRestartComplete(Milliseconds(2), true);

  auto d2 = sup.OnTrip(FakeReport(), Milliseconds(3));
  EXPECT_EQ(d2.action, RecoveryAction::kRestart);
  EXPECT_EQ(d2.attempt, 2u);
  EXPECT_GT(d2.backoff_ns, d1.backoff_ns);
  sup.OnRestartComplete(Milliseconds(4), true);

  // Budget spent inside the same window: escalate.
  auto d3 = sup.OnTrip(FakeReport(), Milliseconds(5));
  EXPECT_EQ(d3.action, RecoveryAction::kQuarantine);
  EXPECT_EQ(sup.escalations(), 1u);

  // A trip a full window later opens a fresh budget.
  auto d4 = sup.OnTrip(FakeReport(), Milliseconds(5) + Seconds(1));
  EXPECT_EQ(d4.action, RecoveryAction::kRestart);
  EXPECT_EQ(d4.attempt, 1u);

  EXPECT_EQ(sup.restarts_decided(), 3u);
  EXPECT_EQ(sup.history().size(), 4u);
  EXPECT_EQ(sup.timeline().size(), 2u);
  EXPECT_NE(sup.TimelineString().find("restart attempt=1"), std::string::npos);
}

TEST(Supervisor, TimelineStringIsDeterministic) {
  auto drive = [] {
    SupervisorConfig cfg;
    ModuleSupervisor sup(cfg, [] { return std::make_unique<WfqSched>(0); });
    sup.OnTrip(FakeReport(TripReason::kPickErrors), Microseconds(700));
    sup.OnRestartComplete(Microseconds(760), true);
    sup.OnTrip(FakeReport(TripReason::kEscapedException), Milliseconds(2));
    sup.OnRestartComplete(Milliseconds(2) + Microseconds(150), false);
    sup.OnHealthy(Milliseconds(9));
    return sup.TimelineString();
  };
  EXPECT_EQ(drive(), drive());
}

// ---- Runtime integration ----

struct FaultStack {
  std::unique_ptr<SchedCore> core;
  std::unique_ptr<EnokiRuntime> runtime;
  std::unique_ptr<CfsClass> cfs;
  int enoki_policy = 0;
  int cfs_policy = 1;
};

FaultStack MakeFaultStack(std::unique_ptr<EnokiSched> module,
                          MachineSpec spec = MachineSpec::OneSocket8()) {
  FaultStack s;
  s.core = std::make_unique<SchedCore>(spec, SimCosts{});
  s.runtime = std::make_unique<EnokiRuntime>(std::move(module));
  s.cfs = std::make_unique<CfsClass>();
  s.enoki_policy = s.core->RegisterClass(s.runtime.get());
  s.cfs_policy = s.core->RegisterClass(s.cfs.get());
  return s;
}

TEST(SupervisedRuntime, RestartRecoversWithoutCfsFallback) {
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  s.runtime->EnableSupervisor(SupervisorConfig{}, [] { return std::make_unique<WfqSched>(0); });
  EnokiRuntime* rt = s.runtime.get();
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt] { rt->AbortModule("injected abort"); });
  PipeBenchConfig cfg;
  cfg.messages = 2000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(rt->quarantined());
  EXPECT_FALSE(rt->fallback_done());
  EXPECT_EQ(rt->module_restarts(), 1u);
  ASSERT_TRUE(rt->crash_report().has_value());
  EXPECT_EQ(rt->crash_report()->reason, TripReason::kManual);
  // The flight recorder fed the report's tail even with no Recorder armed.
  EXPECT_FALSE(rt->crash_report()->last_calls.empty());
  ASSERT_EQ(rt->supervisor()->timeline().size(), 1u);
  const RestartEvent& ev = rt->supervisor()->timeline()[0];
  EXPECT_EQ(ev.attempt, 1u);
  EXPECT_EQ(ev.backoff_ns, SupervisorConfig{}.backoff_initial_ns);
  EXPECT_GE(ev.restarted_at, ev.tripped_at + ev.backoff_ns);
}

TEST(SupervisedRuntime, BudgetExhaustionEscalatesToQuarantine) {
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  SupervisorConfig scfg;
  scfg.restart_budget = 1;
  s.runtime->EnableSupervisor(scfg, [] { return std::make_unique<WfqSched>(0); });
  EnokiRuntime* rt = s.runtime.get();
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt] { rt->AbortModule("first abort"); });
  s.core->loop().ScheduleAfter(Milliseconds(2), [rt] { rt->AbortModule("second abort"); });
  PipeBenchConfig cfg;
  cfg.messages = 2000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  // Tasks survive the terminal rung on CFS.
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(rt->module_restarts(), 1u);
  EXPECT_TRUE(rt->quarantined());
  EXPECT_TRUE(rt->fallback_done());
  EXPECT_EQ(rt->supervisor()->escalations(), 1u);
}

TEST(SupervisedRuntime, CorruptCheckpointIsDetectedNotDeserialized) {
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  CheckpointSaboteur sab(99, 1.0);
  s.runtime->SetCheckpointSaboteur(&sab);  // every checkpoint rots in storage
  s.runtime->EnableSupervisor(SupervisorConfig{}, [] { return std::make_unique<WfqSched>(0); });
  EXPECT_GE(sab.corruptions(), 1u);
  EnokiRuntime* rt = s.runtime.get();
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt] { rt->AbortModule("abort"); });
  PipeBenchConfig cfg;
  cfg.messages = 2000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(rt->quarantined());
  EXPECT_EQ(rt->module_restarts(), 1u);
  // The checksum rejected the rotten checkpoint before any deserialization;
  // the restart proceeded from a fresh state instead.
  EXPECT_GE(rt->checkpoint_rejects(), 1u);
  ASSERT_GE(rt->supervisor()->timeline().size(), 1u);
  EXPECT_FALSE(rt->supervisor()->timeline()[0].restored_from_checkpoint);
}

TEST(SupervisedRuntime, SurvivingProbationCommitsAndRefreshesCheckpoint) {
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  s.runtime->EnableSupervisor(SupervisorConfig{}, [] { return std::make_unique<WfqSched>(0); });
  const uint64_t seeded_seq = s.runtime->last_good_checkpoint()->sequence;
  EnokiRuntime* rt = s.runtime.get();
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt] { rt->AbortModule("abort"); });
  PipeBenchConfig cfg;
  cfg.messages = 4000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(rt->in_probation());  // the restarted module proved itself
  EXPECT_GE(rt->supervisor()->healthy_commits(), 1u);
  ASSERT_TRUE(rt->last_good_checkpoint().has_value());
  EXPECT_GT(rt->last_good_checkpoint()->sequence, seeded_seq);
}

// ---- Transactional upgrades: probation rollback and commit ----

std::unique_ptr<FaultInjector> InjectedWfq(FaultPlan plan, FaultInjector** out = nullptr) {
  auto inj = std::make_unique<FaultInjector>(std::make_unique<WfqSched>(0), plan);
  if (out != nullptr) {
    *out = inj.get();
  }
  return inj;
}

TEST(UpgradeProbation, MisbehavingIncomingModuleRollsBack) {
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  EnokiRuntime* rt = s.runtime.get();
  EnokiSched* old_module = rt->module();
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt] {
    FaultPlan plan;
    plan.seed = 5;
    plan.probation_misbehave_rate = 1.0;  // first hot callbacks throw
    auto report = rt->Upgrade(std::make_unique<FaultInjector>(std::make_unique<WfqSched>(0), plan));
    // The swap itself succeeds; the misbehavior lands inside probation.
    EXPECT_TRUE(report.ok);
    EXPECT_TRUE(report.checkpointed);
  });
  PipeBenchConfig cfg;
  cfg.messages = 2000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(rt->quarantined());
  EXPECT_FALSE(rt->fallback_done());
  EXPECT_EQ(rt->rollbacks(), 1u);
  EXPECT_EQ(rt->module(), old_module);  // the checkpointed predecessor is back
  ASSERT_TRUE(rt->crash_report().has_value());
  EXPECT_TRUE(rt->crash_report()->during_probation);
}

TEST(UpgradeProbation, HealthySuccessorCommits) {
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  EnokiRuntime* rt = s.runtime.get();
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt] {
    auto report = rt->Upgrade(std::make_unique<WfqSched>(0));
    EXPECT_TRUE(report.ok);
    EXPECT_TRUE(rt->in_probation());
  });
  PipeBenchConfig cfg;
  cfg.messages = 4000;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(rt->upgrades(), 1u);
  EXPECT_EQ(rt->rollbacks(), 0u);
  EXPECT_FALSE(rt->in_probation());  // committed by window or call count
  EXPECT_FALSE(rt->recovery_pending());
}

TEST(UpgradeProbation, SecondUpgradeRefusedWhileFirstIsOnProbation) {
  FaultStack s = MakeFaultStack(std::make_unique<WfqSched>(0));
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  EnokiRuntime* rt = s.runtime.get();
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt] {
    UpgradeOptions opts;
    ProbationConfig probation;
    probation.window_ns = Seconds(10);  // hold probation open for the test
    probation.window_calls = 0;
    opts.probation = probation;
    EXPECT_TRUE(rt->Upgrade(std::make_unique<WfqSched>(0), opts).ok);
    auto second = rt->Upgrade(std::make_unique<WfqSched>(0));
    EXPECT_FALSE(second.ok);
    EXPECT_NE(second.error.find("probation"), std::string::npos);
    EXPECT_EQ(second.pause_ns, 0);
  });
  PipeBenchConfig cfg;
  cfg.messages = 500;
  auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(rt->upgrades(), 1u);
}

// ---- Seeded sweeps (acceptance criteria) ----

struct UpgradeSweepOutcome {
  bool completed = false;
  bool quarantined = false;
  bool fallback = false;
  uint64_t upgrades = 0;
  uint64_t rollbacks = 0;
  std::string report;
  Time end_time = 0;
};

UpgradeSweepOutcome RunUpgradeSweep(uint64_t seed) {
  FaultStack s = MakeFaultStack(InjectedWfq(FaultPlan::UpgradeMenu(seed)));
  WatchdogConfig cfg;
  cfg.starvation_bound_ns = Milliseconds(20);
  s.runtime->EnableWatchdog(cfg, s.cfs_policy);
  EnokiRuntime* rt = s.runtime.get();
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt, seed] {
    // The incoming module misbehaves at the upgrade boundary: prepare
    // refusal comes from the outgoing injector, init-throw and probation
    // misbehavior from the incoming one.
    (void)rt->Upgrade(InjectedWfq(FaultPlan::UpgradeMenu(seed ^ 0xBADC0FFEull)));
  });
  PipeBenchConfig pcfg;
  pcfg.messages = 300;
  auto r = RunPipeBench(*s.core, s.enoki_policy, pcfg);
  UpgradeSweepOutcome out;
  out.completed = r.completed;
  out.quarantined = rt->quarantined();
  out.fallback = rt->fallback_done();
  out.upgrades = rt->upgrades();
  out.rollbacks = rt->rollbacks();
  if (rt->crash_report().has_value()) {
    out.report = rt->crash_report()->ToString();
  }
  out.end_time = s.core->now();
  return out;
}

TEST(RecoverySweep, UpgradeBoundaryHundredSeedsZeroTaskLossZeroFallback) {
  int refused = 0, rolled_back = 0, committed = 0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    UpgradeSweepOutcome a = RunUpgradeSweep(seed);
    // Zero task loss, and the transactional ladder always has a rollback
    // target here — the terminal CFS rung must never be reached.
    EXPECT_TRUE(a.completed) << "seed " << seed << " lost tasks";
    EXPECT_FALSE(a.quarantined) << "seed " << seed;
    EXPECT_FALSE(a.fallback) << "seed " << seed;
    // Determinism: identical seed, identical recovery — down to the
    // CrashReport rendering and the final simulated clock.
    UpgradeSweepOutcome b = RunUpgradeSweep(seed);
    EXPECT_EQ(a.completed, b.completed) << "seed " << seed;
    EXPECT_EQ(a.upgrades, b.upgrades) << "seed " << seed;
    EXPECT_EQ(a.rollbacks, b.rollbacks) << "seed " << seed;
    EXPECT_EQ(a.report, b.report) << "seed " << seed;
    EXPECT_EQ(a.end_time, b.end_time) << "seed " << seed;
    if (a.rollbacks > 0) {
      ++rolled_back;
    } else if (a.upgrades > 0) {
      ++committed;
    } else {
      ++refused;
    }
  }
  // The menu must actually exercise every arm of the transaction.
  EXPECT_GT(refused, 0);
  EXPECT_GT(rolled_back, 0);
  EXPECT_GT(committed, 0);
}

struct SupervisorSweepOutcome {
  bool completed = false;
  bool quarantined = false;
  bool fallback = false;
  uint64_t restarts = 0;
  uint64_t escalations = 0;
  std::string timeline;
  std::string report;
  Time end_time = 0;
};

SupervisorSweepOutcome RunSupervisorSweep(uint64_t seed) {
  FaultStack s = MakeFaultStack(InjectedWfq(FaultPlan::FullMenu(seed)));
  s.runtime->CreateRevQueue(64);  // give hint floods somewhere to land
  WatchdogConfig cfg;
  cfg.callback_budget_ns = Milliseconds(5);
  cfg.max_escaped_exceptions = 3;
  cfg.max_pick_errors = 8;
  cfg.starvation_bound_ns = Milliseconds(20);
  s.runtime->EnableWatchdog(cfg, s.cfs_policy);
  s.runtime->EnableSupervisor(SupervisorConfig{},
                              [seed] { return InjectedWfq(FaultPlan::FullMenu(seed)); });
  PipeBenchConfig pcfg;
  pcfg.messages = 300;
  auto r = RunPipeBench(*s.core, s.enoki_policy, pcfg);
  SupervisorSweepOutcome out;
  out.completed = r.completed;
  out.quarantined = s.runtime->quarantined();
  out.fallback = s.runtime->fallback_done();
  out.restarts = s.runtime->module_restarts();
  out.escalations = s.runtime->supervisor()->escalations();
  out.timeline = s.runtime->supervisor()->TimelineString();
  if (s.runtime->crash_report().has_value()) {
    out.report = s.runtime->crash_report()->ToString();
  }
  out.end_time = s.core->now();
  return out;
}

TEST(RecoverySweep, SupervisorTwoHundredSeedsZeroTaskLoss) {
  int restarted_seeds = 0, escalated_seeds = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    SupervisorSweepOutcome a = RunSupervisorSweep(seed);
    // Zero task loss on every rung of the ladder.
    EXPECT_TRUE(a.completed) << "seed " << seed << " lost tasks";
    // Zero CFS fallbacks whenever the restart budget sufficed.
    if (a.escalations == 0) {
      EXPECT_FALSE(a.fallback) << "seed " << seed;
      EXPECT_FALSE(a.quarantined) << "seed " << seed;
    }
    // Determinism: identical seed, identical recovery timeline.
    SupervisorSweepOutcome b = RunSupervisorSweep(seed);
    EXPECT_EQ(a.completed, b.completed) << "seed " << seed;
    EXPECT_EQ(a.restarts, b.restarts) << "seed " << seed;
    EXPECT_EQ(a.escalations, b.escalations) << "seed " << seed;
    EXPECT_EQ(a.timeline, b.timeline) << "seed " << seed;
    EXPECT_EQ(a.report, b.report) << "seed " << seed;
    EXPECT_EQ(a.end_time, b.end_time) << "seed " << seed;
    restarted_seeds += a.restarts > 0 ? 1 : 0;
    escalated_seeds += a.escalations > 0 ? 1 : 0;
  }
  // The sweep must exercise both the self-healing and the terminal rung.
  EXPECT_GT(restarted_seeds, 0);
  EXPECT_GT(escalated_seeds, 0);
}

// ---- Replay graceful degradation ----

std::vector<RecordEntry> RecordPipeTrace(uint64_t messages) {
  Recorder recorder(1 << 20);
  SetLockHooks(&recorder);
  {
    SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
    EnokiRuntime runtime(std::make_unique<WfqSched>(0));
    runtime.SetRecorder(&recorder);
    CfsClass cfs;
    const int policy = core.RegisterClass(&runtime);
    core.RegisterClass(&cfs);
    PipeBenchConfig cfg;
    cfg.messages = messages;
    EXPECT_TRUE(RunPipeBench(core, policy, cfg).completed);
  }
  SetLockHooks(nullptr);
  return recorder.TakeLog();
}

TEST(ReplayDegradation, TruncatedTraceCountsTimeoutsInsteadOfHanging) {
  // Simulate a record-ring overrun: a middle window of *call* entries is
  // gone while the lock-order entries survive, so some recorded lock turns
  // can never arrive. Replay must count lock_timeouts (and possibly
  // mismatches) and finish — degradation is reported, not fatal.
  auto log = RecordPipeTrace(100);
  ASSERT_GT(log.size(), 300u);
  const size_t lo = log.size() / 3;
  const size_t hi = 2 * log.size() / 3;
  std::vector<RecordEntry> truncated;
  truncated.reserve(log.size());
  for (size_t i = 0; i < log.size(); ++i) {
    const RecordType t = log[i].type;
    const bool is_lock = t == RecordType::kLockCreate || t == RecordType::kLockAcquire ||
                         t == RecordType::kLockRelease;
    if (i >= lo && i < hi && !is_lock) {
      continue;  // the ring overwrote these calls
    }
    truncated.push_back(log[i]);
  }
  ASSERT_LT(truncated.size(), log.size());

  ReplayEngine engine(truncated, 8, /*max_outstanding=*/16, /*lock_wait_timeout_ms=*/50);
  engine.InstallHooks();
  auto module = std::make_unique<WfqSched>(0);
  module->Attach(engine.env());
  auto result = engine.Run(module.get());
  EXPECT_GT(result.calls_replayed, 0u);
  // The dropped calls held recorded lock turns: waiting threads must have
  // timed out (gracefully) rather than deadlocking.
  EXPECT_GT(result.lock_timeouts, 0u);
}

}  // namespace
}  // namespace enoki
