// Cross-module integration and property tests: parameterized sweeps over
// schedulers, nice levels, and machine shapes; upgrade-under-load; and
// record->replay equivalence for multiple schedulers.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "src/enoki/replay.h"
#include "src/enoki/runtime.h"
#include "src/sched/cfs.h"
#include "src/sched/nice_weights.h"
#include "src/sched/fifo.h"
#include "src/sched/locality.h"
#include "src/sched/shinjuku.h"
#include "src/sched/wfq.h"
#include "src/workloads/fairness.h"
#include "src/workloads/pipe.h"
#include "src/workloads/schbench.h"

namespace enoki {
namespace {

enum class Sched { kCfs, kWfq, kFifo, kShinjuku, kLocality };

const char* SchedName(Sched s) {
  switch (s) {
    case Sched::kCfs:
      return "cfs";
    case Sched::kWfq:
      return "wfq";
    case Sched::kFifo:
      return "fifo";
    case Sched::kShinjuku:
      return "shinjuku";
    case Sched::kLocality:
      return "locality";
  }
  return "?";
}

// Builds a core with the requested scheduler as the primary policy and CFS
// below it.
struct Harness {
  explicit Harness(Sched which, MachineSpec spec = MachineSpec::OneSocket8())
      : core(spec, SimCosts{}) {
    switch (which) {
      case Sched::kCfs:
        policy = core.RegisterClass(&cfs);
        return;
      case Sched::kWfq:
        runtime = std::make_unique<EnokiRuntime>(std::make_unique<WfqSched>(0));
        break;
      case Sched::kFifo:
        runtime = std::make_unique<EnokiRuntime>(std::make_unique<FifoSched>(0));
        break;
      case Sched::kShinjuku:
        runtime = std::make_unique<EnokiRuntime>(std::make_unique<ShinjukuSched>(0));
        break;
      case Sched::kLocality:
        runtime = std::make_unique<EnokiRuntime>(
            std::make_unique<LocalitySched>(0, /*use_hints=*/false));
        break;
    }
    policy = core.RegisterClass(runtime.get());
    core.RegisterClass(&cfs);
  }
  SchedCore core;
  CfsClass cfs;
  std::unique_ptr<EnokiRuntime> runtime;
  int policy = 0;
};

// ---- Property: every scheduler completes the churn workload without losing
// tasks or producing pick errors. ----

class AllSchedChurn : public ::testing::TestWithParam<Sched> {};

TEST_P(AllSchedChurn, TaskConservation) {
  Harness h(GetParam());
  for (int i = 0; i < 20; ++i) {
    auto left = std::make_shared<int>(60);
    h.core.CreateTask("churn-" + std::to_string(i),
                      MakeFnBody([left](SimContext&) -> Action {
                        if (*left == 0) {
                          return Action::Exit();
                        }
                        --*left;
                        switch (*left % 5) {
                          case 0:
                            return Action::Sleep(Microseconds(170));
                          case 1:
                            return Action::Yield();
                          default:
                            return Action::Compute(Microseconds(110));
                        }
                      }),
                      h.policy);
  }
  h.core.Start();
  EXPECT_TRUE(h.core.RunUntilAllExit(Seconds(30))) << SchedName(GetParam());
  EXPECT_EQ(h.core.pick_errors(), 0u) << SchedName(GetParam());
}

TEST_P(AllSchedChurn, PipeCompletes) {
  Harness h(GetParam());
  PipeBenchConfig cfg;
  cfg.messages = 500;
  auto result = RunPipeBench(h.core, h.policy, cfg);
  EXPECT_TRUE(result.completed) << SchedName(GetParam());
  EXPECT_GT(result.usec_per_wakeup, 0.5) << SchedName(GetParam());
  EXPECT_LT(result.usec_per_wakeup, 30.0) << SchedName(GetParam());
}

TEST_P(AllSchedChurn, DeterministicElapsedTime) {
  auto run = [&] {
    Harness h(GetParam());
    for (int i = 0; i < 10; ++i) {
      h.core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(4), Microseconds(300)),
                        h.policy);
    }
    h.core.Start();
    h.core.RunUntilAllExit(Seconds(30));
    return h.core.now();
  };
  EXPECT_EQ(run(), run()) << SchedName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Schedulers, AllSchedChurn,
                         ::testing::Values(Sched::kCfs, Sched::kWfq, Sched::kFifo,
                                           Sched::kShinjuku, Sched::kLocality),
                         [](const ::testing::TestParamInfo<Sched>& info) {
                           return SchedName(info.param);
                         });

// ---- Property: fair schedulers divide one core proportionally to weight
// across the full nice range. ----

class FairnessByNice : public ::testing::TestWithParam<std::tuple<Sched, int>> {};

TEST_P(FairnessByNice, WeightedShareWithinTolerance) {
  const Sched which = std::get<0>(GetParam());
  const int nice = std::get<1>(GetParam());
  Harness h(which);
  // Task 0 at `nice`, task 1 at 0, both pinned to core 0, run long enough
  // that slicing noise averages out; then compare achieved runtimes at a
  // fixed horizon.
  std::vector<Task*> tasks;
  for (int i = 0; i < 2; ++i) {
    tasks.push_back(h.core.CreateTaskOn("t" + std::to_string(i),
                                        std::make_unique<SpinForeverBody>(Microseconds(500)),
                                        h.policy, i == 0 ? nice : 0, CpuMask::Single(0)));
  }
  h.core.Start();
  h.core.RunFor(Seconds(2));
  const double r0 = ToSeconds(h.core.TaskRuntime(tasks[0]));
  const double r1 = ToSeconds(h.core.TaskRuntime(tasks[1]));
  ASSERT_GT(r0 + r1, 1.8);  // the core stayed busy
  const double expected_ratio = static_cast<double>(NiceToWeight(nice)) /
                                static_cast<double>(NiceToWeight(0));
  const double measured_ratio = r0 / r1;
  // Within 30% of the ideal weighted share (slicing granularity).
  EXPECT_GT(measured_ratio, expected_ratio * 0.7) << SchedName(which) << " nice " << nice;
  EXPECT_LT(measured_ratio, expected_ratio * 1.45) << SchedName(which) << " nice " << nice;
}

INSTANTIATE_TEST_SUITE_P(
    WeightSweep, FairnessByNice,
    ::testing::Combine(::testing::Values(Sched::kCfs, Sched::kWfq),
                       ::testing::Values(-10, -5, -1, 0, 1, 5, 10, 19)),
    [](const ::testing::TestParamInfo<std::tuple<Sched, int>>& info) {
      const int nice = std::get<1>(info.param);
      return std::string(SchedName(std::get<0>(info.param))) + "_nice_" +
             (nice < 0 ? "m" : "p") + std::to_string(nice < 0 ? -nice : nice);
    });

// ---- Property: work conservation — with runnable tasks somewhere, no CPU
// idles for long under schedulers that balance. ----

class WorkConservation : public ::testing::TestWithParam<Sched> {};

TEST_P(WorkConservation, MakespanNearIdeal) {
  Harness h(GetParam());
  const int ntasks = 24;
  const Duration work = Milliseconds(20);
  for (int i = 0; i < ntasks; ++i) {
    h.core.CreateTask("t", std::make_unique<CpuBoundBody>(work, Milliseconds(1)), h.policy);
  }
  h.core.Start();
  ASSERT_TRUE(h.core.RunUntilAllExit(Seconds(30)));
  const double ideal = ToSeconds(work) * ntasks / 8.0;
  EXPECT_LT(ToSeconds(h.core.now()), ideal * 1.5) << SchedName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Balancers, WorkConservation,
                         ::testing::Values(Sched::kCfs, Sched::kWfq, Sched::kFifo,
                                           Sched::kShinjuku),
                         [](const ::testing::TestParamInfo<Sched>& info) {
                           return SchedName(info.param);
                         });

// ---- Upgrade under load ----

TEST(Integration, UpgradeUnderSchbenchLoad) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<WfqSched>(0));
  CfsClass cfs;
  const int policy = core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  SchbenchConfig cfg;
  cfg.warmup = Milliseconds(20);
  cfg.runtime = Milliseconds(400);
  // Three upgrades while schbench runs.
  for (int i = 1; i <= 3; ++i) {
    core.loop().ScheduleAfter(Milliseconds(100) * i, [&runtime] {
      EXPECT_TRUE(runtime.Upgrade(std::make_unique<WfqSched>(0)).ok);
    });
  }
  auto result = RunSchbench(core, policy, cfg);
  EXPECT_GT(result.wakeups, 100u);
  EXPECT_EQ(runtime.upgrades(), 3u);
  EXPECT_EQ(core.pick_errors(), 0u);
  // Paper 5.7: the pause is too short to affect schbench tails.
  EXPECT_LT(result.p99, Milliseconds(5));
}

// ---- Record -> replay equivalence across schedulers ----

class RecordReplayAll : public ::testing::TestWithParam<Sched> {};

std::unique_ptr<EnokiSched> MakeModule(Sched which) {
  switch (which) {
    case Sched::kWfq:
      return std::make_unique<WfqSched>(0);
    case Sched::kFifo:
      return std::make_unique<FifoSched>(0);
    case Sched::kShinjuku:
      return std::make_unique<ShinjukuSched>(0);
    case Sched::kLocality:
      return std::make_unique<LocalitySched>(0, false);
    case Sched::kCfs:
      break;
  }
  return nullptr;
}

TEST_P(RecordReplayAll, ReplayValidates) {
  const Sched which = GetParam();
  Recorder recorder(1 << 20);
  SetLockHooks(&recorder);
  {
    SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
    EnokiRuntime runtime(MakeModule(which));
    runtime.SetRecorder(&recorder);
    CfsClass cfs;
    const int policy = core.RegisterClass(&runtime);
    core.RegisterClass(&cfs);
    PipeBenchConfig cfg;
    cfg.messages = 150;
    ASSERT_TRUE(RunPipeBench(core, policy, cfg).completed);
  }
  SetLockHooks(nullptr);
  auto log = recorder.TakeLog();
  ASSERT_EQ(recorder.dropped(), 0u);

  ReplayEngine engine(log, 8);
  engine.InstallHooks();
  auto module = MakeModule(which);
  module->Attach(engine.env());
  auto result = engine.Run(module.get());
  EXPECT_EQ(result.response_mismatches, 0u) << SchedName(which);
  EXPECT_EQ(result.lock_timeouts, 0u) << SchedName(which);
  EXPECT_GT(result.calls_replayed, 300u) << SchedName(which);
}

INSTANTIATE_TEST_SUITE_P(EnokiSchedulers, RecordReplayAll,
                         ::testing::Values(Sched::kWfq, Sched::kFifo, Sched::kShinjuku,
                                           Sched::kLocality),
                         [](const ::testing::TestParamInfo<Sched>& info) {
                           return SchedName(info.param);
                         });

// ---- Machine-shape sweep: the pipe bench completes on every topology. ----

class MachineShapes : public ::testing::TestWithParam<int> {};

TEST_P(MachineShapes, PipeOnNCpus) {
  const int ncpus = GetParam();
  SchedCore core(MachineSpec{ncpus, ncpus >= 40 ? 2 : 1, "shape"}, SimCosts{});
  CfsClass cfs;
  core.RegisterClass(&cfs);
  PipeBenchConfig cfg;
  cfg.messages = 300;
  EXPECT_TRUE(RunPipeBench(core, 0, cfg).completed);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MachineShapes, ::testing::Values(1, 2, 4, 8, 16, 40, 80));

}  // namespace
}  // namespace enoki
