// Tests for the sched_ext policy portfolio: central, pair, layered, and
// rusty as Enoki modules. Covers the ravg load-tracking utility, the
// MachineSpec topology extensions (SMT sibling pairs, explicit NUMA node
// maps), each policy's versioned checkpoint (round-trip + malformed-payload
// rejection), paired-workload determinism via double-run fingerprints,
// policy-specific behavior (cookie stalls, layer carving, central pulses,
// cross-domain steals), supervisor restart-from-checkpoint per policy, and
// live upgrades between portfolio policies — including the cross-policy
// commit path, where the incoming module cannot adopt the outgoing one's
// transfer state and the runtime must re-inject every queued task. The
// capstone is a 100-seed cross-policy upgrade sweep on a 16-CPU SMT+NUMA
// box asserting zero task loss and bit-identical recovery for equal seeds.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/enoki/replay.h"
#include "src/enoki/runtime.h"
#include "src/fault/injector.h"
#include "src/fault/supervisor.h"
#include "src/fault/watchdog.h"
#include "src/sched/cfs.h"
#include "src/sched/ext/central.h"
#include "src/sched/ext/layered.h"
#include "src/sched/ext/pair.h"
#include "src/sched/ext/ravg.h"
#include "src/sched/ext/rusty.h"
#include "src/sched/shinjuku.h"
#include "src/sched/wfq.h"
#include "src/simkernel/sched_core.h"
#include "src/workloads/pipe.h"
#include "src/workloads/portfolio.h"

namespace enoki {
namespace {

// ---- RunningAvg (ravg.h) ----

TEST(RunningAvg, ConstantInputConvergesToInput) {
  RunningAvg avg(Milliseconds(1));
  avg.Set(0, 100);
  // After many whole windows of constant input, history decays to the input.
  EXPECT_EQ(avg.Read(Milliseconds(100)), 100u);
}

TEST(RunningAvg, DroppedInputHalvesPerWindow) {
  const Duration hl = Milliseconds(1);
  RunningAvg avg(hl);
  avg.Set(0, 128);
  (void)avg.Read(Milliseconds(100));  // converge to 128
  avg.Set(Milliseconds(100), 0);      // input vanishes
  // Read exactly at window boundaries: each closed window halves history.
  uint64_t prev = 128;
  for (int w = 1; w <= 5; ++w) {
    const uint64_t now = avg.Read(Milliseconds(100) + w * hl);
    EXPECT_LE(now, prev) << "window " << w;
    prev = now;
  }
  // Five halvings of 128 with zero input: 128/32 = 4.
  EXPECT_EQ(prev, 4u);
}

TEST(RunningAvg, SaveLoadRoundTripsMidWindow) {
  RunningAvg a(Milliseconds(5));
  a.Set(Microseconds(100), 40);
  a.Set(Microseconds(700), 90);
  (void)a.Read(Milliseconds(12));  // cross windows, land mid-window
  a.Set(Milliseconds(12) + Microseconds(3), 10);

  ByteWriter w;
  a.Save(&w);
  const std::vector<uint8_t> bytes = w.Take();
  EXPECT_EQ(bytes.size(), 5 * sizeof(uint64_t));

  RunningAvg b(Milliseconds(5));
  ByteReader r(bytes);
  ASSERT_TRUE(b.Load(&r));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(b.current(), a.current());
  const Time probe = Milliseconds(13);
  EXPECT_EQ(b.Read(probe), a.Read(probe));
}

TEST(RunningAvg, LoadRejectsTruncationAndInvertedClock) {
  RunningAvg a;
  a.Set(Milliseconds(1), 7);
  ByteWriter w;
  a.Save(&w);
  std::vector<uint8_t> bytes = w.Take();
  bytes.resize(bytes.size() - 1);  // truncated payload
  {
    ByteReader r(bytes);
    RunningAvg b;
    EXPECT_FALSE(b.Load(&r));
  }
  {
    // last < window_start is impossible for monotonic simulated time.
    ByteWriter bad;
    bad.U64(1000);  // window_start
    bad.U64(500);   // last, behind window_start
    bad.U64(0);
    bad.U64(0);
    bad.U64(0);
    const std::vector<uint8_t> bb = bad.Take();
    ByteReader r(bb);
    RunningAvg b;
    EXPECT_FALSE(b.Load(&r));
  }
}

// ---- MachineSpec topology ----

TEST(MachineSpec, DefaultTopologyIsByteCompatible) {
  const MachineSpec spec = MachineSpec::OneSocket8();
  EXPECT_FALSE(spec.smt_pairs);
  EXPECT_TRUE(spec.node_of.empty());
  for (int c = 0; c < spec.ncpus; ++c) {
    EXPECT_EQ(spec.NodeOfCpu(c), c / (spec.ncpus / spec.nodes));
    EXPECT_EQ(spec.SiblingOfCpu(c), -1);
  }
}

TEST(MachineSpec, SmtSiblingsAreXorPairs) {
  const MachineSpec spec = MachineSpec::SmtOneSocket8();
  ASSERT_TRUE(spec.smt_pairs);
  for (int c = 0; c < spec.ncpus; ++c) {
    EXPECT_EQ(spec.SiblingOfCpu(c), c ^ 1);
    EXPECT_EQ(spec.SiblingOfCpu(spec.SiblingOfCpu(c)), c);
  }
}

TEST(MachineSpec, ExplicitNodeMapOverridesFormula) {
  MachineSpec spec = MachineSpec::TwoNode16();
  // The default formula splits 16 CPUs evenly.
  EXPECT_EQ(spec.NodeOfCpu(0), 0);
  EXPECT_EQ(spec.NodeOfCpu(15), 1);
  // An explicit (asymmetric) map wins over the formula.
  spec.node_of.assign(static_cast<size_t>(spec.ncpus), 0);
  spec.node_of[15] = 1;
  for (int c = 0; c < 15; ++c) {
    EXPECT_EQ(spec.NodeOfCpu(c), 0);
  }
  EXPECT_EQ(spec.NodeOfCpu(15), 1);
}

TEST(MachineSpec, PortfolioBoxHasBothSmtAndNuma) {
  const MachineSpec spec = MachineSpec::PortfolioBox16();
  EXPECT_EQ(spec.ncpus, 16);
  EXPECT_EQ(spec.nodes, 2);
  EXPECT_TRUE(spec.smt_pairs);
  // Sibling pairs never straddle nodes on this box.
  for (int c = 0; c < spec.ncpus; ++c) {
    EXPECT_EQ(spec.NodeOfCpu(c), spec.NodeOfCpu(spec.SiblingOfCpu(c)));
  }
}

// ---- Per-policy checkpoints (replay environment, no kernel) ----

TaskMessage Msg(uint64_t pid, int cpu, int nice = 0, Duration runtime = 0) {
  TaskMessage msg;
  msg.pid = pid;
  msg.cpu = cpu;
  msg.prev_cpu = cpu;
  msg.runtime = runtime;
  msg.nice = nice;
  return msg;
}

// ReplayEnv models a flat machine (node 0, no SMT). The pair and rusty
// policies are topology-driven, so their checkpoint tests use this richer
// stand-in instead.
class TopoReplayEnv : public ReplayEnv {
 public:
  TopoReplayEnv(int ncpus, int nodes, bool smt) : ReplayEnv(ncpus), nodes_(nodes), smt_(smt) {}

  int NodeOf(int cpu) const override {
    const int per = NumCpus() / nodes_;
    return per > 0 ? cpu / per : 0;
  }
  int SiblingOf(int cpu) const override { return smt_ ? cpu ^ 1 : -1; }

 private:
  int nodes_;
  bool smt_;
};

TEST(CentralCheckpoint, RoundTripRestoresSequenceCursor) {
  ReplayEnv env(4);
  CentralSched a(0);
  a.Attach(&env);
  a.TaskNew(Msg(1, 1), SchedulableMinter::Mint(1, 1, 1));
  a.TaskNew(Msg(2, 2), SchedulableMinter::Mint(2, 2, 1));

  ByteWriter w;
  ASSERT_TRUE(a.SaveCheckpoint(&w));
  const std::vector<uint8_t> bytes = w.Take();

  CentralSched b(0);
  b.Attach(&env);
  ByteReader r(bytes);
  ASSERT_TRUE(b.LoadCheckpoint(a.CheckpointVersion(), &r));
  // The restored cursor continues the arrival order: a task enqueued after
  // restore must not collide with pre-checkpoint sequence numbers. Verified
  // indirectly: save again and compare payloads.
  ByteWriter w2;
  ASSERT_TRUE(b.SaveCheckpoint(&w2));
  EXPECT_EQ(bytes, w2.Take());
}

TEST(CentralCheckpoint, RejectsWrongVersionTruncationAndGarbage) {
  ReplayEnv env(4);
  CentralSched b(0);
  b.Attach(&env);
  {
    ByteWriter w;
    w.U64(5);
    const std::vector<uint8_t> bytes = w.Take();
    ByteReader r(bytes);
    EXPECT_FALSE(b.LoadCheckpoint(/*version=*/99, &r));
  }
  {
    const std::vector<uint8_t> empty;
    ByteReader r(empty);
    EXPECT_FALSE(b.LoadCheckpoint(b.CheckpointVersion(), &r));
  }
  {
    ByteWriter w;
    w.U64(0);  // a zero cursor is never written by SaveCheckpoint
    const std::vector<uint8_t> bytes = w.Take();
    ByteReader r(bytes);
    EXPECT_FALSE(b.LoadCheckpoint(b.CheckpointVersion(), &r));
  }
}

TEST(PairCheckpoint, RoundTripRestoresCookies) {
  TopoReplayEnv env(4, 1, /*smt=*/true);
  PairSched a(0);
  a.Attach(&env);
  a.TaskNew(Msg(1, 0), SchedulableMinter::Mint(1, 0, 1));
  a.TaskNew(Msg(2, 2), SchedulableMinter::Mint(2, 2, 1));
  HintBlob h1;
  h1.w[0] = 1;
  h1.w[1] = 7;
  a.ParseHint(h1);
  HintBlob h2;
  h2.w[0] = 2;
  h2.w[1] = 9;
  a.ParseHint(h2);
  ASSERT_EQ(a.CookieOf(1), 7u);

  ByteWriter w;
  ASSERT_TRUE(a.SaveCheckpoint(&w));
  const std::vector<uint8_t> bytes = w.Take();

  PairSched b(0);
  b.Attach(&env);
  ByteReader r(bytes);
  ASSERT_TRUE(b.LoadCheckpoint(a.CheckpointVersion(), &r));
  // Cookies are hint-derived state: they must survive, or the security
  // constraint silently evaporates on restart.
  EXPECT_EQ(b.CookieOf(1), 7u);
  EXPECT_EQ(b.CookieOf(2), 9u);
  EXPECT_EQ(b.CookieOf(3), 0u);
}

TEST(PairCheckpoint, RejectsMalformedPayloadAndStaysFresh) {
  TopoReplayEnv env(4, 1, /*smt=*/true);
  PairSched b(0);
  b.Attach(&env);
  {
    ByteWriter w;
    w.U64(3);        // next_seq
    w.U64(1000000);  // claims a million cookie entries
    const std::vector<uint8_t> bytes = w.Take();
    ByteReader r(bytes);
    EXPECT_FALSE(b.LoadCheckpoint(b.CheckpointVersion(), &r));
  }
  // A failed load leaves the module usable and fresh.
  EXPECT_EQ(b.CookieOf(1), 0u);
  b.TaskNew(Msg(5, 0), SchedulableMinter::Mint(5, 0, 1));
  EXPECT_EQ(b.QueueDepth(0), 1u);
}

TEST(LayeredCheckpoint, RoundTripRestoresVtimes) {
  ReplayEnv env(8);
  LayeredSched a(0, LayeredSched::DefaultThreeTier(8));
  a.Attach(&env);
  a.TaskNew(Msg(1, 0, /*nice=*/-10), SchedulableMinter::Mint(1, 0, 1));
  a.TaskNew(Msg(2, 1, /*nice=*/0), SchedulableMinter::Mint(2, 1, 1));
  a.TaskTick(0, 1, Milliseconds(2));  // advance the hot layer's vtime

  ByteWriter w;
  ASSERT_TRUE(a.SaveCheckpoint(&w));
  const std::vector<uint8_t> bytes = w.Take();

  LayeredSched b(0, LayeredSched::DefaultThreeTier(8));
  b.Attach(&env);
  ByteReader r(bytes);
  ASSERT_TRUE(b.LoadCheckpoint(a.CheckpointVersion(), &r));
  for (int l = 0; l < b.nlayers(); ++l) {
    EXPECT_EQ(b.VtimeOf(l), a.VtimeOf(l)) << "layer " << l;
  }
}

TEST(LayeredCheckpoint, RejectsLayerCountMismatch) {
  ReplayEnv env(8);
  LayeredSched a(0, LayeredSched::DefaultThreeTier(8));
  a.Attach(&env);
  ByteWriter w;
  ASSERT_TRUE(a.SaveCheckpoint(&w));
  const std::vector<uint8_t> bytes = w.Take();

  // A two-layer successor cannot adopt a three-layer vtime vector: layer
  // identity would be ambiguous, so the load must fail cleanly.
  std::vector<LayerSpec> two;
  LayerSpec hot;
  hot.name = "hot";
  two.push_back(hot);
  LayerSpec cold;
  cold.name = "cold";
  two.push_back(cold);
  LayeredSched b(0, two);
  b.Attach(&env);
  ByteReader r(bytes);
  EXPECT_FALSE(b.LoadCheckpoint(a.CheckpointVersion(), &r));
}

TEST(RustyCheckpoint, DomainLoadHistorySurvives) {
  TopoReplayEnv env(8, 2, /*smt=*/false);
  RustySched a(0);
  a.Attach(&env);
  ASSERT_EQ(a.ndomains(), 2);
  env.SetNow(Microseconds(100));
  a.TaskNew(Msg(1, 0), SchedulableMinter::Mint(1, 0, 1));
  a.TaskNew(Msg(2, 1), SchedulableMinter::Mint(2, 1, 1));
  a.TaskNew(Msg(3, 4), SchedulableMinter::Mint(3, 4, 1));
  env.SetNow(Milliseconds(8));
  const uint64_t load0 = a.DomainLoad(0);
  const uint64_t load1 = a.DomainLoad(1);
  EXPECT_GT(load0, 0u);
  EXPECT_GT(load0, load1);  // two tasks on node 0, one on node 1

  ByteWriter w;
  ASSERT_TRUE(a.SaveCheckpoint(&w));
  const std::vector<uint8_t> bytes = w.Take();

  RustySched b(0);
  b.Attach(&env);
  ByteReader r(bytes);
  ASSERT_TRUE(b.LoadCheckpoint(a.CheckpointVersion(), &r));
  // The decayed averages — not the instantaneous sums, which the runtime
  // rebuilds by re-injection — must match the donor exactly.
  EXPECT_EQ(b.DomainLoad(0), a.DomainLoad(0));
  EXPECT_EQ(b.DomainLoad(1), a.DomainLoad(1));
}

TEST(RustyCheckpoint, RejectsZeroAndAbsurdDomainCounts) {
  TopoReplayEnv env(8, 2, /*smt=*/false);
  RustySched b(0);
  b.Attach(&env);
  {
    ByteWriter w;
    w.U64(1);  // next_seq
    w.U64(0);  // zero domains
    const std::vector<uint8_t> bytes = w.Take();
    ByteReader r(bytes);
    EXPECT_FALSE(b.LoadCheckpoint(b.CheckpointVersion(), &r));
  }
  {
    ByteWriter w;
    w.U64(1);
    w.U64(1000);  // absurd domain count
    const std::vector<uint8_t> bytes = w.Take();
    ByteReader r(bytes);
    EXPECT_FALSE(b.LoadCheckpoint(b.CheckpointVersion(), &r));
  }
}

TEST(ShinjukuCheckpoint, RoundTripAndRejects) {
  ReplayEnv env(4);
  ShinjukuSched a(0);
  a.Attach(&env);
  a.TaskNew(Msg(1, 0), SchedulableMinter::Mint(1, 0, 1));
  a.TaskNew(Msg(2, 1), SchedulableMinter::Mint(2, 1, 1));
  const uint64_t seq_before = a.next_seq();
  EXPECT_GT(seq_before, 1u);

  ByteWriter w;
  ASSERT_TRUE(a.SaveCheckpoint(&w));
  const std::vector<uint8_t> bytes = w.Take();

  ShinjukuSched b(0);
  b.Attach(&env);
  ByteReader r(bytes);
  ASSERT_TRUE(b.LoadCheckpoint(a.CheckpointVersion(), &r));
  EXPECT_EQ(b.next_seq(), seq_before);

  ShinjukuSched c(0);
  c.Attach(&env);
  {
    ByteWriter bad;
    bad.U64(0);
    const std::vector<uint8_t> bb = bad.Take();
    ByteReader rr(bb);
    EXPECT_FALSE(c.LoadCheckpoint(c.CheckpointVersion(), &rr));
  }
  {
    const std::vector<uint8_t> empty;
    ByteReader rr(empty);
    EXPECT_FALSE(c.LoadCheckpoint(c.CheckpointVersion(), &rr));
  }
}

// ---- Paired-workload determinism and behavior ----

struct PolicyStack {
  std::unique_ptr<SchedCore> core;
  std::unique_ptr<EnokiRuntime> runtime;
  std::unique_ptr<CfsClass> cfs;
  int enoki_policy = 0;
  int cfs_policy = 1;
};

PolicyStack MakePolicyStack(std::unique_ptr<EnokiSched> module, const MachineSpec& spec) {
  PolicyStack s;
  s.core = std::make_unique<SchedCore>(spec, SimCosts{});
  s.runtime = std::make_unique<EnokiRuntime>(std::move(module));
  s.cfs = std::make_unique<CfsClass>();
  s.enoki_policy = s.core->RegisterClass(s.runtime.get());
  s.cfs_policy = s.core->RegisterClass(s.cfs.get());
  return s;
}

TEST(PortfolioDeterminism, CentralTenantMixDoubleRun) {
  auto run = [] {
    PolicyStack s = MakePolicyStack(std::make_unique<CentralSched>(0), MachineSpec::OneSocket8());
    TenantMixConfig cfg;
    cfg.rounds = 60;
    TenantMixResult r = RunTenantMix(*s.core, s.enoki_policy, cfg);
    r.end_time = s.core->now();
    return r;
  };
  const TenantMixResult a = run();
  const TenantMixResult b = run();
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.wakeups, b.wakeups);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(PortfolioDeterminism, PairSiblingPairsDoubleRun) {
  auto run = [] {
    PolicyStack s = MakePolicyStack(std::make_unique<PairSched>(0), MachineSpec::SmtOneSocket8());
    SiblingPairsConfig cfg;
    cfg.rounds = 80;
    cfg.hint_runtime = s.runtime.get();
    cfg.hint_queue = s.runtime->CreateHintQueue(64);
    SiblingPairsResult r = RunSiblingPairs(*s.core, s.enoki_policy, cfg);
    r.end_time = s.core->now();
    return r;
  };
  const SiblingPairsResult a = run();
  const SiblingPairsResult b = run();
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.wakeups, b.wakeups);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(PortfolioDeterminism, LayeredServiceTiersDoubleRun) {
  auto run = [] {
    PolicyStack s = MakePolicyStack(
        std::make_unique<LayeredSched>(0, LayeredSched::DefaultThreeTier(8)),
        MachineSpec::OneSocket8());
    ServiceTiersConfig cfg;
    cfg.rounds = 60;
    ServiceTiersResult r = RunServiceTiers(*s.core, s.enoki_policy, cfg);
    r.end_time = s.core->now();
    return r;
  };
  const ServiceTiersResult a = run();
  const ServiceTiersResult b = run();
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.frontend_p99, b.frontend_p99);
  EXPECT_EQ(a.mid_p99, b.mid_p99);
  EXPECT_EQ(a.wakeups, b.wakeups);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(PortfolioDeterminism, RustySocketImbalanceDoubleRun) {
  auto run = [] {
    PolicyStack s = MakePolicyStack(std::make_unique<RustySched>(0), MachineSpec::TwoNode16());
    SocketImbalanceConfig cfg;
    cfg.tasks = 16;
    cfg.work_total = Milliseconds(4);
    SocketImbalanceResult r = RunSocketImbalance(*s.core, s.enoki_policy, cfg);
    r.end_time = s.core->now();
    return r;
  };
  const SocketImbalanceResult a = run();
  const SocketImbalanceResult b = run();
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(PortfolioBehavior, CentralPulsesFromDispatchCpu) {
  auto module = std::make_unique<CentralSched>(0);
  CentralSched* central = module.get();
  PolicyStack s = MakePolicyStack(std::move(module), MachineSpec::OneSocket8());
  TenantMixConfig cfg;
  cfg.rounds = 60;
  const TenantMixResult r = RunTenantMix(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  // The reserved CPU's timer drove dispatch...
  EXPECT_GT(central->dispatch_pulses(), 0u);
  // ...and the policy itself never placed work there: central_picks counts
  // only runtime-forced placements (affinity fallbacks) on the dispatch CPU.
  EXPECT_EQ(central->central_picks(), 0u);
}

TEST(PortfolioBehavior, PairEnforcesCookiesAndStillCompletes) {
  auto module = std::make_unique<PairSched>(0);
  PairSched* pair = module.get();
  PolicyStack s = MakePolicyStack(std::move(module), MachineSpec::SmtOneSocket8());
  SiblingPairsConfig cfg;
  cfg.rounds = 80;
  cfg.cookies = 2;
  cfg.tasks_per_cookie = 8;  // oversubscribed so incompatible pairings arise
  cfg.hint_runtime = s.runtime.get();
  cfg.hint_queue = s.runtime->CreateHintQueue(64);
  const SiblingPairsResult r = RunSiblingPairs(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  // The cookie rule actually bit: some picks were stalled for compatibility,
  // yet no task starved.
  EXPECT_GT(pair->compat_stalls(), 0u);
  EXPECT_EQ(pair->CookieOf(0), 0u);
}

TEST(PortfolioBehavior, LayeredServesEveryLayer) {
  auto module = std::make_unique<LayeredSched>(0, LayeredSched::DefaultThreeTier(8));
  LayeredSched* layered = module.get();
  PolicyStack s = MakePolicyStack(std::move(module), MachineSpec::OneSocket8());
  ServiceTiersConfig cfg;
  cfg.rounds = 60;
  const ServiceTiersResult r = RunServiceTiers(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  for (int l = 0; l < layered->nlayers(); ++l) {
    EXPECT_GT(layered->PicksIn(l), 0u) << "layer " << l << " was never served";
  }
}

TEST(PortfolioBehavior, RustyStealsAcrossDomainsAfterPinRelease) {
  auto module = std::make_unique<RustySched>(0);
  RustySched* rusty = module.get();
  PolicyStack s = MakePolicyStack(std::move(module), MachineSpec::TwoNode16());
  // Default config: 24 tasks pinned to node 0, released at 5ms — the same
  // imbalance the A10 ablation shows greedy stealing resolving.
  const SocketImbalanceResult r = RunSocketImbalance(*s.core, s.enoki_policy, SocketImbalanceConfig{});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(rusty->ndomains(), 2);
  // The pin release left node 1 idle and node 0 loaded: cross-domain steals
  // are what spreads the work.
  EXPECT_GT(rusty->cross_steals(), 0u);
}

// ---- Supervisor restart-from-checkpoint, per policy ----

struct PortfolioPolicy {
  const char* name;
  MachineSpec spec;
  std::unique_ptr<EnokiSched> (*make)();
};

std::vector<PortfolioPolicy> Portfolio() {
  std::vector<PortfolioPolicy> p;
  p.push_back({"central", MachineSpec::OneSocket8(),
               [] { return std::unique_ptr<EnokiSched>(std::make_unique<CentralSched>(0)); }});
  p.push_back({"pair", MachineSpec::SmtOneSocket8(),
               [] { return std::unique_ptr<EnokiSched>(std::make_unique<PairSched>(0)); }});
  p.push_back({"layered", MachineSpec::OneSocket8(), [] {
                 return std::unique_ptr<EnokiSched>(
                     std::make_unique<LayeredSched>(0, LayeredSched::DefaultThreeTier(8)));
               }});
  p.push_back({"rusty", MachineSpec::TwoNode16(),
               [] { return std::unique_ptr<EnokiSched>(std::make_unique<RustySched>(0)); }});
  return p;
}

TEST(PortfolioSupervisor, EachPolicyRestartsFromItsOwnCheckpoint) {
  for (const PortfolioPolicy& policy : Portfolio()) {
    PolicyStack s = MakePolicyStack(policy.make(), policy.spec);
    s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
    s.runtime->EnableSupervisor(SupervisorConfig{}, policy.make);
    EnokiRuntime* rt = s.runtime.get();
    s.core->loop().ScheduleAfter(Milliseconds(1), [rt] { rt->AbortModule("injected abort"); });
    PipeBenchConfig cfg;
    cfg.messages = 2000;
    const auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
    EXPECT_TRUE(r.completed) << policy.name << " lost tasks across restart";
    EXPECT_FALSE(rt->quarantined()) << policy.name;
    EXPECT_FALSE(rt->fallback_done()) << policy.name;
    EXPECT_EQ(rt->module_restarts(), 1u) << policy.name;
    ASSERT_GE(rt->supervisor()->timeline().size(), 1u) << policy.name;
    // The versioned checkpoint was valid and actually used — the restart is
    // a restore, not a fresh start.
    EXPECT_TRUE(rt->supervisor()->timeline()[0].restored_from_checkpoint) << policy.name;
  }
}

// ---- Live upgrades across the portfolio ----

TEST(PortfolioUpgrade, EachPolicyUpgradesToAndFromWfq) {
  for (const PortfolioPolicy& policy : Portfolio()) {
    // policy -> WFQ: the cross-policy commit path. The incoming module
    // cannot adopt the foreign transfer, so the runtime re-injects queued
    // tasks; nothing may strand.
    {
      PolicyStack s = MakePolicyStack(policy.make(), policy.spec);
      s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
      EnokiRuntime* rt = s.runtime.get();
      s.core->loop().ScheduleAfter(Milliseconds(1), [rt] {
        const auto report = rt->Upgrade(std::make_unique<WfqSched>(0));
        EXPECT_TRUE(report.ok) << report.error;
      });
      PipeBenchConfig cfg;
      cfg.messages = 2000;
      const auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
      EXPECT_TRUE(r.completed) << policy.name << " -> wfq stranded tasks";
      EXPECT_EQ(rt->upgrades(), 1u) << policy.name;
      EXPECT_FALSE(rt->quarantined()) << policy.name;
      EXPECT_FALSE(rt->fallback_done()) << policy.name;
    }
    // WFQ -> policy: same boundary crossed the other way.
    {
      PolicyStack s = MakePolicyStack(std::make_unique<WfqSched>(0), policy.spec);
      s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
      EnokiRuntime* rt = s.runtime.get();
      const PortfolioPolicy* pp = &policy;
      s.core->loop().ScheduleAfter(Milliseconds(1), [rt, pp] {
        const auto report = rt->Upgrade(pp->make());
        EXPECT_TRUE(report.ok) << report.error;
      });
      PipeBenchConfig cfg;
      cfg.messages = 2000;
      const auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
      EXPECT_TRUE(r.completed) << "wfq -> " << policy.name << " stranded tasks";
      EXPECT_EQ(rt->upgrades(), 1u) << policy.name;
      EXPECT_FALSE(rt->quarantined()) << policy.name;
      EXPECT_FALSE(rt->fallback_done()) << policy.name;
    }
  }
}

TEST(PortfolioUpgrade, SamePolicyUpgradeConsumesTransferWithoutReinjection) {
  // A same-policy upgrade hands tokens through TransferState; the commit
  // path must NOT re-inject (that would be a spurious wakeup storm). The
  // observable: the record log contains no kTaskWakeup burst at the upgrade
  // and the workload still completes.
  PolicyStack s = MakePolicyStack(std::make_unique<PairSched>(0), MachineSpec::SmtOneSocket8());
  s.runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
  EnokiRuntime* rt = s.runtime.get();
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt] {
    const auto report = rt->Upgrade(std::make_unique<PairSched>(0));
    EXPECT_TRUE(report.ok) << report.error;
  });
  PipeBenchConfig cfg;
  cfg.messages = 2000;
  const auto r = RunPipeBench(*s.core, s.enoki_policy, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(rt->upgrades(), 1u);
}

// The capstone: a 100-seed upgrade sweep *between* portfolio policies on the
// 16-CPU SMT+NUMA box. Each seed picks an ordered (from, to) pair from the
// five-policy set; the incoming module is wrapped in a FaultInjector running
// the upgrade-boundary fault menu, so prepare refusals, init throws, and
// probation misbehavior all land on cross-policy transactions.

std::unique_ptr<EnokiSched> MakePortfolioModule(uint64_t which) {
  switch (which % 5) {
    case 0:
      return std::make_unique<CentralSched>(0);
    case 1:
      return std::make_unique<PairSched>(0);
    case 2:
      return std::make_unique<LayeredSched>(0, LayeredSched::DefaultThreeTier(16));
    case 3:
      return std::make_unique<RustySched>(0);
    default:
      return std::make_unique<WfqSched>(0);
  }
}

struct CrossUpgradeOutcome {
  bool completed = false;
  bool quarantined = false;
  bool fallback = false;
  uint64_t upgrades = 0;
  uint64_t rollbacks = 0;
  std::string report;
  Time end_time = 0;
};

CrossUpgradeOutcome RunCrossUpgradeSweep(uint64_t seed) {
  const uint64_t from = seed % 5;
  const uint64_t to = (seed / 5 + 1 + from) % 5;  // may equal `from` — fine
  // The outgoing module gets its own injector so prepare refusals (which
  // come from the outgoing side of the transaction) are in the menu too.
  PolicyStack s = MakePolicyStack(
      std::make_unique<FaultInjector>(MakePortfolioModule(from), FaultPlan::UpgradeMenu(seed)),
      MachineSpec::PortfolioBox16());
  WatchdogConfig cfg;
  cfg.starvation_bound_ns = Milliseconds(20);
  s.runtime->EnableWatchdog(cfg, s.cfs_policy);
  EnokiRuntime* rt = s.runtime.get();
  s.core->loop().ScheduleAfter(Milliseconds(1), [rt, seed, to] {
    auto inj = std::make_unique<FaultInjector>(MakePortfolioModule(to),
                                               FaultPlan::UpgradeMenu(seed ^ 0xBADC0FFEull));
    (void)rt->Upgrade(std::move(inj));
  });
  PipeBenchConfig pcfg;
  pcfg.messages = 300;
  const auto r = RunPipeBench(*s.core, s.enoki_policy, pcfg);
  CrossUpgradeOutcome out;
  out.completed = r.completed;
  out.quarantined = rt->quarantined();
  out.fallback = rt->fallback_done();
  out.upgrades = rt->upgrades();
  out.rollbacks = rt->rollbacks();
  if (rt->crash_report().has_value()) {
    out.report = rt->crash_report()->ToString();
  }
  out.end_time = s.core->now();
  return out;
}

TEST(PortfolioUpgrade, CrossPolicyHundredSeedsZeroTaskLossZeroFallback) {
  int rolled_back = 0;
  int committed = 0;
  int refused = 0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    const CrossUpgradeOutcome a = RunCrossUpgradeSweep(seed);
    EXPECT_TRUE(a.completed) << "seed " << seed << " lost tasks";
    EXPECT_FALSE(a.quarantined) << "seed " << seed;
    EXPECT_FALSE(a.fallback) << "seed " << seed;
    const CrossUpgradeOutcome b = RunCrossUpgradeSweep(seed);
    EXPECT_EQ(a.completed, b.completed) << "seed " << seed;
    EXPECT_EQ(a.upgrades, b.upgrades) << "seed " << seed;
    EXPECT_EQ(a.rollbacks, b.rollbacks) << "seed " << seed;
    EXPECT_EQ(a.report, b.report) << "seed " << seed;
    EXPECT_EQ(a.end_time, b.end_time) << "seed " << seed;
    if (a.rollbacks > 0) {
      ++rolled_back;
    } else if (a.upgrades > 0) {
      ++committed;
    } else {
      ++refused;
    }
  }
  // The fault menu must exercise every arm of the cross-policy transaction.
  EXPECT_GT(refused, 0);
  EXPECT_GT(rolled_back, 0);
  EXPECT_GT(committed, 0);
}

}  // namespace
}  // namespace enoki
