// Focused scheduler behaviour tests: WFQ sleeper fairness and migration
// renormalization, Shinjuku slice sweeps, locality oversubscription,
// CFS yield semantics and priority changes, and ghOSt commit accounting.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/enoki/runtime.h"
#include "src/sched/cfs.h"
#include "src/sched/ghost.h"
#include "src/sched/locality.h"
#include "src/sched/shinjuku.h"
#include "src/sched/wfq.h"
#include "src/simkernel/bodies.h"

namespace enoki {
namespace {

struct WfqSim {
  WfqSim() : core(MachineSpec::OneSocket8(), SimCosts{}), runtime(std::make_unique<WfqSched>(0)) {
    policy = core.RegisterClass(&runtime);
    core.RegisterClass(&cfs);
  }
  WfqSched* module() { return static_cast<WfqSched*>(runtime.module()); }
  SchedCore core;
  EnokiRuntime runtime;
  CfsClass cfs;
  int policy = 0;
};

TEST(WfqBehavior, SleeperDoesNotStarveAfterLongSleep) {
  // A task that slept 100ms competes against a CPU hog on one core: the
  // sleeper-fairness clamp must prevent it from monopolizing the CPU for
  // its entire "debt" — but it must still run promptly.
  WfqSim sim;
  Task* hog = sim.core.CreateTaskOn("hog", std::make_unique<SpinForeverBody>(Milliseconds(1)),
                                    sim.policy, 0, CpuMask::Single(0));
  auto steps = std::make_shared<int>(0);
  auto ran_at = std::make_shared<Time>(0);
  Task* sleeper = sim.core.CreateTaskOn("sleeper", MakeFnBody([steps, ran_at](SimContext& ctx) -> Action {
                                          if (*steps == 0) {
                                            *steps = 1;
                                            return Action::Sleep(Milliseconds(100));
                                          }
                                          if (*steps == 1) {
                                            *steps = 2;
                                            *ran_at = ctx.now();
                                            return Action::Compute(Milliseconds(5));
                                          }
                                          return Action::Exit();
                                        }),
                                        sim.policy, 0, CpuMask::Single(0));
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilTasksDead({sleeper}, Seconds(5)));
  // Woken within a couple of ticks despite the hog...
  EXPECT_LT(*ran_at, Milliseconds(104));
  // ...and the hog was not starved for anywhere near the 100ms debt: by the
  // sleeper's exit (~110ms), the hog has far more runtime than a full-debt
  // repayment would leave it.
  EXPECT_GT(hog->total_runtime(), Milliseconds(80));
}

TEST(WfqBehavior, PrioChangeWhileQueuedTakesEffect) {
  WfqSim sim;
  Task* a = sim.core.CreateTaskOn("a", std::make_unique<SpinForeverBody>(Microseconds(500)),
                                  sim.policy, 0, CpuMask::Single(0));
  Task* b = sim.core.CreateTaskOn("b", std::make_unique<SpinForeverBody>(Microseconds(500)),
                                  sim.policy, 0, CpuMask::Single(0));
  sim.core.Start();
  sim.core.RunFor(Milliseconds(100));
  // Promote b mid-run; from here on it should accrue ~5.2x a's rate
  // (nice -5 weight ratio 3121/1024).
  const Duration a_before = sim.core.TaskRuntime(a);
  const Duration b_before = sim.core.TaskRuntime(b);
  sim.core.SetTaskNice(b, -5);
  sim.core.RunFor(Seconds(2));
  const double a_delta = ToSeconds(sim.core.TaskRuntime(a) - a_before);
  const double b_delta = ToSeconds(sim.core.TaskRuntime(b) - b_before);
  const double ratio = b_delta / a_delta;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(WfqBehavior, MigrationRenormalizesVruntime) {
  // A task pulled from a long-running core to a fresh one must not be
  // penalized by its absolute vruntime: after migration it still shares
  // fairly with its new neighbor.
  WfqSim sim;
  // Saturate cpu0 with two tasks for a while.
  Task* a = sim.core.CreateTaskOn("a", std::make_unique<SpinForeverBody>(Microseconds(500)),
                                  sim.policy, 0, CpuMask::Single(0));
  sim.core.CreateTaskOn("b", std::make_unique<SpinForeverBody>(Microseconds(500)), sim.policy, 0,
                        CpuMask::Single(0));
  sim.core.Start();
  sim.core.RunFor(Seconds(1));
  // Free task a to migrate; idle stealing will move it to an empty core.
  sim.core.SetTaskAffinity(a, CpuMask::All(8));
  sim.core.RunFor(Milliseconds(50));
  const Duration before = sim.core.TaskRuntime(a);
  sim.core.RunFor(Seconds(1));
  // On its own core it runs ~continuously.
  EXPECT_GT(ToSeconds(sim.core.TaskRuntime(a) - before), 0.9);
}

// ---- Shinjuku slice sweep ----

class ShinjukuSlice : public ::testing::TestWithParam<Duration> {};

TEST_P(ShinjukuSlice, ShortTaskBoundedByFewSlices) {
  const Duration slice = GetParam();
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<ShinjukuSched>(0, slice));
  CfsClass cfs;
  const int policy = core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  CpuMask one = CpuMask::Single(1);
  core.CreateTaskOn("long", std::make_unique<CpuBoundBody>(Milliseconds(20), Milliseconds(20)),
                    policy, 0, one);
  auto done = std::make_shared<Time>(0);
  auto state = std::make_shared<int>(0);
  Task* short_task = core.CreateTaskOn("short", MakeFnBody([state, done](SimContext& ctx) -> Action {
                                         if (*state == 0) {
                                           *state = 1;
                                           return Action::Compute(Microseconds(5));
                                         }
                                         *done = ctx.now();
                                         return Action::Exit();
                                       }),
                                       policy, 0, one);
  core.Start();
  ASSERT_TRUE(core.RunUntilTasksDead({short_task}, Seconds(5)));
  // The short task waits at most a few preemption slices, never the long
  // task's full 20ms.
  EXPECT_LT(*done, 6 * slice + Microseconds(100));
  EXPECT_EQ(core.pick_errors(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Slices, ShinjukuSlice,
                         ::testing::Values(Microseconds(5), Microseconds(10), Microseconds(20),
                                           Microseconds(50)),
                         [](const ::testing::TestParamInfo<Duration>& info) {
                           return std::to_string(info.param / 1000) + "us";
                         });

// ---- Locality oversubscription ----

TEST(LocalityBehavior, OversubscribedGroupSpills) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<LocalitySched>(0, /*use_hints=*/true));
  CfsClass cfs;
  const int policy = core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);
  const int q = runtime.CreateHintQueue(256);
  // One group with far more runnable tasks than kMaxColocated: the hint is
  // advisory, so the scheduler must spill rather than build an unbounded
  // queue on one core.
  std::set<int> cpus_used;
  core.set_wake_latency_hook([&](Task* t, Duration) { cpus_used.insert(t->cpu()); });
  for (int i = 0; i < 3 * static_cast<int>(LocalitySched::kMaxColocated); ++i) {
    Task* t = core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(3), Microseconds(500)),
                              policy);
    HintBlob hint;
    hint.w[0] = t->pid();
    hint.w[1] = 1;  // everyone in group 1
    runtime.SendHint(q, hint);
  }
  core.Start();
  ASSERT_TRUE(core.RunUntilAllExit(Seconds(30)));
  EXPECT_GT(cpus_used.size(), 1u);  // spilled beyond the group core
  EXPECT_EQ(core.pick_errors(), 0u);
}

// ---- CFS yield semantics ----

TEST(CfsBehavior, YieldMovesBehindPeers) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  CfsClass cfs;
  core.RegisterClass(&cfs);
  // A yielder and a spinner on one core: the yielder's repeated yields must
  // give the spinner the large majority of the CPU.
  auto yields = std::make_shared<int>(0);
  Task* yielder = core.CreateTaskOn("yielder", MakeFnBody([yields](SimContext&) -> Action {
                                      ++*yields;
                                      return Action::Yield();
                                    }),
                                    0, 0, CpuMask::Single(0));
  Task* spinner = core.CreateTaskOn("spinner", std::make_unique<SpinForeverBody>(Microseconds(500)),
                                    0, 0, CpuMask::Single(0));
  core.Start();
  core.RunFor(Milliseconds(500));
  EXPECT_GT(*yields, 10);
  EXPECT_GT(spinner->total_runtime(), yielder->total_runtime());
}

TEST(CfsBehavior, NicePlusNineteenGetsTinyShare) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  CfsClass cfs;
  core.RegisterClass(&cfs);
  Task* fg = core.CreateTaskOn("fg", std::make_unique<SpinForeverBody>(Microseconds(500)), 0, -20,
                               CpuMask::Single(0));
  Task* bg = core.CreateTaskOn("bg", std::make_unique<SpinForeverBody>(Microseconds(500)), 0, 19,
                               CpuMask::Single(0));
  core.Start();
  core.RunFor(Seconds(2));
  // weight(-20)/weight(19) ~ 5900: the foreground takes essentially all.
  EXPECT_GT(ToSeconds(core.TaskRuntime(fg)), 1.9);
  EXPECT_LT(ToSeconds(core.TaskRuntime(bg)), 0.1);
}

// ---- ghOSt accounting ----

TEST(GhostBehavior, EveryEventProducesAMessage) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  AgentClass agents;
  GhostClass ghost(GhostClass::Mode::kPerCpuFifo, CpuMask::All(8));
  const int agent_policy = core.RegisterClass(&agents);
  const int ghost_policy = core.RegisterClass(&ghost);
  CfsClass cfs;
  core.RegisterClass(&cfs);
  ghost.SpawnAgents(agent_policy, -1);
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    auto left = std::make_shared<int>(10);
    tasks.push_back(core.CreateTask("t", MakeFnBody([left](SimContext&) -> Action {
                                      if (*left == 0) {
                                        return Action::Exit();
                                      }
                                      --*left;
                                      return (*left % 2 == 0) ? Action::Sleep(Microseconds(120))
                                                              : Action::Compute(Microseconds(80));
                                    }),
                                    ghost_policy));
  }
  core.Start();
  ASSERT_TRUE(core.RunUntilTasksDead(tasks, Seconds(10)));
  // At minimum: new + dead per task, plus a blocked+wakeup per sleep.
  EXPECT_GE(ghost.messages(), 4u * (2 + 5));
  EXPECT_GE(ghost.commits(), 4u * 5);
}

TEST(GhostBehavior, StaleCommitDoesNotRunBlockedTask) {
  // Commit a task, then have it block before the kick lands: the pick must
  // reject the stale commit rather than run a non-runnable task. Covered
  // end-to-end by churn tests; here assert the counter-level invariant that
  // commits never exceed messages (every commit is a reaction).
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  AgentClass agents;
  GhostClass ghost(GhostClass::Mode::kSol, CpuMask::All(7));
  const int agent_policy = core.RegisterClass(&agents);
  const int ghost_policy = core.RegisterClass(&ghost);
  CfsClass cfs;
  core.RegisterClass(&cfs);
  ghost.SpawnAgents(agent_policy, 7);
  std::vector<Task*> tasks;
  for (int i = 0; i < 6; ++i) {
    auto left = std::make_shared<int>(20);
    tasks.push_back(core.CreateTask("t", MakeFnBody([left](SimContext&) -> Action {
                                      if (*left == 0) {
                                        return Action::Exit();
                                      }
                                      --*left;
                                      return (*left % 2 == 0) ? Action::Sleep(Microseconds(40))
                                                              : Action::Compute(Microseconds(30));
                                    }),
                                    ghost_policy));
  }
  core.Start();
  ASSERT_TRUE(core.RunUntilTasksDead(tasks, Seconds(10)));
  EXPECT_LE(ghost.commits(), ghost.messages());
}

}  // namespace
}  // namespace enoki
