// Tests for the extension features: policy changes (sched_setscheduler /
// task_departed), the Nest-style warm-core scheduler, and the C-state
// ladder they interact with.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/enoki/runtime.h"
#include "src/sched/cfs.h"
#include "src/sched/fifo.h"
#include "src/sched/nest.h"
#include "src/sched/wfq.h"
#include "src/simkernel/bodies.h"
#include "src/workloads/pipe.h"

namespace enoki {
namespace {

struct TwoPolicySim {
  TwoPolicySim()
      : core(MachineSpec::OneSocket8(), SimCosts{}),
        wfq_runtime(std::make_unique<WfqSched>(0)),
        fifo_runtime(std::make_unique<FifoSched>(1)) {
    wfq_policy = core.RegisterClass(&wfq_runtime);
    fifo_policy = core.RegisterClass(&fifo_runtime);
    cfs_policy = core.RegisterClass(&cfs);
  }
  SchedCore core;
  EnokiRuntime wfq_runtime;
  EnokiRuntime fifo_runtime;
  CfsClass cfs;
  int wfq_policy = 0;
  int fifo_policy = 0;
  int cfs_policy = 0;
};

TEST(PolicyChange, RunnableTaskMovesBetweenEnokiSchedulers) {
  TwoPolicySim sim;
  // Two tasks pinned to one core so one is always queued (runnable).
  Task* a = sim.core.CreateTaskOn("a", std::make_unique<CpuBoundBody>(Milliseconds(10), Milliseconds(1)),
                                  sim.wfq_policy, 0, CpuMask::Single(0));
  Task* b = sim.core.CreateTaskOn("b", std::make_unique<CpuBoundBody>(Milliseconds(10), Milliseconds(1)),
                                  sim.wfq_policy, 0, CpuMask::Single(0));
  sim.core.Start();
  sim.core.RunFor(Milliseconds(2));
  Task* queued = a->state() == TaskState::kRunnable ? a : b;
  ASSERT_EQ(queued->state(), TaskState::kRunnable);
  // Move the queued task to the FIFO policy: the WFQ module must hand back
  // its Schedulable via task_departed, the FIFO module adopts it.
  sim.core.SetTaskPolicy(queued, sim.fifo_policy);
  EXPECT_EQ(queued->policy(), sim.fifo_policy);
  EXPECT_TRUE(sim.core.RunUntilAllExit(Seconds(10)));
  EXPECT_EQ(sim.core.pick_errors(), 0u);
  EXPECT_GE(queued->total_runtime(), Milliseconds(10));
}

TEST(PolicyChange, RunningTaskForcedOffAndReattached) {
  TwoPolicySim sim;
  Task* t = sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(10), Milliseconds(10)),
                                sim.wfq_policy);
  sim.core.Start();
  sim.core.RunFor(Milliseconds(2));
  ASSERT_EQ(t->state(), TaskState::kRunning);
  sim.core.SetTaskPolicy(t, sim.fifo_policy);
  EXPECT_EQ(t->policy(), sim.fifo_policy);
  EXPECT_TRUE(sim.core.RunUntilAllExit(Seconds(10)));
  EXPECT_GE(t->total_runtime(), Milliseconds(10));
  EXPECT_EQ(sim.core.pick_errors(), 0u);
}

TEST(PolicyChange, BlockedTaskRetargetsQuietly) {
  TwoPolicySim sim;
  auto steps = std::make_shared<int>(0);
  Task* t = sim.core.CreateTask("t", MakeFnBody([steps](SimContext&) -> Action {
                                  if (*steps == 0) {
                                    *steps = 1;
                                    return Action::Sleep(Milliseconds(5));
                                  }
                                  return Action::Exit();
                                }),
                                sim.wfq_policy);
  sim.core.Start();
  sim.core.RunFor(Milliseconds(1));
  ASSERT_EQ(t->state(), TaskState::kBlocked);
  sim.core.SetTaskPolicy(t, sim.fifo_policy);
  // It wakes under the new policy.
  EXPECT_TRUE(sim.core.RunUntilAllExit(Seconds(5)));
  EXPECT_EQ(t->policy(), sim.fifo_policy);
}

TEST(PolicyChange, EnokiToCfsAndBack) {
  TwoPolicySim sim;
  Task* t = sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(20), Milliseconds(1)),
                                sim.wfq_policy);
  sim.core.loop().ScheduleAfter(Milliseconds(3),
                                [&] { sim.core.SetTaskPolicy(t, sim.cfs_policy); });
  sim.core.loop().ScheduleAfter(Milliseconds(6),
                                [&] { sim.core.SetTaskPolicy(t, sim.wfq_policy); });
  sim.core.Start();
  EXPECT_TRUE(sim.core.RunUntilAllExit(Seconds(10)));
  EXPECT_EQ(t->policy(), sim.wfq_policy);
  EXPECT_GE(t->total_runtime(), Milliseconds(20));
  EXPECT_EQ(sim.core.pick_errors(), 0u);
}

TEST(PolicyChange, SamePolicyIsNoOp) {
  TwoPolicySim sim;
  Task* t = sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(1), Milliseconds(1)),
                                sim.wfq_policy);
  sim.core.SetTaskPolicy(t, sim.wfq_policy);
  sim.core.Start();
  EXPECT_TRUE(sim.core.RunUntilAllExit(Seconds(5)));
}

// ---- Nest ----

struct NestSim {
  NestSim() : core(MachineSpec::OneSocket8(), SimCosts{}), runtime(std::make_unique<NestSched>(0)) {
    policy = core.RegisterClass(&runtime);
    core.RegisterClass(&cfs);
  }
  NestSched* module() { return static_cast<NestSched*>(runtime.module()); }
  SchedCore core;
  EnokiRuntime runtime;
  CfsClass cfs;
  int policy = 0;
};

TEST(Nest, CompletesChurnWithoutErrors) {
  NestSim sim;
  for (int i = 0; i < 12; ++i) {
    auto left = std::make_shared<int>(40);
    sim.core.CreateTask("t", MakeFnBody([left](SimContext&) -> Action {
                          if (*left == 0) {
                            return Action::Exit();
                          }
                          --*left;
                          return (*left % 2 == 0) ? Action::Sleep(Microseconds(150))
                                                  : Action::Compute(Microseconds(100));
                        }),
                        sim.policy);
  }
  sim.core.Start();
  EXPECT_TRUE(sim.core.RunUntilAllExit(Seconds(10)));
  EXPECT_EQ(sim.core.pick_errors(), 0u);
}

TEST(Nest, ConcentratesFewTasksOnFewCores) {
  NestSim sim;
  // Three desynchronized light tasks: their dispatches should concentrate
  // on a small set of cores rather than using all eight.
  std::set<int> cpus_used;
  sim.core.set_wake_latency_hook([&](Task* t, Duration) { cpus_used.insert(t->cpu()); });
  for (int i = 0; i < 3; ++i) {
    auto step = std::make_shared<int>(0);
    const Duration sleep = Microseconds(400) + Microseconds(61) * i;
    sim.core.CreateTask("t", MakeFnBody([step, sleep](SimContext&) -> Action {
                          *step ^= 1;
                          return *step == 1 ? Action::Compute(Microseconds(25))
                                            : Action::Sleep(sleep);
                        }),
                        sim.policy);
  }
  sim.core.Start();
  sim.core.RunFor(Seconds(1));
  EXPECT_LE(cpus_used.size(), 4u);  // nest, not spread over all 8
}

TEST(Nest, WarmPlacementBeatsSpreadOnWakeLatency) {
  auto run = [](bool nest) {
    SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
    std::unique_ptr<EnokiRuntime> rt;
    if (nest) {
      rt = std::make_unique<EnokiRuntime>(std::make_unique<NestSched>(0));
    } else {
      rt = std::make_unique<EnokiRuntime>(std::make_unique<FifoSched>(0));
    }
    CfsClass cfs;
    const int policy = core.RegisterClass(rt.get());
    core.RegisterClass(&cfs);
    auto latencies = std::make_shared<LatencyRecorder>();
    core.set_wake_latency_hook([latencies](Task*, Duration lat) { latencies->Record(lat); });
    for (int i = 0; i < 3; ++i) {
      auto step = std::make_shared<int>(0);
      const Duration sleep = Microseconds(480) + Microseconds(57) * i;
      core.CreateTask("t", MakeFnBody([step, sleep](SimContext&) -> Action {
                        *step ^= 1;
                        return *step == 1 ? Action::Compute(Microseconds(20))
                                          : Action::Sleep(sleep);
                      }),
                      policy);
    }
    core.Start();
    core.RunFor(Seconds(2));
    return latencies->Percentile(50.0);
  };
  const Duration spread_p50 = run(false);
  const Duration nest_p50 = run(true);
  EXPECT_LT(nest_p50 * 2, spread_p50);  // at least 2x better median
}

TEST(Nest, SaturatedNestExpands) {
  NestSim sim;
  // 8 CPU-bound tasks must still use all cores (the nest grows under load:
  // work conservation is not sacrificed).
  for (int i = 0; i < 8; ++i) {
    sim.core.CreateTask("t", std::make_unique<CpuBoundBody>(Milliseconds(10), Milliseconds(1)),
                        sim.policy);
  }
  sim.core.Start();
  ASSERT_TRUE(sim.core.RunUntilAllExit(Seconds(5)));
  // 8 x 10ms on 8 cores: close to 10ms wall, not 80ms serialized.
  EXPECT_LT(ToSeconds(sim.core.now()), 0.030);
}

// ---- C-state ladder ----

TEST(IdleLadder, ThreeExitLatencyTiers) {
  SimCosts costs;
  auto measure = [&](Duration idle_gap) {
    SchedCore core(MachineSpec::OneSocket8(), costs);
    CfsClass cfs;
    core.RegisterClass(&cfs);
    auto steps = std::make_shared<int>(0);
    core.CreateTaskOn("t", MakeFnBody([steps, idle_gap](SimContext&) -> Action {
                        if (*steps == 0) {
                          *steps = 1;
                          return Action::Sleep(idle_gap);
                        }
                        return Action::Exit();
                      }),
                      0, 0, CpuMask::Single(3));
    core.Start();
    core.mutable_wake_latency().Reset();
    EXPECT_TRUE(core.RunUntilAllExit(Seconds(2)));
    return core.wake_latency().max();
  };
  const Duration shallow = measure(Microseconds(5));
  const Duration medium = measure(Microseconds(100));
  const Duration deep = measure(Milliseconds(5));
  EXPECT_LT(shallow, medium);
  EXPECT_LT(medium, deep);
  EXPECT_GE(deep, costs.deep_idle_exit_ns);
}

}  // namespace
}  // namespace enoki
