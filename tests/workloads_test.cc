// Workload harness tests: pipe, schbench, the app suite, the dispersive
// RocksDB server, and the memcached/Arachne workload — sanity, shape, and
// determinism.

#include <gtest/gtest.h>

#include <memory>

#include "src/enoki/runtime.h"
#include "src/sched/arbiter.h"
#include "src/sched/cfs.h"
#include "src/sched/locality.h"
#include "src/sched/shinjuku.h"
#include "src/sched/wfq.h"
#include "src/workloads/apps.h"
#include "src/workloads/dispersive.h"
#include "src/workloads/fairness.h"
#include "src/workloads/memcached.h"
#include "src/workloads/pipe.h"
#include "src/workloads/schbench.h"

namespace enoki {
namespace {

TEST(PipeWorkload, DeterministicAcrossRuns) {
  auto run = [] {
    SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
    CfsClass cfs;
    core.RegisterClass(&cfs);
    PipeBenchConfig cfg;
    cfg.messages = 2000;
    return RunPipeBench(core, 0, cfg).elapsed_ns;
  };
  EXPECT_EQ(run(), run());
}

TEST(PipeWorkload, UserThreadVariantIsFarFaster) {
  SchedCore a(MachineSpec::OneSocket8(), SimCosts{});
  CfsClass cfs_a;
  a.RegisterClass(&cfs_a);
  PipeBenchConfig cfg;
  cfg.messages = 2000;
  const double kernel_lat = RunPipeBench(a, 0, cfg).usec_per_wakeup;

  SchedCore b(MachineSpec::OneSocket8(), SimCosts{});
  CfsClass cfs_b;
  b.RegisterClass(&cfs_b);
  const double user_lat = RunUserThreadPipeBench(b, 0, cfg).usec_per_wakeup;
  // Paper Table 3: Arachne ~0.1-0.2 us vs ~3-4 us for kernel schedulers.
  EXPECT_LT(user_lat, 0.5);
  EXPECT_GT(kernel_lat, 5 * user_lat);
}

TEST(Schbench, ProducesLatencies) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  CfsClass cfs;
  core.RegisterClass(&cfs);
  SchbenchConfig cfg;
  cfg.warmup = Milliseconds(50);
  cfg.runtime = Milliseconds(500);
  auto result = RunSchbench(core, 0, cfg);
  EXPECT_GT(result.wakeups, 100u);
  EXPECT_GT(result.p99, 0u);
  EXPECT_GE(result.p99, result.p50);
}

TEST(Schbench, MoreWorkersRaiseTail) {
  auto run = [](int workers) {
    SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
    CfsClass cfs;
    core.RegisterClass(&cfs);
    SchbenchConfig cfg;
    cfg.workers_per_thread = workers;
    cfg.warmup = Milliseconds(50);
    cfg.runtime = Milliseconds(800);
    return RunSchbench(core, 0, cfg);
  };
  const auto small = run(2);
  const auto big = run(16);  // 2x16+2 threads on 8 cores: oversubscribed
  EXPECT_GT(big.p99, small.p99);
}

TEST(Schbench, OneCorePinningWrecksTail) {
  // Table 6's "CFS One Core" column: pinning everything to one core gives a
  // catastrophic tail versus default placement.
  auto run = [](bool pin) {
    SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
    CfsClass cfs;
    core.RegisterClass(&cfs);
    SchbenchConfig cfg;
    cfg.pin_all_to_one_core = pin;
    cfg.warmup = Milliseconds(50);
    cfg.runtime = Milliseconds(800);
    return RunSchbench(core, 0, cfg);
  };
  const auto spread = run(false);
  const auto pinned = run(true);
  EXPECT_GT(pinned.p99, spread.p99);
}

TEST(AppSuite, Has36NamedBenchmarks) {
  const auto suite = Table5Suite(8);
  ASSERT_EQ(suite.size(), 36u);
  EXPECT_EQ(suite[0].name, "BT");
  EXPECT_EQ(suite[9].name, "Arrayfire, 1 (BLAS)");
}

TEST(AppSuite, SpmdRunsToCompletion) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  CfsClass cfs;
  core.RegisterClass(&cfs);
  AppSpec spec{"mini-spmd", AppPattern::kSpmdBarrier, 8, Microseconds(500), 30, 0.05, 0, 1};
  auto result = RunApp(core, 0, spec);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.score, 0.0);
}

TEST(AppSuite, EveryPatternCompletesOnCfsAndWfq) {
  for (AppPattern pattern :
       {AppPattern::kSpmdBarrier, AppPattern::kForkJoin, AppPattern::kPipeline,
        AppPattern::kOversubscribed, AppPattern::kIoMixed}) {
    AppSpec spec{"p", pattern, 6, Microseconds(300), 25, 0.2, Microseconds(100), 3};
    {
      SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
      CfsClass cfs;
      core.RegisterClass(&cfs);
      EXPECT_TRUE(RunApp(core, 0, spec).completed) << static_cast<int>(pattern) << " cfs";
    }
    {
      SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
      EnokiRuntime runtime(std::make_unique<WfqSched>(0));
      CfsClass cfs;
      const int policy = core.RegisterClass(&runtime);
      core.RegisterClass(&cfs);
      EXPECT_TRUE(RunApp(core, policy, spec).completed) << static_cast<int>(pattern) << " wfq";
      EXPECT_EQ(core.pick_errors(), 0u);
    }
  }
}

TEST(AppSuite, ScoreScalesWithCores) {
  AppSpec spec{"scale", AppPattern::kOversubscribed, 16, Milliseconds(1), 50, 0.0, 0, 1};
  auto run = [&](int ncpus) {
    SchedCore core(MachineSpec{ncpus, 1, "test"}, SimCosts{});
    CfsClass cfs;
    core.RegisterClass(&cfs);
    return RunApp(core, 0, spec).score;
  };
  EXPECT_GT(run(8), 1.8 * run(2));
}

TEST(Dispersive, CfsTailBlowsUpShinjukuStaysLow) {
  // The Figure 2a claim at moderate load: Shinjuku's 10us preemption keeps
  // GET p99 orders of magnitude below CFS's, where GETs wait behind 10ms
  // scans.
  DispersiveConfig cfg;
  cfg.rate_per_sec = 30'000;
  cfg.runtime = Seconds(2);
  Duration cfs_p99;
  Duration shinjuku_p99;
  {
    SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
    CfsClass cfs;
    const int cfs_policy = core.RegisterClass(&cfs);
    DispersiveConfig c = cfg;
    c.worker_policy = cfs_policy;
    c.cfs_policy = cfs_policy;
    c.worker_nice = -20;
    cfs_p99 = RunDispersive(core, c).p99;
  }
  {
    SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
    CpuMask workers;
    for (int i = cfg.first_worker_cpu; i < cfg.first_worker_cpu + cfg.worker_cores; ++i) {
      workers.Set(i);
    }
    EnokiRuntime runtime(std::make_unique<ShinjukuSched>(
        0, ShinjukuSched::kDefaultPreemptionSliceNs, workers));
    CfsClass cfs;
    const int shj = core.RegisterClass(&runtime);
    const int cfsp = core.RegisterClass(&cfs);
    DispersiveConfig c = cfg;
    c.worker_policy = shj;
    c.cfs_policy = cfsp;
    shinjuku_p99 = RunDispersive(core, c).p99;
    EXPECT_EQ(core.pick_errors(), 0u);
  }
  EXPECT_LT(shinjuku_p99, Milliseconds(1));
  EXPECT_GT(cfs_p99, shinjuku_p99);
}

TEST(Dispersive, BatchSharesCpuUnderShinjuku) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  CpuMask workers;
  for (int i = 2; i < 7; ++i) {
    workers.Set(i);
  }
  EnokiRuntime runtime(std::make_unique<ShinjukuSched>(
      0, ShinjukuSched::kDefaultPreemptionSliceNs, workers));
  CfsClass cfs;
  const int shj = core.RegisterClass(&runtime);
  const int cfsp = core.RegisterClass(&cfs);
  DispersiveConfig cfg;
  cfg.rate_per_sec = 20'000;
  cfg.runtime = Seconds(2);
  cfg.worker_policy = shj;
  cfg.cfs_policy = cfsp;
  cfg.batch_tasks = 5;
  auto result = RunDispersive(core, cfg);
  // At 20k req/s the workers need ~1.1 cores of the 5; the batch app should
  // soak up a decent share of the rest.
  EXPECT_GT(result.batch_cpus, 1.0);
  EXPECT_LT(result.batch_cpus, 5.0);
  // And the latency-sensitive app keeps its tail.
  EXPECT_LT(result.p99, Milliseconds(1));
}

TEST(Memcached, CfsModeServesLoad) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  CfsClass cfs;
  core.RegisterClass(&cfs);
  McConfig cfg;
  cfg.rate_per_sec = 100'000;
  cfg.runtime = Seconds(1);
  auto result = RunMemcached(core, cfg);
  EXPECT_GT(result.completed, 50'000u);
  EXPECT_GT(result.p99, result.p50);
}

TEST(Memcached, EnokiArachneScalesCores) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<ArbiterSched>(0, 1, 7));
  CfsClass cfs;
  const int arb = core.RegisterClass(&runtime);
  const int cfsp = core.RegisterClass(&cfs);
  McConfig cfg;
  cfg.mode = McMode::kEnokiArachne;
  cfg.rate_per_sec = 150'000;
  cfg.runtime = Seconds(1);
  cfg.cfs_policy = cfsp;
  cfg.arbiter_policy = arb;
  cfg.arbiter_runtime = &runtime;
  cfg.hint_queue = runtime.CreateHintQueue(1024);
  cfg.rev_queue = runtime.CreateRevQueue(1024);
  auto result = RunMemcached(core, cfg);
  EXPECT_GT(result.completed, 50'000u);
  EXPECT_GE(result.avg_cores, 1.0);
  EXPECT_LE(result.avg_cores, 7.0);
  EXPECT_EQ(core.pick_errors(), 0u);
}

TEST(Memcached, OriginalArachneServesLoad) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  CfsClass cfs;
  core.RegisterClass(&cfs);
  McConfig cfg;
  cfg.mode = McMode::kArachne;
  cfg.rate_per_sec = 150'000;
  cfg.runtime = Seconds(1);
  auto result = RunMemcached(core, cfg);
  EXPECT_GT(result.completed, 50'000u);
}

TEST(Fairness, PlacementKeepsTasksPut) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  CfsClass cfs;
  core.RegisterClass(&cfs);
  auto result = RunFairness(core, 0, 8, Milliseconds(200), /*same_core=*/false, {});
  ASSERT_TRUE(result.completed);
  StatAccumulator acc;
  for (double c : result.completion_seconds) {
    acc.Record(c);
  }
  // One task per core: very low completion-time variance.
  EXPECT_LT(acc.stddev(), 0.02);
}

}  // namespace
}  // namespace enoki
