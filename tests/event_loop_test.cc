// EventLoop tests: differential fuzzing of the timing-wheel implementation
// against the original binary-heap implementation, plus edge-case and
// lifetime regression tests.
//
// The timing wheel must be observably indistinguishable from the heap it
// replaced: same execution order (time, then insertion seq), same now()
// trajectory, same events_executed()/HasWork() at every step. The fuzzer
// drives both implementations through identical random op sequences —
// schedules at deltas chosen to land in every wheel level, cancels,
// RunOne/RunUntil/RunUntilIdle, and reentrant schedule/cancel from inside
// callbacks — across many seeds and asserts lockstep equivalence.

#include "src/simkernel/event_loop.h"

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/time.h"
#include "src/simkernel/sharded_event_loop.h"

namespace enoki {
namespace {

// ---- Reference implementation -------------------------------------------
// Verbatim copy (renamed) of the std::priority_queue event loop this PR
// replaced, kept as the ordering oracle for the differential test.

class LegacyEventLoop {
 public:
  using Callback = std::function<void()>;

  LegacyEventLoop() = default;

  Time now() const { return now_; }

  EventId ScheduleAt(Time at, Callback cb) {
    ENOKI_CHECK(at >= now_);
    const EventId id = ++next_seq_;
    queue_.push(Event{at, id, std::move(cb)});
    ++live_events_;
    return id;
  }

  // Hints are placement advice, never semantics: the heap oracle accepts and
  // ignores them, so the differential fuzzer can hand the wheel arbitrary
  // (including wrong) DeadlineClass hints and still demand identical output.
  EventId ScheduleAtHint(Time at, DeadlineClass /*hint*/, Callback cb) {
    return ScheduleAt(at, std::move(cb));
  }

  void Cancel(EventId id) {
    ENOKI_CHECK(id != kInvalidEventId);
    auto inserted = cancelled_.insert(id).second;
    ENOKI_CHECK_MSG(inserted, "event cancelled twice");
    ENOKI_CHECK(live_events_ > 0);
    --live_events_;
  }

  bool HasWork() const { return live_events_ > 0; }

  bool RunOne() {
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      auto it = cancelled_.find(ev.seq);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      ENOKI_CHECK(ev.at >= now_);
      now_ = ev.at;
      --live_events_;
      ++executed_;
      ev.cb();
      return true;
    }
    return false;
  }

  void RunUntil(Time deadline) {
    while (!queue_.empty()) {
      if (PeekTime() > deadline) {
        now_ = deadline;
        return;
      }
      RunOne();
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
  }

  void RunUntilIdle() {
    while (RunOne()) {
    }
  }

  uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    Time at;
    EventId seq;
    Callback cb;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  Time PeekTime() {
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      auto it = cancelled_.find(top.seq);
      if (it == cancelled_.end()) {
        return top.at;
      }
      cancelled_.erase(it);
      queue_.pop();
    }
    return kTimeMax;
  }

  Time now_ = 0;
  EventId next_seq_ = 0;
  uint64_t live_events_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

// ---- Differential fuzzer -------------------------------------------------

// Per-loop mirror of the fuzzer's scheduled events. Both mirrors receive the
// same op sequence; callbacks behave identically (driven by the label), so
// any divergence in the execution log is an ordering bug.
template <typename Loop>
struct Mirror {
  Loop loop;
  std::vector<std::string> log;            // labels in execution order
  std::vector<Time> log_times;             // now() at each execution
  std::vector<EventId> top_ids;            // id per top-level event index
  std::vector<bool> top_fired;             // fired or reentrantly-spawned-done
  std::vector<bool> top_cancelled;

  // Schedules top-level event `i` at `at`. A "busy" event also exercises the
  // reentrant path: on firing it schedules two children at now()+child_delta
  // and immediately cancels the second (schedule+cancel inside a callback).
  // The hint is fuzzed independently of the delta, so kFarPeriodic lands on
  // near events and kNearHorizon on far ones — broken promises must degrade
  // to fallback placement, never to reordering.
  void ScheduleTop(size_t i, Time at, bool busy, Time child_delta,
                   DeadlineClass hint) {
    if (top_ids.size() <= i) {
      top_ids.resize(i + 1, kInvalidEventId);
      top_fired.resize(i + 1, false);
      top_cancelled.resize(i + 1, false);
    }
    top_ids[i] = loop.ScheduleAtHint(at, hint, [this, i, busy, child_delta] {
      top_fired[i] = true;
      log.push_back("t" + std::to_string(i));
      log_times.push_back(loop.now());
      if (busy) {
        const Time t = loop.now() + child_delta;
        loop.ScheduleAt(t, [this, i] {
          log.push_back("c" + std::to_string(i));
          log_times.push_back(loop.now());
        });
        EventId doomed = loop.ScheduleAt(t, [this, i] {
          log.push_back("DOOMED" + std::to_string(i));
          log_times.push_back(loop.now());
        });
        loop.Cancel(doomed);
      }
    });
  }

  void CancelTop(size_t i) {
    top_cancelled[i] = true;
    loop.Cancel(top_ids[i]);
  }
};

template <typename A, typename B>
void ExpectLockstep(const Mirror<A>& a, const Mirror<B>& b, uint64_t seed,
                    int step) {
  ASSERT_EQ(a.loop.now(), b.loop.now()) << "seed=" << seed << " step=" << step;
  ASSERT_EQ(a.loop.HasWork(), b.loop.HasWork())
      << "seed=" << seed << " step=" << step;
  ASSERT_EQ(a.loop.events_executed(), b.loop.events_executed())
      << "seed=" << seed << " step=" << step;
  ASSERT_EQ(a.log, b.log) << "seed=" << seed << " step=" << step;
  ASSERT_EQ(a.log_times, b.log_times) << "seed=" << seed << " step=" << step;
}

// Deltas spanning every wheel level: same-time, level 0 (<64 ns), mid levels,
// the top wheel level, and beyond the 2^48 ns span (overflow heap) — plus the
// express-lane window: anywhere inside it (slot wraparound as the base
// advances) and a tight band straddling the spill edge at kLaneSpanNs, where
// an off-by-one in LaneEligible would misplace events.
Time RandomDelta(std::mt19937_64& rng) {
  switch (rng() % 10) {
    case 0:
      return 0;
    case 1:
      return rng() % 64;                      // level 0
    case 2:
      return 64 + rng() % (4096 - 64);        // level 1
    case 3:
      return rng() % 1'000'000;               // levels 0-3, tick/IPC scale
    case 4:
      return rng() % 4'000'000'000ULL;        // multi-second sim time
    case 5:
      return (Time{1} << 40) + rng() % 1024;  // high wheel level
    case 6:
      return (Time{1} << 49) + rng() % 1024;  // overflow heap
    case 7:
      // Lane spill boundary: eligibility flips inside this band.
      return EventLoop::kLaneSpanNs - 600 + rng() % 1200;
    case 8:
      return rng() % EventLoop::kLaneSpanNs;  // full lane window, slot wrap
    default:
      return 1 + rng() % 1000;
  }
}

void FuzzOneSeed(uint64_t seed) {
  std::mt19937_64 rng(seed);
  Mirror<LegacyEventLoop> legacy;
  Mirror<EventLoop> wheel;
  size_t next_top = 0;

  const int steps = 400;
  for (int step = 0; step < steps; ++step) {
    const int op = static_cast<int>(rng() % 100);
    if (op < 45 || next_top == 0) {
      // Schedule a top-level event.
      const Time at = legacy.loop.now() + RandomDelta(rng);
      const bool busy = rng() % 4 == 0;
      const Time child_delta = rng() % 3 == 0 ? 0 : rng() % 1000;
      const auto hint = static_cast<DeadlineClass>(rng() % 3);
      const size_t i = next_top++;
      legacy.ScheduleTop(i, at, busy, child_delta, hint);
      wheel.ScheduleTop(i, at, busy, child_delta, hint);
    } else if (op < 60) {
      // Cancel a random live top-level event (both mirrors agree on
      // liveness, or ExpectLockstep already failed).
      std::vector<size_t> live;
      for (size_t i = 0; i < next_top; ++i) {
        if (!legacy.top_fired[i] && !legacy.top_cancelled[i]) {
          ASSERT_FALSE(wheel.top_fired[i]);
          live.push_back(i);
        }
      }
      if (!live.empty()) {
        const size_t pick = live[rng() % live.size()];
        legacy.CancelTop(pick);
        wheel.CancelTop(pick);
      }
    } else if (op < 85) {
      legacy.loop.RunOne();
      wheel.loop.RunOne();
    } else if (op < 97) {
      const Time deadline = legacy.loop.now() + RandomDelta(rng);
      legacy.loop.RunUntil(deadline);
      wheel.loop.RunUntil(deadline);
    } else {
      legacy.loop.RunUntilIdle();
      wheel.loop.RunUntilIdle();
    }
    ExpectLockstep(legacy, wheel, seed, step);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  legacy.loop.RunUntilIdle();
  wheel.loop.RunUntilIdle();
  ExpectLockstep(legacy, wheel, seed, steps);
}

TEST(EventLoopDifferential, MatchesLegacyAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    FuzzOneSeed(seed);
    if (::testing::Test::HasFatalFailure()) {
      return;  // first divergent seed is enough to debug
    }
  }
}

// ---- Edge cases ----------------------------------------------------------

TEST(EventLoopEdge, RunUntilDeadlineExactlyOnEvent) {
  EventLoop loop;
  std::vector<int> fired;
  loop.ScheduleAt(100, [&] { fired.push_back(1); });
  loop.ScheduleAt(100, [&] { fired.push_back(2); });
  loop.ScheduleAt(101, [&] { fired.push_back(3); });
  loop.RunUntil(100);
  // Events at exactly the deadline execute; later ones do not.
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), 100);
  EXPECT_TRUE(loop.HasWork());
  loop.RunUntilIdle();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopEdge, PeekSkipsCancelledHeadRun) {
  // A run of cancelled events at the queue head must not stall RunUntil or
  // make it misreport the next event time.
  EventLoop loop;
  std::vector<EventId> doomed;
  for (int i = 0; i < 10; ++i) {
    doomed.push_back(loop.ScheduleAt(50 + i, [] { FAIL() << "cancelled event ran"; }));
  }
  bool survivor = false;
  loop.ScheduleAt(200, [&] { survivor = true; });
  for (EventId id : doomed) {
    loop.Cancel(id);
  }
  // Deadline between the cancelled run and the survivor: nothing may fire,
  // and time must advance exactly to the deadline.
  loop.RunUntil(120);
  EXPECT_EQ(loop.now(), 120);
  EXPECT_FALSE(survivor);
  EXPECT_TRUE(loop.HasWork());
  loop.RunUntil(200);
  EXPECT_TRUE(survivor);
  EXPECT_EQ(loop.events_executed(), 1u);
}

TEST(EventLoopEdge, HasWorkFalseAfterCancellingOnlyEvent) {
  EventLoop loop;
  const EventId id = loop.ScheduleAt(10, [] {});
  EXPECT_TRUE(loop.HasWork());
  loop.Cancel(id);
  EXPECT_FALSE(loop.HasWork());
  EXPECT_FALSE(loop.RunOne());
  EXPECT_EQ(loop.events_executed(), 0u);
  EXPECT_EQ(loop.now(), 0);
}

TEST(EventLoopEdge, TieBreakStableAcrossThousandEvents) {
  // 1000 events at the same timestamp must run in exact insertion order.
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 1000; ++i) {
    loop.ScheduleAt(42, [&order, i] { order.push_back(i); });
  }
  loop.RunUntilIdle();
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(order[i], i);
  }
  EXPECT_EQ(loop.now(), 42);
}

// ---- Cancel lifetime regression ------------------------------------------

// Cancel must destroy the callback (and everything it captured) immediately,
// not when the cancelled timestamp is eventually reached. Captured state can
// hold tasks, sockets, or big buffers alive; retaining it until a far-future
// timestamp is a leak in all but name.
TEST(EventLoopLifetime, CancelDestroysCallbackEagerly) {
  struct Tracker {
    explicit Tracker(int* p) : live(p) { ++*live; }
    Tracker(const Tracker& o) : live(o.live) { ++*live; }
    ~Tracker() { --*live; }
    int* live;
  };

  EventLoop loop;
  int live = 0;
  const EventId far = loop.ScheduleAt(Time{1} << 45, [t = Tracker(&live)] {
    FAIL() << "cancelled event ran";
    (void)t;
  });
  loop.ScheduleAt(1, [] {});
  ASSERT_GT(live, 0);
  loop.Cancel(far);
  // The capture dies at Cancel() time, long before timestamp 2^45.
  EXPECT_EQ(live, 0);
  loop.RunUntilIdle();
  EXPECT_EQ(live, 0);
  EXPECT_EQ(loop.events_executed(), 1u);
}

// Same property for events parked in the overflow heap (beyond the wheel
// span), which are tombstoned rather than unlinked: the callback must still
// die at Cancel() time even though the record is reclaimed later.
TEST(EventLoopLifetime, CancelDestroysOverflowCallbackEagerly) {
  struct Tracker {
    explicit Tracker(int* p) : live(p) { ++*live; }
    Tracker(const Tracker& o) : live(o.live) { ++*live; }
    ~Tracker() { --*live; }
    int* live;
  };

  EventLoop loop;
  int live = 0;
  const EventId far = loop.ScheduleAt(Time{1} << 60, [t = Tracker(&live)] {
    FAIL() << "cancelled event ran";
    (void)t;
  });
  ASSERT_GT(live, 0);
  loop.Cancel(far);
  EXPECT_EQ(live, 0);
  EXPECT_FALSE(loop.HasWork());
}

// Lane events are intrusively linked, so cancel must unlink and reclaim them
// immediately — no tombstones, no retained captures, and HasWork must go
// false the moment the only lane event dies.
TEST(EventLoopLifetime, CancelUnlinksLaneEventEagerly) {
  struct Tracker {
    explicit Tracker(int* p) : live(p) { ++*live; }
    Tracker(const Tracker& o) : live(o.live) { ++*live; }
    ~Tracker() { --*live; }
    int* live;
  };

  EventLoop loop;
  int live = 0;
  const EventId near = loop.ScheduleAt(100, [t = Tracker(&live)] {
    FAIL() << "cancelled event ran";
    (void)t;
  });
  ASSERT_EQ(loop.wheel_profile().lane_hits, 1u) << "event should be lane-resident";
  ASSERT_GT(live, 0);
  loop.Cancel(near);
  EXPECT_EQ(live, 0);
  EXPECT_FALSE(loop.HasWork());
  EXPECT_FALSE(loop.RunOne());

  // Cancel in the middle of a populated slot list, then run the survivors.
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    // Same 64-ns lane slot, distinct times: exercises unordered-list unlink.
    ids.push_back(loop.ScheduleAt(6'400 + i % 4, [&fired, i] { fired.push_back(i); }));
  }
  loop.Cancel(ids[2]);
  loop.Cancel(ids[5]);
  loop.Cancel(ids[7]);
  loop.RunUntilIdle();
  EXPECT_EQ(fired, (std::vector<int>{0, 4, 1, 6, 3}));  // time, then seq order
}

// Ids must be generation-checked: a slot reused by a later event must not be
// cancellable through the earlier event's id.
TEST(EventLoopLifetime, ExecutedCountAndSlotReuse) {
  EventLoop loop;
  int fired = 0;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      loop.ScheduleAt(loop.now() + 1 + i, [&fired] { ++fired; });
    }
    loop.RunUntilIdle();
  }
  EXPECT_EQ(fired, 300);
  EXPECT_EQ(loop.events_executed(), 300u);
  EXPECT_FALSE(loop.HasWork());
}

// ---------------------------------------------------------------------------
// Sharded engine: differential fuzz against the plain loop, and merge-order
// determinism across host thread counts (ISSUE 7).
// ---------------------------------------------------------------------------

// A 1-shard ShardedEventLoop must be indistinguishable from a plain
// EventLoop: drive both with the same randomized schedule-heavy script
// through the engine's RunUntil/RunUntilIdle surface and compare the
// execution logs. (This is the sharded-vs-legacy differential the issue asks
// for — the plain loop is itself differentially fuzzed against the retained
// legacy heap loop above, so transitively the sharded engine matches the
// legacy ordering too.)
TEST(ShardedDifferential, SingleShardMatchesPlainLoopAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    std::mt19937_64 rng_a(seed);
    std::mt19937_64 rng_b(seed);
    EventLoop plain;
    ShardedEventLoop::Options opts;
    opts.nshards = 1;
    opts.threads = 1;
    ShardedEventLoop engine(opts);
    std::vector<std::pair<int, Time>> log_a;
    std::vector<std::pair<int, Time>> log_b;

    auto script = [](std::mt19937_64& rng, EventLoop& loop,
                     std::vector<std::pair<int, Time>>& log,
                     auto run_until, auto run_idle) {
      int label = 0;
      for (int step = 0; step < 200; ++step) {
        const uint64_t pick = rng() % 100;
        if (pick < 60) {
          const Time at = loop.now() + rng() % 50'000;
          const int id = label++;
          loop.ScheduleAt(at, [id, &log, &loop] { log.emplace_back(id, loop.now()); });
        } else if (pick < 90) {
          run_until(loop.now() + rng() % 30'000);
        } else {
          run_idle();
        }
      }
      run_idle();
    };

    script(rng_a, plain, log_a,
           [&plain](Time t) { plain.RunUntil(t); },
           [&plain] { plain.RunUntilIdle(); });
    script(rng_b, engine.shard(0), log_b,
           [&engine](Time t) { engine.RunUntil(t); },
           [&engine] { engine.RunUntilIdle(); });

    ASSERT_EQ(log_a, log_b) << "seed " << seed;
    EXPECT_EQ(plain.events_executed(), engine.events_executed()) << "seed " << seed;
  }
}

// Multi-shard determinism: a scripted cross-shard cascade must produce the
// same per-shard execution logs, the same merge fingerprint, and the same
// observed merge sequence no matter how many host threads run the shards.
struct CascadeRun {
  std::vector<std::string> exec_log;   // per-shard logs, concatenated
  std::vector<std::string> merge_log;  // committed cross messages, in order
  uint64_t fingerprint = 0;
  uint64_t events = 0;
  uint64_t cross = 0;
};

CascadeRun RunCascade(int threads, bool batched_commit = true) {
  static constexpr int kShards = 4;
  static constexpr Duration kEpoch = 1'000;
  ShardedEventLoop::Options opts;
  opts.nshards = kShards;
  opts.epoch_ns = kEpoch;
  opts.threads = threads;
  opts.batched_commit = batched_commit;
  ShardedEventLoop engine(opts);

  CascadeRun out;
  // Only shard s's executing thread appends to logs[s]; the merge observer
  // runs on the barrier (main) thread.
  auto logs = std::make_shared<std::array<std::vector<std::string>, kShards>>();
  engine.set_merge_observer([&out](Time at, int src, int dst, uint64_t seq) {
    out.merge_log.push_back(std::to_string(at) + ":" + std::to_string(src) + ">" +
                            std::to_string(dst) + "#" + std::to_string(seq));
  });

  // Each hop logs locally, schedules a local echo, and forwards to the next
  // shard with a latency that varies (deterministically) by depth.
  std::function<void(int, int)> hop = [&](int s, int depth) {
    EventLoop& loop = engine.shard(s);
    (*logs)[static_cast<size_t>(s)].push_back(
        "s" + std::to_string(s) + "@" + std::to_string(loop.now()) + "d" + std::to_string(depth));
    loop.ScheduleAfter(static_cast<Duration>(depth * 37 % 900), [logs, s, &engine] {
      (*logs)[static_cast<size_t>(s)].push_back(
          "echo s" + std::to_string(s) + "@" + std::to_string(engine.shard(s).now()));
    });
    if (depth == 0) {
      return;
    }
    const Duration latency = kEpoch + static_cast<Duration>(depth * 131 % 700);
    engine.PostCross(s, (s + 1) % kShards, latency, [&hop, s, depth] {
      hop((s + 1) % kShards, depth - 1);
    });
  };

  for (int s = 0; s < kShards; ++s) {
    engine.shard(s).ScheduleAt(static_cast<Time>((s + 1) * 100), [&hop, s] { hop(s, 12); });
  }
  engine.RunUntilIdle();

  for (const auto& shard_log : *logs) {
    out.exec_log.insert(out.exec_log.end(), shard_log.begin(), shard_log.end());
  }
  out.fingerprint = engine.MergeFingerprint();
  out.events = engine.events_executed();
  out.cross = engine.cross_messages();
  return out;
}

TEST(ShardedDeterminism, CascadeIdenticalAcrossThreadCounts) {
  const CascadeRun t1 = RunCascade(1);
  EXPECT_GT(t1.cross, 0u);
  EXPECT_FALSE(t1.merge_log.empty());
  for (int threads : {2, 4}) {
    const CascadeRun tn = RunCascade(threads);
    EXPECT_EQ(t1.exec_log, tn.exec_log) << "threads=" << threads;
    EXPECT_EQ(t1.merge_log, tn.merge_log) << "threads=" << threads;
    EXPECT_EQ(t1.fingerprint, tn.fingerprint) << "threads=" << threads;
    EXPECT_EQ(t1.events, tn.events) << "threads=" << threads;
    EXPECT_EQ(t1.cross, tn.cross) << "threads=" << threads;
  }
}

// Batched commit must be observably invisible: identical execution order,
// identical merge observer sequence, and a byte-identical fingerprint whether
// cross-shard messages travel one per mailbox entry or coalesced — at every
// host thread count.
TEST(ShardedDeterminism, BatchedCommitMatchesUnbatchedAcrossThreadCounts) {
  const CascadeRun batched = RunCascade(1, /*batched_commit=*/true);
  for (int threads : {1, 2, 4}) {
    const CascadeRun plain = RunCascade(threads, /*batched_commit=*/false);
    EXPECT_EQ(batched.exec_log, plain.exec_log) << "threads=" << threads;
    EXPECT_EQ(batched.merge_log, plain.merge_log) << "threads=" << threads;
    EXPECT_EQ(batched.fingerprint, plain.fingerprint) << "threads=" << threads;
    EXPECT_EQ(batched.events, plain.events) << "threads=" << threads;
    EXPECT_EQ(batched.cross, plain.cross) << "threads=" << threads;
  }
}

// Same-instant sends from one shard are the case batching exists for: all of
// them share (deliver_time, src), so they must travel as ONE mailbox entry
// (prof batched_msgs counts the coalesced tail) and still expand to the exact
// per-message merge sequence and delivery order of the unbatched engine.
struct BurstRun {
  uint64_t fingerprint = 0;
  uint64_t cross = 0;
  uint64_t batched = 0;
  std::vector<std::string> merge_log;
  std::vector<int> delivered;
};

BurstRun RunSameInstantBurst(bool batched_commit) {
  ShardedEventLoop::Options opts;
  opts.nshards = 2;
  opts.epoch_ns = 1'000;
  opts.threads = 1;
  opts.batched_commit = batched_commit;
  ShardedEventLoop engine(opts);
  BurstRun out;
  engine.set_merge_observer([&out](Time at, int src, int dst, uint64_t seq) {
    out.merge_log.push_back(std::to_string(at) + ":" + std::to_string(src) +
                            ">" + std::to_string(dst) + "#" + std::to_string(seq));
  });
  // One callback fires 8 cross posts at the same instant with the same
  // latency: same deliver_at, same src, contiguous seqs — one batch. A second
  // burst at a different instant must open a fresh batch.
  for (Time start : {Time{100}, Time{5'000}}) {
    engine.shard(0).ScheduleAt(start, [&engine, &out] {
      for (int i = 0; i < 8; ++i) {
        const int tag = static_cast<int>(engine.shard(0).now()) + i;
        engine.PostCross(0, 1, 2'000, [&out, tag] { out.delivered.push_back(tag); });
      }
    });
  }
  engine.RunUntilIdle();
  out.fingerprint = engine.MergeFingerprint();
  out.cross = engine.cross_messages();
  out.batched = engine.profile().batched_msgs;
  return out;
}

TEST(ShardedDeterminism, BatchedCommitCoalescesSameInstantBursts) {
  const BurstRun on = RunSameInstantBurst(true);
  const BurstRun off = RunSameInstantBurst(false);
  ASSERT_EQ(on.cross, 16u);
  ASSERT_EQ(off.cross, 16u);
  // Two 8-message bursts: 7 coalesced tails each when batching is on.
  EXPECT_EQ(on.batched, 14u);
  EXPECT_EQ(off.batched, 0u);
  // Identical observable output either way, including intra-batch order.
  EXPECT_EQ(on.fingerprint, off.fingerprint);
  EXPECT_EQ(on.merge_log, off.merge_log);
  EXPECT_EQ(on.delivered, off.delivered);
  ASSERT_EQ(on.delivered.size(), 16u);
  for (size_t i = 1; i < 8; ++i) {
    EXPECT_LT(on.delivered[i - 1], on.delivered[i]) << "send order violated";
  }
}

// The epoch-leap optimization must not change behaviour: widely spaced
// events across shards fire at their exact times, and idle spans cost far
// fewer epochs than stepping every window would.
TEST(ShardedDeterminism, EpochLeapSkipsIdleSpans) {
  ShardedEventLoop::Options opts;
  opts.nshards = 2;
  opts.epoch_ns = 1'000;
  opts.threads = 1;
  ShardedEventLoop engine(opts);
  std::vector<Time> fired;
  for (int i = 1; i <= 5; ++i) {
    const Time at = static_cast<Time>(i) * 10'000'000;  // 10ms apart
    engine.shard(i % 2).ScheduleAt(at, [&fired, at, &engine, i] {
      fired.push_back(at);
      (void)i;
      EXPECT_EQ(engine.shard(0).now() >= at || engine.shard(1).now() >= at, true);
    });
  }
  engine.RunUntilIdle();
  ASSERT_EQ(fired.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fired[static_cast<size_t>(i)], static_cast<Time>(i + 1) * 10'000'000);
  }
  // 5 events 10ms apart with a 1us epoch: stepping every window would cost
  // ~50'000 epochs; the leap makes it O(events).
  EXPECT_LT(engine.epochs(), 50u);
}

// Cross-shard latency below the lookahead bound is a programming error and
// must be rejected loudly (silently accepting it would break the parallel
// correctness argument).
TEST(ShardedDeterminism, RejectsLatencyBelowEpoch) {
  ShardedEventLoop::Options opts;
  opts.nshards = 2;
  opts.epoch_ns = 5'000;
  opts.threads = 1;
  ShardedEventLoop engine(opts);
  EXPECT_DEATH(engine.PostCross(0, 1, 4'999, [] {}), "lookahead");
}

// ---------------------------------------------------------------------------
// EpochController unit tests. The controller is pure (committed counts in,
// window out), so its decision sequence is tested directly without an engine.
// ---------------------------------------------------------------------------

EpochController::Config ControllerConfig() {
  EpochController::Config cfg;
  cfg.floor = 5'000;
  cfg.ceiling = 80'000;
  cfg.period = 4;
  cfg.mailbox_slots = 1024;
  cfg.widen_density = 16;
  return cfg;
}

TEST(EpochController, WidensOnDensityUpToCeiling) {
  EpochController c(ControllerConfig());
  Duration w = 10'000;
  // Dense, quiet-mailbox epochs: 100 events, no messages, no leaps. Every
  // period the window should double until the ceiling clamp holds it.
  for (int epoch = 0; epoch < 4 * 8; ++epoch) {
    w = c.OnEpoch(w, /*committed_msgs=*/0, /*events=*/100, /*leapt=*/false);
  }
  EXPECT_EQ(w, 80'000u);  // 10k -> 20k -> 40k -> 80k, then held at ceiling
  EXPECT_EQ(c.widens(), 3u);
  EXPECT_EQ(c.narrows(), 0u);
}

TEST(EpochController, NarrowsUnderMailboxPressureDownToFloor) {
  EpochController c(ControllerConfig());
  Duration w = 80'000;
  // avg 300 msgs/epoch * 4 >= 1024 slots: overflow risk, halve every period.
  for (int epoch = 0; epoch < 4 * 8; ++epoch) {
    w = c.OnEpoch(w, /*committed_msgs=*/300, /*events=*/1000, /*leapt=*/false);
  }
  EXPECT_EQ(w, 5'000u);  // 80k -> 40k -> 20k -> 10k -> 5k, then floor
  EXPECT_EQ(c.narrows(), 4u);
  EXPECT_EQ(c.widens(), 0u);
}

TEST(EpochController, HoldsWhenLeapDominated) {
  EpochController c(ControllerConfig());
  Duration w = 10'000;
  // Half the epochs leapt idle time: the traffic is sparse bursts, so the
  // density average is meaningless and the controller must hold.
  for (int epoch = 0; epoch < 4 * 8; ++epoch) {
    w = c.OnEpoch(w, /*committed_msgs=*/0, /*events=*/100,
                  /*leapt=*/(epoch % 2) == 0);
  }
  EXPECT_EQ(w, 10'000u);
  EXPECT_EQ(c.widens(), 0u);
  EXPECT_EQ(c.narrows(), 0u);
}

TEST(EpochController, DecidesOnlyAtPeriodBoundaries) {
  EpochController::Config cfg = ControllerConfig();
  cfg.period = 8;
  EpochController c(cfg);
  Duration w = 10'000;
  for (int epoch = 0; epoch < 7; ++epoch) {
    w = c.OnEpoch(w, 0, 1000, false);
    EXPECT_EQ(w, 10'000u) << "decision before the period boundary";
  }
  w = c.OnEpoch(w, 0, 1000, false);
  EXPECT_EQ(w, 20'000u);
  EXPECT_EQ(c.widens(), 1u);
}

TEST(EpochController, ClampsOutOfRangeWindowImmediately) {
  EpochController c(ControllerConfig());
  // Even mid-period (no decision yet) the returned window obeys the bounds:
  // the clamp invariant is unconditional, not a decision outcome.
  EXPECT_EQ(c.OnEpoch(200'000, 0, 0, false), 80'000u);
  EXPECT_EQ(c.OnEpoch(1, 0, 0, false), 5'000u);
  EXPECT_EQ(c.widens(), 0u);
  EXPECT_EQ(c.narrows(), 0u);
}

// ---------------------------------------------------------------------------
// Warm-path and profile-counter tests.
// ---------------------------------------------------------------------------

TEST(EventLoopProfile, WarmSlabsPreventsDemandGrowth) {
  EventLoop warm;
  warm.WarmSlabs(1000);
  for (int i = 0; i < 1000; ++i) {
    warm.ScheduleAt(1'000 + i, [] {});
  }
  // Warming is not demand growth: slab_allocs names only allocations forced
  // by a full pool, and the pool never filled.
  EXPECT_EQ(warm.wheel_profile().slab_allocs, 0u);

  EventLoop cold;
  for (int i = 0; i < 1000; ++i) {
    cold.ScheduleAt(1'000 + i, [] {});
  }
  // 256 events per slab: 1000 live events demand-grow 4 slabs.
  EXPECT_EQ(cold.wheel_profile().slab_allocs, 4u);
}

TEST(EventLoopProfile, CountsCascadesAndOverflowPulls) {
  EventLoop loop;
  // An event several wheel levels up — and beyond the express lane span, so
  // it cannot be absorbed by the lane — must cascade down before executing.
  loop.ScheduleAt(100'000'000, [] {});
  loop.RunUntilIdle();
  EXPECT_GE(loop.wheel_profile().cascades, 1u);

  EventLoop far;
  // Beyond the 64^8-ns wheel span: parked in the overflow heap, pulled into
  // the wheel when the clock approaches.
  far.ScheduleAt((Time{1} << 48) + 5, [] {});
  far.RunUntilIdle();
  EXPECT_EQ(far.wheel_profile().overflow_pulls, 1u);
  EXPECT_EQ(far.events_executed(), 1u);
}

TEST(EventLoopProfile, LaneAbsorbsNearHorizonEvents) {
  EventLoop loop;
  loop.ScheduleAt(500, [] {});                            // lane hit
  loop.ScheduleAt(EventLoop::kLaneSpanNs - 1, [] {});     // last eligible ns
  loop.ScheduleAt(EventLoop::kLaneSpanNs + 10, [] {});    // past window: spill
  EXPECT_EQ(loop.wheel_profile().lane_hits, 2u);
  EXPECT_EQ(loop.wheel_profile().lane_spills, 1u);
  // Lane events are not behind-heap inserts and need no cascades.
  EXPECT_EQ(loop.wheel_profile().behind_inserts, 0u);
  loop.RunUntilIdle();
  EXPECT_EQ(loop.events_executed(), 3u);
}

TEST(EventLoopProfile, FarPeriodicHintSkipsLaneProbe) {
  EventLoop loop;
  // kFarPeriodic promises the event is out of lane range: no probe, and no
  // spill counted (a spill names a *probed* miss, not a skipped probe).
  loop.ScheduleAtHint(Time{1} << 30, DeadlineClass::kFarPeriodic, [] {});
  EXPECT_EQ(loop.wheel_profile().lane_spills, 0u);
  EXPECT_EQ(loop.wheel_profile().lane_hits, 0u);

  // A broken promise falls back to wheel placement — correct order, just
  // without the lane fast path.
  std::vector<int> order;
  loop.ScheduleAtHint(10, DeadlineClass::kFarPeriodic, [&] { order.push_back(1); });
  loop.ScheduleAtHint(20, DeadlineClass::kNearHorizon, [&] { order.push_back(2); });
  loop.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.wheel_profile().lane_hits, 1u);
  EXPECT_EQ(loop.wheel_profile().lane_spills, 0u);
}

TEST(EventLoopProfile, BulkCascadeSplicesWholeBucketIntoLane) {
  EventLoop loop;
  int fired = 0;
  // Wheel resident from t=0: beyond the lane span, cascaded to level 0 on the
  // first peek while now() is still far away.
  loop.ScheduleAt(2'000'000, [&fired] { ++fired; });
  loop.ScheduleAt(1'000, [&loop, &fired] {
    ++fired;
    // Scheduled mid-run ~2.1ms ahead: lands in the wheel. The wheel is not
    // re-scanned until the 2'000'000 event executes; by then the whole bucket
    // fits inside the lane window, so the drain is a single splice.
    loop.ScheduleAt(2'100'000, [&fired] { ++fired; });
  });
  loop.RunUntilIdle();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(loop.events_executed(), 3u);
  EXPECT_GE(loop.wheel_profile().bulk_cascades, 1u);
}

// The clamp invariant end to end: with adaptive epochs on, the effective
// window may widen under dense traffic but never past the minimum registered
// cross-shard latency, and posts below that bound die loudly.
TEST(ShardedDeterminism, AdaptiveWindowClampedToRegisteredLatency) {
  ShardedEventLoop::Options opts;
  opts.nshards = 2;
  opts.epoch_ns = 5'000;
  opts.threads = 1;
  opts.adaptive_epochs = true;
  opts.controller_period = 2;
  ShardedEventLoop engine(opts);
  engine.RegisterCrossLatency(20'000);
  // Dense tickers on both shards: ~50 events per shard per 5us epoch, far
  // above the widen threshold.
  std::vector<std::function<void()>> ticks(2);
  for (int s = 0; s < 2; ++s) {
    EventLoop& shard = engine.shard(s);
    std::function<void()>& self = ticks[static_cast<size_t>(s)];
    self = [&shard, &self] {
      if (shard.now() < 400'000) {
        shard.ScheduleAt(shard.now() + 100, [&self] { self(); });
      }
    };
    shard.ScheduleAt(100, [&self] { self(); });
  }
  engine.RunUntilIdle();
  EXPECT_GT(engine.profile().widens, 0u);
  EXPECT_EQ(engine.window_ns(), 20'000u)
      << "widened to, and no further than, the registered latency";
}

TEST(ShardedDeterminism, AdaptiveRejectsPostBelowRegisteredLatency) {
  ShardedEventLoop::Options opts;
  opts.nshards = 2;
  opts.epoch_ns = 5'000;
  opts.threads = 1;
  opts.adaptive_epochs = true;
  ShardedEventLoop engine(opts);
  engine.RegisterCrossLatency(20'000);
  // The window may widen up to 20us, so a 10us cross latency — legal in
  // static mode — would break lookahead here and must be rejected.
  EXPECT_DEATH(engine.PostCross(0, 1, 10'000, [] {}), "lookahead");
}

}  // namespace
}  // namespace enoki
