// The locality-aware Enoki scheduler (section 4.2.3).
//
// Applications send hints through the user-to-kernel queue pairing a thread
// id with a locality class; the scheduler co-locates all threads of a class
// on one core. Unlike cgroup/cpuset pinning, the hint names only the
// *grouping* — the scheduler chooses (and may override) the core, e.g. when
// a core is oversubscribed. With hints disabled the scheduler degrades to
// seeded-random placement, the paper's "Random" baseline in Table 6.
//
// Hint layout: w[0] = pid, w[1] = locality class id.

#ifndef SRC_SCHED_LOCALITY_H_
#define SRC_SCHED_LOCALITY_H_

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/enoki/api.h"
#include "src/enoki/lock.h"

namespace enoki {

class LocalitySched : public EnokiSched {
 public:
  // Refuse to co-locate more than this many runnable tasks on one core; the
  // scheduler may ignore hints when a core is oversubscribed.
  static constexpr size_t kMaxColocated = 16;

  LocalitySched(int policy_id, bool use_hints, uint64_t seed = 42)
      : policy_id_(policy_id), use_hints_(use_hints), rng_(seed) {}

  void Attach(EnokiKernelEnv* env) override {
    EnokiSched::Attach(env);
    if (queues_.empty()) {
      queues_.resize(static_cast<size_t>(env->NumCpus()));
    }
  }

  int GetPolicy() const override { return policy_id_; }

  void ParseHint(const HintBlob& hint) override {
    if (!use_hints_) {
      return;
    }
    SpinLockGuard g(lock_);
    const uint64_t pid = hint.w[0];
    const uint64_t group = hint.w[1];
    group_of_[pid] = group;
    if (group_cpu_.find(group) == group_cpu_.end()) {
      // Assign groups to cores round-robin.
      group_cpu_[group] = next_group_cpu_;
      next_group_cpu_ = (next_group_cpu_ + 1) % env_->NumCpus();
    }
  }

  int SelectTaskRq(const TaskMessage& msg) override {
    SpinLockGuard g(lock_);
    auto git = group_of_.find(msg.pid);
    if (git != group_of_.end()) {
      const int cpu = group_cpu_[git->second];
      if (queues_[cpu].size() < kMaxColocated) {
        return cpu;
      }
      // Oversubscribed: the hint is advisory; fall through.
    }
    // Unhinted tasks get a random *initial* placement (the Table 6 "Random"
    // baseline) and then stay on their CPU across wakeups.
    if (msg.is_new || msg.prev_cpu < 0) {
      return static_cast<int>(rng_.NextBelow(static_cast<uint64_t>(env_->NumCpus())));
    }
    return msg.prev_cpu;
  }

  void TaskNew(const TaskMessage& msg, Schedulable sched) override { Enqueue(msg.pid, std::move(sched)); }
  void TaskWakeup(const TaskMessage& msg, Schedulable sched) override {
    Enqueue(msg.pid, std::move(sched));
  }
  void TaskPreempt(const TaskMessage& msg, Schedulable sched) override {
    Enqueue(msg.pid, std::move(sched));
  }
  void TaskYield(const TaskMessage& msg, Schedulable sched) override {
    Enqueue(msg.pid, std::move(sched));
  }

  void TaskBlocked(const TaskMessage& msg) override { Remove(msg.pid); }
  void TaskDead(uint64_t pid) override {
    {
      SpinLockGuard g(lock_);
      group_of_.erase(pid);
    }
    Remove(pid);
  }

  std::optional<Schedulable> TaskDeparted(const TaskMessage& msg) override {
    SpinLockGuard g(lock_);
    RemoveLocked(msg.pid);
    auto it = tokens_.find(msg.pid);
    if (it == tokens_.end()) {
      return std::nullopt;
    }
    Schedulable s = std::move(it->second);
    tokens_.erase(it);
    return s;
  }

  std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) override {
    SpinLockGuard g(lock_);
    auto& q = queues_[cpu];
    if (q.empty()) {
      return std::nullopt;
    }
    const uint64_t pid = q.front();
    q.pop_front();
    auto it = tokens_.find(pid);
    if (it == tokens_.end()) {
      return std::nullopt;
    }
    Schedulable s = std::move(it->second);
    tokens_.erase(it);
    return s;
  }

  Schedulable MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) override {
    SpinLockGuard g(lock_);
    RemoveLocked(msg.pid);
    queues_[msg.to_cpu].push_back(msg.pid);
    auto it = tokens_.find(msg.pid);
    ENOKI_CHECK(it != tokens_.end());
    Schedulable old = std::move(it->second);
    it->second = std::move(sched);
    return old;
  }

  void TaskTick(int cpu, uint64_t pid, Duration runtime) override {
    SpinLockGuard g(lock_);
    if (!queues_[cpu].empty()) {
      env_->ReschedCpu(cpu);  // round-robin among co-located tasks
    }
  }

  // ---- Checkpointing (recovery ladder) ----
  // v1: the placement accounting only — group->core assignments, pid->group
  // memberships, and the round-robin cursor. Queue membership and tokens
  // stay with the runtime; the rng is reseeded fresh (random placement is a
  // baseline, not accounting). unordered_map contents are serialized in
  // sorted key order so identical state always yields identical bytes — the
  // checkpoint itself is part of the determinism contract.
  bool SaveCheckpoint(ByteWriter* out) const override {
    SpinLockGuard g(lock_);
    out->U64(static_cast<uint64_t>(next_group_cpu_));
    std::vector<std::pair<uint64_t, uint64_t>> groups(group_cpu_.begin(), group_cpu_.end());
    std::sort(groups.begin(), groups.end());
    out->U64(groups.size());
    for (const auto& [group, cpu] : groups) {
      out->U64(group);
      out->U64(static_cast<uint64_t>(cpu));
    }
    std::vector<std::pair<uint64_t, uint64_t>> pids(group_of_.begin(), group_of_.end());
    std::sort(pids.begin(), pids.end());
    out->U64(pids.size());
    for (const auto& [pid, group] : pids) {
      out->U64(pid);
      out->U64(group);
    }
    return true;
  }

  uint32_t CheckpointVersion() const override { return 1; }

  bool LoadCheckpoint(uint32_t version, ByteReader* in) override {
    if (version != 1) {
      return false;
    }
    SpinLockGuard g(lock_);
    group_of_.clear();
    group_cpu_.clear();
    tokens_.clear();
    if (queues_.empty() && env_ != nullptr) {
      queues_.resize(static_cast<size_t>(env_->NumCpus()));
    }
    for (auto& q : queues_) {
      q.clear();
    }
    if (queues_.empty()) {
      return false;  // no machine shape to restore onto
    }
    const uint64_t live = queues_.size();
    uint64_t cursor = 0;
    if (!in->U64(&cursor)) {
      return false;
    }
    // Cross-machine renormalization: cores remap by % live rather than being
    // dropped, so a group keeps *a* stable home on the smaller machine.
    next_group_cpu_ = static_cast<int>(cursor % live);
    uint64_t ngroups = 0;
    if (!in->U64(&ngroups) || ngroups > (1u << 24)) {
      return false;
    }
    for (uint64_t i = 0; i < ngroups; ++i) {
      uint64_t group = 0, cpu = 0;
      if (!in->U64(&group) || !in->U64(&cpu)) {
        return false;
      }
      group_cpu_[group] = static_cast<int>(cpu % live);
    }
    uint64_t npids = 0;
    if (!in->U64(&npids) || npids > (1u << 24)) {
      return false;
    }
    for (uint64_t i = 0; i < npids; ++i) {
      uint64_t pid = 0, group = 0;
      if (!in->U64(&pid) || !in->U64(&group)) {
        return false;
      }
      // Pids are dense and assigned from 1; reject absurd payloads even when
      // the checksum happened to pass.
      if (pid == 0 || pid > (1u << 24)) {
        return false;
      }
      group_of_[pid] = group;
    }
    return !in->overrun();
  }

 private:
  void Enqueue(uint64_t pid, Schedulable sched) {
    SpinLockGuard g(lock_);
    queues_[sched.cpu()].push_back(pid);
    tokens_.insert_or_assign(pid, std::move(sched));
  }

  void Remove(uint64_t pid) {
    SpinLockGuard g(lock_);
    RemoveLocked(pid);
    tokens_.erase(pid);
  }

  void RemoveLocked(uint64_t pid) {
    for (auto& q : queues_) {
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (*it == pid) {
          q.erase(it);
          return;
        }
      }
    }
  }

  const int policy_id_;
  const bool use_hints_;
  Rng rng_;
  // mutable: SaveCheckpoint is const but must still serialize readers.
  mutable SpinLock lock_;
  std::vector<std::deque<uint64_t>> queues_;
  std::unordered_map<uint64_t, Schedulable> tokens_;
  std::unordered_map<uint64_t, uint64_t> group_of_;   // pid -> group
  std::unordered_map<uint64_t, int> group_cpu_;       // group -> core
  int next_group_cpu_ = 0;
};

}  // namespace enoki

#endif  // SRC_SCHED_LOCALITY_H_
