// Native CFS baseline: a faithful (though necessarily reduced) model of
// Linux's Completely Fair Scheduler, implemented directly against the
// simulator's SchedClass interface with no Enoki framework overhead.
//
// Modeled behaviours (section 4.2.1 of the paper):
//  - per-core run queues ordered by vruntime with nice-weight scaling,
//  - sleeper-fairness vruntime clamping on wakeup,
//  - wakeup preemption (check_preempt_wakeup with wakeup granularity),
//  - time slices of period/nr, floored at the minimum granularity,
//  - wake placement preferring the previous CPU, then an idle CPU in the
//    same NUMA node, then the least-loaded CPU,
//  - newidle balancing plus periodic balancing, pulling within the node
//    first and across nodes only beyond an imbalance threshold.

#ifndef SRC_SCHED_CFS_H_
#define SRC_SCHED_CFS_H_

#include <vector>

#include "src/base/flat_multimap.h"
#include "src/sched/nice_weights.h"
#include "src/simkernel/sched_class.h"
#include "src/simkernel/sched_core.h"

namespace enoki {

class CfsClass : public SchedClass {
 public:
  static constexpr Duration kSchedLatencyNs = 6'000'000;
  static constexpr Duration kMinGranularityNs = 750'000;
  static constexpr Duration kWakeupGranularityNs = 1'000'000;
  // Periodic balance interval in ticks.
  static constexpr uint64_t kBalanceTicks = 2;
  // Minimum queue-length difference before pulling across NUMA nodes.
  static constexpr size_t kNumaImbalanceThreshold = 2;

  const char* name() const override { return "cfs"; }
  void Attach(SchedCore* core) override;

  int SelectTaskRq(Task* t, int prev_cpu, bool wake_sync, bool is_new) override;
  void EnqueueTask(int cpu, Task* t, bool wakeup) override;
  void DequeueTask(int cpu, Task* t, DequeueReason reason) override;
  Task* PickNextTask(int cpu) override;
  void TaskPreempted(int cpu, Task* t) override;
  void TaskYielded(int cpu, Task* t) override;
  void TaskTick(int cpu, Task* t) override;
  bool WakeupPreempt(int cpu, Task* curr, Task* woken) override;
  void PrioChanged(Task* t) override;
  void AffinityChanged(Task* t) override;

  size_t QueueDepth(int cpu) const { return rqs_[cpu].tree.size(); }
  uint64_t migrations() const { return migrations_; }

 private:
  struct Entity {
    uint64_t vruntime = 0;
    uint64_t weight = kNice0Weight;
    Duration last_runtime = 0;
    Duration slice_start_runtime = 0;
    int cpu = 0;
    bool queued = false;
    bool running = false;
  };

  struct CfsRq {
    FlatMultimap<uint64_t, Task*> tree;  // vruntime -> task
    uint64_t min_vruntime = 0;
    Task* running = nullptr;
    uint64_t tick_count = 0;
  };

  // Pids are dense (assigned from 1), so per-task state lives in a vector
  // indexed by pid rather than a hash map.
  Entity& Ent(Task* t) {
    const size_t pid = static_cast<size_t>(t->pid());
    if (pid >= entities_.size()) {
      entities_.resize(pid + 1);
    }
    return entities_[pid];
  }
  void Account(Task* t, Entity& e);
  void Enqueue(int cpu, Task* t, Entity& e);
  void Dequeue(Task* t, Entity& e);
  // Load = queued + running tasks on cpu.
  size_t Load(int cpu) const;
  // Pulls one task from the busiest eligible rq onto `cpu`. Returns true on
  // success.
  bool PullOne(int cpu, bool newidle);

  std::vector<CfsRq> rqs_;
  std::vector<Entity> entities_;  // indexed by pid
  uint64_t migrations_ = 0;
};

}  // namespace enoki

#endif  // SRC_SCHED_CFS_H_
