// The Linux nice-to-weight table (kernel/sched/core.c sched_prio_to_weight):
// each nice step changes CPU share by ~1.25x; nice 0 = 1024.

#ifndef SRC_SCHED_NICE_WEIGHTS_H_
#define SRC_SCHED_NICE_WEIGHTS_H_

#include <cstdint>

#include "src/base/check.h"
#include "src/base/niceness.h"

namespace enoki {

constexpr uint64_t kNiceWeights[40] = {
    // -20 .. -11
    88761, 71755, 56483, 46273, 36291, 29154, 23254, 18705, 14949, 11916,
    // -10 .. -1
    9548, 7620, 6100, 4904, 3906, 3121, 2501, 1991, 1586, 1277,
    // 0 .. 9
    1024, 820, 655, 526, 423, 335, 272, 215, 172, 137,
    // 10 .. 19
    110, 87, 70, 56, 45, 36, 29, 23, 18, 15,
};

constexpr uint64_t kNice0Weight = 1024;

inline uint64_t NiceToWeight(int nice) {
  ENOKI_CHECK(nice >= kMinNice && nice <= kMaxNice);
  return kNiceWeights[nice - kMinNice];
}

// Converts a runtime delta into vruntime units for the given weight.
inline uint64_t CalcDeltaVruntime(uint64_t delta_ns, uint64_t weight) {
  return delta_ns * kNice0Weight / weight;
}

}  // namespace enoki

#endif  // SRC_SCHED_NICE_WEIGHTS_H_
