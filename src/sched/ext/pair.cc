#include "src/sched/ext/pair.h"

namespace enoki {

void PairSched::ParseHint(const HintBlob& hint) {
  SpinLockGuard g(lock_);
  const uint64_t pid = hint.w[0];
  if (pid == 0 || pid > (1u << 24)) {
    return;
  }
  if (pid >= cookie_of_.size()) {
    cookie_of_.resize(pid + 1, 0);
  }
  cookie_of_[pid] = hint.w[1];
}

void PairSched::ClearRunningLocked(uint64_t pid, Ent& e) {
  e.running = false;
  const int cpu = e.cpu;
  if (cpu < 0 || cpu >= static_cast<int>(running_pid_.size()) ||
      running_pid_[cpu] != pid) {
    return;
  }
  running_pid_[cpu] = 0;
  // Our cookie constraint is gone; a sibling that stalled against it can
  // make progress now.
  const int sib = SiblingLocked(cpu);
  if (sib >= 0 && running_pid_[sib] == 0 && !queues_[sib].empty()) {
    ++sibling_kicks_;
    env_->ReschedCpu(sib);
  }
}

int PairSched::SelectTaskRq(const TaskMessage& msg) {
  SpinLockGuard g(lock_);
  const uint64_t cookie = CookieOfLocked(msg.pid);
  // Prefer a CPU whose sibling is idle or already running our cookie; among
  // those, the shortest queue. A conflicted CPU is still usable (the pick
  // constraint sorts it out), just last choice.
  int best = 0;
  bool best_conflict = true;
  size_t best_len = ~size_t{0};
  for (int cpu = 0; cpu < static_cast<int>(queues_.size()); ++cpu) {
    const int sib = SiblingLocked(cpu);
    const bool conflict =
        sib >= 0 && running_pid_[sib] != 0 && running_cookie_[sib] != cookie;
    const size_t len = queues_[cpu].size() + (running_pid_[cpu] != 0 ? 1 : 0);
    if ((!conflict && best_conflict) ||
        (conflict == best_conflict && len < best_len)) {
      best = cpu;
      best_conflict = conflict;
      best_len = len;
    }
  }
  return best;
}

void PairSched::TaskNew(const TaskMessage& msg, Schedulable sched) {
  SpinLockGuard g(lock_);
  const int cpu = sched.cpu();
  Ent& e = EntSlot(msg.pid);
  e = Ent{};
  e.live = true;
  e.last_runtime = msg.runtime;
  e.seq = next_seq_++;
  e.cpu = cpu;
  e.queued = true;
  queues_[cpu].emplace(e.seq, msg.pid);
  TokSlot(msg.pid) = std::move(sched);
}

void PairSched::TaskWakeup(const TaskMessage& msg, Schedulable sched) {
  RequeueRunnable(msg, std::move(sched));
}

void PairSched::TaskPreempt(const TaskMessage& msg, Schedulable sched) {
  RequeueRunnable(msg, std::move(sched));
}

void PairSched::TaskYield(const TaskMessage& msg, Schedulable sched) {
  RequeueRunnable(msg, std::move(sched));
}

void PairSched::RequeueRunnable(const TaskMessage& msg, Schedulable sched) {
  SpinLockGuard g(lock_);
  Ent* found = FindEnt(msg.pid);
  if (found == nullptr) {
    Ent& slot = EntSlot(msg.pid);
    slot = Ent{};
    slot.live = true;
    slot.last_runtime = msg.runtime;
    found = &slot;
  }
  Ent& e = *found;
  if (msg.runtime > e.last_runtime) {
    e.last_runtime = msg.runtime;
  }
  ClearRunningLocked(msg.pid, e);
  if (e.queued) {
    queues_[e.cpu].erase_one(e.seq, msg.pid);
  }
  const int cpu = sched.cpu();
  e.seq = next_seq_++;
  e.cpu = cpu;
  e.queued = true;
  queues_[cpu].emplace(e.seq, msg.pid);
  TokSlot(msg.pid) = std::move(sched);
}

void PairSched::TaskBlocked(const TaskMessage& msg) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(msg.pid);
  if (e == nullptr) {
    return;
  }
  if (msg.runtime > e->last_runtime) {
    e->last_runtime = msg.runtime;
  }
  if (e->queued) {
    queues_[e->cpu].erase_one(e->seq, msg.pid);
    e->queued = false;
  }
  ClearRunningLocked(msg.pid, *e);
  if (msg.pid < tokens_.size()) {
    tokens_[msg.pid].reset();
  }
}

void PairSched::TaskDead(uint64_t pid) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(pid);
  if (e != nullptr) {
    if (e->queued) {
      queues_[e->cpu].erase_one(e->seq, pid);
    }
    ClearRunningLocked(pid, *e);
    *e = Ent{};
  }
  if (pid < tokens_.size()) {
    tokens_[pid].reset();
  }
}

std::optional<Schedulable> PairSched::TaskDeparted(const TaskMessage& msg) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(msg.pid);
  if (e != nullptr) {
    if (e->queued) {
      queues_[e->cpu].erase_one(e->seq, msg.pid);
    }
    ClearRunningLocked(msg.pid, *e);
    *e = Ent{};
  }
  if (msg.pid >= tokens_.size() || !tokens_[msg.pid].has_value()) {
    return std::nullopt;
  }
  Schedulable s = std::move(*tokens_[msg.pid]);
  tokens_[msg.pid].reset();
  return s;
}

std::optional<Schedulable> PairSched::PickNextTask(int cpu,
                                                   std::optional<Schedulable> curr) {
  SpinLockGuard g(lock_);
  auto& q = queues_[cpu];
  if (q.empty()) {
    return std::nullopt;
  }
  const int sib = SiblingLocked(cpu);
  const bool constrained = sib >= 0 && running_pid_[sib] != 0;
  const uint64_t need = constrained ? running_cookie_[sib] : 0;
  size_t idx = q.size();
  for (size_t i = 0; i < q.size(); ++i) {
    if (!constrained || CookieOfLocked(q[i].second) == need) {
      idx = i;
      break;
    }
  }
  if (idx == q.size()) {
    // Nothing compatible with the sibling's cookie: stall idle rather than
    // co-run across the security boundary.
    ++compat_stalls_;
    return std::nullopt;
  }
  const uint64_t pid = q[idx].second;
  q.erase_at(idx);
  Ent* e = FindEnt(pid);
  ENOKI_CHECK(e != nullptr);
  e->queued = false;
  e->running = true;
  e->slice_start_runtime = e->last_runtime;
  running_pid_[cpu] = pid;
  running_cookie_[cpu] = CookieOfLocked(pid);
  if (pid >= tokens_.size() || !tokens_[pid].has_value()) {
    return std::nullopt;
  }
  Schedulable s = std::move(*tokens_[pid]);
  tokens_[pid].reset();
  return s;
}

std::optional<uint64_t> PairSched::Balance(int cpu) {
  SpinLockGuard g(lock_);
  if (!queues_[cpu].empty()) {
    return std::nullopt;
  }
  const int sib = SiblingLocked(cpu);
  const bool constrained = sib >= 0 && running_pid_[sib] != 0;
  const uint64_t need = constrained ? running_cookie_[sib] : 0;
  // Steal the oldest waiting task we could legally run right now.
  uint64_t best_seq = ~0ull;
  std::optional<uint64_t> best;
  for (int c = 0; c < static_cast<int>(queues_.size()); ++c) {
    if (c == cpu) {
      continue;
    }
    const auto& q = queues_[c];
    for (size_t i = 0; i < q.size(); ++i) {
      if (q[i].first >= best_seq) {
        break;  // sorted by seq: nothing older further in
      }
      if (!constrained || CookieOfLocked(q[i].second) == need) {
        best_seq = q[i].first;
        best = q[i].second;
        break;
      }
    }
  }
  return best;
}

Schedulable PairSched::MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) {
  SpinLockGuard g(lock_);
  Ent* found = FindEnt(msg.pid);
  ENOKI_CHECK(found != nullptr);
  Ent& e = *found;
  if (msg.runtime > e.last_runtime) {
    e.last_runtime = msg.runtime;
  }
  if (e.queued) {
    queues_[e.cpu].erase_one(e.seq, msg.pid);
  }
  e.cpu = msg.to_cpu;
  e.queued = true;
  queues_[msg.to_cpu].emplace(e.seq, msg.pid);
  ENOKI_CHECK(msg.pid < tokens_.size() && tokens_[msg.pid].has_value());
  Schedulable old = std::move(*tokens_[msg.pid]);
  tokens_[msg.pid] = std::move(sched);
  return old;
}

void PairSched::TaskTick(int cpu, uint64_t pid, Duration runtime) {
  SpinLockGuard g(lock_);
  Ent* found = FindEnt(pid);
  if (found == nullptr) {
    return;
  }
  Ent& e = *found;
  if (runtime > e.last_runtime) {
    e.last_runtime = runtime;
  }
  const Duration ran = e.last_runtime - e.slice_start_runtime;
  if (ran < slice_) {
    return;
  }
  // Round-robin on slice expiry. Also yield when the sibling is stalled
  // against our cookie with work waiting: briefly vacating the core lets a
  // different cookie win the pair and the stalled side drain.
  const int sib = SiblingLocked(cpu);
  const bool sib_starved =
      sib >= 0 && running_pid_[sib] == 0 && !queues_[sib].empty();
  if (!queues_[cpu].empty() || sib_starved) {
    env_->ReschedCpu(cpu);
  }
}

TransferState PairSched::ReregisterPrepare() {
  SpinLockGuard g(lock_);
  auto t = std::make_unique<Transfer>();
  t->ents = std::move(ents_);
  t->tokens = std::move(tokens_);
  t->queues = std::move(queues_);
  t->running_pid = std::move(running_pid_);
  t->running_cookie = std::move(running_cookie_);
  t->cookie_of = std::move(cookie_of_);
  t->next_seq = next_seq_;
  ents_.clear();
  tokens_.clear();
  queues_.clear();
  running_pid_.clear();
  running_cookie_.clear();
  cookie_of_.clear();
  next_seq_ = 1;
  return TransferState::Of(std::move(t));
}

void PairSched::ReregisterInit(TransferState state) {
  if (state.empty()) {
    return;
  }
  auto t = state.Take<Transfer>();
  if (t == nullptr) {
    return;
  }
  SpinLockGuard g(lock_);
  ents_ = std::move(t->ents);
  tokens_ = std::move(t->tokens);
  queues_ = std::move(t->queues);
  running_pid_ = std::move(t->running_pid);
  running_cookie_ = std::move(t->running_cookie);
  cookie_of_ = std::move(t->cookie_of);
  next_seq_ = t->next_seq;
}

bool PairSched::SaveCheckpoint(ByteWriter* out) const {
  SpinLockGuard g(lock_);
  out->U64(next_seq_);
  uint64_t ncookies = 0;
  for (uint64_t c : cookie_of_) {
    if (c != 0) {
      ++ncookies;
    }
  }
  out->U64(ncookies);
  for (uint64_t pid = 0; pid < cookie_of_.size(); ++pid) {
    if (cookie_of_[pid] != 0) {
      out->U64(pid);
      out->U64(cookie_of_[pid]);
    }
  }
  return true;
}

bool PairSched::LoadCheckpoint(uint32_t version, ByteReader* in) {
  if (version != 1) {
    return false;
  }
  SpinLockGuard g(lock_);
  ents_.clear();
  tokens_.clear();
  cookie_of_.clear();
  if (queues_.empty() && env_ != nullptr) {
    queues_.resize(static_cast<size_t>(env_->NumCpus()));
  }
  for (auto& q : queues_) {
    q.clear();
  }
  running_pid_.assign(queues_.size(), 0);
  running_cookie_.assign(queues_.size(), 0);
  uint64_t seq = 0;
  uint64_t ncookies = 0;
  if (!in->U64(&seq) || seq == 0 || !in->U64(&ncookies) || ncookies > (1u << 24)) {
    return false;
  }
  for (uint64_t i = 0; i < ncookies; ++i) {
    uint64_t pid = 0;
    uint64_t cookie = 0;
    if (!in->U64(&pid) || !in->U64(&cookie)) {
      cookie_of_.clear();
      return false;
    }
    // Same sanity bounds as WFQ: pids are dense, assigned from 1.
    if (pid == 0 || pid > (1u << 24)) {
      cookie_of_.clear();
      return false;
    }
    if (pid >= cookie_of_.size()) {
      cookie_of_.resize(pid + 1, 0);
    }
    cookie_of_[pid] = cookie;
  }
  next_seq_ = seq;
  return !in->overrun();
}

uint64_t PairSched::CookieOf(uint64_t pid) {
  SpinLockGuard g(lock_);
  return CookieOfLocked(pid);
}

uint64_t PairSched::compat_stalls() {
  SpinLockGuard g(lock_);
  return compat_stalls_;
}

uint64_t PairSched::sibling_kicks() {
  SpinLockGuard g(lock_);
  return sibling_kicks_;
}

size_t PairSched::QueueDepth(int cpu) {
  SpinLockGuard g(lock_);
  return queues_[cpu].size();
}

}  // namespace enoki
