// Layered CPU-allocation scheduler, modeled on sched_ext's scx_layered.
//
// Tasks are matched into layers by nice value (the simulator's stand-in for
// scx_layered's cgroup/comm matchers). Each layer declares a number of
// guaranteed CPUs — carved out contiguously in layer order and owned by that
// layer — a weight, and whether it is "open" (may overflow onto CPUs it does
// not own). CPUs left over after carving are shared by everyone.
//
// Pick order on a CPU: the owner layer's tasks run first (that is the
// guarantee); otherwise the queued layers arbitrate by weighted virtual
// time, CFS-style — each pick advances the winning layer's vtime by
// quantum * kNice0Weight / weight, so a layer's long-run share of the shared
// CPUs is proportional to its weight.

#ifndef SRC_SCHED_EXT_LAYERED_H_
#define SRC_SCHED_EXT_LAYERED_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/flat_multimap.h"
#include "src/base/time.h"
#include "src/enoki/api.h"
#include "src/enoki/lock.h"
#include "src/sched/nice_weights.h"

namespace enoki {

struct LayerSpec {
  std::string name;
  uint64_t weight = 100;    // weighted arbitration on non-owned CPUs
  int guaranteed_cpus = 0;  // CPUs owned exclusively-first by this layer
  bool open = true;         // may run on CPUs owned by other layers
  int nice_min = -20;       // matching rule: first layer containing the
  int nice_max = 19;        // task's nice value wins; last layer is fallback
};

class LayeredSched : public EnokiSched {
 public:
  struct Ent {
    int layer = 0;
    uint64_t seq = 0;
    Duration last_runtime = 0;
    Duration slice_start_runtime = 0;
    int cpu = 0;
    bool queued = false;
    bool running = false;
    bool live = false;
  };

  struct Transfer {
    std::vector<Ent> ents;
    std::vector<std::optional<Schedulable>> tokens;
    std::vector<FlatMultimap<uint64_t, uint64_t>> queues;  // seq -> pid
    std::vector<uint64_t> layer_vtime;
    uint64_t next_seq = 1;
  };

  static constexpr Duration kDefaultSliceNs = Milliseconds(1) + 500'000;  // 1.5 ms
  static constexpr uint64_t kVtimeQuantum = 1'000'000;

  // A three-tier default: a closed latency layer with guaranteed CPUs, an
  // open normal layer, and a low-weight open batch layer.
  static std::vector<LayerSpec> DefaultThreeTier(int ncpus);

  LayeredSched(int policy_id, std::vector<LayerSpec> layers);

  void Attach(EnokiKernelEnv* env) override;

  int GetPolicy() const override { return policy_id_; }

  int SelectTaskRq(const TaskMessage& msg) override;

  void TaskNew(const TaskMessage& msg, Schedulable sched) override;
  void TaskWakeup(const TaskMessage& msg, Schedulable sched) override;
  void TaskPreempt(const TaskMessage& msg, Schedulable sched) override;
  void TaskYield(const TaskMessage& msg, Schedulable sched) override;
  void TaskBlocked(const TaskMessage& msg) override;
  void TaskDead(uint64_t pid) override;
  std::optional<Schedulable> TaskDeparted(const TaskMessage& msg) override;
  void TaskPrioChanged(uint64_t pid, int nice) override;

  std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) override;
  std::optional<uint64_t> Balance(int cpu) override;
  Schedulable MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) override;
  void TaskTick(int cpu, uint64_t pid, Duration runtime) override;

  TransferState ReregisterPrepare() override;
  void ReregisterInit(TransferState state) override;

  // Checkpoint format v1: per-layer virtual times plus the arrival sequence
  // cursor. Layer membership is re-derived from each task's nice value when
  // the runtime re-injects it, so it is not serialized. A checkpoint from a
  // differently-configured instance (layer count mismatch) is rejected.
  bool SaveCheckpoint(ByteWriter* out) const override;
  uint32_t CheckpointVersion() const override { return 1; }
  bool LoadCheckpoint(uint32_t version, ByteReader* in) override;

  // Introspection for tests.
  int LayerOf(uint64_t pid);
  uint64_t VtimeOf(int layer);
  uint64_t PicksIn(int layer);
  int OwnerOfCpu(int cpu);
  size_t QueueDepth(int cpu);
  int nlayers() const { return static_cast<int>(layers_.size()); }

 private:
  void RequeueRunnable(const TaskMessage& msg, Schedulable sched);
  int MatchLayerLocked(int nice) const;
  // May layer's tasks run on cpu? Owner layer yes, shared CPUs yes, open
  // layers everywhere.
  bool AllowedLocked(int layer, int cpu) const {
    const int owner = owner_of_cpu_[cpu];
    return owner == layer || owner == -1 || layers_[layer].open;
  }

  Ent* FindEnt(uint64_t pid) {
    if (pid >= ents_.size() || !ents_[pid].live) {
      return nullptr;
    }
    return &ents_[pid];
  }
  Ent& EntSlot(uint64_t pid) {
    if (pid >= ents_.size()) {
      ents_.resize(pid + 1);
    }
    return ents_[pid];
  }
  std::optional<Schedulable>& TokSlot(uint64_t pid) {
    if (pid >= tokens_.size()) {
      tokens_.resize(pid + 1);
    }
    return tokens_[pid];
  }

  const int policy_id_;
  const std::vector<LayerSpec> layers_;
  mutable SpinLock lock_;
  std::vector<Ent> ents_;                           // indexed by pid
  std::vector<std::optional<Schedulable>> tokens_;  // indexed by pid
  std::vector<FlatMultimap<uint64_t, uint64_t>> queues_;
  std::vector<int> owner_of_cpu_;  // layer index, -1 = shared
  std::vector<uint64_t> layer_vtime_;
  std::vector<uint64_t> layer_picks_;
  uint64_t next_seq_ = 1;
};

}  // namespace enoki

#endif  // SRC_SCHED_EXT_LAYERED_H_
