// Sibling-core pair scheduler, modeled on sched_ext's scx_pair.
//
// CPUs come in SMT sibling pairs (MachineSpec::smt_pairs). Tasks carry a
// cookie (assigned through the hint queue; default 0), and the scheduler
// enforces the L1TF-style security invariant: two tasks with different
// cookies never run concurrently on the two hyperthreads of one core. A CPU
// whose sibling is running cookie C picks only queued tasks with cookie C —
// if none are queued it stalls idle (counted in compat_stalls) rather than
// break the invariant. When a CPU's task leaves, the scheduler kicks a
// stalled sibling so it can re-pick under the relaxed constraint.
//
// Queues are per-CPU FIFOs on a global arrival sequence; balance steals the
// oldest *compatible* waiting task. On machines without SMT every CPU's
// sibling is -1 and the policy degrades to plain FIFO with idle stealing.

#ifndef SRC_SCHED_EXT_PAIR_H_
#define SRC_SCHED_EXT_PAIR_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/base/flat_multimap.h"
#include "src/base/time.h"
#include "src/enoki/api.h"
#include "src/enoki/lock.h"

namespace enoki {

class PairSched : public EnokiSched {
 public:
  struct Ent {
    uint64_t seq = 0;
    Duration last_runtime = 0;
    Duration slice_start_runtime = 0;
    int cpu = 0;
    bool queued = false;
    bool running = false;
    bool live = false;
  };

  struct Transfer {
    std::vector<Ent> ents;
    std::vector<std::optional<Schedulable>> tokens;
    std::vector<FlatMultimap<uint64_t, uint64_t>> queues;  // seq -> pid
    std::vector<uint64_t> running_pid;
    std::vector<uint64_t> running_cookie;
    std::vector<uint64_t> cookie_of;
    uint64_t next_seq = 1;
  };

  static constexpr Duration kDefaultSliceNs = Milliseconds(2);

  explicit PairSched(int policy_id, Duration slice = kDefaultSliceNs)
      : policy_id_(policy_id), slice_(slice) {}

  void Attach(EnokiKernelEnv* env) override {
    EnokiSched::Attach(env);
    if (queues_.empty()) {
      queues_.resize(static_cast<size_t>(env->NumCpus()));
      running_pid_.assign(static_cast<size_t>(env->NumCpus()), 0);
      running_cookie_.assign(static_cast<size_t>(env->NumCpus()), 0);
    }
  }

  int GetPolicy() const override { return policy_id_; }

  // Hint protocol: w[0] = pid, w[1] = cookie. Cookies are sticky until
  // overwritten; unhinted tasks share cookie 0.
  void ParseHint(const HintBlob& hint) override;

  int SelectTaskRq(const TaskMessage& msg) override;

  void TaskNew(const TaskMessage& msg, Schedulable sched) override;
  void TaskWakeup(const TaskMessage& msg, Schedulable sched) override;
  void TaskPreempt(const TaskMessage& msg, Schedulable sched) override;
  void TaskYield(const TaskMessage& msg, Schedulable sched) override;
  void TaskBlocked(const TaskMessage& msg) override;
  void TaskDead(uint64_t pid) override;
  std::optional<Schedulable> TaskDeparted(const TaskMessage& msg) override;

  std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) override;
  std::optional<uint64_t> Balance(int cpu) override;
  Schedulable MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) override;
  void TaskTick(int cpu, uint64_t pid, Duration runtime) override;

  TransferState ReregisterPrepare() override;
  void ReregisterInit(TransferState state) override;

  // Checkpoint format v1: the arrival sequence cursor plus the cookie
  // assignment table. Cookies arrive through hints and cannot be re-derived
  // from task messages, so they are genuine accounting state: losing them on
  // restart would silently drop the security constraint.
  bool SaveCheckpoint(ByteWriter* out) const override;
  uint32_t CheckpointVersion() const override { return 1; }
  bool LoadCheckpoint(uint32_t version, ByteReader* in) override;

  // Introspection for tests.
  uint64_t CookieOf(uint64_t pid);
  uint64_t compat_stalls();
  uint64_t sibling_kicks();
  size_t QueueDepth(int cpu);

 private:
  void RequeueRunnable(const TaskMessage& msg, Schedulable sched);
  uint64_t CookieOfLocked(uint64_t pid) const {
    return pid < cookie_of_.size() ? cookie_of_[pid] : 0;
  }
  int SiblingLocked(int cpu) const {
    const int sib = env_ != nullptr ? env_->SiblingOf(cpu) : -1;
    return sib >= 0 && sib < static_cast<int>(queues_.size()) ? sib : -1;
  }
  // Drops the running marker for pid, and kicks a sibling that stalled on
  // our cookie so it can re-pick. Caller holds lock_.
  void ClearRunningLocked(uint64_t pid, Ent& e);

  Ent* FindEnt(uint64_t pid) {
    if (pid >= ents_.size() || !ents_[pid].live) {
      return nullptr;
    }
    return &ents_[pid];
  }
  Ent& EntSlot(uint64_t pid) {
    if (pid >= ents_.size()) {
      ents_.resize(pid + 1);
    }
    return ents_[pid];
  }
  std::optional<Schedulable>& TokSlot(uint64_t pid) {
    if (pid >= tokens_.size()) {
      tokens_.resize(pid + 1);
    }
    return tokens_[pid];
  }

  const int policy_id_;
  const Duration slice_;
  mutable SpinLock lock_;
  std::vector<Ent> ents_;                           // indexed by pid
  std::vector<std::optional<Schedulable>> tokens_;  // indexed by pid
  std::vector<FlatMultimap<uint64_t, uint64_t>> queues_;
  std::vector<uint64_t> running_pid_;     // 0 = idle
  std::vector<uint64_t> running_cookie_;  // valid while running_pid_ != 0
  std::vector<uint64_t> cookie_of_;       // indexed by pid; 0 default
  uint64_t next_seq_ = 1;
  uint64_t compat_stalls_ = 0;
  uint64_t sibling_kicks_ = 0;
};

}  // namespace enoki

#endif  // SRC_SCHED_EXT_PAIR_H_
