#include "src/sched/ext/layered.h"

#include <algorithm>

namespace enoki {

std::vector<LayerSpec> LayeredSched::DefaultThreeTier(int ncpus) {
  const int quarter = std::max(1, ncpus / 4);
  return {
      {"latency", /*weight=*/400, /*guaranteed_cpus=*/quarter, /*open=*/false,
       /*nice_min=*/-20, /*nice_max=*/-5},
      {"normal", /*weight=*/100, /*guaranteed_cpus=*/quarter, /*open=*/true,
       /*nice_min=*/-4, /*nice_max=*/4},
      {"batch", /*weight=*/25, /*guaranteed_cpus=*/0, /*open=*/true,
       /*nice_min=*/5, /*nice_max=*/19},
  };
}

LayeredSched::LayeredSched(int policy_id, std::vector<LayerSpec> layers)
    : policy_id_(policy_id), layers_(std::move(layers)) {
  ENOKI_CHECK(!layers_.empty() && layers_.size() <= 64);
  for (const LayerSpec& l : layers_) {
    ENOKI_CHECK(l.weight > 0);
  }
  layer_vtime_.assign(layers_.size(), 0);
  layer_picks_.assign(layers_.size(), 0);
}

void LayeredSched::Attach(EnokiKernelEnv* env) {
  EnokiSched::Attach(env);
  const int ncpus = env->NumCpus();
  if (owner_of_cpu_.empty()) {
    // Carve guaranteed CPUs contiguously in layer order; the rest are
    // shared. Over-subscription just truncates the later layers' carve.
    owner_of_cpu_.assign(static_cast<size_t>(ncpus), -1);
    int next = 0;
    for (size_t li = 0; li < layers_.size(); ++li) {
      for (int k = 0; k < layers_[li].guaranteed_cpus && next < ncpus; ++k) {
        owner_of_cpu_[next++] = static_cast<int>(li);
      }
    }
  }
  if (queues_.empty()) {
    queues_.resize(static_cast<size_t>(ncpus));
  }
}

int LayeredSched::MatchLayerLocked(int nice) const {
  for (size_t li = 0; li < layers_.size(); ++li) {
    if (nice >= layers_[li].nice_min && nice <= layers_[li].nice_max) {
      return static_cast<int>(li);
    }
  }
  return static_cast<int>(layers_.size()) - 1;
}

int LayeredSched::SelectTaskRq(const TaskMessage& msg) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(msg.pid);
  const int layer = e != nullptr ? e->layer : MatchLayerLocked(msg.nice);
  // Least-loaded allowed CPU; ties prefer owned over shared over foreign.
  int best = -1;
  size_t best_len = ~size_t{0};
  int best_tier = 3;
  for (int cpu = 0; cpu < static_cast<int>(queues_.size()); ++cpu) {
    if (!AllowedLocked(layer, cpu)) {
      continue;
    }
    const int owner = owner_of_cpu_[cpu];
    const int tier = owner == layer ? 0 : owner == -1 ? 1 : 2;
    size_t len = queues_[cpu].size();
    for (const Ent& o : ents_) {
      if (o.live && o.running && o.cpu == cpu) {
        ++len;
        break;
      }
    }
    if (len < best_len || (len == best_len && tier < best_tier)) {
      best = cpu;
      best_len = len;
      best_tier = tier;
    }
  }
  if (best >= 0) {
    return best;
  }
  // A closed layer with no owned or shared CPUs (degenerate config): fall
  // back to the globally shortest queue rather than strand the task.
  int fallback = 0;
  size_t fallback_len = ~size_t{0};
  for (int cpu = 0; cpu < static_cast<int>(queues_.size()); ++cpu) {
    if (queues_[cpu].size() < fallback_len) {
      fallback = cpu;
      fallback_len = queues_[cpu].size();
    }
  }
  return fallback;
}

void LayeredSched::TaskNew(const TaskMessage& msg, Schedulable sched) {
  SpinLockGuard g(lock_);
  const int cpu = sched.cpu();
  Ent& e = EntSlot(msg.pid);
  e = Ent{};
  e.live = true;
  e.layer = MatchLayerLocked(msg.nice);
  e.last_runtime = msg.runtime;
  e.seq = next_seq_++;
  e.cpu = cpu;
  e.queued = true;
  queues_[cpu].emplace(e.seq, msg.pid);
  TokSlot(msg.pid) = std::move(sched);
}

void LayeredSched::TaskWakeup(const TaskMessage& msg, Schedulable sched) {
  RequeueRunnable(msg, std::move(sched));
}

void LayeredSched::TaskPreempt(const TaskMessage& msg, Schedulable sched) {
  RequeueRunnable(msg, std::move(sched));
}

void LayeredSched::TaskYield(const TaskMessage& msg, Schedulable sched) {
  RequeueRunnable(msg, std::move(sched));
}

void LayeredSched::RequeueRunnable(const TaskMessage& msg, Schedulable sched) {
  SpinLockGuard g(lock_);
  Ent* found = FindEnt(msg.pid);
  if (found == nullptr) {
    Ent& slot = EntSlot(msg.pid);
    slot = Ent{};
    slot.live = true;
    slot.layer = MatchLayerLocked(msg.nice);
    slot.last_runtime = msg.runtime;
    found = &slot;
  }
  Ent& e = *found;
  if (msg.runtime > e.last_runtime) {
    e.last_runtime = msg.runtime;
  }
  e.running = false;
  if (e.queued) {
    queues_[e.cpu].erase_one(e.seq, msg.pid);
  }
  const int cpu = sched.cpu();
  e.seq = next_seq_++;
  e.cpu = cpu;
  e.queued = true;
  queues_[cpu].emplace(e.seq, msg.pid);
  TokSlot(msg.pid) = std::move(sched);
}

void LayeredSched::TaskBlocked(const TaskMessage& msg) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(msg.pid);
  if (e == nullptr) {
    return;
  }
  if (msg.runtime > e->last_runtime) {
    e->last_runtime = msg.runtime;
  }
  if (e->queued) {
    queues_[e->cpu].erase_one(e->seq, msg.pid);
    e->queued = false;
  }
  e->running = false;
  if (msg.pid < tokens_.size()) {
    tokens_[msg.pid].reset();
  }
}

void LayeredSched::TaskDead(uint64_t pid) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(pid);
  if (e != nullptr) {
    if (e->queued) {
      queues_[e->cpu].erase_one(e->seq, pid);
    }
    *e = Ent{};
  }
  if (pid < tokens_.size()) {
    tokens_[pid].reset();
  }
}

std::optional<Schedulable> LayeredSched::TaskDeparted(const TaskMessage& msg) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(msg.pid);
  if (e != nullptr) {
    if (e->queued) {
      queues_[e->cpu].erase_one(e->seq, msg.pid);
    }
    *e = Ent{};
  }
  if (msg.pid >= tokens_.size() || !tokens_[msg.pid].has_value()) {
    return std::nullopt;
  }
  Schedulable s = std::move(*tokens_[msg.pid]);
  tokens_[msg.pid].reset();
  return s;
}

void LayeredSched::TaskPrioChanged(uint64_t pid, int nice) {
  SpinLockGuard g(lock_);
  if (Ent* e = FindEnt(pid)) {
    e->layer = MatchLayerLocked(nice);
  }
}

std::optional<Schedulable> LayeredSched::PickNextTask(int cpu,
                                                       std::optional<Schedulable> curr) {
  SpinLockGuard g(lock_);
  auto& q = queues_[cpu];
  if (q.empty()) {
    return std::nullopt;
  }
  const int owner = owner_of_cpu_[cpu];
  size_t idx = q.size();
  if (owner >= 0) {
    // The guarantee: the owner layer's oldest task runs first.
    for (size_t i = 0; i < q.size(); ++i) {
      if (ents_[q[i].second].layer == owner) {
        idx = i;
        break;
      }
    }
  }
  if (idx == q.size()) {
    // Weighted arbitration: of the layers with queued work here, the one
    // with the lowest virtual time wins; within a layer, FIFO by seq.
    int best_layer = -1;
    size_t best_i = 0;
    uint64_t seen = 0;  // bitmask of layers already considered (oldest wins)
    for (size_t i = 0; i < q.size(); ++i) {
      const int L = ents_[q[i].second].layer;
      if (seen & (1ull << L)) {
        continue;
      }
      seen |= 1ull << L;
      if (!AllowedLocked(L, cpu)) {
        continue;
      }
      if (best_layer < 0 || layer_vtime_[L] < layer_vtime_[best_layer]) {
        best_layer = L;
        best_i = i;
      }
    }
    // Only disallowed entries queued here (runtime-forced placements):
    // run the oldest anyway rather than strand it.
    idx = best_layer >= 0 ? best_i : 0;
  }
  const uint64_t pid = q[idx].second;
  q.erase_at(idx);
  Ent* e = FindEnt(pid);
  ENOKI_CHECK(e != nullptr);
  e->queued = false;
  e->running = true;
  e->slice_start_runtime = e->last_runtime;
  layer_vtime_[e->layer] += kVtimeQuantum * kNice0Weight / layers_[e->layer].weight;
  ++layer_picks_[e->layer];
  if (pid >= tokens_.size() || !tokens_[pid].has_value()) {
    return std::nullopt;
  }
  Schedulable s = std::move(*tokens_[pid]);
  tokens_[pid].reset();
  return s;
}

std::optional<uint64_t> LayeredSched::Balance(int cpu) {
  SpinLockGuard g(lock_);
  if (!queues_[cpu].empty()) {
    return std::nullopt;
  }
  const int owner = owner_of_cpu_[cpu];
  // First preference: reclaim the owner layer's oldest task from anywhere
  // (the guarantee extends across queues). Otherwise: the oldest waiting
  // task allowed to run here.
  for (int pass = 0; pass < 2; ++pass) {
    uint64_t best_seq = ~0ull;
    std::optional<uint64_t> best;
    for (int c = 0; c < static_cast<int>(queues_.size()); ++c) {
      if (c == cpu) {
        continue;
      }
      const auto& q = queues_[c];
      for (size_t i = 0; i < q.size(); ++i) {
        if (q[i].first >= best_seq) {
          break;
        }
        const int L = ents_[q[i].second].layer;
        const bool want = pass == 0 ? (owner >= 0 && L == owner) : AllowedLocked(L, cpu);
        if (want) {
          best_seq = q[i].first;
          best = q[i].second;
          break;
        }
      }
    }
    if (best.has_value()) {
      return best;
    }
    if (owner < 0) {
      break;  // pass 0 is meaningless on shared CPUs
    }
  }
  return std::nullopt;
}

Schedulable LayeredSched::MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) {
  SpinLockGuard g(lock_);
  Ent* found = FindEnt(msg.pid);
  ENOKI_CHECK(found != nullptr);
  Ent& e = *found;
  if (msg.runtime > e.last_runtime) {
    e.last_runtime = msg.runtime;
  }
  if (e.queued) {
    queues_[e.cpu].erase_one(e.seq, msg.pid);
  }
  e.cpu = msg.to_cpu;
  e.queued = true;
  queues_[msg.to_cpu].emplace(e.seq, msg.pid);
  ENOKI_CHECK(msg.pid < tokens_.size() && tokens_[msg.pid].has_value());
  Schedulable old = std::move(*tokens_[msg.pid]);
  tokens_[msg.pid] = std::move(sched);
  return old;
}

void LayeredSched::TaskTick(int cpu, uint64_t pid, Duration runtime) {
  SpinLockGuard g(lock_);
  Ent* found = FindEnt(pid);
  if (found == nullptr) {
    return;
  }
  Ent& e = *found;
  if (runtime > e.last_runtime) {
    e.last_runtime = runtime;
  }
  const auto& q = queues_[cpu];
  if (q.empty()) {
    return;
  }
  const int owner = owner_of_cpu_[cpu];
  if (owner >= 0 && e.layer != owner) {
    // An owner-layer task is waiting behind a guest: evict immediately.
    for (size_t i = 0; i < q.size(); ++i) {
      if (ents_[q[i].second].layer == owner) {
        env_->ReschedCpu(cpu);
        return;
      }
    }
  }
  if (e.last_runtime - e.slice_start_runtime >= kDefaultSliceNs) {
    env_->ReschedCpu(cpu);
  }
}

TransferState LayeredSched::ReregisterPrepare() {
  SpinLockGuard g(lock_);
  auto t = std::make_unique<Transfer>();
  t->ents = std::move(ents_);
  t->tokens = std::move(tokens_);
  t->queues = std::move(queues_);
  t->layer_vtime = std::move(layer_vtime_);
  t->next_seq = next_seq_;
  ents_.clear();
  tokens_.clear();
  queues_.clear();
  layer_vtime_.assign(layers_.size(), 0);
  next_seq_ = 1;
  return TransferState::Of(std::move(t));
}

void LayeredSched::ReregisterInit(TransferState state) {
  if (state.empty()) {
    return;
  }
  auto t = state.Take<Transfer>();
  if (t == nullptr) {
    return;
  }
  SpinLockGuard g(lock_);
  ents_ = std::move(t->ents);
  tokens_ = std::move(t->tokens);
  queues_ = std::move(t->queues);
  if (t->layer_vtime.size() == layers_.size()) {
    layer_vtime_ = std::move(t->layer_vtime);
  }
  next_seq_ = t->next_seq;
}

bool LayeredSched::SaveCheckpoint(ByteWriter* out) const {
  SpinLockGuard g(lock_);
  out->U64(layer_vtime_.size());
  for (uint64_t v : layer_vtime_) {
    out->U64(v);
  }
  out->U64(next_seq_);
  return true;
}

bool LayeredSched::LoadCheckpoint(uint32_t version, ByteReader* in) {
  if (version != 1) {
    return false;
  }
  SpinLockGuard g(lock_);
  ents_.clear();
  tokens_.clear();
  if (queues_.empty() && env_ != nullptr) {
    queues_.resize(static_cast<size_t>(env_->NumCpus()));
  }
  for (auto& q : queues_) {
    q.clear();
  }
  uint64_t nlayers = 0;
  if (!in->U64(&nlayers) || nlayers != layers_.size()) {
    // Layer config is constructor state; a checkpoint from a differently
    // configured instance is not meaningfully restorable.
    return false;
  }
  std::vector<uint64_t> vtimes(layers_.size(), 0);
  for (uint64_t i = 0; i < nlayers; ++i) {
    if (!in->U64(&vtimes[i])) {
      return false;
    }
  }
  uint64_t seq = 0;
  if (!in->U64(&seq) || seq == 0) {
    return false;
  }
  layer_vtime_ = std::move(vtimes);
  next_seq_ = seq;
  return !in->overrun();
}

int LayeredSched::LayerOf(uint64_t pid) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(pid);
  return e == nullptr ? -1 : e->layer;
}

uint64_t LayeredSched::VtimeOf(int layer) {
  SpinLockGuard g(lock_);
  return layer_vtime_[layer];
}

uint64_t LayeredSched::PicksIn(int layer) {
  SpinLockGuard g(lock_);
  return layer_picks_[layer];
}

int LayeredSched::OwnerOfCpu(int cpu) {
  SpinLockGuard g(lock_);
  return owner_of_cpu_[cpu];
}

size_t LayeredSched::QueueDepth(int cpu) {
  SpinLockGuard g(lock_);
  return queues_[cpu].size();
}

}  // namespace enoki
