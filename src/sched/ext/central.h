// Central-dispatch scheduler, modeled on sched_ext's scx_central.
//
// One CPU (the dispatch CPU) owns all scheduling decisions: it runs a
// periodic dispatch pulse that kicks workers with waiting tasks and preempts
// workers that overran their slice. Every other CPU is tickless — TaskTick
// never requests a resched, so a worker with no waiting competition runs
// undisturbed until it blocks. When nothing is queued anywhere the pulse is
// not re-armed, so an idle machine is timer-silent. The natural comparison
// is the ghOSt SOL (single-agent) model, which also centralizes decisions
// but polls from an agent task instead of a timer (see bench_table5_apps).
//
// Queues are per-CPU FIFOs ordered by a global arrival sequence, which makes
// the policy a distributed approximation of scx_central's single global
// queue: balance always pulls the globally-oldest waiting task.

#ifndef SRC_SCHED_EXT_CENTRAL_H_
#define SRC_SCHED_EXT_CENTRAL_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/base/flat_multimap.h"
#include "src/base/time.h"
#include "src/enoki/api.h"
#include "src/enoki/lock.h"

namespace enoki {

class CentralSched : public EnokiSched {
 public:
  struct Ent {
    uint64_t seq = 0;            // global arrival order
    Duration last_runtime = 0;
    Time pick_time = 0;          // wall-clock at last pick (slice policing)
    int cpu = 0;
    bool queued = false;
    bool running = false;
    bool live = false;
  };

  struct Transfer {
    std::vector<Ent> ents;
    std::vector<std::optional<Schedulable>> tokens;
    std::vector<FlatMultimap<uint64_t, uint64_t>> queues;  // seq -> pid
    std::vector<uint64_t> running_pid;
    uint64_t next_seq = 1;
  };

  static constexpr Duration kDefaultPulseNs = Microseconds(50);
  static constexpr Duration kDefaultSliceNs = Milliseconds(1);

  explicit CentralSched(int policy_id, int central_cpu = 0,
                        Duration pulse = kDefaultPulseNs,
                        Duration slice = kDefaultSliceNs)
      : policy_id_(policy_id), central_cpu_(central_cpu), pulse_(pulse), slice_(slice) {}

  void Attach(EnokiKernelEnv* env) override {
    EnokiSched::Attach(env);
    if (queues_.empty()) {
      queues_.resize(static_cast<size_t>(env->NumCpus()));
      running_pid_.assign(static_cast<size_t>(env->NumCpus()), 0);
    }
  }

  int GetPolicy() const override { return policy_id_; }

  int SelectTaskRq(const TaskMessage& msg) override;

  void TaskNew(const TaskMessage& msg, Schedulable sched) override;
  void TaskWakeup(const TaskMessage& msg, Schedulable sched) override;
  void TaskPreempt(const TaskMessage& msg, Schedulable sched) override;
  void TaskYield(const TaskMessage& msg, Schedulable sched) override;
  void TaskBlocked(const TaskMessage& msg) override;
  void TaskDead(uint64_t pid) override;
  std::optional<Schedulable> TaskDeparted(const TaskMessage& msg) override;

  std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) override;
  std::optional<uint64_t> Balance(int cpu) override;
  Schedulable MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) override;
  void TaskTick(int cpu, uint64_t pid, Duration runtime) override;
  void TimerFired(int cpu) override;

  TransferState ReregisterPrepare() override;
  void ReregisterInit(TransferState state) override;

  // Checkpoint format v1: the global arrival sequence cursor. Queue
  // membership and tokens are kernel-side state, re-injected after restore.
  bool SaveCheckpoint(ByteWriter* out) const override;
  uint32_t CheckpointVersion() const override { return 1; }
  bool LoadCheckpoint(uint32_t version, ByteReader* in) override;

  // Per-policy probation budget: central dispatch routes every decision
  // through the dispatch CPU, so a restored module naturally bounces a few
  // picks while the pulse timer re-arms — a tight pick budget would flap.
  // Window length and call count stay at the ladder defaults.
  ProbationConfig DefaultProbation() const override {
    ProbationConfig p;
    p.max_pick_errors = 8;
    return p;
  }

  // Introspection for tests.
  int central_cpu() const { return central_cpu_; }
  uint64_t dispatch_pulses();
  uint64_t preempt_kicks();
  uint64_t central_picks();
  size_t QueueDepth(int cpu);

 private:
  void RequeueRunnable(const TaskMessage& msg, Schedulable sched);
  void ArmPulseLocked();
  bool AnyQueuedLocked() const;
  // Drops the running marker for pid if it holds one. Caller holds lock_.
  void ClearRunningLocked(uint64_t pid, Ent& e);
  // True when tasks are allowed to run on `cpu` (everything but the central
  // CPU, unless the machine has only one CPU).
  bool WorkerCpuLocked(int cpu) const {
    return cpu != central_cpu_ || queues_.size() == 1;
  }

  Ent* FindEnt(uint64_t pid) {
    if (pid >= ents_.size() || !ents_[pid].live) {
      return nullptr;
    }
    return &ents_[pid];
  }
  Ent& EntSlot(uint64_t pid) {
    if (pid >= ents_.size()) {
      ents_.resize(pid + 1);
    }
    return ents_[pid];
  }
  std::optional<Schedulable>& TokSlot(uint64_t pid) {
    if (pid >= tokens_.size()) {
      tokens_.resize(pid + 1);
    }
    return tokens_[pid];
  }

  const int policy_id_;
  const int central_cpu_;
  const Duration pulse_;
  const Duration slice_;
  mutable SpinLock lock_;
  std::vector<Ent> ents_;                           // indexed by pid
  std::vector<std::optional<Schedulable>> tokens_;  // indexed by pid
  std::vector<FlatMultimap<uint64_t, uint64_t>> queues_;
  std::vector<uint64_t> running_pid_;               // 0 = idle
  uint64_t next_seq_ = 1;
  bool timer_armed_ = false;
  uint64_t dispatch_pulses_ = 0;
  uint64_t preempt_kicks_ = 0;
  uint64_t central_picks_ = 0;
};

}  // namespace enoki

#endif  // SRC_SCHED_EXT_CENTRAL_H_
