// NUMA-domain load-balancing scheduler, modeled on sched_ext's scx_rusty.
//
// CPUs are grouped into load-balancing domains, one per NUMA node
// (EnokiKernelEnv::NodeOf). Each domain tracks its runnable weight as a
// half-life decayed running average (ravg.h, like scx_rusty's load tracking)
// rather than an instantaneous count, so placement decisions see sustained
// load, not momentary spikes. Placement is domain-sticky: new tasks go to
// the least-loaded domain, waking tasks stay in theirs. Idle CPUs steal
// within their own domain freely; a cross-domain ("greedy") steal is allowed
// only when the busiest domain's decayed load exceeds the idle CPU's
// domain's by a configurable ratio — the NUMA penalty guard.
//
// An offered steal the kernel rejects (affinity, kick races) puts the task
// on a short steal-ban via BalanceErr, so a pinned task cannot generate a
// storm of failed offers.

#ifndef SRC_SCHED_EXT_RUSTY_H_
#define SRC_SCHED_EXT_RUSTY_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/base/flat_multimap.h"
#include "src/base/time.h"
#include "src/enoki/api.h"
#include "src/enoki/lock.h"
#include "src/sched/ext/ravg.h"
#include "src/sched/nice_weights.h"

namespace enoki {

class RustySched : public EnokiSched {
 public:
  struct Ent {
    int domain = 0;
    uint64_t weight = kNice0Weight;
    uint64_t seq = 0;
    Duration last_runtime = 0;
    Duration slice_start_runtime = 0;
    Time steal_ban_until = 0;
    int cpu = 0;
    bool loaded = false;  // currently counted in its domain's weight sum
    bool queued = false;
    bool running = false;
    bool live = false;
  };

  struct Transfer {
    std::vector<Ent> ents;
    std::vector<std::optional<Schedulable>> tokens;
    std::vector<FlatMultimap<uint64_t, uint64_t>> queues;  // seq -> pid
    std::vector<RunningAvg> ravgs;
    std::vector<uint64_t> dom_weight;
    uint64_t next_seq = 1;
  };

  static constexpr Duration kDefaultSliceNs = Milliseconds(2);
  static constexpr Duration kDefaultHalfLifeNs = Milliseconds(5);
  static constexpr Duration kStealBanNs = Milliseconds(5);

  // greedy_ratio_pct: a cross-domain steal needs the busiest domain's load
  // to be at least this percentage of ours (200 = 2x). Very large values
  // disable greedy stealing entirely.
  explicit RustySched(int policy_id, uint64_t greedy_ratio_pct = 200,
                      Duration half_life = kDefaultHalfLifeNs)
      : policy_id_(policy_id), greedy_ratio_pct_(greedy_ratio_pct), half_life_(half_life) {}

  void Attach(EnokiKernelEnv* env) override;

  int GetPolicy() const override { return policy_id_; }

  int SelectTaskRq(const TaskMessage& msg) override;

  void TaskNew(const TaskMessage& msg, Schedulable sched) override;
  void TaskWakeup(const TaskMessage& msg, Schedulable sched) override;
  void TaskPreempt(const TaskMessage& msg, Schedulable sched) override;
  void TaskYield(const TaskMessage& msg, Schedulable sched) override;
  void TaskBlocked(const TaskMessage& msg) override;
  void TaskDead(uint64_t pid) override;
  std::optional<Schedulable> TaskDeparted(const TaskMessage& msg) override;
  void TaskPrioChanged(uint64_t pid, int nice) override;

  std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) override;
  std::optional<uint64_t> Balance(int cpu) override;
  void BalanceErr(int cpu, uint64_t pid, std::optional<Schedulable> sched) override;
  Schedulable MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) override;
  void TaskTick(int cpu, uint64_t pid, Duration runtime) override;

  TransferState ReregisterPrepare() override;
  void ReregisterInit(TransferState state) override;

  // Checkpoint format v1: the arrival sequence cursor plus each domain's
  // running-average state, so load history survives a restart instead of
  // every domain looking idle. Instantaneous weight sums are rebuilt as the
  // runtime re-injects tasks.
  bool SaveCheckpoint(ByteWriter* out) const override;
  uint32_t CheckpointVersion() const override { return 1; }
  bool LoadCheckpoint(uint32_t version, ByteReader* in) override;

  // Per-policy probation budget: rusty's greedy stealing probes queues on
  // other domains, so benign balance misses are routine right after a restore
  // (running averages decayed, steal bans reset). Loosen the balance budget;
  // window length and call count stay at the ladder defaults.
  ProbationConfig DefaultProbation() const override {
    ProbationConfig p;
    p.max_balance_errors = 64;
    return p;
  }

  // Introspection for tests.
  int DomainOf(uint64_t pid);
  uint64_t DomainLoad(int domain);  // decayed average as of now
  int ndomains();
  uint64_t cross_steals();
  uint64_t local_steals();
  size_t QueueDepth(int cpu);

 private:
  void RequeueRunnable(const TaskMessage& msg, Schedulable sched);
  // Builds domain structures from the environment's topology. Caller holds
  // lock_ (or is in Attach, before concurrency starts).
  void EnsureTopologyLocked();
  void AddLoadLocked(Ent& e);
  void SubLoadLocked(Ent& e);

  Ent* FindEnt(uint64_t pid) {
    if (pid >= ents_.size() || !ents_[pid].live) {
      return nullptr;
    }
    return &ents_[pid];
  }
  Ent& EntSlot(uint64_t pid) {
    if (pid >= ents_.size()) {
      ents_.resize(pid + 1);
    }
    return ents_[pid];
  }
  std::optional<Schedulable>& TokSlot(uint64_t pid) {
    if (pid >= tokens_.size()) {
      tokens_.resize(pid + 1);
    }
    return tokens_[pid];
  }

  const int policy_id_;
  const uint64_t greedy_ratio_pct_;
  const Duration half_life_;
  mutable SpinLock lock_;
  std::vector<Ent> ents_;                           // indexed by pid
  std::vector<std::optional<Schedulable>> tokens_;  // indexed by pid
  std::vector<FlatMultimap<uint64_t, uint64_t>> queues_;
  std::vector<int> dom_of_cpu_;
  std::vector<std::vector<int>> dom_cpus_;
  std::vector<RunningAvg> ravgs_;       // per-domain decayed runnable weight
  std::vector<uint64_t> dom_weight_;    // per-domain instantaneous sum
  uint64_t next_seq_ = 1;
  uint64_t cross_steals_ = 0;
  uint64_t local_steals_ = 0;
};

}  // namespace enoki

#endif  // SRC_SCHED_EXT_RUSTY_H_
