// Running-average load tracking, modeled on the sched_ext `ravg` utility
// that scx_rusty uses for its load-balancing domains.
//
// The tracked quantity is a piecewise-constant input (for rusty: the sum of
// runnable task weights in a domain). Time is divided into fixed half-life
// windows; when a window closes, the history's contribution halves and the
// closed window's time-weighted mean contributes the other half:
//
//   avg' = (avg + window_mean) / 2
//
// so input from k windows ago is worth 2^-k of current input. All arithmetic
// is integer, which keeps the average bit-identical across platforms for
// identical call sequences — a requirement for Enoki's deterministic replay
// and double-run fingerprint tests.

#ifndef SRC_SCHED_EXT_RAVG_H_
#define SRC_SCHED_EXT_RAVG_H_

#include <cstdint>

#include "src/base/time.h"
#include "src/enoki/checkpoint.h"

namespace enoki {

class RunningAvg {
 public:
  explicit RunningAvg(Duration half_life = Milliseconds(50)) : half_life_(half_life) {}

  // Changes the tracked input to `value` as of `now`. Calls must be
  // monotonic in `now` (simulated time always is).
  void Set(Time now, uint64_t value) {
    Advance(now);
    cur_ = value;
  }

  // The instantaneous input (last Set value).
  uint64_t current() const { return cur_; }

  // The decayed average as of `now`, in the input's units. Blends the closed
  // window history with the in-progress window pro rata, so the value moves
  // smoothly instead of stepping at window boundaries.
  uint64_t Read(Time now) {
    Advance(now);
    const Duration elapsed = now - window_start_;
    const uint64_t partial = win_sum_ + cur_ * static_cast<uint64_t>(now - last_);
    return (avg_ * static_cast<uint64_t>(half_life_ - elapsed) + partial) /
           static_cast<uint64_t>(half_life_);
  }

  // ---- Checkpoint support ----
  // The serialized form is the four words of internal state; the half-life
  // is configuration and travels with the module, not the checkpoint.
  void Save(ByteWriter* out) const {
    out->U64(static_cast<uint64_t>(window_start_));
    out->U64(static_cast<uint64_t>(last_));
    out->U64(avg_);
    out->U64(win_sum_);
    out->U64(cur_);
  }
  bool Load(ByteReader* in) {
    uint64_t ws = 0;
    uint64_t last = 0;
    in->U64(&ws);
    in->U64(&last);
    in->U64(&avg_);
    in->U64(&win_sum_);
    in->U64(&cur_);
    if (in->overrun() || last < ws) {
      return false;
    }
    window_start_ = ws;
    last_ = last;
    return true;
  }

 private:
  // Accrues cur_ over [last_, now), closing any windows crossed.
  void Advance(Time now) {
    // After 64 whole windows of constant input, all history has decayed to
    // zero; skip ahead in O(1) rather than looping per window.
    if (half_life_ > 0 && now > window_start_) {
      const uint64_t whole = (now - window_start_) / half_life_;
      if (whole > 64) {
        avg_ = cur_;
        window_start_ += whole * half_life_;
        last_ = window_start_;
        win_sum_ = 0;
      }
    }
    while (true) {
      const Time wend = window_start_ + half_life_;
      if (now < wend) {
        win_sum_ += cur_ * static_cast<uint64_t>(now - last_);
        last_ = now;
        return;
      }
      win_sum_ += cur_ * static_cast<uint64_t>(wend - last_);
      avg_ = (avg_ + win_sum_ / static_cast<uint64_t>(half_life_)) / 2;
      win_sum_ = 0;
      window_start_ = wend;
      last_ = wend;
    }
  }

  Duration half_life_;
  Time window_start_ = 0;
  Time last_ = 0;       // accrued up to here within the current window
  uint64_t avg_ = 0;    // decayed mean of closed windows
  uint64_t win_sum_ = 0;  // value*ns accrued in [window_start_, last_)
  uint64_t cur_ = 0;    // current input value
};

}  // namespace enoki

#endif  // SRC_SCHED_EXT_RAVG_H_
