#include "src/sched/ext/central.h"

namespace enoki {

void CentralSched::ArmPulseLocked() {
  if (!timer_armed_) {
    timer_armed_ = true;
    env_->ArmTimer(central_cpu_, pulse_);
  }
}

bool CentralSched::AnyQueuedLocked() const {
  for (const auto& q : queues_) {
    if (!q.empty()) {
      return true;
    }
  }
  return false;
}

void CentralSched::ClearRunningLocked(uint64_t pid, Ent& e) {
  if (e.cpu >= 0 && e.cpu < static_cast<int>(running_pid_.size()) &&
      running_pid_[e.cpu] == pid) {
    running_pid_[e.cpu] = 0;
  }
  e.running = false;
}

int CentralSched::SelectTaskRq(const TaskMessage& msg) {
  SpinLockGuard g(lock_);
  // The dispatcher decides globally: least-loaded worker, counting the
  // running task as load. The central CPU is never chosen.
  int best = central_cpu_ == 0 && queues_.size() > 1 ? 1 : 0;
  size_t best_len = ~size_t{0};
  for (int cpu = 0; cpu < static_cast<int>(queues_.size()); ++cpu) {
    if (!WorkerCpuLocked(cpu)) {
      continue;
    }
    const size_t len = queues_[cpu].size() + (running_pid_[cpu] != 0 ? 1 : 0);
    if (len < best_len) {
      best_len = len;
      best = cpu;
    }
  }
  return best;
}

void CentralSched::TaskNew(const TaskMessage& msg, Schedulable sched) {
  SpinLockGuard g(lock_);
  const int cpu = sched.cpu();
  Ent& e = EntSlot(msg.pid);
  e = Ent{};
  e.live = true;
  e.last_runtime = msg.runtime;
  e.seq = next_seq_++;
  e.cpu = cpu;
  e.queued = true;
  queues_[cpu].emplace(e.seq, msg.pid);
  TokSlot(msg.pid) = std::move(sched);
  ArmPulseLocked();
}

void CentralSched::TaskWakeup(const TaskMessage& msg, Schedulable sched) {
  RequeueRunnable(msg, std::move(sched));
}

void CentralSched::TaskPreempt(const TaskMessage& msg, Schedulable sched) {
  RequeueRunnable(msg, std::move(sched));
}

void CentralSched::TaskYield(const TaskMessage& msg, Schedulable sched) {
  RequeueRunnable(msg, std::move(sched));
}

void CentralSched::RequeueRunnable(const TaskMessage& msg, Schedulable sched) {
  SpinLockGuard g(lock_);
  Ent* found = FindEnt(msg.pid);
  if (found == nullptr) {
    // First sighting (e.g. after an upgrade with partial state): adopt it.
    Ent& slot = EntSlot(msg.pid);
    slot = Ent{};
    slot.live = true;
    slot.last_runtime = msg.runtime;
    found = &slot;
  }
  Ent& e = *found;
  if (msg.runtime > e.last_runtime) {
    e.last_runtime = msg.runtime;
  }
  ClearRunningLocked(msg.pid, e);
  if (e.queued) {
    queues_[e.cpu].erase_one(e.seq, msg.pid);
  }
  const int cpu = sched.cpu();
  e.seq = next_seq_++;  // FIFO: requeue at the global tail
  e.cpu = cpu;
  e.queued = true;
  queues_[cpu].emplace(e.seq, msg.pid);
  TokSlot(msg.pid) = std::move(sched);
  ArmPulseLocked();
}

void CentralSched::TaskBlocked(const TaskMessage& msg) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(msg.pid);
  if (e == nullptr) {
    return;
  }
  if (msg.runtime > e->last_runtime) {
    e->last_runtime = msg.runtime;
  }
  if (e->queued) {
    queues_[e->cpu].erase_one(e->seq, msg.pid);
    e->queued = false;
  }
  ClearRunningLocked(msg.pid, *e);
  if (msg.pid < tokens_.size()) {
    tokens_[msg.pid].reset();
  }
}

void CentralSched::TaskDead(uint64_t pid) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(pid);
  if (e != nullptr) {
    if (e->queued) {
      queues_[e->cpu].erase_one(e->seq, pid);
    }
    ClearRunningLocked(pid, *e);
    *e = Ent{};  // pids are never reused; drop the state
  }
  if (pid < tokens_.size()) {
    tokens_[pid].reset();
  }
}

std::optional<Schedulable> CentralSched::TaskDeparted(const TaskMessage& msg) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(msg.pid);
  if (e != nullptr) {
    if (e->queued) {
      queues_[e->cpu].erase_one(e->seq, msg.pid);
    }
    ClearRunningLocked(msg.pid, *e);
    *e = Ent{};
  }
  if (msg.pid >= tokens_.size() || !tokens_[msg.pid].has_value()) {
    return std::nullopt;
  }
  Schedulable s = std::move(*tokens_[msg.pid]);
  tokens_[msg.pid].reset();
  return s;
}

std::optional<Schedulable> CentralSched::PickNextTask(int cpu,
                                                      std::optional<Schedulable> curr) {
  SpinLockGuard g(lock_);
  auto& q = queues_[cpu];
  if (q.empty()) {
    return std::nullopt;
  }
  const uint64_t pid = q.front().second;
  q.pop_front();
  Ent* e = FindEnt(pid);
  ENOKI_CHECK(e != nullptr);
  e->queued = false;
  e->running = true;
  e->pick_time = env_->Now();
  running_pid_[cpu] = pid;
  if (cpu == central_cpu_ && queues_.size() > 1) {
    // Only runtime-forced placements (affinity fallbacks) land here; the
    // policy itself never selects the dispatch CPU.
    ++central_picks_;
  }
  if (pid >= tokens_.size() || !tokens_[pid].has_value()) {
    return std::nullopt;
  }
  Schedulable s = std::move(*tokens_[pid]);
  tokens_[pid].reset();
  return s;
}

std::optional<uint64_t> CentralSched::Balance(int cpu) {
  SpinLockGuard g(lock_);
  if (!WorkerCpuLocked(cpu) || !queues_[cpu].empty()) {
    return std::nullopt;
  }
  // Pull the globally-oldest waiting task (scx_central's single global
  // queue, approximated). Anything parked on the central CPU's queue is
  // drained with priority since nothing picks there.
  const auto& cq = queues_[central_cpu_];
  if (queues_.size() > 1 && !cq.empty()) {
    return cq.front().second;
  }
  uint64_t best_seq = ~0ull;
  std::optional<uint64_t> best;
  for (int c = 0; c < static_cast<int>(queues_.size()); ++c) {
    if (c == cpu || queues_[c].empty()) {
      continue;
    }
    if (queues_[c].front().first < best_seq) {
      best_seq = queues_[c].front().first;
      best = queues_[c].front().second;
    }
  }
  return best;
}

Schedulable CentralSched::MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) {
  SpinLockGuard g(lock_);
  Ent* found = FindEnt(msg.pid);
  ENOKI_CHECK(found != nullptr);
  Ent& e = *found;
  if (msg.runtime > e.last_runtime) {
    e.last_runtime = msg.runtime;
  }
  if (e.queued) {
    queues_[e.cpu].erase_one(e.seq, msg.pid);
  }
  // Keep the arrival sequence: migration must not reset the task's age.
  e.cpu = msg.to_cpu;
  e.queued = true;
  queues_[msg.to_cpu].emplace(e.seq, msg.pid);
  ENOKI_CHECK(msg.pid < tokens_.size() && tokens_[msg.pid].has_value());
  Schedulable old = std::move(*tokens_[msg.pid]);
  tokens_[msg.pid] = std::move(sched);
  return old;
}

void CentralSched::TaskTick(int cpu, uint64_t pid, Duration runtime) {
  // Workers are tickless under central: preemption decisions come only from
  // the dispatch pulse. The tick merely keeps accounting fresh and re-arms
  // the pulse if it was lost (e.g. across an upgrade).
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(pid);
  if (e != nullptr && runtime > e->last_runtime) {
    e->last_runtime = runtime;
  }
  if (AnyQueuedLocked()) {
    ArmPulseLocked();
  }
}

void CentralSched::TimerFired(int cpu) {
  SpinLockGuard g(lock_);
  if (cpu != central_cpu_) {
    return;
  }
  timer_armed_ = false;
  ++dispatch_pulses_;
  const Time now = env_->Now();
  for (int c = 0; c < static_cast<int>(queues_.size()); ++c) {
    if (!WorkerCpuLocked(c) || queues_[c].empty()) {
      continue;
    }
    const uint64_t running = running_pid_[c];
    if (running == 0) {
      // Work waiting on an idle worker (e.g. it stalled across an upgrade
      // boundary): kick it awake.
      env_->ReschedCpu(c);
      continue;
    }
    Ent* e = FindEnt(running);
    if (e != nullptr && now >= e->pick_time && now - e->pick_time >= slice_) {
      ++preempt_kicks_;
      env_->ReschedCpu(c);
    }
  }
  if (AnyQueuedLocked()) {
    ArmPulseLocked();
  }
}

TransferState CentralSched::ReregisterPrepare() {
  SpinLockGuard g(lock_);
  auto t = std::make_unique<Transfer>();
  t->ents = std::move(ents_);
  t->tokens = std::move(tokens_);
  t->queues = std::move(queues_);
  t->running_pid = std::move(running_pid_);
  t->next_seq = next_seq_;
  ents_.clear();
  tokens_.clear();
  queues_.clear();
  running_pid_.clear();
  next_seq_ = 1;
  timer_armed_ = false;
  return TransferState::Of(std::move(t));
}

void CentralSched::ReregisterInit(TransferState state) {
  if (state.empty()) {
    return;
  }
  auto t = state.Take<Transfer>();
  if (t == nullptr) {
    return;
  }
  SpinLockGuard g(lock_);
  ents_ = std::move(t->ents);
  tokens_ = std::move(t->tokens);
  queues_ = std::move(t->queues);
  running_pid_ = std::move(t->running_pid);
  next_seq_ = t->next_seq;
  // The outgoing instance's armed timer does not transfer; re-arm if work
  // is waiting so the pulse resumes.
  if (AnyQueuedLocked()) {
    ArmPulseLocked();
  }
}

bool CentralSched::SaveCheckpoint(ByteWriter* out) const {
  SpinLockGuard g(lock_);
  out->U64(next_seq_);
  return true;
}

bool CentralSched::LoadCheckpoint(uint32_t version, ByteReader* in) {
  if (version != 1) {
    return false;
  }
  SpinLockGuard g(lock_);
  ents_.clear();
  tokens_.clear();
  // A rollback target had its vectors moved out by ReregisterPrepare;
  // rebuild the per-CPU structures before restoring into them.
  if (queues_.empty() && env_ != nullptr) {
    queues_.resize(static_cast<size_t>(env_->NumCpus()));
  }
  for (auto& q : queues_) {
    q.clear();
  }
  running_pid_.assign(queues_.size(), 0);
  timer_armed_ = false;
  uint64_t seq = 0;
  if (!in->U64(&seq) || seq == 0) {
    return false;
  }
  next_seq_ = seq;
  return !in->overrun();
}

uint64_t CentralSched::dispatch_pulses() {
  SpinLockGuard g(lock_);
  return dispatch_pulses_;
}

uint64_t CentralSched::preempt_kicks() {
  SpinLockGuard g(lock_);
  return preempt_kicks_;
}

uint64_t CentralSched::central_picks() {
  SpinLockGuard g(lock_);
  return central_picks_;
}

size_t CentralSched::QueueDepth(int cpu) {
  SpinLockGuard g(lock_);
  return queues_[cpu].size();
}

}  // namespace enoki
