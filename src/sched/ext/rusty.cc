#include "src/sched/ext/rusty.h"

#include <algorithm>

namespace enoki {

void RustySched::Attach(EnokiKernelEnv* env) {
  EnokiSched::Attach(env);
  EnsureTopologyLocked();
}

void RustySched::EnsureTopologyLocked() {
  if (!queues_.empty() || env_ == nullptr) {
    return;
  }
  const int ncpus = env_->NumCpus();
  queues_.resize(static_cast<size_t>(ncpus));
  dom_of_cpu_.resize(static_cast<size_t>(ncpus));
  int ndoms = 0;
  for (int cpu = 0; cpu < ncpus; ++cpu) {
    dom_of_cpu_[cpu] = env_->NodeOf(cpu);
    ndoms = std::max(ndoms, dom_of_cpu_[cpu] + 1);
  }
  dom_cpus_.assign(static_cast<size_t>(ndoms), {});
  for (int cpu = 0; cpu < ncpus; ++cpu) {
    dom_cpus_[dom_of_cpu_[cpu]].push_back(cpu);
  }
  ravgs_.assign(static_cast<size_t>(ndoms), RunningAvg(half_life_));
  dom_weight_.assign(static_cast<size_t>(ndoms), 0);
}

void RustySched::AddLoadLocked(Ent& e) {
  if (e.loaded) {
    return;
  }
  e.loaded = true;
  dom_weight_[e.domain] += e.weight;
  ravgs_[e.domain].Set(env_->Now(), dom_weight_[e.domain]);
}

void RustySched::SubLoadLocked(Ent& e) {
  if (!e.loaded) {
    return;
  }
  e.loaded = false;
  dom_weight_[e.domain] -= std::min(dom_weight_[e.domain], e.weight);
  ravgs_[e.domain].Set(env_->Now(), dom_weight_[e.domain]);
}

int RustySched::SelectTaskRq(const TaskMessage& msg) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(msg.pid);
  int domain;
  if (e != nullptr) {
    // Domain-sticky: waking tasks stay where their cache footprint is.
    domain = e->domain;
  } else {
    // New (or first-sighted) tasks go to the domain with the least decayed
    // load; ties prefer the lower index.
    const Time now = env_->Now();
    domain = 0;
    uint64_t best_load = ~0ull;
    for (int d = 0; d < static_cast<int>(ravgs_.size()); ++d) {
      const uint64_t load = ravgs_[d].Read(now);
      if (load < best_load) {
        best_load = load;
        domain = d;
      }
    }
  }
  // Shortest queue within the domain, counting the running task as load.
  int best = dom_cpus_[domain].empty() ? 0 : dom_cpus_[domain].front();
  size_t best_len = ~size_t{0};
  for (int cpu : dom_cpus_[domain]) {
    size_t len = queues_[cpu].size();
    for (const Ent& o : ents_) {
      if (o.live && o.running && o.cpu == cpu) {
        ++len;
        break;
      }
    }
    if (len < best_len) {
      best_len = len;
      best = cpu;
    }
  }
  return best;
}

void RustySched::TaskNew(const TaskMessage& msg, Schedulable sched) {
  SpinLockGuard g(lock_);
  const int cpu = sched.cpu();
  Ent& e = EntSlot(msg.pid);
  e = Ent{};
  e.live = true;
  e.weight = NiceToWeight(msg.nice);
  e.last_runtime = msg.runtime;
  e.seq = next_seq_++;
  e.cpu = cpu;
  e.domain = dom_of_cpu_[cpu];
  e.queued = true;
  AddLoadLocked(e);
  queues_[cpu].emplace(e.seq, msg.pid);
  TokSlot(msg.pid) = std::move(sched);
}

void RustySched::TaskWakeup(const TaskMessage& msg, Schedulable sched) {
  RequeueRunnable(msg, std::move(sched));
}

void RustySched::TaskPreempt(const TaskMessage& msg, Schedulable sched) {
  RequeueRunnable(msg, std::move(sched));
}

void RustySched::TaskYield(const TaskMessage& msg, Schedulable sched) {
  RequeueRunnable(msg, std::move(sched));
}

void RustySched::RequeueRunnable(const TaskMessage& msg, Schedulable sched) {
  SpinLockGuard g(lock_);
  Ent* found = FindEnt(msg.pid);
  if (found == nullptr) {
    Ent& slot = EntSlot(msg.pid);
    slot = Ent{};
    slot.live = true;
    slot.weight = NiceToWeight(msg.nice);
    slot.last_runtime = msg.runtime;
    found = &slot;
  }
  Ent& e = *found;
  if (msg.runtime > e.last_runtime) {
    e.last_runtime = msg.runtime;
  }
  e.running = false;
  if (e.queued) {
    queues_[e.cpu].erase_one(e.seq, msg.pid);
  }
  const int cpu = sched.cpu();
  const int domain = dom_of_cpu_[cpu];
  if (e.loaded && domain != e.domain) {
    SubLoadLocked(e);
  }
  e.domain = domain;
  AddLoadLocked(e);
  e.seq = next_seq_++;
  e.cpu = cpu;
  e.queued = true;
  queues_[cpu].emplace(e.seq, msg.pid);
  TokSlot(msg.pid) = std::move(sched);
}

void RustySched::TaskBlocked(const TaskMessage& msg) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(msg.pid);
  if (e == nullptr) {
    return;
  }
  if (msg.runtime > e->last_runtime) {
    e->last_runtime = msg.runtime;
  }
  if (e->queued) {
    queues_[e->cpu].erase_one(e->seq, msg.pid);
    e->queued = false;
  }
  e->running = false;
  SubLoadLocked(*e);
  if (msg.pid < tokens_.size()) {
    tokens_[msg.pid].reset();
  }
}

void RustySched::TaskDead(uint64_t pid) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(pid);
  if (e != nullptr) {
    if (e->queued) {
      queues_[e->cpu].erase_one(e->seq, pid);
    }
    SubLoadLocked(*e);
    *e = Ent{};
  }
  if (pid < tokens_.size()) {
    tokens_[pid].reset();
  }
}

std::optional<Schedulable> RustySched::TaskDeparted(const TaskMessage& msg) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(msg.pid);
  if (e != nullptr) {
    if (e->queued) {
      queues_[e->cpu].erase_one(e->seq, msg.pid);
    }
    SubLoadLocked(*e);
    *e = Ent{};
  }
  if (msg.pid >= tokens_.size() || !tokens_[msg.pid].has_value()) {
    return std::nullopt;
  }
  Schedulable s = std::move(*tokens_[msg.pid]);
  tokens_[msg.pid].reset();
  return s;
}

void RustySched::TaskPrioChanged(uint64_t pid, int nice) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(pid);
  if (e == nullptr) {
    return;
  }
  // Swap the old weight out of the domain sum for the new one.
  const bool was_loaded = e->loaded;
  if (was_loaded) {
    SubLoadLocked(*e);
  }
  e->weight = NiceToWeight(nice);
  if (was_loaded) {
    AddLoadLocked(*e);
  }
}

std::optional<Schedulable> RustySched::PickNextTask(int cpu,
                                                    std::optional<Schedulable> curr) {
  SpinLockGuard g(lock_);
  auto& q = queues_[cpu];
  if (q.empty()) {
    return std::nullopt;
  }
  const uint64_t pid = q.front().second;
  q.pop_front();
  Ent* e = FindEnt(pid);
  ENOKI_CHECK(e != nullptr);
  e->queued = false;
  e->running = true;
  e->slice_start_runtime = e->last_runtime;
  if (pid >= tokens_.size() || !tokens_[pid].has_value()) {
    return std::nullopt;
  }
  Schedulable s = std::move(*tokens_[pid]);
  tokens_[pid].reset();
  return s;
}

std::optional<uint64_t> RustySched::Balance(int cpu) {
  SpinLockGuard g(lock_);
  if (!queues_[cpu].empty()) {
    return std::nullopt;
  }
  const Time now = env_->Now();
  const int dom = dom_of_cpu_[cpu];
  // Pass 1: free stealing inside our own domain (oldest first).
  uint64_t best_seq = ~0ull;
  std::optional<uint64_t> best;
  for (int c : dom_cpus_[dom]) {
    if (c == cpu) {
      continue;
    }
    const auto& q = queues_[c];
    for (size_t i = 0; i < q.size(); ++i) {
      if (q[i].first >= best_seq) {
        break;
      }
      if (ents_[q[i].second].steal_ban_until <= now) {
        best_seq = q[i].first;
        best = q[i].second;
        break;
      }
    }
  }
  if (best.has_value()) {
    return best;
  }
  // Pass 2: greedy cross-domain steal, gated on the load ratio.
  const uint64_t my_load = ravgs_[dom].Read(now);
  int busiest = -1;
  uint64_t busiest_load = 0;
  for (int d = 0; d < static_cast<int>(ravgs_.size()); ++d) {
    if (d == dom) {
      continue;
    }
    const uint64_t load = ravgs_[d].Read(now);
    if (load > busiest_load) {
      busiest_load = load;
      busiest = d;
    }
  }
  if (busiest < 0 || busiest_load * 100 < std::max<uint64_t>(my_load, 1) * greedy_ratio_pct_) {
    return std::nullopt;
  }
  best_seq = ~0ull;
  for (int c : dom_cpus_[busiest]) {
    const auto& q = queues_[c];
    for (size_t i = 0; i < q.size(); ++i) {
      if (q[i].first >= best_seq) {
        break;
      }
      if (ents_[q[i].second].steal_ban_until <= now) {
        best_seq = q[i].first;
        best = q[i].second;
        break;
      }
    }
  }
  return best;
}

void RustySched::BalanceErr(int cpu, uint64_t pid, std::optional<Schedulable> sched) {
  SpinLockGuard g(lock_);
  // The kernel refused the move (affinity, kick race): back this task off
  // the steal candidate list briefly so we don't spin on failed offers.
  if (Ent* e = FindEnt(pid)) {
    e->steal_ban_until = env_->Now() + kStealBanNs;
  }
}

Schedulable RustySched::MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) {
  SpinLockGuard g(lock_);
  Ent* found = FindEnt(msg.pid);
  ENOKI_CHECK(found != nullptr);
  Ent& e = *found;
  if (msg.runtime > e.last_runtime) {
    e.last_runtime = msg.runtime;
  }
  if (e.queued) {
    queues_[e.cpu].erase_one(e.seq, msg.pid);
  }
  const int to_dom = dom_of_cpu_[msg.to_cpu];
  if (to_dom != e.domain) {
    ++cross_steals_;
    SubLoadLocked(e);
    e.domain = to_dom;
    AddLoadLocked(e);
  } else {
    ++local_steals_;
  }
  e.cpu = msg.to_cpu;
  e.queued = true;
  queues_[msg.to_cpu].emplace(e.seq, msg.pid);
  ENOKI_CHECK(msg.pid < tokens_.size() && tokens_[msg.pid].has_value());
  Schedulable old = std::move(*tokens_[msg.pid]);
  tokens_[msg.pid] = std::move(sched);
  return old;
}

void RustySched::TaskTick(int cpu, uint64_t pid, Duration runtime) {
  SpinLockGuard g(lock_);
  Ent* found = FindEnt(pid);
  if (found == nullptr) {
    return;
  }
  Ent& e = *found;
  if (runtime > e.last_runtime) {
    e.last_runtime = runtime;
  }
  if (!queues_[cpu].empty() && e.last_runtime - e.slice_start_runtime >= kDefaultSliceNs) {
    env_->ReschedCpu(cpu);
  }
}

TransferState RustySched::ReregisterPrepare() {
  SpinLockGuard g(lock_);
  auto t = std::make_unique<Transfer>();
  t->ents = std::move(ents_);
  t->tokens = std::move(tokens_);
  t->queues = std::move(queues_);
  t->ravgs = std::move(ravgs_);
  t->dom_weight = std::move(dom_weight_);
  t->next_seq = next_seq_;
  ents_.clear();
  tokens_.clear();
  queues_.clear();
  ravgs_.clear();
  dom_weight_.clear();
  next_seq_ = 1;
  return TransferState::Of(std::move(t));
}

void RustySched::ReregisterInit(TransferState state) {
  if (state.empty()) {
    EnsureTopologyLocked();
    return;
  }
  auto t = state.Take<Transfer>();
  if (t == nullptr) {
    EnsureTopologyLocked();
    return;
  }
  SpinLockGuard g(lock_);
  ents_ = std::move(t->ents);
  tokens_ = std::move(t->tokens);
  queues_ = std::move(t->queues);
  ravgs_ = std::move(t->ravgs);
  dom_weight_ = std::move(t->dom_weight);
  next_seq_ = t->next_seq;
}

bool RustySched::SaveCheckpoint(ByteWriter* out) const {
  SpinLockGuard g(lock_);
  out->U64(next_seq_);
  out->U64(ravgs_.size());
  for (const RunningAvg& r : ravgs_) {
    r.Save(out);
  }
  return true;
}

bool RustySched::LoadCheckpoint(uint32_t version, ByteReader* in) {
  if (version != 1) {
    return false;
  }
  SpinLockGuard g(lock_);
  ents_.clear();
  tokens_.clear();
  // A rollback target had its structures moved out by ReregisterPrepare.
  EnsureTopologyLocked();
  if (ravgs_.empty() && !dom_cpus_.empty()) {
    ravgs_.assign(dom_cpus_.size(), RunningAvg(half_life_));
    dom_weight_.assign(dom_cpus_.size(), 0);
  }
  for (auto& q : queues_) {
    q.clear();
  }
  std::fill(dom_weight_.begin(), dom_weight_.end(), 0);
  uint64_t seq = 0;
  uint64_t ndoms = 0;
  if (!in->U64(&seq) || seq == 0 || !in->U64(&ndoms) || ndoms == 0 || ndoms > 64) {
    return false;
  }
  // Domains beyond this machine's count are consumed and dropped; missing
  // ones keep a fresh (zero) history — same renormalization stance as WFQ's
  // per-CPU cursors.
  for (uint64_t d = 0; d < ndoms; ++d) {
    RunningAvg r(half_life_);
    if (!r.Load(in)) {
      return false;
    }
    if (d < ravgs_.size()) {
      ravgs_[d] = r;
    }
  }
  next_seq_ = seq;
  return !in->overrun();
}

int RustySched::DomainOf(uint64_t pid) {
  SpinLockGuard g(lock_);
  Ent* e = FindEnt(pid);
  return e == nullptr ? -1 : e->domain;
}

uint64_t RustySched::DomainLoad(int domain) {
  SpinLockGuard g(lock_);
  return ravgs_[domain].Read(env_->Now());
}

int RustySched::ndomains() {
  SpinLockGuard g(lock_);
  return static_cast<int>(dom_cpus_.size());
}

uint64_t RustySched::cross_steals() {
  SpinLockGuard g(lock_);
  return cross_steals_;
}

uint64_t RustySched::local_steals() {
  SpinLockGuard g(lock_);
  return local_steals_;
}

size_t RustySched::QueueDepth(int cpu) {
  SpinLockGuard g(lock_);
  return queues_[cpu].size();
}

}  // namespace enoki
