#include "src/sched/cfs.h"

#include <algorithm>

namespace enoki {

void CfsClass::Attach(SchedCore* core) {
  SchedClass::Attach(core);
  rqs_.resize(static_cast<size_t>(core->ncpus()));
}

void CfsClass::Account(Task* t, Entity& e) {
  const Duration runtime = core_->TaskRuntime(t);
  if (runtime > e.last_runtime) {
    e.vruntime += CalcDeltaVruntime(runtime - e.last_runtime, e.weight);
    e.last_runtime = runtime;
  }
}

void CfsClass::Enqueue(int cpu, Task* t, Entity& e) {
  e.cpu = cpu;
  e.queued = true;
  e.running = false;
  rqs_[cpu].tree.emplace(e.vruntime, t);
}

void CfsClass::Dequeue(Task* t, Entity& e) {
  if (!e.queued) {
    return;
  }
  rqs_[e.cpu].tree.erase_one(e.vruntime, t);
  e.queued = false;
}

size_t CfsClass::Load(int cpu) const {
  return rqs_[cpu].tree.size() + (rqs_[cpu].running != nullptr ? 1 : 0);
}

int CfsClass::SelectTaskRq(Task* t, int prev_cpu, bool wake_sync, bool is_new) {
  const int ncpus = core_->ncpus();
  if (is_new) {
    // Spread new tasks to the least-loaded allowed CPU.
    int best = -1;
    size_t best_load = ~size_t{0};
    for (int cpu = 0; cpu < ncpus; ++cpu) {
      if (!t->affinity().Test(cpu)) {
        continue;
      }
      const size_t load = Load(cpu);
      if (load < best_load) {
        best_load = load;
        best = cpu;
      }
    }
    return best;
  }
  if (prev_cpu >= 0 && t->affinity().Test(prev_cpu) && core_->CpuIdle(prev_cpu) &&
      rqs_[prev_cpu].tree.empty()) {
    // Idle with nothing queued: a CPU that is merely exiting idle to run an
    // already-queued wakee does not count.
    return prev_cpu;
  }
  // Prefer an idle CPU in the previous CPU's node (LLC affinity), then any
  // idle CPU. One pass computes both candidates (first match in cpu order,
  // exactly as the two-scan version chose).
  const int node = prev_cpu >= 0 ? core_->NodeOf(prev_cpu) : 0;
  int idle_any = -1;
  for (int cpu = 0; cpu < ncpus; ++cpu) {
    if (!t->affinity().Test(cpu) || !core_->CpuIdle(cpu) || !rqs_[cpu].tree.empty()) {
      continue;
    }
    if (core_->NodeOf(cpu) == node) {
      return cpu;  // first idle CPU in the home node wins outright
    }
    if (idle_any < 0) {
      idle_any = cpu;
    }
  }
  if (idle_any >= 0) {
    return idle_any;
  }
  // Fall back to the least-loaded allowed CPU, preferring the home node and
  // breaking ties toward CPUs with no *queued* work: a CPU whose current
  // task may block soon (empty tree) beats one with a waiter already queued
  // for a full slice.
  auto score = [&](int cpu) {
    size_t s = 2 * Load(cpu) + (rqs_[cpu].tree.empty() ? 0 : 1);
    if (core_->NodeOf(cpu) != node) {
      s += 2 * kNumaImbalanceThreshold;  // bias against crossing nodes
    }
    return s;
  };
  int best = prev_cpu >= 0 && t->affinity().Test(prev_cpu) ? prev_cpu : t->affinity().First();
  size_t best_score = score(best);
  for (int cpu = 0; cpu < ncpus; ++cpu) {
    if (!t->affinity().Test(cpu)) {
      continue;
    }
    const size_t s = score(cpu);
    if (s < best_score) {
      best_score = s;
      best = cpu;
    }
  }
  return best;
}

void CfsClass::EnqueueTask(int cpu, Task* t, bool wakeup) {
  Entity& e = Ent(t);
  e.weight = NiceToWeight(t->nice());
  CfsRq& rq = rqs_[cpu];
  if (wakeup) {
    // Sleeper fairness (place_entity): cap the credit a sleeper accrues.
    const uint64_t floor_vr =
        rq.min_vruntime > kSchedLatencyNs ? rq.min_vruntime - kSchedLatencyNs : 0;
    e.vruntime = std::max(e.vruntime, floor_vr);
  } else {
    // New tasks start at min_vruntime (run at the end of the current period).
    e.vruntime = std::max(e.vruntime, rq.min_vruntime);
    e.last_runtime = core_->TaskRuntime(t);
  }
  Enqueue(cpu, t, e);
}

void CfsClass::DequeueTask(int cpu, Task* t, DequeueReason reason) {
  Entity& e = Ent(t);
  Account(t, e);
  Dequeue(t, e);
  if (rqs_[cpu].running == t) {
    rqs_[cpu].running = nullptr;
  }
  e.running = false;
  if (reason == DequeueReason::kDead) {
    e = Entity{};  // pids are never reused; drop the captured state
  }
}

Task* CfsClass::PickNextTask(int cpu) {
  CfsRq& rq = rqs_[cpu];
  if (rq.tree.empty()) {
    // Newidle balance: try to pull work before letting the CPU idle.
    if (!PullOne(cpu, /*newidle=*/true)) {
      rq.running = nullptr;
      return nullptr;
    }
  }
  Task* t = rq.tree.front().second;
  Entity& e = Ent(t);
  rq.min_vruntime = std::max(rq.min_vruntime, rq.tree.front().first);
  rq.tree.pop_front();
  e.queued = false;
  e.running = true;
  e.slice_start_runtime = e.last_runtime;
  rq.running = t;
  return t;
}

void CfsClass::TaskPreempted(int cpu, Task* t) {
  Entity& e = Ent(t);
  Account(t, e);
  if (rqs_[cpu].running == t) {
    rqs_[cpu].running = nullptr;
  }
  Enqueue(cpu, t, e);
}

void CfsClass::TaskYielded(int cpu, Task* t) {
  Entity& e = Ent(t);
  Account(t, e);
  // yield_task_fair: move behind the current rightmost entity.
  if (!rqs_[cpu].tree.empty()) {
    e.vruntime = std::max(e.vruntime, rqs_[cpu].tree.back().first + 1);
  }
  if (rqs_[cpu].running == t) {
    rqs_[cpu].running = nullptr;
  }
  Enqueue(cpu, t, e);
}

bool CfsClass::WakeupPreempt(int cpu, Task* curr, Task* woken) {
  if (curr->sched_class() != this) {
    return false;
  }
  // Read the woken vruntime before taking a reference to curr's entity:
  // Ent() may grow the vector and invalidate earlier references.
  const uint64_t woken_vr = Ent(woken).vruntime;
  Entity& ce = Ent(curr);
  Account(curr, ce);
  return woken_vr + kWakeupGranularityNs < ce.vruntime;
}

void CfsClass::TaskTick(int cpu, Task* t) {
  Entity& e = Ent(t);
  Account(t, e);
  CfsRq& rq = rqs_[cpu];
  ++rq.tick_count;
  // Periodic balancing.
  if (rq.tick_count % kBalanceTicks == 0 && rq.tree.empty()) {
    PullOne(cpu, /*newidle=*/false);
  }
  if (rq.tree.empty()) {
    return;
  }
  const size_t nr = rq.tree.size() + 1;
  const Duration period = std::max<Duration>(kSchedLatencyNs, kMinGranularityNs * nr);
  const Duration slice = std::max<Duration>(kMinGranularityNs, period / nr);
  const Duration ran = e.last_runtime - e.slice_start_runtime;
  const bool slice_expired = ran >= slice;
  const bool lagging = rq.tree.front().first + kWakeupGranularityNs < e.vruntime;
  if (slice_expired || lagging) {
    core_->SetNeedResched(cpu);
  }
}

bool CfsClass::PullOne(int cpu, bool newidle) {
  const int ncpus = core_->ncpus();
  const int node = core_->NodeOf(cpu);
  int busiest = -1;
  size_t busiest_len = 0;
  bool busiest_cross_node = false;
  for (int c = 0; c < ncpus; ++c) {
    if (c == cpu) {
      continue;
    }
    const size_t len = rqs_[c].tree.size();
    if (len == 0) {
      continue;
    }
    if (core_->CpuKickPending(c)) {
      // That CPU is already exiting idle to run its queue; pulling now
      // would race the wakeup IPI (and on real hardware, lose).
      continue;
    }
    const bool cross = core_->NodeOf(c) != node;
    if (cross && len < kNumaImbalanceThreshold) {
      continue;  // do not pull across nodes for small imbalances
    }
    // Prefer same-node queues; among candidates take the longest.
    if (busiest == -1 || (busiest_cross_node && !cross) ||
        (busiest_cross_node == cross && len > busiest_len)) {
      busiest = c;
      busiest_len = len;
      busiest_cross_node = cross;
    }
  }
  if (busiest < 0) {
    return false;
  }
  // Pull the task least likely to be cache-hot: the rightmost (largest
  // vruntime) eligible entity.
  auto& tree = rqs_[busiest].tree;
  for (size_t i = tree.size(); i-- > 0;) {
    Task* t = tree[i].second;
    if (!t->affinity().Test(cpu)) {
      continue;
    }
    Entity& e = Ent(t);
    Dequeue(t, e);
    // Renormalize vruntime to the destination timeline.
    const uint64_t from_min = rqs_[busiest].min_vruntime;
    const uint64_t to_min = rqs_[cpu].min_vruntime;
    e.vruntime = e.vruntime >= from_min ? to_min + (e.vruntime - from_min) : to_min;
    Enqueue(cpu, t, e);
    core_->MoveQueuedTask(t, cpu);
    ++migrations_;
    return true;
  }
  return false;
}

void CfsClass::PrioChanged(Task* t) {
  Entity& e = Ent(t);
  Account(t, e);
  e.weight = NiceToWeight(t->nice());
}

void CfsClass::AffinityChanged(Task* t) {
  Entity& e = Ent(t);
  if (e.queued && !t->affinity().Test(e.cpu)) {
    Dequeue(t, e);
    const int cpu = t->affinity().First();
    Enqueue(cpu, t, e);
    core_->MoveQueuedTask(t, cpu);
    core_->KickCpu(cpu);
  }
}

}  // namespace enoki
