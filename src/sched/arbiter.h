// The Arachne core arbiter as an Enoki scheduler (section 4.2.4).
//
// Two-level scheduling: the application's user-level runtime requests cores
// through the user-to-kernel hint queue; the arbiter grants whole cores to
// scheduler activations (kernel threads that each exclusively occupy one
// granted core and run the application's user-level thread scheduler).
// Reclamation requests flow back through the kernel-to-user queue, and the
// runtime releases a core by parking (blocking) its activation.
//
// Hint protocol (user -> kernel), w[0] = op:
//   op 1 kReqCores:       w[1] = app id, w[2] = desired core count
//   op 2 kBindActivation: w[1] = app id, w[2] = activation pid
// Reverse hints (kernel -> user), w[0] = op:
//   op 1 kGrantCore:   w[1] = app id, w[2] = core, w[3] = activation pid
//   op 2 kReclaimCore: w[1] = app id, w[2] = core, w[3] = activation pid

#ifndef SRC_SCHED_ARBITER_H_
#define SRC_SCHED_ARBITER_H_

#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/enoki/api.h"
#include "src/enoki/lock.h"

namespace enoki {

class ArbiterSched : public EnokiSched {
 public:
  static constexpr uint64_t kReqCores = 1;
  static constexpr uint64_t kBindActivation = 2;
  static constexpr uint64_t kGrantCore = 1;
  static constexpr uint64_t kReclaimCore = 2;

  // `first_core`/`last_core` bound the pool of arbitrated cores (the bench
  // reserves core 0 for background work, like the paper's setup).
  ArbiterSched(int policy_id, int first_core, int last_core)
      : policy_id_(policy_id), first_core_(first_core), last_core_(last_core) {
    for (int c = first_core; c <= last_core; ++c) {
      free_cores_.insert(c);
    }
  }

  int GetPolicy() const override { return policy_id_; }

  int RegisterReverseQueue(int queue_id) override {
    rev_queue_id_ = queue_id;
    return queue_id;
  }

  void ParseHint(const HintBlob& hint) override {
    SpinLockGuard g(lock_);
    switch (hint.w[0]) {
      case kReqCores: {
        apps_[hint.w[1]].requested = hint.w[2];
        RecomputeLocked();
        break;
      }
      case kBindActivation: {
        apps_[hint.w[1]].parked.insert(hint.w[2]);
        app_of_[hint.w[2]] = hint.w[1];
        RecomputeLocked();
        break;
      }
      default:
        break;
    }
  }

  int SelectTaskRq(const TaskMessage& msg) override {
    SpinLockGuard g(lock_);
    auto it = core_of_.find(msg.pid);
    if (it != core_of_.end()) {
      return it->second;
    }
    return first_core_;  // unassigned activations wait, unpicked
  }

  void TaskNew(const TaskMessage& msg, Schedulable sched) override {
    Enqueue(msg.pid, std::move(sched));
  }
  void TaskWakeup(const TaskMessage& msg, Schedulable sched) override {
    Enqueue(msg.pid, std::move(sched));
  }
  void TaskPreempt(const TaskMessage& msg, Schedulable sched) override {
    Enqueue(msg.pid, std::move(sched));
  }
  void TaskYield(const TaskMessage& msg, Schedulable sched) override {
    Enqueue(msg.pid, std::move(sched));
  }

  void TaskBlocked(const TaskMessage& msg) override {
    SpinLockGuard g(lock_);
    queued_.erase(msg.pid);
    tokens_.erase(msg.pid);
    // A blocking activation on a reclaimed core releases it.
    auto it = core_of_.find(msg.pid);
    if (it != core_of_.end() && pending_reclaim_.count(it->second) > 0) {
      ReleaseCoreLocked(msg.pid, it->second);
      RecomputeLocked();
    }
  }

  void TaskDead(uint64_t pid) override {
    SpinLockGuard g(lock_);
    queued_.erase(pid);
    tokens_.erase(pid);
    auto it = core_of_.find(pid);
    if (it != core_of_.end()) {
      ReleaseCoreLocked(pid, it->second);
    }
    auto app = app_of_.find(pid);
    if (app != app_of_.end()) {
      apps_[app->second].parked.erase(pid);
      app_of_.erase(app);
    }
    RecomputeLocked();
  }

  std::optional<Schedulable> TaskDeparted(const TaskMessage& msg) override {
    SpinLockGuard g(lock_);
    queued_.erase(msg.pid);
    auto it = tokens_.find(msg.pid);
    if (it == tokens_.end()) {
      return std::nullopt;
    }
    Schedulable s = std::move(it->second);
    tokens_.erase(it);
    return s;
  }

  std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) override {
    SpinLockGuard g(lock_);
    auto owner = owner_of_core_.find(cpu);
    if (owner == owner_of_core_.end()) {
      return std::nullopt;
    }
    const uint64_t pid = owner->second;
    if (queued_.count(pid) == 0) {
      return std::nullopt;
    }
    auto tok = tokens_.find(pid);
    if (tok == tokens_.end() || tok->second.cpu() != cpu) {
      return std::nullopt;
    }
    queued_.erase(pid);
    Schedulable s = std::move(tok->second);
    tokens_.erase(tok);
    return s;
  }

  // When an activation is queued on the wrong CPU (e.g. it was created
  // before its core grant), offer it to its granted core so the kernel
  // migrates it — "standard kernel scheduling mechanisms for moving
  // activations" (section 4.2.4).
  std::optional<uint64_t> Balance(int cpu) override {
    SpinLockGuard g(lock_);
    auto owner = owner_of_core_.find(cpu);
    if (owner == owner_of_core_.end()) {
      return std::nullopt;
    }
    const uint64_t pid = owner->second;
    auto tok = tokens_.find(pid);
    if (queued_.count(pid) > 0 && tok != tokens_.end() && tok->second.cpu() != cpu) {
      return pid;
    }
    return std::nullopt;
  }

  Schedulable MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) override {
    SpinLockGuard g(lock_);
    auto it = tokens_.find(msg.pid);
    ENOKI_CHECK(it != tokens_.end());
    Schedulable old = std::move(it->second);
    it->second = std::move(sched);
    return old;
  }

  // The kernel could not move the activation this time (e.g. its current
  // CPU was mid-dispatch); kick the granted core again so the pull retries.
  void BalanceErr(int cpu, uint64_t pid, std::optional<Schedulable> sched) override {
    env_->ReschedCpu(cpu);
  }

  void TaskTick(int cpu, uint64_t pid, Duration runtime) override {}

  // Introspection for tests and the bench harness.
  size_t granted_cores(uint64_t app_id) {
    SpinLockGuard g(lock_);
    auto it = apps_.find(app_id);
    return it == apps_.end() ? 0 : it->second.granted.size();
  }
  size_t free_cores() {
    SpinLockGuard g(lock_);
    return free_cores_.size();
  }

 private:
  struct App {
    uint64_t requested = 0;
    std::unordered_set<uint64_t> parked;          // registered, unassigned pids
    std::unordered_map<int, uint64_t> granted;    // core -> activation pid
  };

  void Enqueue(uint64_t pid, Schedulable sched) {
    SpinLockGuard g(lock_);
    queued_.insert(pid);
    tokens_.insert_or_assign(pid, std::move(sched));
  }

  void ReleaseCoreLocked(uint64_t pid, int core) {
    core_of_.erase(pid);
    owner_of_core_.erase(core);
    pending_reclaim_.erase(core);
    free_cores_.insert(core);
    auto app = app_of_.find(pid);
    if (app != app_of_.end()) {
      apps_[app->second].granted.erase(core);
      apps_[app->second].parked.insert(pid);
    }
  }

  void RecomputeLocked() {
    for (auto& [app_id, app] : apps_) {
      // Grant while under target and resources exist.
      while (app.granted.size() < app.requested && !free_cores_.empty() &&
             !app.parked.empty()) {
        const int core = *free_cores_.begin();
        free_cores_.erase(free_cores_.begin());
        const uint64_t pid = *app.parked.begin();
        app.parked.erase(app.parked.begin());
        app.granted[core] = pid;
        core_of_[pid] = core;
        owner_of_core_[core] = pid;
        HintBlob grant;
        grant.w[0] = kGrantCore;
        grant.w[1] = app_id;
        grant.w[2] = static_cast<uint64_t>(core);
        grant.w[3] = pid;
        if (rev_queue_id_ >= 0) {
          env_->PushRevHint(rev_queue_id_, grant);
        }
        // Kick the granted core so it picks (and if needed migrates) the
        // activation.
        env_->ReschedCpu(core);
      }
      // Reclaim while over target.
      while (app.granted.size() >
             app.requested + CountPendingReclaims(app)) {
        int victim = -1;
        for (const auto& [core, pid] : app.granted) {
          if (pending_reclaim_.count(core) == 0) {
            victim = core;
            break;
          }
        }
        if (victim < 0) {
          break;
        }
        pending_reclaim_.insert(victim);
        HintBlob reclaim;
        reclaim.w[0] = kReclaimCore;
        reclaim.w[1] = app_id;
        reclaim.w[2] = static_cast<uint64_t>(victim);
        reclaim.w[3] = app.granted[victim];
        if (rev_queue_id_ >= 0) {
          env_->PushRevHint(rev_queue_id_, reclaim);
        }
      }
    }
  }

  size_t CountPendingReclaims(const App& app) const {
    size_t n = 0;
    for (const auto& [core, pid] : app.granted) {
      if (pending_reclaim_.count(core) > 0) {
        ++n;
      }
    }
    return n;
  }

  const int policy_id_;
  const int first_core_;
  const int last_core_;
  int rev_queue_id_ = -1;
  SpinLock lock_;
  std::set<int> free_cores_;
  std::unordered_map<uint64_t, App> apps_;
  std::unordered_map<uint64_t, uint64_t> app_of_;      // pid -> app
  std::unordered_map<uint64_t, int> core_of_;          // pid -> granted core
  std::unordered_map<int, uint64_t> owner_of_core_;    // core -> pid
  std::unordered_set<int> pending_reclaim_;
  std::unordered_set<uint64_t> queued_;
  std::unordered_map<uint64_t, Schedulable> tokens_;
};

}  // namespace enoki

#endif  // SRC_SCHED_ARBITER_H_
