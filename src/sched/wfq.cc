#include "src/sched/wfq.h"

#include <algorithm>

namespace enoki {

void WfqSched::Account(Entity& e, Duration runtime) {
  if (runtime > e.last_runtime) {
    e.vruntime += CalcDeltaVruntime(runtime - e.last_runtime, e.weight);
    e.last_runtime = runtime;
  }
}

void WfqSched::EnqueueLocked(uint64_t pid, Entity& e, int cpu) {
  e.cpu = cpu;
  e.queued = true;
  e.running = false;
  queues_[cpu].emplace(e.vruntime, pid);
}

void WfqSched::DequeueLocked(uint64_t pid, Entity& e) {
  if (!e.queued) {
    return;
  }
  queues_[e.cpu].erase_one(e.vruntime, pid);
  e.queued = false;
}

int WfqSched::SelectTaskRq(const TaskMessage& msg) {
  SpinLockGuard g(lock_);
  if (msg.is_new) {
    // New tasks: shortest queue (counting the running task as load).
    int best = 0;
    size_t best_len = ~size_t{0};
    for (int cpu = 0; cpu < static_cast<int>(queues_.size()); ++cpu) {
      size_t len = queues_[cpu].size();
      for (const Entity& e : entities_) {
        if (e.live && e.running && e.cpu == cpu) {
          ++len;
          break;
        }
      }
      if (len < best_len) {
        best_len = len;
        best = cpu;
      }
    }
    return best;
  }
  // Waking tasks return to their previous CPU; stealing evens things out.
  return msg.prev_cpu >= 0 ? msg.prev_cpu : 0;
}

void WfqSched::TaskNew(const TaskMessage& msg, Schedulable sched) {
  SpinLockGuard g(lock_);
  const int cpu = sched.cpu();
  const uint64_t pid = msg.pid;
  Entity& e = EntSlot(pid);
  e = Entity{};
  e.live = true;
  e.weight = NiceToWeight(msg.nice);
  e.last_runtime = msg.runtime;
  e.vruntime = min_vruntime_[cpu];
  EnqueueLocked(pid, e, cpu);
  TokSlot(pid) = std::move(sched);
}

void WfqSched::TaskWakeup(const TaskMessage& msg, Schedulable sched) {
  RequeueRunnable(msg, std::move(sched), /*clamp_vruntime=*/true);
}

void WfqSched::TaskPreempt(const TaskMessage& msg, Schedulable sched) {
  RequeueRunnable(msg, std::move(sched), /*clamp_vruntime=*/false);
}

void WfqSched::TaskYield(const TaskMessage& msg, Schedulable sched) {
  RequeueRunnable(msg, std::move(sched), /*clamp_vruntime=*/false);
}

void WfqSched::RequeueRunnable(const TaskMessage& msg, Schedulable sched, bool clamp_vruntime) {
  SpinLockGuard g(lock_);
  Entity* found = FindEnt(msg.pid);
  if (found == nullptr) {
    // First sighting (e.g. after an upgrade with partial state): adopt it.
    Entity& slot = EntSlot(msg.pid);
    slot = Entity{};
    slot.live = true;
    slot.weight = NiceToWeight(msg.nice);
    slot.last_runtime = msg.runtime;
    found = &slot;
  }
  Entity& e = *found;
  Account(e, msg.runtime);
  const int cpu = sched.cpu();
  if (clamp_vruntime) {
    // Sleeper fairness: a long sleep must not turn into a large vruntime
    // credit. Minimum is min_vruntime - sched_latency (section 4.2.1).
    const uint64_t floor_vr = min_vruntime_[cpu] > kSchedLatencyNs
                                  ? min_vruntime_[cpu] - kSchedLatencyNs
                                  : 0;
    e.vruntime = std::max(e.vruntime, floor_vr);
  }
  DequeueLocked(msg.pid, e);
  EnqueueLocked(msg.pid, e, cpu);
  TokSlot(msg.pid) = std::move(sched);
}

void WfqSched::TaskBlocked(const TaskMessage& msg) {
  SpinLockGuard g(lock_);
  Entity* e = FindEnt(msg.pid);
  if (e == nullptr) {
    return;
  }
  Account(*e, msg.runtime);
  DequeueLocked(msg.pid, *e);
  e->running = false;
  if (msg.pid < tokens_.size()) {
    tokens_[msg.pid].reset();
  }
}

void WfqSched::TaskDead(uint64_t pid) {
  SpinLockGuard g(lock_);
  Entity* e = FindEnt(pid);
  if (e != nullptr) {
    DequeueLocked(pid, *e);
    *e = Entity{};  // pids are never reused; drop the state
  }
  if (pid < tokens_.size()) {
    tokens_[pid].reset();
  }
}

std::optional<Schedulable> WfqSched::TaskDeparted(const TaskMessage& msg) {
  SpinLockGuard g(lock_);
  Entity* e = FindEnt(msg.pid);
  if (e != nullptr) {
    DequeueLocked(msg.pid, *e);
    *e = Entity{};
  }
  if (msg.pid >= tokens_.size() || !tokens_[msg.pid].has_value()) {
    return std::nullopt;
  }
  Schedulable s = std::move(*tokens_[msg.pid]);
  tokens_[msg.pid].reset();
  return s;
}

void WfqSched::TaskPrioChanged(uint64_t pid, int nice) {
  SpinLockGuard g(lock_);
  if (Entity* e = FindEnt(pid)) {
    e->weight = NiceToWeight(nice);
  }
}

std::optional<Schedulable> WfqSched::PickNextTask(int cpu, std::optional<Schedulable> curr) {
  SpinLockGuard g(lock_);
  auto& q = queues_[cpu];
  if (q.empty()) {
    return std::nullopt;
  }
  const uint64_t pid = q.front().second;
  min_vruntime_[cpu] = std::max(min_vruntime_[cpu], q.front().first);
  q.pop_front();
  Entity* e = FindEnt(pid);
  ENOKI_CHECK(e != nullptr);
  e->queued = false;
  e->running = true;
  e->slice_start_runtime = e->last_runtime;
  if (pid >= tokens_.size() || !tokens_[pid].has_value()) {
    return std::nullopt;
  }
  Schedulable s = std::move(*tokens_[pid]);
  tokens_[pid].reset();
  return s;
}

std::optional<uint64_t> WfqSched::Balance(int cpu) {
  SpinLockGuard g(lock_);
  if (!queues_[cpu].empty()) {
    return std::nullopt;
  }
  // The core is about to go idle: steal from the longest queue.
  int busiest = -1;
  size_t best = 1;
  for (int c = 0; c < static_cast<int>(queues_.size()); ++c) {
    if (c != cpu && queues_[c].size() >= best) {
      best = queues_[c].size();
      busiest = c;
    }
  }
  if (busiest < 0) {
    return std::nullopt;
  }
  return queues_[busiest].front().second;
}

Schedulable WfqSched::MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) {
  SpinLockGuard g(lock_);
  Entity* found = FindEnt(msg.pid);
  ENOKI_CHECK(found != nullptr);
  Entity& e = *found;
  Account(e, msg.runtime);
  DequeueLocked(msg.pid, e);
  // Renormalize vruntime into the destination queue's timeline.
  const uint64_t from_min = min_vruntime_[msg.from_cpu];
  const uint64_t to_min = min_vruntime_[msg.to_cpu];
  e.vruntime = e.vruntime >= from_min ? to_min + (e.vruntime - from_min) : to_min;
  EnqueueLocked(msg.pid, e, msg.to_cpu);
  ENOKI_CHECK(msg.pid < tokens_.size() && tokens_[msg.pid].has_value());
  Schedulable old = std::move(*tokens_[msg.pid]);
  tokens_[msg.pid] = std::move(sched);
  return old;
}

void WfqSched::TaskTick(int cpu, uint64_t pid, Duration runtime) {
  SpinLockGuard g(lock_);
  Entity* found = FindEnt(pid);
  if (found == nullptr) {
    return;
  }
  Entity& e = *found;
  Account(e, runtime);
  const auto& q = queues_[cpu];
  if (q.empty()) {
    return;
  }
  // Fair time slice: period / nr_running, floored at the minimum
  // granularity, scaled by this task's weight share.
  const size_t nr = q.size() + 1;
  const Duration period = std::max(kSchedLatencyNs, kMinGranularityNs * nr);
  const Duration slice = std::max(kMinGranularityNs, period / nr);
  const Duration ran = e.last_runtime - e.slice_start_runtime;
  const bool slice_expired = ran >= slice;
  // Wakeup-style preemption at tick: a queued task with materially lower
  // vruntime should take over.
  const bool lagging = q.front().first + kWakeupGranularityNs < e.vruntime;
  if (slice_expired || lagging) {
    env_->ReschedCpu(cpu);
  }
}

TransferState WfqSched::ReregisterPrepare() {
  SpinLockGuard g(lock_);
  auto t = std::make_unique<Transfer>();
  t->entities = std::move(entities_);
  t->tokens = std::move(tokens_);
  t->queues = std::move(queues_);
  t->min_vruntime = std::move(min_vruntime_);
  entities_.clear();
  tokens_.clear();
  queues_.clear();
  min_vruntime_.clear();
  return TransferState::Of(std::move(t));
}

void WfqSched::ReregisterInit(TransferState state) {
  if (state.empty()) {
    return;
  }
  auto t = state.Take<Transfer>();
  if (t == nullptr) {
    return;
  }
  SpinLockGuard g(lock_);
  entities_ = std::move(t->entities);
  tokens_ = std::move(t->tokens);
  queues_ = std::move(t->queues);
  min_vruntime_ = std::move(t->min_vruntime);
}

bool WfqSched::SaveCheckpoint(ByteWriter* out) const {
  SpinLockGuard g(lock_);
  out->U64(min_vruntime_.size());
  for (uint64_t v : min_vruntime_) {
    out->U64(v);
  }
  uint64_t nlive = 0;
  for (const Entity& e : entities_) {
    if (e.live) {
      ++nlive;
    }
  }
  out->U64(nlive);
  for (uint64_t pid = 0; pid < entities_.size(); ++pid) {
    const Entity& e = entities_[pid];
    if (!e.live) {
      continue;
    }
    out->U64(pid);
    out->U64(e.vruntime);
    out->U64(e.weight);
    out->U64(static_cast<uint64_t>(e.last_runtime));
    out->U64(static_cast<uint64_t>(e.slice_start_runtime));
    out->U64(static_cast<uint64_t>(e.cpu));
  }
  return true;
}

bool WfqSched::LoadCheckpoint(uint32_t version, ByteReader* in) {
  if (version != 1 && version != 2) {
    return false;
  }
  SpinLockGuard g(lock_);
  // Queue membership and tokens are deliberately absent from checkpoints:
  // the runtime re-injects queued tasks as fresh wakeups after the restore,
  // so every restored entity starts parked (not queued, not running).
  entities_.clear();
  tokens_.clear();
  // A rollback target had its vectors moved out by ReregisterPrepare;
  // rebuild the per-CPU structures before restoring into them.
  if (queues_.empty() && env_ != nullptr) {
    queues_.resize(static_cast<size_t>(env_->NumCpus()));
    min_vruntime_.assign(static_cast<size_t>(env_->NumCpus()), 0);
  }
  for (auto& q : queues_) {
    q.clear();
  }
  if (min_vruntime_.empty()) {
    return false;  // detached instance with no machine shape to restore onto
  }
  uint64_t ncpus = 0;
  if (!in->U64(&ncpus) || ncpus == 0 || ncpus > 4096) {
    return false;
  }
  // A checkpoint from a differently-sized machine renormalizes onto this
  // one instead of dropping state. Saved per-CPU vruntime baselines are
  // remapped by cpu % live: shrinking folds several saved cursors onto one
  // live CPU, keeping the *minimum* (entities restored onto that CPU carry
  // vruntimes measured against their old cursor, and a too-high baseline
  // would starve them behind fresh arrivals). Growing seeds the extra CPUs
  // from the global minimum so they join at the fair frontier rather than
  // at 0 (which would let their first tasks monopolize the machine).
  std::vector<uint64_t> saved(static_cast<size_t>(ncpus), 0);
  uint64_t global_min = ~uint64_t{0};
  for (uint64_t cpu = 0; cpu < ncpus; ++cpu) {
    if (!in->U64(&saved[cpu])) {
      return false;
    }
    global_min = std::min(global_min, saved[cpu]);
  }
  const size_t live = min_vruntime_.size();
  std::fill(min_vruntime_.begin(), min_vruntime_.end(), ~uint64_t{0});
  for (uint64_t cpu = 0; cpu < ncpus; ++cpu) {
    uint64_t& slot = min_vruntime_[static_cast<size_t>(cpu % live)];
    slot = std::min(slot, saved[cpu]);
  }
  for (uint64_t& v : min_vruntime_) {
    if (v == ~uint64_t{0}) {
      v = global_min;
    }
  }
  uint64_t nlive = 0;
  if (!in->U64(&nlive)) {
    return false;
  }
  for (uint64_t i = 0; i < nlive; ++i) {
    uint64_t pid = 0, vruntime = 0, weight = 0, last_runtime = 0;
    uint64_t slice_start = 0, cpu = 0;
    if (!in->U64(&pid) || !in->U64(&vruntime) || !in->U64(&weight) || !in->U64(&last_runtime)) {
      return false;
    }
    if (version >= 2 && !in->U64(&slice_start)) {
      return false;
    }
    if (!in->U64(&cpu)) {
      return false;
    }
    // Sanity bounds: pids are dense and assigned from 1; reject a payload
    // that would force an absurd resize even if its checksum happened to
    // pass (e.g. a version-confused writer).
    if (pid == 0 || pid > (1u << 24) || weight == 0) {
      return false;
    }
    Entity& e = EntSlot(pid);
    e = Entity{};
    e.live = true;
    e.vruntime = vruntime;
    e.weight = weight;
    e.last_runtime = static_cast<Duration>(last_runtime);
    // v1 predates slice_start_runtime; seed it from the runtime watermark.
    e.slice_start_runtime = version >= 2 ? static_cast<Duration>(slice_start)
                                         : static_cast<Duration>(last_runtime);
    // Placement cursors renormalize with the same cpu % live remap as the
    // vruntime baselines, so an entity folded onto a live CPU lands next to
    // the baseline its vruntime is measured against.
    e.cpu = static_cast<int>(cpu % queues_.size());
  }
  return !in->overrun();
}

size_t WfqSched::QueueDepth(int cpu) {
  SpinLockGuard g(lock_);
  return queues_[cpu].size();
}

uint64_t WfqSched::VruntimeOf(uint64_t pid) {
  SpinLockGuard g(lock_);
  Entity* e = FindEnt(pid);
  return e == nullptr ? 0 : e->vruntime;
}

uint64_t WfqSched::WeightOf(uint64_t pid) {
  SpinLockGuard g(lock_);
  Entity* e = FindEnt(pid);
  return e == nullptr ? 0 : e->weight;
}

}  // namespace enoki
