// A Nest-style warm-core Enoki scheduler.
//
// The paper's motivation (section 2) cites Nest (Lawall et al., EuroSys'22):
// for jobs with fewer active tasks than cores, energy efficiency and wakeup
// latency improve when tasks are repeatedly placed on a small set of *warm*
// cores — cores that ran recently and have not fallen into a deep C-state —
// instead of being spread across many cold cores. The paper argues Enoki is
// exactly the vehicle for building such small special-purpose schedulers;
// this module demonstrates it: a compact scheduler whose entire novelty is
// its placement function.
//
// Policy: keep a "nest" of primary cores. A waking task is placed on the
// most-recently-used primary core whose queue is shallow; the nest grows
// when every primary core is saturated and shrinks (cores age out) when
// unused. Everything else (per-core FIFO with tick round-robin and idle
// stealing) is deliberately boring.

#ifndef SRC_SCHED_NEST_H_
#define SRC_SCHED_NEST_H_

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/base/time.h"
#include "src/enoki/api.h"
#include "src/enoki/lock.h"

namespace enoki {

class NestSched : public EnokiSched {
 public:
  // A primary core ages out of the nest after this long without being used.
  static constexpr Duration kNestDecayNs = Milliseconds(2);
  // Queue depth at which a primary core counts as saturated.
  static constexpr size_t kSaturationDepth = 2;

  explicit NestSched(int policy_id) : policy_id_(policy_id) {}

  void Attach(EnokiKernelEnv* env) override {
    EnokiSched::Attach(env);
    if (queues_.empty()) {
      const size_t n = static_cast<size_t>(env->NumCpus());
      queues_.resize(n);
      last_used_.assign(n, 0);
      running_.assign(n, 0);
    }
  }

  int GetPolicy() const override { return policy_id_; }

  int SelectTaskRq(const TaskMessage& msg) override {
    SpinLockGuard g(lock_);
    const Time now = env_->Now();
    // Warmest eligible core: used most recently, not saturated.
    int best = -1;
    Time best_used = 0;
    for (int cpu = 0; cpu < static_cast<int>(queues_.size()); ++cpu) {
      const size_t depth = queues_[cpu].size() + (running_[cpu] != 0 ? 1 : 0);
      if (depth >= kSaturationDepth) {
        continue;
      }
      const bool warm = now - last_used_[cpu] <= kNestDecayNs;
      // Prefer warm cores; among them, the most recently used one.
      if (warm && (best < 0 || last_used_[cpu] > best_used)) {
        best = cpu;
        best_used = last_used_[cpu];
      }
    }
    if (best >= 0) {
      return best;
    }
    // No warm unsaturated core: expand the nest onto the least-loaded core.
    int fallback = 0;
    size_t min_depth = ~size_t{0};
    for (int cpu = 0; cpu < static_cast<int>(queues_.size()); ++cpu) {
      const size_t depth = queues_[cpu].size() + (running_[cpu] != 0 ? 1 : 0);
      if (depth < min_depth) {
        min_depth = depth;
        fallback = cpu;
      }
    }
    return fallback;
  }

  void TaskNew(const TaskMessage& msg, Schedulable sched) override { Enqueue(msg.pid, std::move(sched)); }
  void TaskWakeup(const TaskMessage& msg, Schedulable sched) override {
    Enqueue(msg.pid, std::move(sched));
  }
  void TaskPreempt(const TaskMessage& msg, Schedulable sched) override {
    Enqueue(msg.pid, std::move(sched));
  }
  void TaskYield(const TaskMessage& msg, Schedulable sched) override {
    Enqueue(msg.pid, std::move(sched));
  }

  void TaskBlocked(const TaskMessage& msg) override { Remove(msg.pid); }
  void TaskDead(uint64_t pid) override { Remove(pid); }

  std::optional<Schedulable> TaskDeparted(const TaskMessage& msg) override {
    SpinLockGuard g(lock_);
    RemoveLocked(msg.pid);
    auto it = tokens_.find(msg.pid);
    if (it == tokens_.end()) {
      return std::nullopt;
    }
    Schedulable s = std::move(it->second);
    tokens_.erase(it);
    return s;
  }

  std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) override {
    SpinLockGuard g(lock_);
    running_[cpu] = 0;
    auto& q = queues_[cpu];
    if (q.empty()) {
      return std::nullopt;
    }
    const uint64_t pid = q.front();
    q.pop_front();
    auto it = tokens_.find(pid);
    if (it == tokens_.end()) {
      return std::nullopt;
    }
    Schedulable s = std::move(it->second);
    tokens_.erase(it);
    running_[cpu] = pid;
    last_used_[cpu] = env_->Now();
    return s;
  }

  std::optional<uint64_t> Balance(int cpu) override {
    SpinLockGuard g(lock_);
    if (!queues_[cpu].empty()) {
      return std::nullopt;
    }
    // Nest keeps work compact: steal only from a *saturated* core, so a
    // momentarily idle cold core does not scatter the nest.
    for (int c = 0; c < static_cast<int>(queues_.size()); ++c) {
      if (c != cpu && queues_[c].size() >= kSaturationDepth) {
        return queues_[c].front();
      }
    }
    return std::nullopt;
  }

  Schedulable MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) override {
    SpinLockGuard g(lock_);
    RemoveLocked(msg.pid);
    queues_[msg.to_cpu].push_back(msg.pid);
    auto it = tokens_.find(msg.pid);
    ENOKI_CHECK(it != tokens_.end());
    Schedulable old = std::move(it->second);
    it->second = std::move(sched);
    return old;
  }

  void TaskTick(int cpu, uint64_t pid, Duration runtime) override {
    SpinLockGuard g(lock_);
    last_used_[cpu] = env_->Now();
    if (!queues_[cpu].empty()) {
      env_->ReschedCpu(cpu);
    }
  }

  // ---- Checkpointing (recovery ladder) ----
  // v1: the warm-core accounting only — per-CPU last-used timestamps, which
  // are what make a restored nest place wakeups onto the cores that were
  // warm before the crash instead of scattering them cold.
  bool SaveCheckpoint(ByteWriter* out) const override {
    SpinLockGuard g(lock_);
    out->U64(last_used_.size());
    for (Time t : last_used_) {
      out->U64(static_cast<uint64_t>(t));
    }
    return true;
  }

  uint32_t CheckpointVersion() const override { return 1; }

  bool LoadCheckpoint(uint32_t version, ByteReader* in) override {
    if (version != 1) {
      return false;
    }
    SpinLockGuard g(lock_);
    tokens_.clear();
    if (queues_.empty() && env_ != nullptr) {
      const size_t n = static_cast<size_t>(env_->NumCpus());
      queues_.resize(n);
      last_used_.assign(n, 0);
      running_.assign(n, 0);
    }
    for (auto& q : queues_) {
      q.clear();
    }
    std::fill(running_.begin(), running_.end(), 0);
    if (last_used_.empty()) {
      return false;  // no machine shape to restore onto
    }
    uint64_t ncpus = 0;
    if (!in->U64(&ncpus) || ncpus == 0 || ncpus > 4096) {
      return false;
    }
    // Cross-machine renormalization: saved recency folds onto live CPUs by
    // cpu % live keeping the *most recent* use (the folded core is warm if
    // any of its sources were); a grown machine's extra cores start cold.
    std::fill(last_used_.begin(), last_used_.end(), 0);
    const uint64_t live = last_used_.size();
    for (uint64_t cpu = 0; cpu < ncpus; ++cpu) {
      uint64_t t = 0;
      if (!in->U64(&t)) {
        return false;
      }
      Time& slot = last_used_[static_cast<size_t>(cpu % live)];
      slot = std::max(slot, static_cast<Time>(t));
    }
    return !in->overrun();
  }

  // Introspection: how many cores are currently warm.
  size_t WarmCoreCount() {
    SpinLockGuard g(lock_);
    size_t warm = 0;
    const Time now = env_->Now();
    for (Time used : last_used_) {
      if (now - used <= kNestDecayNs) {
        ++warm;
      }
    }
    return warm;
  }

 private:
  void Enqueue(uint64_t pid, Schedulable sched) {
    SpinLockGuard g(lock_);
    const int cpu = sched.cpu();
    queues_[cpu].push_back(pid);
    tokens_.insert_or_assign(pid, std::move(sched));
    last_used_[cpu] = env_->Now();
  }

  void Remove(uint64_t pid) {
    SpinLockGuard g(lock_);
    RemoveLocked(pid);
    tokens_.erase(pid);
  }

  void RemoveLocked(uint64_t pid) {
    for (int c = 0; c < static_cast<int>(queues_.size()); ++c) {
      if (running_[c] == pid) {
        running_[c] = 0;
      }
      auto& q = queues_[c];
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (*it == pid) {
          q.erase(it);
          return;
        }
      }
    }
  }

  const int policy_id_;
  // mutable: SaveCheckpoint is const but must still serialize readers.
  mutable SpinLock lock_;
  std::vector<std::deque<uint64_t>> queues_;
  std::unordered_map<uint64_t, Schedulable> tokens_;
  std::vector<Time> last_used_;
  std::vector<uint64_t> running_;
};

}  // namespace enoki

#endif  // SRC_SCHED_NEST_H_
