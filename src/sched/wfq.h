// The Enoki weighted-fair-queuing scheduler (section 4.2.1) — the paper's
// headline scheduler, evaluated against CFS across Tables 3-5.
//
// Like the paper's version, it computes CFS-style vruntime for per-core time
// slices but uses a much simpler placement policy: new tasks go to the
// shortest queue, waking tasks return to their previous CPU, and the only
// rebalancing is idle-time stealing — when a core is about to go idle, the
// balance callback offers the head of the longest queue. It does not
// implement CFS's hierarchical load balancing, cgroup weights, or NUMA
// logic; Table 5 shows how far that simplification goes.
//
// Per-task state is indexed by pid in plain vectors (pids are dense, assigned
// from 1), and run queues are flat sorted vectors: the per-message hash
// lookups and per-enqueue node allocations of the map-based version dominated
// the simulator profile.

#ifndef SRC_SCHED_WFQ_H_
#define SRC_SCHED_WFQ_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/base/flat_multimap.h"
#include "src/base/time.h"
#include "src/enoki/api.h"
#include "src/enoki/lock.h"
#include "src/sched/nice_weights.h"

namespace enoki {

class WfqSched : public EnokiSched {
 public:
  struct Entity {
    uint64_t vruntime = 0;
    uint64_t weight = kNice0Weight;
    Duration last_runtime = 0;      // runtime at last accounting
    Duration slice_start_runtime = 0;  // runtime when last picked
    int cpu = 0;
    bool queued = false;
    bool running = false;
    bool live = false;  // slot holds a tracked task
  };

  struct Transfer {
    std::vector<Entity> entities;                       // indexed by pid
    std::vector<std::optional<Schedulable>> tokens;     // indexed by pid
    std::vector<FlatMultimap<uint64_t, uint64_t>> queues;  // vruntime -> pid
    std::vector<uint64_t> min_vruntime;
  };

  // Scheduling parameters (CFS defaults).
  static constexpr Duration kSchedLatencyNs = 6'000'000;
  static constexpr Duration kMinGranularityNs = 750'000;
  static constexpr Duration kWakeupGranularityNs = 1'000'000;

  explicit WfqSched(int policy_id) : policy_id_(policy_id) {}

  void Attach(EnokiKernelEnv* env) override {
    EnokiSched::Attach(env);
    if (queues_.empty()) {
      queues_.resize(static_cast<size_t>(env->NumCpus()));
      min_vruntime_.assign(static_cast<size_t>(env->NumCpus()), 0);
    }
  }

  int GetPolicy() const override { return policy_id_; }

  int SelectTaskRq(const TaskMessage& msg) override;

  void TaskNew(const TaskMessage& msg, Schedulable sched) override;
  void TaskWakeup(const TaskMessage& msg, Schedulable sched) override;
  void TaskPreempt(const TaskMessage& msg, Schedulable sched) override;
  void TaskYield(const TaskMessage& msg, Schedulable sched) override;
  void TaskBlocked(const TaskMessage& msg) override;
  void TaskDead(uint64_t pid) override;
  std::optional<Schedulable> TaskDeparted(const TaskMessage& msg) override;
  void TaskPrioChanged(uint64_t pid, int nice) override;

  std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) override;
  std::optional<uint64_t> Balance(int cpu) override;
  Schedulable MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) override;
  void TaskTick(int cpu, uint64_t pid, Duration runtime) override;

  TransferState ReregisterPrepare() override;
  void ReregisterInit(TransferState state) override;

  // Checkpoint format v2: per-CPU min_vruntime cursors plus per-entity
  // accounting (vruntime, weight, runtime watermarks, home cpu). v1 (an
  // earlier format without slice_start_runtime) is still accepted by
  // LoadCheckpoint, demonstrating cross-version restores.
  bool SaveCheckpoint(ByteWriter* out) const override;
  uint32_t CheckpointVersion() const override { return 2; }
  bool LoadCheckpoint(uint32_t version, ByteReader* in) override;

  // Introspection for tests.
  size_t QueueDepth(int cpu);
  uint64_t VruntimeOf(uint64_t pid);
  uint64_t WeightOf(uint64_t pid);

 private:
  // Folds new runtime into vruntime. Caller holds lock_.
  void Account(Entity& e, Duration runtime);
  void EnqueueLocked(uint64_t pid, Entity& e, int cpu);
  void DequeueLocked(uint64_t pid, Entity& e);
  void RequeueRunnable(const TaskMessage& msg, Schedulable sched, bool clamp_vruntime);

  // Live entity for pid, or nullptr when untracked. Caller holds lock_.
  Entity* FindEnt(uint64_t pid) {
    if (pid >= entities_.size() || !entities_[pid].live) {
      return nullptr;
    }
    return &entities_[pid];
  }
  // Slot for pid, grown on demand (not marked live). Caller holds lock_.
  Entity& EntSlot(uint64_t pid) {
    if (pid >= entities_.size()) {
      entities_.resize(pid + 1);
    }
    return entities_[pid];
  }
  std::optional<Schedulable>& TokSlot(uint64_t pid) {
    if (pid >= tokens_.size()) {
      tokens_.resize(pid + 1);
    }
    return tokens_[pid];
  }

  const int policy_id_;
  // mutable: SaveCheckpoint is const but must still serialize readers.
  mutable SpinLock lock_;
  std::vector<Entity> entities_;                    // indexed by pid
  std::vector<std::optional<Schedulable>> tokens_;  // indexed by pid
  std::vector<FlatMultimap<uint64_t, uint64_t>> queues_;
  std::vector<uint64_t> min_vruntime_;
};

}  // namespace enoki

#endif  // SRC_SCHED_WFQ_H_
