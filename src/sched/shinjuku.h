// The Enoki Shinjuku scheduler (section 4.2.2): an approximation of a
// centralized first-come-first-serve queue with microsecond-scale preemption,
// implemented across the kernel's per-CPU run queues.
//
// Tasks carry a global arrival sequence number. Each CPU queue is FIFO; the
// balance callback pulls the globally oldest waiting task onto an emptying
// CPU, approximating a single FCFS queue. Every operation arms a reschedule
// timer (default 10 us, the paper's slice); when it fires with work waiting,
// the running task is preempted and requeued at the tail — Shinjuku's
// preempt-and-requeue loop that keeps short tasks from waiting behind long
// ones.

#ifndef SRC_SCHED_SHINJUKU_H_
#define SRC_SCHED_SHINJUKU_H_

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/enoki/api.h"
#include "src/enoki/lock.h"

namespace enoki {

class ShinjukuSched : public EnokiSched {
 public:
  static constexpr Duration kDefaultPreemptionSliceNs = 10'000;  // 10 us

  // `worker_cpus` restricts placement and stealing to a subset of CPUs (the
  // paper's evaluation reserves cores for the load generator and background
  // work); an empty mask means all CPUs.
  explicit ShinjukuSched(int policy_id, Duration preemption_slice = kDefaultPreemptionSliceNs,
                         CpuMask worker_cpus = CpuMask())
      : policy_id_(policy_id), slice_(preemption_slice), worker_cpus_(worker_cpus) {}

  void Attach(EnokiKernelEnv* env) override {
    EnokiSched::Attach(env);
    if (worker_cpus_.Empty()) {
      worker_cpus_ = CpuMask::All(env->NumCpus());
    }
    if (queues_.empty()) {
      const size_t n = static_cast<size_t>(env->NumCpus());
      queues_.resize(n);
      timer_armed_.assign(n, false);
      running_.assign(n, 0);
    }
  }

  int GetPolicy() const override { return policy_id_; }

  int SelectTaskRq(const TaskMessage& msg) override {
    SpinLockGuard g(lock_);
    // Shortest worker queue; FCFS order is restored globally by Balance.
    int best = -1;
    size_t best_len = ~size_t{0};
    for (int cpu = 0; cpu < static_cast<int>(queues_.size()); ++cpu) {
      if (!worker_cpus_.Test(cpu)) {
        continue;
      }
      const size_t len = queues_[cpu].size() + (running_[cpu] != 0 ? 1 : 0);
      if (len < best_len) {
        best_len = len;
        best = cpu;
      }
    }
    return best >= 0 ? best : (msg.prev_cpu >= 0 ? msg.prev_cpu : 0);
  }

  void TaskNew(const TaskMessage& msg, Schedulable sched) override { Arrive(msg.pid, std::move(sched)); }
  void TaskWakeup(const TaskMessage& msg, Schedulable sched) override {
    Arrive(msg.pid, std::move(sched));
  }

  // Preempted and yielding tasks go to the back of the FCFS order.
  void TaskPreempt(const TaskMessage& msg, Schedulable sched) override {
    Arrive(msg.pid, std::move(sched));
  }
  void TaskYield(const TaskMessage& msg, Schedulable sched) override {
    Arrive(msg.pid, std::move(sched));
  }

  void TaskBlocked(const TaskMessage& msg) override { Remove(msg.pid); }
  void TaskDead(uint64_t pid) override { Remove(pid); }

  std::optional<Schedulable> TaskDeparted(const TaskMessage& msg) override {
    SpinLockGuard g(lock_);
    RemoveLocked(msg.pid);
    auto it = tokens_.find(msg.pid);
    if (it == tokens_.end()) {
      return std::nullopt;
    }
    Schedulable s = std::move(it->second);
    tokens_.erase(it);
    return s;
  }

  std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) override {
    SpinLockGuard g(lock_);
    running_[cpu] = 0;
    auto& q = queues_[cpu];
    if (q.empty()) {
      return std::nullopt;
    }
    const uint64_t pid = q.front().pid;
    q.pop_front();
    auto it = tokens_.find(pid);
    if (it == tokens_.end()) {
      return std::nullopt;
    }
    Schedulable s = std::move(it->second);
    tokens_.erase(it);
    running_[cpu] = pid;
    ArmLocked(cpu);
    return s;
  }

  std::optional<uint64_t> Balance(int cpu) override {
    SpinLockGuard g(lock_);
    if (!queues_[cpu].empty()) {
      return std::nullopt;
    }
    // Pull the globally oldest waiting task (FCFS approximation).
    int oldest_cpu = -1;
    uint64_t oldest_seq = ~0ull;
    for (int c = 0; c < static_cast<int>(queues_.size()); ++c) {
      if (c != cpu && !queues_[c].empty() && queues_[c].front().seq < oldest_seq) {
        oldest_seq = queues_[c].front().seq;
        oldest_cpu = c;
      }
    }
    if (oldest_cpu < 0) {
      return std::nullopt;
    }
    return queues_[oldest_cpu].front().pid;
  }

  Schedulable MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) override {
    SpinLockGuard g(lock_);
    uint64_t seq = next_seq_;  // fallback: treat as fresh arrival
    for (auto& q : queues_) {
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->pid == msg.pid) {
          seq = it->seq;
          q.erase(it);
          goto moved;
        }
      }
    }
  moved:
    queues_[msg.to_cpu].push_back(Waiting{msg.pid, seq});
    SortQueueLocked(msg.to_cpu);
    auto it = tokens_.find(msg.pid);
    ENOKI_CHECK(it != tokens_.end());
    Schedulable old = std::move(it->second);
    it->second = std::move(sched);
    return old;
  }

  void TimerFired(int cpu) override {
    SpinLockGuard g(lock_);
    timer_armed_[cpu] = false;
    if (running_[cpu] != 0 && !queues_[cpu].empty()) {
      // Preempt-and-requeue: the slice expired with work waiting.
      env_->ReschedCpu(cpu);
      ArmLocked(cpu);
    }
    // With nothing waiting the timer stays quiet; the next arrival re-arms
    // it. This keeps the preemption machinery off the fast path at low
    // load, like Shinjuku's dispatcher.
  }

  void TaskTick(int cpu, uint64_t pid, Duration runtime) override {
    // The Shinjuku timer, not the system tick, drives preemption; the tick
    // re-arms the timer defensively in case it was lost.
    SpinLockGuard g(lock_);
    if (running_[cpu] != 0 && !queues_[cpu].empty()) {
      ArmLocked(cpu);
    }
  }

  TransferState ReregisterPrepare() override;
  void ReregisterInit(TransferState state) override;

  size_t QueueDepth(int cpu) {
    SpinLockGuard g(lock_);
    return queues_[cpu].size();
  }

  struct Waiting {
    uint64_t pid;
    uint64_t seq;
  };

  struct Transfer {
    std::vector<std::deque<Waiting>> queues;
    std::unordered_map<uint64_t, Schedulable> tokens;
    std::vector<uint64_t> running;
    uint64_t next_seq = 0;
  };

 private:
  void Arrive(uint64_t pid, Schedulable sched) {
    SpinLockGuard g(lock_);
    const int cpu = sched.cpu();
    queues_[cpu].push_back(Waiting{pid, next_seq_++});
    tokens_.insert_or_assign(pid, std::move(sched));
    // Every operation starts a reschedule timer (section 5.2 notes this is
    // why Shinjuku's pipe latency is slightly above WFQ's).
    ArmLocked(cpu);
  }

  void Remove(uint64_t pid) {
    SpinLockGuard g(lock_);
    RemoveLocked(pid);
    tokens_.erase(pid);
  }

  void RemoveLocked(uint64_t pid) {
    for (int c = 0; c < static_cast<int>(queues_.size()); ++c) {
      if (running_[c] == pid) {
        running_[c] = 0;
      }
      auto& q = queues_[c];
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->pid == pid) {
          q.erase(it);
          return;
        }
      }
    }
  }

  void SortQueueLocked(int cpu) {
    auto& q = queues_[cpu];
    std::sort(q.begin(), q.end(),
              [](const Waiting& a, const Waiting& b) { return a.seq < b.seq; });
  }

  void ArmLocked(int cpu) {
    if (!timer_armed_[cpu]) {
      timer_armed_[cpu] = true;
      env_->ArmTimer(cpu, slice_);
    }
  }

  const int policy_id_;
  const Duration slice_;
  CpuMask worker_cpus_;
  SpinLock lock_;
  std::vector<std::deque<Waiting>> queues_;
  std::unordered_map<uint64_t, Schedulable> tokens_;
  std::vector<uint64_t> running_;  // pid running per cpu, 0 = none
  std::vector<bool> timer_armed_;
  uint64_t next_seq_ = 1;
};

inline TransferState ShinjukuSched::ReregisterPrepare() {
  SpinLockGuard g(lock_);
  auto t = std::make_unique<Transfer>();
  t->queues = std::move(queues_);
  t->tokens = std::move(tokens_);
  t->running = std::move(running_);
  t->next_seq = next_seq_;
  queues_.clear();
  tokens_.clear();
  running_.clear();
  return TransferState::Of(std::move(t));
}

inline void ShinjukuSched::ReregisterInit(TransferState state) {
  if (state.empty()) {
    return;
  }
  auto t = state.Take<Transfer>();
  if (t == nullptr) {
    return;
  }
  SpinLockGuard g(lock_);
  queues_ = std::move(t->queues);
  tokens_ = std::move(t->tokens);
  running_ = std::move(t->running);
  next_seq_ = t->next_seq;
}

}  // namespace enoki

#endif  // SRC_SCHED_SHINJUKU_H_
