// The Enoki Shinjuku scheduler (section 4.2.2): an approximation of a
// centralized first-come-first-serve queue with microsecond-scale preemption,
// implemented across the kernel's per-CPU run queues.
//
// Tasks carry a global arrival sequence number. Each CPU queue is FIFO; the
// balance callback pulls the globally oldest waiting task onto an emptying
// CPU, approximating a single FCFS queue. Every operation arms a reschedule
// timer (default 10 us, the paper's slice); when it fires with work waiting,
// the running task is preempted and requeued at the tail — Shinjuku's
// preempt-and-requeue loop that keeps short tasks from waiting behind long
// ones.
//
// Tokens are held in a pid-indexed vector and run queues in flat sorted
// vectors (seq -> pid), mirroring WFQ: the previous unordered_map token
// table cost one node allocation per request arrival plus one free per pick,
// which dominated the dispersive config's allocation profile.

#ifndef SRC_SCHED_SHINJUKU_H_
#define SRC_SCHED_SHINJUKU_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/base/flat_multimap.h"
#include "src/enoki/api.h"
#include "src/enoki/lock.h"

namespace enoki {

class ShinjukuSched : public EnokiSched {
 public:
  static constexpr Duration kDefaultPreemptionSliceNs = 10'000;  // 10 us

  // `worker_cpus` restricts placement and stealing to a subset of CPUs (the
  // paper's evaluation reserves cores for the load generator and background
  // work); an empty mask means all CPUs.
  explicit ShinjukuSched(int policy_id, Duration preemption_slice = kDefaultPreemptionSliceNs,
                         CpuMask worker_cpus = CpuMask())
      : policy_id_(policy_id), slice_(preemption_slice), worker_cpus_(worker_cpus) {}

  void Attach(EnokiKernelEnv* env) override {
    EnokiSched::Attach(env);
    if (worker_cpus_.Empty()) {
      worker_cpus_ = CpuMask::All(env->NumCpus());
    }
    if (queues_.empty()) {
      const size_t n = static_cast<size_t>(env->NumCpus());
      queues_.resize(n);
      timer_armed_.assign(n, false);
      running_.assign(n, 0);
    }
  }

  int GetPolicy() const override { return policy_id_; }

  int SelectTaskRq(const TaskMessage& msg) override {
    SpinLockGuard g(lock_);
    // Shortest worker queue; FCFS order is restored globally by Balance.
    int best = -1;
    size_t best_len = ~size_t{0};
    for (int cpu = 0; cpu < static_cast<int>(queues_.size()); ++cpu) {
      if (!worker_cpus_.Test(cpu)) {
        continue;
      }
      const size_t len = queues_[cpu].size() + (running_[cpu] != 0 ? 1 : 0);
      if (len < best_len) {
        best_len = len;
        best = cpu;
      }
    }
    return best >= 0 ? best : (msg.prev_cpu >= 0 ? msg.prev_cpu : 0);
  }

  void TaskNew(const TaskMessage& msg, Schedulable sched) override { Arrive(msg.pid, std::move(sched)); }
  void TaskWakeup(const TaskMessage& msg, Schedulable sched) override {
    Arrive(msg.pid, std::move(sched));
  }

  // Preempted and yielding tasks go to the back of the FCFS order.
  void TaskPreempt(const TaskMessage& msg, Schedulable sched) override {
    Arrive(msg.pid, std::move(sched));
  }
  void TaskYield(const TaskMessage& msg, Schedulable sched) override {
    Arrive(msg.pid, std::move(sched));
  }

  void TaskBlocked(const TaskMessage& msg) override { Remove(msg.pid); }
  void TaskDead(uint64_t pid) override { Remove(pid); }

  std::optional<Schedulable> TaskDeparted(const TaskMessage& msg) override {
    SpinLockGuard g(lock_);
    RemoveLocked(msg.pid);
    if (msg.pid >= tokens_.size() || !tokens_[msg.pid].has_value()) {
      return std::nullopt;
    }
    Schedulable s = std::move(*tokens_[msg.pid]);
    tokens_[msg.pid].reset();
    return s;
  }

  std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) override {
    SpinLockGuard g(lock_);
    running_[cpu] = 0;
    auto& q = queues_[cpu];
    if (q.empty()) {
      return std::nullopt;
    }
    const uint64_t pid = q.front().second;
    q.pop_front();
    if (pid >= tokens_.size() || !tokens_[pid].has_value()) {
      return std::nullopt;
    }
    Schedulable s = std::move(*tokens_[pid]);
    tokens_[pid].reset();
    running_[cpu] = pid;
    ArmLocked(cpu);
    return s;
  }

  std::optional<uint64_t> Balance(int cpu) override {
    SpinLockGuard g(lock_);
    if (!queues_[cpu].empty()) {
      return std::nullopt;
    }
    // Pull the globally oldest waiting task (FCFS approximation).
    int oldest_cpu = -1;
    uint64_t oldest_seq = ~0ull;
    for (int c = 0; c < static_cast<int>(queues_.size()); ++c) {
      if (c != cpu && !queues_[c].empty() && queues_[c].front().first < oldest_seq) {
        oldest_seq = queues_[c].front().first;
        oldest_cpu = c;
      }
    }
    if (oldest_cpu < 0) {
      return std::nullopt;
    }
    return queues_[oldest_cpu].front().second;
  }

  Schedulable MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) override {
    SpinLockGuard g(lock_);
    uint64_t seq = next_seq_;  // fallback: treat as fresh arrival
    for (auto& q : queues_) {
      bool found = false;
      for (size_t i = 0; i < q.size(); ++i) {
        if (q[i].second == msg.pid) {
          seq = q[i].first;
          q.erase_at(i);
          found = true;
          break;
        }
      }
      if (found) {
        break;
      }
    }
    queues_[msg.to_cpu].emplace(seq, msg.pid);
    ENOKI_CHECK(msg.pid < tokens_.size() && tokens_[msg.pid].has_value());
    Schedulable old = std::move(*tokens_[msg.pid]);
    tokens_[msg.pid] = std::move(sched);
    return old;
  }

  void TimerFired(int cpu) override {
    SpinLockGuard g(lock_);
    timer_armed_[cpu] = false;
    if (running_[cpu] != 0 && !queues_[cpu].empty()) {
      // Preempt-and-requeue: the slice expired with work waiting.
      env_->ReschedCpu(cpu);
      ArmLocked(cpu);
    }
    // With nothing waiting the timer stays quiet; the next arrival re-arms
    // it. This keeps the preemption machinery off the fast path at low
    // load, like Shinjuku's dispatcher.
  }

  void TaskTick(int cpu, uint64_t pid, Duration runtime) override {
    // The Shinjuku timer, not the system tick, drives preemption; the tick
    // re-arms the timer defensively in case it was lost.
    SpinLockGuard g(lock_);
    if (running_[cpu] != 0 && !queues_[cpu].empty()) {
      ArmLocked(cpu);
    }
  }

  TransferState ReregisterPrepare() override;
  void ReregisterInit(TransferState state) override;

  // Checkpoint format v1: the global arrival sequence cursor. Queue
  // membership and tokens are kernel-side state, re-injected as fresh
  // wakeups after a restore; preserving the cursor keeps FCFS ages from
  // colliding with pre-crash history.
  bool SaveCheckpoint(ByteWriter* out) const override {
    SpinLockGuard g(lock_);
    out->U64(next_seq_);
    return true;
  }
  uint32_t CheckpointVersion() const override { return 1; }
  bool LoadCheckpoint(uint32_t version, ByteReader* in) override {
    if (version != 1) {
      return false;
    }
    SpinLockGuard g(lock_);
    tokens_.clear();
    // A rollback target had its vectors moved out by ReregisterPrepare.
    if (queues_.empty() && env_ != nullptr) {
      const size_t n = static_cast<size_t>(env_->NumCpus());
      queues_.resize(n);
      timer_armed_.assign(n, false);
    }
    for (auto& q : queues_) {
      q.clear();
    }
    running_.assign(queues_.size(), 0);
    uint64_t seq = 0;
    if (!in->U64(&seq) || seq == 0) {
      return false;
    }
    next_seq_ = seq;
    return !in->overrun();
  }

  size_t QueueDepth(int cpu) {
    SpinLockGuard g(lock_);
    return queues_[cpu].size();
  }

  uint64_t next_seq() {
    SpinLockGuard g(lock_);
    return next_seq_;
  }

  struct Transfer {
    std::vector<FlatMultimap<uint64_t, uint64_t>> queues;  // seq -> pid
    std::vector<std::optional<Schedulable>> tokens;
    std::vector<uint64_t> running;
    uint64_t next_seq = 0;
  };

 private:
  void Arrive(uint64_t pid, Schedulable sched) {
    SpinLockGuard g(lock_);
    const int cpu = sched.cpu();
    queues_[cpu].emplace(next_seq_++, pid);
    TokSlot(pid) = std::move(sched);
    // Every operation starts a reschedule timer (section 5.2 notes this is
    // why Shinjuku's pipe latency is slightly above WFQ's).
    ArmLocked(cpu);
  }

  void Remove(uint64_t pid) {
    SpinLockGuard g(lock_);
    RemoveLocked(pid);
    if (pid < tokens_.size()) {
      tokens_[pid].reset();
    }
  }

  void RemoveLocked(uint64_t pid) {
    for (int c = 0; c < static_cast<int>(queues_.size()); ++c) {
      if (running_[c] == pid) {
        running_[c] = 0;
      }
      auto& q = queues_[c];
      for (size_t i = 0; i < q.size(); ++i) {
        if (q[i].second == pid) {
          q.erase_at(i);
          return;
        }
      }
    }
  }

  void ArmLocked(int cpu) {
    if (!timer_armed_[cpu]) {
      timer_armed_[cpu] = true;
      env_->ArmTimer(cpu, slice_);
    }
  }

  std::optional<Schedulable>& TokSlot(uint64_t pid) {
    if (pid >= tokens_.size()) {
      tokens_.resize(pid + 1);
    }
    return tokens_[pid];
  }

  const int policy_id_;
  const Duration slice_;
  CpuMask worker_cpus_;
  // mutable: SaveCheckpoint is const but must still serialize readers.
  mutable SpinLock lock_;
  std::vector<FlatMultimap<uint64_t, uint64_t>> queues_;  // seq -> pid
  std::vector<std::optional<Schedulable>> tokens_;        // indexed by pid
  std::vector<uint64_t> running_;  // pid running per cpu, 0 = none
  std::vector<bool> timer_armed_;
  uint64_t next_seq_ = 1;
};

inline TransferState ShinjukuSched::ReregisterPrepare() {
  SpinLockGuard g(lock_);
  auto t = std::make_unique<Transfer>();
  t->queues = std::move(queues_);
  t->tokens = std::move(tokens_);
  t->running = std::move(running_);
  t->next_seq = next_seq_;
  queues_.clear();
  tokens_.clear();
  running_.clear();
  return TransferState::Of(std::move(t));
}

inline void ShinjukuSched::ReregisterInit(TransferState state) {
  if (state.empty()) {
    return;
  }
  auto t = state.Take<Transfer>();
  if (t == nullptr) {
    return;
  }
  SpinLockGuard g(lock_);
  queues_ = std::move(t->queues);
  tokens_ = std::move(t->tokens);
  running_ = std::move(t->running);
  next_seq_ = t->next_seq;
}

}  // namespace enoki

#endif  // SRC_SCHED_SHINJUKU_H_
