// Model of ghOSt (Humphries et al., SOSP'21), the paper's main baseline
// framework (section 4.2.2).
//
// ghOSt delegates scheduling policy to userspace agents: the kernel
// component forwards every task event as a message to an agent, and the
// agent responds asynchronously with per-CPU transaction commits naming the
// task to run. The kernel never waits for the agent — if no commitment is
// available at pick time, the CPU idles (or falls through to CFS). The two
// costs the paper attributes to ghOSt — agent scheduling latency and stale
// asynchronous decisions — are exactly the mechanisms modeled here.
//
// Three agent policies are provided, matching the paper's baselines:
//  - kPerCpuFifo: one agent per CPU, sharing that CPU with the workload;
//  - kSol: a single latency-optimized global FIFO agent spinning on a
//    dedicated CPU;
//  - kShinjuku: the ghOSt version of the Shinjuku policy (centralized FCFS
//    with 10 us preemption), spinning on a dedicated CPU.
//
// GhostClass is the kernel component (a native SchedClass); agents run as
// simulated tasks under AgentClass, a higher-priority class, and drive the
// policy via GhostClass::AgentProcess.

#ifndef SRC_SCHED_GHOST_H_
#define SRC_SCHED_GHOST_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/cpumask.h"
#include "src/enoki/checkpoint.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_class.h"
#include "src/simkernel/sched_core.h"

namespace enoki {

// Runs the per-CPU agent tasks: at most one agent bound to each CPU,
// strictly above the ghost class (and CFS) in class priority so a woken
// agent preempts the workload on its CPU.
class AgentClass : public SchedClass {
 public:
  const char* name() const override { return "ghost_agent"; }
  void Attach(SchedCore* core) override {
    SchedClass::Attach(core);
    queued_.assign(static_cast<size_t>(core->ncpus()), nullptr);
  }
  int SelectTaskRq(Task* t, int prev_cpu, bool wake_sync, bool is_new) override {
    return t->affinity().First();
  }
  void EnqueueTask(int cpu, Task* t, bool wakeup) override {
    ENOKI_CHECK(queued_[cpu] == nullptr);
    queued_[cpu] = t;
  }
  void DequeueTask(int cpu, Task* t, DequeueReason reason) override {
    if (queued_[cpu] == t) {
      queued_[cpu] = nullptr;
    }
  }
  Task* PickNextTask(int cpu) override {
    Task* t = queued_[cpu];
    queued_[cpu] = nullptr;
    return t;
  }
  void TaskPreempted(int cpu, Task* t) override { queued_[cpu] = t; }
  void TaskYielded(int cpu, Task* t) override { queued_[cpu] = t; }
  void TaskTick(int cpu, Task* t) override {}

 private:
  std::vector<Task*> queued_;
};

class GhostClass : public SchedClass {
 public:
  enum class Mode { kPerCpuFifo, kSol, kShinjuku };

  struct Msg {
    enum class Type { kNew, kWakeup, kBlocked, kDead, kPreempt, kYield };
    Type type;
    uint64_t pid;
    int cpu;
  };

  static constexpr Duration kAgentSpinQuantumNs = 2'000;
  static constexpr Duration kShinjukuSliceNs = 10'000;

  GhostClass(Mode mode, CpuMask worker_cpus) : mode_(mode), worker_cpus_(worker_cpus) {}

  // ---- SchedClass (the ghOSt kernel component) ----
  const char* name() const override { return "ghost"; }
  void Attach(SchedCore* core) override;
  int SelectTaskRq(Task* t, int prev_cpu, bool wake_sync, bool is_new) override;
  void EnqueueTask(int cpu, Task* t, bool wakeup) override;
  void DequeueTask(int cpu, Task* t, DequeueReason reason) override;
  Task* PickNextTask(int cpu) override;
  void TaskPreempted(int cpu, Task* t) override;
  void TaskYielded(int cpu, Task* t) override;
  void TaskTick(int cpu, Task* t) override {}

  // Spawns the agent task(s). For kPerCpuFifo one agent per worker CPU; for
  // kSol/kShinjuku a single agent pinned to `agent_cpu`. `agent_policy` is
  // the policy id of the AgentClass registration.
  void SpawnAgents(int agent_policy, int agent_cpu);

  // ---- Agent side ----
  // Processes one unit of agent work for agent `idx`; returns the CPU time
  // the agent consumed, or 0 when there was nothing to do.
  Duration AgentProcess(int idx);
  bool AgentSpins() const { return mode_ != Mode::kPerCpuFifo; }

  uint64_t commits() const { return commits_; }
  uint64_t messages() const { return messages_; }

  // ---- Checkpointing ----
  // GhostClass is a native SchedClass, not an EnokiSched, so it cannot ride
  // the EnokiRuntime recovery ladder — but it honors the same versioned,
  // bounds-guarded checkpoint contract so every in-tree policy round-trips.
  // v1 serializes the agent-side accounting cursors (arrival sequence,
  // round-robin placement cursor, commit/message counters); task tables,
  // queues, and in-flight commits are kernel-side bookkeeping rebuilt from
  // live task events, exactly as Enoki checkpoints exclude queue membership.
  bool SaveCheckpoint(ByteWriter* out) const;
  uint32_t CheckpointVersion() const { return 1; }
  bool LoadCheckpoint(uint32_t version, ByteReader* in);

 private:
  struct GTask {
    bool runnable = false;
    int running_cpu = -1;
    int home_cpu = 0;        // per-CPU FIFO assignment
    uint64_t seq = 0;        // global arrival order
  };

  int AgentIndexFor(int cpu) const { return mode_ == Mode::kPerCpuFifo ? cpu : 0; }
  void SendMsg(Msg::Type type, uint64_t pid, int cpu);
  void Commit(int target_cpu, uint64_t pid, int agent_cpu);
  void TryCommitPerCpu(int cpu, int agent_cpu);
  void TryCommitGlobal(int agent_cpu);
  void ShinjukuScan(int agent_cpu);

  const Mode mode_;
  const CpuMask worker_cpus_;
  std::unordered_map<uint64_t, GTask> tasks_;
  std::vector<uint64_t> committed_;  // per-cpu committed pid (0 = none)
  std::vector<uint64_t> running_;    // per-cpu running pid (0 = none)
  std::vector<Time> running_since_;

  // Policy queues (agent state).
  std::vector<std::deque<uint64_t>> fifo_;  // per-cpu (per-cpu mode)
  std::deque<uint64_t> global_fifo_;        // SOL / Shinjuku

  // Message channels, one per agent.
  std::vector<std::deque<Msg>> msgq_;
  std::vector<std::unique_ptr<WaitQueue>> agent_wq_;
  std::vector<Task*> agents_;
  std::vector<int> agent_cpus_;

  uint64_t next_seq_ = 1;
  uint64_t commits_ = 0;
  uint64_t messages_ = 0;
  int rr_cpu_ = 0;
};

}  // namespace enoki

#endif  // SRC_SCHED_GHOST_H_
