#include "src/sched/ghost.h"

#include <string>

namespace enoki {

void GhostClass::Attach(SchedCore* core) {
  SchedClass::Attach(core);
  const size_t n = static_cast<size_t>(core->ncpus());
  committed_.assign(n, 0);
  running_.assign(n, 0);
  running_since_.assign(n, 0);
  fifo_.resize(n);
  const size_t agents = mode_ == Mode::kPerCpuFifo ? n : 1;
  msgq_.resize(agents);
  for (size_t i = 0; i < agents; ++i) {
    agent_wq_.push_back(std::make_unique<WaitQueue>("ghost-agent-wq"));
  }
}

void GhostClass::SpawnAgents(int agent_policy, int agent_cpu) {
  if (mode_ == Mode::kPerCpuFifo) {
    for (int cpu = 0; cpu < core_->ncpus(); ++cpu) {
      if (!worker_cpus_.Test(cpu)) {
        agents_.push_back(nullptr);
        agent_cpus_.push_back(cpu);
        continue;
      }
      const int idx = cpu;
      Task* agent = core_->CreateTaskOn(
          "ghost-agent-" + std::to_string(cpu),
          MakeFnBody([this, idx](SimContext& ctx) -> Action {
            const Duration cost = AgentProcess(idx);
            if (cost > 0) {
              return Action::Compute(cost);
            }
            return Action::Block(agent_wq_[idx].get());
          }),
          agent_policy, 0, CpuMask::Single(cpu));
      agents_.push_back(agent);
      agent_cpus_.push_back(cpu);
    }
    return;
  }
  // Global agent spinning on a dedicated CPU.
  Task* agent = core_->CreateTaskOn(
      "ghost-agent-global",
      MakeFnBody([this](SimContext& ctx) -> Action {
        const Duration cost = AgentProcess(0);
        if (cost > 0) {
          return Action::Compute(cost);
        }
        // SOL/Shinjuku agents spin, polling their channels.
        return Action::Compute(kAgentSpinQuantumNs);
      }),
      agent_policy, 0, CpuMask::Single(agent_cpu));
  agents_.push_back(agent);
  agent_cpus_.push_back(agent_cpu);
}

void GhostClass::SendMsg(Msg::Type type, uint64_t pid, int cpu) {
  ++messages_;
  core_->ChargeCpu(cpu, core_->costs().ghost_msg_ns);
  const int idx = AgentIndexFor(cpu);
  msgq_[idx].push_back(Msg{type, pid, cpu});
  if (mode_ == Mode::kPerCpuFifo) {
    // Wake the (blocked) agent after message-transit latency. Deferring via
    // the event loop also models the asynchrony: the kernel proceeds without
    // waiting for the agent.
    WaitQueue* wq = agent_wq_[idx].get();
    core_->loop().ScheduleAfter(core_->costs().ghost_msg_ns, [this, wq, cpu] {
      if (wq->waiter_count() > 0) {
        core_->Signal(wq, /*sync=*/false, /*from_cpu=*/cpu);
      }
    });
  }
  // Spinning agents poll the channel; no wakeup needed.
}

int GhostClass::SelectTaskRq(Task* t, int prev_cpu, bool wake_sync, bool is_new) {
  if (mode_ == Mode::kPerCpuFifo && is_new) {
    // Round-robin new tasks across worker CPUs.
    for (int i = 0; i < core_->ncpus(); ++i) {
      rr_cpu_ = (rr_cpu_ + 1) % core_->ncpus();
      if (worker_cpus_.Test(rr_cpu_) && t->affinity().Test(rr_cpu_)) {
        return rr_cpu_;
      }
    }
  }
  if (prev_cpu >= 0 && worker_cpus_.Test(prev_cpu) && t->affinity().Test(prev_cpu)) {
    return prev_cpu;
  }
  const CpuMask allowed = worker_cpus_.Intersect(t->affinity());
  return allowed.Empty() ? t->affinity().First() : allowed.First();
}

void GhostClass::EnqueueTask(int cpu, Task* t, bool wakeup) {
  GTask& gt = tasks_[t->pid()];
  gt.runnable = true;
  gt.running_cpu = -1;
  gt.home_cpu = cpu;
  gt.seq = next_seq_++;
  SendMsg(wakeup ? Msg::Type::kWakeup : Msg::Type::kNew, t->pid(), cpu);
}

void GhostClass::DequeueTask(int cpu, Task* t, DequeueReason reason) {
  auto it = tasks_.find(t->pid());
  if (it != tasks_.end()) {
    it->second.runnable = false;
    it->second.running_cpu = -1;
  }
  if (running_[cpu] == t->pid()) {
    running_[cpu] = 0;
  }
  for (auto& c : committed_) {
    if (c == t->pid()) {
      c = 0;
    }
  }
  if (reason == DequeueReason::kDead) {
    SendMsg(Msg::Type::kDead, t->pid(), cpu);
    tasks_.erase(t->pid());
  } else {
    SendMsg(Msg::Type::kBlocked, t->pid(), cpu);
  }
}

Task* GhostClass::PickNextTask(int cpu) {
  running_[cpu] = 0;
  const uint64_t pid = committed_[cpu];
  committed_[cpu] = 0;
  Task* t = nullptr;
  if (pid != 0) {
    auto it = tasks_.find(pid);
    if (it != tasks_.end() && it->second.runnable && it->second.running_cpu < 0) {
      t = core_->FindTask(pid);
      if (t != nullptr && t->state() == TaskState::kRunnable) {
        it->second.running_cpu = cpu;
        running_[cpu] = pid;
        running_since_[cpu] = core_->now();
        return t;
      }
    }
    // Stale commit: the asynchronous decision is out of date.
  }
  // Going idle with policy work still queued: nudge the per-CPU agent so a
  // fresh commit arrives (the CPU_AVAILABLE message in real ghOSt).
  if (mode_ == Mode::kPerCpuFifo && !fifo_[cpu].empty()) {
    SendMsg(Msg::Type::kBlocked, 0, cpu);
  }
  return nullptr;
}

void GhostClass::TaskPreempted(int cpu, Task* t) {
  GTask& gt = tasks_[t->pid()];
  gt.runnable = true;
  gt.running_cpu = -1;
  gt.seq = next_seq_++;
  if (running_[cpu] == t->pid()) {
    running_[cpu] = 0;
  }
  SendMsg(Msg::Type::kPreempt, t->pid(), cpu);
}

void GhostClass::TaskYielded(int cpu, Task* t) {
  GTask& gt = tasks_[t->pid()];
  gt.runnable = true;
  gt.running_cpu = -1;
  gt.seq = next_seq_++;
  if (running_[cpu] == t->pid()) {
    running_[cpu] = 0;
  }
  SendMsg(Msg::Type::kYield, t->pid(), cpu);
}

void GhostClass::Commit(int target_cpu, uint64_t pid, int agent_cpu) {
  ++commits_;
  committed_[target_cpu] = pid;
  core_->KickCpu(target_cpu, agent_cpu);
}

void GhostClass::TryCommitPerCpu(int cpu, int agent_cpu) {
  if (committed_[cpu] != 0 || running_[cpu] != 0) {
    return;
  }
  auto& q = fifo_[cpu];
  for (auto it = q.begin(); it != q.end();) {
    const uint64_t pid = *it;
    auto task_it = tasks_.find(pid);
    if (task_it == tasks_.end() || !task_it->second.runnable ||
        task_it->second.running_cpu >= 0) {
      it = q.erase(it);
      continue;
    }
    Task* t = core_->FindTask(pid);
    if (t == nullptr || !t->affinity().Test(cpu)) {
      ++it;
      continue;
    }
    q.erase(it);
    Commit(cpu, pid, agent_cpu);
    return;
  }
}

void GhostClass::TryCommitGlobal(int agent_cpu) {
  for (int cpu = 0; cpu < core_->ncpus() && !global_fifo_.empty(); ++cpu) {
    if (!worker_cpus_.Test(cpu) || committed_[cpu] != 0 || running_[cpu] != 0) {
      continue;
    }
    for (auto it = global_fifo_.begin(); it != global_fifo_.end();) {
      const uint64_t pid = *it;
      auto task_it = tasks_.find(pid);
      if (task_it == tasks_.end() || !task_it->second.runnable ||
          task_it->second.running_cpu >= 0) {
        it = global_fifo_.erase(it);
        continue;
      }
      Task* t = core_->FindTask(pid);
      if (t == nullptr || !t->affinity().Test(cpu)) {
        ++it;  // this CPU is not allowed for the queue head; try the next task
        continue;
      }
      global_fifo_.erase(it);
      Commit(cpu, pid, agent_cpu);
      break;
    }
  }
}

void GhostClass::ShinjukuScan(int agent_cpu) {
  if (global_fifo_.empty()) {
    return;
  }
  for (int cpu = 0; cpu < core_->ncpus(); ++cpu) {
    if (!worker_cpus_.Test(cpu) || running_[cpu] == 0 || committed_[cpu] != 0) {
      continue;
    }
    if (core_->now() - running_since_[cpu] >= kShinjukuSliceNs) {
      // Preempt-and-requeue: commit the first eligible waiter over the long
      // runner.
      bool committed = false;
      for (auto it = global_fifo_.begin(); it != global_fifo_.end();) {
        const uint64_t pid = *it;
        auto task_it = tasks_.find(pid);
        if (task_it == tasks_.end() || !task_it->second.runnable ||
            task_it->second.running_cpu >= 0) {
          it = global_fifo_.erase(it);
          continue;
        }
        Task* t = core_->FindTask(pid);
        if (t == nullptr || !t->affinity().Test(cpu)) {
          ++it;
          continue;
        }
        global_fifo_.erase(it);
        Commit(cpu, pid, agent_cpu);
        committed = true;
        break;
      }
      if (committed && global_fifo_.empty()) {
        return;
      }
    }
  }
}

bool GhostClass::SaveCheckpoint(ByteWriter* out) const {
  out->U64(next_seq_);
  out->U64(commits_);
  out->U64(messages_);
  out->U64(static_cast<uint64_t>(rr_cpu_));
  return true;
}

bool GhostClass::LoadCheckpoint(uint32_t version, ByteReader* in) {
  if (version != 1) {
    return false;
  }
  uint64_t seq = 0, commits = 0, messages = 0, rr = 0;
  if (!in->U64(&seq) || !in->U64(&commits) || !in->U64(&messages) || !in->U64(&rr)) {
    return false;
  }
  // Sequence numbers start at 1; a zero cursor would mint duplicate arrival
  // orders. Reject absurd cursors even when the checksum happened to pass.
  if (seq == 0 || rr > 4096) {
    return false;
  }
  if (in->overrun()) {
    return false;
  }
  next_seq_ = seq;
  commits_ = commits;
  messages_ = messages;
  // Cross-machine renormalization: the round-robin cursor remaps by % live
  // when the restored machine has fewer CPUs than the one that saved.
  const uint64_t live = committed_.empty() ? (rr + 1) : committed_.size();
  rr_cpu_ = static_cast<int>(rr % live);
  return true;
}

Duration GhostClass::AgentProcess(int idx) {
  const SimCosts& costs = core_->costs();
  const int agent_cpu = agent_cpus_.empty() ? 0 : agent_cpus_[idx];
  if (!msgq_[idx].empty()) {
    const Msg msg = msgq_[idx].front();
    msgq_[idx].pop_front();
    const uint64_t commits_before = commits_;
    switch (msg.type) {
      case Msg::Type::kNew:
      case Msg::Type::kWakeup:
      case Msg::Type::kPreempt:
      case Msg::Type::kYield:
        if (mode_ == Mode::kPerCpuFifo) {
          fifo_[msg.cpu].push_back(msg.pid);
          TryCommitPerCpu(msg.cpu, agent_cpu);
        } else {
          global_fifo_.push_back(msg.pid);
          TryCommitGlobal(agent_cpu);
        }
        break;
      case Msg::Type::kBlocked:
      case Msg::Type::kDead:
        if (mode_ == Mode::kPerCpuFifo) {
          TryCommitPerCpu(msg.cpu, agent_cpu);
        } else {
          TryCommitGlobal(agent_cpu);
        }
        break;
    }
    const uint64_t ncommits = commits_ - commits_before;
    return costs.ghost_agent_op_ns + ncommits * costs.ghost_commit_ns;
  }
  if (mode_ == Mode::kShinjuku) {
    const uint64_t commits_before = commits_;
    ShinjukuScan(agent_cpu);
    const uint64_t ncommits = commits_ - commits_before;
    if (ncommits > 0) {
      return ncommits * costs.ghost_commit_ns;
    }
  }
  if (mode_ != Mode::kPerCpuFifo) {
    // Idle CPUs may still have work queued (e.g. a commit went stale).
    const uint64_t commits_before = commits_;
    TryCommitGlobal(agent_cpu);
    if (commits_ != commits_before) {
      return (commits_ - commits_before) * costs.ghost_commit_ns;
    }
  }
  return 0;
}

}  // namespace enoki
