// The paper's worked example (section 2): a per-core first-come-first-serve
// Enoki scheduler. This is the "hello world" of the framework and the module
// used by the quickstart example: it keeps a queue of tasks per core,
// schedules them FCFS, and steals from the longest queue when a core would
// otherwise idle (via the balance callback, exactly as section 3.1's
// narrative describes).

#ifndef SRC_SCHED_FIFO_H_
#define SRC_SCHED_FIFO_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/enoki/api.h"
#include "src/enoki/lock.h"

namespace enoki {

class FifoSched : public EnokiSched {
 public:
  // State handed across live upgrades.
  struct Transfer {
    std::vector<std::deque<uint64_t>> queues;
    std::unordered_map<uint64_t, Schedulable> tokens;
    int next_cpu = 0;
  };

  explicit FifoSched(int policy_id) : policy_id_(policy_id) {}

  void Attach(EnokiKernelEnv* env) override {
    EnokiSched::Attach(env);
    if (queues_.empty()) {
      queues_.resize(static_cast<size_t>(env->NumCpus()));
    }
  }

  int GetPolicy() const override { return policy_id_; }

  int SelectTaskRq(const TaskMessage& msg) override {
    SpinLockGuard g(lock_);
    if (msg.is_new) {
      // Round-robin placement for new tasks.
      const int cpu = next_cpu_;
      next_cpu_ = (next_cpu_ + 1) % env_->NumCpus();
      return cpu;
    }
    return msg.prev_cpu >= 0 ? msg.prev_cpu : 0;
  }

  void TaskNew(const TaskMessage& msg, Schedulable sched) override { Enqueue(msg.pid, std::move(sched)); }
  void TaskWakeup(const TaskMessage& msg, Schedulable sched) override {
    Enqueue(msg.pid, std::move(sched));
  }
  void TaskPreempt(const TaskMessage& msg, Schedulable sched) override {
    Enqueue(msg.pid, std::move(sched));
  }
  void TaskYield(const TaskMessage& msg, Schedulable sched) override {
    Enqueue(msg.pid, std::move(sched));
  }

  void TaskBlocked(const TaskMessage& msg) override { Remove(msg.pid); }
  void TaskDead(uint64_t pid) override { Remove(pid); }

  std::optional<Schedulable> TaskDeparted(const TaskMessage& msg) override {
    SpinLockGuard g(lock_);
    RemoveLocked(msg.pid);
    auto it = tokens_.find(msg.pid);
    if (it == tokens_.end()) {
      return std::nullopt;
    }
    Schedulable s = std::move(it->second);
    tokens_.erase(it);
    return s;
  }

  std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) override {
    SpinLockGuard g(lock_);
    auto& q = queues_[cpu];
    if (q.empty()) {
      return std::nullopt;
    }
    const uint64_t pid = q.front();
    q.pop_front();
    auto it = tokens_.find(pid);
    if (it == tokens_.end()) {
      return std::nullopt;
    }
    Schedulable s = std::move(it->second);
    tokens_.erase(it);
    return s;
  }

  std::optional<uint64_t> Balance(int cpu) override {
    SpinLockGuard g(lock_);
    if (!queues_[cpu].empty()) {
      return std::nullopt;
    }
    // Steal the head of the longest queue.
    int busiest = -1;
    size_t best = 1;  // require at least one waiting task
    for (int c = 0; c < static_cast<int>(queues_.size()); ++c) {
      if (c != cpu && queues_[c].size() >= best) {
        best = queues_[c].size();
        busiest = c;
      }
    }
    if (busiest < 0) {
      return std::nullopt;
    }
    return queues_[busiest].front();
  }

  Schedulable MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) override {
    SpinLockGuard g(lock_);
    RemoveLocked(msg.pid);
    queues_[msg.to_cpu].push_back(msg.pid);
    auto it = tokens_.find(msg.pid);
    ENOKI_CHECK(it != tokens_.end());
    Schedulable old = std::move(it->second);
    it->second = std::move(sched);
    return old;
  }

  void TaskTick(int cpu, uint64_t pid, Duration runtime) override {
    // Round-robin among waiting tasks: ask for a resched when others wait.
    SpinLockGuard g(lock_);
    if (!queues_[cpu].empty()) {
      env_->ReschedCpu(cpu);
    }
  }

  TransferState ReregisterPrepare() override {
    SpinLockGuard g(lock_);
    auto t = std::make_unique<Transfer>();
    t->queues = std::move(queues_);
    t->tokens = std::move(tokens_);
    t->next_cpu = next_cpu_;
    queues_.clear();
    tokens_.clear();
    return TransferState::Of(std::move(t));
  }

  void ReregisterInit(TransferState state) override {
    if (state.empty()) {
      return;
    }
    auto t = state.Take<Transfer>();
    if (t == nullptr) {
      return;  // incompatible transfer type; start fresh
    }
    SpinLockGuard g(lock_);
    queues_ = std::move(t->queues);
    tokens_ = std::move(t->tokens);
    next_cpu_ = t->next_cpu;
  }

  // Checkpoint v1: FIFO's only accounting state is the round-robin
  // placement cursor. Queue membership and tokens are reconstructed by the
  // runtime's post-restore wakeup re-injection.
  bool SaveCheckpoint(ByteWriter* out) const override {
    SpinLockGuard g(lock_);
    out->U64(static_cast<uint64_t>(next_cpu_));
    return true;
  }
  uint32_t CheckpointVersion() const override { return 1; }
  bool LoadCheckpoint(uint32_t version, ByteReader* in) override {
    if (version != 1) {
      return false;
    }
    uint64_t cursor = 0;
    if (!in->U64(&cursor)) {
      return false;
    }
    SpinLockGuard g(lock_);
    // A rollback target had its queues moved out by ReregisterPrepare;
    // rebuild them before restoring the cursor.
    if (queues_.empty() && env_ != nullptr) {
      queues_.resize(static_cast<size_t>(env_->NumCpus()));
    }
    for (auto& q : queues_) {
      q.clear();
    }
    tokens_.clear();
    next_cpu_ = queues_.empty() ? 0 : static_cast<int>(cursor % queues_.size());
    return true;
  }

  size_t QueueDepth(int cpu) {
    SpinLockGuard g(lock_);
    return queues_[cpu].size();
  }

 private:
  void Enqueue(uint64_t pid, Schedulable sched) {
    SpinLockGuard g(lock_);
    queues_[sched.cpu()].push_back(pid);
    tokens_.insert_or_assign(pid, std::move(sched));
  }

  void Remove(uint64_t pid) {
    SpinLockGuard g(lock_);
    RemoveLocked(pid);
    tokens_.erase(pid);
  }

  void RemoveLocked(uint64_t pid) {
    for (auto& q : queues_) {
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (*it == pid) {
          q.erase(it);
          return;
        }
      }
    }
  }

  const int policy_id_;
  // mutable: SaveCheckpoint is const but must still serialize readers.
  mutable SpinLock lock_;
  std::vector<std::deque<uint64_t>> queues_;
  std::unordered_map<uint64_t, Schedulable> tokens_;
  int next_cpu_ = 0;
};

}  // namespace enoki

#endif  // SRC_SCHED_FIFO_H_
