// Single-producer / single-consumer ring buffer.
//
// This is the shared-memory channel primitive underpinning two Enoki
// mechanisms from the paper:
//  - userspace <-> kernel scheduler hint queues (section 3.3), and
//  - the record channel drained by the userspace record task (section 3.4).
//
// Within the simulator the producer and consumer run on the same host thread,
// but the replay engine and the record writer exercise it from real threads,
// so the implementation is a proper lock-free SPSC queue with acquire/release
// ordering. Capacity is fixed at construction; producers observe overruns
// (Push returns false), mirroring the paper's "if the buffer overruns, events
// may be dropped".

#ifndef SRC_BASE_RING_BUFFER_H_
#define SRC_BASE_RING_BUFFER_H_

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "src/base/check.h"

namespace enoki {

// Compile-time power-of-two capacity validation with a diagnosable failure:
// a bad constant fails inside this instantiation, so the compiler's note
// names both the offending N and the Caller tag type (the capacity-sensitive
// user: a RingBuffer element type, the EventLoop express lane, ...) instead
// of an anonymous static_assert with no context. Callers with runtime sizes
// round up first (RingBuffer::RoundUpPow2).
template <size_t N, typename Caller = void>
struct Pow2Capacity {
  static_assert(N > 0, "capacity N must be nonzero (see the Caller tag in the "
                       "instantiation note above for the offending user)");
  static_assert((N & (N - 1)) == 0,
                "capacity N is not a power of two (the instantiation note above "
                "names the offending N and the Caller it was requested for; use "
                "RoundUpPow2 for runtime sizes, or pick 1<<k)");
  static constexpr size_t value = N;
};

template <typename T>
class RingBuffer {
 public:
  // Capacity must be a power of two: the hot path indexes with a mask
  // instead of div/mod, and the free-running head/tail arithmetic relies on
  // the slot count dividing the index space evenly. Callers that accept
  // arbitrary user-supplied sizes round up first (see RoundUpPow2); callers
  // with a compile-time size should use CheckedCapacity<N> (or the
  // ForCapacity<N> factory) so a non-power-of-two constant fails to compile
  // instead of masking indices wrong at runtime.
  explicit RingBuffer(size_t capacity) : slots_(capacity), mask_(capacity - 1) {
    ENOKI_CHECK_MSG(capacity > 0 && (capacity & (capacity - 1)) == 0,
                    "RingBuffer capacity must be a power of two");
  }

  // Compile-time capacity validation: CheckedCapacity<48>() is a build
  // error whose instantiation trace names the offending N and this ring's
  // element type, not a silently mis-masked ring.
  template <size_t N>
  static constexpr size_t CheckedCapacity() {
    return Pow2Capacity<N, RingBuffer<T>>::value;
  }

  // Constructs a ring whose capacity is validated at compile time; relies on
  // guaranteed copy elision (the type is neither copyable nor movable).
  template <size_t N>
  static RingBuffer ForCapacity() {
    return RingBuffer(CheckedCapacity<N>());
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  // Producer side. Returns false (and drops the element) when full.
  bool Push(T value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns nullopt when empty.
  std::optional<T> Pop() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) {
      return std::nullopt;
    }
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  size_t size() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }
  bool empty() const { return size() == 0; }
  size_t capacity() const { return slots_.size(); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Smallest power of two >= n (>= 1), for layers that accept arbitrary
  // requested sizes (hint queues, the record ring).
  static size_t RoundUpPow2(size_t n) {
    size_t p = 1;
    while (p < n) {
      p <<= 1;
    }
    return p;
  }

 private:
  std::vector<T> slots_;
  const size_t mask_;
  std::atomic<size_t> head_{0};
  std::atomic<size_t> tail_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace enoki

#endif  // SRC_BASE_RING_BUFFER_H_
