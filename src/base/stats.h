// Statistics accumulators used by workloads and benchmark harnesses.
//
// Two tools are provided:
//  - StatAccumulator: streaming count/mean/min/max/variance (Welford).
//  - LatencyRecorder: percentile estimation over latency samples. It keeps a
//    log-bucketed histogram (~2% relative resolution) so multi-million-sample
//    benchmark runs stay O(1) per record and O(buckets) per query.

#ifndef SRC_BASE_STATS_H_
#define SRC_BASE_STATS_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/base/check.h"
#include "src/base/time.h"

namespace enoki {

class StatAccumulator {
 public:
  void Record(double x) {
    ++count_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double variance() const { return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1); }
  double stddev() const { return std::sqrt(variance()); }
  double sum() const { return mean_ * static_cast<double>(count_); }

  void Reset() { *this = StatAccumulator(); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Percentile tracker for durations in nanoseconds.
//
// Buckets are arranged as 64 power-of-two decades with `kSubBuckets` linear
// sub-buckets each, giving a worst-case relative error of 1/kSubBuckets.
class LatencyRecorder {
 public:
  static constexpr int kSubBuckets = 64;

  void Record(Duration ns) {
    ++count_;
    min_ = std::min(min_, ns);
    max_ = std::max(max_, ns);
    sum_ += ns;
    buckets_[BucketIndex(ns)]++;
  }

  uint64_t count() const { return count_; }
  Duration min() const { return count_ == 0 ? 0 : min_; }
  Duration max() const { return count_ == 0 ? 0 : max_; }
  double mean_ns() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Returns the latency at the given percentile (e.g. 50.0, 99.0). The value
  // returned is the upper edge of the containing bucket.
  Duration Percentile(double pct) const {
    if (count_ == 0) {
      return 0;
    }
    ENOKI_CHECK(pct >= 0.0 && pct <= 100.0);
    const uint64_t rank =
        static_cast<uint64_t>(std::ceil(pct / 100.0 * static_cast<double>(count_)));
    const uint64_t target = std::max<uint64_t>(rank, 1);
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= target) {
        return BucketUpperEdge(i);
      }
    }
    return max_;
  }

  void Reset() { *this = LatencyRecorder(); }

  // Merges another recorder's samples into this one.
  void Merge(const LatencyRecorder& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

 private:
  // Values >= 64 land in decade `msb` (the index of their highest set bit,
  // msb >= 6), which covers [2^msb, 2^(msb+1)) with kSubBuckets linear
  // sub-buckets of width 2^(msb-6) each: worst-case relative error 1/64.
  static size_t BucketIndex(Duration ns) {
    if (ns < kSubBuckets) {
      return static_cast<size_t>(ns);
    }
    const int msb = 63 - __builtin_clzll(ns);
    const uint64_t base = 1ull << msb;
    const uint64_t sub = (ns - base) >> (msb - 6);
    return static_cast<size_t>(kSubBuckets + (msb - 6) * kSubBuckets + sub);
  }

  static Duration BucketUpperEdge(size_t index) {
    if (index < kSubBuckets) {
      return static_cast<Duration>(index);
    }
    const size_t rel = index - kSubBuckets;
    const int msb = static_cast<int>(rel / kSubBuckets) + 6;
    const uint64_t sub = rel % kSubBuckets;
    const uint64_t base = 1ull << msb;
    return base + ((sub + 1) << (msb - 6));
  }

  // 64 linear + 58 decades * 64 sub-buckets covers the full uint64 range.
  std::array<uint64_t, kSubBuckets + 58 * kSubBuckets> buckets_ = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  Duration min_ = kTimeMax;
  Duration max_ = 0;
};

// Geometric mean over a set of ratios; used for the Table 5 summary line.
inline double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    ENOKI_CHECK(v > 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace enoki

#endif  // SRC_BASE_STATS_H_
