// Linux niceness bounds, shared by the task model and the Enoki API.

#ifndef SRC_BASE_NICENESS_H_
#define SRC_BASE_NICENESS_H_

namespace enoki {

constexpr int kMinNice = -20;
constexpr int kMaxNice = 19;

}  // namespace enoki

#endif  // SRC_BASE_NICENESS_H_
