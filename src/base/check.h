// Lightweight CHECK macros.
//
// The simulator is a correctness tool: invariant violations should abort
// loudly in every build type, so these are not compiled out in release mode.

#ifndef SRC_BASE_CHECK_H_
#define SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace enoki {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace enoki

#define ENOKI_CHECK(expr)                               \
  do {                                                  \
    if (!(expr)) {                                      \
      ::enoki::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                   \
  } while (0)

#define ENOKI_CHECK_MSG(expr, msg)                     \
  do {                                                 \
    if (!(expr)) {                                     \
      ::enoki::CheckFailed(__FILE__, __LINE__, (msg)); \
    }                                                  \
  } while (0)

#endif  // SRC_BASE_CHECK_H_
