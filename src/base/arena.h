// Arena: a chunked bump allocator for run-scoped allocation.
//
// The simulator's steady-state hot path is already allocation-free (slab
// pools for events, inline callback buffers), but each *run* still pays
// container growth: request queues, per-tenant state, merge scratch. An
// Arena gives every run (or every shard of a sharded run) one private
// allocation domain: objects are bump-allocated from geometrically growing
// chunks, never individually freed, and released wholesale when the arena
// dies or is Reset(). Steady state therefore performs zero heap allocations
// once the high-water mark is reached, and a Reset() between runs reuses the
// retained chunks, so repeated sweeps settle to zero allocations per run.
//
// ArenaAllocator<T> adapts an Arena to the standard allocator interface so
// std containers (vector, deque) can draw from it. Deallocation is a no-op
// except for the trailing-allocation fast path, which lets a growing vector
// reuse the space it just vacated — the common realloc pattern costs one
// chunk's worth of memory, not O(log n) abandoned copies.

#ifndef SRC_BASE_ARENA_H_
#define SRC_BASE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/base/profile.h"

namespace enoki {

class Arena {
 public:
  explicit Arena(size_t first_chunk_bytes = 16 * 1024)
      : next_chunk_bytes_(first_chunk_bytes) {
    ENOKI_CHECK(first_chunk_bytes >= 64);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Allocate(size_t bytes, size_t align) {
    ENOKI_CHECK(align > 0 && (align & (align - 1)) == 0);
    uintptr_t p = (cursor_ + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
    if (p + bytes > limit_) {
      NewChunk(bytes + align);
      p = (cursor_ + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
    }
    cursor_ = p + bytes;
    bytes_used_ = (cursor_ - chunk_base_) + bytes_in_full_chunks_;
    return reinterpret_cast<void*>(p);
  }

  // True (and the space is reclaimed) when `p` is the most recent allocation
  // from the current chunk: the vector-growth fast path.
  bool TryDeallocateLast(void* p, size_t bytes) {
    const uintptr_t q = reinterpret_cast<uintptr_t>(p);
    if (q + bytes == cursor_ && q >= chunk_base_) {
      cursor_ = q;
      return true;
    }
    return false;
  }

  // Constructs a T in the arena. The object is never destroyed — arena-owned
  // types must be trivially destructible or must not care.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-owned objects are never destroyed");
    return new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  // Pre-allocates so the next `bytes` of allocation are chunk-local: a
  // Warm()ed arena reaches its high-water mark before the run starts instead
  // of growing mid-run. Sized from a workload hint (see SchedCore::Start's
  // shard-local warming); a hint that proves too small only costs the growth
  // the arena would have paid anyway.
  void Warm(size_t bytes) {
    if (limit_ - cursor_ < bytes) {
      NewChunk(bytes);
    }
  }

  // Abandons every object and retains the largest chunk for reuse, so a
  // warmed arena services the next run allocation-free.
  void Reset() {
    if (chunks_.size() > 1) {
      // Keep only the newest (largest) chunk.
      chunks_.erase(chunks_.begin(), chunks_.end() - 1);
    }
    if (!chunks_.empty()) {
      chunk_base_ = cursor_ = reinterpret_cast<uintptr_t>(chunks_.back().data.get());
      limit_ = chunk_base_ + chunks_.back().bytes;
    } else {
      chunk_base_ = cursor_ = limit_ = 0;
    }
    bytes_in_full_chunks_ = 0;
    bytes_used_ = 0;
  }

  size_t bytes_used() const { return bytes_used_; }
  size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    size_t bytes;
  };

  void NewChunk(size_t min_bytes) {
    ProfCount(GlobalCounters::kArenaChunks);
    bytes_in_full_chunks_ += cursor_ - chunk_base_;
    size_t bytes = next_chunk_bytes_;
    while (bytes < min_bytes) {
      bytes *= 2;
    }
    next_chunk_bytes_ = bytes * 2;  // geometric growth
    chunks_.push_back(Chunk{std::make_unique<unsigned char[]>(bytes), bytes});
    chunk_base_ = cursor_ = reinterpret_cast<uintptr_t>(chunks_.back().data.get());
    limit_ = chunk_base_ + bytes;
  }

  std::vector<Chunk> chunks_;
  uintptr_t chunk_base_ = 0;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t next_chunk_bytes_;
  size_t bytes_in_full_chunks_ = 0;
  size_t bytes_used_ = 0;
};

// Standard-allocator adapter. The arena must outlive every container using
// it. Copies share the arena (allocators are handles, not owners).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) { ENOKI_CHECK(arena != nullptr); }

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }

  void deallocate(T* p, size_t n) {
    // No-op unless this was the trailing allocation (vector growth reuse).
    arena_->TryDeallocateLast(p, n * sizeof(T));
  }

  Arena* arena() const { return arena_; }

  bool operator==(const ArenaAllocator& other) const { return arena_ == other.arena_; }
  bool operator!=(const ArenaAllocator& other) const { return arena_ != other.arena_; }

 private:
  Arena* arena_;
};

}  // namespace enoki

#endif  // SRC_BASE_ARENA_H_
