// Minimal leveled logging. Quiet by default so benchmark output stays clean;
// tests and examples raise the level when diagnosing.

#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <cstdarg>
#include <cstdio>

namespace enoki {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

void LogImpl(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace enoki

#define ENOKI_LOG(level, ...)                                  \
  do {                                                         \
    if (static_cast<int>(level) <=                             \
        static_cast<int>(::enoki::GetLogLevel())) {            \
      ::enoki::LogImpl((level), __VA_ARGS__);                  \
    }                                                          \
  } while (0)

#define ENOKI_ERROR(...) ENOKI_LOG(::enoki::LogLevel::kError, __VA_ARGS__)
#define ENOKI_WARN(...) ENOKI_LOG(::enoki::LogLevel::kWarn, __VA_ARGS__)
#define ENOKI_INFO(...) ENOKI_LOG(::enoki::LogLevel::kInfo, __VA_ARGS__)
#define ENOKI_DEBUG(...) ENOKI_LOG(::enoki::LogLevel::kDebug, __VA_ARGS__)

#endif  // SRC_BASE_LOG_H_
