// FlatMultimap: a sorted-vector replacement for the std::multimap run-queue
// trees on the simulator's hot paths.
//
// std::multimap allocates a red-black node per insert, which made every CFS
// and WFQ enqueue a heap allocation. Run queues are short (a handful of
// entries on a sane machine), so a contiguous sorted vector is faster on
// every operation despite O(n) inserts — the memmove touches one cache line
// and there is no allocator traffic in steady state.
//
// Ordering contract (load-bearing for determinism): equal keys preserve
// insertion order, exactly like std::multimap::emplace (which inserts at the
// upper bound of the equal range). Simulation results are bit-for-bit
// identical across the container swap.

#ifndef SRC_BASE_FLAT_MULTIMAP_H_
#define SRC_BASE_FLAT_MULTIMAP_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace enoki {

template <typename K, typename V>
class FlatMultimap {
 public:
  using value_type = std::pair<K, V>;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  bool empty() const { return v_.empty(); }
  size_t size() const { return v_.size(); }
  void clear() { v_.clear(); }

  const value_type& front() const { return v_.front(); }
  const value_type& back() const { return v_.back(); }
  const value_type& operator[](size_t i) const { return v_[i]; }

  const_iterator begin() const { return v_.begin(); }
  const_iterator end() const { return v_.end(); }

  // Inserts at the end of the equal range, preserving insertion order among
  // equal keys (std::multimap::emplace semantics).
  void emplace(const K& key, V value) {
    auto it = std::upper_bound(
        v_.begin(), v_.end(), key,
        [](const K& k, const value_type& e) { return k < e.first; });
    v_.insert(it, value_type(key, std::move(value)));
  }

  void pop_front() { v_.erase(v_.begin()); }

  // Removes the first entry with exactly this (key, value). Returns whether
  // one was found.
  bool erase_one(const K& key, const V& value) {
    auto it = std::lower_bound(
        v_.begin(), v_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
    for (; it != v_.end() && it->first == key; ++it) {
      if (it->second == value) {
        v_.erase(it);
        return true;
      }
    }
    return false;
  }

  void erase_at(size_t i) { v_.erase(v_.begin() + i); }

 private:
  std::vector<value_type> v_;
};

}  // namespace enoki

#endif  // SRC_BASE_FLAT_MULTIMAP_H_
