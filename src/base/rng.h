// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (arrival processes, service-time
// distributions, placement randomization) draws from an explicitly seeded Rng
// so that simulation runs are reproducible bit-for-bit. The generator is
// xoshiro256**, seeded through splitmix64, which is both fast and has no
// observable correlation artifacts at the scales we simulate.

#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cmath>
#include <cstdint>

namespace enoki {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  // Uniform over [0, 2^64).
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform over [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Uniform over [lo, hi].
  uint64_t NextInRange(uint64_t lo, uint64_t hi) { return lo + NextBelow(hi - lo + 1); }

  // Uniform over [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Exponential with the given mean; used for Poisson inter-arrival times.
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

  // Pareto (type I) with shape `alpha` and scale (minimum value) `xm`, via
  // inverse transform: xm / u^(1/alpha). Heavy-tailed for small alpha; the
  // mean is alpha*xm/(alpha-1) when alpha > 1, infinite otherwise — callers
  // that mean-match a target rate must use alpha > 1.
  double NextPareto(double alpha, double xm) {
    double u = NextDouble();
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return xm / std::pow(u, 1.0 / alpha);
  }

  // Log-normal parameterized by the mean and sigma of the *underlying* normal.
  double NextLogNormal(double mu, double sigma) { return std::exp(mu + sigma * NextGaussian()); }

  // Standard normal via Box-Muller (one value per call; the pair's second
  // half is cached).
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) {
      u1 = 0x1.0p-53;
    }
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  // True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  // Fork a statistically independent child generator; used to give each task
  // or client its own stream without coupling their draws.
  Rng Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ull); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace enoki

#endif  // SRC_BASE_RNG_H_
