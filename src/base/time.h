// Simulated-time primitives.
//
// All simulator time is expressed in nanoseconds since simulation start. We
// deliberately use plain unsigned integers rather than std::chrono: every
// quantity in the simulator (event timestamps, task runtimes, cost-model
// charges) is a nanosecond count, and keeping a single flat representation
// makes the arithmetic in the hot scheduling paths trivially cheap and easy
// to audit.

#ifndef SRC_BASE_TIME_H_
#define SRC_BASE_TIME_H_

#include <cstdint>

namespace enoki {

// A point in simulated time, in nanoseconds since simulation start.
using Time = uint64_t;

// A span of simulated time, in nanoseconds. Durations are non-negative;
// subtraction of times is only performed where ordering is already known.
using Duration = uint64_t;

constexpr Time kTimeMax = ~0ull;

constexpr Duration Nanoseconds(uint64_t n) { return n; }
constexpr Duration Microseconds(uint64_t n) { return n * 1000ull; }
constexpr Duration Milliseconds(uint64_t n) { return n * 1000'000ull; }
constexpr Duration Seconds(uint64_t n) { return n * 1000'000'000ull; }

constexpr double ToMicroseconds(Duration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToMilliseconds(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / 1e9; }

}  // namespace enoki

#endif  // SRC_BASE_TIME_H_
