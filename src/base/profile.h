// Profile counter layer: cheap per-subsystem event and cycle counters, so
// the next flattening target is named by data instead of guesswork.
//
// The simulator's hot path is deliberately allocation- and syscall-free, so
// what remains to optimize hides in *cold-ish* paths that fire often enough
// to matter: timing-wheel cascades, slab and arena growth, cross-shard merge
// commits, epoch-barrier waits. Two kinds of counters cover them:
//
//  - Local counters (WheelProfile, ShardProfile): plain uint64_t structs
//    owned by single-threaded objects (an EventLoop is touched by exactly
//    one thread per epoch; ShardedEventLoop's barrier code runs on the main
//    thread only). Zero synchronization cost, aggregated by the owner on
//    demand. These are the per-event-frequency counters.
//  - Global counters (GlobalCounters): relaxed atomics for rare allocation
//    events raised from deep inside helpers that have no natural owner to
//    report through (arena chunk growth, event-slab growth). Rare enough
//    that an atomic add is free.
//
// Counter semantics split into two classes, and consumers must respect the
// split:
//  - count-type counters (events, cascades, chunks, slabs, epochs, widens,
//    narrows, commit messages) are pure functions of the simulation and are
//    byte-identical across hosts and thread counts — CI gates them against
//    a checked-in baseline so an alloc/cascade regression names the
//    subsystem that regressed;
//  - *_ns counters (commit wall time, barrier wall time) are wall-clock and
//    host-dependent — reported for profiling, never gated.
//
// bench_simperf --json exposes both as "prof_<name>" rows per config.

#ifndef SRC_BASE_PROFILE_H_
#define SRC_BASE_PROFILE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace enoki {

// Per-EventLoop cold-path counters. Single-threaded by the loop's own
// contract; merged across shard loops by ShardedEventLoop::WheelProfileSum.
struct WheelProfile {
  uint64_t cascades = 0;        // buckets redistributed event-by-event
  uint64_t bulk_cascades = 0;   // buckets spliced whole into the express lane
  uint64_t lane_hits = 0;       // events scheduled straight into the lane
  uint64_t lane_spills = 0;     // events past the lane horizon parked in the wheel
  uint64_t overflow_pulls = 0;  // events pulled overflow-heap -> wheel
  uint64_t behind_inserts = 0;  // events scheduled behind the wheel clock
  uint64_t slab_allocs = 0;     // event-slab growths (also in GlobalCounters)

  void MergeFrom(const WheelProfile& o) {
    cascades += o.cascades;
    bulk_cascades += o.bulk_cascades;
    lane_hits += o.lane_hits;
    lane_spills += o.lane_spills;
    overflow_pulls += o.overflow_pulls;
    behind_inserts += o.behind_inserts;
    slab_allocs += o.slab_allocs;
  }
};

// Per-ShardedEventLoop barrier/merge/controller counters. Written only by
// the thread driving RunUntil (the barrier owner).
struct ShardProfile {
  uint64_t epochs = 0;        // committed epoch barriers
  uint64_t idle_leaps = 0;    // epochs whose window start leapt an idle span
  uint64_t commit_msgs = 0;   // cross-shard messages committed
  uint64_t batched_msgs = 0;  // messages that rode an existing mailbox entry
  uint64_t widens = 0;        // controller WIDEN decisions applied
  uint64_t narrows = 0;       // controller NARROW decisions applied
  uint64_t commit_ns = 0;     // wall ns draining+sorting+committing outboxes
  uint64_t barrier_ns = 0;    // wall ns the main thread waited on workers
};

// Process-wide counters for allocation events raised from helpers with no
// reporting channel of their own. Relaxed atomics: these are counters, not
// synchronization, and every increment site is a rare growth path.
class GlobalCounters {
 public:
  enum Id : int {
    kArenaChunks = 0,   // Arena::NewChunk calls
    kEventSlabs = 1,    // EventLoop slab-pool growths
    kIdCount = 2,
  };

  static GlobalCounters& Get() {
    static GlobalCounters g;
    return g;
  }

  void Add(Id id, uint64_t n = 1) { counters_[id].fetch_add(n, std::memory_order_relaxed); }

  uint64_t Value(Id id) const { return counters_[id].load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> counters_[kIdCount] = {};
};

inline void ProfCount(GlobalCounters::Id id, uint64_t n = 1) {
  GlobalCounters::Get().Add(id, n);
}

// Accumulates wall-clock ns into `*sink` over its scope. Used only at epoch
// granularity (two reads of steady_clock per epoch), never per event.
class ProfTimer {
 public:
  explicit ProfTimer(uint64_t* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~ProfTimer() {
    *sink_ += static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - start_)
                                        .count());
  }
  ProfTimer(const ProfTimer&) = delete;
  ProfTimer& operator=(const ProfTimer&) = delete;

 private:
  uint64_t* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace enoki

#endif  // SRC_BASE_PROFILE_H_
