// CPU affinity mask supporting up to 256 CPUs (the large sharded-simulation
// machines model 128- and 256-CPU multi-socket boxes; the paper's own
// evaluation tops out at 80). Mirrors the role of cpumask_t in the kernel:
// task affinity, scheduler placement filters, and per-policy CPU sets.

#ifndef SRC_BASE_CPUMASK_H_
#define SRC_BASE_CPUMASK_H_

#include <cstdint>

#include "src/base/check.h"

namespace enoki {

class CpuMask {
 public:
  static constexpr int kMaxCpus = 256;
  static constexpr int kWords = kMaxCpus / 64;

  constexpr CpuMask() = default;

  static CpuMask All(int ncpus) {
    CpuMask m;
    for (int i = 0; i < ncpus; ++i) {
      m.Set(i);
    }
    return m;
  }

  static CpuMask Single(int cpu) {
    CpuMask m;
    m.Set(cpu);
    return m;
  }

  void Set(int cpu) {
    ENOKI_CHECK(cpu >= 0 && cpu < kMaxCpus);
    words_[cpu / 64] |= 1ull << (cpu % 64);
  }

  void Clear(int cpu) {
    ENOKI_CHECK(cpu >= 0 && cpu < kMaxCpus);
    words_[cpu / 64] &= ~(1ull << (cpu % 64));
  }

  bool Test(int cpu) const {
    if (cpu < 0 || cpu >= kMaxCpus) {
      return false;
    }
    return (words_[cpu / 64] >> (cpu % 64)) & 1;
  }

  int Count() const {
    int n = 0;
    for (uint64_t w : words_) {
      n += __builtin_popcountll(w);
    }
    return n;
  }

  bool Empty() const {
    for (uint64_t w : words_) {
      if (w != 0) {
        return false;
      }
    }
    return true;
  }

  // First set CPU, or -1 when empty.
  int First() const {
    for (int i = 0; i < kWords; ++i) {
      if (words_[i] != 0) {
        return i * 64 + __builtin_ctzll(words_[i]);
      }
    }
    return -1;
  }

  // Next set CPU strictly after `cpu`, or -1.
  int NextAfter(int cpu) const {
    for (int i = cpu + 1; i < kMaxCpus; ++i) {
      if (Test(i)) {
        return i;
      }
    }
    return -1;
  }

  CpuMask Intersect(const CpuMask& other) const {
    CpuMask m;
    for (int i = 0; i < kWords; ++i) {
      m.words_[i] = words_[i] & other.words_[i];
    }
    return m;
  }

  bool operator==(const CpuMask& other) const {
    for (int i = 0; i < kWords; ++i) {
      if (words_[i] != other.words_[i]) {
        return false;
      }
    }
    return true;
  }

  uint64_t word(int i) const { return words_[i]; }

  // Rebuilds a mask from its first two words. Callers that persist masks in
  // two-word records (the record/replay trace format) round-trip the first
  // 128 CPUs only; the simulated record/replay machines stay within that.
  static CpuMask FromWords(uint64_t w0, uint64_t w1) {
    CpuMask m;
    m.words_[0] = w0;
    m.words_[1] = w1;
    return m;
  }

 private:
  uint64_t words_[kWords] = {};
};

}  // namespace enoki

#endif  // SRC_BASE_CPUMASK_H_
