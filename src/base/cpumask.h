// CPU affinity mask supporting up to 128 CPUs (the simulated machines use at
// most 80). Mirrors the role of cpumask_t in the kernel: task affinity,
// scheduler placement filters, and per-policy CPU sets.

#ifndef SRC_BASE_CPUMASK_H_
#define SRC_BASE_CPUMASK_H_

#include <cstdint>

#include "src/base/check.h"

namespace enoki {

class CpuMask {
 public:
  static constexpr int kMaxCpus = 128;

  constexpr CpuMask() = default;

  static CpuMask All(int ncpus) {
    CpuMask m;
    for (int i = 0; i < ncpus; ++i) {
      m.Set(i);
    }
    return m;
  }

  static CpuMask Single(int cpu) {
    CpuMask m;
    m.Set(cpu);
    return m;
  }

  void Set(int cpu) {
    ENOKI_CHECK(cpu >= 0 && cpu < kMaxCpus);
    words_[cpu / 64] |= 1ull << (cpu % 64);
  }

  void Clear(int cpu) {
    ENOKI_CHECK(cpu >= 0 && cpu < kMaxCpus);
    words_[cpu / 64] &= ~(1ull << (cpu % 64));
  }

  bool Test(int cpu) const {
    if (cpu < 0 || cpu >= kMaxCpus) {
      return false;
    }
    return (words_[cpu / 64] >> (cpu % 64)) & 1;
  }

  int Count() const {
    return __builtin_popcountll(words_[0]) + __builtin_popcountll(words_[1]);
  }

  bool Empty() const { return words_[0] == 0 && words_[1] == 0; }

  // First set CPU, or -1 when empty.
  int First() const {
    if (words_[0] != 0) {
      return __builtin_ctzll(words_[0]);
    }
    if (words_[1] != 0) {
      return 64 + __builtin_ctzll(words_[1]);
    }
    return -1;
  }

  // Next set CPU strictly after `cpu`, or -1.
  int NextAfter(int cpu) const {
    for (int i = cpu + 1; i < kMaxCpus; ++i) {
      if (Test(i)) {
        return i;
      }
    }
    return -1;
  }

  CpuMask Intersect(const CpuMask& other) const {
    CpuMask m;
    m.words_[0] = words_[0] & other.words_[0];
    m.words_[1] = words_[1] & other.words_[1];
    return m;
  }

  bool operator==(const CpuMask& other) const {
    return words_[0] == other.words_[0] && words_[1] == other.words_[1];
  }

  uint64_t word(int i) const { return words_[i]; }

  static CpuMask FromWords(uint64_t w0, uint64_t w1) {
    CpuMask m;
    m.words_[0] = w0;
    m.words_[1] = w1;
    return m;
  }

 private:
  uint64_t words_[2] = {0, 0};
};

}  // namespace enoki

#endif  // SRC_BASE_CPUMASK_H_
