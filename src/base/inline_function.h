// InlineFunction: a move-free, allocation-free alternative to std::function
// for the simulator's hot paths.
//
// std::function pays for generality we never use: copyability, target_type
// introspection, and a small-buffer limit (16 bytes in libstdc++) that the
// simulator's typical captures ([this, cpu, task]) overflow, forcing a heap
// allocation per scheduled event. InlineFunction stores the callable in a
// caller-sized inline buffer and erases it with a two-entry static vtable
// (invoke + destroy). Callables larger than the buffer still work — they fall
// back to a single heap allocation — so correctness never depends on capture
// size, only performance does.
//
// The type is deliberately neither copyable nor movable: the event loop keeps
// events in stable slab slots, so the callable is constructed once, invoked
// in place, and destroyed in place.

#ifndef SRC_BASE_INLINE_FUNCTION_H_
#define SRC_BASE_INLINE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace enoki {

template <size_t kInlineBytes>
class InlineFunction {
 public:
  InlineFunction() = default;
  ~InlineFunction() { Reset(); }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  InlineFunction(InlineFunction&&) = delete;
  InlineFunction& operator=(InlineFunction&&) = delete;

  // Constructs the callable in place. Any previous callable is destroyed.
  template <typename F>
  void Set(F&& f) {
    using D = std::decay_t<F>;
    Reset();
    if constexpr (FitsInline<D>()) {
      new (buf_) D(std::forward<F>(f));
      static constexpr Ops ops = {
          [](void* p) { (*static_cast<D*>(p))(); },
          [](void* p) { static_cast<D*>(p)->~D(); },
      };
      ops_ = &ops;
    } else {
      // Oversized capture: one heap allocation, owned by this object.
      new (buf_) (D*)(new D(std::forward<F>(f)));
      static constexpr Ops ops = {
          [](void* p) { (**static_cast<D**>(p))(); },
          [](void* p) { delete *static_cast<D**>(p); },
      };
      ops_ = &ops;
    }
  }

  // Destroys the stored callable (freeing any captured state) immediately.
  void Reset() {
    if (ops_ != nullptr) {
      const Ops* ops = ops_;
      ops_ = nullptr;
      ops->destroy(buf_);
    }
  }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  // True when callables of type D avoid the heap fallback.
  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace enoki

#endif  // SRC_BASE_INLINE_FUNCTION_H_
