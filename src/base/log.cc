#include "src/base/log.h"

namespace enoki {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

void LogImpl(LogLevel level, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] ", LevelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fprintf(stderr, "\n");
}

}  // namespace enoki
