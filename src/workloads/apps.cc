#include "src/workloads/apps.h"

#include <algorithm>

#include "src/base/check.h"

namespace enoki {
namespace {

// Per-task compute multiplier under `skew`: task i of n gets 1 +- skew,
// spread linearly, so total work is independent of skew.
double SkewFactor(int i, int n, double skew) {
  if (n <= 1 || skew == 0.0) {
    return 1.0;
  }
  const double x = static_cast<double>(i) / static_cast<double>(n - 1);  // 0..1
  return 1.0 + skew * (2.0 * x - 1.0);
}

struct Barrier {
  explicit Barrier(int n) : n(n), wq("app-barrier") {}
  int n;
  int arrived = 0;
  int to_release = 0;
  WaitQueue wq;
};

// SPMD worker: compute a phase, then barrier-synchronize; the last arriver
// releases the others.
class SpmdBody : public TaskBody {
 public:
  SpmdBody(std::shared_ptr<Barrier> barrier, Duration phase, int phases)
      : barrier_(std::move(barrier)), phase_(phase), phases_(phases) {}

  Action NextAction(SimContext& ctx) override {
    switch (step_) {
      case Step::kCompute:
        if (phases_ == 0) {
          return Action::Exit();
        }
        --phases_;
        step_ = Step::kArrive;
        return Action::Compute(phase_);
      case Step::kArrive: {
        Barrier& b = *barrier_;
        ++b.arrived;
        if (b.arrived == b.n) {
          b.arrived = 0;
          b.to_release = b.n - 1;
          step_ = Step::kRelease;
          return NextAction(ctx);
        }
        step_ = Step::kCompute;
        return Action::Block(&b.wq);
      }
      case Step::kRelease: {
        Barrier& b = *barrier_;
        if (b.to_release > 0) {
          --b.to_release;
          return Action::Wake(&b.wq);
        }
        step_ = Step::kCompute;
        return NextAction(ctx);
      }
    }
    return Action::Exit();
  }

 private:
  enum class Step { kCompute, kArrive, kRelease };
  std::shared_ptr<Barrier> barrier_;
  const Duration phase_;
  int phases_;
  Step step_ = Step::kCompute;
};

}  // namespace

AppResult RunApp(SchedCore& core, int policy, const AppSpec& spec) {
  Rng rng(spec.seed);
  const Time start = core.now();
  uint64_t total_work_ns = 0;

  switch (spec.pattern) {
    case AppPattern::kSpmdBarrier: {
      const int n = spec.tasks > 0 ? spec.tasks : core.ncpus();
      auto barrier = std::make_shared<Barrier>(n);
      for (int i = 0; i < n; ++i) {
        const Duration phase =
            static_cast<Duration>(static_cast<double>(spec.phase_ns) * SkewFactor(i, n, spec.skew));
        total_work_ns += phase * static_cast<uint64_t>(spec.phases);
        core.CreateTask(spec.name + "-w" + std::to_string(i),
                        std::make_unique<SpmdBody>(barrier, phase, spec.phases), policy);
      }
      break;
    }
    case AppPattern::kForkJoin: {
      // Master wakes workers each phase and joins them; workers block between
      // phases.
      const int n = spec.tasks;
      struct Shared {
        std::vector<std::unique_ptr<WaitQueue>> start;
        WaitQueue done{"fj-done"};
      };
      auto sh = std::make_shared<Shared>();
      for (int i = 0; i < n; ++i) {
        sh->start.push_back(std::make_unique<WaitQueue>("fj-start"));
      }
      for (int i = 0; i < n; ++i) {
        const Duration phase =
            static_cast<Duration>(static_cast<double>(spec.phase_ns) * SkewFactor(i, n, spec.skew));
        total_work_ns += phase * static_cast<uint64_t>(spec.phases);
        auto step = std::make_shared<int>(0);
        auto left = std::make_shared<int>(spec.phases);
        WaitQueue* in = sh->start[i].get();
        core.CreateTask(spec.name + "-w" + std::to_string(i),
                        MakeFnBody([sh, step, left, in, phase](SimContext& ctx) -> Action {
                          switch (*step) {
                            case 0:
                              if (*left == 0) {
                                return Action::Exit();
                              }
                              --*left;
                              *step = 1;
                              return Action::Block(in);
                            case 1:
                              *step = 2;
                              return Action::Compute(phase);
                            default:
                              *step = 0;
                              return Action::Wake(&sh->done);
                          }
                        }),
                        policy);
      }
      auto mstate = std::make_shared<int>(0);
      auto mleft = std::make_shared<int>(spec.phases);
      core.CreateTask(spec.name + "-master",
                      MakeFnBody([sh, mstate, mleft, n](SimContext& ctx) -> Action {
                        const int s = *mstate;
                        if (s == 0 && *mleft == 0) {
                          return Action::Exit();
                        }
                        if (s < n) {
                          *mstate = s + 1;
                          return Action::Wake(sh->start[s].get());
                        }
                        if (s < 2 * n) {
                          *mstate = s + 1;
                          return Action::Block(&sh->done);
                        }
                        *mstate = 0;
                        --*mleft;
                        return Action::Compute(Microseconds(50));  // serial section
                      }),
                      policy);
      break;
    }
    case AppPattern::kPipeline: {
      const int stages = std::max(2, spec.tasks);
      auto queues = std::make_shared<std::vector<std::unique_ptr<WaitQueue>>>();
      for (int i = 0; i < stages; ++i) {
        queues->push_back(std::make_unique<WaitQueue>("pipe-stage"));
      }
      // Source: stage 0 produces `phases` items.
      for (int i = 0; i < stages; ++i) {
        const Duration phase =
            static_cast<Duration>(static_cast<double>(spec.phase_ns) * SkewFactor(i, stages, spec.skew));
        total_work_ns += phase * static_cast<uint64_t>(spec.phases);
        auto step = std::make_shared<int>(0);
        auto left = std::make_shared<int>(spec.phases);
        const bool is_source = i == 0;
        const bool is_sink = i == stages - 1;
        WaitQueue* in = is_source ? nullptr : (*queues)[i - 1].get();
        WaitQueue* out = is_sink ? nullptr : (*queues)[i].get();
        core.CreateTask(
            spec.name + "-s" + std::to_string(i),
            // `queues` is captured to keep the stage wait queues alive for
            // the lifetime of the tasks.
            MakeFnBody([queues, step, left, in, out, phase, is_source,
                        is_sink](SimContext& ctx) -> Action {
              switch (*step) {
                case 0:
                  if (*left == 0) {
                    return Action::Exit();
                  }
                  --*left;
                  *step = 1;
                  if (is_source) {
                    return Action::Compute(phase);
                  }
                  return Action::Block(in);
                case 1:
                  if (is_source) {
                    *step = 0;
                    return Action::Wake(out);
                  }
                  *step = 2;
                  return Action::Compute(phase);
                default:
                  *step = 0;
                  if (is_sink) {
                    return Action::Compute(1);  // loop to the next item
                  }
                  return Action::Wake(out);
              }
            }),
            policy);
      }
      break;
    }
    case AppPattern::kOversubscribed: {
      const Duration chunk = Milliseconds(1);
      for (int i = 0; i < spec.tasks; ++i) {
        const Duration work = static_cast<Duration>(static_cast<double>(spec.phase_ns) *
                                                    static_cast<double>(spec.phases) *
                                                    SkewFactor(i, spec.tasks, spec.skew));
        total_work_ns += work;
        auto remaining = std::make_shared<Duration>(work);
        core.CreateTask(spec.name + "-w" + std::to_string(i),
                        MakeFnBody([remaining, chunk](SimContext& ctx) -> Action {
                          if (*remaining == 0) {
                            return Action::Exit();
                          }
                          const Duration step = *remaining < chunk ? *remaining : chunk;
                          *remaining -= step;
                          return Action::Compute(step);
                        }),
                        policy);
      }
      break;
    }
    case AppPattern::kIoMixed: {
      for (int i = 0; i < spec.tasks; ++i) {
        const Duration phase =
            static_cast<Duration>(static_cast<double>(spec.phase_ns) * SkewFactor(i, spec.tasks, spec.skew));
        total_work_ns += phase * static_cast<uint64_t>(spec.phases);
        auto step = std::make_shared<int>(0);
        auto left = std::make_shared<int>(spec.phases);
        // Jitter sleeps so wakeups do not synchronize.
        const Duration sleep =
            spec.sleep_ns + rng.NextBelow(std::max<Duration>(spec.sleep_ns / 4, 1));
        core.CreateTask(spec.name + "-w" + std::to_string(i),
                        MakeFnBody([step, left, phase, sleep](SimContext& ctx) -> Action {
                          if (*step == 0) {
                            if (*left == 0) {
                              return Action::Exit();
                            }
                            --*left;
                            *step = 1;
                            return Action::Compute(phase);
                          }
                          *step = 0;
                          return Action::Sleep(sleep);
                        }),
                        policy);
      }
      break;
    }
  }

  core.Start();
  AppResult result;
  result.completed = core.RunUntilAllExit(start + Seconds(600));
  result.elapsed_seconds = ToSeconds(core.now() - start);
  if (result.elapsed_seconds > 0) {
    result.score = static_cast<double>(total_work_ns) / 1e9 / result.elapsed_seconds;
  }
  return result;
}

std::vector<AppSpec> Table5Suite(int ncpus) {
  std::vector<AppSpec> suite;
  auto nas = [&](const char* name, Duration phase, int phases, double skew) {
    suite.push_back(AppSpec{name, AppPattern::kSpmdBarrier, ncpus, phase, phases, skew, 0, 1});
  };
  // NAS kernels: one task per core, barrier-synchronized phases.
  nas("BT", Milliseconds(4), 60, 0.02);
  nas("CG", Milliseconds(1), 150, 0.05);
  nas("EP", Milliseconds(8), 30, 0.0);
  nas("FT", Milliseconds(3), 80, 0.03);
  nas("IS", Microseconds(600), 200, 0.05);
  nas("LU", Milliseconds(2), 120, 0.08);
  nas("MG", Milliseconds(1), 180, 0.04);
  nas("SP", Milliseconds(3), 90, 0.03);
  nas("UA", Microseconds(800), 220, 0.10);

  auto app = [&](const char* name, AppPattern p, int tasks, Duration phase, int phases,
                 double skew, Duration sleep, uint64_t seed) {
    suite.push_back(AppSpec{name, p, tasks, phase, phases, skew, sleep, seed});
  };
  // Phoronix Multicore analogs (names follow Table 5 / Appendix Table 7).
  app("Arrayfire, 1 (BLAS)", AppPattern::kForkJoin, ncpus, Milliseconds(2), 80, 0.05, 0, 2);
  app("Arrayfire, 2 (CG)", AppPattern::kForkJoin, ncpus, Microseconds(700), 150, 0.05, 0, 3);
  app("Cassandra, 1 (Writes)", AppPattern::kOversubscribed, 3 * ncpus, Microseconds(400), 900,
      0.65, 0, 4);
  app("ASKAP, 4 (Hogbom)", AppPattern::kSpmdBarrier, ncpus, Milliseconds(2), 100, 0.04, 0, 5);
  app("Cpuminer, 2 (SHA-256)", AppPattern::kOversubscribed, ncpus, Milliseconds(5), 80, 0.0, 0, 6);
  app("Cpuminer, 3 (Quad SHA)", AppPattern::kOversubscribed, ncpus, Milliseconds(5), 70, 0.0, 0, 7);
  app("Cpuminer, 4 (Myriad)", AppPattern::kOversubscribed, ncpus, Milliseconds(4), 80, 0.0, 0, 8);
  app("Cpuminer, 6 (Blake-2)", AppPattern::kOversubscribed, ncpus, Milliseconds(6), 60, 0.0, 0, 9);
  app("Cpuminer, 11 (Skeincoin)", AppPattern::kOversubscribed, ncpus, Milliseconds(5), 70, 0.0, 0,
      10);
  app("Ffmpeg, 1 (libx264)", AppPattern::kPipeline, 6, Milliseconds(1), 500, 0.35, 0, 11);
  app("Graphics-Magick, 4 (Resize)", AppPattern::kForkJoin, ncpus, Milliseconds(1), 120, 0.10, 0,
      12);
  app("OIDN, 1 (RT.hdr)", AppPattern::kForkJoin, ncpus, Milliseconds(6), 40, 0.05, 0, 13);
  app("OIDN, 2 (RT.ldr)", AppPattern::kForkJoin, ncpus, Milliseconds(6), 40, 0.06, 0, 14);
  app("OIDN, 3 (RTLightmap)", AppPattern::kForkJoin, ncpus, Milliseconds(9), 30, 0.05, 0, 15);
  app("Rodina, 3 (Leukocyte)", AppPattern::kSpmdBarrier, ncpus, Milliseconds(3), 90, 0.06, 0, 16);
  app("Zstd, 2 (L3 Long)", AppPattern::kPipeline, 5, Microseconds(800), 700, 0.55, 0, 17);
  app("Zstd, 4 (L8 Long)", AppPattern::kPipeline, 5, Milliseconds(2), 300, 0.50, 0, 18);
  app("AVIFEnc, 4 (Lossless)", AppPattern::kOversubscribed, 2 * ncpus, Milliseconds(1), 250, 0.45,
      0, 19);
  app("Libgav1, 1 (SN 1080p)", AppPattern::kPipeline, 4, Microseconds(900), 600, 0.30, 0, 20);
  app("Libgav1, 2 (SN 4k)", AppPattern::kPipeline, 4, Milliseconds(3), 200, 0.30, 0, 21);
  app("Libgav1, 3 (Chimera)", AppPattern::kPipeline, 4, Milliseconds(1), 450, 0.35, 0, 22);
  app("Libgav1, 4 (Chimera 10b)", AppPattern::kPipeline, 4, Milliseconds(3), 180, 0.35, 0, 23);
  app("OneDNN, 4, 1 (IP 1D)", AppPattern::kForkJoin, ncpus, Microseconds(250), 300, 0.08, 0, 24);
  app("OneDNN, 5, 1 (IP 3D)", AppPattern::kForkJoin, ncpus, Microseconds(500), 250, 0.12, 0, 25);
  app("OneDNN, 7, 1 (RNN f32)", AppPattern::kForkJoin, ncpus, Milliseconds(4), 60, 0.04, 0, 26);
  app("OneDNN, 7, 2 (RNN u8)", AppPattern::kForkJoin, ncpus, Milliseconds(4), 60, 0.04, 0, 27);
  app("OneDNN, 7, 3 (RNN bf16)", AppPattern::kForkJoin, ncpus, Milliseconds(4), 60, 0.04, 0, 28);
  ENOKI_CHECK(suite.size() == 36);
  return suite;
}

}  // namespace enoki
