// Memcached + Mutilate-style workload (Figure 3, section 5.6).
//
// An open-loop load generator produces requests with ETC-like service times
// (lognormal around ~10 us, 3% slightly-heavier updates). Three server
// configurations reproduce the paper's comparison:
//  - kCfs: baseline memcached — 16 kernel worker threads under CFS on all
//    cores, woken per request;
//  - kArachne: the original Arachne — user-level dispatch on dedicated
//    cores, with a *userspace* core arbiter that communicates over a socket
//    (socket round-trip latency) and binds activations with cpuset-style
//    affinity, running on CFS;
//  - kEnokiArachne: the same runtime, but core requests flow through Enoki
//    bidirectional hint queues to the in-kernel ArbiterSched.
// Both Arachne configurations autoscale between `min_cores` and `max_cores`
// (2-7 in the paper, reserving a core for background work).

#ifndef SRC_WORKLOADS_MEMCACHED_H_
#define SRC_WORKLOADS_MEMCACHED_H_

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/enoki/runtime.h"
#include "src/sched/arbiter.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_core.h"

namespace enoki {

enum class McMode { kCfs, kArachne, kEnokiArachne };

struct McConfig {
  McMode mode = McMode::kCfs;
  double rate_per_sec = 200'000.0;
  Duration mean_service = Microseconds(15);
  double service_sigma = 0.5;       // lognormal shape
  double update_fraction = 0.03;    // updates are ~2x heavier
  int cfs_workers = 16;
  int min_cores = 2;
  int max_cores = 7;
  Duration warmup = Milliseconds(500);
  Duration runtime = Seconds(4);
  int cfs_policy = 0;
  // Enoki-Arachne plumbing (required for kEnokiArachne).
  EnokiRuntime* arbiter_runtime = nullptr;
  int arbiter_policy = -1;
  int hint_queue = -1;
  int rev_queue = -1;
  uint64_t app_id = 1;
  uint64_t seed = 11;
};

struct McResult {
  Duration p50 = 0;
  Duration p99 = 0;
  uint64_t completed = 0;
  double achieved_kreq_per_sec = 0.0;
  double avg_cores = 0.0;  // average granted cores (Arachne modes)
};

namespace mc_internal {

struct Shared {
  std::deque<std::pair<Time, Duration>> queue;  // (arrival, service)
  WaitQueue wq{"mc-q"};
  LatencyRecorder latencies;
  uint64_t completed = 0;
  uint64_t arrivals_window = 0;
  Time measure_from = 0;
  // Arachne runtime state.
  std::vector<bool> reclaim_flag;
  std::vector<std::unique_ptr<WaitQueue>> park_wq;
  std::vector<Task*> activations;
};

inline Duration SampleService(Rng& rng, const McConfig& cfg) {
  const double sigma = cfg.service_sigma;
  const double mu = std::log(static_cast<double>(cfg.mean_service)) - sigma * sigma / 2.0;
  double s = rng.NextLogNormal(mu, sigma);
  if (rng.NextBernoulli(cfg.update_fraction)) {
    s *= 2.0;
  }
  return static_cast<Duration>(std::clamp(s, 500.0, 1e6));
}

}  // namespace mc_internal

// Runs the workload; classes must be registered on `core` already. For
// kEnokiArachne the arbiter runtime/queues must be wired in `config`.
inline McResult RunMemcached(SchedCore& core, const McConfig& config) {
  using mc_internal::Shared;
  auto sh = std::make_shared<Shared>();
  sh->measure_from = core.now() + config.warmup;

  const bool arachne = config.mode != McMode::kCfs;

  // ---- Load generator (clients) ----
  // Mutilate clients are separate machines; arrivals come from event
  // context (network receive), not from a simulated task. The generator
  // reschedules a copy of itself, so the pending event owns the state — no
  // self-referential closure, nothing outlives the event loop.
  struct LoadGenState {
    std::shared_ptr<Shared> sh;
    Rng rng;
    double mean_gap_ns;
    McConfig cfg;
    bool arachne;
    Time end;
    SchedCore* core;
  };
  // The rescheduled callback carries one shared_ptr so it fits the event
  // loop's inline callback buffer; the generator state is allocated once per
  // run, not once per arrival.
  struct LoadGen {
    std::shared_ptr<LoadGenState> st;
    void operator()() const {
      LoadGenState& s = *st;
      s.sh->queue.emplace_back(s.core->now(), mc_internal::SampleService(s.rng, s.cfg));
      ++s.sh->arrivals_window;
      if (!s.arachne) {
        // Baseline memcached: the receive path wakes a worker thread.
        s.core->Signal(&s.sh->wq);
      }
      // Arachne activations poll their run queues; no kernel wakeup needed.
      if (s.core->now() < s.end) {
        const Duration gap =
            static_cast<Duration>(std::max(1.0, s.rng.NextExponential(s.mean_gap_ns)));
        s.core->loop().ScheduleAfter(gap, *this);
      }
    }
  };
  {
    const double mean_gap_ns = 1e9 / config.rate_per_sec;
    auto st = std::make_shared<LoadGenState>(LoadGenState{
        sh, Rng(config.seed), mean_gap_ns, config, arachne,
        core.now() + config.warmup + config.runtime, &core});
    const Duration first =
        static_cast<Duration>(std::max(1.0, st->rng.NextExponential(mean_gap_ns)));
    core.loop().ScheduleAfter(first, LoadGen{std::move(st)});
  }

  if (!arachne) {
    // ---- Baseline: CFS worker threads woken per request ----
    for (int w = 0; w < config.cfs_workers; ++w) {
      auto pending = std::make_shared<std::pair<Time, Duration>>();
      auto step = std::make_shared<int>(0);
      core.CreateTask("mc-worker-" + std::to_string(w),
                      MakeFnBody([sh, pending, step](SimContext& ctx) -> Action {
                        if (*step == 2) {  // finished serving
                          if (ctx.now() >= sh->measure_from) {
                            sh->latencies.Record(ctx.now() - pending->first);
                            ++sh->completed;
                          }
                          *step = 0;
                        }
                        if (*step == 0) {  // wait for a request signal
                          *step = 1;
                          return Action::Block(&sh->wq);
                        }
                        if (sh->queue.empty()) {
                          return Action::Block(&sh->wq);  // spurious wake
                        }
                        *pending = sh->queue.front();
                        sh->queue.pop_front();
                        *step = 2;
                        return Action::Compute(pending->second);
                      }),
                      config.cfs_policy, 0);
    }
  } else {
    // ---- Arachne activations: spin-dispatch user-level threads ----
    const int nact = config.max_cores;
    sh->reclaim_flag.assign(static_cast<size_t>(nact), false);
    for (int i = 0; i < nact; ++i) {
      sh->park_wq.push_back(std::make_unique<WaitQueue>("mc-park-" + std::to_string(i)));
    }
    const Duration uswitch = core.costs().user_switch_ns;
    for (int i = 0; i < nact; ++i) {
      auto pending = std::make_shared<std::pair<Time, Duration>>();
      // Step 2 = initial park: activations start parked and run only once
      // the arbiter grants them a core.
      auto step = std::make_shared<int>(2);
      const int idx = i;
      const int policy =
          config.mode == McMode::kEnokiArachne ? config.arbiter_policy : config.cfs_policy;
      Task* t = core.CreateTask(
          "mc-activation-" + std::to_string(i),
          MakeFnBody([sh, pending, step, idx, uswitch](SimContext& ctx) -> Action {
            if (*step == 2) {
              *step = 0;
              return Action::Block(sh->park_wq[idx].get());
            }
            if (*step == 1) {
              // Finished serving a request.
              if (ctx.now() >= sh->measure_from) {
                sh->latencies.Record(ctx.now() - pending->first);
                ++sh->completed;
              }
              *step = 0;
            }
            if (sh->reclaim_flag[idx]) {
              sh->reclaim_flag[idx] = false;
              return Action::Block(sh->park_wq[idx].get());
            }
            if (!sh->queue.empty()) {
              *pending = sh->queue.front();
              sh->queue.pop_front();
              *step = 1;
              return Action::Compute(2 * uswitch + pending->second);
            }
            return Action::Compute(1'000);  // poll quantum: the core spins
          }),
          policy, 0);
      sh->activations.push_back(t);
      if (config.mode == McMode::kEnokiArachne) {
        HintBlob bind;
        bind.w[0] = ArbiterSched::kBindActivation;
        bind.w[1] = config.app_id;
        bind.w[2] = t->pid();
        config.arbiter_runtime->SendHint(config.hint_queue, bind);
      }
    }

    // ---- Runtime controller: autoscaling + grant/reclaim handling ----
    struct Ctl {
      int granted = 0;
      Time last_estimate = 0;
      int last_desired = 0;
      std::vector<int> core_of;  // activation -> core (original Arachne)
      std::vector<bool> parked;
      std::deque<int> free_cores;
      uint64_t pending_socket_ops = 0;
    };
    auto ctl = std::make_shared<Ctl>();
    ctl->core_of.assign(static_cast<size_t>(nact), -1);
    ctl->parked.assign(static_cast<size_t>(nact), true);
    for (int c = config.max_cores; c >= 1; --c) {
      ctl->free_cores.push_back(c);
    }
    const McConfig cfg = config;
    const Duration ctl_period = Milliseconds(2);
    auto cores_acc = std::make_shared<StatAccumulator>();
    core.CreateTaskOn(
        "mc-controller",
        MakeFnBody([sh, ctl, cfg, ctl_period, cores_acc, &core](SimContext& ctx) -> Action {
          // Estimate desired cores from the arrival rate. Only re-estimate
          // once a full measurement window has elapsed: back-to-back passes
          // (e.g. after paying socket costs) would otherwise see a nearly
          // empty window and thrash the core count.
          int desired = ctl->last_desired;
          const Duration since = ctx.now() - ctl->last_estimate;
          if (since >= ctl_period) {
            const double rate =
                static_cast<double>(sh->arrivals_window) / ToSeconds(since);
            sh->arrivals_window = 0;
            ctl->last_estimate = ctx.now();
            const double util = rate * ToSeconds(cfg.mean_service) * 1.3;
            desired = static_cast<int>(std::ceil(util)) + 1;
            if (!sh->queue.empty()) {
              ++desired;
            }
            desired = std::clamp(desired, cfg.min_cores, cfg.max_cores);
            ctl->last_desired = desired;
          }
          cores_acc->Record(static_cast<double>(ctl->granted));

          if (cfg.mode == McMode::kEnokiArachne) {
            // Request through the Enoki hint queue; apply grants/reclaims
            // from the reverse queue.
            HintBlob req;
            req.w[0] = ArbiterSched::kReqCores;
            req.w[1] = cfg.app_id;
            req.w[2] = static_cast<uint64_t>(desired);
            cfg.arbiter_runtime->SendHint(cfg.hint_queue, req, ctx.cpu());
            while (auto rev = cfg.arbiter_runtime->PollRevHint(cfg.rev_queue)) {
              const uint64_t pid = rev->w[3];
              int idx = -1;
              for (size_t i = 0; i < sh->activations.size(); ++i) {
                if (sh->activations[i]->pid() == pid) {
                  idx = static_cast<int>(i);
                  break;
                }
              }
              if (idx < 0) {
                continue;
              }
              if (rev->w[0] == ArbiterSched::kGrantCore) {
                ++ctl->granted;
                if (ctl->parked[idx]) {
                  ctl->parked[idx] = false;
                  // Counting semantics: if the activation has not parked
                  // yet, the signal is consumed when it does.
                  core.Signal(sh->park_wq[idx].get(), false, ctx.cpu());
                }
              } else if (rev->w[0] == ArbiterSched::kReclaimCore) {
                --ctl->granted;
                sh->reclaim_flag[idx] = true;
                ctl->parked[idx] = true;
              }
            }
            return Action::Sleep(ctl_period);
          }

          // Original Arachne: the userspace arbiter applies grants itself,
          // paying a socket round trip per operation.
          Duration socket_cost = 0;
          while (ctl->granted < desired && !ctl->free_cores.empty()) {
            int idx = -1;
            for (int i = 0; i < static_cast<int>(ctl->parked.size()); ++i) {
              if (ctl->parked[i]) {
                idx = i;
                break;
              }
            }
            if (idx < 0) {
              break;
            }
            const int c = ctl->free_cores.front();
            ctl->free_cores.pop_front();
            ctl->core_of[idx] = c;
            ctl->parked[idx] = false;
            ++ctl->granted;
            core.SetTaskAffinity(sh->activations[idx], CpuMask::Single(c));
            core.Signal(sh->park_wq[idx].get(), false, ctx.cpu());
            socket_cost += core.costs().socket_rtt_ns;
          }
          while (ctl->granted > desired) {
            int idx = -1;
            for (int i = 0; i < static_cast<int>(ctl->parked.size()); ++i) {
              if (!ctl->parked[i] && ctl->core_of[i] >= 0) {
                idx = i;
                break;
              }
            }
            if (idx < 0) {
              break;
            }
            sh->reclaim_flag[idx] = true;
            ctl->parked[idx] = true;
            ctl->free_cores.push_back(ctl->core_of[idx]);
            ctl->core_of[idx] = -1;
            --ctl->granted;
            socket_cost += core.costs().socket_rtt_ns;
          }
          if (socket_cost > 0) {
            return Action::Compute(socket_cost);
          }
          return Action::Sleep(ctl_period);
        }),
        config.cfs_policy, -10, CpuMask::Single(0));

    core.Start();
    core.RunFor(config.warmup);
    const Time measure_start = core.now();
    core.RunFor(config.runtime);
    McResult result;
    result.p50 = sh->latencies.Percentile(50.0);
    result.p99 = sh->latencies.Percentile(99.0);
    result.completed = sh->completed;
    const double sec = ToSeconds(core.now() - measure_start);
    if (sec > 0) {
      result.achieved_kreq_per_sec = static_cast<double>(sh->completed) / sec / 1e3;
    }
    result.avg_cores = cores_acc->mean();
    return result;
  }

  core.Start();
  core.RunFor(config.warmup);
  const Time measure_start = core.now();
  core.RunFor(config.runtime);
  McResult result;
  result.p50 = sh->latencies.Percentile(50.0);
  result.p99 = sh->latencies.Percentile(99.0);
  result.completed = sh->completed;
  const double sec = ToSeconds(core.now() - measure_start);
  if (sec > 0) {
    result.achieved_kreq_per_sec = static_cast<double>(sh->completed) / sec / 1e3;
  }
  result.avg_cores = static_cast<double>(core.ncpus());
  return result;
}

}  // namespace enoki

#endif  // SRC_WORKLOADS_MEMCACHED_H_
