// perf bench sched pipe analog (Table 3).
//
// Two tasks bounce messages through a pair of pipes: the sender wakes the
// receiver and immediately blocks until the reply. Each message therefore
// costs one full schedule operation per side. Latency is reported per
// wakeup, as in the paper.

#ifndef SRC_WORKLOADS_PIPE_H_
#define SRC_WORKLOADS_PIPE_H_

#include <memory>
#include <vector>

#include "src/base/stats.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_core.h"

namespace enoki {

struct PipeBenchConfig {
  uint64_t messages = 100'000;
  bool same_core = false;       // force both tasks onto one CPU
  Duration user_work_ns = 150;  // per-message userspace work
};

struct PipeBenchResult {
  double usec_per_wakeup = 0.0;
  Duration elapsed_ns = 0;
  uint64_t wakeups = 0;
  bool completed = false;
};

// Runs the ping-pong on tasks of scheduling policy `policy`. The core must
// already have its classes registered and Start() not yet called.
inline PipeBenchResult RunPipeBench(SchedCore& core, int policy, const PipeBenchConfig& config) {
  auto ping_to_pong = std::make_unique<WaitQueue>("pipe-a");
  auto pong_to_ping = std::make_unique<WaitQueue>("pipe-b");
  WaitQueue* ab = ping_to_pong.get();
  WaitQueue* ba = pong_to_ping.get();

  const CpuMask mask =
      config.same_core ? CpuMask::Single(0) : CpuMask::All(core.ncpus());

  struct PingState {
    uint64_t remaining;
    int step = 0;
  };
  auto ping_state = std::make_shared<PingState>(PingState{config.messages});
  const Duration work = config.user_work_ns;

  std::vector<Task*> pipe_tasks;
  pipe_tasks.push_back(core.CreateTaskOn(
      "pipe-ping",
      MakeFnBody([ab, ba, ping_state, work](SimContext& ctx) -> Action {
        PingState& s = *ping_state;
        switch (s.step) {
          case 0:
            if (s.remaining == 0) {
              return Action::Exit();
            }
            s.step = 1;
            return Action::Compute(work);
          case 1:
            s.step = 2;
            return Action::Wake(ab, /*sync=*/true);
          default:
            s.step = 0;
            --s.remaining;
            return Action::Block(ba);
        }
      }),
      policy, 0, mask));

  auto pong_state = std::make_shared<PingState>(PingState{config.messages});
  pipe_tasks.push_back(core.CreateTaskOn(
      "pipe-pong",
      MakeFnBody([ab, ba, pong_state, work](SimContext& ctx) -> Action {
        PingState& s = *pong_state;
        switch (s.step) {
          case 0:
            if (s.remaining == 0) {
              return Action::Exit();
            }
            s.step = 1;
            return Action::Block(ab);
          case 1:
            s.step = 2;
            return Action::Compute(work);
          default:
            s.step = 0;
            --s.remaining;
            return Action::Wake(ba, /*sync=*/true);
        }
      }),
      policy, 0, mask));

  core.Start();
  const Time start = core.now();
  // Generous deadline: 60 us per message.
  const bool done = core.RunUntilTasksDead(
      pipe_tasks, start + config.messages * Microseconds(60) + Seconds(1));
  PipeBenchResult result;
  result.completed = done;
  result.elapsed_ns = core.now() - start;
  result.wakeups = 2 * config.messages;
  result.usec_per_wakeup =
      ToMicroseconds(result.elapsed_ns) / static_cast<double>(result.wakeups);
  return result;
}

// The Arachne row of Table 3: the ping-pong runs between *user-level*
// threads multiplexed on a single kernel activation, so each message costs
// two user-space context switches and never enters the kernel.
inline PipeBenchResult RunUserThreadPipeBench(SchedCore& core, int policy,
                                              const PipeBenchConfig& config) {
  const Duration per_message = 2 * core.costs().user_switch_ns + config.user_work_ns;
  auto counter = std::make_shared<uint64_t>(config.messages);
  core.CreateTaskOn("arachne-activation",
                    MakeFnBody([counter, per_message](SimContext& ctx) -> Action {
                      if (*counter == 0) {
                        return Action::Exit();
                      }
                      --*counter;
                      return Action::Compute(per_message);
                    }),
                    policy, 0, CpuMask::Single(0));
  core.Start();
  const Time start = core.now();
  const bool done =
      core.RunUntilAllExit(start + config.messages * Microseconds(10) + Seconds(1));
  PipeBenchResult result;
  result.completed = done;
  result.elapsed_ns = core.now() - start;
  result.wakeups = 2 * config.messages;
  result.usec_per_wakeup =
      ToMicroseconds(result.elapsed_ns) / static_cast<double>(result.wakeups);
  return result;
}

}  // namespace enoki

#endif  // SRC_WORKLOADS_PIPE_H_
