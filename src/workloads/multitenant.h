// Open-loop multi-tenant workload for the large sharded machines.
//
// The ROADMAP's datacenter story: a 128- or 256-CPU multi-socket box serving
// many independent tenants, each an open-loop request stream (Poisson by
// default; Pareto or log-normal inter-arrivals for heavy-tailed burstiness)
// handled by a per-NUMA-node worker pool, with a configurable fraction of
// requests handing off to a *remote* node on completion (cross-node RPC
// fan-out).
//
// The simulated workload is defined over G tenant groups, G = machine.nodes,
// and is the *same simulation* under both engines:
//
//  - sharded   (nshards == G): one SchedCore per NUMA node, each on its own
//    ShardedEventLoop shard; remote handoffs travel through PostCross
//    mailboxes and commit at epoch barriers in deterministic merge order.
//  - unsharded (nshards == 1): one SchedCore for the whole box on a single
//    loop (the engine's K=1 fast path is a plain EventLoop); group g's
//    workers are pinned to node g's CPUs and handoffs are self-posts with
//    identical latency.
//
// This makes "sharded vs unsharded" in bench_simperf a true engine
// comparison: same tenants, same service processes, same handoff topology.
//
// Allocation discipline (arena-per-run): each group's request queue is a
// fixed-capacity ring drawn from a per-group Arena; steady state performs
// zero heap allocations — cross-shard closures are sized for std::function's
// small-object buffer and the loop's slab pools handle events.

#ifndef SRC_WORKLOADS_MULTITENANT_H_
#define SRC_WORKLOADS_MULTITENANT_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/base/arena.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/sched/cfs.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_core.h"
#include "src/simkernel/sharded_event_loop.h"

namespace enoki {

// Tenant inter-arrival process. Poisson (exponential gaps) models the
// well-behaved aggregate; the heavy-tailed options model real multitenant
// traffic where a few tenants burst: gaps are mean-matched to
// rate_per_tenant, so the long-run rate is identical across distributions —
// only the burstiness changes.
enum class ArrivalDist {
  kPoisson,
  kPareto,     // type-I Pareto gaps, shape pareto_alpha (> 1)
  kLogNormal,  // log-normal gaps, sigma lognormal_sigma
};

struct MultitenantConfig {
  MachineSpec machine = MachineSpec::FourNode128();
  // 1 (whole box on one loop) or machine.nodes (one shard per NUMA node).
  int nshards = 4;
  int shard_threads = 0;  // 0 = ENOKI_SHARD_THREADS (default 1)
  Duration epoch_ns = 20'000;
  // Adaptive epoch control (see ShardedEventLoop::Options): the engine
  // retunes the window within [min_epoch_ns, remote_latency] from committed
  // traffic. Off by default so static-mode configs stay byte-identical.
  bool adaptive_epochs = false;
  Duration min_epoch_ns = 0;  // 0 = epoch_ns / 4
  // Coalesce same-(deliver_time, src) cross-shard messages at commit (see
  // ShardedEventLoop::Options::batched_commit). Output is byte-identical on
  // or off; the flag exists so tests can assert exactly that.
  bool batched_commit = true;

  int tenants_per_group = 16;       // arrival streams per NUMA node
  double rate_per_tenant = 4'000.0; // requests/sec per tenant
  ArrivalDist arrival = ArrivalDist::kPoisson;
  double pareto_alpha = 1.5;     // heavier tail as alpha -> 1
  double lognormal_sigma = 1.2;  // sigma of the underlying normal
  // Slab warming hint applied to machine.warm_events_per_cpu (see
  // SchedCore::Start): pre-size each shard loop's event pool for this many
  // live events per simulated CPU. 0 disables warming. The default was sized
  // from bench_simperf's prof_slab_allocs counter: 12/CPU covers the peak
  // (per-CPU tick + tenant chains + wakeup/preempt timers) with zero
  // demand-growth slabs on the mt128/mt256 configs.
  int warm_events_per_cpu = 12;
  Duration service_mean = Microseconds(10);
  int workers_per_group = 48;
  // Fraction of completions that spawn a follow-up request on another node.
  double remote_fraction = 0.05;
  Duration remote_latency = Microseconds(25);  // must be >= epoch_ns

  size_t queue_capacity = 1 << 15;  // per-group request ring (bounded)
  Duration warmup = Milliseconds(20);
  Duration runtime = Milliseconds(200);
  uint64_t seed = 11;
};

struct MultitenantResult {
  uint64_t completed = 0;
  uint64_t handoffs = 0;        // cross-node follow-ups issued
  uint64_t cross_messages = 0;  // committed through shard mailboxes
  uint64_t events = 0;
  uint64_t epochs = 0;
  uint64_t idle_leaps = 0;      // epochs whose window start leapt idle time
  uint64_t widens = 0;          // adaptive controller WIDEN decisions
  uint64_t narrows = 0;         // adaptive controller NARROW decisions
  Duration final_window_ns = 0; // effective epoch width at run end
  Duration p50 = 0;
  Duration p99 = 0;
  // Digest of every shard core's state plus the merge order. Byte-identical
  // across ENOKI_SHARD_THREADS values for a fixed shard count.
  uint64_t fingerprint = 0;
};

class MultitenantSim {
 public:
  explicit MultitenantSim(MultitenantConfig cfg)
      : cfg_(cfg), engine_(EngineOptions(cfg)) {
    const int ngroups = cfg_.machine.nodes;
    ENOKI_CHECK_MSG(cfg_.nshards == 1 || cfg_.nshards == ngroups,
                    "nshards must be 1 (unsharded) or machine.nodes (per-node shards)");
    ENOKI_CHECK(cfg_.remote_latency >= cfg_.epoch_ns);
    ENOKI_CHECK_MSG(cfg_.arrival != ArrivalDist::kPareto || cfg_.pareto_alpha > 1.0,
                    "Pareto arrivals need alpha > 1 for a finite mean-matched rate");
    // The adaptive clamp: the window may widen up to the workload's only
    // cross-shard latency, never past it.
    engine_.RegisterCrossLatency(cfg_.remote_latency);
    const bool sharded = cfg_.nshards > 1;
    const int cpus_per_group = cfg_.machine.ncpus / ngroups;
    cfg_.machine.warm_events_per_cpu = cfg_.warm_events_per_cpu;

    if (sharded) {
      for (int s = 0; s < ngroups; ++s) {
        cores_.push_back(std::make_unique<SchedCore>(cfg_.machine.ShardSpec(s, ngroups),
                                                     SimCosts{}, &engine_.shard(s)));
      }
    } else {
      cores_.push_back(
          std::make_unique<SchedCore>(cfg_.machine, SimCosts{}, &engine_.shard(0)));
    }
    for (auto& core : cores_) {
      cfs_.push_back(std::make_unique<CfsClass>());
      policies_.push_back(core->RegisterClass(cfs_.back().get()));
    }

    Rng seeder(cfg_.seed);
    for (int g = 0; g < ngroups; ++g) {
      auto grp = std::make_unique<Group>(cfg_.queue_capacity);
      grp->index = g;
      grp->shard = sharded ? g : 0;
      grp->core = cores_[static_cast<size_t>(sharded ? g : 0)].get();
      grp->policy = policies_[static_cast<size_t>(sharded ? g : 0)];
      grp->first_cpu = sharded ? 0 : g * cpus_per_group;
      grp->rng = std::make_unique<Rng>(seeder.Next());
      grp->measure_from = cfg_.warmup;
      groups_.push_back(std::move(grp));
    }

    for (auto& grp : groups_) {
      SpawnGroup(*grp, cpus_per_group, seeder);
    }
  }

  static ShardedEventLoop::Options EngineOptions(const MultitenantConfig& cfg) {
    ShardedEventLoop::Options o;
    o.nshards = cfg.nshards;
    o.epoch_ns = cfg.epoch_ns;
    o.threads = cfg.shard_threads;
    o.mailbox_slots = RingBuffer<int>::CheckedCapacity<65536>();
    o.adaptive_epochs = cfg.adaptive_epochs;
    o.min_epoch_ns = cfg.min_epoch_ns;
    o.batched_commit = cfg.batched_commit;
    return o;
  }

  MultitenantResult Run() {
    for (auto& core : cores_) {
      core->Start();
    }
    engine_.RunUntil(cfg_.warmup);
    engine_.RunUntil(cfg_.warmup + cfg_.runtime);

    MultitenantResult r;
    LatencyRecorder merged;
    uint64_t h = 14695981039346656037ull;
    for (const auto& grp : groups_) {
      r.completed += grp->completed;
      r.handoffs += grp->handoffs;
      merged.Merge(grp->lat);
      h = Mix(h, grp->completed);
      h = Mix(h, grp->handoffs);
      h = Mix(h, grp->lat.count());
      h = Mix(h, grp->lat.max());
      h = Mix(h, grp->lat.Percentile(99.0));
    }
    for (const auto& core : cores_) {
      h = Mix(h, core->Fingerprint());
    }
    h = Mix(h, engine_.MergeFingerprint());
    const ShardProfile prof = engine_.profile();
    // Folding the epoch/controller counters into the fingerprint makes the
    // determinism sweeps assert the adaptive claim directly: the controller's
    // decision sequence must match across thread counts, not just its
    // downstream effects.
    h = Mix(h, prof.epochs);
    h = Mix(h, prof.idle_leaps);
    h = Mix(h, prof.widens);
    h = Mix(h, prof.narrows);
    h = Mix(h, engine_.window_ns());
    r.cross_messages = engine_.cross_messages();
    r.events = engine_.events_executed();
    r.epochs = engine_.epochs();
    r.idle_leaps = prof.idle_leaps;
    r.widens = prof.widens;
    r.narrows = prof.narrows;
    r.final_window_ns = engine_.window_ns();
    r.p50 = merged.Percentile(50.0);
    r.p99 = merged.Percentile(99.0);
    r.fingerprint = h;
    return r;
  }

  ShardedEventLoop& engine() { return engine_; }
  SchedCore& core(int i) { return *cores_[static_cast<size_t>(i)]; }
  int ncores() const { return static_cast<int>(cores_.size()); }

 private:
  struct Request {
    Time arrival = 0;
    Duration service = 0;
  };

  // One tenant group = one NUMA node's worth of tenants, workers, and queue.
  struct Group {
    explicit Group(size_t cap)
        : ring(ArenaAllocator<Request>(&arena)), wq("mt-grp") {
      // Warm first so the ring lands in one chunk instead of growing the
      // arena through doubling chunks on the way up.
      arena.Warm(cap * sizeof(Request));
      ring.resize(cap);  // fixed ring: the run's only queue allocation
    }
    int index = 0;
    int shard = 0;
    SchedCore* core = nullptr;
    int policy = 0;
    int first_cpu = 0;  // group's first CPU in its core's numbering
    Arena arena{64 * 1024};
    std::vector<Request, ArenaAllocator<Request>> ring;
    size_t head = 0;
    size_t count = 0;
    WaitQueue wq;
    std::unique_ptr<Rng> rng;  // service + handoff decisions (shard-local)
    LatencyRecorder lat;
    uint64_t completed = 0;
    uint64_t handoffs = 0;
    Time measure_from = 0;
  };

  static uint64_t Mix(uint64_t h, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
    return h;
  }

  static void Push(Group& g, Request r) {
    ENOKI_CHECK_MSG(g.count < g.ring.size(), "multitenant group queue overflow");
    g.ring[(g.head + g.count) % g.ring.size()] = r;
    ++g.count;
  }

  static bool Pop(Group& g, Request* out) {
    if (g.count == 0) {
      return false;
    }
    *out = g.ring[g.head];
    g.head = (g.head + 1) % g.ring.size();
    --g.count;
    return true;
  }

  // Cross-shard delivery: runs on the destination group's loop at the
  // handoff's arrival time. The capture is two words so std::function's
  // small-object buffer holds it — no heap allocation per handoff.
  static void Deliver(Group* g, Duration service) {
    Push(*g, Request{g->core->now(), service});
    g->core->Signal(&g->wq, /*sync=*/false, /*from_cpu=*/g->first_cpu);
  }

  Duration ServiceSample(Rng& rng) const {
    return static_cast<Duration>(
        std::max(1.0, rng.NextExponential(static_cast<double>(cfg_.service_mean))));
  }

  // Inter-arrival gap for one tenant, mean-matched to rate_per_tenant across
  // all distributions (so heavy-tailed configs change burstiness, not load).
  Duration ArrivalGap(Rng& rng) const {
    const double mean = 1e9 / cfg_.rate_per_tenant;
    double gap = mean;
    switch (cfg_.arrival) {
      case ArrivalDist::kPoisson:
        gap = rng.NextExponential(mean);
        break;
      case ArrivalDist::kPareto: {
        // E[X] = alpha*xm/(alpha-1), so xm = mean*(alpha-1)/alpha.
        const double a = cfg_.pareto_alpha;
        gap = rng.NextPareto(a, mean * (a - 1.0) / a);
        break;
      }
      case ArrivalDist::kLogNormal: {
        // E[X] = exp(mu + sigma^2/2), so mu = ln(mean) - sigma^2/2.
        const double s = cfg_.lognormal_sigma;
        gap = rng.NextLogNormal(std::log(mean) - 0.5 * s * s, s);
        break;
      }
    }
    return static_cast<Duration>(std::max(1.0, gap));
  }

  // With probability remote_fraction, a completed request fans out to a
  // uniformly chosen *other* group through the shard mailbox (self-post with
  // the same latency when unsharded, keeping the simulation identical).
  void MaybeHandoff(Group& src) {
    if (groups_.size() < 2 || !src.rng->NextBernoulli(cfg_.remote_fraction)) {
      return;
    }
    uint64_t pick = src.rng->NextBelow(groups_.size() - 1);
    if (pick >= static_cast<uint64_t>(src.index)) {
      ++pick;  // skip self: uniform over the other G-1 groups
    }
    Group* dst = groups_[static_cast<size_t>(pick)].get();
    const Duration svc = ServiceSample(*src.rng);
    ++src.handoffs;
    engine_.PostCross(src.shard, dst->shard, cfg_.remote_latency,
                      [dst, svc] { Deliver(dst, svc); });
  }

  void SpawnGroup(Group& grp, int cpus_per_group, Rng& seeder) {
    CpuMask mask;
    for (int i = 0; i < cpus_per_group; ++i) {
      mask.Set(grp.first_cpu + i);
    }

    // Workers: block on the group queue, serve, maybe hand off remotely.
    struct Worker {
      MultitenantSim* sim;
      Group* g;
      Request pending;
      int step = 0;
    };
    for (int w = 0; w < cfg_.workers_per_group; ++w) {
      auto ws = std::make_shared<Worker>(Worker{this, &grp, {}, 0});
      grp.core->CreateTaskOn(
          "mt-w" + std::to_string(grp.index) + "." + std::to_string(w),
          MakeFnBody([ws](SimContext& ctx) -> Action {
            Worker& s = *ws;
            if (s.step == 2) {  // finished serving
              if (ctx.now() >= s.g->measure_from) {
                s.g->lat.Record(ctx.now() - s.pending.arrival);
                ++s.g->completed;
              }
              s.sim->MaybeHandoff(*s.g);
              s.step = 0;
            }
            if (s.step == 0) {
              s.step = 1;
              return Action::Block(&s.g->wq);
            }
            if (!Pop(*s.g, &s.pending)) {
              return Action::Block(&s.g->wq);  // spurious wake
            }
            s.step = 2;
            return Action::Compute(s.pending.service);
          }),
          grp.policy, /*nice=*/0, mask);
    }

    // Tenants: open-loop arrival processes (Poisson or heavy-tailed, per
    // cfg_.arrival) generated from event context (external clients), one
    // rescheduling event chain each. The callback carries one shared_ptr,
    // fitting the loop's inline buffer.
    struct Tenant {
      MultitenantSim* sim;
      Group* g;
      Rng rng;
      Time end;
    };
    struct TenantGen {
      std::shared_ptr<Tenant> st;
      void operator()() const {
        Tenant& t = *st;
        Push(*t.g, Request{t.g->core->now(), t.sim->ServiceSample(t.rng)});
        t.g->core->Signal(&t.g->wq, /*sync=*/false, /*from_cpu=*/t.g->first_cpu);
        if (t.g->core->now() < t.end) {
          t.g->core->loop().ScheduleAfter(t.sim->ArrivalGap(t.rng), *this);
        }
      }
    };
    for (int i = 0; i < cfg_.tenants_per_group; ++i) {
      auto st = std::make_shared<Tenant>(
          Tenant{this, &grp, Rng(seeder.Next()), cfg_.warmup + cfg_.runtime});
      const Duration first = ArrivalGap(st->rng);
      grp.core->loop().ScheduleAfter(first, TenantGen{std::move(st)});
    }
  }

  MultitenantConfig cfg_;
  ShardedEventLoop engine_;
  std::vector<std::unique_ptr<SchedCore>> cores_;
  std::vector<std::unique_ptr<CfsClass>> cfs_;
  std::vector<int> policies_;
  std::vector<std::unique_ptr<Group>> groups_;
};

inline MultitenantResult RunMultitenant(const MultitenantConfig& cfg) {
  MultitenantSim sim(cfg);
  return sim.Run();
}

}  // namespace enoki

#endif  // SRC_WORKLOADS_MULTITENANT_H_
