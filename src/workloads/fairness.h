// WFQ functional-equivalence workloads (Appendix A.1).
//
// Three micro-experiments that check a scheduler implements weighted fair
// queuing *behaviour*, not just performance:
//  1. equal sharing: N CPU-bound tasks co-located on one core should finish
//     together, at ~N x the isolated runtime;
//  2. weighting: dropping one task to minimum priority should leave the
//     other tasks' finish times nearly equal while the low-priority task
//     finishes later;
//  3. placement: one task per core should stay put, with low variance in
//     completion times; a forced migration should not disturb the others.

#ifndef SRC_WORKLOADS_FAIRNESS_H_
#define SRC_WORKLOADS_FAIRNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/stats.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_core.h"

namespace enoki {

struct FairnessResult {
  std::vector<double> completion_seconds;  // per task, in creation order
  bool completed = false;
};

// Starts `ntasks` CPU-bound tasks (each `work` of compute in `chunk` steps),
// optionally pinned to one core, with per-task nice values, and reports when
// each finished.
inline FairnessResult RunFairness(SchedCore& core, int policy, int ntasks, Duration work,
                                  bool same_core, const std::vector<int>& nices,
                                  int migrate_task_to_cpu = -1,
                                  Duration migrate_at = 0) {
  FairnessResult result;
  result.completion_seconds.assign(static_cast<size_t>(ntasks), 0.0);
  auto completions = std::make_shared<std::vector<Time>>(ntasks, 0);

  const Duration chunk = Milliseconds(1);
  std::vector<Task*> tasks;
  for (int i = 0; i < ntasks; ++i) {
    auto remaining = std::make_shared<Duration>(work);
    const int idx = i;
    CpuMask mask = same_core ? CpuMask::Single(0) : CpuMask::All(core.ncpus());
    const int nice = i < static_cast<int>(nices.size()) ? nices[i] : 0;
    tasks.push_back(core.CreateTaskOn(
        "fair-" + std::to_string(i),
        MakeFnBody([remaining, completions, idx, chunk](SimContext& ctx) -> Action {
          if (*remaining == 0) {
            (*completions)[idx] = ctx.now();
            return Action::Exit();
          }
          const Duration step = *remaining < chunk ? *remaining : chunk;
          *remaining -= step;
          return Action::Compute(step);
        }),
        policy, nice, mask));
  }

  core.Start();
  if (migrate_task_to_cpu >= 0) {
    core.loop().ScheduleAfter(migrate_at, [&core, &tasks, migrate_task_to_cpu] {
      core.SetTaskAffinity(tasks[0], CpuMask::Single(migrate_task_to_cpu));
    });
    // Run in two phases so `tasks` stays alive for the callback.
    core.RunUntil(core.now() + migrate_at + 1);
  }
  result.completed = core.RunUntilAllExit(core.now() + Seconds(600));
  for (int i = 0; i < ntasks; ++i) {
    result.completion_seconds[i] = ToSeconds((*completions)[i]);
  }
  return result;
}

}  // namespace enoki

#endif  // SRC_WORKLOADS_FAIRNESS_H_
