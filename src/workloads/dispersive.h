// RocksDB-style dispersive workload (Figure 2, sections 5.4).
//
// An open-loop Poisson load generator produces requests that are 99.5%
// short GETs (4 us of service) and 0.5% long range scans (10 ms), matching
// the Shinjuku/ghOSt benchmark configuration. Fifty worker tasks on five
// reserved cores serve a shared queue; remaining cores host the load
// generator and (in the co-location experiments) a CFS batch application.
// The harness reports the 99th-percentile request latency (sojourn time:
// arrival to completion) and the CPU share obtained by the batch app.

#ifndef SRC_WORKLOADS_DISPERSIVE_H_
#define SRC_WORKLOADS_DISPERSIVE_H_

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_core.h"

namespace enoki {

struct DispersiveConfig {
  double rate_per_sec = 40'000.0;       // offered load
  Duration get_service = Microseconds(4);
  Duration scan_service = Milliseconds(10);
  double scan_fraction = 0.005;         // 0.5% range queries
  int workers = 50;
  int first_worker_cpu = 2;             // workers on cpus [first, first+ncores)
  int worker_cores = 5;
  int loadgen_cpu = 1;
  Duration warmup = Milliseconds(500);
  Duration runtime = Seconds(4);
  int worker_policy = 0;
  int worker_nice = 0;
  // Batch application (Figure 2b/2c): CFS spinners sharing the worker cores.
  int batch_tasks = 0;
  int cfs_policy = 0;
  int batch_nice = 19;
  uint64_t seed = 7;
};

struct DispersiveResult {
  Duration p50 = 0;
  Duration p99 = 0;
  Duration p999 = 0;
  uint64_t completed_requests = 0;
  double achieved_kreq_per_sec = 0.0;
  double batch_cpus = 0.0;  // average CPUs' worth of batch runtime
};

inline DispersiveResult RunDispersive(SchedCore& core, const DispersiveConfig& config) {
  struct Request {
    Time arrival;
    Duration service;
  };
  struct Shared {
    std::deque<Request> queue;
    WaitQueue wq{"dispersive-q"};
    LatencyRecorder latencies;
    uint64_t completed = 0;
    Time measure_from = 0;
  };
  auto sh = std::make_shared<Shared>();
  sh->measure_from = core.now() + config.warmup;

  CpuMask worker_mask;
  for (int i = 0; i < config.worker_cores; ++i) {
    worker_mask.Set(config.first_worker_cpu + i);
  }

  // Workers: block for a request, serve it, record sojourn time. Exactly one
  // wait-queue signal is consumed per request served (the Block either
  // consumes a pending signal immediately or sleeps until one arrives).
  for (int w = 0; w < config.workers; ++w) {
    auto pending = std::make_shared<Request>();
    auto step = std::make_shared<int>(0);
    core.CreateTaskOn("rocksdb-worker-" + std::to_string(w),
                      MakeFnBody([sh, pending, step](SimContext& ctx) -> Action {
                        if (*step == 2) {  // finished serving
                          if (ctx.now() >= sh->measure_from) {
                            sh->latencies.Record(ctx.now() - pending->arrival);
                            ++sh->completed;
                          }
                          *step = 0;
                        }
                        if (*step == 0) {  // wait for a request signal
                          *step = 1;
                          return Action::Block(&sh->wq);
                        }
                        // step == 1: claim a request.
                        if (sh->queue.empty()) {
                          return Action::Block(&sh->wq);  // spurious wake
                        }
                        *pending = sh->queue.front();
                        sh->queue.pop_front();
                        *step = 2;
                        return Action::Compute(pending->service);
                      }),
                      config.worker_policy, config.worker_nice, worker_mask);
  }

  // Load generator: open-loop Poisson arrivals. The clients are external
  // machines in the paper's setup, so arrivals are generated from event
  // context (network receive) rather than by a simulated task. The generator
  // reschedules a copy of itself, so the pending event owns the state — no
  // self-referential closure, nothing outlives the event loop.
  struct LoadGenState {
    std::shared_ptr<Shared> sh;
    Rng rng;
    double mean_gap_ns;
    DispersiveConfig cfg;
    Time end;
    SchedCore* core;
  };
  // The rescheduled callback carries one shared_ptr so it fits the event
  // loop's inline callback buffer; the generator state is allocated once per
  // run, not once per arrival.
  struct LoadGen {
    std::shared_ptr<LoadGenState> st;
    void operator()() const {
      LoadGenState& s = *st;
      Request r;
      r.arrival = s.core->now();
      r.service =
          s.rng.NextBernoulli(s.cfg.scan_fraction) ? s.cfg.scan_service : s.cfg.get_service;
      s.sh->queue.push_back(r);
      s.core->Signal(&s.sh->wq, /*sync=*/false, /*from_cpu=*/s.cfg.loadgen_cpu);
      if (s.core->now() < s.end) {
        const Duration gap =
            static_cast<Duration>(std::max(1.0, s.rng.NextExponential(s.mean_gap_ns)));
        s.core->loop().ScheduleAfter(gap, *this);
      }
    }
  };
  {
    const double mean_gap_ns = 1e9 / config.rate_per_sec;
    auto st = std::make_shared<LoadGenState>(LoadGenState{
        sh, Rng(config.seed), mean_gap_ns, config,
        core.now() + config.warmup + config.runtime, &core});
    const Duration first =
        static_cast<Duration>(std::max(1.0, st->rng.NextExponential(mean_gap_ns)));
    core.loop().ScheduleAfter(first, LoadGen{std::move(st)});
  }

  // Batch application (optional).
  std::vector<Task*> batch;
  for (int b = 0; b < config.batch_tasks; ++b) {
    batch.push_back(core.CreateTaskOn("batch-" + std::to_string(b),
                                      std::make_unique<SpinForeverBody>(Milliseconds(1)),
                                      config.cfs_policy, config.batch_nice, worker_mask));
  }

  core.Start();
  core.RunFor(config.warmup);
  std::vector<Duration> batch_rt_start;
  batch_rt_start.reserve(batch.size());
  for (Task* t : batch) {
    batch_rt_start.push_back(core.TaskRuntime(t));
  }
  const Time measure_start = core.now();
  core.RunFor(config.runtime);

  DispersiveResult result;
  result.p50 = sh->latencies.Percentile(50.0);
  result.p99 = sh->latencies.Percentile(99.0);
  result.p999 = sh->latencies.Percentile(99.9);
  result.completed_requests = sh->completed;
  const double measured_sec = ToSeconds(core.now() - measure_start);
  if (measured_sec > 0) {
    result.achieved_kreq_per_sec = static_cast<double>(sh->completed) / measured_sec / 1e3;
    Duration batch_rt = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      batch_rt += core.TaskRuntime(batch[i]) - batch_rt_start[i];
    }
    result.batch_cpus = ToSeconds(batch_rt) / measured_sec;
  }
  return result;
}

}  // namespace enoki

#endif  // SRC_WORKLOADS_DISPERSIVE_H_
