// schbench analog (Tables 4 and 6).
//
// A set of message threads each drive a set of worker threads: the message
// thread wakes every worker, the workers perform a small unit of work and
// reply, and the message thread waits for all replies before starting the
// next round. The benchmark reports percentiles of *worker wakeup latency*
// (runnable -> running), which is what schbench measures.
//
// The locality variant (Table 6) sends Enoki hints pairing each worker with
// its message thread's locality group; the scheduler co-locates them, which
// converts cross-CPU wakeups of deep-idle cores into same-core handoffs.

#ifndef SRC_WORKLOADS_SCHBENCH_H_
#define SRC_WORKLOADS_SCHBENCH_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/base/stats.h"
#include "src/enoki/runtime.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_core.h"

namespace enoki {

struct SchbenchConfig {
  int message_threads = 2;
  int workers_per_thread = 2;
  Duration worker_work_ns = Microseconds(30);
  Duration round_think_ns = Microseconds(500);  // message-thread pause between rounds
  Duration warmup = Seconds(5);
  Duration runtime = Seconds(30);
  // When set, send locality hints pairing each group on one core via this
  // runtime's hint queue (Table 6 "Hints" column).
  EnokiRuntime* hint_runtime = nullptr;
  int hint_queue = -1;
  // Pin every thread to one core (the Table 6 "CFS One Core" column).
  bool pin_all_to_one_core = false;
};

struct SchbenchResult {
  Duration p50 = 0;
  Duration p99 = 0;
  Duration mean = 0;
  uint64_t wakeups = 0;
};

inline SchbenchResult RunSchbench(SchedCore& core, int policy, const SchbenchConfig& config) {
  struct Group {
    std::vector<std::unique_ptr<WaitQueue>> worker_wqs;
    std::unique_ptr<WaitQueue> reply_wq;
  };
  auto groups = std::make_shared<std::vector<Group>>();
  auto latencies = std::make_shared<LatencyRecorder>();
  auto worker_pids = std::make_shared<std::unordered_set<uint64_t>>();
  const Time measure_from = core.now() + config.warmup;

  core.set_wake_latency_hook([latencies, worker_pids, measure_from, &core](Task* t, Duration lat) {
    if (core.now() >= measure_from && worker_pids->count(t->pid()) > 0) {
      latencies->Record(lat);
    }
  });

  const CpuMask mask = config.pin_all_to_one_core ? CpuMask::Single(0)
                                                  : CpuMask::All(core.ncpus());

  groups->reserve(static_cast<size_t>(config.message_threads));
  for (int m = 0; m < config.message_threads; ++m) {
    auto& group = groups->emplace_back();
    group.reply_wq = std::make_unique<WaitQueue>("schbench-reply-" + std::to_string(m));
    for (int w = 0; w < config.workers_per_thread; ++w) {
      group.worker_wqs.push_back(
          std::make_unique<WaitQueue>("schbench-work-" + std::to_string(m)));
    }

    // Workers: block for a message, work, reply.
    for (int w = 0; w < config.workers_per_thread; ++w) {
      WaitQueue* in = group.worker_wqs[w].get();
      WaitQueue* out = group.reply_wq.get();
      auto step = std::make_shared<int>(0);
      const Duration work = config.worker_work_ns;
      Task* t = core.CreateTaskOn("schbench-worker-" + std::to_string(m) + "-" + std::to_string(w),
                                  MakeFnBody([in, out, step, work](SimContext& ctx) -> Action {
                                    switch (*step) {
                                      case 0:
                                        *step = 1;
                                        return Action::Block(in);
                                      case 1:
                                        *step = 2;
                                        return Action::Compute(work);
                                      default:
                                        *step = 0;
                                        return Action::Wake(out);
                                    }
                                  }),
                                  policy, 0, mask);
      worker_pids->insert(t->pid());
      if (config.hint_runtime != nullptr) {
        // Locality hint: this worker belongs to message group m.
        HintBlob hint;
        hint.w[0] = t->pid();
        hint.w[1] = static_cast<uint64_t>(m);
        config.hint_runtime->SendHint(config.hint_queue, hint);
      }
    }

    // Message thread: wake all workers, collect all replies, think, repeat.
    Group* g = &groups->back();
    auto state = std::make_shared<int>(0);
    const int nworkers = config.workers_per_thread;
    const Duration think = config.round_think_ns;
    Task* mt = core.CreateTaskOn(
        "schbench-msg-" + std::to_string(m),
        MakeFnBody([g, state, nworkers, think](SimContext& ctx) -> Action {
          // States: 0..n-1 wake worker i; n..2n-1 block for reply; 2n think.
          const int s = *state;
          if (s < nworkers) {
            *state = s + 1;
            return Action::Wake(g->worker_wqs[s].get());
          }
          if (s < 2 * nworkers) {
            *state = s + 1;
            return Action::Block(g->reply_wq.get());
          }
          *state = 0;
          return think > 0 ? Action::Sleep(think) : Action::Compute(1);
        }),
        policy, 0, mask);
    if (config.hint_runtime != nullptr) {
      HintBlob hint;
      hint.w[0] = mt->pid();
      hint.w[1] = static_cast<uint64_t>(m);
      config.hint_runtime->SendHint(config.hint_queue, hint);
    }
  }

  core.Start();
  core.RunFor(config.warmup + config.runtime);
  core.set_wake_latency_hook(nullptr);

  SchbenchResult result;
  result.p50 = latencies->Percentile(50.0);
  result.p99 = latencies->Percentile(99.0);
  result.mean = static_cast<Duration>(latencies->mean_ns());
  result.wakeups = latencies->count();
  return result;
}

}  // namespace enoki

#endif  // SRC_WORKLOADS_SCHBENCH_H_
