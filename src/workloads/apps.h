// Synthetic application suite standing in for the NAS Parallel Benchmarks
// and the Phoronix Multicore suite (Table 5).
//
// We cannot ship NASA's Fortran kernels or 27 Phoronix applications, but the
// scheduler only ever sees their *parallel structure*: task counts, compute
// granularity, synchronization pattern, and blocking behaviour. Each AppSpec
// reproduces one benchmark's structure (per-core SPMD with barriers for the
// NAS kernels; fork-join, pipeline, oversubscribed, and I/O-mixed patterns
// for the Phoronix entries). The reported score is work completed per
// second, so CFS-vs-WFQ deltas come from scheduling decisions alone — the
// same property the paper's Table 5 isolates.

#ifndef SRC_WORKLOADS_APPS_H_
#define SRC_WORKLOADS_APPS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_core.h"

namespace enoki {

enum class AppPattern {
  kSpmdBarrier,     // one task per core, compute + barrier phases (NAS)
  kForkJoin,        // repeated spawn/join of short parallel phases
  kPipeline,        // producer/consumer stages over queues
  kOversubscribed,  // more tasks than cores, uneven sizes
  kIoMixed,         // compute interleaved with sleeps (I/O waits)
};

struct AppSpec {
  std::string name;
  AppPattern pattern = AppPattern::kSpmdBarrier;
  int tasks = 8;                         // worker count (kSpmdBarrier uses ncpus)
  Duration phase_ns = Milliseconds(5);   // compute per phase per task
  int phases = 200;                      // number of phases
  double skew = 0.0;                     // per-task size skew (0 = uniform)
  Duration sleep_ns = 0;                 // kIoMixed: sleep between phases
  uint64_t seed = 1;
};

struct AppResult {
  double score = 0.0;  // work units per second (higher is better)
  double elapsed_seconds = 0.0;
  bool completed = false;
};

// Runs one synthetic application to completion under `policy`.
AppResult RunApp(SchedCore& core, int policy, const AppSpec& spec);

// The full Table 5 suite: 9 NAS analogs + 27 Phoronix analogs.
std::vector<AppSpec> Table5Suite(int ncpus);

}  // namespace enoki

#endif  // SRC_WORKLOADS_APPS_H_
