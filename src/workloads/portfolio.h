// Paired workloads for the sched_ext policy portfolio (src/sched/ext/).
//
// Each portfolio policy gets the scenario it was designed for:
//   central -> RunTenantMix:       mostly-idle tenants whose bursts must be
//                                  dispatched promptly by the central pulse
//                                  while batch spinners hog the workers.
//   pair    -> RunSiblingPairs:    two adversarial cookie populations on an
//                                  SMT machine; the compatibility rule costs
//                                  throughput (the L1TF security tax).
//   layered -> RunServiceTiers:    a latency tier feeding a normal tier with
//                                  batch spinners underneath; the latency
//                                  tier's guaranteed CPUs bound its p99.
//   rusty   -> RunSocketImbalance: compute pinned to node 0, released
//                                  mid-run; greedy cross-domain stealing
//                                  determines the makespan.
//
// All four follow the house workload idiom (pipe.h/schbench.h/dispersive.h):
// MakeFnBody state machines over shared_ptr state, deterministic seeded
// jitter, results carried in plain structs.

#ifndef SRC_WORKLOADS_PORTFOLIO_H_
#define SRC_WORKLOADS_PORTFOLIO_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/enoki/runtime.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_core.h"

namespace enoki {

// ---- central: tickless tenant mix ----

struct TenantMixConfig {
  int tenants = 24;
  uint64_t rounds = 300;                     // bursts per tenant
  Duration think_ns = Microseconds(800);     // mean idle gap between bursts
  Duration burst_ns = Microseconds(30);      // per-wake service burst
  int batch_tasks = 2;                       // spinners the pulse must police
  Duration batch_spin = Milliseconds(1);
  int batch_policy = -1;                     // -1: same policy as the tenants
  int batch_nice = 0;
  uint64_t seed = 1;
};

struct TenantMixResult {
  bool completed = false;
  Duration p50 = 0;
  Duration p99 = 0;
  uint64_t wakeups = 0;
  Time end_time = 0;
};

inline TenantMixResult RunTenantMix(SchedCore& core, int policy, const TenantMixConfig& config) {
  auto latencies = std::make_shared<LatencyRecorder>();
  auto tenant_pids = std::make_shared<std::unordered_set<uint64_t>>();
  core.set_wake_latency_hook([latencies, tenant_pids](Task* t, Duration lat) {
    if (tenant_pids->count(t->pid()) > 0) {
      latencies->Record(lat);
    }
  });

  Rng seeder(config.seed);
  std::vector<Task*> tenants;
  for (int i = 0; i < config.tenants; ++i) {
    struct TenantState {
      Rng rng;
      uint64_t remaining;
      int step = 0;
    };
    auto st = std::make_shared<TenantState>(TenantState{seeder.Fork(), config.rounds});
    const Duration think = config.think_ns;
    const Duration burst = config.burst_ns;
    Task* t = core.CreateTaskOn(
        "tenant-" + std::to_string(i),
        MakeFnBody([st, think, burst](SimContext& ctx) -> Action {
          TenantState& s = *st;
          if (s.step == 0) {
            if (s.remaining == 0) {
              return Action::Exit();
            }
            --s.remaining;
            s.step = 1;
            // Mostly idle: sleep think/2..3*think/2, then a tiny burst.
            return Action::Sleep(think / 2 + s.rng.NextBelow(think));
          }
          s.step = 0;
          return Action::Compute(burst);
        }),
        policy, 0, CpuMask::All(core.ncpus()));
    tenant_pids->insert(t->pid());
    tenants.push_back(t);
  }

  const int batch_policy = config.batch_policy >= 0 ? config.batch_policy : policy;
  for (int b = 0; b < config.batch_tasks; ++b) {
    core.CreateTaskOn("tenant-batch-" + std::to_string(b),
                      std::make_unique<SpinForeverBody>(config.batch_spin), batch_policy,
                      config.batch_nice, CpuMask::All(core.ncpus()));
  }

  core.Start();
  const Time start = core.now();
  const Duration per_round = 2 * config.think_ns + config.burst_ns + Milliseconds(1);
  const bool done =
      core.RunUntilTasksDead(tenants, start + config.rounds * per_round + Seconds(1));
  core.set_wake_latency_hook(nullptr);

  TenantMixResult result;
  result.completed = done;
  result.p50 = latencies->Percentile(50.0);
  result.p99 = latencies->Percentile(99.0);
  result.wakeups = latencies->count();
  result.end_time = core.now();
  return result;
}

// ---- pair: adversarial sibling cookies ----

struct SiblingPairsConfig {
  int tasks_per_cookie = 4;
  int cookies = 2;                          // distinct security domains
  uint64_t rounds = 400;
  Duration compute_ns = Microseconds(200);
  Duration gap_ns = Microseconds(100);
  // Cookies travel through the module hint queue, like real scx_pair
  // configuration; without a runtime every task keeps cookie 0.
  EnokiRuntime* hint_runtime = nullptr;
  int hint_queue = -1;
};

struct SiblingPairsResult {
  bool completed = false;
  Duration makespan = 0;
  Duration p99 = 0;
  uint64_t wakeups = 0;
  Time end_time = 0;
};

inline SiblingPairsResult RunSiblingPairs(SchedCore& core, int policy,
                                          const SiblingPairsConfig& config) {
  auto latencies = std::make_shared<LatencyRecorder>();
  auto pids = std::make_shared<std::unordered_set<uint64_t>>();
  core.set_wake_latency_hook([latencies, pids](Task* t, Duration lat) {
    if (pids->count(t->pid()) > 0) {
      latencies->Record(lat);
    }
  });

  std::vector<Task*> tasks;
  for (int c = 0; c < config.cookies; ++c) {
    for (int i = 0; i < config.tasks_per_cookie; ++i) {
      struct PairState {
        uint64_t remaining;
        int step = 0;
      };
      auto st = std::make_shared<PairState>(PairState{config.rounds});
      const Duration work = config.compute_ns;
      const Duration gap = config.gap_ns;
      Task* t = core.CreateTaskOn(
          "cookie" + std::to_string(c + 1) + "-" + std::to_string(i),
          MakeFnBody([st, work, gap](SimContext& ctx) -> Action {
            PairState& s = *st;
            if (s.step == 0) {
              if (s.remaining == 0) {
                return Action::Exit();
              }
              --s.remaining;
              s.step = 1;
              return Action::Compute(work);
            }
            s.step = 0;
            return Action::Sleep(gap);
          }),
          policy, 0, CpuMask::All(core.ncpus()));
      pids->insert(t->pid());
      tasks.push_back(t);
      if (config.hint_runtime != nullptr) {
        HintBlob hint;
        hint.w[0] = t->pid();
        hint.w[1] = static_cast<uint64_t>(c + 1);
        config.hint_runtime->SendHint(config.hint_queue, hint);
      }
    }
  }

  core.Start();
  const Time start = core.now();
  const Duration per_round = config.compute_ns + config.gap_ns;
  const bool done = core.RunUntilTasksDead(
      tasks, start + config.rounds * per_round * (config.cookies + 2) + Seconds(1));
  core.set_wake_latency_hook(nullptr);

  SiblingPairsResult result;
  result.completed = done;
  result.makespan = core.now() - start;
  result.p99 = latencies->Percentile(99.0);
  result.wakeups = latencies->count();
  result.end_time = core.now();
  return result;
}

// ---- layered: multi-tier service ----

struct ServiceTiersConfig {
  int groups = 3;                           // frontend+mid pairs
  uint64_t rounds = 300;
  Duration frontend_work = Microseconds(20);
  Duration mid_work = Microseconds(100);
  Duration think_ns = Microseconds(400);    // frontend idle gap (jittered)
  int frontend_nice = -10;                  // matches the latency layer
  int mid_nice = 0;                         // matches the normal layer
  int batch_tasks = 2;
  int batch_nice = 10;                      // matches the batch layer
  Duration batch_spin = Milliseconds(1);
  uint64_t seed = 1;
};

struct ServiceTiersResult {
  bool completed = false;
  Duration frontend_p99 = 0;  // latency-tier wakeup p99
  Duration mid_p99 = 0;
  double batch_cpus = 0.0;    // average CPUs' worth of batch runtime
  uint64_t wakeups = 0;
  Time end_time = 0;
};

inline ServiceTiersResult RunServiceTiers(SchedCore& core, int policy,
                                          const ServiceTiersConfig& config) {
  auto fe_lat = std::make_shared<LatencyRecorder>();
  auto mid_lat = std::make_shared<LatencyRecorder>();
  auto fe_pids = std::make_shared<std::unordered_set<uint64_t>>();
  auto mid_pids = std::make_shared<std::unordered_set<uint64_t>>();
  core.set_wake_latency_hook([fe_lat, mid_lat, fe_pids, mid_pids](Task* t, Duration lat) {
    if (fe_pids->count(t->pid()) > 0) {
      fe_lat->Record(lat);
    } else if (mid_pids->count(t->pid()) > 0) {
      mid_lat->Record(lat);
    }
  });

  auto wqs = std::make_shared<std::vector<std::unique_ptr<WaitQueue>>>();
  Rng seeder(config.seed);
  std::vector<Task*> chain;
  for (int g = 0; g < config.groups; ++g) {
    wqs->push_back(std::make_unique<WaitQueue>("tier-" + std::to_string(g)));
    WaitQueue* wq = wqs->back().get();

    // Mid worker: serve `rounds` requests, then exit.
    struct MidState {
      uint64_t remaining;
      int step = 0;
    };
    auto mst = std::make_shared<MidState>(MidState{config.rounds});
    const Duration mwork = config.mid_work;
    Task* mid = core.CreateTaskOn(
        "mid-" + std::to_string(g),
        MakeFnBody([mst, mwork, wq](SimContext& ctx) -> Action {
          MidState& s = *mst;
          if (s.step == 0) {
            if (s.remaining == 0) {
              return Action::Exit();
            }
            --s.remaining;
            s.step = 1;
            return Action::Block(wq);
          }
          s.step = 0;
          return Action::Compute(mwork);
        }),
        policy, config.mid_nice, CpuMask::All(core.ncpus()));
    mid_pids->insert(mid->pid());
    chain.push_back(mid);

    // Frontend: think, a small burst, hand off to the mid tier.
    struct FeState {
      Rng rng;
      uint64_t remaining;
      int step = 0;
    };
    auto fst = std::make_shared<FeState>(FeState{seeder.Fork(), config.rounds});
    const Duration fwork = config.frontend_work;
    const Duration think = config.think_ns;
    Task* fe = core.CreateTaskOn(
        "frontend-" + std::to_string(g),
        MakeFnBody([fst, fwork, think, wq](SimContext& ctx) -> Action {
          FeState& s = *fst;
          switch (s.step) {
            case 0:
              if (s.remaining == 0) {
                return Action::Exit();
              }
              --s.remaining;
              s.step = 1;
              return Action::Sleep(think / 2 + s.rng.NextBelow(think));
            case 1:
              s.step = 2;
              return Action::Compute(fwork);
            default:
              s.step = 0;
              return Action::Wake(wq);
          }
        }),
        policy, config.frontend_nice, CpuMask::All(core.ncpus()));
    fe_pids->insert(fe->pid());
    chain.push_back(fe);
  }

  std::vector<Task*> batch;
  for (int b = 0; b < config.batch_tasks; ++b) {
    batch.push_back(core.CreateTaskOn("tier-batch-" + std::to_string(b),
                                      std::make_unique<SpinForeverBody>(config.batch_spin),
                                      policy, config.batch_nice, CpuMask::All(core.ncpus())));
  }

  core.Start();
  const Time start = core.now();
  const Duration per_round = 2 * config.think_ns + config.mid_work + Milliseconds(1);
  const bool done =
      core.RunUntilTasksDead(chain, start + config.rounds * per_round + Seconds(1));
  core.set_wake_latency_hook(nullptr);

  ServiceTiersResult result;
  result.completed = done;
  result.frontend_p99 = fe_lat->Percentile(99.0);
  result.mid_p99 = mid_lat->Percentile(99.0);
  result.wakeups = fe_lat->count() + mid_lat->count();
  const double elapsed_sec = ToSeconds(core.now() - start);
  if (elapsed_sec > 0) {
    Duration batch_rt = 0;
    for (Task* t : batch) {
      batch_rt += core.TaskRuntime(t);
    }
    result.batch_cpus = ToSeconds(batch_rt) / elapsed_sec;
  }
  result.end_time = core.now();
  return result;
}

// ---- rusty: cross-socket imbalance ----

struct SocketImbalanceConfig {
  int tasks = 24;
  Duration work_total = Milliseconds(8);    // per-task CPU demand
  Duration chunk = Microseconds(200);
  int pin_node = 0;                         // all tasks start pinned here
  Duration release_after = Milliseconds(5); // then affinity opens up
  int nice = 0;
};

struct SocketImbalanceResult {
  bool completed = false;
  Duration makespan = 0;
  Time end_time = 0;
};

inline SocketImbalanceResult RunSocketImbalance(SchedCore& core,
                                                const int policy,
                                                const SocketImbalanceConfig& config) {
  CpuMask pinned;
  for (int cpu = 0; cpu < core.ncpus(); ++cpu) {
    if (core.NodeOf(cpu) == config.pin_node) {
      pinned.Set(cpu);
    }
  }

  auto tasks = std::make_shared<std::vector<Task*>>();
  for (int i = 0; i < config.tasks; ++i) {
    tasks->push_back(core.CreateTaskOn("imbalance-" + std::to_string(i),
                                       std::make_unique<CpuBoundBody>(config.work_total,
                                                                      config.chunk),
                                       policy, config.nice, pinned));
  }

  // Mid-run the pin is lifted (deployment finished, cgroup widened); from
  // here on only the scheduler's cross-domain balancing spreads the load.
  SchedCore* corep = &core;
  const int ncpus = core.ncpus();
  core.loop().ScheduleAfter(config.release_after, [tasks, corep, ncpus] {
    for (Task* t : *tasks) {
      if (t->state() != TaskState::kDead) {
        corep->SetTaskAffinity(t, CpuMask::All(ncpus));
      }
    }
  });

  core.Start();
  const Time start = core.now();
  // Worst case: everything serialized on one node's CPUs.
  const Duration budget =
      config.work_total * static_cast<uint64_t>(config.tasks) + Seconds(1);
  const bool done = core.RunUntilTasksDead(*tasks, start + budget);

  SocketImbalanceResult result;
  result.completed = done;
  result.makespan = core.now() - start;
  result.end_time = core.now();
  return result;
}

}  // namespace enoki

#endif  // SRC_WORKLOADS_PORTFOLIO_H_
