#include "src/enoki/record.h"

#include <cinttypes>
#include <cstdio>

namespace enoki {

const char* RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kTaskNew:
      return "task_new";
    case RecordType::kTaskWakeup:
      return "task_wakeup";
    case RecordType::kTaskBlocked:
      return "task_blocked";
    case RecordType::kTaskPreempt:
      return "task_preempt";
    case RecordType::kTaskYield:
      return "task_yield";
    case RecordType::kTaskDead:
      return "task_dead";
    case RecordType::kTaskDeparted:
      return "task_departed";
    case RecordType::kPickNextTask:
      return "pick_next_task";
    case RecordType::kPntErr:
      return "pnt_err";
    case RecordType::kSelectTaskRq:
      return "select_task_rq";
    case RecordType::kMigrateTaskRq:
      return "migrate_task_rq";
    case RecordType::kBalance:
      return "balance";
    case RecordType::kBalanceErr:
      return "balance_err";
    case RecordType::kTaskTick:
      return "task_tick";
    case RecordType::kTimerFired:
      return "timer_fired";
    case RecordType::kParseHint:
      return "parse_hint";
    case RecordType::kAffinityChanged:
      return "affinity_changed";
    case RecordType::kPrioChanged:
      return "prio_changed";
    case RecordType::kLockCreate:
      return "lock_create";
    case RecordType::kLockAcquire:
      return "lock_acquire";
    case RecordType::kLockRelease:
      return "lock_release";
    case RecordType::kUpgrade:
      return "upgrade";
    case RecordType::kUpgradeRollback:
      return "upgrade_rollback";
    case RecordType::kModuleRestart:
      return "module_restart";
    case RecordType::kShardMerge:
      return "shard_merge";
    case RecordType::kCheckpointSave:
      return "checkpoint_save";
    case RecordType::kCheckpointRestore:
      return "checkpoint_restore";
  }
  return "unknown";
}

std::vector<RecordEntry> FlightRecorder::Tail(size_t max_entries) const {
  const uint64_t stored = seq_ < ring_.size() ? seq_ : ring_.size();
  const uint64_t n = stored < max_entries ? stored : max_entries;
  std::vector<RecordEntry> out;
  out.reserve(n);
  for (uint64_t i = seq_ - n; i < seq_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

Recorder::Recorder(size_t ring_capacity)
    : ring_(RingBuffer<RecordEntry>::RoundUpPow2(ring_capacity)) {}

void Recorder::Append(RecordEntry entry) {
  entry.seq = next_seq_++;
  entry.time = time_;
  entry.kthread = GetCurrentKthread();
  ++appended_;
  ring_.Push(entry);
}

void Recorder::OnLockCreate(uint64_t lock_id) {
  RecordEntry e;
  e.type = RecordType::kLockCreate;
  e.arg[0] = lock_id;
  Append(e);
}

void Recorder::OnLockAcquire(uint64_t lock_id) {
  RecordEntry e;
  e.type = RecordType::kLockAcquire;
  e.arg[0] = lock_id;
  Append(e);
}

void Recorder::OnLockRelease(uint64_t lock_id) {
  RecordEntry e;
  e.type = RecordType::kLockRelease;
  e.arg[0] = lock_id;
  Append(e);
}

size_t Recorder::Drain() {
  size_t n = 0;
  while (auto e = ring_.Pop()) {
    log_.push_back(*e);
    ++n;
  }
  return n;
}

std::vector<RecordEntry> Recorder::TakeLog() {
  Drain();
  return std::move(log_);
}

bool Recorder::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  for (const RecordEntry& e : log_) {
    std::fprintf(f,
                 "%" PRIu64 " %" PRIu64 " %d %u %" PRIu64 " %d %" PRIu64 " %" PRIu64 " %" PRIu64
                 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %d %d\n",
                 e.seq, e.time, e.kthread, static_cast<unsigned>(e.type), e.pid, e.cpu, e.runtime,
                 e.arg[0], e.arg[1], e.arg[2], e.arg[3], e.resp0, e.resp1,
                 e.has_resp ? 1 : 0, e.flag ? 1 : 0);
  }
  std::fclose(f);
  return true;
}

bool Recorder::LoadFromFile(const std::string& path, std::vector<RecordEntry>* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  out->clear();
  RecordEntry e;
  unsigned type = 0;
  int has_resp = 0;
  int flag = 0;
  while (std::fscanf(f,
                     "%" SCNu64 " %" SCNu64 " %d %u %" SCNu64 " %d %" SCNu64 " %" SCNu64
                     " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64 " %d %d",
                     &e.seq, &e.time, &e.kthread, &type, &e.pid, &e.cpu, &e.runtime, &e.arg[0],
                     &e.arg[1], &e.arg[2], &e.arg[3], &e.resp0, &e.resp1, &has_resp,
                     &flag) == 15) {
    e.type = static_cast<RecordType>(type);
    e.has_resp = has_resp != 0;
    e.flag = flag != 0;
    out->push_back(e);
  }
  std::fclose(f);
  return true;
}

}  // namespace enoki
