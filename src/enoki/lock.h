// Shim locks for Enoki scheduler modules (sections 3.1 and 3.4).
//
// Scheduler code synchronizes through these wrappers instead of raw kernel
// locks. The wrappers delegate to pluggable hooks so the same scheduler code
// runs unchanged in three modes:
//  - normal kernel operation: hooks are a no-op (the simulated kernel is
//    sequential; the spinlock below still provides real exclusion when the
//    module is exercised from real threads);
//  - record mode: every create/acquire/release is appended to the record
//    log together with the acquiring kernel-thread id, which is the paper's
//    mechanism for making concurrent replay deterministic;
//  - replay mode: acquisition blocks until it is this thread's recorded
//    turn, reproducing the recorded interleaving exactly.
//
// Everything here is header-inline: Acquire/Release run once or twice per
// scheduler callback (millions of times per simulated second), and in the
// common no-hooks case they must compile down to a couple of atomic
// instructions rather than an out-of-line call into a mutex.

#ifndef SRC_ENOKI_LOCK_H_
#define SRC_ENOKI_LOCK_H_

#include <atomic>
#include <cstdint>

namespace enoki {

class LockHooks {
 public:
  virtual ~LockHooks() = default;
  virtual void OnLockCreate(uint64_t lock_id) {}
  // Called before the underlying lock is taken; may block (replay mode).
  virtual void OnLockAcquire(uint64_t lock_id) {}
  virtual void OnLockRelease(uint64_t lock_id) {}
};

namespace lock_internal {
inline std::atomic<LockHooks*> g_hooks{nullptr};
inline std::atomic<uint64_t> g_next_lock_id{1};
inline thread_local int g_kthread = 0;
}  // namespace lock_internal

// Global hook installation. Null means no-op hooks.
inline LockHooks* GetLockHooks() {
  return lock_internal::g_hooks.load(std::memory_order_acquire);
}
inline void SetLockHooks(LockHooks* hooks) {
  lock_internal::g_hooks.store(hooks, std::memory_order_release);
}

// Identity of the "kernel thread" executing scheduler code on this host
// thread; the runtime sets it to the CPU id around module calls, and the
// replay engine sets it to the recorded kernel-thread id.
inline int GetCurrentKthread() { return lock_internal::g_kthread; }
inline void SetCurrentKthread(int kthread) { lock_internal::g_kthread = kthread; }

inline uint64_t AllocateLockId() {
  return lock_internal::g_next_lock_id.fetch_add(1, std::memory_order_relaxed);
}

class SpinLock {
 public:
  SpinLock() : id_(AllocateLockId()) {
    if (LockHooks* hooks = GetLockHooks()) {
      hooks->OnLockCreate(id_);
    }
  }
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Acquire() {
    if (LockHooks* hooks = GetLockHooks()) [[unlikely]] {
      hooks->OnLockAcquire(id_);
    }
    while (locked_.exchange(true, std::memory_order_acquire)) {
      // Uncontended in the sequential simulator; spin for real threads.
      while (locked_.load(std::memory_order_relaxed)) {
      }
    }
  }
  void Release() {
    locked_.store(false, std::memory_order_release);
    if (LockHooks* hooks = GetLockHooks()) [[unlikely]] {
      hooks->OnLockRelease(id_);
    }
  }
  uint64_t id() const { return id_; }

 private:
  const uint64_t id_;
  std::atomic<bool> locked_{false};
};

// RAII guard.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.Acquire(); }
  ~SpinLockGuard() { lock_.Release(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace enoki

#endif  // SRC_ENOKI_LOCK_H_
