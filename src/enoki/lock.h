// Shim locks for Enoki scheduler modules (sections 3.1 and 3.4).
//
// Scheduler code synchronizes through these wrappers instead of raw kernel
// locks. The wrappers delegate to pluggable hooks so the same scheduler code
// runs unchanged in three modes:
//  - normal kernel operation: hooks are a no-op (the simulated kernel is
//    sequential; the mutex below still provides real exclusion when the
//    module is exercised from real threads);
//  - record mode: every create/acquire/release is appended to the record
//    log together with the acquiring kernel-thread id, which is the paper's
//    mechanism for making concurrent replay deterministic;
//  - replay mode: acquisition blocks until it is this thread's recorded
//    turn, reproducing the recorded interleaving exactly.

#ifndef SRC_ENOKI_LOCK_H_
#define SRC_ENOKI_LOCK_H_

#include <cstdint>
#include <mutex>

namespace enoki {

class LockHooks {
 public:
  virtual ~LockHooks() = default;
  virtual void OnLockCreate(uint64_t lock_id) {}
  // Called before the underlying mutex is taken; may block (replay mode).
  virtual void OnLockAcquire(uint64_t lock_id) {}
  virtual void OnLockRelease(uint64_t lock_id) {}
};

// Global hook installation. Null means no-op hooks.
LockHooks* GetLockHooks();
void SetLockHooks(LockHooks* hooks);

// Identity of the "kernel thread" executing scheduler code on this host
// thread; the runtime sets it to the CPU id around module calls, and the
// replay engine sets it to the recorded kernel-thread id.
int GetCurrentKthread();
void SetCurrentKthread(int kthread);

uint64_t AllocateLockId();

class SpinLock {
 public:
  SpinLock();
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Acquire();
  void Release();
  uint64_t id() const { return id_; }

 private:
  const uint64_t id_;
  std::mutex mu_;
};

// RAII guard.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.Acquire(); }
  ~SpinLockGuard() { lock_.Release(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace enoki

#endif  // SRC_ENOKI_LOCK_H_
