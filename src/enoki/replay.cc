#include "src/enoki/replay.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_map>

#include "src/base/log.h"

namespace enoki {

// Enforces per-lock recorded acquisition order. Lock identity is matched by
// creation order: the Nth lock the replayed module creates corresponds to
// the Nth kLockCreate entry in the trace.
class ReplayEngine::LockOrderHooks : public LockHooks {
 public:
  LockOrderHooks(const std::vector<RecordEntry>& log, int wait_timeout_ms)
      : wait_timeout_ms_(wait_timeout_ms) {
    for (const RecordEntry& e : log) {
      if (e.type == RecordType::kLockCreate) {
        create_order_.push_back(e.arg[0]);
      } else if (e.type == RecordType::kLockAcquire) {
        orders_[e.arg[0]].push_back(e.kthread);
      }
    }
  }

  void OnLockCreate(uint64_t runtime_id) override {
    std::lock_guard<std::mutex> g(mu_);
    if (next_create_ < create_order_.size()) {
      id_map_[runtime_id] = create_order_[next_create_++];
    }
  }

  // The recorded turn is *held* from acquire to release: advancing the turn
  // at acquire time would let the next thread race this one to the
  // underlying mutex and invert the critical sections.
  void OnLockAcquire(uint64_t runtime_id) override {
    std::unique_lock<std::mutex> g(mu_);
    const std::vector<int32_t>* seq = nullptr;
    LockState* state = LookUp(runtime_id, &seq);
    if (state == nullptr) {
      return;  // lock unknown to the trace (created outside recording)
    }
    const int me = GetCurrentKthread();
    if (state->next < seq->size() && (*seq)[state->next] != me) {
      ++blocks_;
      const bool ok = cv_.wait_for(g, std::chrono::milliseconds(wait_timeout_ms_), [&] {
        return state->next >= seq->size() || (*seq)[state->next] == me;
      });
      if (!ok) {
        ++timeouts_;  // trace incomplete (e.g. record ring overrun); proceed
        if (state->next < seq->size()) {
          ++state->next;  // give up this turn so others can make progress
        }
        cv_.notify_all();
      }
    }
  }

  void OnLockRelease(uint64_t runtime_id) override {
    std::unique_lock<std::mutex> g(mu_);
    const std::vector<int32_t>* seq = nullptr;
    LockState* state = LookUp(runtime_id, &seq);
    if (state == nullptr) {
      return;
    }
    const int me = GetCurrentKthread();
    if (state->next < seq->size() && (*seq)[state->next] == me) {
      ++state->next;
    }
    cv_.notify_all();
  }

  uint64_t blocks() const { return blocks_; }
  uint64_t timeouts() const { return timeouts_; }

 private:
  struct LockState {
    size_t next = 0;  // index of the next recorded acquisition
  };

  // Caller holds mu_.
  LockState* LookUp(uint64_t runtime_id, const std::vector<int32_t>** seq) {
    auto mapped = id_map_.find(runtime_id);
    if (mapped == id_map_.end()) {
      return nullptr;
    }
    auto order = orders_.find(mapped->second);
    if (order == orders_.end()) {
      return nullptr;
    }
    *seq = &order->second;
    return &states_[mapped->second];
  }

  const int wait_timeout_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<uint64_t> create_order_;
  size_t next_create_ = 0;
  std::unordered_map<uint64_t, uint64_t> id_map_;  // runtime id -> recorded id
  std::unordered_map<uint64_t, std::vector<int32_t>> orders_;
  std::unordered_map<uint64_t, LockState> states_;
  std::atomic<uint64_t> blocks_{0};
  std::atomic<uint64_t> timeouts_{0};
};

ReplayEngine::ReplayEngine(std::vector<RecordEntry> log, int ncpus, int max_outstanding,
                           int lock_wait_timeout_ms)
    : log_(std::move(log)),
      env_(ncpus),
      max_outstanding_(max_outstanding),
      lock_wait_timeout_ms_(lock_wait_timeout_ms) {}

ReplayEngine::~ReplayEngine() { SetLockHooks(nullptr); }

void ReplayEngine::InstallHooks() {
  hooks_ = std::make_unique<LockOrderHooks>(log_, lock_wait_timeout_ms_);
  SetLockHooks(hooks_.get());
}

namespace {

TaskMessage MsgFrom(const RecordEntry& e) {
  TaskMessage msg;
  msg.pid = e.pid;
  msg.cpu = e.cpu;
  msg.prev_cpu = e.cpu;
  msg.runtime = e.runtime;
  msg.nice = static_cast<int>(e.arg[0]) + kMinNice;
  msg.wake_sync = e.flag;
  return msg;
}

bool IsLockEntry(RecordType t) {
  return t == RecordType::kLockCreate || t == RecordType::kLockAcquire ||
         t == RecordType::kLockRelease;
}

}  // namespace

void ReplayEngine::PerformCall(EnokiSched* module, const RecordEntry& e, ReplayResult* result) {
  env_.SetNow(e.time);
  uint64_t got = 0;
  bool check = false;
  switch (e.type) {
    case RecordType::kTaskNew:
      module->TaskNew(MsgFrom(e), SchedulableMinter::Mint(e.pid, e.cpu, 0));
      break;
    case RecordType::kTaskWakeup:
      module->TaskWakeup(MsgFrom(e), SchedulableMinter::Mint(e.pid, e.cpu, 0));
      break;
    case RecordType::kTaskBlocked:
      module->TaskBlocked(MsgFrom(e));
      break;
    case RecordType::kTaskPreempt:
      module->TaskPreempt(MsgFrom(e), SchedulableMinter::Mint(e.pid, e.cpu, 0));
      break;
    case RecordType::kTaskYield:
      module->TaskYield(MsgFrom(e), SchedulableMinter::Mint(e.pid, e.cpu, 0));
      break;
    case RecordType::kTaskDead:
      module->TaskDead(e.pid);
      break;
    case RecordType::kTaskDeparted: {
      auto token = module->TaskDeparted(MsgFrom(e));
      got = token.has_value() ? token->pid() : 0;
      check = true;
      break;
    }
    case RecordType::kPickNextTask: {
      auto token = module->PickNextTask(e.cpu, std::nullopt);
      got = token.has_value() ? token->pid() : 0;
      check = true;
      break;
    }
    case RecordType::kPntErr:
      module->PntErr(e.cpu, SchedulableMinter::Mint(e.pid, e.cpu, 0));
      break;
    case RecordType::kSelectTaskRq: {
      TaskMessage msg = MsgFrom(e);
      msg.is_new = e.arg[1] != 0;
      got = static_cast<uint64_t>(module->SelectTaskRq(msg));
      check = true;
      break;
    }
    case RecordType::kMigrateTaskRq: {
      MigrateMessage mig;
      mig.pid = e.pid;
      mig.from_cpu = static_cast<int>(e.arg[0]);
      mig.to_cpu = e.cpu;
      mig.runtime = e.runtime;
      Schedulable old = module->MigrateTaskRq(mig, SchedulableMinter::Mint(e.pid, e.cpu, 0));
      got = old.valid() ? old.pid() : 0;
      check = true;
      break;
    }
    case RecordType::kBalance: {
      auto pid = module->Balance(e.cpu);
      got = pid.value_or(0);
      check = true;
      break;
    }
    case RecordType::kBalanceErr:
      module->BalanceErr(e.cpu, e.pid, std::nullopt);
      break;
    case RecordType::kTaskTick:
      module->TaskTick(e.cpu, e.pid, e.runtime);
      break;
    case RecordType::kTimerFired:
      module->TimerFired(e.cpu);
      break;
    case RecordType::kParseHint: {
      HintBlob hint;
      hint.w[0] = e.arg[0];
      hint.w[1] = e.arg[1];
      hint.w[2] = e.arg[2];
      hint.w[3] = e.arg[3];
      module->ParseHint(hint);
      break;
    }
    case RecordType::kAffinityChanged:
      module->TaskAffinityChanged(e.pid, CpuMask::FromWords(e.arg[0], e.arg[1]));
      break;
    case RecordType::kPrioChanged:
      module->TaskPrioChanged(e.pid, static_cast<int>(e.arg[0]) + kMinNice);
      break;
    case RecordType::kLockCreate:
    case RecordType::kLockAcquire:
    case RecordType::kLockRelease:
      break;  // driven by the module's own lock shims
    case RecordType::kUpgrade:
    case RecordType::kUpgradeRollback:
    case RecordType::kModuleRestart:
    case RecordType::kShardMerge:
    case RecordType::kCheckpointSave:
    case RecordType::kCheckpointRestore:
      break;  // lifecycle/engine markers; replay runs a single module instance
  }
  if (check) {
    std::lock_guard<std::mutex> g(result_mu_);
    if (got != e.resp0) {
      ++result->response_mismatches;
      ENOKI_DEBUG("replay mismatch at seq %llu (%s): got %llu want %llu",
                  static_cast<unsigned long long>(e.seq), RecordTypeName(e.type),
                  static_cast<unsigned long long>(got),
                  static_cast<unsigned long long>(e.resp0));
    }
  }
}

ReplayResult ReplayEngine::Run(EnokiSched* module) {
  ENOKI_CHECK(hooks_ != nullptr);  // InstallHooks() must precede module construction
  ReplayResult result;

  const auto replay_start = std::chrono::steady_clock::now();

  // Per-kthread serialization: thread n for kthread k starts only after
  // thread n-1 for k completed.
  struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  std::unordered_map<int32_t, std::shared_ptr<Gate>> last_gate;
  std::deque<std::thread> window;

  for (const RecordEntry& e : log_) {
    if (IsLockEntry(e.type)) {
      continue;
    }
    std::shared_ptr<Gate> prev = last_gate.count(e.kthread) ? last_gate[e.kthread] : nullptr;
    auto gate = std::make_shared<Gate>();
    last_gate[e.kthread] = gate;
    ++result.calls_replayed;

    if (static_cast<int>(window.size()) >= max_outstanding_) {
      window.front().join();
      window.pop_front();
    }
    window.emplace_back([this, module, &result, e, prev, gate] {
      SetCurrentKthread(e.kthread);
      if (prev != nullptr) {
        std::unique_lock<std::mutex> g(prev->mu);
        prev->cv.wait(g, [&] { return prev->done; });
      }
      PerformCall(module, e, &result);
      {
        std::lock_guard<std::mutex> g(gate->mu);
        gate->done = true;
      }
      gate->cv.notify_all();
    });
  }
  for (std::thread& t : window) {
    t.join();
  }
  SetLockHooks(nullptr);

  result.lock_blocks = hooks_->blocks();
  result.lock_timeouts = hooks_->timeouts();
  result.replay_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - replay_start).count();
  return result;
}

}  // namespace enoki
