#include "src/enoki/lock.h"

#include <atomic>

namespace enoki {
namespace {

std::atomic<LockHooks*> g_hooks{nullptr};
std::atomic<uint64_t> g_next_lock_id{1};
thread_local int g_kthread = 0;

}  // namespace

LockHooks* GetLockHooks() { return g_hooks.load(std::memory_order_acquire); }

void SetLockHooks(LockHooks* hooks) { g_hooks.store(hooks, std::memory_order_release); }

int GetCurrentKthread() { return g_kthread; }

void SetCurrentKthread(int kthread) { g_kthread = kthread; }

uint64_t AllocateLockId() { return g_next_lock_id.fetch_add(1, std::memory_order_relaxed); }

SpinLock::SpinLock() : id_(AllocateLockId()) {
  if (LockHooks* hooks = GetLockHooks()) {
    hooks->OnLockCreate(id_);
  }
}

void SpinLock::Acquire() {
  if (LockHooks* hooks = GetLockHooks()) {
    hooks->OnLockAcquire(id_);
  }
  mu_.lock();
}

void SpinLock::Release() {
  mu_.unlock();
  if (LockHooks* hooks = GetLockHooks()) {
    hooks->OnLockRelease(id_);
  }
}

}  // namespace enoki
