// All of the lock shim is header-inline for hot-path performance; this
// translation unit just ensures the header is self-contained.
#include "src/enoki/lock.h"
