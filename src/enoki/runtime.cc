#include "src/enoki/runtime.h"

#include <utility>

#include "src/base/log.h"

namespace enoki {

EnokiRuntime::EnokiRuntime(std::unique_ptr<EnokiSched> module) : module_(std::move(module)) {
  ENOKI_CHECK(module_ != nullptr);
}

EnokiRuntime::~EnokiRuntime() = default;

void EnokiRuntime::Attach(SchedCore* core) {
  SchedClass::Attach(core);
  queued_.resize(static_cast<size_t>(core->ncpus()));
  running_.assign(static_cast<size_t>(core->ncpus()), 0);
  module_->Attach(this);
}

TaskMessage EnokiRuntime::MakeMsg(const Task* t, int cpu, bool wake_sync) const {
  TaskMessage msg;
  msg.pid = t->pid();
  msg.cpu = cpu;
  msg.prev_cpu = t->cpu();
  msg.runtime = core_->TaskRuntime(t);
  msg.nice = t->nice();
  msg.wake_sync = wake_sync;
  return msg;
}

Schedulable EnokiRuntime::Mint(Task* t, int cpu) {
  // Bumping the generation invalidates every token previously minted for
  // this task: the scheduler must use the newest proof.
  ++t->token_generation_;
  return SchedulableMinter::Mint(t->pid(), cpu, t->token_generation_);
}

bool EnokiRuntime::ValidateForRun(const Schedulable& s, int cpu, Task** out_task) const {
  if (!s.valid()) {
    return false;
  }
  Task* t = core_->FindTask(s.pid());
  if (t == nullptr || t->state() != TaskState::kRunnable) {
    return false;
  }
  if (s.cpu() != cpu || t->cpu() != cpu) {
    return false;
  }
  if (SchedulableMinter::Generation(s) != t->token_generation_) {
    return false;
  }
  if (queued_[cpu].count(s.pid()) == 0) {
    return false;
  }
  *out_task = t;
  return true;
}

void EnokiRuntime::Charge(int cpu) {
  ++module_calls_;
  Duration cost = core_->costs().enoki_call_ns;
  if (recorder_ != nullptr) {
    cost += core_->costs().enoki_record_ns;
  }
  core_->ChargeCpu(cpu, cost);
}

void EnokiRuntime::Record(RecordEntry entry) {
  if (recorder_ != nullptr) {
    recorder_->SetTime(core_->now());
    recorder_->Append(entry);
  }
}

void EnokiRuntime::DrainHints() {
  for (size_t qid = 0; qid < user_queues_.size(); ++qid) {
    HintQueue* q = user_queues_[qid].get();
    if (q == nullptr) {
      continue;
    }
    while (auto hint = q->Pop()) {
      RecordEntry e;
      e.type = RecordType::kParseHint;
      e.arg[0] = hint->w[0];
      e.arg[1] = hint->w[1];
      e.arg[2] = hint->w[2];
      e.arg[3] = hint->w[3];
      Record(e);
      module_->ParseHint(*hint);
    }
  }
}

int EnokiRuntime::SelectTaskRq(Task* t, int prev_cpu, bool wake_sync, bool is_new) {
  DrainHints();
  SetCurrentKthread(prev_cpu >= 0 ? prev_cpu : 0);
  TaskMessage msg = MakeMsg(t, prev_cpu, wake_sync);
  msg.is_new = is_new;
  Charge(prev_cpu >= 0 ? prev_cpu : 0);
  const int cpu = module_->SelectTaskRq(msg);
  RecordEntry e;
  e.type = RecordType::kSelectTaskRq;
  e.pid = t->pid();
  e.cpu = prev_cpu;
  e.runtime = msg.runtime;
  e.flag = wake_sync;
  e.arg[0] = static_cast<uint64_t>(t->nice() - kMinNice);
  e.arg[1] = is_new ? 1 : 0;
  e.has_resp = true;
  e.resp0 = static_cast<uint64_t>(cpu);
  Record(e);
  if (cpu < 0 || cpu >= core_->ncpus() || !t->affinity().Test(cpu)) {
    ENOKI_DEBUG("enoki: module chose invalid cpu %d for pid %llu", cpu,
               static_cast<unsigned long long>(t->pid()));
    return t->affinity().Test(prev_cpu) ? prev_cpu : t->affinity().First();
  }
  return cpu;
}

void EnokiRuntime::EnqueueTask(int cpu, Task* t, bool wakeup) {
  SetCurrentKthread(cpu);
  queued_[cpu].insert(t->pid());
  TaskMessage msg = MakeMsg(t, cpu);
  Charge(cpu);
  RecordEntry e;
  e.type = wakeup ? RecordType::kTaskWakeup : RecordType::kTaskNew;
  e.pid = t->pid();
  e.cpu = cpu;
  e.runtime = msg.runtime;
  e.arg[0] = static_cast<uint64_t>(t->nice() - kMinNice);
  Record(e);
  if (wakeup) {
    module_->TaskWakeup(msg, Mint(t, cpu));
  } else {
    module_->TaskNew(msg, Mint(t, cpu));
  }
}

void EnokiRuntime::DequeueTask(int cpu, Task* t, DequeueReason reason) {
  SetCurrentKthread(cpu);
  if (running_[cpu] == t->pid()) {
    running_[cpu] = 0;
  } else {
    queued_[cpu].erase(t->pid());
  }
  // Invalidate any token the module still holds for this task.
  ++t->token_generation_;
  TaskMessage msg = MakeMsg(t, cpu);
  Charge(cpu);
  RecordEntry e;
  e.pid = t->pid();
  e.cpu = cpu;
  e.runtime = msg.runtime;
  switch (reason) {
    case DequeueReason::kBlocked:
      e.type = RecordType::kTaskBlocked;
      Record(e);
      module_->TaskBlocked(msg);
      break;
    case DequeueReason::kDead:
      e.type = RecordType::kTaskDead;
      Record(e);
      module_->TaskDead(t->pid());
      break;
    case DequeueReason::kDeparted: {
      e.type = RecordType::kTaskDeparted;
      auto token = module_->TaskDeparted(msg);
      e.has_resp = true;
      e.resp0 = token.has_value() ? token->pid() : 0;
      Record(e);
      if (!token.has_value() || token->pid() != t->pid()) {
        ENOKI_WARN("enoki: task_departed returned wrong token for pid %llu",
                   static_cast<unsigned long long>(t->pid()));
      }
      break;
    }
  }
}

Task* EnokiRuntime::PickNextTask(int cpu) {
  DrainHints();
  SetCurrentKthread(cpu);
  Charge(cpu);
  auto token = module_->PickNextTask(cpu, std::nullopt);
  RecordEntry e;
  e.type = RecordType::kPickNextTask;
  e.cpu = cpu;
  e.has_resp = true;
  e.resp0 = token.has_value() ? token->pid() : 0;
  Record(e);
  if (!token.has_value()) {
    return nullptr;
  }
  Task* t = nullptr;
  if (!ValidateForRun(*token, cpu, &t)) {
    // The module tried to run a task that is not safely runnable on this
    // CPU. In Linux this would crash the kernel; Enoki catches it and hands
    // the token back through pnt_err (section 3.1).
    ++pick_errors_;
    core_->CountPickError();
    RecordEntry err;
    err.type = RecordType::kPntErr;
    err.cpu = cpu;
    err.pid = token->pid();
    Record(err);
    Charge(cpu);
    module_->PntErr(cpu, std::move(token));
    return nullptr;
  }
  // Consume the proof: the token the module returned is spent.
  ++t->token_generation_;
  queued_[cpu].erase(t->pid());
  running_[cpu] = t->pid();
  return t;
}

void EnokiRuntime::TaskPreempted(int cpu, Task* t) {
  SetCurrentKthread(cpu);
  if (running_[cpu] == t->pid()) {
    running_[cpu] = 0;
  }
  queued_[cpu].insert(t->pid());
  TaskMessage msg = MakeMsg(t, cpu);
  Charge(cpu);
  RecordEntry e;
  e.type = RecordType::kTaskPreempt;
  e.pid = t->pid();
  e.cpu = cpu;
  e.runtime = msg.runtime;
  Record(e);
  module_->TaskPreempt(msg, Mint(t, cpu));
}

void EnokiRuntime::TaskYielded(int cpu, Task* t) {
  SetCurrentKthread(cpu);
  if (running_[cpu] == t->pid()) {
    running_[cpu] = 0;
  }
  queued_[cpu].insert(t->pid());
  TaskMessage msg = MakeMsg(t, cpu);
  Charge(cpu);
  RecordEntry e;
  e.type = RecordType::kTaskYield;
  e.pid = t->pid();
  e.cpu = cpu;
  e.runtime = msg.runtime;
  Record(e);
  module_->TaskYield(msg, Mint(t, cpu));
}

void EnokiRuntime::TaskTick(int cpu, Task* t) {
  // enter_queue: hints are also drained on the tick path so they stay
  // timely even when no scheduling decisions are pending.
  DrainHints();
  SetCurrentKthread(cpu);
  Charge(cpu);
  const Duration runtime = core_->TaskRuntime(t);
  RecordEntry e;
  e.type = RecordType::kTaskTick;
  e.pid = t->pid();
  e.cpu = cpu;
  e.runtime = runtime;
  Record(e);
  module_->TaskTick(cpu, t->pid(), runtime);
}

bool EnokiRuntime::Balance(int cpu) {
  SetCurrentKthread(cpu);
  Charge(cpu);
  auto pid = module_->Balance(cpu);
  RecordEntry e;
  e.type = RecordType::kBalance;
  e.cpu = cpu;
  e.has_resp = true;
  e.resp0 = pid.value_or(0);
  Record(e);
  if (!pid.has_value()) {
    return false;
  }
  Task* t = core_->FindTask(*pid);
  const bool movable = t != nullptr && t->state() == TaskState::kRunnable && t->cpu() != cpu &&
                       queued_[t->cpu()].count(*pid) > 0 && t->affinity().Test(cpu) &&
                       !core_->CpuKickPending(t->cpu());
  if (!movable) {
    ++balance_errors_;
    RecordEntry err;
    err.type = RecordType::kBalanceErr;
    err.cpu = cpu;
    err.pid = *pid;
    Record(err);
    Charge(cpu);
    module_->BalanceErr(cpu, *pid, std::nullopt);
    return false;
  }
  const int from = t->cpu();
  queued_[from].erase(*pid);
  MigrateMessage mig;
  mig.pid = *pid;
  mig.from_cpu = from;
  mig.to_cpu = cpu;
  mig.runtime = core_->TaskRuntime(t);
  Charge(cpu);
  Schedulable old_token = module_->MigrateTaskRq(mig, Mint(t, cpu));
  RecordEntry me;
  me.type = RecordType::kMigrateTaskRq;
  me.pid = *pid;
  me.cpu = cpu;
  me.arg[0] = static_cast<uint64_t>(from);
  me.has_resp = true;
  me.resp0 = old_token.valid() ? old_token.pid() : 0;
  Record(me);
  if (!old_token.valid() || old_token.pid() != *pid) {
    // Best-effort check: the paper notes the old token cannot be fully
    // validated (section 3.1).
    ENOKI_WARN("enoki: migrate_task_rq returned unexpected token for pid %llu",
               static_cast<unsigned long long>(*pid));
  }
  core_->MoveQueuedTask(t, cpu);
  queued_[cpu].insert(*pid);
  return true;
}

void EnokiRuntime::TimerFired(int cpu) {
  SetCurrentKthread(cpu);
  Charge(cpu);
  RecordEntry e;
  e.type = RecordType::kTimerFired;
  e.cpu = cpu;
  Record(e);
  module_->TimerFired(cpu);
}

void EnokiRuntime::AffinityChanged(Task* t) {
  Charge(t->cpu());
  RecordEntry e;
  e.type = RecordType::kAffinityChanged;
  e.pid = t->pid();
  e.arg[0] = t->affinity().word(0);
  e.arg[1] = t->affinity().word(1);
  Record(e);
  module_->TaskAffinityChanged(t->pid(), t->affinity());
}

void EnokiRuntime::PrioChanged(Task* t) {
  Charge(t->cpu());
  RecordEntry e;
  e.type = RecordType::kPrioChanged;
  e.pid = t->pid();
  e.arg[0] = static_cast<uint64_t>(t->nice() - kMinNice);
  Record(e);
  module_->TaskPrioChanged(t->pid(), t->nice());
}

Time EnokiRuntime::Now() const { return core_->now(); }
int EnokiRuntime::NumCpus() const { return core_->ncpus(); }
int EnokiRuntime::NodeOf(int cpu) const { return core_->NodeOf(cpu); }

void EnokiRuntime::ArmTimer(int cpu, Duration delay) {
  core_->ChargeCpu(cpu, core_->costs().timer_arm_ns);
  core_->ArmClassTimer(cpu, delay, this);
}

void EnokiRuntime::ReschedCpu(int cpu) { core_->KickCpu(cpu); }

void EnokiRuntime::PushRevHint(int queue_id, const HintBlob& hint) {
  ENOKI_CHECK(queue_id >= 0 && queue_id < static_cast<int>(rev_queues_.size()));
  rev_queues_[queue_id]->Push(hint);
}

int EnokiRuntime::CreateHintQueue(size_t capacity) {
  user_queues_.push_back(std::make_unique<HintQueue>(capacity));
  const int id = static_cast<int>(user_queues_.size()) - 1;
  module_->RegisterQueue(id);
  return id;
}

int EnokiRuntime::CreateRevQueue(size_t capacity) {
  rev_queues_.push_back(std::make_unique<HintQueue>(capacity));
  const int id = static_cast<int>(rev_queues_.size()) - 1;
  module_->RegisterReverseQueue(id);
  return id;
}

bool EnokiRuntime::SendHint(int queue_id, const HintBlob& hint, int cpu) {
  ENOKI_CHECK(queue_id >= 0 && queue_id < static_cast<int>(user_queues_.size()));
  if (cpu >= 0) {
    core_->ChargeCpu(cpu, core_->costs().hint_write_ns);
  }
  const bool ok = user_queues_[queue_id]->Push(hint);
  // enter_queue: the write side kicks the kernel so the hint is parsed at
  // the next scheduler entry even on an otherwise quiet system.
  core_->loop().ScheduleAfter(core_->costs().hint_write_ns, [this] { DrainHints(); });
  return ok;
}

std::optional<HintBlob> EnokiRuntime::PollRevHint(int queue_id) {
  ENOKI_CHECK(queue_id >= 0 && queue_id < static_cast<int>(rev_queues_.size()));
  return rev_queues_[queue_id]->Pop();
}

UpgradeReport EnokiRuntime::Upgrade(std::unique_ptr<EnokiSched> next) {
  UpgradeReport report;
  if (next == nullptr) {
    report.error = "null module";
    return report;
  }
  const SimCosts& costs = core_->costs();
  // Quiesce: acquire the per-scheduler read-write lock in write mode. The
  // pause is the reader drain (one in-flight call per CPU in the worst
  // case), the prepare/init calls, and the pointer swap.
  Duration pause = costs.upgrade_swap_ns + 2 * costs.enoki_call_ns;
  pause += static_cast<Duration>(core_->ncpus()) * costs.upgrade_percpu_drain_ns;

  TransferState state = module_->ReregisterPrepare();
  next->Attach(this);
  next->ReregisterInit(std::move(state));
  module_ = std::move(next);
  ++upgrades_;

  // Every CPU's next scheduling operation is delayed by the blackout.
  for (int cpu = 0; cpu < core_->ncpus(); ++cpu) {
    core_->ChargeCpu(cpu, pause);
  }
  report.ok = true;
  report.pause_ns = pause;
  return report;
}

}  // namespace enoki
