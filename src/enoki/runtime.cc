#include "src/enoki/runtime.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "src/base/log.h"
#include "src/fault/injector.h"
#include "src/simkernel/sharded_event_loop.h"

namespace enoki {

EnokiRuntime::EnokiRuntime(std::unique_ptr<EnokiSched> module) : module_(std::move(module)) {
  ENOKI_CHECK(module_ != nullptr);
}

EnokiRuntime::~EnokiRuntime() = default;

void EnokiRuntime::Attach(SchedCore* core) {
  SchedClass::Attach(core);
  queued_.resize(static_cast<size_t>(core->ncpus()));
  running_.assign(static_cast<size_t>(core->ncpus()), 0);
  module_->Attach(this);
}

TaskMessage EnokiRuntime::MakeMsg(const Task* t, int cpu, bool wake_sync) const {
  TaskMessage msg;
  msg.pid = t->pid();
  msg.cpu = cpu;
  msg.prev_cpu = t->cpu();
  msg.runtime = core_->TaskRuntime(t);
  msg.nice = t->nice();
  msg.wake_sync = wake_sync;
  return msg;
}

Schedulable EnokiRuntime::Mint(Task* t, int cpu) {
  // Bumping the generation invalidates every token previously minted for
  // this task: the scheduler must use the newest proof.
  ++t->token_generation_;
  return SchedulableMinter::Mint(t->pid(), cpu, t->token_generation_);
}

bool EnokiRuntime::ValidateForRun(const Schedulable& s, int cpu, Task** out_task) const {
  if (!s.valid()) {
    return false;
  }
  Task* t = core_->FindTask(s.pid());
  if (t == nullptr || t->state() != TaskState::kRunnable) {
    return false;
  }
  if (s.cpu() != cpu || t->cpu() != cpu) {
    return false;
  }
  if (SchedulableMinter::Generation(s) != t->token_generation_) {
    return false;
  }
  if (!queued_[cpu].contains(s.pid())) {
    return false;
  }
  *out_task = t;
  return true;
}

void EnokiRuntime::Charge(int cpu) {
  ++module_calls_;
  Duration cost = core_->costs().enoki_call_ns;
  if (recorder_ != nullptr) {
    cost += core_->costs().enoki_record_ns;
  }
  core_->ChargeCpu(cpu, cost);
}

void EnokiRuntime::Record(RecordEntry entry) {
  // The flight ring is always on: it is what lets a CrashReport carry the
  // module's last calls even when full recording is disabled.
  flight_.Append(core_->now(), entry);
  if (recorder_ != nullptr) {
    recorder_->SetTime(core_->now());
    recorder_->Append(entry);
  }
}

// ---- Fault containment ----

template <typename Fn>
bool EnokiRuntime::Guarded(const char* site, Fn&& fn) {
  bool ok = true;
  try {
    fn();
  } catch (const std::exception& ex) {
    ok = false;
    HandleEscape(site, ex.what());
  } catch (...) {
    ok = false;
    HandleEscape(site, "non-standard exception");
  }
  if (ok) {
    FinishCall(site);
  }
  return ok;
}

void EnokiRuntime::HandleEscape(const char* site, const char* what) {
  ++escaped_exceptions_;
  callback_busy_ns_ = 0;
  if (watchdog_ == nullptr) {
    throw;  // containment off: the exception keeps its pre-watchdog behavior
  }
  ENOKI_WARN("enoki: exception escaped %s: %s", site, what);
  if (!quarantined_ && watchdog_->OnEscapedException() != TripReason::kNone) {
    TripWatchdog(TripReason::kEscapedException, std::string(site) + ": " + what);
  }
}

void EnokiRuntime::FinishCall(const char* site) {
  const Duration busy = callback_busy_ns_;
  callback_busy_ns_ = 0;
  if (watchdog_ == nullptr || quarantined_) {
    return;
  }
  const Duration lat = core_->costs().enoki_call_ns + busy;
  if (watchdog_->OnCallbackLatency(lat) != TripReason::kNone) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s consumed %" PRIu64 "ns (budget %" PRIu64 "ns)", site,
                  static_cast<uint64_t>(lat),
                  static_cast<uint64_t>(watchdog_->effective_callback_budget()));
    TripWatchdog(TripReason::kCallbackBudget, buf);
    return;
  }
  // Probation bookkeeping: the window also closes after surviving N calls.
  if (in_probation_ && !recovering_ && !ModuleOffline()) {
    ++probation_calls_seen_;
    const uint64_t limit = watchdog_->probation().window_calls;
    if (limit > 0 && probation_calls_seen_ >= limit) {
      CommitProbation();
    }
  }
}

void EnokiRuntime::EnableWatchdog(const WatchdogConfig& config, int fallback_policy) {
  ENOKI_CHECK(core_ != nullptr);  // Attach first: the starvation bound lives in the core
  ENOKI_CHECK(fallback_policy >= 0);
  ENOKI_CHECK(core_->ClassForPolicy(fallback_policy) != this);
  watchdog_ = std::make_unique<Watchdog>(config);
  fallback_policy_ = fallback_policy;
  if (config.starvation_bound_ns > 0) {
    core_->set_starvation_bound(config.starvation_bound_ns);
  }
}

void EnokiRuntime::AbortModule(const std::string& reason) {
  ENOKI_CHECK(watchdog_ != nullptr);
  TripWatchdog(TripReason::kManual, reason);
}

void EnokiRuntime::TripWatchdog(TripReason reason, std::string detail) {
  if (ModuleOffline() || recovering_ || watchdog_ == nullptr) {
    return;
  }
  CrashReport report = watchdog_->BuildReport(reason, std::move(detail), core_->now());
  // The runtime's counters are authoritative: they also cover events from
  // before EnableWatchdog.
  report.module_calls = module_calls_;
  report.pick_errors = pick_errors_;
  report.balance_errors = balance_errors_;
  report.escaped_exceptions = escaped_exceptions_;
  if (recorder_ != nullptr) {
    recorder_->Drain();
    const auto& log = recorder_->log();
    const size_t n = std::min(log.size(), watchdog_->config().crash_ring_entries);
    report.last_calls.assign(log.end() - static_cast<std::ptrdiff_t>(n), log.end());
  } else {
    report.last_calls = flight_.Tail(watchdog_->config().crash_ring_entries);
  }
  crash_report_ = std::move(report);

  // Recovery ladder, rung 2: a trip inside an upgrade's probation window
  // condemns the incoming module — roll the transaction back to the
  // checkpointed predecessor instead of quarantining.
  if (in_probation_ && upgrade_txn_ && prev_module_ != nullptr) {
    rollback_pending_ = true;
    ++recovery_epoch_;  // cancel the probation timer
    // Flap damping: the incoming fingerprint failed its probation. Enough of
    // these inside the rolling window and Upgrade() refuses the fingerprint.
    RecordFlapFailure(incoming_fingerprint_, core_->now());
    ENOKI_WARN("enoki: watchdog tripped (%s) during upgrade probation: %s; rolling back",
               TripReasonName(crash_report_->reason), crash_report_->detail.c_str());
    // The trip can fire deep inside a scheduling operation (mid-pick,
    // mid-wakeup). Defer the module swap to a clean event boundary.
    core_->loop().ScheduleAfter(0, [this] { PerformRollback(); });
    return;
  }

  // Rung 3: a supervised module restarts from its last good checkpoint
  // after the supervisor's backoff, as long as the window budget holds.
  if (supervisor_ != nullptr) {
    const RestartDecision d = supervisor_->OnTrip(*crash_report_, core_->now());
    if (d.action == RecoveryAction::kRestart) {
      restart_pending_ = true;
      restart_attempt_ = d.attempt;
      if (in_probation_) {
        in_probation_ = false;
        watchdog_->EndProbation();
      }
      const uint64_t epoch = ++recovery_epoch_;
      ENOKI_WARN("enoki: watchdog tripped (%s): %s; supervised restart #%" PRIu64
                 " in %" PRIu64 "ns",
                 TripReasonName(crash_report_->reason), crash_report_->detail.c_str(), d.attempt,
                 static_cast<uint64_t>(d.backoff_ns));
      core_->loop().ScheduleAfter(d.backoff_ns, [this, epoch] {
        if (epoch == recovery_epoch_ && restart_pending_) {
          PerformRestart();
        }
      });
      return;
    }
    ENOKI_WARN("enoki: supervisor restart budget exhausted; escalating to quarantine");
  }

  // Rung 4 (terminal): quarantine + CFS fallback.
  quarantined_ = true;
  if (in_probation_) {
    in_probation_ = false;
    watchdog_->EndProbation();
  }
  ++recovery_epoch_;
  ENOKI_WARN("enoki: watchdog tripped (%s): %s; quarantining module",
             TripReasonName(crash_report_->reason), crash_report_->detail.c_str());
  core_->loop().ScheduleAfter(0, [this] { ExecuteFallback(); });
}

void EnokiRuntime::ExecuteFallback() {
  ENOKI_CHECK(quarantined_);
  if (fallback_done_) {
    return;
  }
  // Wait out any context-switch window: a task mid-dispatch is still
  // kRunnable but already picked; re-policying it now would double-attach
  // it. Quarantined picks return nullptr, so no new window can open for
  // this class while we wait.
  for (int cpu = 0; cpu < core_->ncpus(); ++cpu) {
    if (core_->CpuInSwitch(cpu)) {
      core_->loop().ScheduleAfter(core_->costs().context_switch_ns,
                                  [this] { ExecuteFallback(); });
      return;
    }
  }
  fallback_done_ = true;
  // Best-effort quiesce through the upgrade path: the module gets the same
  // prepare callback a live upgrade would send, so a well-behaved module
  // sees a clean shutdown. Its state goes nowhere — there is no successor.
  try {
    (void)module_->ReregisterPrepare();
  } catch (...) {
    // Already condemned; a throw here changes nothing.
  }
  uint64_t moved = 0;
  for (const auto& tp : core_->tasks()) {
    Task* t = tp.get();
    if (t->sched_class() != this || t->state() == TaskState::kDead) {
      continue;
    }
    core_->SetTaskPolicy(t, fallback_policy_);
    ++moved;
  }
  const SimCosts& costs = core_->costs();
  const Duration pause = costs.upgrade_swap_ns +
                         static_cast<Duration>(core_->ncpus()) * costs.upgrade_percpu_drain_ns +
                         static_cast<Duration>(moved) * costs.fallback_pertask_ns;
  for (int cpu = 0; cpu < core_->ncpus(); ++cpu) {
    core_->ChargeCpu(cpu, pause);
  }
  if (crash_report_.has_value()) {
    crash_report_->tasks_repolicied = moved;
    crash_report_->fallback_pause_ns = pause;
  }
  ENOKI_WARN("enoki: fallback complete: %" PRIu64 " tasks re-policied to policy %d, pause %" PRIu64
             "ns",
             moved, fallback_policy_, static_cast<uint64_t>(pause));
}

// ---- Recovery ladder internals ----

void EnokiRuntime::EnableSupervisor(const SupervisorConfig& config, ModuleFactory factory) {
  ENOKI_CHECK(watchdog_ != nullptr);  // the supervisor sits above the watchdog
  ENOKI_CHECK(factory != nullptr);
  supervisor_ = std::make_unique<ModuleSupervisor>(config, std::move(factory));
  // Seed the first generation so even the first restart has a restore point
  // (modules without checkpoint support restart fresh).
  CheckpointNow();
}

bool EnokiRuntime::CheckpointNow() {
  if (ModuleOffline()) {
    return false;
  }
  Checkpoint ck;
  if (!TakeCheckpoint(module_.get(), &ck)) {
    if (last_save_threw_) {
      // A crash inside SaveCheckpoint is a module crash like any other: the
      // ring keeps its prior generations untouched and the watchdog decides
      // whether the module has spent its escape budget.
      ++checkpoint_save_failures_;
      ++escaped_exceptions_;
      ENOKI_WARN("enoki: module crashed during CheckpointNow (save failure #%" PRIu64 ")",
                 checkpoint_save_failures_);
      if (watchdog_ != nullptr && !recovering_ &&
          watchdog_->OnEscapedException() != TripReason::kNone) {
        TripWatchdog(TripReason::kEscapedException, "save_checkpoint: crash during CheckpointNow");
      }
    }
    return false;
  }
  core_->ChargeCpu(0, core_->costs().checkpoint_save_ns);
  RecordEntry e;
  e.type = RecordType::kCheckpointSave;
  e.arg[0] = ck.sequence;
  e.arg[1] = static_cast<uint64_t>(ck.taken_at);
  e.arg[2] = ck.bytes.size();
  Record(e);
  checkpoints_.Push(std::move(ck));
  return true;
}

void EnokiRuntime::SetCheckpointInterval(Duration interval) {
  checkpoint_interval_ = interval;
  const uint64_t epoch = ++cadence_epoch_;  // cancels any previously armed timer
  if (interval > 0 && core_ != nullptr && !quarantined_) {
    ArmCheckpointCadence(epoch);
  }
}

void EnokiRuntime::ArmCheckpointCadence(uint64_t epoch) {
  core_->loop().ScheduleAfter(checkpoint_interval_, [this, epoch] {
    if (epoch != cadence_epoch_ || checkpoint_interval_ == 0 || quarantined_) {
      return;  // disarmed, re-armed at a different interval, or terminal
    }
    // Probation skips the save (an unproven module must not overwrite proven
    // generations) but keeps the cadence alive; so does a pending recovery.
    if (!ModuleOffline() && !in_probation_ && CheckpointNow()) {
      ++periodic_checkpoints_;
    }
    if (!quarantined_) {
      ArmCheckpointCadence(epoch);
    }
  });
}

bool EnokiRuntime::TakeCheckpoint(EnokiSched* module, Checkpoint* out) {
  ByteWriter w;
  bool ok = false;
  last_save_threw_ = false;
  try {
    ok = module->SaveCheckpoint(&w);
  } catch (...) {
    ok = false;  // a throwing saver yields no checkpoint; CheckpointNow escalates
    last_save_threw_ = true;
  }
  if (!ok) {
    return false;
  }
  out->state_version = module->CheckpointVersion();
  out->sequence = ++checkpoint_seq_;
  out->taken_at = core_->now();
  out->module_fingerprint = ModuleFingerprint(module);
  out->bytes = w.Take();
  out->Seal();
  if (saboteur_ != nullptr) {
    // Simulated storage rot happens after sealing, so validation must
    // catch it at restore time.
    saboteur_->MaybeCorrupt(out);
  }
  return true;
}

uint64_t EnokiRuntime::ModuleFingerprint(const EnokiSched* module) {
  try {
    return module->VersionFingerprint();
  } catch (...) {
    return 0;  // unknown saver: matches any generation
  }
}

void EnokiRuntime::AppendRestoreLog(const char* verdict, const Checkpoint& ck,
                                    const char* reason) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "t=%" PRIu64 " %s seq=%" PRIu64 " v=%u taken=%" PRIu64 " %s",
                static_cast<uint64_t>(core_->now()), verdict, ck.sequence, ck.state_version,
                static_cast<uint64_t>(ck.taken_at), reason);
  restore_log_.emplace_back(buf);
}

std::string EnokiRuntime::RestoreTimelineString() const {
  std::string out;
  for (const std::string& line : restore_log_) {
    out += line;
    out += '\n';
  }
  return out;
}

bool EnokiRuntime::RestoreFromCheckpoint(EnokiSched* module) {
  last_restore_depth_ = 0;
  last_restore_age_ns_ = 0;
  if (saboteur_ != nullptr) {
    // Ring-slot bit-rot is discovered at read time: an arbitrary stored
    // generation (not just the newest) may have rotted since its save.
    saboteur_->MaybeCorruptSlot(&checkpoints_);
  }
  const uint64_t want_fp = ModuleFingerprint(module);
  while (!checkpoints_.empty()) {
    ++last_restore_depth_;
    const Checkpoint& ck = checkpoints_.FromNewest(0);
    if (!ck.Valid()) {
      ++checkpoint_rejects_;
      ++restore_fallbacks_;
      ENOKI_WARN("enoki: checkpoint #%" PRIu64
                 " failed checksum validation; refusing to deserialize, falling back",
                 ck.sequence);
      AppendRestoreLog("skip", ck, "reason=checksum");
      checkpoints_.DropNewest();  // never offer a corrupt generation twice
      continue;
    }
    if (ck.module_fingerprint != 0 && want_fp != 0 && ck.module_fingerprint != want_fp) {
      // Saved by a different module build (e.g. a replaced predecessor
      // policy): format-compatible by accident at worst, wrong by design.
      ++restore_fallbacks_;
      AppendRestoreLog("skip", ck, "reason=fingerprint");
      checkpoints_.DropNewest();
      continue;
    }
    ByteReader r(ck.bytes);
    bool ok = false;
    try {
      ok = module->LoadCheckpoint(ck.state_version, &r);
    } catch (...) {
      ok = false;
    }
    if (!ok) {
      ++restore_fallbacks_;
      ENOKI_WARN("enoki: module rejected checkpoint #%" PRIu64 " (version %u); falling back",
                 ck.sequence, ck.state_version);
      AppendRestoreLog("skip", ck, "reason=load-refused");
      checkpoints_.DropNewest();
      continue;
    }
    last_restore_age_ns_ =
        core_->now() >= ck.taken_at ? core_->now() - ck.taken_at : Duration{0};
    AppendRestoreLog("restore", ck, "");
    RecordEntry e;
    e.type = RecordType::kCheckpointRestore;
    e.arg[0] = ck.sequence;
    e.arg[1] = last_restore_depth_;
    e.arg[2] = last_restore_depth_ - 1;  // generations skipped on the way
    Record(e);
    return true;
  }
  ENOKI_WARN("enoki: checkpoint ring exhausted after %" PRIu64 " generations; starting fresh",
             last_restore_depth_);
  Checkpoint none;
  AppendRestoreLog("fresh", none, "reason=ring-exhausted");
  return false;
}

// ---- Version-fingerprint flap damping ----

void EnokiRuntime::PruneFlapWindow(Time now) {
  const Duration window = flap_config_.window_ns;
  auto expired = [&](const std::pair<uint64_t, Time>& f) {
    return now >= f.second && now - f.second > window;
  };
  flap_failures_.erase(std::remove_if(flap_failures_.begin(), flap_failures_.end(), expired),
                       flap_failures_.end());
}

uint64_t EnokiRuntime::FlapFailureCount(uint64_t fingerprint) const {
  uint64_t n = 0;
  for (const auto& f : flap_failures_) {
    if (f.first == fingerprint) {
      ++n;
    }
  }
  return n;
}

void EnokiRuntime::RecordFlapFailure(uint64_t fingerprint, Time now) {
  if (fingerprint == 0) {
    return;
  }
  PruneFlapWindow(now);
  flap_failures_.emplace_back(fingerprint, now);
}

uint64_t EnokiRuntime::ReinjectQueuedTasks() {
  uint64_t injected = 0;
  for (int cpu = 0; cpu < core_->ncpus(); ++cpu) {
    queued_[cpu].ForEach([&](uint64_t pid) {
      Task* t = core_->FindTask(pid);
      if (t == nullptr || t->state() != TaskState::kRunnable) {
        return;
      }
      SetCurrentKthread(cpu);
      TaskMessage msg = MakeMsg(t, cpu);
      Charge(cpu);
      RecordEntry e;
      e.type = RecordType::kTaskWakeup;
      e.pid = pid;
      e.cpu = cpu;
      e.runtime = msg.runtime;
      e.arg[0] = static_cast<uint64_t>(t->nice() - kMinNice);
      Record(e);
      Guarded("reinject_wakeup", [&] { module_->TaskWakeup(msg, Mint(t, cpu)); });
      ++injected;
    });
  }
  return injected;
}

void EnokiRuntime::BeginProbation(const ProbationConfig& cfg, bool upgrade_txn) {
  ENOKI_CHECK(watchdog_ != nullptr);
  in_probation_ = true;
  upgrade_txn_ = upgrade_txn;
  probation_calls_seen_ = 0;
  watchdog_->BeginProbation(cfg);
  const uint64_t epoch = ++recovery_epoch_;
  if (cfg.window_ns > 0) {
    core_->loop().ScheduleAfter(cfg.window_ns, [this, epoch] {
      if (epoch == recovery_epoch_ && in_probation_) {
        CommitProbation();
      }
    });
  }
}

void EnokiRuntime::CommitProbation() {
  ENOKI_CHECK(in_probation_);
  in_probation_ = false;
  upgrade_txn_ = false;
  incoming_fingerprint_ = 0;
  watchdog_->EndProbation();
  ++recovery_epoch_;  // cancel the probation window timer
  prev_module_.reset();  // the predecessor stops being a rollback target
  // The module proved itself: its current state becomes the newest
  // generation on the ring.
  Checkpoint ck;
  if (TakeCheckpoint(module_.get(), &ck)) {
    core_->ChargeCpu(0, core_->costs().checkpoint_save_ns);
    checkpoints_.Push(std::move(ck));
  }
  if (supervisor_ != nullptr) {
    supervisor_->OnHealthy(core_->now());
  }
}

void EnokiRuntime::PerformRollback() {
  ENOKI_CHECK(rollback_pending_);
  ENOKI_CHECK(prev_module_ != nullptr);
  // Wait out any in-flight context switch, as the fallback sweep does: a
  // task mid-dispatch was picked by the condemned module and must land
  // before the swap.
  for (int cpu = 0; cpu < core_->ncpus(); ++cpu) {
    if (core_->CpuInSwitch(cpu)) {
      core_->loop().ScheduleAfter(core_->costs().context_switch_ns, [this] { PerformRollback(); });
      return;
    }
  }
  in_probation_ = false;
  upgrade_txn_ = false;
  incoming_fingerprint_ = 0;
  watchdog_->EndProbation();
  module_ = std::move(prev_module_);  // the condemned module dies here
  // Re-attach: ReregisterPrepare moved the predecessor's per-CPU structures
  // out, and a failed restore must still leave it with sized (if empty)
  // state rather than a hollow shell.
  module_->Attach(this);
  recovering_ = true;
  const bool restored = RestoreFromCheckpoint(module_.get());
  const uint64_t reinjected = ReinjectQueuedTasks();
  recovering_ = false;
  // The predecessor is trusted: the condemned module's strikes die with it.
  watchdog_->ResetCounters();
  ++rollbacks_;
  rollback_pending_ = false;
  ++recovery_epoch_;
  const SimCosts& costs = core_->costs();
  const Duration pause = costs.upgrade_swap_ns +
                         static_cast<Duration>(core_->ncpus()) * costs.upgrade_percpu_drain_ns +
                         static_cast<Duration>(reinjected) * costs.restore_pertask_ns;
  for (int cpu = 0; cpu < core_->ncpus(); ++cpu) {
    core_->ChargeCpu(cpu, pause);
  }
  RecordEntry e;
  e.type = RecordType::kUpgradeRollback;
  e.arg[0] = restored ? 1 : 0;
  e.arg[1] = reinjected;
  Record(e);
  ENOKI_WARN("enoki: rolled back to checkpointed predecessor (restored=%d, %" PRIu64
             " tasks re-injected, pause %" PRIu64 "ns)",
             restored ? 1 : 0, reinjected, static_cast<uint64_t>(pause));
  KickAllCpus();
}

void EnokiRuntime::PerformRestart() {
  ENOKI_CHECK(restart_pending_);
  ENOKI_CHECK(supervisor_ != nullptr);
  for (int cpu = 0; cpu < core_->ncpus(); ++cpu) {
    if (core_->CpuInSwitch(cpu)) {
      core_->loop().ScheduleAfter(core_->costs().context_switch_ns, [this] { PerformRestart(); });
      return;
    }
  }
  std::unique_ptr<EnokiSched> fresh = supervisor_->MakeModule();
  ENOKI_CHECK(fresh != nullptr);
  module_ = std::move(fresh);
  module_->Attach(this);
  // A factory-fresh instance never saw CreateHintQueue: re-register every
  // existing queue id so hints keep flowing after the restart.
  for (size_t qid = 0; qid < user_queues_.size(); ++qid) {
    if (user_queues_[qid] != nullptr) {
      module_->RegisterQueue(static_cast<int>(qid));
    }
  }
  for (size_t qid = 0; qid < rev_queues_.size(); ++qid) {
    if (rev_queues_[qid] != nullptr) {
      module_->RegisterReverseQueue(static_cast<int>(qid));
    }
  }
  // Fresh instance, fresh strikes.
  watchdog_->ResetCounters();
  recovering_ = true;
  const bool restored = RestoreFromCheckpoint(module_.get());
  const uint64_t reinjected = ReinjectQueuedTasks();
  recovering_ = false;
  ++module_restarts_;
  restart_pending_ = false;
  const SimCosts& costs = core_->costs();
  const Duration pause = costs.module_restart_ns +
                         static_cast<Duration>(core_->ncpus()) * costs.upgrade_percpu_drain_ns +
                         static_cast<Duration>(reinjected) * costs.restore_pertask_ns;
  for (int cpu = 0; cpu < core_->ncpus(); ++cpu) {
    core_->ChargeCpu(cpu, pause);
  }
  supervisor_->OnRestartComplete(core_->now(), restored);
  RecordEntry e;
  e.type = RecordType::kModuleRestart;
  e.arg[0] = restart_attempt_;
  e.arg[1] = restored ? 1 : 0;
  e.arg[2] = reinjected;
  Record(e);
  ENOKI_WARN("enoki: supervised restart #%" PRIu64 " complete (restored=%d, %" PRIu64
             " tasks re-injected, pause %" PRIu64 "ns); entering probation",
             restart_attempt_, restored ? 1 : 0, reinjected, static_cast<uint64_t>(pause));
  BeginProbation(supervisor_->config().probation, /*upgrade_txn=*/false);
  KickAllCpus();
}

void EnokiRuntime::KickAllCpus() {
  for (int cpu = 0; cpu < core_->ncpus(); ++cpu) {
    core_->KickCpu(cpu);
  }
}

void EnokiRuntime::OnTaskStarved(Task* t, Duration runnable_ns) {
  if (watchdog_ == nullptr || ModuleOffline()) {
    return;
  }
  if (watchdog_->OnStarvation(t->pid(), runnable_ns) != TripReason::kNone) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "pid %" PRIu64 " runnable for %" PRIu64 "ns", t->pid(),
                  static_cast<uint64_t>(runnable_ns));
    TripWatchdog(TripReason::kStarvation, buf);
  }
}

void EnokiRuntime::DrainHints() {
  for (size_t qid = 0; qid < user_queues_.size() && !ModuleOffline(); ++qid) {
    HintQueue* q = user_queues_[qid].get();
    if (q == nullptr) {
      continue;
    }
    while (!ModuleOffline()) {
      auto hint = q->Pop();
      if (!hint.has_value()) {
        break;
      }
      RecordEntry e;
      e.type = RecordType::kParseHint;
      e.arg[0] = hint->w[0];
      e.arg[1] = hint->w[1];
      e.arg[2] = hint->w[2];
      e.arg[3] = hint->w[3];
      Record(e);
      Guarded("parse_hint", [&] { module_->ParseHint(*hint); });
    }
  }
}

int EnokiRuntime::SelectTaskRq(Task* t, int prev_cpu, bool wake_sync, bool is_new) {
  const int home = prev_cpu >= 0 ? prev_cpu : 0;
  const int safe = t->affinity().Test(home) ? home : t->affinity().First();
  if (ModuleOffline()) {
    return safe;
  }
  DrainHints();
  if (ModuleOffline()) {
    return safe;
  }
  SetCurrentKthread(home);
  TaskMessage msg = MakeMsg(t, prev_cpu, wake_sync);
  msg.is_new = is_new;
  Charge(home);
  int cpu = -1;
  if (!Guarded("select_task_rq", [&] { cpu = module_->SelectTaskRq(msg); })) {
    return safe;
  }
  RecordEntry e;
  e.type = RecordType::kSelectTaskRq;
  e.pid = t->pid();
  e.cpu = prev_cpu;
  e.runtime = msg.runtime;
  e.flag = wake_sync;
  e.arg[0] = static_cast<uint64_t>(t->nice() - kMinNice);
  e.arg[1] = is_new ? 1 : 0;
  e.has_resp = true;
  e.resp0 = static_cast<uint64_t>(cpu);
  Record(e);
  if (cpu < 0 || cpu >= core_->ncpus() || !t->affinity().Test(cpu)) {
    ENOKI_DEBUG("enoki: module chose invalid cpu %d for pid %llu", cpu,
               static_cast<unsigned long long>(t->pid()));
    return safe;
  }
  return cpu;
}

void EnokiRuntime::EnqueueTask(int cpu, Task* t, bool wakeup) {
  queued_[cpu].insert(t->pid());
  if (ModuleOffline()) {
    // The quarantined module sees nothing. Tasks that reach this class after
    // the fallback sweep (freshly created with its policy, or woken from a
    // long block) are handed to the fallback class at the next event
    // boundary; until then the nullptr pick keeps them parked here.
    if (fallback_done_) {
      const uint64_t pid = t->pid();
      core_->loop().ScheduleAfter(0, [this, pid] {
        Task* late = core_->FindTask(pid);
        if (late != nullptr && late->sched_class() == this && late->state() != TaskState::kDead) {
          core_->SetTaskPolicy(late, fallback_policy_);
        }
      });
    }
    return;
  }
  SetCurrentKthread(cpu);
  TaskMessage msg = MakeMsg(t, cpu);
  Charge(cpu);
  RecordEntry e;
  e.type = wakeup ? RecordType::kTaskWakeup : RecordType::kTaskNew;
  e.pid = t->pid();
  e.cpu = cpu;
  e.runtime = msg.runtime;
  e.arg[0] = static_cast<uint64_t>(t->nice() - kMinNice);
  Record(e);
  // If the callback throws, the freshly minted token dies in the unwind and
  // the module may never learn of the task — the classic lost-wakeup bug.
  // The starvation detector is what rescues the task in that case.
  if (wakeup) {
    Guarded("task_wakeup", [&] { module_->TaskWakeup(msg, Mint(t, cpu)); });
  } else {
    Guarded("task_new", [&] { module_->TaskNew(msg, Mint(t, cpu)); });
  }
}

void EnokiRuntime::DequeueTask(int cpu, Task* t, DequeueReason reason) {
  if (running_[cpu] == t->pid()) {
    running_[cpu] = 0;
  } else {
    queued_[cpu].erase(t->pid());
  }
  // Invalidate any token the module still holds for this task.
  ++t->token_generation_;
  if (ModuleOffline()) {
    return;
  }
  SetCurrentKthread(cpu);
  TaskMessage msg = MakeMsg(t, cpu);
  Charge(cpu);
  RecordEntry e;
  e.pid = t->pid();
  e.cpu = cpu;
  e.runtime = msg.runtime;
  switch (reason) {
    case DequeueReason::kBlocked:
      e.type = RecordType::kTaskBlocked;
      Record(e);
      Guarded("task_blocked", [&] { module_->TaskBlocked(msg); });
      break;
    case DequeueReason::kDead:
      e.type = RecordType::kTaskDead;
      Record(e);
      Guarded("task_dead", [&] { module_->TaskDead(t->pid()); });
      break;
    case DequeueReason::kDeparted: {
      e.type = RecordType::kTaskDeparted;
      std::optional<Schedulable> token;
      const bool ok = Guarded("task_departed", [&] { token = module_->TaskDeparted(msg); });
      e.has_resp = true;
      e.resp0 = token.has_value() ? token->pid() : 0;
      Record(e);
      if (ok && (!token.has_value() || token->pid() != t->pid())) {
        ENOKI_WARN("enoki: task_departed returned wrong token for pid %llu",
                   static_cast<unsigned long long>(t->pid()));
      }
      break;
    }
  }
}

Task* EnokiRuntime::PickNextTask(int cpu) {
  if (ModuleOffline()) {
    return nullptr;  // cede the CPU to lower classes (the fallback)
  }
  DrainHints();
  if (ModuleOffline()) {
    return nullptr;
  }
  SetCurrentKthread(cpu);
  Charge(cpu);
  std::optional<Schedulable> token;
  if (!Guarded("pick_next_task", [&] { token = module_->PickNextTask(cpu, std::nullopt); })) {
    return nullptr;  // a thrown pick is an idle pick
  }
  RecordEntry e;
  e.type = RecordType::kPickNextTask;
  e.cpu = cpu;
  e.has_resp = true;
  e.resp0 = token.has_value() ? token->pid() : 0;
  Record(e);
  if (!token.has_value()) {
    return nullptr;
  }
  Task* t = nullptr;
  if (!ValidateForRun(*token, cpu, &t)) {
    // The module tried to run a task that is not safely runnable on this
    // CPU. In Linux this would crash the kernel; Enoki catches it and hands
    // the token back through pnt_err (section 3.1).
    ++pick_errors_;
    core_->CountPickError();
    RecordEntry err;
    err.type = RecordType::kPntErr;
    err.cpu = cpu;
    err.pid = token->pid();
    Record(err);
    Charge(cpu);
    Guarded("pnt_err", [&] { module_->PntErr(cpu, std::move(token)); });
    if (watchdog_ != nullptr && !quarantined_ &&
        watchdog_->OnPickError() != TripReason::kNone) {
      TripWatchdog(TripReason::kPickErrors, "repeated pick_next_task validation failures");
    }
    return nullptr;
  }
  // Consume the proof: the token the module returned is spent.
  ++t->token_generation_;
  queued_[cpu].erase(t->pid());
  running_[cpu] = t->pid();
  return t;
}

void EnokiRuntime::TaskPreempted(int cpu, Task* t) {
  if (running_[cpu] == t->pid()) {
    running_[cpu] = 0;
  }
  queued_[cpu].insert(t->pid());
  if (ModuleOffline()) {
    return;
  }
  SetCurrentKthread(cpu);
  TaskMessage msg = MakeMsg(t, cpu);
  Charge(cpu);
  RecordEntry e;
  e.type = RecordType::kTaskPreempt;
  e.pid = t->pid();
  e.cpu = cpu;
  e.runtime = msg.runtime;
  Record(e);
  Guarded("task_preempt", [&] { module_->TaskPreempt(msg, Mint(t, cpu)); });
}

void EnokiRuntime::TaskYielded(int cpu, Task* t) {
  if (running_[cpu] == t->pid()) {
    running_[cpu] = 0;
  }
  queued_[cpu].insert(t->pid());
  if (ModuleOffline()) {
    return;
  }
  SetCurrentKthread(cpu);
  TaskMessage msg = MakeMsg(t, cpu);
  Charge(cpu);
  RecordEntry e;
  e.type = RecordType::kTaskYield;
  e.pid = t->pid();
  e.cpu = cpu;
  e.runtime = msg.runtime;
  Record(e);
  Guarded("task_yield", [&] { module_->TaskYield(msg, Mint(t, cpu)); });
}

void EnokiRuntime::TaskTick(int cpu, Task* t) {
  if (ModuleOffline()) {
    return;
  }
  // enter_queue: hints are also drained on the tick path so they stay
  // timely even when no scheduling decisions are pending.
  DrainHints();
  if (ModuleOffline()) {
    return;
  }
  SetCurrentKthread(cpu);
  Charge(cpu);
  const Duration runtime = core_->TaskRuntime(t);
  RecordEntry e;
  e.type = RecordType::kTaskTick;
  e.pid = t->pid();
  e.cpu = cpu;
  e.runtime = runtime;
  Record(e);
  Guarded("task_tick", [&] { module_->TaskTick(cpu, t->pid(), runtime); });
}

bool EnokiRuntime::Balance(int cpu) {
  if (ModuleOffline()) {
    return false;
  }
  SetCurrentKthread(cpu);
  Charge(cpu);
  std::optional<uint64_t> pid;
  if (!Guarded("balance", [&] { pid = module_->Balance(cpu); })) {
    return false;
  }
  RecordEntry e;
  e.type = RecordType::kBalance;
  e.cpu = cpu;
  e.has_resp = true;
  e.resp0 = pid.value_or(0);
  Record(e);
  if (!pid.has_value()) {
    return false;
  }
  Task* t = core_->FindTask(*pid);
  // An offer can fail for two very different reasons: the task is genuinely
  // not movable (dead, not runnable, wrong queue, affinity) — a module bug —
  // or its CPU already has a wakeup dispatch in flight, which is a benign
  // race any correct module can lose. Only the former feeds the watchdog.
  const bool valid_offer = t != nullptr && t->state() == TaskState::kRunnable && t->cpu() != cpu &&
                           queued_[t->cpu()].contains(*pid) && t->affinity().Test(cpu);
  const bool movable = valid_offer && !core_->CpuKickPending(t->cpu());
  if (!movable) {
    ++balance_errors_;
    RecordEntry err;
    err.type = RecordType::kBalanceErr;
    err.cpu = cpu;
    err.pid = *pid;
    Record(err);
    Charge(cpu);
    Guarded("balance_err", [&] { module_->BalanceErr(cpu, *pid, std::nullopt); });
    if (!valid_offer && watchdog_ != nullptr && !quarantined_ &&
        watchdog_->OnBalanceError() != TripReason::kNone) {
      TripWatchdog(TripReason::kBalanceErrors, "repeated balance validation failures");
    }
    return false;
  }
  const int from = t->cpu();
  queued_[from].erase(*pid);
  MigrateMessage mig;
  mig.pid = *pid;
  mig.from_cpu = from;
  mig.to_cpu = cpu;
  mig.runtime = core_->TaskRuntime(t);
  Charge(cpu);
  std::optional<Schedulable> old_token;
  if (!Guarded("migrate_task_rq",
               [&] { old_token = module_->MigrateTaskRq(mig, Mint(t, cpu)); })) {
    // The migration never happened: put the bookkeeping back. Any token the
    // module still holds is stale (Mint bumped the generation), so a later
    // pick of this pid bounces through pnt_err until the module recovers.
    queued_[from].insert(*pid);
    return false;
  }
  RecordEntry me;
  me.type = RecordType::kMigrateTaskRq;
  me.pid = *pid;
  me.cpu = cpu;
  me.arg[0] = static_cast<uint64_t>(from);
  me.has_resp = true;
  me.resp0 = old_token.has_value() && old_token->valid() ? old_token->pid() : 0;
  Record(me);
  if (!old_token.has_value() || !old_token->valid() || old_token->pid() != *pid) {
    // Best-effort check: the paper notes the old token cannot be fully
    // validated (section 3.1).
    ENOKI_WARN("enoki: migrate_task_rq returned unexpected token for pid %llu",
               static_cast<unsigned long long>(*pid));
  }
  core_->MoveQueuedTask(t, cpu);
  queued_[cpu].insert(*pid);
  return true;
}

void EnokiRuntime::TimerFired(int cpu) {
  if (ModuleOffline()) {
    return;
  }
  SetCurrentKthread(cpu);
  Charge(cpu);
  RecordEntry e;
  e.type = RecordType::kTimerFired;
  e.cpu = cpu;
  Record(e);
  Guarded("timer_fired", [&] { module_->TimerFired(cpu); });
}

void EnokiRuntime::AffinityChanged(Task* t) {
  if (ModuleOffline()) {
    return;
  }
  Charge(t->cpu());
  RecordEntry e;
  e.type = RecordType::kAffinityChanged;
  e.pid = t->pid();
  e.arg[0] = t->affinity().word(0);
  e.arg[1] = t->affinity().word(1);
  Record(e);
  Guarded("affinity_changed", [&] { module_->TaskAffinityChanged(t->pid(), t->affinity()); });
}

void EnokiRuntime::PrioChanged(Task* t) {
  if (ModuleOffline()) {
    return;
  }
  Charge(t->cpu());
  RecordEntry e;
  e.type = RecordType::kPrioChanged;
  e.pid = t->pid();
  e.arg[0] = static_cast<uint64_t>(t->nice() - kMinNice);
  Record(e);
  Guarded("prio_changed", [&] { module_->TaskPrioChanged(t->pid(), t->nice()); });
}

Time EnokiRuntime::Now() const { return core_->now(); }
int EnokiRuntime::NumCpus() const { return core_->ncpus(); }
int EnokiRuntime::NodeOf(int cpu) const { return core_->NodeOf(cpu); }

int EnokiRuntime::SiblingOf(int cpu) const { return core_->SiblingOf(cpu); }

void EnokiRuntime::ArmTimer(int cpu, Duration delay) {
  core_->ChargeCpu(cpu, core_->costs().timer_arm_ns);
  core_->ArmClassTimer(cpu, delay, this);
}

void EnokiRuntime::ReschedCpu(int cpu) { core_->KickCpu(cpu); }

void EnokiRuntime::BusyWait(int cpu, Duration d) {
  if (cpu < 0 || cpu >= core_->ncpus()) {
    cpu = 0;
  }
  core_->ChargeCpu(cpu, d);
  callback_busy_ns_ += d;
}

void EnokiRuntime::PushRevHint(int queue_id, const HintBlob& hint) {
  ENOKI_CHECK(queue_id >= 0 && queue_id < static_cast<int>(rev_queues_.size()));
  rev_queues_[queue_id]->Push(hint);
}

int EnokiRuntime::CreateHintQueue(size_t capacity) {
  // The API accepts any requested size; the ring itself requires a power of
  // two, so round up here (matching the kernel module's behaviour).
  user_queues_.push_back(std::make_unique<HintQueue>(HintQueue::RoundUpPow2(capacity)));
  const int id = static_cast<int>(user_queues_.size()) - 1;
  module_->RegisterQueue(id);
  return id;
}

int EnokiRuntime::CreateRevQueue(size_t capacity) {
  rev_queues_.push_back(std::make_unique<HintQueue>(HintQueue::RoundUpPow2(capacity)));
  const int id = static_cast<int>(rev_queues_.size()) - 1;
  module_->RegisterReverseQueue(id);
  return id;
}

bool EnokiRuntime::SendHint(int queue_id, const HintBlob& hint, int cpu) {
  ENOKI_CHECK(queue_id >= 0 && queue_id < static_cast<int>(user_queues_.size()));
  if (cpu >= 0) {
    core_->ChargeCpu(cpu, core_->costs().hint_write_ns);
  }
  const bool ok = user_queues_[queue_id]->Push(hint);
  // enter_queue: the write side kicks the kernel so the hint is parsed at
  // the next scheduler entry even on an otherwise quiet system.
  core_->loop().ScheduleAfter(core_->costs().hint_write_ns, [this] { DrainHints(); });
  return ok;
}

std::optional<HintBlob> EnokiRuntime::PollRevHint(int queue_id) {
  ENOKI_CHECK(queue_id >= 0 && queue_id < static_cast<int>(rev_queues_.size()));
  return rev_queues_[queue_id]->Pop();
}

UpgradeReport EnokiRuntime::Upgrade(std::unique_ptr<EnokiSched> next, const UpgradeOptions& opts) {
  UpgradeReport report;
  if (next == nullptr) {
    report.error = "null module";
    return report;
  }
  if (ModuleOffline()) {
    // Refused before any quiesce attempt: no pause is charged and the
    // upgrade counter is untouched.
    report.error = "module quarantined by watchdog; upgrade refused";
    return report;
  }
  if (in_probation_) {
    report.error = "previous upgrade still in probation; upgrade refused";
    return report;
  }
  // Flap damping: a fingerprint that keeps failing probation is refused
  // outright until the rolling window drains — no quiesce, no pause, no
  // chance to churn the module slot a fourth time.
  const uint64_t incoming_fp = ModuleFingerprint(next.get());
  report.incoming_fingerprint = incoming_fp;
  PruneFlapWindow(core_->now());
  if (incoming_fp != 0 && FlapFailureCount(incoming_fp) >= flap_config_.max_failures) {
    ++fingerprint_refusals_;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "incoming fingerprint flapping (%" PRIu64 " probation failures in window);"
                  " upgrade refused",
                  FlapFailureCount(incoming_fp));
    report.error = buf;
    report.refused_flapping = true;
    return report;
  }
  const SimCosts& costs = core_->costs();
  // Quiesce: acquire the per-scheduler read-write lock in write mode. The
  // pause is the reader drain (one in-flight call per CPU in the worst
  // case), the prepare/init calls, and the pointer swap.
  Duration pause = costs.upgrade_swap_ns + 2 * costs.enoki_call_ns;
  pause += static_cast<Duration>(core_->ncpus()) * costs.upgrade_percpu_drain_ns;

  // Checkpoint the outgoing module *before* ReregisterPrepare disturbs its
  // state: if the incoming module fails init or probation, this snapshot is
  // what the transaction rolls back to.
  Checkpoint ck;
  const bool checkpointed = TakeCheckpoint(module_.get(), &ck);
  if (checkpointed) {
    report.checkpointed = true;
    pause += costs.checkpoint_save_ns;
  }

  TransferState state;
  try {
    state = module_->ReregisterPrepare();
  } catch (const std::exception& ex) {
    // The old module would not quiesce. Abort before the swap: it stays
    // installed and keeps running; no pause is charged because the write
    // lock was released without a handoff.
    report.error = std::string("module refused to quiesce: ") + ex.what();
    return report;
  }
  // Probe whether the incoming module actually adopts the transferred state.
  // A cross-policy upgrade names a different transfer type, so Take() fails,
  // the carried Schedulable tokens die with the transfer, and the commit path
  // must re-inject queued tasks as fresh wakeups or they strand forever.
  std::shared_ptr<bool> consumed = state.AttachConsumptionProbe();
  next->Attach(this);
  EnokiSched* incoming = next.get();
  std::unique_ptr<EnokiSched> outgoing = std::move(module_);
  module_ = std::move(next);
  try {
    incoming->ReregisterInit(std::move(state));
  } catch (const std::exception& ex) {
    if (checkpointed) {
      // Transaction abort: reinstall the outgoing module and restore the
      // accounting state we snapshotted before prepare. Queued tasks are
      // re-injected as wakeups so nothing is lost; the broken incoming
      // module dies here having never owned a task.
      module_ = std::move(outgoing);
      // Re-attach: prepare moved the per-CPU structures out; a failed
      // restore must still leave sized state behind.
      module_->Attach(this);
      checkpoints_.Push(std::move(ck));
      // An init rejection counts against the incoming fingerprint just like
      // a probation trip would: it is the same "this build cannot take the
      // slot" signal, one rung earlier.
      RecordFlapFailure(incoming_fp, core_->now());
      recovering_ = true;
      const bool restored = RestoreFromCheckpoint(module_.get());
      const uint64_t reinjected = ReinjectQueuedTasks();
      recovering_ = false;
      ++rollbacks_;
      pause += static_cast<Duration>(reinjected) * costs.restore_pertask_ns;
      for (int cpu = 0; cpu < core_->ncpus(); ++cpu) {
        core_->ChargeCpu(cpu, pause);
      }
      report.error =
          std::string("new module rejected transferred state; rolled back: ") + ex.what();
      report.pause_ns = pause;
      report.rolled_back = true;
      RecordEntry e;
      e.type = RecordType::kUpgradeRollback;
      e.arg[0] = restored ? 1 : 0;
      e.arg[1] = reinjected;
      Record(e);
      ENOKI_WARN("enoki: upgrade aborted, rolled back to predecessor (restored=%d, %" PRIu64
                 " tasks re-injected): %s",
                 restored ? 1 : 0, reinjected, ex.what());
      KickAllCpus();
      return report;
    }
    // Legacy (non-checkpointable module) path: the swap already happened and
    // the old module's state is gone. The new module is installed but
    // broken. With a watchdog this is a containment event (quarantine +
    // fallback, zero task loss); without one the caller only gets the error.
    report.error = std::string("new module rejected transferred state: ") + ex.what();
    report.pause_ns = pause;
    ++escaped_exceptions_;
    for (int cpu = 0; cpu < core_->ncpus(); ++cpu) {
      core_->ChargeCpu(cpu, pause);
    }
    ENOKI_WARN("enoki: upgrade failed after swap: %s", report.error.c_str());
    if (watchdog_ != nullptr) {
      TripWatchdog(TripReason::kUpgradeFailure, report.error);
    }
    return report;
  }

  // Commit: only successful swaps count as upgrades.
  ++upgrades_;
  // Every CPU's next scheduling operation is delayed by the blackout.
  for (int cpu = 0; cpu < core_->ncpus(); ++cpu) {
    core_->ChargeCpu(cpu, pause);
  }
  report.ok = true;
  report.pause_ns = pause;
  {
    RecordEntry e;
    e.type = RecordType::kUpgrade;
    e.arg[0] = upgrades_;
    e.arg[1] = checkpointed ? 1 : 0;
    Record(e);
  }
  if (checkpointed && watchdog_ != nullptr && opts.enable_probation && !fallback_done_) {
    // Probation: the outgoing module stays parked as the rollback target
    // until the incoming one survives a window under tightened budgets.
    // Absent a caller override, the budgets are the incoming policy's own
    // DefaultProbation() — a central dispatcher and a work-stealing balancer
    // do not false-positive on the same thresholds.
    prev_module_ = std::move(outgoing);
    checkpoints_.Push(std::move(ck));
    incoming_fingerprint_ = incoming_fp;
    ProbationConfig probation;
    try {
      probation = opts.probation.value_or(incoming->DefaultProbation());
    } catch (...) {
      probation = ProbationConfig{};
    }
    BeginProbation(probation, /*upgrade_txn=*/true);
  } else if (checkpointed) {
    checkpoints_.Push(std::move(ck));
  }
  if (opts.checkpoint_interval_ns > 0) {
    SetCheckpointInterval(opts.checkpoint_interval_ns);
  }
  if (!*consumed) {
    // The incoming module did not take the transfer (different policy, or the
    // outgoing module exported nothing): every token it carried is gone.
    // Re-inject queued tasks with freshly minted tokens, exactly like the
    // rollback and restart paths, so a cross-policy upgrade loses no tasks.
    // Runs after probation is armed so a misbehaving successor that trips the
    // watchdog here is contained by the normal probation rollback.
    recovering_ = true;
    const uint64_t reinjected = ReinjectQueuedTasks();
    recovering_ = false;
    if (reinjected > 0) {
      const Duration extra = static_cast<Duration>(reinjected) * costs.restore_pertask_ns;
      pause += extra;
      report.pause_ns = pause;
      for (int cpu = 0; cpu < core_->ncpus(); ++cpu) {
        core_->ChargeCpu(cpu, extra);
      }
      KickAllCpus();
    }
  }
  return report;
}

void AttachShardMergeRecorder(ShardedEventLoop& engine, Recorder* recorder) {
  ENOKI_CHECK(recorder != nullptr);
  engine.set_merge_observer(
      [recorder](Time deliver_at, int src, int dst, uint64_t seq) {
        RecordEntry e;
        e.type = RecordType::kShardMerge;
        e.arg[0] = deliver_at;
        e.arg[1] = static_cast<uint64_t>(src);
        e.arg[2] = static_cast<uint64_t>(dst);
        e.arg[3] = seq;
        // Stamp with the message's simulated delivery time: commits happen
        // at epoch barriers, outside any core's call context, so the
        // runtime's usual pre-call SetTime has not run here.
        recorder->SetTime(deliver_at);
        recorder->Append(e);
      });
}

}  // namespace enoki
