// The Enoki record system (section 3.4).
//
// In record mode the runtime appends one RecordEntry per call into the
// scheduler (with its arguments and response) and the lock shims append one
// entry per lock create/acquire/release, tagged with the kernel thread id.
// Entries flow through a ring buffer shared with a userspace record task,
// which drains them to the log asynchronously — writing cannot happen in
// scheduler context (interrupts disabled), exactly as in the paper. Buffer
// overruns drop events and are counted.

#ifndef SRC_ENOKI_RECORD_H_
#define SRC_ENOKI_RECORD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/ring_buffer.h"
#include "src/base/time.h"
#include "src/enoki/lock.h"

namespace enoki {

enum class RecordType : uint8_t {
  kTaskNew = 1,
  kTaskWakeup,
  kTaskBlocked,
  kTaskPreempt,
  kTaskYield,
  kTaskDead,
  kTaskDeparted,
  kPickNextTask,
  kPntErr,
  kSelectTaskRq,
  kMigrateTaskRq,
  kBalance,
  kBalanceErr,
  kTaskTick,
  kTimerFired,
  kParseHint,
  kAffinityChanged,
  kPrioChanged,
  kLockCreate,
  kLockAcquire,
  kLockRelease,
  // Lifecycle events emitted by the runtime itself (not module calls):
  // upgrades and the recovery ladder. Replay ignores them.
  kUpgrade,
  kUpgradeRollback,
  kModuleRestart,
  // Sharded-engine epoch merge: one entry per committed cross-shard message
  // (arg = deliver time, src shard, dst shard, per-shard send seq), emitted
  // in commit order by AttachShardMergeRecorder. A trace's merge sequence is
  // part of its determinism contract — byte-identical across
  // ENOKI_SHARD_THREADS — and replay ignores it like the other runtime
  // lifecycle markers.
  kShardMerge,
  // Checkpoint lifecycle (recovery ladder): a generation pushed onto the
  // ring (arg = sequence, taken_at, payload bytes) and a restore walk
  // completing (arg = sequence loaded, ring depth consumed, generations
  // skipped). Replay ignores both like the other lifecycle markers.
  kCheckpointSave,
  kCheckpointRestore,
};

const char* RecordTypeName(RecordType type);

struct RecordEntry {
  uint64_t seq = 0;
  Time time = 0;
  int32_t kthread = 0;
  RecordType type = RecordType::kTaskNew;
  uint64_t pid = 0;
  int32_t cpu = -1;
  uint64_t runtime = 0;
  uint64_t arg[4] = {0, 0, 0, 0};
  uint64_t resp0 = 0;
  uint64_t resp1 = 0;
  bool has_resp = false;
  bool flag = false;  // wake_sync and similar per-type booleans
};

// Always-on flight recorder: a small fixed ring of the most recent record
// entries, appended to by the runtime even when no Recorder is attached, so
// a CrashReport can carry the module's last calls without the record
// system's ring+drain machinery (and without its per-call simulated cost —
// a fixed-size in-kernel ring is free at this model's granularity).
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 64) : ring_(capacity) {}

  void Append(Time now, RecordEntry entry) {
    entry.seq = ++seq_;
    entry.time = now;
    entry.kthread = GetCurrentKthread();
    ring_[(seq_ - 1) % ring_.size()] = entry;
  }

  // Oldest-to-newest snapshot of the retained tail, at most `max_entries`.
  std::vector<RecordEntry> Tail(size_t max_entries) const;

  uint64_t appended() const { return seq_; }
  size_t capacity() const { return ring_.size(); }

 private:
  std::vector<RecordEntry> ring_;
  uint64_t seq_ = 0;
};

class Recorder : public LockHooks {
 public:
  explicit Recorder(size_t ring_capacity);

  // Producer side (scheduler context): stamps seq/kthread, pushes to ring.
  void Append(RecordEntry entry);

  // LockHooks: lock events become record entries.
  void OnLockCreate(uint64_t lock_id) override;
  void OnLockAcquire(uint64_t lock_id) override;
  void OnLockRelease(uint64_t lock_id) override;

  // Consumer side (the userspace record task): moves ring contents to the
  // log. Returns the number of entries drained.
  size_t Drain();

  // The recorder's notion of "now", set by the runtime before each call so
  // entries are stamped with simulated time.
  void SetTime(Time t) { time_ = t; }

  const std::vector<RecordEntry>& log() const { return log_; }
  std::vector<RecordEntry> TakeLog();
  uint64_t dropped() const { return ring_.dropped(); }
  uint64_t appended() const { return appended_; }

  // Text serialization, one entry per line: the record file the replay
  // utility consumes.
  bool SaveToFile(const std::string& path) const;
  static bool LoadFromFile(const std::string& path, std::vector<RecordEntry>* out);

 private:
  RingBuffer<RecordEntry> ring_;
  std::vector<RecordEntry> log_;
  uint64_t next_seq_ = 1;
  uint64_t appended_ = 0;
  Time time_ = 0;
};

}  // namespace enoki

#endif  // SRC_ENOKI_RECORD_H_
