// The Enoki scheduler API: the C++ rendering of the paper's EnokiScheduler
// trait (Table 1) and the Schedulable ownership token (section 3.1).
//
// A scheduler implements EnokiSched and nothing else: it never touches
// kernel state directly. The framework (enoki::EnokiRuntime) translates the
// kernel's scheduling-class callbacks into calls on this interface, passing
// plain-value "message" structs — no pointers cross the boundary — and
// move-only Schedulable tokens that prove a task may run on a given CPU.
//
// The paper expresses the token discipline with Rust's affine types; here it
// is expressed with C++ move semantics: Schedulable has no copy constructor,
// so a scheduler cannot retain a usable duplicate of a token it has returned.
// Returning a stale or wrong-CPU token is detected at runtime by the
// framework's generation check and routed back through PntErr, mirroring the
// paper's pick_next_task validation.

#ifndef SRC_ENOKI_API_H_
#define SRC_ENOKI_API_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <typeinfo>
#include <utility>

#include "src/base/cpumask.h"
#include "src/base/niceness.h"
#include "src/base/ring_buffer.h"
#include "src/base/time.h"
#include "src/enoki/checkpoint.h"
#include "src/fault/watchdog.h"

namespace enoki {

// Proof that a task may be scheduled on a CPU. Minted only by the framework;
// move-only so schedulers cannot clone validation they have given back.
class Schedulable {
 public:
  Schedulable(Schedulable&& other) noexcept { *this = std::move(other); }

  Schedulable& operator=(Schedulable&& other) noexcept {
    pid_ = other.pid_;
    cpu_ = other.cpu_;
    generation_ = other.generation_;
    other.pid_ = 0;  // moved-from tokens are visibly invalid
    return *this;
  }

  Schedulable(const Schedulable&) = delete;
  Schedulable& operator=(const Schedulable&) = delete;

  uint64_t pid() const { return pid_; }
  int cpu() const { return cpu_; }
  bool valid() const { return pid_ != 0; }

 private:
  friend class SchedulableMinter;
  Schedulable(uint64_t pid, int cpu, uint64_t generation)
      : pid_(pid), cpu_(cpu), generation_(generation) {}

  uint64_t pid_ = 0;
  int cpu_ = -1;
  uint64_t generation_ = 0;
};

// Only the framework (and the replay engine, which stands in for it) mints
// tokens. Scheduler modules cannot: the constructor is private and this
// factory lives behind framework internals.
class SchedulableMinter {
 public:
  static Schedulable Mint(uint64_t pid, int cpu, uint64_t generation) {
    return Schedulable(pid, cpu, generation);
  }
  static uint64_t Generation(const Schedulable& s) { return s.generation_; }
};

// Per-call message payloads. All values; no pointers into kernel state.
struct TaskMessage {
  uint64_t pid = 0;
  int cpu = -1;        // CPU the event concerns
  int prev_cpu = -1;   // task's previous CPU (select/wakeup)
  Duration runtime = 0;  // accumulated runtime, tracked by the framework
  int nice = 0;
  bool wake_sync = false;  // WF_SYNC: waker blocks imminently
  bool is_new = false;     // first placement of a newly created task
};

struct MigrateMessage {
  uint64_t pid = 0;
  int from_cpu = -1;
  int to_cpu = -1;
  Duration runtime = 0;
};

// Scheduler-defined hint payload (section 3.3). The framework moves opaque
// fixed-size blobs across the user/kernel boundary; schedulers define the
// interpretation (and typically wrap this in a typed view).
struct HintBlob {
  uint64_t w[4] = {0, 0, 0, 0};
};

using HintQueue = RingBuffer<HintBlob>;

// Type-erased state passed between scheduler versions across a live upgrade
// (section 3.2). The new version must name the exact type the old version
// exported; a mismatch yields nullptr from Take(), which the runtime treats
// as an upgrade error.
class TransferState {
 public:
  TransferState() = default;

  template <typename T>
  static TransferState Of(std::unique_ptr<T> value) {
    TransferState s;
    s.data_ = std::shared_ptr<void>(value.release(), [](void* p) { delete static_cast<T*>(p); });
    s.type_ = &typeid(T);
    return s;
  }

  template <typename T>
  std::unique_ptr<T> Take() {
    if (type_ == nullptr || *type_ != typeid(T) || data_ == nullptr) {
      return nullptr;
    }
    if (taken_ != nullptr) {
      *taken_ = true;
    }
    // The framework hands transfer state to exactly one recipient, so the
    // shared_ptr is unique here.
    T* raw = static_cast<T*>(data_.get());
    auto deleter_holder = data_;
    data_ = nullptr;
    type_ = nullptr;
    // Detach: keep the object alive past the shared_ptr by copying out.
    // To avoid requiring copyability, release via aliasing trick: we know
    // use_count()==1, so steal the pointer and neuter the deleter.
    return std::unique_ptr<T>(new T(std::move(*raw)));
  }

  bool empty() const { return data_ == nullptr; }
  const char* type_name() const { return type_ == nullptr ? "<empty>" : type_->name(); }

  // Consumption probe for the upgrade transaction: the runtime attaches one
  // before handing the state to the incoming module's ReregisterInit, and a
  // successful Take() sets it. A cross-policy upgrade (the types do not
  // match) leaves it false, telling the runtime the carried tokens died and
  // queued tasks must be re-injected as fresh wakeups.
  std::shared_ptr<bool> AttachConsumptionProbe() {
    taken_ = std::make_shared<bool>(false);
    return taken_;
  }

 private:
  std::shared_ptr<void> data_;
  const std::type_info* type_ = nullptr;
  std::shared_ptr<bool> taken_;
};

// Kernel services available to a scheduler module (locks and timers per
// section 3.1; reverse hint queues per section 3.3). Implemented by the
// runtime in the simulated kernel and by a stub in userspace replay.
class EnokiKernelEnv {
 public:
  virtual ~EnokiKernelEnv() = default;

  virtual Time Now() const = 0;
  virtual int NumCpus() const = 0;
  virtual int NodeOf(int cpu) const = 0;

  // The SMT sibling of `cpu`, or -1 when the machine topology has none.
  // Defaulted so pre-portfolio environments (and userspace replay) need no
  // change.
  virtual int SiblingOf(int cpu) const { return -1; }

  // Arms a one-shot per-CPU timer; TimerFired(cpu) is invoked on expiry.
  virtual void ArmTimer(int cpu, Duration delay) = 0;

  // Requests that `cpu` re-enter the scheduler (resched IPI).
  virtual void ReschedCpu(int cpu) = 0;

  // Declares that the module spent `d` of CPU time inside the current
  // callback (beyond the framework's fixed per-call overhead). The runtime
  // charges it through the cost model and counts it against the watchdog's
  // per-callback budget; the replay environment ignores it. This is how a
  // module's own computation — or a FaultInjector's pathological spin —
  // becomes visible to both the simulation clock and fault containment.
  virtual void BusyWait(int cpu, Duration d) {}

  // Pushes a kernel-to-user hint onto reverse queue `queue_id`.
  virtual void PushRevHint(int queue_id, const HintBlob& hint) = 0;
};

// The EnokiScheduler trait (paper Table 1). Method names follow the paper's
// functions one-for-one. A scheduler manages only its own state in response
// to these calls; the framework owns all kernel state.
class EnokiSched {
 public:
  virtual ~EnokiSched() = default;

  // Called once at load (and after upgrade) with the kernel services handle.
  virtual void Attach(EnokiKernelEnv* env) { env_ = env; }

  // get_policy: the policy number this scheduler serves.
  virtual int GetPolicy() const = 0;

  // pick_next_task: return the token of the task to run on `cpu`, or nullopt
  // to leave the CPU idle (ceding it to lower scheduling classes). `curr` is
  // unused by the runtime's requeue-first protocol and always nullopt in
  // kernel operation; it is kept for API fidelity and for replayed traces.
  virtual std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) = 0;

  // pnt_err: the returned token failed validation; ownership comes back.
  virtual void PntErr(int cpu, std::optional<Schedulable> sched) {}

  virtual void TaskDead(uint64_t pid) = 0;
  virtual void TaskBlocked(const TaskMessage& msg) = 0;
  virtual void TaskWakeup(const TaskMessage& msg, Schedulable sched) = 0;
  virtual void TaskNew(const TaskMessage& msg, Schedulable sched) = 0;
  virtual void TaskPreempt(const TaskMessage& msg, Schedulable sched) = 0;
  virtual void TaskYield(const TaskMessage& msg, Schedulable sched) = 0;

  // task_departed: the task is leaving this scheduler; return its token.
  virtual std::optional<Schedulable> TaskDeparted(const TaskMessage& msg) = 0;

  virtual void TaskAffinityChanged(uint64_t pid, const CpuMask& mask) {}
  virtual void TaskPrioChanged(uint64_t pid, int nice) {}

  // task_tick: periodic timer while `pid` runs on `cpu`.
  virtual void TaskTick(int cpu, uint64_t pid, Duration runtime) {}

  // A timer armed via EnokiKernelEnv::ArmTimer fired on `cpu`.
  virtual void TimerFired(int cpu) {}

  // select_task_rq: choose the CPU for a waking or new task.
  virtual int SelectTaskRq(const TaskMessage& msg) = 0;

  // migrate_task_rq: the task moves CPUs; receive the new token, return the
  // old one.
  virtual Schedulable MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) = 0;

  // balance: offer a task (by pid) to move onto `cpu`, or nullopt.
  virtual std::optional<uint64_t> Balance(int cpu) { return std::nullopt; }

  // balance_err: the offered task could not be moved.
  virtual void BalanceErr(int cpu, uint64_t pid, std::optional<Schedulable> sched) {}

  // Live upgrade (section 3.2).
  virtual TransferState ReregisterPrepare() { return {}; }
  virtual void ReregisterInit(TransferState state) {}

  // ---- Checkpointing (recovery ladder; see src/enoki/checkpoint.h) ----
  // Serializes the module's *accounting* state (weights, virtual times,
  // placement cursors) into `out`. Queue membership and Schedulable tokens
  // must NOT be serialized: the runtime's kernel-side bookkeeping is
  // authoritative for those, and after a restore it re-injects every queued
  // task as a wakeup carrying a freshly minted token. Returns false when the
  // module does not support checkpointing; the runtime then falls back to
  // the non-transactional upgrade/quarantine behavior.
  virtual bool SaveCheckpoint(ByteWriter* out) const { return false; }

  // The payload format version SaveCheckpoint writes.
  virtual uint32_t CheckpointVersion() const { return 0; }

  // Restores state serialized by an instance whose CheckpointVersion() was
  // `version`. Called on a quiesced (empty) module instance. Returns false
  // when the version is unsupported or the payload is malformed; the module
  // must be left usable (fresh) either way.
  virtual bool LoadCheckpoint(uint32_t version, ByteReader* in) { return false; }

  // The probation budgets a freshly upgraded instance of this policy should
  // prove itself under when the caller does not override them
  // (UpgradeOptions.probation wins when set). Policies whose healthy shape
  // would false-positive the generic defaults — a central dispatcher funnels
  // every pick through one CPU, a work-stealing balancer loses benign races —
  // loosen exactly the budget their mechanism stresses and keep the rest.
  virtual ProbationConfig DefaultProbation() const { return ProbationConfig{}; }

  // Stable identity of this module build for flap damping and checkpoint
  // provenance: the runtime refuses upgrades to a fingerprint that keeps
  // failing probation, and the restore walk skips ring generations saved by
  // a different fingerprint. Folds the concrete type, the policy id, and the
  // checkpoint format version; deterministic within one binary (which is the
  // scope every determinism comparison runs in). Never returns 0 — 0 is the
  // "unknown saver" wildcard in Checkpoint.
  virtual uint64_t VersionFingerprint() const {
    uint64_t h = 14695981039346656037ull;
    auto mix = [&h](uint8_t byte) {
      h ^= byte;
      h *= 1099511628211ull;
    };
    for (const char* p = typeid(*this).name(); *p != '\0'; ++p) {
      mix(static_cast<uint8_t>(*p));
    }
    const uint64_t policy = static_cast<uint64_t>(static_cast<int64_t>(GetPolicy()));
    const uint64_t version = CheckpointVersion();
    for (int i = 0; i < 8; ++i) {
      mix(static_cast<uint8_t>(policy >> (8 * i)));
    }
    for (int i = 0; i < 4; ++i) {
      mix(static_cast<uint8_t>(version >> (8 * i)));
    }
    return h == 0 ? 1 : h;
  }

  // Hint queues (section 3.3). The runtime owns the ring buffers and drains
  // user hints into ParseHint synchronously before scheduling decisions
  // (enter_queue); these callbacks tell the scheduler which queue ids exist.
  virtual int RegisterQueue(int queue_id) { return queue_id; }
  virtual int RegisterReverseQueue(int queue_id) { return queue_id; }
  virtual void EnterQueue(int queue_id) {}
  virtual void UnregisterQueue(int queue_id) {}
  virtual void UnregisterRevQueue(int queue_id) {}
  virtual void ParseHint(const HintBlob& hint) {}

 protected:
  EnokiKernelEnv* env_ = nullptr;
};

}  // namespace enoki

#endif  // SRC_ENOKI_API_H_
