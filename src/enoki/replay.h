// The Enoki replay system (section 3.4).
//
// Replay runs the *same scheduler code* that ran in the kernel, at
// userspace, against a recorded trace. The engine:
//  1. parses the log and extracts, per lock, the recorded order of
//     acquisitions (identified by lock creation order and kernel-thread id);
//  2. installs replay lock hooks so the module's shim locks block each
//     thread until its recorded turn;
//  3. starts one real thread per recorded call message (bounded by a sliding
//     window), serialized per kernel-thread id, and validates each response
//     against the recorded one.
//
// Any divergence (response mismatch, lock-order stall) is counted and
// reported rather than fatal, so partial traces (ring overruns) degrade
// gracefully.

#ifndef SRC_ENOKI_REPLAY_H_
#define SRC_ENOKI_REPLAY_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "src/enoki/api.h"
#include "src/enoki/record.h"

namespace enoki {

struct ReplayResult {
  uint64_t calls_replayed = 0;
  uint64_t response_mismatches = 0;
  uint64_t lock_blocks = 0;   // acquisitions that had to wait for their turn
  uint64_t lock_timeouts = 0; // recorded order could not be satisfied
  double parse_seconds = 0.0;
  double replay_seconds = 0.0;
};

// Userspace stand-in for the kernel services; time is driven by the trace.
class ReplayEnv : public EnokiKernelEnv {
 public:
  explicit ReplayEnv(int ncpus) : ncpus_(ncpus) {}

  Time Now() const override { return now_.load(std::memory_order_relaxed); }
  int NumCpus() const override { return ncpus_; }
  int NodeOf(int cpu) const override { return 0; }
  void ArmTimer(int cpu, Duration delay) override {}   // timers appear as recorded calls
  void ReschedCpu(int cpu) override {}
  void PushRevHint(int queue_id, const HintBlob& hint) override {}

  void SetNow(Time t) { now_.store(t, std::memory_order_relaxed); }

 private:
  const int ncpus_;
  std::atomic<Time> now_{0};
};

class ReplayEngine {
 public:
  // `module` must be freshly constructed *after* the engine (so its locks
  // are created under the replay hooks); call AdoptModule once built.
  // `lock_wait_timeout_ms` bounds how long a replay thread waits for its
  // recorded lock turn before declaring the trace incomplete (counted in
  // ReplayResult::lock_timeouts) and moving on; tests replaying truncated
  // traces lower it so degradation is exercised quickly.
  ReplayEngine(std::vector<RecordEntry> log, int ncpus, int max_outstanding = 64,
               int lock_wait_timeout_ms = 5000);
  ~ReplayEngine();

  ReplayEngine(const ReplayEngine&) = delete;
  ReplayEngine& operator=(const ReplayEngine&) = delete;

  ReplayEnv* env() { return &env_; }

  // Installs the replay lock hooks; the module must be constructed between
  // InstallHooks() and Run().
  void InstallHooks();

  ReplayResult Run(EnokiSched* module);

 private:
  class LockOrderHooks;

  void PerformCall(EnokiSched* module, const RecordEntry& e, ReplayResult* result);

  std::vector<RecordEntry> log_;
  ReplayEnv env_;
  const int max_outstanding_;
  const int lock_wait_timeout_ms_;
  std::unique_ptr<LockOrderHooks> hooks_;
  std::mutex result_mu_;
};

}  // namespace enoki

#endif  // SRC_ENOKI_REPLAY_H_
