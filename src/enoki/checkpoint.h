// Checkpoints: versioned, checksummed snapshots of a module's accounting
// state, taken at upgrade boundaries and consumed by the recovery ladder
// (probation rollback and supervised restart — see DESIGN.md).
//
// A checkpoint deliberately captures *less* than a live-upgrade
// TransferState: only the module's own accounting (weights, virtual times,
// placement cursors), never queue membership and never Schedulable tokens.
// The runtime's kernel-side bookkeeping is authoritative for those; after a
// restore it re-injects every queued task as a wakeup with a freshly minted
// token, so a checkpoint can never smuggle a stale proof back into a module.
//
// The byte format is explicit little-endian u64/u32 fields written through
// ByteWriter and read back through ByteReader, whose reads are bounds-checked
// so a truncated or hostile payload fails cleanly instead of invoking UB.
// Seal() computes an FNV-1a checksum over the payload folded with every
// metadata field (format version, sequence, capture time, saver
// fingerprint); Valid() recomputes it. Folding the metadata means a stale
// generation replayed into a different ring slot — same payload, forged
// sequence — fails Valid() instead of being silently accepted. The runtime
// refuses to hand a checkpoint that fails Valid() to LoadCheckpoint at all —
// corruption is detected, not deserialized.
//
// CheckpointStore keeps a small ring of the K newest sealed generations.
// Restore walks it newest→oldest, dropping generations that fail Valid() or
// that the module refuses to load, so one rotted slot costs a bounded window
// of accounting instead of the whole restore.

#ifndef SRC_ENOKI_CHECKPOINT_H_
#define SRC_ENOKI_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "src/base/time.h"

namespace enoki {

// Append-only little-endian serializer for checkpoint payloads.
class ByteWriter {
 public:
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

// Bounds-checked reader. Every read reports success; once a read runs past
// the end the reader is poisoned and all further reads fail, so a truncated
// payload cannot produce partially-garbage values silently.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& bytes) : b_(&bytes) {}

  bool U32(uint32_t* out) {
    uint64_t v = 0;
    if (!Raw(4, &v)) {
      return false;
    }
    *out = static_cast<uint32_t>(v);
    return true;
  }
  bool U64(uint64_t* out) { return Raw(8, out); }

  bool AtEnd() const { return pos_ >= b_->size(); }
  bool overrun() const { return overrun_; }
  size_t remaining() const { return overrun_ ? 0 : b_->size() - pos_; }

 private:
  bool Raw(size_t n, uint64_t* out) {
    if (overrun_ || b_->size() - pos_ < n) {
      overrun_ = true;
      return false;
    }
    uint64_t v = 0;
    for (size_t i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>((*b_)[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    *out = v;
    return true;
  }

  const std::vector<uint8_t>* b_;
  size_t pos_ = 0;
  bool overrun_ = false;
};

// A sealed snapshot of one module's accounting state.
struct Checkpoint {
  uint32_t state_version = 0;  // the module's CheckpointVersion() at save
  uint64_t sequence = 0;       // runtime-assigned, monotonically increasing
  Time taken_at = 0;           // simulated time of the snapshot
  // VersionFingerprint() of the saving module. Restore skips generations
  // whose fingerprint does not match the module being restored, so a
  // cross-policy ring (older generations from a replaced predecessor) can
  // never feed one policy's payload into another policy's loader. 0 means
  // "unknown" (pre-fingerprint fixtures) and matches anything.
  uint64_t module_fingerprint = 0;
  std::vector<uint8_t> bytes;  // payload written by SaveCheckpoint
  uint64_t checksum = 0;       // FNV-1a over all metadata + length + payload

  // The seal covers sequence, taken_at, and module_fingerprint in addition
  // to the version and payload: replaying a stale generation under forged
  // metadata (a different ring slot, a rewritten capture time) breaks the
  // checksum just like flipping a payload byte does.
  uint64_t Fnv1a() const {
    uint64_t h = 14695981039346656037ull;
    auto mix = [&h](uint8_t byte) {
      h ^= byte;
      h *= 1099511628211ull;
    };
    auto mix64 = [&mix](uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        mix(static_cast<uint8_t>(v >> (8 * i)));
      }
    };
    for (int i = 0; i < 4; ++i) {
      mix(static_cast<uint8_t>(state_version >> (8 * i)));
    }
    mix64(sequence);
    mix64(static_cast<uint64_t>(taken_at));
    mix64(module_fingerprint);
    mix64(bytes.size());
    for (uint8_t byte : bytes) {
      mix(byte);
    }
    return h;
  }

  void Seal() { checksum = Fnv1a(); }
  bool Valid() const { return checksum == Fnv1a(); }
  size_t size_bytes() const { return bytes.size(); }
};

// A bounded ring of sealed checkpoint generations, newest first. Push
// evicts the oldest generation once `capacity` is reached; the restore walk
// reads (and drops) from the newest end. K is small — eviction is a deque
// pop, and the store is only touched at checkpoint/restore boundaries, never
// on the scheduling hot path.
class CheckpointStore {
 public:
  static constexpr size_t kDefaultCapacity = 4;

  explicit CheckpointStore(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  size_t capacity() const { return capacity_; }

  // Resizing below the current population evicts the oldest generations.
  void set_capacity(size_t capacity) {
    capacity_ = capacity == 0 ? 1 : capacity;
    while (ring_.size() > capacity_) {
      ring_.pop_front();
      ++evicted_;
    }
  }

  bool empty() const { return ring_.empty(); }
  size_t size() const { return ring_.size(); }
  uint64_t pushed() const { return pushed_; }
  uint64_t evicted() const { return evicted_; }

  // Appends a new newest generation, evicting the oldest at capacity.
  void Push(Checkpoint ck) {
    if (ring_.size() == capacity_) {
      ring_.pop_front();
      ++evicted_;
    }
    ring_.push_back(std::move(ck));
    ++pushed_;
  }

  // i = 0 is the newest generation, i = size()-1 the oldest.
  const Checkpoint& FromNewest(size_t i) const { return ring_[ring_.size() - 1 - i]; }
  // Mutable access for fault injection (ring-slot bit-rot) and fixtures.
  Checkpoint* MutableFromNewest(size_t i) { return &ring_[ring_.size() - 1 - i]; }

  const Checkpoint* newest() const { return ring_.empty() ? nullptr : &ring_.back(); }

  // The restore walk discards a generation it rejected (bad checksum, load
  // refusal) so it is never offered twice.
  void DropNewest() {
    if (!ring_.empty()) {
      ring_.pop_back();
    }
  }

  void Clear() { ring_.clear(); }

 private:
  size_t capacity_;
  std::deque<Checkpoint> ring_;
  uint64_t pushed_ = 0;
  uint64_t evicted_ = 0;
};

}  // namespace enoki

#endif  // SRC_ENOKI_CHECKPOINT_H_
