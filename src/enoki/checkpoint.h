// Checkpoints: versioned, checksummed snapshots of a module's accounting
// state, taken at upgrade boundaries and consumed by the recovery ladder
// (probation rollback and supervised restart — see DESIGN.md).
//
// A checkpoint deliberately captures *less* than a live-upgrade
// TransferState: only the module's own accounting (weights, virtual times,
// placement cursors), never queue membership and never Schedulable tokens.
// The runtime's kernel-side bookkeeping is authoritative for those; after a
// restore it re-injects every queued task as a wakeup with a freshly minted
// token, so a checkpoint can never smuggle a stale proof back into a module.
//
// The byte format is explicit little-endian u64/u32 fields written through
// ByteWriter and read back through ByteReader, whose reads are bounds-checked
// so a truncated or hostile payload fails cleanly instead of invoking UB.
// Seal() computes an FNV-1a checksum over the payload (folded with the
// format version); Valid() recomputes it. The runtime refuses to hand a
// checkpoint that fails Valid() to LoadCheckpoint at all — corruption is
// detected, not deserialized.

#ifndef SRC_ENOKI_CHECKPOINT_H_
#define SRC_ENOKI_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/time.h"

namespace enoki {

// Append-only little-endian serializer for checkpoint payloads.
class ByteWriter {
 public:
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

// Bounds-checked reader. Every read reports success; once a read runs past
// the end the reader is poisoned and all further reads fail, so a truncated
// payload cannot produce partially-garbage values silently.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& bytes) : b_(&bytes) {}

  bool U32(uint32_t* out) {
    uint64_t v = 0;
    if (!Raw(4, &v)) {
      return false;
    }
    *out = static_cast<uint32_t>(v);
    return true;
  }
  bool U64(uint64_t* out) { return Raw(8, out); }

  bool AtEnd() const { return pos_ >= b_->size(); }
  bool overrun() const { return overrun_; }
  size_t remaining() const { return overrun_ ? 0 : b_->size() - pos_; }

 private:
  bool Raw(size_t n, uint64_t* out) {
    if (overrun_ || b_->size() - pos_ < n) {
      overrun_ = true;
      return false;
    }
    uint64_t v = 0;
    for (size_t i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>((*b_)[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    *out = v;
    return true;
  }

  const std::vector<uint8_t>* b_;
  size_t pos_ = 0;
  bool overrun_ = false;
};

// A sealed snapshot of one module's accounting state.
struct Checkpoint {
  uint32_t state_version = 0;  // the module's CheckpointVersion() at save
  uint64_t sequence = 0;       // runtime-assigned, monotonically increasing
  Time taken_at = 0;           // simulated time of the snapshot
  std::vector<uint8_t> bytes;  // payload written by SaveCheckpoint
  uint64_t checksum = 0;       // FNV-1a over (version, length, payload)

  static uint64_t Fnv1a(const std::vector<uint8_t>& bytes, uint32_t version) {
    uint64_t h = 14695981039346656037ull;
    auto mix = [&h](uint8_t byte) {
      h ^= byte;
      h *= 1099511628211ull;
    };
    for (int i = 0; i < 4; ++i) {
      mix(static_cast<uint8_t>(version >> (8 * i)));
    }
    const uint64_t len = bytes.size();
    for (int i = 0; i < 8; ++i) {
      mix(static_cast<uint8_t>(len >> (8 * i)));
    }
    for (uint8_t byte : bytes) {
      mix(byte);
    }
    return h;
  }

  void Seal() { checksum = Fnv1a(bytes, state_version); }
  bool Valid() const { return checksum == Fnv1a(bytes, state_version); }
  size_t size_bytes() const { return bytes.size(); }
};

}  // namespace enoki

#endif  // SRC_ENOKI_CHECKPOINT_H_
