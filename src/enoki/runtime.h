// EnokiRuntime: the Enoki-C analog (section 3).
//
// The runtime sits between the simulated kernel's scheduling-class dispatch
// and a loaded EnokiSched module. It owns everything the paper assigns to
// Enoki-C plus the unsafe parts of libEnoki:
//  - translating core-scheduler callbacks into value messages,
//  - minting and validating Schedulable tokens (section 3.1),
//  - maintaining the kernel-side run-queue bookkeeping (which task is queued
//    where) that modules must never touch,
//  - charging the framework's per-invocation overhead to the cost model,
//  - hint queues in both directions (section 3.3),
//  - live upgrade with quiesce and state transfer (section 3.2), and
//  - appending record entries in record mode (section 3.4).

#ifndef SRC_ENOKI_RUNTIME_H_
#define SRC_ENOKI_RUNTIME_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/enoki/api.h"
#include "src/enoki/record.h"
#include "src/fault/watchdog.h"
#include "src/simkernel/sched_class.h"
#include "src/simkernel/sched_core.h"

namespace enoki {

struct UpgradeReport {
  bool ok = false;
  Duration pause_ns = 0;
  std::string error;
};

class EnokiRuntime : public SchedClass, public EnokiKernelEnv {
 public:
  explicit EnokiRuntime(std::unique_ptr<EnokiSched> module);
  ~EnokiRuntime() override;

  // ---- SchedClass (calls from the simulated kernel) ----
  const char* name() const override { return "enoki"; }
  void Attach(SchedCore* core) override;
  int SelectTaskRq(Task* t, int prev_cpu, bool wake_sync, bool is_new) override;
  void EnqueueTask(int cpu, Task* t, bool wakeup) override;
  void DequeueTask(int cpu, Task* t, DequeueReason reason) override;
  Task* PickNextTask(int cpu) override;
  void TaskPreempted(int cpu, Task* t) override;
  void TaskYielded(int cpu, Task* t) override;
  void TaskTick(int cpu, Task* t) override;
  bool Balance(int cpu) override;
  bool WantsBalanceBeforePick() const override { return true; }
  void TimerFired(int cpu) override;
  void AffinityChanged(Task* t) override;
  void PrioChanged(Task* t) override;
  void OnTaskStarved(Task* t, Duration runnable_ns) override;

  // ---- EnokiKernelEnv (services for the module) ----
  Time Now() const override;
  int NumCpus() const override;
  int NodeOf(int cpu) const override;
  void ArmTimer(int cpu, Duration delay) override;
  void ReschedCpu(int cpu) override;
  void BusyWait(int cpu, Duration d) override;
  void PushRevHint(int queue_id, const HintBlob& hint) override;

  // ---- Hint queues (userspace side) ----
  // Creates a user->kernel queue and registers it with the module.
  int CreateHintQueue(size_t capacity);
  // Creates a kernel->user queue and registers it with the module.
  int CreateRevQueue(size_t capacity);
  // Userspace writes a hint. `cpu` attributes the write cost (pass the
  // sending task's CPU, or -1 to skip charging).
  bool SendHint(int queue_id, const HintBlob& hint, int cpu = -1);
  // Userspace polls a kernel->user queue.
  std::optional<HintBlob> PollRevHint(int queue_id);

  // ---- Live upgrade (section 3.2) ----
  UpgradeReport Upgrade(std::unique_ptr<EnokiSched> next);

  // ---- Fault containment (src/fault) ----
  // Arms the watchdog. `fallback_policy` names the registered class
  // (typically CFS) that inherits this module's tasks on a trip. Must be
  // called after Attach; installs the watchdog's starvation bound into the
  // core. Without a watchdog the runtime keeps its historical behavior:
  // module exceptions propagate and only token validation contains faults.
  void EnableWatchdog(const WatchdogConfig& config, int fallback_policy);

  // sysrq-style operator abort: trips the watchdog immediately with
  // TripReason::kManual (requires EnableWatchdog).
  void AbortModule(const std::string& reason);

  bool quarantined() const { return quarantined_; }
  bool fallback_done() const { return fallback_done_; }
  const std::optional<CrashReport>& crash_report() const { return crash_report_; }
  Watchdog* watchdog() const { return watchdog_.get(); }

  // ---- Record mode (section 3.4) ----
  void SetRecorder(Recorder* recorder) { recorder_ = recorder; }
  Recorder* recorder() const { return recorder_; }

  // ---- Introspection ----
  EnokiSched* module() const { return module_.get(); }
  uint64_t module_calls() const { return module_calls_; }
  uint64_t pick_errors() const { return pick_errors_; }
  uint64_t balance_errors() const { return balance_errors_; }
  uint64_t upgrades() const { return upgrades_; }
  uint64_t escaped_exceptions() const { return escaped_exceptions_; }
  size_t QueuedCount(int cpu) const { return queued_[cpu].size(); }

 private:
  TaskMessage MakeMsg(const Task* t, int cpu, bool wake_sync = false) const;
  Schedulable Mint(Task* t, int cpu);
  // Validates a token a module returned for running on `cpu`.
  bool ValidateForRun(const Schedulable& s, int cpu, Task** out_task) const;
  void Charge(int cpu);
  void Record(RecordEntry entry);
  void DrainHints();

  // Runs one module callback with the containment boundary around it:
  // traps escaping exceptions (HandleEscape) and, on normal completion,
  // accounts the call's latency against the watchdog budget (FinishCall).
  // Returns false if the callback threw; the caller applies its per-site
  // degraded behavior (e.g. treat a thrown pick as "idle").
  template <typename Fn>
  bool Guarded(const char* site, Fn&& fn);
  // Must be called from a catch block: counts the escape and either
  // rethrows (no watchdog) or reports it, possibly tripping.
  void HandleEscape(const char* site, const char* what);
  void FinishCall(const char* site);
  // Quarantines the module, snapshots the CrashReport, and schedules the
  // fallback sweep at the next clean event boundary. Idempotent.
  void TripWatchdog(TripReason reason, std::string detail);
  // Re-policies every task of this class onto fallback_policy_ with zero
  // task loss, waiting out any in-flight context switch first.
  void ExecuteFallback();

  std::unique_ptr<EnokiSched> module_;
  Recorder* recorder_ = nullptr;

  // Dense pid membership set. Pids are assigned densely from 1 and the
  // runtime checks/updates membership on every queue transition, so a byte
  // vector beats a hash set on the hot path.
  class PidSet {
   public:
    bool contains(uint64_t pid) const { return pid < in_.size() && in_[pid] != 0; }
    void insert(uint64_t pid) {
      if (pid >= in_.size()) {
        in_.resize(pid + 1, 0);
      }
      if (in_[pid] == 0) {
        in_[pid] = 1;
        ++count_;
      }
    }
    void erase(uint64_t pid) {
      if (pid < in_.size() && in_[pid] != 0) {
        in_[pid] = 0;
        --count_;
      }
    }
    size_t size() const { return count_; }

   private:
    std::vector<uint8_t> in_;
    size_t count_ = 0;
  };

  // Kernel-side run-queue bookkeeping: pids queued (runnable, not running)
  // per CPU, and the pid running per CPU (0 = none / other class).
  std::vector<PidSet> queued_;
  std::vector<uint64_t> running_;

  std::vector<std::unique_ptr<HintQueue>> user_queues_;
  std::vector<std::unique_ptr<HintQueue>> rev_queues_;

  uint64_t module_calls_ = 0;
  uint64_t pick_errors_ = 0;
  uint64_t balance_errors_ = 0;
  uint64_t upgrades_ = 0;

  // Fault containment state. watchdog_ == nullptr means containment is off
  // and module exceptions propagate (the pre-watchdog contract).
  std::unique_ptr<Watchdog> watchdog_;
  int fallback_policy_ = -1;
  bool quarantined_ = false;
  bool fallback_done_ = false;
  std::optional<CrashReport> crash_report_;
  // Simulated time the module declared via BusyWait during the current
  // callback; folded into that call's watchdog-visible latency.
  Duration callback_busy_ns_ = 0;
  uint64_t escaped_exceptions_ = 0;
};

}  // namespace enoki

#endif  // SRC_ENOKI_RUNTIME_H_
