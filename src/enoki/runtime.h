// EnokiRuntime: the Enoki-C analog (section 3).
//
// The runtime sits between the simulated kernel's scheduling-class dispatch
// and a loaded EnokiSched module. It owns everything the paper assigns to
// Enoki-C plus the unsafe parts of libEnoki:
//  - translating core-scheduler callbacks into value messages,
//  - minting and validating Schedulable tokens (section 3.1),
//  - maintaining the kernel-side run-queue bookkeeping (which task is queued
//    where) that modules must never touch,
//  - charging the framework's per-invocation overhead to the cost model,
//  - hint queues in both directions (section 3.3),
//  - live upgrade with quiesce and state transfer (section 3.2), and
//  - appending record entries in record mode (section 3.4).

#ifndef SRC_ENOKI_RUNTIME_H_
#define SRC_ENOKI_RUNTIME_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/base/time.h"
#include "src/enoki/api.h"
#include "src/enoki/checkpoint.h"
#include "src/enoki/record.h"
#include "src/fault/supervisor.h"
#include "src/fault/watchdog.h"
#include "src/simkernel/sched_class.h"
#include "src/simkernel/sched_core.h"

namespace enoki {

class CheckpointSaboteur;

struct UpgradeReport {
  bool ok = false;
  Duration pause_ns = 0;
  std::string error;
  bool checkpointed = false;  // outgoing state captured before the swap
  bool rolled_back = false;   // post-swap init failure undone from the checkpoint
  // Flap damping: the incoming module's fingerprint has failed probation too
  // many times inside the rolling window and the upgrade was refused before
  // any quiesce attempt (no pause charged, no state disturbed).
  bool refused_flapping = false;
  uint64_t incoming_fingerprint = 0;  // VersionFingerprint() of `next`
};

// Options for a transactional upgrade. Probation requires an armed watchdog
// and a checkpointable outgoing module; when either is missing the upgrade
// commits immediately, as before.
struct UpgradeOptions {
  bool enable_probation = true;
  // nullopt = the incoming module's own DefaultProbation() budgets.
  std::optional<ProbationConfig> probation;
  // When > 0 and the upgrade commits, (re)arms the runtime's periodic
  // CheckpointNow() cadence at this interval — the knob a deployment tool
  // would set alongside the upgrade itself. 0 leaves the current cadence
  // untouched.
  Duration checkpoint_interval_ns = 0;
};

// Version-fingerprint flap damping: after `max_failures` probation failures
// of the same incoming fingerprint within the rolling window, further
// upgrades to that fingerprint are refused until the window drains.
struct FlapDampingConfig {
  uint64_t max_failures = 3;
  Duration window_ns = Milliseconds(50);
};

class EnokiRuntime : public SchedClass, public EnokiKernelEnv {
 public:
  explicit EnokiRuntime(std::unique_ptr<EnokiSched> module);
  ~EnokiRuntime() override;

  // ---- SchedClass (calls from the simulated kernel) ----
  const char* name() const override { return "enoki"; }
  void Attach(SchedCore* core) override;
  int SelectTaskRq(Task* t, int prev_cpu, bool wake_sync, bool is_new) override;
  void EnqueueTask(int cpu, Task* t, bool wakeup) override;
  void DequeueTask(int cpu, Task* t, DequeueReason reason) override;
  Task* PickNextTask(int cpu) override;
  void TaskPreempted(int cpu, Task* t) override;
  void TaskYielded(int cpu, Task* t) override;
  void TaskTick(int cpu, Task* t) override;
  bool Balance(int cpu) override;
  bool WantsBalanceBeforePick() const override { return true; }
  void TimerFired(int cpu) override;
  void AffinityChanged(Task* t) override;
  void PrioChanged(Task* t) override;
  void OnTaskStarved(Task* t, Duration runnable_ns) override;

  // ---- EnokiKernelEnv (services for the module) ----
  Time Now() const override;
  int NumCpus() const override;
  int NodeOf(int cpu) const override;
  int SiblingOf(int cpu) const override;
  void ArmTimer(int cpu, Duration delay) override;
  void ReschedCpu(int cpu) override;
  void BusyWait(int cpu, Duration d) override;
  void PushRevHint(int queue_id, const HintBlob& hint) override;

  // ---- Hint queues (userspace side) ----
  // Creates a user->kernel queue and registers it with the module.
  int CreateHintQueue(size_t capacity);
  // Creates a kernel->user queue and registers it with the module.
  int CreateRevQueue(size_t capacity);
  // Userspace writes a hint. `cpu` attributes the write cost (pass the
  // sending task's CPU, or -1 to skip charging).
  bool SendHint(int queue_id, const HintBlob& hint, int cpu = -1);
  // Userspace polls a kernel->user queue.
  std::optional<HintBlob> PollRevHint(int queue_id);

  // ---- Live upgrade (section 3.2) ----
  // Transactional: the outgoing module's accounting state is checkpointed
  // before the swap (when it supports SaveCheckpoint), a post-swap init
  // failure rolls back to the checkpointed predecessor, and — with a
  // watchdog armed — the incoming module runs a probation window under
  // tightened budgets before the upgrade commits.
  UpgradeReport Upgrade(std::unique_ptr<EnokiSched> next,
                        const UpgradeOptions& opts = UpgradeOptions{});

  // ---- Fault containment (src/fault) ----
  // Arms the watchdog. `fallback_policy` names the registered class
  // (typically CFS) that inherits this module's tasks on a trip. Must be
  // called after Attach; installs the watchdog's starvation bound into the
  // core. Without a watchdog the runtime keeps its historical behavior:
  // module exceptions propagate and only token validation contains faults.
  void EnableWatchdog(const WatchdogConfig& config, int fallback_policy);

  // Arms the supervisor above the watchdog: trips become supervised
  // restart-from-checkpoint attempts (exponential backoff, budgeted per
  // window) and only escalate to quarantine+CFS once the budget is spent.
  // Requires EnableWatchdog first; `factory` builds fresh module instances.
  void EnableSupervisor(const SupervisorConfig& config, ModuleFactory factory);

  // sysrq-style operator abort: trips the watchdog immediately with
  // TripReason::kManual (requires EnableWatchdog).
  void AbortModule(const std::string& reason);

  // Installs a checkpoint-storage corruptor (tests/fault sweeps only):
  // applied to every checkpoint after sealing, modeling bit-rot the
  // checksum validation must catch.
  void SetCheckpointSaboteur(CheckpointSaboteur* saboteur) { saboteur_ = saboteur; }

  // Takes a fresh checkpoint generation of the current module outside any
  // upgrade and pushes it onto the ring. Returns false when the module does
  // not support checkpointing, is offline, or its saver crashed (a crash is
  // reported to the watchdog like any other escaped exception — the ring
  // keeps its prior generations either way).
  bool CheckpointNow();

  // Arms (interval > 0) or disarms (0) a periodic CheckpointNow() cadence
  // driven through the event loop, so supervised restarts lose a bounded
  // window of accounting even when no upgrade ever happens. Saves are
  // skipped — but the cadence stays armed — while the module is offline or
  // on probation (an unproven module must not overwrite proven generations);
  // a terminal quarantine stops the cadence for good.
  void SetCheckpointInterval(Duration interval);
  Duration checkpoint_interval() const { return checkpoint_interval_; }

  // Resizes the generation ring (K, default CheckpointStore::kDefaultCapacity).
  void SetCheckpointCapacity(size_t k) { checkpoints_.set_capacity(k); }

  // Configures version-fingerprint flap damping for Upgrade().
  void SetFlapDamping(const FlapDampingConfig& cfg) { flap_config_ = cfg; }

  bool quarantined() const { return quarantined_; }
  bool fallback_done() const { return fallback_done_; }
  const std::optional<CrashReport>& crash_report() const { return crash_report_; }
  Watchdog* watchdog() const { return watchdog_.get(); }
  ModuleSupervisor* supervisor() const { return supervisor_.get(); }
  bool in_probation() const { return in_probation_; }
  bool recovery_pending() const { return rollback_pending_ || restart_pending_; }
  // The newest sealed generation (by value: the ring owns the storage).
  std::optional<Checkpoint> last_good_checkpoint() const {
    const Checkpoint* newest = checkpoints_.newest();
    return newest == nullptr ? std::nullopt : std::optional<Checkpoint>(*newest);
  }
  const CheckpointStore& checkpoint_store() const { return checkpoints_; }
  // Mutable ring access for fault sweeps and fixtures (ring-slot bit-rot).
  CheckpointStore* mutable_checkpoint_store() { return &checkpoints_; }

  // Deterministic restore timeline: one line per walk step ("skip"/"restore"
  // with simulated time, sequence, reason). Identical seeds must produce
  // byte-identical strings — the sweep tests' fallback-order fingerprint.
  std::string RestoreTimelineString() const;

  // ---- Record mode (section 3.4) ----
  void SetRecorder(Recorder* recorder) { recorder_ = recorder; }
  Recorder* recorder() const { return recorder_; }

  // ---- Introspection ----
  EnokiSched* module() const { return module_.get(); }
  uint64_t module_calls() const { return module_calls_; }
  uint64_t pick_errors() const { return pick_errors_; }
  uint64_t balance_errors() const { return balance_errors_; }
  uint64_t upgrades() const { return upgrades_; }
  uint64_t escaped_exceptions() const { return escaped_exceptions_; }
  uint64_t rollbacks() const { return rollbacks_; }
  uint64_t module_restarts() const { return module_restarts_; }
  uint64_t checkpoint_rejects() const { return checkpoint_rejects_; }
  uint64_t restore_fallbacks() const { return restore_fallbacks_; }
  uint64_t periodic_checkpoints() const { return periodic_checkpoints_; }
  uint64_t checkpoint_save_failures() const { return checkpoint_save_failures_; }
  uint64_t fingerprint_refusals() const { return fingerprint_refusals_; }
  // Ring depth consumed by the most recent restore walk (1 = newest
  // generation loaded cleanly; larger = generations were skipped) and the
  // simulated work window lost with it (now - taken_at of the generation
  // actually loaded). Both 0 until a restore runs.
  uint64_t last_restore_depth() const { return last_restore_depth_; }
  Duration last_restore_age_ns() const { return last_restore_age_ns_; }
  const FlightRecorder& flight_recorder() const { return flight_; }
  size_t QueuedCount(int cpu) const { return queued_[cpu].size(); }

 private:
  TaskMessage MakeMsg(const Task* t, int cpu, bool wake_sync = false) const;
  Schedulable Mint(Task* t, int cpu);
  // Validates a token a module returned for running on `cpu`.
  bool ValidateForRun(const Schedulable& s, int cpu, Task** out_task) const;
  void Charge(int cpu);
  void Record(RecordEntry entry);
  void DrainHints();

  // Runs one module callback with the containment boundary around it:
  // traps escaping exceptions (HandleEscape) and, on normal completion,
  // accounts the call's latency against the watchdog budget (FinishCall).
  // Returns false if the callback threw; the caller applies its per-site
  // degraded behavior (e.g. treat a thrown pick as "idle").
  template <typename Fn>
  bool Guarded(const char* site, Fn&& fn);
  // Must be called from a catch block: counts the escape and either
  // rethrows (no watchdog) or reports it, possibly tripping.
  void HandleEscape(const char* site, const char* what);
  void FinishCall(const char* site);
  // The recovery ladder's entry point: snapshots the CrashReport and walks
  // the ladder — probation trip with an open upgrade transaction rolls back,
  // a supervised module restarts (after backoff), anything else quarantines.
  // The module-altering step is always deferred to a clean event boundary.
  // Idempotent while a recovery is already pending.
  void TripWatchdog(TripReason reason, std::string detail);
  // Re-policies every task of this class onto fallback_policy_ with zero
  // task loss, waiting out any in-flight context switch first.
  void ExecuteFallback();

  // ---- Recovery ladder internals ----
  // True while the module must not be called: terminally quarantined, or a
  // rollback/restart is waiting for its event boundary. Callbacks park
  // tasks in the runtime's bookkeeping until the module is back.
  bool ModuleOffline() const { return quarantined_ || rollback_pending_ || restart_pending_; }
  // Snapshots `module` into `out` (sealed, saboteur applied). False when
  // the module does not support checkpointing or its saver threw (the
  // latter also sets last_save_threw_ for the caller to escalate).
  bool TakeCheckpoint(EnokiSched* module, Checkpoint* out);
  // Walks the generation ring newest→oldest, dropping generations that fail
  // Valid() (counted in checkpoint_rejects_), were saved by a different
  // module fingerprint, or that LoadCheckpoint refuses — every skip is
  // counted in restore_fallbacks_ and appended to the restore timeline.
  // Returns true once a generation loads; false means the ring is exhausted
  // and the module starts fresh.
  bool RestoreFromCheckpoint(EnokiSched* module);
  // The module's VersionFingerprint(), with a throwing override treated as
  // "unknown" (0).
  static uint64_t ModuleFingerprint(const EnokiSched* module);
  // Flap damping bookkeeping: drops window-expired failures, then counts /
  // records probation failures of `fingerprint`.
  void PruneFlapWindow(Time now);
  uint64_t FlapFailureCount(uint64_t fingerprint) const;
  void RecordFlapFailure(uint64_t fingerprint, Time now);
  void AppendRestoreLog(const char* verdict, const Checkpoint& ck, const char* reason);
  // Self-rescheduling periodic-checkpoint timer (SetCheckpointInterval).
  void ArmCheckpointCadence(uint64_t epoch);
  // Re-injects every queued task into the (restored) module as a wakeup
  // with a freshly minted token; returns how many were injected.
  uint64_t ReinjectQueuedTasks();
  void BeginProbation(const ProbationConfig& cfg, bool upgrade_txn);
  // Probation survived: destroy the predecessor, refresh the last-good
  // checkpoint from the now-proven module.
  void CommitProbation();
  // Deferred handler for a probation trip with an open upgrade transaction.
  void PerformRollback();
  // Deferred handler for a supervised restart (runs after the backoff).
  void PerformRestart();
  void KickAllCpus();

  std::unique_ptr<EnokiSched> module_;
  Recorder* recorder_ = nullptr;

  // Dense pid membership set. Pids are assigned densely from 1 and the
  // runtime checks/updates membership on every queue transition, so a byte
  // vector beats a hash set on the hot path.
  class PidSet {
   public:
    bool contains(uint64_t pid) const { return pid < in_.size() && in_[pid] != 0; }
    void insert(uint64_t pid) {
      if (pid >= in_.size()) {
        in_.resize(pid + 1, 0);
      }
      if (in_[pid] == 0) {
        in_[pid] = 1;
        ++count_;
      }
    }
    void erase(uint64_t pid) {
      if (pid < in_.size() && in_[pid] != 0) {
        in_[pid] = 0;
        --count_;
      }
    }
    size_t size() const { return count_; }

    // Visits members in ascending pid order (deterministic recovery sweeps).
    template <typename Fn>
    void ForEach(Fn&& fn) const {
      for (uint64_t pid = 0; pid < in_.size(); ++pid) {
        if (in_[pid] != 0) {
          fn(pid);
        }
      }
    }

   private:
    std::vector<uint8_t> in_;
    size_t count_ = 0;
  };

  // Kernel-side run-queue bookkeeping: pids queued (runnable, not running)
  // per CPU, and the pid running per CPU (0 = none / other class).
  std::vector<PidSet> queued_;
  std::vector<uint64_t> running_;

  std::vector<std::unique_ptr<HintQueue>> user_queues_;
  std::vector<std::unique_ptr<HintQueue>> rev_queues_;

  uint64_t module_calls_ = 0;
  uint64_t pick_errors_ = 0;
  uint64_t balance_errors_ = 0;
  uint64_t upgrades_ = 0;

  // Fault containment state. watchdog_ == nullptr means containment is off
  // and module exceptions propagate (the pre-watchdog contract).
  std::unique_ptr<Watchdog> watchdog_;
  int fallback_policy_ = -1;
  bool quarantined_ = false;
  bool fallback_done_ = false;
  std::optional<CrashReport> crash_report_;
  // Simulated time the module declared via BusyWait during the current
  // callback; folded into that call's watchdog-visible latency.
  Duration callback_busy_ns_ = 0;
  uint64_t escaped_exceptions_ = 0;

  // ---- Recovery ladder state ----
  std::unique_ptr<ModuleSupervisor> supervisor_;
  CheckpointSaboteur* saboteur_ = nullptr;
  // Always-on crash-forensics ring (kept even when recorder_ == nullptr).
  FlightRecorder flight_;

  // The predecessor held alive while an upgrade is on probation (the open
  // transaction), and the generation ring checkpoint recovery restores from.
  std::unique_ptr<EnokiSched> prev_module_;
  CheckpointStore checkpoints_;
  uint64_t checkpoint_seq_ = 0;
  // Set by TakeCheckpoint when the saver threw (vs. merely lacking
  // checkpoint support): CheckpointNow escalates a crash to the watchdog.
  bool last_save_threw_ = false;

  // Periodic-checkpoint cadence (0 = off). The epoch cancels a disarmed or
  // re-armed timer without touching the event loop.
  Duration checkpoint_interval_ = 0;
  uint64_t cadence_epoch_ = 0;

  // Version-fingerprint flap damping: (fingerprint, failure time) pairs
  // within the rolling window, appended in simulated-time order.
  FlapDampingConfig flap_config_;
  std::vector<std::pair<uint64_t, Time>> flap_failures_;
  // Fingerprint of the module whose upgrade probation is currently open.
  uint64_t incoming_fingerprint_ = 0;

  // Deterministic restore timeline (see RestoreTimelineString).
  std::vector<std::string> restore_log_;

  bool in_probation_ = false;
  bool upgrade_txn_ = false;      // current probation guards an upgrade (rollback target exists)
  bool rollback_pending_ = false;  // trip decided: rollback at the next event boundary
  bool restart_pending_ = false;   // trip decided: restart after the supervisor's backoff
  // Pending restart parameters (from the supervisor's decision).
  uint64_t restart_attempt_ = 0;
  uint64_t probation_calls_seen_ = 0;
  // Bumped whenever probation/recovery state changes; deferred timers
  // capture the epoch and no-op when stale.
  uint64_t recovery_epoch_ = 0;
  // Suppresses watchdog trips while the runtime itself drives the module
  // (re-injection during rollback/restart).
  bool recovering_ = false;

  uint64_t rollbacks_ = 0;
  uint64_t module_restarts_ = 0;
  uint64_t checkpoint_rejects_ = 0;
  uint64_t restore_fallbacks_ = 0;
  uint64_t periodic_checkpoints_ = 0;
  uint64_t checkpoint_save_failures_ = 0;
  uint64_t fingerprint_refusals_ = 0;
  uint64_t last_restore_depth_ = 0;
  Duration last_restore_age_ns_ = 0;
};

class ShardedEventLoop;

// Streams the sharded engine's committed cross-shard merge sequence into an
// Enoki trace: one kShardMerge entry per committed message, in commit order
// (arg[0]=deliver time, arg[1]=src shard, arg[2]=dst shard, arg[3]=per-shard
// send seq). Because the merge order is deterministic by construction, the
// recorded sequence is byte-identical across ENOKI_SHARD_THREADS — a trace
// diff is the cheapest way to audit a suspected nondeterminism. Replaces any
// previously attached merge observer; the recorder must outlive the engine's
// last commit.
void AttachShardMergeRecorder(ShardedEventLoop& engine, Recorder* recorder);

}  // namespace enoki

#endif  // SRC_ENOKI_RUNTIME_H_
