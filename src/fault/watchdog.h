// Fault containment: watchdog policy and crash reporting.
//
// The paper's central robustness claim (sections 3.1-3.2) is that a buggy
// scheduler module cannot take down the kernel: invalid Schedulable tokens
// are caught at pick_next_task, and a broken policy can be swapped out live.
// This subsystem closes the loop by *acting* on misbehavior. The Watchdog is
// the decision policy: the runtime reports every suspicious observation
// (escaped exception, over-budget callback, pick/balance validation failure,
// starved task) and the Watchdog answers with the trip reason once a
// configured threshold is crossed. On a trip the runtime quarantines the
// module, re-policies its tasks onto the fallback class, and emits a
// CrashReport — the same containment shape sched_ext gives a misbehaving BPF
// scheduler (error out, fall back to CFS, leave a debug dump).
//
// Everything here is deterministic: thresholds are compared against
// simulated quantities only, so identical seeds produce identical trips and
// identical CrashReports.

#ifndef SRC_FAULT_WATCHDOG_H_
#define SRC_FAULT_WATCHDOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/stats.h"
#include "src/base/time.h"
#include "src/enoki/record.h"

namespace enoki {

enum class TripReason : uint8_t {
  kNone = 0,
  kEscapedException,  // a module callback threw past the API boundary
  kCallbackBudget,    // a single callback exceeded its time budget
  kPickErrors,        // repeated pick_next_task validation failures
  kBalanceErrors,     // repeated balance validation failures
  kStarvation,        // a runnable task went unpicked past the bound
  kUpgradeFailure,    // live upgrade left the module in a broken state
  kManual,            // operator-requested abort (sysrq-style)
};

const char* TripReasonName(TripReason reason);

struct WatchdogConfig {
  // Budget for the simulated time one module callback may consume (framework
  // overhead plus any BusyWait the module performs). One violation trips.
  Duration callback_budget_ns = Milliseconds(10);

  // Trip on the Nth exception escaping a module callback. 1 = first throw.
  uint64_t max_escaped_exceptions = 1;

  // Trip when this many pick_next_task validation failures accumulate.
  uint64_t max_pick_errors = 16;

  // Trip when this many balance validation failures accumulate.
  uint64_t max_balance_errors = 64;

  // A runnable task not dispatched for longer than this trips the watchdog.
  // Also installed as SchedCore's starvation-scan bound. 0 disables.
  Duration starvation_bound_ns = Milliseconds(100);

  // How many trailing record entries (the module's last calls) to capture
  // into the CrashReport when a Recorder is attached.
  size_t crash_ring_entries = 32;
};

// Tightened watchdog budgets applied while a freshly installed module (a
// just-upgraded or just-restarted one) proves itself. Violation counters are
// measured from the start of the window, not from module load, so an old
// module's accumulated errors cannot condemn its successor. Both limits may
// be active at once; probation ends at whichever is reached first.
struct ProbationConfig {
  // Simulated-time length of the window. 0 = calls-only probation.
  Duration window_ns = Milliseconds(5);

  // Watchdog-observed callbacks the module must survive. 0 = time-only.
  uint64_t window_calls = 512;

  // Callback-budget multiplier during probation (< 1 tightens).
  double budget_scale = 0.5;

  // Violation thresholds within the window (counted from its start).
  uint64_t max_escaped_exceptions = 1;
  uint64_t max_pick_errors = 4;
  uint64_t max_balance_errors = 16;
};

// Everything known about a containment event: why the watchdog tripped, the
// module's counters at that moment, callback-latency aggregates, the cost of
// the fallback, and the last calls into the module (from the Recorder ring).
struct CrashReport {
  TripReason reason = TripReason::kNone;
  std::string detail;
  Time tripped_at = 0;
  bool during_probation = false;  // the module tripped inside its probation window

  // Module counters at trip time.
  uint64_t module_calls = 0;
  uint64_t pick_errors = 0;
  uint64_t balance_errors = 0;
  uint64_t escaped_exceptions = 0;
  uint64_t starved_pid = 0;  // 0 unless reason == kStarvation

  // Per-callback simulated latency, aggregated across the module's life.
  StatAccumulator callback_stats;
  Duration callback_p50_ns = 0;
  Duration callback_p99_ns = 0;

  // Fallback outcome, filled in once the quarantined module's tasks have
  // been re-policied onto the fallback class.
  uint64_t tasks_repolicied = 0;
  Duration fallback_pause_ns = 0;

  // Tail of the record log: the last calls the module saw before the trip.
  std::vector<RecordEntry> last_calls;

  // Stable text rendering; used for logging and for determinism checks
  // (identical seeds must yield identical strings).
  std::string ToString() const;
};

// The detection policy. The runtime feeds it observations; each observer
// returns TripReason::kNone or the reason to trip. The Watchdog itself is
// stateless about the fallback — acting on a trip is the runtime's job.
class Watchdog {
 public:
  explicit Watchdog(WatchdogConfig config) : config_(config) {}

  const WatchdogConfig& config() const { return config_; }

  // An exception escaped a module callback.
  TripReason OnEscapedException() {
    ++escaped_exceptions_;
    if (in_probation_) {
      return escaped_exceptions_ - probation_base_escaped_ >= probation_.max_escaped_exceptions
                 ? TripReason::kEscapedException
                 : TripReason::kNone;
    }
    return escaped_exceptions_ >= config_.max_escaped_exceptions
               ? TripReason::kEscapedException
               : TripReason::kNone;
  }

  // A module callback completed, consuming `ns` of simulated time.
  TripReason OnCallbackLatency(Duration ns) {
    callback_stats_.Record(static_cast<double>(ns));
    callback_latency_.Record(ns);
    return ns > effective_callback_budget() ? TripReason::kCallbackBudget : TripReason::kNone;
  }

  // pick_next_task returned a token that failed validation.
  TripReason OnPickError() {
    ++pick_errors_;
    if (in_probation_) {
      return pick_errors_ - probation_base_pick_ >= probation_.max_pick_errors
                 ? TripReason::kPickErrors
                 : TripReason::kNone;
    }
    return pick_errors_ >= config_.max_pick_errors ? TripReason::kPickErrors : TripReason::kNone;
  }

  // balance offered a task that could not be moved.
  TripReason OnBalanceError() {
    ++balance_errors_;
    if (in_probation_) {
      return balance_errors_ - probation_base_balance_ >= probation_.max_balance_errors
                 ? TripReason::kBalanceErrors
                 : TripReason::kNone;
    }
    return balance_errors_ >= config_.max_balance_errors ? TripReason::kBalanceErrors
                                                         : TripReason::kNone;
  }

  // A runnable task went `waited` without being dispatched.
  TripReason OnStarvation(uint64_t pid, Duration waited) {
    starved_pid_ = pid;
    starved_for_ = waited;
    return TripReason::kStarvation;
  }

  uint64_t escaped_exceptions() const { return escaped_exceptions_; }
  uint64_t pick_errors() const { return pick_errors_; }
  uint64_t balance_errors() const { return balance_errors_; }

  // ---- Probation (recovery ladder) ----
  // Enters a probation window with tightened budgets. Violation counters are
  // baselined at the current values so only new misbehavior counts.
  void BeginProbation(const ProbationConfig& cfg) {
    probation_ = cfg;
    in_probation_ = true;
    probation_base_escaped_ = escaped_exceptions_;
    probation_base_pick_ = pick_errors_;
    probation_base_balance_ = balance_errors_;
  }
  void EndProbation() { in_probation_ = false; }
  bool in_probation() const { return in_probation_; }
  const ProbationConfig& probation() const { return probation_; }

  Duration effective_callback_budget() const {
    if (!in_probation_) {
      return config_.callback_budget_ns;
    }
    return static_cast<Duration>(static_cast<double>(config_.callback_budget_ns) *
                                 probation_.budget_scale);
  }

  // Clears the violation counters after a supervised restart: the fresh
  // module instance must not inherit its predecessor's strikes. Latency
  // aggregates are kept — they describe the slot's whole history.
  void ResetCounters() {
    escaped_exceptions_ = 0;
    pick_errors_ = 0;
    balance_errors_ = 0;
    starved_pid_ = 0;
    starved_for_ = 0;
  }

  // Snapshots the watchdog's aggregates into a report for the given trip.
  CrashReport BuildReport(TripReason reason, std::string detail, Time now) const;

 private:
  const WatchdogConfig config_;
  uint64_t escaped_exceptions_ = 0;
  uint64_t pick_errors_ = 0;
  uint64_t balance_errors_ = 0;
  uint64_t starved_pid_ = 0;
  Duration starved_for_ = 0;
  StatAccumulator callback_stats_;
  LatencyRecorder callback_latency_;

  bool in_probation_ = false;
  ProbationConfig probation_;
  uint64_t probation_base_escaped_ = 0;
  uint64_t probation_base_pick_ = 0;
  uint64_t probation_base_balance_ = 0;
};

}  // namespace enoki

#endif  // SRC_FAULT_WATCHDOG_H_
