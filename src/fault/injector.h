// Fault containment: deterministic fault injection for Enoki modules.
//
// FaultInjector is an EnokiSched decorator: it wraps any real scheduler
// module and, driven by a seeded Rng, injects the misbehaviors the paper's
// safety story (section 3.1) and our Watchdog exist to contain:
//
//  - stale / wrong-CPU / double-returned Schedulable tokens from
//    pick_next_task (the runtime's validation must catch each one and route
//    ownership back through pnt_err);
//  - dropped enqueues (a wakeup or new-task event swallowed before the
//    inner module sees it — the classic lost-task bug that starves a task);
//  - exceptions escaping any of the main callbacks;
//  - pathological per-callback latency, charged through the cost model via
//    EnokiKernelEnv::BusyWait so the watchdog's budget can see it;
//  - reverse-hint-queue flooding.
//
// Because every fault decision is drawn from the seeded Rng in callback
// order and the simulator is deterministic, identical (seed, workload)
// pairs inject the identical fault sequence — which is what makes the
// 100-seed sweep in tests/fault_test.cc reproducible bit-for-bit.
//
// The injector is also honest about recovery: when a forged token bounces
// back through pnt_err, it re-injects the real (still valid) token into the
// inner module as a wakeup, so a single token fault is survivable and only
// *repeated* faults cross the watchdog's pick-error threshold.

#ifndef SRC_FAULT_INJECTOR_H_
#define SRC_FAULT_INJECTOR_H_

#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/base/time.h"
#include "src/enoki/api.h"
#include "src/enoki/checkpoint.h"

namespace enoki {

// The exception type thrown by injected-throw faults.
struct InjectedFault : public std::runtime_error {
  explicit InjectedFault(const std::string& site)
      : std::runtime_error("injected fault: " + site) {}
};

// Per-fault-kind injection rates (Bernoulli per opportunity). All zero by
// default: a default FaultPlan is a transparent pass-through.
struct FaultPlan {
  uint64_t seed = 1;

  double drop_enqueue_rate = 0.0;     // swallow task_new / task_wakeup
  double stale_token_rate = 0.0;      // return a stale-generation token
  double wrong_cpu_token_rate = 0.0;  // return a token minted for another CPU
  double double_return_rate = 0.0;    // return the same proof twice
  double throw_rate = 0.0;            // throw from a callback
  double busy_spin_rate = 0.0;        // burn busy_spin_ns inside a callback
  Duration busy_spin_ns = Milliseconds(20);
  double hint_flood_rate = 0.0;       // burst-write the reverse hint queue
  int hint_flood_burst = 128;

  // Upgrade-boundary faults (the recovery ladder's test surface).
  double prepare_throw_rate = 0.0;  // refuse to quiesce in ReregisterPrepare
  double init_throw_rate = 0.0;     // reject transferred state in ReregisterInit
  // After surviving init, throw from the first `probation_misbehave_count`
  // hot callbacks — misbehavior crafted to land inside a probation window.
  double probation_misbehave_rate = 0.0;
  int probation_misbehave_count = 3;
  // Crash inside SaveCheckpoint (crash-during-CheckpointNow): the save
  // yields no generation, the ring keeps its prior ones, and the runtime
  // escalates the crash to the watchdog. Drawn from a dedicated Rng stream
  // so arming it does not perturb the in-band fault sequence.
  double checkpoint_crash_rate = 0.0;

  // The full fault menu at modest rates: every fault kind is exercised, no
  // single kind dominates. Used by the seeded sweep test and the demo.
  static FaultPlan FullMenu(uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.drop_enqueue_rate = 0.02;
    plan.stale_token_rate = 0.05;
    plan.wrong_cpu_token_rate = 0.05;
    plan.double_return_rate = 0.05;
    plan.throw_rate = 0.02;
    plan.busy_spin_rate = 0.01;
    plan.hint_flood_rate = 0.05;
    return plan;
  }

  // Faults concentrated at the upgrade boundary, for modules installed via
  // Upgrade() in the recovery-ladder sweeps. `checkpoint_faults` adds the
  // ring's own failure modes — crash-during-CheckpointNow here and ring-slot
  // bit-rot via CheckpointSaboteur's slot_rot_rate — for sweeps that drive a
  // periodic cadence; the default keeps the original menu byte-identical.
  static FaultPlan UpgradeMenu(uint64_t seed, bool checkpoint_faults = false) {
    FaultPlan plan;
    plan.seed = seed;
    plan.prepare_throw_rate = 0.2;
    plan.init_throw_rate = 0.3;
    plan.probation_misbehave_rate = 0.4;
    if (checkpoint_faults) {
      plan.checkpoint_crash_rate = 0.15;
    }
    return plan;
  }
};

// Simulated checkpoint-storage corruption: with probability `corrupt_rate`,
// flips one byte of an already *sealed* Checkpoint (bit-rot between save and
// restore), so the runtime's checksum validation must catch it before any
// deserialization happens. `slot_rot_rate` additionally rots an *arbitrary*
// generation already sitting in the ring — checked by the runtime at the
// start of each restore walk, modeling rot discovered at read time rather
// than write time. Both streams are seeded independently of the in-band
// fault stream so arming them does not perturb an injector's fault sequence.
class CheckpointSaboteur {
 public:
  CheckpointSaboteur(uint64_t seed, double corrupt_rate, double slot_rot_rate = 0.0)
      : rng_(seed ^ 0x9e3779b97f4a7c15ull),
        slot_rng_(seed ^ 0xda942042e4dd58b5ull),
        rate_(corrupt_rate),
        slot_rate_(slot_rot_rate) {}

  // Returns true if the checkpoint was corrupted.
  bool MaybeCorrupt(Checkpoint* ck) {
    if (ck->bytes.empty() || rate_ <= 0.0 || !rng_.NextBernoulli(rate_)) {
      return false;
    }
    const size_t idx = static_cast<size_t>(rng_.NextBelow(ck->bytes.size()));
    ck->bytes[idx] ^= 0xFF;
    ++corruptions_;
    return true;
  }

  // Ring-slot bit-rot: picks one stored generation uniformly (any slot, not
  // just the newest) and flips a payload byte — or the checksum itself when
  // the payload is empty. Returns true if a slot was corrupted.
  bool MaybeCorruptSlot(CheckpointStore* store) {
    if (store->empty() || slot_rate_ <= 0.0 || !slot_rng_.NextBernoulli(slot_rate_)) {
      return false;
    }
    Checkpoint* ck = store->MutableFromNewest(static_cast<size_t>(
        slot_rng_.NextBelow(static_cast<uint64_t>(store->size()))));
    if (ck->bytes.empty()) {
      ck->checksum ^= 0xFF;
    } else {
      const size_t idx = static_cast<size_t>(slot_rng_.NextBelow(ck->bytes.size()));
      ck->bytes[idx] ^= 0xFF;
    }
    ++slot_corruptions_;
    return true;
  }

  uint64_t corruptions() const { return corruptions_; }
  uint64_t slot_corruptions() const { return slot_corruptions_; }

 private:
  Rng rng_;
  Rng slot_rng_;
  const double rate_;
  const double slot_rate_;
  uint64_t corruptions_ = 0;
  uint64_t slot_corruptions_ = 0;
};

class FaultInjector : public EnokiSched {
 public:
  struct Counts {
    uint64_t dropped_enqueues = 0;
    uint64_t stale_tokens = 0;
    uint64_t wrong_cpu_tokens = 0;
    uint64_t double_returns = 0;
    uint64_t throws = 0;
    uint64_t busy_spins = 0;
    uint64_t hint_floods = 0;
    uint64_t reinjected = 0;  // real tokens recovered via pnt_err
    uint64_t prepare_throws = 0;
    uint64_t init_throws = 0;
    uint64_t probation_misbehaviors = 0;
    uint64_t checkpoint_crashes = 0;

    uint64_t total() const {
      return dropped_enqueues + stale_tokens + wrong_cpu_tokens + double_returns + throws +
             busy_spins + hint_floods + prepare_throws + init_throws + probation_misbehaviors +
             checkpoint_crashes;
    }
  };

  FaultInjector(std::unique_ptr<EnokiSched> inner, FaultPlan plan);

  EnokiSched* inner() const { return inner_.get(); }
  const Counts& counts() const { return counts_; }

  // ---- EnokiSched (decorated) ----
  void Attach(EnokiKernelEnv* env) override;
  int GetPolicy() const override;

  int SelectTaskRq(const TaskMessage& msg) override;
  std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) override;
  void PntErr(int cpu, std::optional<Schedulable> sched) override;

  void TaskDead(uint64_t pid) override;
  void TaskBlocked(const TaskMessage& msg) override;
  void TaskWakeup(const TaskMessage& msg, Schedulable sched) override;
  void TaskNew(const TaskMessage& msg, Schedulable sched) override;
  void TaskPreempt(const TaskMessage& msg, Schedulable sched) override;
  void TaskYield(const TaskMessage& msg, Schedulable sched) override;
  std::optional<Schedulable> TaskDeparted(const TaskMessage& msg) override;
  void TaskAffinityChanged(uint64_t pid, const CpuMask& mask) override;
  void TaskPrioChanged(uint64_t pid, int nice) override;
  void TaskTick(int cpu, uint64_t pid, Duration runtime) override;
  void TimerFired(int cpu) override;

  int RegisterQueue(int queue_id) override;
  int RegisterReverseQueue(int queue_id) override;
  void EnterQueue(int queue_id) override;
  void UnregisterQueue(int queue_id) override;
  void UnregisterRevQueue(int queue_id) override;
  void ParseHint(const HintBlob& hint) override;

  std::optional<uint64_t> Balance(int cpu) override;
  void BalanceErr(int cpu, uint64_t pid, std::optional<Schedulable> sched) override;
  Schedulable MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) override;

  TransferState ReregisterPrepare() override;
  void ReregisterInit(TransferState state) override;

  // Checkpointing passes straight through to the inner module: the injector
  // holds no accounting state of its own worth snapshotting, and recovery
  // must be able to restore the real scheduler behind any decorator. The
  // save path is also where crash-during-CheckpointNow is injected.
  bool SaveCheckpoint(ByteWriter* out) const override {
    if (plan_.checkpoint_crash_rate > 0.0 &&
        save_rng_.NextBernoulli(plan_.checkpoint_crash_rate)) {
      ++counts_.checkpoint_crashes;
      throw InjectedFault("save_checkpoint");
    }
    return inner_->SaveCheckpoint(out);
  }
  uint32_t CheckpointVersion() const override { return inner_->CheckpointVersion(); }
  bool LoadCheckpoint(uint32_t version, ByteReader* in) override {
    return inner_->LoadCheckpoint(version, in);
  }

  // Probation budgets and flap-damping identity belong to the real module:
  // the decorator is transparent, so fingerprint refusal of a flapping build
  // keeps working when the sweep wraps every candidate in an injector.
  ProbationConfig DefaultProbation() const override { return inner_->DefaultProbation(); }
  uint64_t VersionFingerprint() const override { return inner_->VersionFingerprint(); }

 private:
  bool Chance(double rate) { return rate > 0.0 && rng_.NextBernoulli(rate); }
  void MaybeThrow(const char* site);
  void MaybeBusySpin(int cpu);
  void MaybeHintFlood();
  // Probation-window misbehavior armed by a surviving ReregisterInit: the
  // next few hot callbacks throw.
  void MaybeMisbehave(const char* site);
  // A wakeup message reconstructed from a stashed token, used to hand the
  // real proof back to the inner module after a forged one bounced.
  void ReinjectStashed(uint64_t pid);

  std::unique_ptr<EnokiSched> inner_;
  const FaultPlan plan_;
  Rng rng_;
  // Dedicated stream for checkpoint-save crashes; mutable because
  // SaveCheckpoint is const on the EnokiSched interface. Seeded off the main
  // seed so arming checkpoint faults leaves the in-band sequence untouched.
  mutable Rng save_rng_{1};
  mutable Counts counts_;

  // Real tokens held back while a forged twin is in flight, keyed by pid.
  std::unordered_map<uint64_t, Schedulable> stashed_;
  // Cloned proofs waiting to be returned a second time (double-return).
  std::vector<std::pair<uint64_t, Schedulable>> replay_tokens_;
  int rev_queue_ = -1;
  // Hot callbacks left to sabotage after an armed ReregisterInit.
  int misbehave_left_ = 0;
};

}  // namespace enoki

#endif  // SRC_FAULT_INJECTOR_H_
