// Fault containment: the module supervisor — the self-healing rung of the
// recovery ladder (probation → rollback → supervised restart → quarantine).
//
// The Watchdog decides *that* a module misbehaved; the ModuleSupervisor
// decides *what to do about it*. sched_ext errors a misbehaving BPF
// scheduler straight out to CFS; Enoki's agile-upgrade story (and Ekiben's)
// argues for trying harder first: construct a fresh instance of the module
// from a factory, restore its accounting state from the last good
// checkpoint, and give it another chance under tightened probation budgets.
// Only when the restart budget for the current window is exhausted does the
// runtime fall through to the terminal quarantine+CFS path.
//
// Like the Watchdog, the supervisor is a pure decision policy: it holds no
// runtime pointers and touches no kernel state. All of its inputs are
// simulated times and CrashReports, and its backoff schedule is a pure
// function of (config, trip sequence) — so identical seeds produce
// identical recovery timelines, which TimelineString() renders for the
// determinism sweeps.

#ifndef SRC_FAULT_SUPERVISOR_H_
#define SRC_FAULT_SUPERVISOR_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/time.h"
#include "src/enoki/api.h"
#include "src/fault/watchdog.h"

namespace enoki {

// Builds a fresh, state-free instance of the supervised module. Called once
// per restart attempt; the instance is then restored from the last good
// checkpoint (when one validates) before it sees any traffic.
using ModuleFactory = std::function<std::unique_ptr<EnokiSched>()>;

struct SupervisorConfig {
  // Restart attempts allowed within one window; the next trip after the
  // budget is spent escalates to quarantine. The window rolls: a trip that
  // arrives restart_window_ns after the window opened starts a new one.
  uint64_t restart_budget = 3;
  Duration restart_window_ns = Seconds(1);

  // Exponential backoff before each restart (simulated time): attempt k in
  // a window waits min(initial * multiplier^(k-1), max).
  Duration backoff_initial_ns = Microseconds(50);
  uint64_t backoff_multiplier = 2;
  Duration backoff_max_ns = Milliseconds(5);

  // Probation budgets applied to each freshly restarted instance.
  ProbationConfig probation;
};

enum class RecoveryAction : uint8_t {
  kRestart,     // rebuild from the factory, restore the checkpoint, probate
  kQuarantine,  // budget exhausted: terminal quarantine + CFS fallback
};

struct RestartDecision {
  RecoveryAction action = RecoveryAction::kQuarantine;
  Duration backoff_ns = 0;
  uint64_t attempt = 0;  // 1-based within the current window
};

// One completed rung of the recovery timeline.
struct RestartEvent {
  Time tripped_at = 0;
  Time restarted_at = 0;
  TripReason reason = TripReason::kNone;
  uint64_t attempt = 0;
  Duration backoff_ns = 0;
  bool restored_from_checkpoint = false;  // false: started fresh (no/invalid checkpoint)
};

class ModuleSupervisor {
 public:
  ModuleSupervisor(SupervisorConfig config, ModuleFactory factory)
      : config_(config), factory_(std::move(factory)) {}

  const SupervisorConfig& config() const { return config_; }
  std::unique_ptr<EnokiSched> MakeModule() const { return factory_(); }

  // The watchdog tripped at `now`. Archives the report and answers with the
  // action and (for restarts) the simulated-time backoff to wait first.
  RestartDecision OnTrip(const CrashReport& report, Time now) {
    history_.push_back(report);
    if (!window_open_ || now - window_start_ >= config_.restart_window_ns) {
      window_open_ = true;
      window_start_ = now;
      attempts_in_window_ = 0;
    }
    RestartDecision d;
    if (attempts_in_window_ >= config_.restart_budget) {
      d.action = RecoveryAction::kQuarantine;
      ++escalations_;
      return d;
    }
    ++attempts_in_window_;
    ++restarts_decided_;
    d.action = RecoveryAction::kRestart;
    d.attempt = attempts_in_window_;
    d.backoff_ns = BackoffFor(attempts_in_window_);
    pending_ = RestartEvent{};
    pending_.tripped_at = now;
    pending_.reason = report.reason;
    pending_.attempt = d.attempt;
    pending_.backoff_ns = d.backoff_ns;
    return d;
  }

  // The runtime finished installing the restarted module at `now`.
  void OnRestartComplete(Time now, bool restored_from_checkpoint) {
    pending_.restarted_at = now;
    pending_.restored_from_checkpoint = restored_from_checkpoint;
    timeline_.push_back(pending_);
  }

  // The restarted module survived its probation window.
  void OnHealthy(Time now) { ++healthy_commits_; }

  Duration BackoffFor(uint64_t attempt) const {
    Duration b = config_.backoff_initial_ns;
    for (uint64_t i = 1; i < attempt; ++i) {
      if (b > config_.backoff_max_ns / static_cast<Duration>(config_.backoff_multiplier)) {
        return config_.backoff_max_ns;
      }
      b *= static_cast<Duration>(config_.backoff_multiplier);
    }
    return b < config_.backoff_max_ns ? b : config_.backoff_max_ns;
  }

  uint64_t restarts_decided() const { return restarts_decided_; }
  uint64_t escalations() const { return escalations_; }
  uint64_t healthy_commits() const { return healthy_commits_; }
  const std::vector<CrashReport>& history() const { return history_; }
  const std::vector<RestartEvent>& timeline() const { return timeline_; }

  // Stable text rendering of the recovery timeline; identical seeds must
  // yield identical strings (the determinism fingerprint for sweeps).
  std::string TimelineString() const;

 private:
  const SupervisorConfig config_;
  const ModuleFactory factory_;

  bool window_open_ = false;
  Time window_start_ = 0;
  uint64_t attempts_in_window_ = 0;

  uint64_t restarts_decided_ = 0;
  uint64_t escalations_ = 0;
  uint64_t healthy_commits_ = 0;

  RestartEvent pending_;
  std::vector<CrashReport> history_;
  std::vector<RestartEvent> timeline_;
};

}  // namespace enoki

#endif  // SRC_FAULT_SUPERVISOR_H_
