#include "src/fault/watchdog.h"

#include <cinttypes>
#include <cstdio>

namespace enoki {

const char* TripReasonName(TripReason reason) {
  switch (reason) {
    case TripReason::kNone:
      return "none";
    case TripReason::kEscapedException:
      return "escaped-exception";
    case TripReason::kCallbackBudget:
      return "callback-budget";
    case TripReason::kPickErrors:
      return "pick-errors";
    case TripReason::kBalanceErrors:
      return "balance-errors";
    case TripReason::kStarvation:
      return "starvation";
    case TripReason::kUpgradeFailure:
      return "upgrade-failure";
    case TripReason::kManual:
      return "manual";
  }
  return "unknown";
}

CrashReport Watchdog::BuildReport(TripReason reason, std::string detail, Time now) const {
  CrashReport report;
  report.reason = reason;
  report.detail = std::move(detail);
  report.tripped_at = now;
  report.escaped_exceptions = escaped_exceptions_;
  report.pick_errors = pick_errors_;
  report.balance_errors = balance_errors_;
  report.starved_pid = reason == TripReason::kStarvation ? starved_pid_ : 0;
  report.during_probation = in_probation_;
  report.callback_stats = callback_stats_;
  report.callback_p50_ns = callback_latency_.Percentile(50.0);
  report.callback_p99_ns = callback_latency_.Percentile(99.0);
  return report;
}

std::string CrashReport::ToString() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "CrashReport{reason=%s detail=\"%s\" tripped_at=%" PRIu64
                "ns probation=%d module_calls=%" PRIu64 " pick_errors=%" PRIu64
                " balance_errors=%" PRIu64 " escaped_exceptions=%" PRIu64 " starved_pid=%" PRIu64
                "\n",
                TripReasonName(reason), detail.c_str(), static_cast<uint64_t>(tripped_at),
                during_probation ? 1 : 0, module_calls, pick_errors, balance_errors,
                escaped_exceptions, starved_pid);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  callbacks: n=%" PRIu64 " mean=%.1fns max=%.0fns p50=%" PRIu64 "ns p99=%" PRIu64
                "ns\n",
                callback_stats.count(), callback_stats.mean(), callback_stats.max(),
                static_cast<uint64_t>(callback_p50_ns), static_cast<uint64_t>(callback_p99_ns));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  fallback: tasks_repolicied=%" PRIu64 " pause=%" PRIu64 "ns\n", tasks_repolicied,
                static_cast<uint64_t>(fallback_pause_ns));
  out += buf;
  std::snprintf(buf, sizeof(buf), "  last_calls (%zu):\n", last_calls.size());
  out += buf;
  for (const RecordEntry& e : last_calls) {
    std::snprintf(buf, sizeof(buf),
                  "    seq=%" PRIu64 " t=%" PRIu64 " type=%u pid=%" PRIu64
                  " cpu=%d resp=%" PRIu64 "\n",
                  e.seq, static_cast<uint64_t>(e.time), static_cast<unsigned>(e.type), e.pid,
                  e.cpu, e.resp0);
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace enoki
