#include "src/fault/injector.h"

#include "src/base/check.h"

namespace enoki {

FaultInjector::FaultInjector(std::unique_ptr<EnokiSched> inner, FaultPlan plan)
    : inner_(std::move(inner)),
      plan_(plan),
      rng_(plan.seed),
      save_rng_(plan.seed ^ 0x2545f4914f6cdd1dull) {
  ENOKI_CHECK(inner_ != nullptr);
}

void FaultInjector::Attach(EnokiKernelEnv* env) {
  EnokiSched::Attach(env);
  inner_->Attach(env);
}

int FaultInjector::GetPolicy() const { return inner_->GetPolicy(); }

void FaultInjector::MaybeThrow(const char* site) {
  if (Chance(plan_.throw_rate)) {
    ++counts_.throws;
    throw InjectedFault(site);
  }
}

void FaultInjector::MaybeBusySpin(int cpu) {
  if (Chance(plan_.busy_spin_rate)) {
    ++counts_.busy_spins;
    env_->BusyWait(cpu >= 0 ? cpu : 0, plan_.busy_spin_ns);
  }
}

void FaultInjector::MaybeHintFlood() {
  if (rev_queue_ >= 0 && Chance(plan_.hint_flood_rate)) {
    ++counts_.hint_floods;
    HintBlob blob;
    for (int i = 0; i < plan_.hint_flood_burst; ++i) {
      blob.w[0] = static_cast<uint64_t>(i);
      env_->PushRevHint(rev_queue_, blob);
    }
  }
}

void FaultInjector::MaybeMisbehave(const char* site) {
  if (misbehave_left_ > 0) {
    --misbehave_left_;
    ++counts_.probation_misbehaviors;
    throw InjectedFault(std::string("probation: ") + site);
  }
}

void FaultInjector::ReinjectStashed(uint64_t pid) {
  auto it = stashed_.find(pid);
  if (it == stashed_.end()) {
    return;
  }
  Schedulable real = std::move(it->second);
  stashed_.erase(it);
  ++counts_.reinjected;
  TaskMessage msg;
  msg.pid = pid;
  msg.cpu = real.cpu();
  msg.prev_cpu = real.cpu();
  inner_->TaskWakeup(msg, std::move(real));
}

int FaultInjector::SelectTaskRq(const TaskMessage& msg) {
  MaybeMisbehave("select_task_rq");
  MaybeThrow("select_task_rq");
  MaybeBusySpin(msg.prev_cpu);
  return inner_->SelectTaskRq(msg);
}

std::optional<Schedulable> FaultInjector::PickNextTask(int cpu,
                                                       std::optional<Schedulable> curr) {
  MaybeMisbehave("pick_next_task");
  MaybeThrow("pick_next_task");
  MaybeBusySpin(cpu);
  // Double return, phase 2: hand back a proof that was already consumed.
  if (!replay_tokens_.empty() && Chance(plan_.double_return_rate)) {
    ++counts_.double_returns;
    Schedulable dup = std::move(replay_tokens_.back().second);
    replay_tokens_.pop_back();
    return dup;
  }
  auto token = inner_->PickNextTask(cpu, std::move(curr));
  if (!token.has_value()) {
    return token;
  }
  const uint64_t pid = token->pid();
  const uint64_t generation = SchedulableMinter::Generation(*token);
  if (Chance(plan_.stale_token_rate)) {
    ++counts_.stale_tokens;
    stashed_.insert_or_assign(pid, std::move(*token));
    return SchedulableMinter::Mint(pid, cpu, generation - 1);
  }
  if (Chance(plan_.wrong_cpu_token_rate)) {
    ++counts_.wrong_cpu_tokens;
    stashed_.insert_or_assign(pid, std::move(*token));
    return SchedulableMinter::Mint(pid, (cpu + 1) % env_->NumCpus(), generation);
  }
  if (Chance(plan_.double_return_rate)) {
    // Double return, phase 1: keep an identical proof for a later replay.
    // The real token is consumed by this pick, so the clone is stale by the
    // time phase 2 returns it.
    replay_tokens_.emplace_back(pid, SchedulableMinter::Mint(pid, cpu, generation));
  }
  return token;
}

void FaultInjector::PntErr(int cpu, std::optional<Schedulable> sched) {
  // A forged token bounced. If we held back the real proof for this pid,
  // hand it to the inner module as a wakeup so the task recovers; the inner
  // module only sees a spurious (but valid) re-enqueue.
  if (sched.has_value()) {
    const uint64_t pid = sched->pid();
    if (stashed_.count(pid) > 0) {
      ReinjectStashed(pid);
      return;
    }
  }
  inner_->PntErr(cpu, std::move(sched));
}

void FaultInjector::TaskDead(uint64_t pid) {
  stashed_.erase(pid);
  inner_->TaskDead(pid);
}

void FaultInjector::TaskBlocked(const TaskMessage& msg) { inner_->TaskBlocked(msg); }

void FaultInjector::TaskWakeup(const TaskMessage& msg, Schedulable sched) {
  MaybeThrow("task_wakeup");
  if (Chance(plan_.drop_enqueue_rate)) {
    ++counts_.dropped_enqueues;
    return;  // token destroyed: the inner module never learns of the wakeup
  }
  inner_->TaskWakeup(msg, std::move(sched));
}

void FaultInjector::TaskNew(const TaskMessage& msg, Schedulable sched) {
  if (Chance(plan_.drop_enqueue_rate)) {
    ++counts_.dropped_enqueues;
    return;
  }
  inner_->TaskNew(msg, std::move(sched));
}

void FaultInjector::TaskPreempt(const TaskMessage& msg, Schedulable sched) {
  inner_->TaskPreempt(msg, std::move(sched));
}

void FaultInjector::TaskYield(const TaskMessage& msg, Schedulable sched) {
  inner_->TaskYield(msg, std::move(sched));
}

std::optional<Schedulable> FaultInjector::TaskDeparted(const TaskMessage& msg) {
  auto it = stashed_.find(msg.pid);
  if (it != stashed_.end()) {
    // The task leaves while its real token is held back: return the stash
    // (likely stale by now; the runtime only warns) and tell the inner
    // module the task died so it drops any bookkeeping.
    Schedulable s = std::move(it->second);
    stashed_.erase(it);
    inner_->TaskDead(msg.pid);
    return s;
  }
  return inner_->TaskDeparted(msg);
}

void FaultInjector::TaskAffinityChanged(uint64_t pid, const CpuMask& mask) {
  inner_->TaskAffinityChanged(pid, mask);
}

void FaultInjector::TaskPrioChanged(uint64_t pid, int nice) {
  inner_->TaskPrioChanged(pid, nice);
}

void FaultInjector::TaskTick(int cpu, uint64_t pid, Duration runtime) {
  MaybeMisbehave("task_tick");
  MaybeThrow("task_tick");
  MaybeBusySpin(cpu);
  MaybeHintFlood();
  inner_->TaskTick(cpu, pid, runtime);
}

void FaultInjector::TimerFired(int cpu) { inner_->TimerFired(cpu); }

int FaultInjector::RegisterQueue(int queue_id) { return inner_->RegisterQueue(queue_id); }

int FaultInjector::RegisterReverseQueue(int queue_id) {
  rev_queue_ = queue_id;
  return inner_->RegisterReverseQueue(queue_id);
}

void FaultInjector::EnterQueue(int queue_id) { inner_->EnterQueue(queue_id); }
void FaultInjector::UnregisterQueue(int queue_id) { inner_->UnregisterQueue(queue_id); }

void FaultInjector::UnregisterRevQueue(int queue_id) {
  if (queue_id == rev_queue_) {
    rev_queue_ = -1;
  }
  inner_->UnregisterRevQueue(queue_id);
}

void FaultInjector::ParseHint(const HintBlob& hint) { inner_->ParseHint(hint); }

std::optional<uint64_t> FaultInjector::Balance(int cpu) {
  MaybeThrow("balance");
  return inner_->Balance(cpu);
}

void FaultInjector::BalanceErr(int cpu, uint64_t pid, std::optional<Schedulable> sched) {
  inner_->BalanceErr(cpu, pid, std::move(sched));
}

Schedulable FaultInjector::MigrateTaskRq(const MigrateMessage& msg, Schedulable sched) {
  return inner_->MigrateTaskRq(msg, std::move(sched));
}

TransferState FaultInjector::ReregisterPrepare() {
  if (Chance(plan_.prepare_throw_rate)) {
    ++counts_.prepare_throws;
    throw InjectedFault("reregister_prepare");
  }
  return inner_->ReregisterPrepare();
}

void FaultInjector::ReregisterInit(TransferState state) {
  if (Chance(plan_.init_throw_rate)) {
    ++counts_.init_throws;
    throw InjectedFault("reregister_init");
  }
  inner_->ReregisterInit(std::move(state));
  // Survived the swap: optionally arm early-callback misbehavior so the
  // fault lands inside the new module's probation window.
  if (Chance(plan_.probation_misbehave_rate)) {
    misbehave_left_ = plan_.probation_misbehave_count;
  }
}

}  // namespace enoki
