#include "src/fault/supervisor.h"

#include <cinttypes>
#include <cstdio>

namespace enoki {

std::string ModuleSupervisor::TimelineString() const {
  std::string out = "RecoveryTimeline{\n";
  char buf[256];
  for (const RestartEvent& ev : timeline_) {
    std::snprintf(buf, sizeof(buf),
                  "  restart attempt=%" PRIu64 " reason=%s tripped_at=%" PRIu64
                  "ns backoff=%" PRIu64 "ns restarted_at=%" PRIu64 "ns restored=%d\n",
                  ev.attempt, TripReasonName(ev.reason), static_cast<uint64_t>(ev.tripped_at),
                  static_cast<uint64_t>(ev.backoff_ns), static_cast<uint64_t>(ev.restarted_at),
                  ev.restored_from_checkpoint ? 1 : 0);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  trips=%zu restarts=%" PRIu64 " healthy=%" PRIu64 " escalations=%" PRIu64 "\n}",
                history_.size(), restarts_decided_, healthy_commits_, escalations_);
  out += buf;
  return out;
}

}  // namespace enoki
