// The scheduling-class interface: the simulator's analog of Linux's
// `struct sched_class` (kernel/sched/sched.h). SchedCore dispatches every
// scheduling decision through this interface, in class-priority order, just
// as kernel/sched/core.c does. Native schedulers (CFS, the ghOSt kernel
// component) implement it directly; Enoki schedulers are adapted onto it by
// enoki::EnokiClassAdapter, which performs the message-passing translation
// the paper's Enoki-C does.

#ifndef SRC_SIMKERNEL_SCHED_CLASS_H_
#define SRC_SIMKERNEL_SCHED_CLASS_H_

#include "src/simkernel/event_loop.h"
#include "src/simkernel/task.h"

namespace enoki {

enum class DequeueReason {
  kBlocked,   // task went to sleep
  kDead,      // task exited
  kDeparted,  // task left this scheduling policy (setscheduler away)
};

class SchedClass {
 public:
  virtual ~SchedClass() = default;

  virtual const char* name() const = 0;

  // Called once when the class is registered, before any task operation.
  virtual void Attach(SchedCore* core) { core_ = core; }

  // Chooses the CPU a waking (or newly created, `is_new`) task should be
  // queued on.
  virtual int SelectTaskRq(Task* t, int prev_cpu, bool wake_sync, bool is_new) = 0;

  // Adds a runnable task to `cpu`'s queue. `wakeup` distinguishes wakeups
  // from new-task attach.
  virtual void EnqueueTask(int cpu, Task* t, bool wakeup) = 0;

  // Removes a task from its queue (it blocked, died, or departed). Only
  // called for queued (runnable, not running) or current tasks.
  virtual void DequeueTask(int cpu, Task* t, DequeueReason reason) = 0;

  // Picks the next task to run on `cpu`, or nullptr if this class has
  // nothing. The previously running task, if still runnable, has already
  // been handed back via TaskPreempted/TaskYielded.
  virtual Task* PickNextTask(int cpu) = 0;

  // The current task was preempted while still runnable; the class must
  // requeue it.
  virtual void TaskPreempted(int cpu, Task* t) = 0;

  // The current task called sched_yield(); the class must requeue it.
  virtual void TaskYielded(int cpu, Task* t) = 0;

  // Periodic tick while `t` runs on `cpu`. The class may call
  // SchedCore::SetNeedResched(cpu).
  virtual void TaskTick(int cpu, Task* t) = 0;

  // Should the newly woken task preempt the currently running one (both in
  // this class)? Mirrors check_preempt_wakeup().
  virtual bool WakeupPreempt(int cpu, Task* curr, Task* woken) { return false; }

  // Newidle/periodic balance opportunity on `cpu`. The class may migrate
  // queued tasks onto `cpu`; returns true if it pulled anything.
  virtual bool Balance(int cpu) { return false; }

  // When true, the core calls Balance(cpu) before every PickNextTask(cpu)
  // (the Enoki/ghOSt kernel interface invokes the balance callback on each
  // schedule operation; CFS instead balances internally on newidle).
  virtual bool WantsBalanceBeforePick() const { return false; }

  // A policy timer armed via SchedCore::ArmClassTimer fired on `cpu`.
  virtual void TimerFired(int cpu) {}

  // Horizon class of this policy's ArmClassTimer deadlines, used as the
  // event loop's placement hint. Policies arming short pulse/preemption
  // timers (the common case — every in-tree policy's timers are well under
  // EventLoop::kLaneSpanNs) keep the default; a policy arming rare far
  // periodic timers should return kFarPeriodic so they schedule straight
  // into their home wheel level. A wrong answer costs a probe or a spill,
  // never correctness.
  virtual DeadlineClass TimerDeadlineClass() const {
    return DeadlineClass::kNearHorizon;
  }

  // The core's starvation detector found `t` runnable-but-not-run for
  // `runnable_ns`, exceeding the configured bound. Called at most once per
  // runnable episode of the task. Default: ignore (native schedulers are
  // trusted); the Enoki runtime uses this to trip its watchdog.
  virtual void OnTaskStarved(Task* t, Duration runnable_ns) {}

  virtual void AffinityChanged(Task* t) {}
  virtual void PrioChanged(Task* t) {}

 protected:
  SchedCore* core_ = nullptr;
};

}  // namespace enoki

#endif  // SRC_SIMKERNEL_SCHED_CLASS_H_
