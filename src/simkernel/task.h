// Task model: the task_struct analog plus the program-driven behaviour layer.
//
// Workloads describe a task's behaviour as a TaskBody: each time the task is
// (re)dispatched with no compute left, the scheduler core asks the body for
// its next Action (compute for d ns, block on a wait queue, wake a wait
// queue, sleep, yield, or exit). This keeps workloads deterministic and lets
// the core charge precise per-mechanism costs at each transition.

#ifndef SRC_SIMKERNEL_TASK_H_
#define SRC_SIMKERNEL_TASK_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "src/base/cpumask.h"
#include "src/base/niceness.h"
#include "src/base/time.h"
#include "src/simkernel/event_loop.h"

namespace enoki {

class Task;
class SchedClass;
class SchedCore;

// A wait queue with counting-semaphore semantics: Wake with no waiter leaves
// a pending signal; Block with a pending signal consumes it without sleeping.
// This models pipes (data tokens) and futex-style waits without lost wakeups.
class WaitQueue {
 public:
  explicit WaitQueue(std::string name) : name_(std::move(name)) {}

  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  const std::string& name() const { return name_; }

  bool TryConsumeSignal() {
    if (signals_ > 0) {
      --signals_;
      return true;
    }
    return false;
  }

  void AddSignal() { ++signals_; }

  void AddWaiter(Task* t) { waiters_.push_back(t); }

  Task* PopWaiter() {
    if (waiters_.empty()) {
      return nullptr;
    }
    Task* t = waiters_.front();
    waiters_.pop_front();
    return t;
  }

  bool RemoveWaiter(Task* t) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == t) {
        waiters_.erase(it);
        return true;
      }
    }
    return false;
  }

  size_t waiter_count() const { return waiters_.size(); }
  uint64_t signal_count() const { return signals_; }

 private:
  std::string name_;
  std::deque<Task*> waiters_;
  uint64_t signals_ = 0;
};

struct Action {
  enum class Kind {
    kCompute,  // run on the CPU for `duration`
    kBlock,    // block until `wq` is signalled (consumes a pending signal)
    kWake,     // signal `wq`, waking one waiter if present; task continues
    kSleep,    // timed sleep for `duration`
    kYield,    // sched_yield()
    kExit,     // task terminates
  };

  static Action Compute(Duration d) { return {Kind::kCompute, d, nullptr, false}; }
  static Action Block(WaitQueue* wq) { return {Kind::kBlock, 0, wq, false}; }
  static Action Wake(WaitQueue* wq, bool sync = false) { return {Kind::kWake, 0, wq, sync}; }
  static Action Sleep(Duration d) { return {Kind::kSleep, d, nullptr, false}; }
  static Action Yield() { return {Kind::kYield, 0, nullptr, false}; }
  static Action Exit() { return {Kind::kExit, 0, nullptr, false}; }

  Kind kind;
  Duration duration;
  WaitQueue* wq;
  bool wake_sync;  // WF_SYNC analog: waker will block imminently
};

// Execution context handed to a TaskBody; provides time and identity without
// exposing the core's mutable state.
class SimContext {
 public:
  SimContext(SchedCore* core, Task* task) : core_(core), task_(task) {}

  Time now() const;
  Task* task() const { return task_; }
  int cpu() const;
  SchedCore* core() const { return core_; }

 private:
  SchedCore* core_;
  Task* task_;
};

class TaskBody {
 public:
  virtual ~TaskBody() = default;

  // Called whenever the task is on-CPU with no outstanding compute. The
  // returned action is performed immediately.
  virtual Action NextAction(SimContext& ctx) = 0;

  // Invoked once when the task first becomes runnable; lets bodies stamp
  // start times.
  virtual void OnStart(SimContext& ctx) {}
};

enum class TaskState {
  kCreated,   // constructed, not yet woken
  kRunnable,  // on a run queue, waiting for CPU
  kRunning,   // currently on a CPU
  kBlocked,   // waiting (wait queue or timed sleep)
  kDead,      // exited
};

class Task {
 public:
  Task(uint64_t pid, std::string name, std::unique_ptr<TaskBody> body)
      : pid_(pid), name_(std::move(name)), body_(std::move(body)) {}

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  uint64_t pid() const { return pid_; }
  const std::string& name() const { return name_; }
  TaskBody* body() const { return body_.get(); }

  TaskState state() const { return state_; }
  int cpu() const { return cpu_; }
  int nice() const { return nice_; }
  const CpuMask& affinity() const { return affinity_; }
  int policy() const { return policy_; }
  SchedClass* sched_class() const { return sched_class_; }

  Duration total_runtime() const { return total_runtime_; }
  uint64_t wake_count() const { return wake_count_; }
  uint64_t switch_in_count() const { return switch_in_count_; }
  Time last_runnable_at() const { return last_runnable_at_; }

 private:
  friend class SchedCore;

  const uint64_t pid_;
  const std::string name_;
  std::unique_ptr<TaskBody> body_;

  TaskState state_ = TaskState::kCreated;
  int cpu_ = 0;                 // current or last CPU
  int nice_ = 0;
  int policy_ = 0;              // index into the core's policy table
  SchedClass* sched_class_ = nullptr;
  CpuMask affinity_ = CpuMask::All(CpuMask::kMaxCpus);

  // Execution bookkeeping, owned by SchedCore.
  Duration remaining_compute_ = 0;
  EventId compute_event_ = kInvalidEventId;
  Time compute_started_at_ = 0;
  EventId sleep_event_ = kInvalidEventId;
  Duration total_runtime_ = 0;
  Time run_segment_start_ = 0;
  Time last_runnable_at_ = 0;
  bool wake_latency_pending_ = false;
  bool starvation_flagged_ = false;  // reported once per runnable episode
  uint64_t wake_count_ = 0;
  uint64_t switch_in_count_ = 0;
  bool started_ = false;

  // Token generation for Enoki Schedulable validation (see enoki/api.h).
  uint64_t token_generation_ = 0;

  friend class EnokiRuntime;
};

}  // namespace enoki

#endif  // SRC_SIMKERNEL_TASK_H_
