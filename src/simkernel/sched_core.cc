#include "src/simkernel/sched_core.h"

#include <algorithm>

#include "src/base/log.h"

namespace enoki {

Time SimContext::now() const { return core_->now(); }
int SimContext::cpu() const { return task_->cpu(); }

SchedCore::SchedCore(MachineSpec spec, SimCosts costs)
    : spec_(spec),
      costs_(costs),
      owned_loop_(std::make_unique<EventLoop>()),
      loop_(owned_loop_.get()),
      cpus_(static_cast<size_t>(spec.ncpus)) {
  ENOKI_CHECK(spec.ncpus > 0 && spec.ncpus <= CpuMask::kMaxCpus);
  ENOKI_CHECK(spec.nodes > 0 && spec.ncpus % spec.nodes == 0);
  ENOKI_CHECK(spec.node_of.empty() ||
              spec.node_of.size() == static_cast<size_t>(spec.ncpus));
  ENOKI_CHECK(!spec.smt_pairs || spec.ncpus % 2 == 0);
  WarmLoop();
}

SchedCore::SchedCore(MachineSpec spec, SimCosts costs, EventLoop* loop)
    : spec_(spec), costs_(costs), loop_(loop), cpus_(static_cast<size_t>(spec.ncpus)) {
  ENOKI_CHECK(loop != nullptr);
  ENOKI_CHECK(spec.ncpus > 0 && spec.ncpus <= CpuMask::kMaxCpus);
  ENOKI_CHECK(spec.nodes > 0 && spec.ncpus % spec.nodes == 0);
  ENOKI_CHECK(spec.node_of.empty() ||
              spec.node_of.size() == static_cast<size_t>(spec.ncpus));
  ENOKI_CHECK(!spec.smt_pairs || spec.ncpus % 2 == 0);
  WarmLoop();
}

void SchedCore::WarmLoop() {
  if (spec_.warm_events_per_cpu > 0) {
    // Shard-local slab warming, at construction rather than Start(): task and
    // tenant creation precede Start(), and their wake events must draw from
    // the pre-grown pool too for whole-process prof_event_slabs to stay 0.
    // The hint travels through ShardSpec, so every shard core warms its own
    // loop.
    loop_->WarmSlabs(static_cast<size_t>(spec_.ncpus) *
                     static_cast<size_t>(spec_.warm_events_per_cpu));
  }
}

SchedCore::~SchedCore() = default;

int SchedCore::RegisterClass(SchedClass* cls) {
  ENOKI_CHECK(!started_);
  cls->Attach(this);
  classes_.push_back(cls);
  return static_cast<int>(classes_.size()) - 1;
}

int SchedCore::ClassPriority(const SchedClass* cls) const {
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i] == cls) {
      return static_cast<int>(i);
    }
  }
  ENOKI_CHECK_MSG(false, "unregistered scheduling class");
  return -1;
}

void SchedCore::Start() {
  ENOKI_CHECK(!started_);
  started_ = true;
  if (!ticks_enabled_) {
    return;
  }
  for (int cpu = 0; cpu < spec_.ncpus; ++cpu) {
    // Stagger ticks across CPUs so they do not fire in lockstep. The initial
    // delay can reach ~2x tick_ns — possibly past the lane horizon — so it
    // takes no deadline promise; steady-state re-arms (TickFired) do.
    const Duration offset = costs_.tick_ns * static_cast<Duration>(cpu) /
                            static_cast<Duration>(spec_.ncpus);
    cpus_[cpu].tick_event =
        loop_->ScheduleAfter(costs_.tick_ns + offset, [this, cpu] { TickFired(cpu); });
  }
}

// Horizon class of the periodic tick's steady-state re-arm: known at
// construction from the cost model, so every tick re-arm routes without a
// probe — into the express lane for sub-horizon tick periods (the default
// 1 ms fits), straight to its home wheel level otherwise.
DeadlineClass SchedCore::TickDeadlineClass() const {
  return static_cast<Time>(costs_.tick_ns) < EventLoop::kLaneSpanNs
             ? DeadlineClass::kNearHorizon
             : DeadlineClass::kFarPeriodic;
}

bool SchedCore::RunUntilAllExit(Time deadline) {
  while (loop_->now() < deadline && live_tasks_ > 0) {
    if (!loop_->RunOne()) {
      break;
    }
  }
  return live_tasks_ == 0;
}

Task* SchedCore::CreateTask(std::string name, std::unique_ptr<TaskBody> body, int policy,
                            int nice) {
  return CreateTaskOn(std::move(name), std::move(body), policy, nice,
                      CpuMask::All(spec_.ncpus));
}

Task* SchedCore::CreateTaskOn(std::string name, std::unique_ptr<TaskBody> body, int policy,
                              int nice, const CpuMask& affinity) {
  ENOKI_CHECK(policy >= 0 && policy < static_cast<int>(classes_.size()));
  ENOKI_CHECK(nice >= kMinNice && nice <= kMaxNice);
  ENOKI_CHECK(!affinity.Intersect(CpuMask::All(spec_.ncpus)).Empty());
  auto task = std::make_unique<Task>(next_pid_++, std::move(name), std::move(body));
  Task* t = task.get();
  t->policy_ = policy;
  t->sched_class_ = classes_[policy];
  t->nice_ = nice;
  t->affinity_ = affinity.Intersect(CpuMask::All(spec_.ncpus));
  t->cpu_ = t->affinity_.First();
  tasks_.push_back(std::move(task));
  ++live_tasks_;
  WakeTaskInternal(t, /*sync=*/false, /*from_cpu=*/-1, /*is_new=*/true);
  return t;
}

Task* SchedCore::FindTask(uint64_t pid) const {
  // Pids are assigned densely from 1 and tasks are never destroyed before
  // the core, so the task vector doubles as the pid table.
  if (pid == 0 || pid > tasks_.size()) {
    return nullptr;
  }
  return tasks_[pid - 1].get();
}

void SchedCore::WakeTaskExternal(Task* t, bool sync, int from_cpu) {
  ENOKI_CHECK(t->state_ == TaskState::kBlocked);
  if (t->sleep_event_ != kInvalidEventId) {
    loop_->Cancel(t->sleep_event_);
    t->sleep_event_ = kInvalidEventId;
  }
  WakeTaskInternal(t, sync, from_cpu, /*is_new=*/false);
}

void SchedCore::WakeTaskInternal(Task* t, bool sync, int from_cpu, bool is_new) {
  ENOKI_CHECK(t->state_ == TaskState::kBlocked || t->state_ == TaskState::kCreated);
  t->state_ = TaskState::kRunnable;
  t->last_runnable_at_ = loop_->now();
  t->wake_latency_pending_ = true;
  ++t->wake_count_;

  SchedClass* cls = t->sched_class_;
  int target = cls->SelectTaskRq(t, t->cpu_, sync, is_new);
  if (!t->affinity_.Test(target)) {
    ENOKI_DEBUG("scheduler %s placed pid %llu on disallowed cpu %d; clamping", cls->name(),
               static_cast<unsigned long long>(t->pid()), target);
    target = t->affinity_.First();
  }
  t->cpu_ = target;
  cls->EnqueueTask(target, t, /*wakeup=*/!is_new);

  CpuState& c = cpus_[target];
  if (c.current == nullptr && !c.in_switch) {
    // Waking an idle CPU: pay idle-exit (and IPI when cross-CPU) latency
    // before the pick runs there.
    Duration lat = IdleExitCost(target);
    if (from_cpu >= 0 && from_cpu != target) {
      lat += costs_.ipi_ns;
    }
    if (!c.kick_pending) {
      c.kick_pending = true;
      loop_->ScheduleAfter(lat, [this, target] {
        cpus_[target].kick_pending = false;
        if (cpus_[target].current == nullptr && !cpus_[target].in_switch) {
          Schedule(target);
        }
      });
    }
    return;
  }

  // Busy CPU: wakeup-preemption check. A higher-priority class always
  // preempts; within a class the class decides (check_preempt_wakeup).
  Task* curr = c.current;
  bool preempt = false;
  if (curr != nullptr) {
    const int woken_prio = ClassPriority(cls);
    const int curr_prio = ClassPriority(curr->sched_class_);
    if (woken_prio < curr_prio) {
      preempt = true;
    } else if (woken_prio == curr_prio) {
      preempt = cls->WakeupPreempt(target, curr, t);
    }
  }
  if (preempt) {
    if (curr != nullptr && curr->sched_class_ == cls) {
      // Same-class wakeup preemption takes effect at the next scheduling
      // point (tick, action boundary), as in CFS: "it preempts the current
      // task when a system timer ticks".
      c.need_resched = true;
    } else {
      KickCpu(target, from_cpu);
    }
  }
}

void SchedCore::SetNeedResched(int cpu) { cpus_[cpu].need_resched = true; }

void SchedCore::KickCpu(int cpu, int from_cpu) {
  CpuState& c = cpus_[cpu];
  if (c.current == nullptr && !c.in_switch) {
    Duration lat = IdleExitCost(cpu);
    if (from_cpu >= 0 && from_cpu != cpu) {
      lat += costs_.ipi_ns;
    }
    if (!c.kick_pending) {
      c.kick_pending = true;
      loop_->ScheduleAfter(lat, [this, cpu] {
        cpus_[cpu].kick_pending = false;
        if (cpus_[cpu].current == nullptr && !cpus_[cpu].in_switch) {
          Schedule(cpu);
        }
      });
    }
    return;
  }
  c.need_resched = true;
  const Duration lat = (from_cpu >= 0 && from_cpu != cpu) ? costs_.ipi_ns : 0;
  const Time arrival = loop_->now() + lat;
  if (c.ipi_inflight_at == arrival) {
    // Batched wakeup delivery: a resched IPI arriving at this exact instant
    // is already in flight, and a duplicate would re-run the identical
    // preempt check (need_resched is already set) and no-op. Elide it.
    ++coalesced_ipis_;
    return;
  }
  c.ipi_inflight_at = arrival;
  loop_->ScheduleAfter(lat, [this, cpu, arrival] {
    CpuState& cs = cpus_[cpu];
    if (cs.ipi_inflight_at == arrival) {
      cs.ipi_inflight_at = kTimeMax;
    }
    if (cs.need_resched && cs.current != nullptr && !cs.in_switch) {
      cs.need_resched = false;
      PreemptCurrent(cpu);
    }
  });
}

EventId SchedCore::ArmClassTimer(int cpu, Duration delay, SchedClass* cls) {
  return loop_->ScheduleAfterHint(delay, cls->TimerDeadlineClass(), [this, cpu, cls] {
    cls->TimerFired(cpu);
    CpuState& c = cpus_[cpu];
    if (c.need_resched && c.current != nullptr && !c.in_switch) {
      c.need_resched = false;
      PreemptCurrent(cpu);
    }
  });
}

Duration SchedCore::TaskRuntime(const Task* t) const {
  Duration rt = t->total_runtime_;
  if (t->state_ == TaskState::kRunning) {
    rt += loop_->now() - t->run_segment_start_;
  }
  return rt;
}

Duration SchedCore::IdleExitCost(int cpu) const {
  const CpuState& c = cpus_[cpu];
  if (c.current != nullptr || c.in_switch) {
    return 0;
  }
  const Duration idle_for = loop_->now() - c.idle_since;
  if (idle_for >= costs_.deep_idle_threshold_ns) {
    return costs_.deep_idle_exit_ns;
  }
  if (idle_for >= costs_.medium_idle_threshold_ns) {
    return costs_.medium_idle_exit_ns;
  }
  return costs_.shallow_idle_exit_ns;
}

Task* SchedCore::PickNext(int cpu) {
  for (SchedClass* cls : classes_) {
    if (cls->WantsBalanceBeforePick()) {
      cls->Balance(cpu);
    }
    Task* t = cls->PickNextTask(cpu);
    if (t != nullptr) {
      return t;
    }
  }
  return nullptr;
}

void SchedCore::Schedule(int cpu) {
  CpuState& c = cpus_[cpu];
  ENOKI_CHECK(c.current == nullptr && !c.in_switch);
  c.pending_charge += costs_.pick_path_ns;
  Task* next = PickNext(cpu);
  // Affinity is a core-enforced invariant: a task picked for a CPU its mask
  // no longer allows (e.g. the mask changed while it was queued or running)
  // is pushed to an allowed CPU instead of dispatched here.
  while (next != nullptr && !next->affinity_.Test(cpu)) {
    const int target = next->affinity_.First();
    next->cpu_ = target;
    next->sched_class_->TaskPreempted(target, next);
    KickCpu(target, cpu);
    next = PickNext(cpu);
  }
  if (next == nullptr) {
    c.idle_since = loop_->now();
    c.pending_charge = 0;
    return;
  }
  Dispatch(cpu, next);
}

void SchedCore::Dispatch(int cpu, Task* next) {
  CpuState& c = cpus_[cpu];
  ENOKI_CHECK(next->state_ == TaskState::kRunnable);
  c.in_switch = true;
  ++context_switches_;
  const Duration lat = costs_.context_switch_ns + TakeCharge(cpu);
  loop_->ScheduleAfter(lat, [this, cpu, next] { FinishSwitch(cpu, next); });
}

void SchedCore::FinishSwitch(int cpu, Task* next) {
  CpuState& c = cpus_[cpu];
  ENOKI_CHECK(c.in_switch);
  c.in_switch = false;
  ENOKI_CHECK(next->state_ == TaskState::kRunnable);
  c.current = next;
  next->state_ = TaskState::kRunning;
  next->cpu_ = cpu;
  next->run_segment_start_ = loop_->now();
  next->starvation_flagged_ = false;  // got the CPU: new runnable episode
  ++next->switch_in_count_;
  if (next->wake_latency_pending_) {
    next->wake_latency_pending_ = false;
    const Duration lat = loop_->now() - next->last_runnable_at_;
    wake_latency_.Record(lat);
    if (wake_latency_hook_) {
      wake_latency_hook_(next, lat);
    }
  }
  if (!next->started_) {
    next->started_ = true;
    SimContext ctx(this, next);
    next->body_->OnStart(ctx);
  }
  RunCurrent(cpu);
}

void SchedCore::RunCurrent(int cpu) {
  CpuState& c = cpus_[cpu];
  while (true) {
    Task* t = c.current;
    ENOKI_CHECK(t != nullptr && t->state_ == TaskState::kRunning);
    if (c.need_resched) {
      c.need_resched = false;
      PreemptCurrent(cpu);
      return;
    }
    if (t->remaining_compute_ > 0) {
      t->compute_started_at_ = loop_->now();
      t->compute_event_ =
          loop_->ScheduleAfter(t->remaining_compute_, [this, cpu, t] { OnComputeDone(cpu, t); });
      return;
    }
    SimContext ctx(this, t);
    const Action a = t->body_->NextAction(ctx);
    switch (a.kind) {
      case Action::Kind::kCompute:
        t->remaining_compute_ = std::max<Duration>(a.duration, 1);
        break;
      case Action::Kind::kWake:
        DoWake(a.wq, a.wake_sync, cpu);
        // The wake path runs in the waker's context: charge the syscall plus
        // any scheduler-path overhead accrued during the wake.
        t->remaining_compute_ += costs_.wake_syscall_ns + TakeCharge(cpu);
        break;
      case Action::Kind::kBlock:
        if (a.wq->TryConsumeSignal()) {
          // Data already available: the "read" returns without sleeping.
          t->remaining_compute_ += costs_.block_syscall_ns;
          break;
        }
        BlockCurrent(cpu, a.wq);
        return;
      case Action::Kind::kSleep:
        SleepCurrent(cpu, a.duration);
        return;
      case Action::Kind::kYield:
        YieldCurrent(cpu);
        return;
      case Action::Kind::kExit:
        ExitCurrent(cpu);
        return;
    }
  }
}

void SchedCore::OnComputeDone(int cpu, Task* t) {
  ENOKI_CHECK(cpus_[cpu].current == t);
  t->compute_event_ = kInvalidEventId;
  t->remaining_compute_ = 0;
  RunCurrent(cpu);
}

void SchedCore::StopCompute(Task* t) {
  if (t->compute_event_ != kInvalidEventId) {
    loop_->Cancel(t->compute_event_);
    t->compute_event_ = kInvalidEventId;
    const Duration elapsed = loop_->now() - t->compute_started_at_;
    t->remaining_compute_ -= std::min(t->remaining_compute_, elapsed);
  }
}

void SchedCore::AccrueRuntime(Task* t) {
  t->total_runtime_ += loop_->now() - t->run_segment_start_;
  t->run_segment_start_ = loop_->now();
}

void SchedCore::PreemptCurrent(int cpu) {
  CpuState& c = cpus_[cpu];
  Task* t = c.current;
  ENOKI_CHECK(t != nullptr);
  StopCompute(t);
  AccrueRuntime(t);
  t->state_ = TaskState::kRunnable;
  t->sched_class_->TaskPreempted(cpu, t);
  c.current = nullptr;
  Schedule(cpu);
}

void SchedCore::BlockCurrent(int cpu, WaitQueue* wq) {
  CpuState& c = cpus_[cpu];
  Task* t = c.current;
  AccrueRuntime(t);
  t->state_ = TaskState::kBlocked;
  wq->AddWaiter(t);
  t->sched_class_->DequeueTask(cpu, t, DequeueReason::kBlocked);
  c.current = nullptr;
  c.pending_charge += costs_.block_syscall_ns;
  Schedule(cpu);
}

void SchedCore::SleepCurrent(int cpu, Duration d) {
  CpuState& c = cpus_[cpu];
  Task* t = c.current;
  AccrueRuntime(t);
  t->state_ = TaskState::kBlocked;
  t->sched_class_->DequeueTask(cpu, t, DequeueReason::kBlocked);
  t->sleep_event_ = loop_->ScheduleAfter(d, [this, t] {
    t->sleep_event_ = kInvalidEventId;
    WakeTaskInternal(t, /*sync=*/false, /*from_cpu=*/t->cpu_, /*is_new=*/false);
  });
  c.current = nullptr;
  c.pending_charge += costs_.block_syscall_ns;
  Schedule(cpu);
}

void SchedCore::YieldCurrent(int cpu) {
  CpuState& c = cpus_[cpu];
  Task* t = c.current;
  AccrueRuntime(t);
  t->state_ = TaskState::kRunnable;
  t->sched_class_->TaskYielded(cpu, t);
  c.current = nullptr;
  c.pending_charge += costs_.block_syscall_ns;
  Schedule(cpu);
}

void SchedCore::ExitCurrent(int cpu) {
  CpuState& c = cpus_[cpu];
  Task* t = c.current;
  AccrueRuntime(t);
  t->state_ = TaskState::kDead;
  t->sched_class_->DequeueTask(cpu, t, DequeueReason::kDead);
  c.current = nullptr;
  ENOKI_CHECK(live_tasks_ > 0);
  --live_tasks_;
  Schedule(cpu);
}

void SchedCore::DoWake(WaitQueue* wq, bool sync, int from_cpu) {
  Task* w = wq->PopWaiter();
  if (w == nullptr) {
    wq->AddSignal();
    return;
  }
  if (w->sleep_event_ != kInvalidEventId) {
    loop_->Cancel(w->sleep_event_);
    w->sleep_event_ = kInvalidEventId;
  }
  WakeTaskInternal(w, sync, from_cpu, /*is_new=*/false);
}

void SchedCore::CheckStarvation() {
  const Time now = loop_->now();
  for (const auto& tp : tasks_) {
    Task* t = tp.get();
    if (t->state_ != TaskState::kRunnable || t->starvation_flagged_) {
      continue;
    }
    // A runnable task's wait started either when it was last made runnable
    // or when its current on-queue stint began (after a preempt/yield the
    // run_segment_start_ of the previous segment is the later stamp).
    const Time since = std::max(t->last_runnable_at_, t->run_segment_start_);
    const Duration waited = now - since;
    if (waited > starvation_bound_) {
      t->starvation_flagged_ = true;
      t->sched_class_->OnTaskStarved(t, waited);
    }
  }
}

void SchedCore::TickFired(int cpu) {
  CpuState& c = cpus_[cpu];
  if (cpu == 0 && starvation_bound_ > 0) {
    CheckStarvation();
  }
  Task* t = c.current;
  if (t != nullptr) {
    t->sched_class_->TaskTick(cpu, t);
    if (c.need_resched && c.current != nullptr && !c.in_switch) {
      c.need_resched = false;
      PreemptCurrent(cpu);
    }
  } else if (!c.in_switch && !c.kick_pending && ++c.idle_ticks % kIdleBalanceTicks == 0) {
    // nohz idle balancing: an idle CPU periodically re-enters the scheduler
    // so classes get a balance/steal opportunity even with no local events.
    Schedule(cpu);
  }
  c.tick_event = loop_->ScheduleAfterHint(costs_.tick_ns, TickDeadlineClass(),
                                          [this, cpu] { TickFired(cpu); });
}

void SchedCore::SetTaskPolicy(Task* t, int policy) {
  ENOKI_CHECK(policy >= 0 && policy < static_cast<int>(classes_.size()));
  SchedClass* new_class = classes_[policy];
  if (new_class == t->sched_class_) {
    t->policy_ = policy;
    return;
  }
  switch (t->state_) {
    case TaskState::kRunnable: {
      // Leave the old class's queue, join the new one.
      t->sched_class_->DequeueTask(t->cpu_, t, DequeueReason::kDeparted);
      t->sched_class_ = new_class;
      t->policy_ = policy;
      int target = new_class->SelectTaskRq(t, t->cpu_, /*wake_sync=*/false, /*is_new=*/true);
      if (!t->affinity_.Test(target)) {
        target = t->affinity_.First();
      }
      t->cpu_ = target;
      new_class->EnqueueTask(target, t, /*wakeup=*/false);
      KickCpu(target);
      break;
    }
    case TaskState::kRunning: {
      // Preempt first so the old class hands the task back, then reattach.
      const int cpu = t->cpu_;
      StopCompute(t);
      AccrueRuntime(t);
      t->state_ = TaskState::kRunnable;
      t->sched_class_->TaskPreempted(cpu, t);
      cpus_[cpu].current = nullptr;
      SetTaskPolicy(t, policy);  // now runnable: recurse into the case above
      Schedule(cpu);
      return;
    }
    case TaskState::kBlocked:
    case TaskState::kCreated:
      // Not attached to any run queue: just retarget the class.
      t->sched_class_ = new_class;
      t->policy_ = policy;
      break;
    case TaskState::kDead:
      ENOKI_CHECK_MSG(false, "cannot change policy of a dead task");
      break;
  }
}

void SchedCore::MoveQueuedTask(Task* t, int to_cpu) {
  ENOKI_CHECK(t->state_ == TaskState::kRunnable);
  ENOKI_CHECK(to_cpu >= 0 && to_cpu < spec_.ncpus);
  ENOKI_CHECK(t->affinity_.Test(to_cpu));
  t->cpu_ = to_cpu;
}

void SchedCore::SetTaskNice(Task* t, int nice) {
  ENOKI_CHECK(nice >= kMinNice && nice <= kMaxNice);
  t->nice_ = nice;
  t->sched_class_->PrioChanged(t);
}

namespace {

// FNV-1a, 64-bit. Integer-only so the digest is bit-exact across platforms.
inline uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

uint64_t SchedCore::Fingerprint() const {
  uint64_t h = 14695981039346656037ull;
  h = FnvMix(h, loop_->now());
  h = FnvMix(h, loop_->events_executed());
  h = FnvMix(h, context_switches_);
  h = FnvMix(h, coalesced_ipis_);
  h = FnvMix(h, live_tasks_);
  h = FnvMix(h, pick_errors_);
  for (const CpuState& c : cpus_) {
    h = FnvMix(h, c.current != nullptr ? c.current->pid() : 0);
    h = FnvMix(h, (c.in_switch ? 1u : 0u) | (c.need_resched ? 2u : 0u) |
                      (c.kick_pending ? 4u : 0u));
    h = FnvMix(h, c.idle_ticks);
  }
  for (const auto& tp : tasks_) {
    const Task* t = tp.get();
    h = FnvMix(h, static_cast<uint64_t>(t->state()));
    h = FnvMix(h, static_cast<uint64_t>(t->cpu()));
    h = FnvMix(h, t->total_runtime());
    h = FnvMix(h, t->wake_count());
    h = FnvMix(h, t->switch_in_count());
  }
  h = FnvMix(h, wake_latency_.count());
  h = FnvMix(h, wake_latency_.min());
  h = FnvMix(h, wake_latency_.max());
  h = FnvMix(h, wake_latency_.Percentile(50.0));
  h = FnvMix(h, wake_latency_.Percentile(99.0));
  return h;
}

void SchedCore::SetTaskAffinity(Task* t, const CpuMask& mask) {
  const CpuMask clamped = mask.Intersect(CpuMask::All(spec_.ncpus));
  ENOKI_CHECK(!clamped.Empty());
  t->affinity_ = clamped;
  if (t->state_ == TaskState::kRunning && !clamped.Test(t->cpu_)) {
    // Running on a now-disallowed CPU: force it off (migration_cpu_stop).
    const int cpu = t->cpu_;
    if (cpus_[cpu].current == t && !cpus_[cpu].in_switch) {
      PreemptCurrent(cpu);
    } else {
      SetNeedResched(cpu);
    }
  }
  t->sched_class_->AffinityChanged(t);
}

}  // namespace enoki
