// Deterministic discrete-event loop.
//
// All simulated activity is driven by timestamped events. Ties are broken by
// insertion sequence number so that simulation runs are reproducible
// regardless of host platform or container ordering.

#ifndef SRC_SIMKERNEL_EVENT_LOOP_H_
#define SRC_SIMKERNEL_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/base/check.h"
#include "src/base/time.h"

namespace enoki {

using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Time now() const { return now_; }

  // Schedules `cb` to run at absolute time `at` (>= now). Returns an id that
  // can be passed to Cancel().
  EventId ScheduleAt(Time at, Callback cb) {
    ENOKI_CHECK(at >= now_);
    const EventId id = ++next_seq_;
    queue_.push(Event{at, id, std::move(cb)});
    ++live_events_;
    return id;
  }

  EventId ScheduleAfter(Duration delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  // Cancels a pending event. Cancelling an already-fired or already-cancelled
  // event is a checked error: callers own their event ids.
  void Cancel(EventId id) {
    ENOKI_CHECK(id != kInvalidEventId);
    auto inserted = cancelled_.insert(id).second;
    ENOKI_CHECK_MSG(inserted, "event cancelled twice");
    ENOKI_CHECK(live_events_ > 0);
    --live_events_;
  }

  bool HasWork() const { return live_events_ > 0; }

  // Runs the earliest pending event. Returns false when the queue is empty.
  bool RunOne() {
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      auto it = cancelled_.find(ev.seq);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      ENOKI_CHECK(ev.at >= now_);
      now_ = ev.at;
      --live_events_;
      ++executed_;
      ev.cb();
      return true;
    }
    return false;
  }

  // Runs events until simulated time reaches `deadline` (events at exactly
  // `deadline` are executed) or the queue drains.
  void RunUntil(Time deadline) {
    while (!queue_.empty()) {
      if (PeekTime() > deadline) {
        now_ = deadline;
        return;
      }
      RunOne();
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
  }

  void RunUntilIdle() {
    while (RunOne()) {
    }
  }

  uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    Time at;
    EventId seq;
    Callback cb;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  Time PeekTime() {
    // Skip over cancelled events at the head so RunUntil sees the true next
    // event time.
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      auto it = cancelled_.find(top.seq);
      if (it == cancelled_.end()) {
        return top.at;
      }
      cancelled_.erase(it);
      queue_.pop();
    }
    return kTimeMax;
  }

  Time now_ = 0;
  EventId next_seq_ = 0;
  uint64_t live_events_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace enoki

#endif  // SRC_SIMKERNEL_EVENT_LOOP_H_
