// Deterministic discrete-event loop over a hierarchical timing wheel.
//
// All simulated activity is driven by timestamped events. Ties are broken by
// insertion sequence number so that simulation runs are reproducible
// regardless of host platform or container ordering.
//
// The queue is the structure from Varghese & Lauck's "Hashed and Hierarchical
// Timing Wheels" (SOSP '87) — the same shape as Linux's timer subsystem —
// rather than a binary heap, because the simulator's workload is exactly the
// kernel-timer workload: dense near-future ticks and hrtimers, frequently
// cancelled (every compute segment and sleep arms a timer that a preemption
// or wake may cancel). Design:
//
//  - a near-horizon *express lane* in front of the wheel: a power-of-two ring
//    of 16384 slots, each one level-0 rotation (64 ns) wide, covering the
//    next 2^20 ns. Profiling (prof_wheel_cascades was the top counter row on
//    every config) showed the cascade loop dominated by short-deadline
//    events — periodic ticks (1 ms), preemption timers, wakeup/IPI latencies,
//    service completions — all of which fit under ~1 ms. Those events now
//    schedule straight into their lane slot and never touch the wheel: no
//    insert-level computation, no cascades, O(1) schedule and cancel
//    preserved. Events past the horizon spill lazily into the wheel
//    (prof_wheel_lane_spills) and re-enter the lane when their bucket drains.
//  - kLevels levels of 64 buckets each; level L has 64^L-ns granularity, so
//    the wheel spans 64^kLevels ns (~3.2 days of simulated time). Schedule
//    and cancel are O(1); each event cascades down at most kLevels-1 times
//    before it fires, so execution is amortized O(1) per event.
//  - *bulk cascade*: when a drained bucket's whole range fits inside the lane
//    horizon (the common case — any bucket being entered near the executed
//    clock), the bucket is spliced into the lane in one pass
//    (prof_wheel_bulk_cascades) instead of re-inserted event-by-event through
//    intermediate levels. A spilled event therefore pays at most one hop
//    (home level -> lane) rather than a kLevels-deep cascade chain.
//  - deadline-class hints (DeadlineClass): callers that know an event's
//    horizon class — SchedCore's periodic tick re-arm, policy timers via
//    SchedClass::TimerDeadlineClass() — route placement directly (lane for
//    near-horizon classes, home wheel level for far-periodic ones) instead of
//    probing. Hints are promises about the common case, never correctness:
//    a broken promise falls back to the probing path.
//  - events beyond the wheel span wait in an overflow min-heap and are pulled
//    into the wheel when their time comes within span.
//  - the wheel clock (`wheel_now_`) may run ahead of executed time (`now_`)
//    while locating the next event; the rare event scheduled behind the wheel
//    clock (legal: anything >= now_) goes to a small "behind" min-heap that
//    is merged by (time, seq) at staging, preserving exact ordering.
//  - Event records are intrusive, slab-pooled, and never move; callbacks live
//    in an inline small-buffer InlineFunction, so the steady-state hot path
//    performs no heap allocation per event. Cancel unlinks the event from its
//    bucket in O(1) and destroys the callback (and anything it captured)
//    eagerly — a cancelled closure does not linger until its timestamp.
//  - EventIds encode (slot, generation), so stale ids (double cancel, cancel
//    after fire) are detected and rejected, same contract as before.
//
// Observable ordering is bit-for-bit identical to the previous binary-heap
// implementation: strictly nondecreasing time, insertion order within a
// timestamp (verified by the differential fuzz test in
// tests/event_loop_test.cc).

#ifndef SRC_SIMKERNEL_EVENT_LOOP_H_
#define SRC_SIMKERNEL_EVENT_LOOP_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/check.h"
#include "src/base/inline_function.h"
#include "src/base/profile.h"
#include "src/base/ring_buffer.h"
#include "src/base/time.h"

namespace enoki {

using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

// Horizon class a scheduling site may promise about its deadline. Hints are
// routing advice, never correctness: a broken promise (a "near" event past
// the lane horizon, a "far" timer inside it) just takes the other placement
// path with identical observable ordering.
enum class DeadlineClass : uint8_t {
  kAuto,         // unknown: probe the express lane, spill to the wheel
  kNearHorizon,  // promise: fires within EventLoop::kLaneSpanNs of now
  kFarPeriodic,  // promise: periodic/far timer; skip the lane probe and
                 // schedule straight into its home wheel level
};

class EventLoop {
 public:
  // Express-lane horizon: events within this many ns of now() schedule into
  // the lane (O(1), cascade-free). Sized so the cost-model's short deadlines
  // — 1 ms periodic ticks, wake/IPI/context latencies, service completions —
  // and the bulk of open-loop arrival gaps all fit (profiled: these dominate
  // prof_wheel_cascades). Public so callers (SchedCore tick re-arm) can pick
  // DeadlineClass hints against the real horizon instead of a magic number.
  static constexpr Time kLaneSpanNs = Time{1} << 20;  // ~1.05 simulated ms

  EventLoop() : lane_(kLaneSlots, nullptr), lane_words_(kLaneWords, 0) {}
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Time now() const { return now_; }

  // Schedules `cb` to run at absolute time `at` (>= now). Returns an id that
  // can be passed to Cancel().
  template <typename F>
  EventId ScheduleAt(Time at, F&& cb) {
    return ScheduleAtHint(at, DeadlineClass::kAuto, std::forward<F>(cb));
  }

  template <typename F>
  EventId ScheduleAfter(Duration delay, F&& cb) {
    return ScheduleAtHint(now_ + delay, DeadlineClass::kAuto, std::forward<F>(cb));
  }

  // Hinted variants: identical semantics, placement routed by `hint`.
  template <typename F>
  EventId ScheduleAtHint(Time at, DeadlineClass hint, F&& cb) {
    ENOKI_CHECK(at >= now_);
    Event* ev = AllocEvent();
    ev->at = at;
    ev->seq = ++next_seq_;
    ev->cancelled = false;
    ev->cb.Set(std::forward<F>(cb));
    ++live_events_;
    Place(ev, hint);
    return MakeId(ev);
  }

  template <typename F>
  EventId ScheduleAfterHint(Duration delay, DeadlineClass hint, F&& cb) {
    return ScheduleAtHint(now_ + delay, hint, std::forward<F>(cb));
  }

  // Cancels a pending event in O(1) and destroys its callback immediately —
  // captured state (shared_ptrs, task references) is released at cancel time,
  // not when the cancelled timestamp is reached. Cancelling an already-fired
  // or already-cancelled event is a checked error: callers own their ids.
  void Cancel(EventId id) {
    ENOKI_CHECK(id != kInvalidEventId);
    Event* ev = LookupLive(id);
    ENOKI_CHECK_MSG(ev != nullptr, "event cancelled twice or already fired");
    ENOKI_CHECK(live_events_ > 0);
    --live_events_;
    ev->cb.Reset();  // eager: the closure dies now
    if (ev->where == Where::kLane) {
      // Removing the (possibly sole) earliest lane event moves the lane
      // minimum; the wheel cache is untouched by lane membership.
      if (lane_peek_valid_ && ev->at <= lane_peek_cache_) {
        lane_peek_valid_ = false;
      }
      UnlinkFromLane(ev);
      FreeEvent(ev);
      return;
    }
    // Removing the (possibly sole) earliest event moves the wheel minimum.
    if (wheel_peek_valid_ && ev->at <= wheel_peek_cache_) {
      wheel_peek_valid_ = false;
    }
    if (ev->where == Where::kBucket) {
      UnlinkFromBucket(ev);
      FreeEvent(ev);
    } else {
      // Heap-resident or staged events cannot be unlinked from the middle of
      // their container; leave a callback-free tombstone to be skipped.
      ev->cancelled = true;
    }
  }

  bool HasWork() const { return live_events_ > 0; }
  uint64_t live_events() const { return live_events_; }

  // Time of the earliest pending event, or kTimeMax when idle. Skips over
  // cancelled tombstones (freeing them) so RunUntil sees the true next time.
  Time PeekTime() {
    while (due_pos_ < due_.size() && due_[due_pos_]->cancelled) {
      FreeEvent(due_[due_pos_++]);
    }
    if (due_pos_ < due_.size()) {
      return due_[due_pos_]->at;
    }
    PurgeHeapTop(&behind_);
    // WheelPeek first: entering a bucket's range may splice it into the
    // lane, so the lane minimum is only meaningful after the wheel scan.
    const Time wheel_t = WheelPeek();
    const Time lane_t = LanePeek();
    const Time behind_t = behind_.empty() ? kTimeMax : behind_.front()->at;
    return std::min({wheel_t, lane_t, behind_t});
  }

  // Runs the earliest pending event. Returns false when the queue is empty.
  bool RunOne() {
    for (;;) {
      if (due_pos_ >= due_.size()) {
        due_.clear();
        due_pos_ = 0;
        if (!StageNextBatch()) {
          return false;
        }
      }
      Event* ev = due_[due_pos_++];
      if (ev->cancelled) {
        FreeEvent(ev);
        continue;
      }
      ENOKI_CHECK(ev->at >= now_);
      now_ = ev->at;
      ENOKI_CHECK(live_events_ > 0);
      --live_events_;
      ++executed_;
      ev->where = Where::kExecuting;
      ev->cb();  // may schedule or cancel other events
      ev->cb.Reset();
      FreeEvent(ev);
      return true;
    }
  }

  // Runs events until simulated time reaches `deadline` (events at exactly
  // `deadline` are executed) or the queue drains.
  void RunUntil(Time deadline) {
    for (;;) {
      const Time t = PeekTime();
      if (t == kTimeMax) {
        break;
      }
      if (t > deadline) {
        now_ = deadline;
        return;
      }
      RunOne();
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
  }

  void RunUntilIdle() {
    while (RunOne()) {
    }
  }

  uint64_t events_executed() const { return executed_; }

  // Cold-path frequency counters (cascades, overflow pulls, behind-clock
  // inserts, demand slab growth). Pure functions of the simulation: identical
  // across hosts and shard-thread counts, so they are CI-gateable.
  const WheelProfile& wheel_profile() const { return profile_; }

  // Grows the slab pool until at least `nevents` events can be allocated
  // without further growth. Called once at Start() (sized from a workload
  // hint) so steady state never pays a mid-run slab allocation; warming is
  // deliberately not counted in wheel_profile().slab_allocs — that counter
  // names *demand* growth, which warming exists to eliminate.
  void WarmSlabs(size_t nevents) {
    while (free_slots_.size() < nevents) {
      GrowSlab();
    }
  }

 private:
  // 8 levels x 64 buckets: level L buckets are 64^L ns wide, total span
  // 64^8 ns = 2^48 ns (~3.26 simulated days). Far enough that the overflow
  // heap is effectively cold storage.
  static constexpr int kLevelBits = 6;
  static constexpr int kBucketsPerLevel = 1 << kLevelBits;  // 64
  static constexpr int kLevels = 8;
  static constexpr Time kWheelSpan = Time{1} << (kLevelBits * kLevels);
  static constexpr uint32_t kSlabBits = 8;
  static constexpr uint32_t kSlabSize = 1u << kSlabBits;  // events per slab

  // Express lane: a ring of slots one level-0 rotation (64 ns) wide, so a
  // slot never splits a level-0 bucket, covering exactly kLaneSpanNs. The
  // lane window is anchored to the *slot-aligned* executed clock — every
  // lane event satisfies LaneBase() <= at < LaneBase() + kLaneSpanNs — so a
  // slot index maps to exactly one 64-ns range within the window and the
  // circular scan from LaneSlotOf(now_) visits slots in time order. The
  // window only moves forward and all pending events are >= now_, so the
  // invariant survives every clock advance without relocation.
  static constexpr int kLaneSlotBits = kLevelBits;  // 64 ns per slot
  static constexpr uint32_t kLaneSlots =
      static_cast<uint32_t>(Pow2Capacity<size_t{1} << 14, EventLoop>::value);
  static constexpr uint32_t kLaneWords = kLaneSlots / 64;  // occupancy bitmap
  static_assert(Time{kLaneSlots} << kLaneSlotBits == kLaneSpanNs,
                "lane geometry must cover exactly the advertised horizon");

  enum class Where : uint8_t {
    kFree,
    kLane,          // intrusive doubly-linked list in an express-lane slot
    kBucket,        // intrusive doubly-linked list in a wheel bucket
    kBehindHeap,    // scheduled behind the wheel clock
    kOverflowHeap,  // beyond the wheel span
    kStaged,        // in due_, about to execute
    kExecuting,
  };

  struct Event {
    Time at = 0;
    uint64_t seq = 0;
    Event* prev = nullptr;
    Event* next = nullptr;
    uint32_t slot = 0;
    uint32_t gen = 0;
    Where where = Where::kFree;
    bool cancelled = false;
    uint8_t level = 0;
    uint8_t bucket = 0;
    InlineFunction<64> cb;
  };

  static EventId MakeId(const Event* ev) {
    return (static_cast<EventId>(ev->slot) << 32) | ev->gen;
  }

  // ---- Slab pool ----

  void GrowSlab() {
    const uint32_t base = static_cast<uint32_t>(slabs_.size()) << kSlabBits;
    slabs_.push_back(std::make_unique<Event[]>(kSlabSize));
    Event* slab = slabs_.back().get();
    free_slots_.reserve(free_slots_.size() + kSlabSize);
    // Reversed so low slot numbers are handed out first (LIFO free list).
    for (uint32_t i = kSlabSize; i-- > 0;) {
      slab[i].slot = base + i;
      free_slots_.push_back(base + i);
    }
  }

  Event* AllocEvent() {
    if (free_slots_.empty()) {
      ++profile_.slab_allocs;
      ProfCount(GlobalCounters::kEventSlabs);
      GrowSlab();
    }
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    Event* ev = SlotPtr(slot);
    ++ev->gen;  // invalidates every id previously minted for this slot
    ENOKI_CHECK(ev->where == Where::kFree);
    return ev;
  }

  void FreeEvent(Event* ev) {
    ev->where = Where::kFree;
    ev->prev = ev->next = nullptr;
    free_slots_.push_back(ev->slot);
  }

  Event* SlotPtr(uint32_t slot) {
    return &slabs_[slot >> kSlabBits][slot & (kSlabSize - 1)];
  }

  // Resolves an id to its live (pending, uncancelled) event, or nullptr.
  Event* LookupLive(EventId id) {
    const uint32_t slot = static_cast<uint32_t>(id >> 32);
    const uint32_t gen = static_cast<uint32_t>(id);
    if (slot >= (static_cast<uint32_t>(slabs_.size()) << kSlabBits)) {
      return nullptr;
    }
    Event* ev = SlotPtr(slot);
    if (ev->gen != gen || ev->cancelled || ev->where == Where::kFree ||
        ev->where == Where::kExecuting) {
      return nullptr;
    }
    return ev;
  }

  // Routes a fresh event into the lane, the behind-heap, or the wheel.
  void Place(Event* ev, DeadlineClass hint) {
    if (hint != DeadlineClass::kFarPeriodic) {
      if (LaneEligible(ev->at)) {
        ++profile_.lane_hits;
        LaneInsert(ev);
        return;
      }
      ++profile_.lane_spills;
    }
    if (ev->at < wheel_now_) {
      ev->where = Where::kBehindHeap;
      ++profile_.behind_inserts;
      HeapPush(&behind_, ev);
      return;
    }
    // The cached minimum came from a scan that cascaded every bucket whose
    // range starts at or before it. An insert into such a bucket must
    // force a rescan even when the event itself is later than the cached
    // time — otherwise a cache-hit staging advances the wheel clock into
    // the bucket's range with the event still parked at a high level,
    // where the rotation labeling no longer describes it. Compare at
    // bucket granularity: invalidate when the event's bucket range begins
    // at or before the cached minimum.
    if (wheel_peek_valid_) {
      const int level = LevelFor(ev->at - wheel_now_);
      const int shift = kLevelBits * level;
      if (level >= kLevels
              ? ev->at <= wheel_peek_cache_
              : (ev->at >> shift) <= (wheel_peek_cache_ >> shift)) {
        wheel_peek_valid_ = false;
      }
    }
    InsertWheel(ev);
  }

  // ---- Express lane ----

  // Start of the lane window: the executed clock rounded down to a slot
  // boundary. Anchoring to the slot boundary (not now_ itself) keeps the
  // window exactly kLaneSlots slot-ranges wide, so no two in-window times
  // share a slot index.
  Time LaneBase() const { return (now_ >> kLaneSlotBits) << kLaneSlotBits; }

  bool LaneEligible(Time at) const { return at - LaneBase() < kLaneSpanNs; }

  static uint32_t LaneSlotOf(Time at) {
    return static_cast<uint32_t>(at >> kLaneSlotBits) & (kLaneSlots - 1);
  }

  void LaneInsert(Event* ev) {
    const uint32_t slot = LaneSlotOf(ev->at);
    ev->where = Where::kLane;
    ev->prev = nullptr;
    ev->next = lane_[slot];
    if (ev->next != nullptr) {
      ev->next->prev = ev;
    }
    lane_[slot] = ev;
    lane_words_[slot >> 6] |= uint64_t{1} << (slot & 63);
    ++lane_live_;
    // An insert can only lower the minimum, so the cache stays valid.
    if (lane_peek_valid_ && ev->at < lane_peek_cache_) {
      lane_peek_cache_ = ev->at;
    }
  }

  void UnlinkFromLane(Event* ev) {
    const uint32_t slot = LaneSlotOf(ev->at);
    if (ev->prev != nullptr) {
      ev->prev->next = ev->next;
    } else {
      lane_[slot] = ev->next;
      if (ev->next == nullptr) {
        lane_words_[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
      }
    }
    if (ev->next != nullptr) {
      ev->next->prev = ev->prev;
    }
    ev->prev = ev->next = nullptr;
    ENOKI_CHECK(lane_live_ > 0);
    --lane_live_;
  }

  // First occupied slot in circular time order from LaneSlotOf(now_): the
  // first word is masked to bits at or after now_'s slot, then the scan
  // walks the bitmap circularly and finally revisits the start word
  // unmasked to pick up the wrapped tail of the window.
  int FindFirstLaneSlot() const {
    const uint32_t s0 = LaneSlotOf(now_);
    const uint32_t w0 = s0 >> 6;
    uint64_t word = lane_words_[w0] & (~uint64_t{0} << (s0 & 63));
    for (uint32_t i = 0;; ++i) {
      if (word != 0) {
        const uint32_t w = (w0 + i) & (kLaneWords - 1);
        return static_cast<int>((w << 6) | static_cast<uint32_t>(std::countr_zero(word)));
      }
      if (i == kLaneWords) {
        return -1;
      }
      word = lane_words_[(w0 + i + 1) & (kLaneWords - 1)];
    }
  }

  // Earliest lane event time, or kTimeMax when the lane is empty. Cached for
  // the same reason as WheelPeek; a slot is 64 ns wide, so the min within
  // the first occupied slot needs one short list scan (lane events are
  // unlinked on cancel, never tombstoned).
  Time LanePeek() {
    if (lane_peek_valid_) {
      return lane_peek_cache_;
    }
    if (lane_live_ == 0) {
      lane_peek_cache_ = kTimeMax;
      lane_peek_valid_ = true;
      return kTimeMax;
    }
    const int slot = FindFirstLaneSlot();
    ENOKI_CHECK(slot >= 0);
    Time best = kTimeMax;
    for (const Event* ev = lane_[slot]; ev != nullptr; ev = ev->next) {
      best = std::min(best, ev->at);
    }
    lane_peek_cache_ = best;
    lane_peek_valid_ = true;
    return best;
  }

  // Moves every lane event at exactly `t` into due_.
  void StageLane(Time t) {
    Event* ev = lane_[LaneSlotOf(t)];
    while (ev != nullptr) {
      Event* next = ev->next;
      if (ev->at == t) {
        UnlinkFromLane(ev);
        ev->where = Where::kStaged;
        due_.push_back(ev);
      }
      ev = next;
    }
  }

  // ---- Wheel ----

  // Level for an event `delta` ns ahead of the wheel clock: the unique L with
  // delta in [64^L, 64^(L+1)), i.e. floor(log64(delta)).
  static int LevelFor(Time delta) {
    return delta == 0 ? 0 : (std::bit_width(delta) - 1) / kLevelBits;
  }

  void InsertWheel(Event* ev) {
    const Time delta = ev->at - wheel_now_;
    const int level = LevelFor(delta);
    if (level >= kLevels) {
      ev->where = Where::kOverflowHeap;
      HeapPush(&overflow_, ev);
      return;
    }
    const int idx =
        static_cast<int>((ev->at >> (kLevelBits * level)) & (kBucketsPerLevel - 1));
    ev->where = Where::kBucket;
    ev->level = static_cast<uint8_t>(level);
    ev->bucket = static_cast<uint8_t>(idx);
    ev->prev = nullptr;
    ev->next = buckets_[level][idx];
    if (ev->next != nullptr) {
      ev->next->prev = ev;
    }
    buckets_[level][idx] = ev;
    occupied_[level] |= uint64_t{1} << idx;
  }

  void UnlinkFromBucket(Event* ev) {
    if (ev->prev != nullptr) {
      ev->prev->next = ev->next;
    } else {
      buckets_[ev->level][ev->bucket] = ev->next;
      if (ev->next == nullptr) {
        occupied_[ev->level] &= ~(uint64_t{1} << ev->bucket);
      }
    }
    if (ev->next != nullptr) {
      ev->next->prev = ev->prev;
    }
    ev->prev = ev->next = nullptr;
  }

  // Detaches a whole bucket, returning its head.
  Event* TakeBucket(int level, int idx) {
    Event* head = buckets_[level][idx];
    buckets_[level][idx] = nullptr;
    occupied_[level] &= ~(uint64_t{1} << idx);
    return head;
  }

  bool WheelEmpty() const {
    for (int l = 0; l < kLevels; ++l) {
      if (occupied_[l] != 0) {
        return false;
      }
    }
    return true;
  }

  // Advances the wheel clock to the earliest pending wheel event, cascading
  // higher-level buckets down as their ranges are entered, and returns that
  // event's exact time (kTimeMax when the wheel and overflow are empty).
  // After a non-kTimeMax return, the level-0 bucket for the returned time
  // holds every wheel event at that time.
  //
  // The result is cached: peeking is the per-event hot path (RunOne and
  // RunUntil both peek), and between mutations the cascaded wheel state
  // cannot change, so the level scan would only rediscover the same bucket.
  // The cache is dropped on any mutation that can move the minimum: an
  // insert below it, a cancel at or below it, or staging consuming the
  // minimum's bucket.
  Time WheelPeek() {
    if (wheel_peek_valid_) {
      return wheel_peek_cache_;
    }
    for (;;) {
      PurgeHeapTop(&overflow_);
      if (WheelEmpty()) {
        if (overflow_.empty()) {
          wheel_peek_cache_ = kTimeMax;
          wheel_peek_valid_ = true;
          return kTimeMax;
        }
        // Nothing earlier anywhere: jump the clock to the overflow head so
        // the pull below lands it in the wheel.
        wheel_now_ = overflow_.front()->at;
      }
      while (!overflow_.empty() && overflow_.front()->at - wheel_now_ < kWheelSpan) {
        Event* ev = HeapPop(&overflow_);
        if (ev->cancelled) {
          FreeEvent(ev);
          continue;
        }
        ++profile_.overflow_pulls;
        InsertWheel(ev);
      }

      // Earliest occupied bucket across levels; on a tied start time prefer
      // the highest level so cascades happen before execution.
      Time best_start = kTimeMax;
      int best_level = -1;
      int best_idx = -1;
      for (int l = 0; l < kLevels; ++l) {
        if (occupied_[l] == 0) {
          continue;
        }
        const int shift = kLevelBits * l;
        const int cur = static_cast<int>((wheel_now_ >> shift) & (kBucketsPerLevel - 1));
        // Rotation labeling. Buckets at index > cur hold this rotation and
        // ones at index < cur hold the next; index cur itself depends on
        // where the clock sits inside the bucket's range. If wheel_now_ is
        // exactly at the range start (aligned to this level's bucket width),
        // the bucket was just entered — e.g. via a higher-level cascade to a
        // coinciding range start — and has not been cascaded yet, so its
        // events are this rotation (only inserts from a strictly-later clock
        // can be next-rotation). Once the clock is mid-bucket the bucket has
        // been cascaded empty, and anything in it now wrapped around.
        const bool aligned = (wheel_now_ & ((Time{1} << shift) - 1)) == 0;
        const uint64_t cur_rotation =
            aligned ? occupied_[l] & (~uint64_t{0} << cur)
                    : (cur == kBucketsPerLevel - 1
                           ? 0
                           : occupied_[l] & (~uint64_t{0} << (cur + 1)));
        const Time rotation_base = (wheel_now_ >> (shift + kLevelBits)) << (shift + kLevelBits);
        int idx;
        Time start;
        if (cur_rotation != 0) {
          idx = std::countr_zero(cur_rotation);
          start = rotation_base + (static_cast<Time>(idx) << shift);
        } else {
          idx = std::countr_zero(occupied_[l]);
          start = rotation_base + (Time{1} << (shift + kLevelBits)) +
                  (static_cast<Time>(idx) << shift);
        }
        if (start <= best_start) {  // <=: later (higher) level wins ties
          best_start = start;
          best_level = l;
          best_idx = idx;
        }
      }
      if (best_level < 0) {
        continue;  // wheel drained by tombstone purge; retry via overflow
      }
      // Never advance the clock past a parked overflow event. The best
      // wheel bucket can start up to two spans ahead (a next-rotation
      // top-level bucket), while overflow holds anything ≥ one span ahead
      // of its insert-time clock — which may be earlier than best_start by
      // now. Advance only to the overflow head so the pull above brings it
      // into the wheel, then rescan.
      if (!overflow_.empty() && overflow_.front()->at < best_start) {
        wheel_now_ = overflow_.front()->at;
        continue;
      }
      ENOKI_CHECK(best_start >= wheel_now_);
      if (best_level == 0) {
        // Exact: level-0 buckets are 1 ns wide.
        wheel_peek_cache_ = best_start;
        wheel_peek_valid_ = true;
        return best_start;
      }
      // Enter the bucket's range and redistribute it. Common case (bulk
      // cascade): the bucket's whole range fits inside the lane window —
      // every event in it is >= now_ and < the lane horizon — so the bucket
      // is spliced into the lane in one pass and pays no further cascades.
      // Otherwise fall back to per-event redistribution, still routing each
      // lane-eligible event out of the wheel.
      wheel_now_ = best_start;
      Event* ev = TakeBucket(best_level, best_idx);
      const Time width = Time{1} << (kLevelBits * best_level);
      if (best_start + width <= LaneBase() + kLaneSpanNs) {
        ++profile_.bulk_cascades;
        while (ev != nullptr) {
          Event* next = ev->next;
          LaneInsert(ev);
          ev = next;
        }
      } else {
        ++profile_.cascades;
        while (ev != nullptr) {
          Event* next = ev->next;
          if (LaneEligible(ev->at)) {
            LaneInsert(ev);
          } else {
            InsertWheel(ev);
          }
          ev = next;
        }
      }
    }
  }

  // Stages every event at the globally earliest pending time into due_,
  // sorted by insertion seq. Returns false when no events are pending.
  bool StageNextBatch() {
    PurgeHeapTop(&behind_);
    // WheelPeek before LanePeek: bulk cascades move events into the lane.
    const Time wheel_t = WheelPeek();
    const Time lane_t = LanePeek();
    const Time behind_t = behind_.empty() ? kTimeMax : behind_.front()->at;
    const Time t = std::min({wheel_t, lane_t, behind_t});
    if (t == kTimeMax) {
      return false;
    }
    if (wheel_t == t) {
      wheel_now_ = t;  // safe: t is the minimum pending time
      wheel_peek_valid_ = false;  // consuming the minimum's bucket
      const int idx = static_cast<int>(t & (kBucketsPerLevel - 1));
      for (Event* ev = TakeBucket(0, idx); ev != nullptr;) {
        Event* next = ev->next;
        ev->where = Where::kStaged;
        ev->prev = ev->next = nullptr;
        due_.push_back(ev);
        ev = next;
      }
    }
    if (lane_t == t) {
      lane_peek_valid_ = false;  // consuming the minimum's slot entries
      StageLane(t);
    }
    while (!behind_.empty() && behind_.front()->at == t) {
      Event* ev = HeapPop(&behind_);
      if (ev->cancelled) {
        FreeEvent(ev);
        continue;
      }
      ev->where = Where::kStaged;
      due_.push_back(ev);
    }
    if (due_.size() > 1) {
      std::sort(due_.begin(), due_.end(),
                [](const Event* a, const Event* b) { return a->seq < b->seq; });
    }
    return true;
  }

  // ---- Binary heaps for the two cold paths (overflow, behind-clock) ----

  struct EarlierPtr {
    bool operator()(const Event* a, const Event* b) const {
      // std::push_heap builds a max-heap; invert for min-at-front.
      if (a->at != b->at) {
        return a->at > b->at;
      }
      return a->seq > b->seq;
    }
  };

  static void HeapPush(std::vector<Event*>* heap, Event* ev) {
    heap->push_back(ev);
    std::push_heap(heap->begin(), heap->end(), EarlierPtr{});
  }

  static Event* HeapPop(std::vector<Event*>* heap) {
    std::pop_heap(heap->begin(), heap->end(), EarlierPtr{});
    Event* ev = heap->back();
    heap->pop_back();
    return ev;
  }

  // Frees cancelled tombstones sitting at the heap front.
  void PurgeHeapTop(std::vector<Event*>* heap) {
    while (!heap->empty() && heap->front()->cancelled) {
      FreeEvent(HeapPop(heap));
    }
  }

  Time now_ = 0;
  Time wheel_now_ = 0;  // wheel clock; may run ahead of now_ (never ahead of
                        // the earliest pending event)
  Time wheel_peek_cache_ = 0;  // last WheelPeek() result, if still valid
  bool wheel_peek_valid_ = false;
  uint64_t next_seq_ = 0;
  uint64_t live_events_ = 0;
  uint64_t executed_ = 0;

  std::vector<Event*> lane_;          // kLaneSlots intrusive slot lists
  std::vector<uint64_t> lane_words_;  // kLaneWords occupancy bitmap
  uint64_t lane_live_ = 0;
  Time lane_peek_cache_ = 0;  // last LanePeek() result, if still valid
  bool lane_peek_valid_ = false;

  uint64_t occupied_[kLevels] = {};
  Event* buckets_[kLevels][kBucketsPerLevel] = {};
  std::vector<Event*> overflow_;
  std::vector<Event*> behind_;
  std::vector<Event*> due_;  // current same-timestamp batch, seq order
  size_t due_pos_ = 0;

  std::vector<std::unique_ptr<Event[]>> slabs_;
  std::vector<uint32_t> free_slots_;
  WheelProfile profile_;
};

}  // namespace enoki

#endif  // SRC_SIMKERNEL_EVENT_LOOP_H_
