// ShardedEventLoop: conservative parallel discrete-event engine with a
// deterministic cross-shard merge.
//
// One simulation run is split into K shards, each owning a private EventLoop
// (timing wheel + slab pool) and, by convention, one NUMA-node group of the
// simulated machine (see MachineSpec::ShardSpec). Shards execute epochs in
// parallel on up to T host threads; cross-shard interactions (wakeup on a
// remote node, steal, IPI-like pulses) go through bounded per-shard SPSC
// mailboxes and are committed between epochs by a single deterministic merge
// rule. The headline property is determinism-by-construction:
//
//   ENOKI_SHARD_THREADS=1..T produces byte-identical runs.
//
// Epoch protocol (conservative PDES with lookahead = epoch_ns):
//
//   1. All shards run independently to a shared horizon H' = H + epoch_ns.
//      Within the window each shard is strictly single-threaded and
//      deterministic on its own loop.
//   2. Cross-shard messages carry latency >= epoch_ns, so a message sent at
//      t in [H, H'] delivers at t + latency >= H + epoch_ns >= H' — never
//      inside the window that produced it. Shards therefore cannot observe
//      each other mid-epoch, and the parallel execution is race-free by
//      construction (each loop is touched by exactly one thread per epoch;
//      the epoch barrier orders the hand-off).
//   3. At the barrier, all outboxes are drained and committed in sorted
//      (deliver_time, src_shard, src_seq) order. The sort key is a total
//      order independent of which thread ran which shard when, so the
//      insertion sequence numbers the destination loops assign — and hence
//      all downstream tie-breaking — are identical for every T.
//
// When every shard is quiet the horizon leaps directly to the global next
// event time (minus one window) instead of stepping epoch-by-epoch; this is
// safe because no event exists in the skipped span, and it makes idle
// stretches free.
//
// With K=1 the engine degrades to a zero-overhead forwarder around the plain
// EventLoop — benchmarks comparing "sharded vs unsharded" compare against
// the true single-threaded hot path.

#ifndef SRC_SIMKERNEL_SHARDED_EVENT_LOOP_H_
#define SRC_SIMKERNEL_SHARDED_EVENT_LOOP_H_

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/base/check.h"
#include "src/base/ring_buffer.h"
#include "src/base/time.h"
#include "src/simkernel/event_loop.h"

namespace enoki {

class ShardedEventLoop {
 public:
  struct Options {
    int nshards = 1;
    // Lookahead: epoch width and the minimum cross-shard latency. 20 us is
    // several times the simulated IPI + idle-exit cost, so remote wakeups
    // modelled through PostCross stay physically plausible.
    Duration epoch_ns = 20'000;
    // Host threads. 0 = take ENOKI_SHARD_THREADS from the environment
    // (default 1). Clamped to [1, nshards]. Thread count never affects
    // simulation output, only wall-clock.
    int threads = 0;
    // Per-shard outbox capacity (messages per epoch per shard). Power of
    // two; overflow is a checked error, not a drop — dropping would make
    // output depend on timing.
    size_t mailbox_slots = RingBuffer<int>::CheckedCapacity<4096>();
  };

  explicit ShardedEventLoop(Options opts) : opts_(opts) {
    ENOKI_CHECK(opts.nshards >= 1);
    ENOKI_CHECK(opts.epoch_ns > 0);
    threads_ = ResolveThreads(opts.threads, opts.nshards);
    shards_.reserve(static_cast<size_t>(opts.nshards));
    for (int i = 0; i < opts.nshards; ++i) {
      shards_.push_back(std::make_unique<Shard>(opts.mailbox_slots));
    }
    // Workers own a static shard partition (worker j runs shards with
    // index % threads == j+1; the calling thread runs index % threads == 0).
    // Static partitioning keeps the barrier logic minimal and is fair when
    // shards are symmetric, which NUMA-node shards are.
    for (int j = 1; j < threads_; ++j) {
      workers_.emplace_back([this, j] { WorkerMain(j); });
    }
  }

  ~ShardedEventLoop() {
    stop_.store(true, std::memory_order_release);
    epoch_gen_.fetch_add(1, std::memory_order_release);  // wake waiters
    for (auto& w : workers_) {
      w.join();
    }
  }

  ShardedEventLoop(const ShardedEventLoop&) = delete;
  ShardedEventLoop& operator=(const ShardedEventLoop&) = delete;

  int nshards() const { return opts_.nshards; }
  int threads() const { return threads_; }
  Duration epoch_ns() const { return opts_.epoch_ns; }
  EventLoop& shard(int i) { return shards_[static_cast<size_t>(i)]->loop; }

  // Committed horizon: no shard has unexecuted events at or before this time.
  Time now() const { return now_; }

  // Sends work across a shard boundary: `fn` runs on shard `dst`'s loop at
  // (send time + latency). Must be called from shard `src`'s execution
  // context (its callbacks), which is single-threaded per epoch. Cross-shard
  // latency must be >= epoch_ns — that inequality is the entire correctness
  // argument for running shards in parallel. Same-shard posts have no floor
  // and schedule directly.
  void PostCross(int src, int dst, Duration latency, std::function<void()> fn) {
    ENOKI_CHECK(src >= 0 && src < opts_.nshards && dst >= 0 && dst < opts_.nshards);
    Shard& s = *shards_[static_cast<size_t>(src)];
    if (dst == src) {
      s.loop.ScheduleAfter(latency, std::move(fn));
      return;
    }
    ENOKI_CHECK_MSG(latency >= opts_.epoch_ns,
                    "cross-shard latency below the epoch lookahead bound");
    if (opts_.nshards == 1) {
      s.loop.ScheduleAfter(latency, std::move(fn));
      return;
    }
    CrossMsg m;
    m.deliver_at = s.loop.now() + latency;
    m.src = src;
    m.dst = dst;
    m.seq = ++s.out_seq;
    m.fn = std::move(fn);
    ENOKI_CHECK_MSG(s.outbox.Push(std::move(m)), "shard outbox overflow (bounded mailbox)");
  }

  // Runs all events with time <= deadline; on return now() == deadline.
  void RunUntil(Time deadline) {
    if (opts_.nshards == 1) {
      shards_[0]->loop.RunUntil(deadline);
      now_ = deadline;
      return;
    }
    while (now_ < deadline) {
      const Time gmin = GlobalNextTime();
      if (gmin > deadline) {
        break;
      }
      RunEpoch(EpochTarget(gmin, deadline));
    }
    if (now_ < deadline) {
      // No events in (now_, deadline]: just advance every clock.
      for (auto& sh : shards_) {
        sh->loop.RunUntil(deadline);
      }
      now_ = deadline;
    }
  }

  void RunUntilIdle() {
    if (opts_.nshards == 1) {
      shards_[0]->loop.RunUntilIdle();
      now_ = shards_[0]->loop.now();
      return;
    }
    for (;;) {
      const Time gmin = GlobalNextTime();
      if (gmin == kTimeMax) {
        return;
      }
      RunEpoch(EpochTarget(gmin, kTimeMax));
    }
  }

  bool HasWork() const {
    for (const auto& sh : shards_) {
      if (sh->loop.HasWork()) {
        return true;
      }
    }
    return false;
  }

  uint64_t events_executed() const {
    uint64_t n = 0;
    for (const auto& sh : shards_) {
      n += sh->loop.events_executed();
    }
    return n;
  }

  uint64_t cross_messages() const { return cross_messages_; }
  uint64_t epochs() const { return epochs_; }

  // FNV-1a digest of the committed merge order: every cross-shard message's
  // (deliver_time, src, dst, seq) in commit order. Identical across thread
  // counts by construction; the determinism tests assert exactly that.
  uint64_t MergeFingerprint() const { return merge_hash_; }

  // Observer invoked for each committed cross-shard message in commit order;
  // used to record the merge sequence into an Enoki trace (see
  // AttachShardMergeRecorder in enoki/runtime.h).
  using MergeObserver = std::function<void(Time deliver_at, int src, int dst, uint64_t seq)>;
  void set_merge_observer(MergeObserver obs) { merge_observer_ = std::move(obs); }

  static int ResolveThreads(int requested, int nshards) {
    int t = requested;
    if (t <= 0) {
      const char* env = std::getenv("ENOKI_SHARD_THREADS");
      t = (env != nullptr) ? std::atoi(env) : 1;
    }
    return std::clamp(t, 1, nshards);
  }

 private:
  struct CrossMsg {
    Time deliver_at = 0;
    int src = 0;
    int dst = 0;
    uint64_t seq = 0;
    std::function<void()> fn;
  };

  struct Shard {
    explicit Shard(size_t mailbox_slots) : outbox(mailbox_slots) {}
    EventLoop loop;
    RingBuffer<CrossMsg> outbox;  // producer: shard thread; consumer: barrier
    uint64_t out_seq = 0;
  };

  // Earliest pending event time across all shards. Mailboxes are always
  // empty here (drained at every barrier), so shard loops are the whole
  // picture.
  Time GlobalNextTime() {
    Time t = kTimeMax;
    for (auto& sh : shards_) {
      t = std::min(t, sh->loop.PeekTime());
    }
    return t;
  }

  // Next horizon. The window must be at most epoch_ns wide so the lookahead
  // argument holds; when the next event is beyond one window the start leaps
  // to (gmin - epoch_ns), which is safe because the skipped span is empty.
  Time EpochTarget(Time gmin, Time deadline) const {
    Time start = now_;
    if (gmin > opts_.epoch_ns && gmin - opts_.epoch_ns > start) {
      start = gmin - opts_.epoch_ns;
    }
    return std::min(start + opts_.epoch_ns, deadline);
  }

  void RunEpoch(Time target) {
    ++epochs_;
    if (threads_ == 1) {
      for (auto& sh : shards_) {
        sh->loop.RunUntil(target);
      }
    } else {
      target_ = target;
      // Release on the generation bump publishes target_ (and all prior
      // shard state) to workers; their acquire load pairs with it.
      epoch_gen_.fetch_add(1, std::memory_order_release);
      RunOwnedShards(/*worker=*/0, target);
      // Workers' release increments of done_workers_ pair with this acquire
      // loop: once observed, all their shard mutations and outbox pushes
      // happen-before the merge below.
      while (done_workers_.load(std::memory_order_acquire) < threads_ - 1) {
        std::this_thread::yield();
      }
      done_workers_.store(0, std::memory_order_relaxed);
    }
    CommitMailboxes(target);
    now_ = target;
  }

  void RunOwnedShards(int worker, Time target) {
    for (int i = worker; i < opts_.nshards; i += threads_) {
      shards_[static_cast<size_t>(i)]->loop.RunUntil(target);
    }
  }

  void WorkerMain(int worker) {
    uint64_t seen = 0;
    for (;;) {
      const uint64_t gen = epoch_gen_.load(std::memory_order_acquire);
      if (stop_.load(std::memory_order_acquire)) {
        return;
      }
      if (gen == seen) {
        std::this_thread::yield();
        continue;
      }
      seen = gen;
      RunOwnedShards(worker, target_);
      done_workers_.fetch_add(1, std::memory_order_release);
    }
  }

  // Drains every outbox and commits the messages in (deliver_at, src, seq)
  // order — a total order (seq is unique per src) that does not depend on
  // which thread ran which shard, so destination-loop insertion sequence
  // numbers are reproducible for any thread count.
  void CommitMailboxes(Time target) {
    scratch_.clear();
    for (auto& sh : shards_) {
      while (auto m = sh->outbox.Pop()) {
        scratch_.push_back(std::move(*m));
      }
    }
    if (scratch_.empty()) {
      return;
    }
    std::sort(scratch_.begin(), scratch_.end(), [](const CrossMsg& a, const CrossMsg& b) {
      if (a.deliver_at != b.deliver_at) {
        return a.deliver_at < b.deliver_at;
      }
      if (a.src != b.src) {
        return a.src < b.src;
      }
      return a.seq < b.seq;
    });
    for (CrossMsg& m : scratch_) {
      // Lookahead held: the message cannot land inside the epoch that sent it.
      ENOKI_CHECK(m.deliver_at >= target);
      merge_hash_ = MixMerge(merge_hash_, m);
      ++cross_messages_;
      if (merge_observer_) {
        merge_observer_(m.deliver_at, m.src, m.dst, m.seq);
      }
      shards_[static_cast<size_t>(m.dst)]->loop.ScheduleAt(m.deliver_at, std::move(m.fn));
    }
  }

  static uint64_t MixMerge(uint64_t h, const CrossMsg& m) {
    auto mix = [](uint64_t acc, uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        acc ^= (v >> (i * 8)) & 0xff;
        acc *= 1099511628211ull;
      }
      return acc;
    };
    h = mix(h, m.deliver_at);
    h = mix(h, static_cast<uint64_t>(m.src));
    h = mix(h, static_cast<uint64_t>(m.dst));
    h = mix(h, m.seq);
    return h;
  }

  const Options opts_;
  int threads_ = 1;
  Time now_ = 0;
  uint64_t epochs_ = 0;
  uint64_t cross_messages_ = 0;
  uint64_t merge_hash_ = 14695981039346656037ull;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<CrossMsg> scratch_;  // reused merge buffer
  MergeObserver merge_observer_;

  // Epoch barrier state. target_ is plain: it is published by the release
  // bump of epoch_gen_ and read only after the paired acquire.
  Time target_ = 0;
  std::atomic<uint64_t> epoch_gen_{0};
  std::atomic<int> done_workers_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

}  // namespace enoki

#endif  // SRC_SIMKERNEL_SHARDED_EVENT_LOOP_H_
