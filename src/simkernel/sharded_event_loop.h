// ShardedEventLoop: conservative parallel discrete-event engine with a
// deterministic cross-shard merge.
//
// One simulation run is split into K shards, each owning a private EventLoop
// (timing wheel + slab pool) and, by convention, one NUMA-node group of the
// simulated machine (see MachineSpec::ShardSpec). Shards execute epochs in
// parallel on up to T host threads; cross-shard interactions (wakeup on a
// remote node, steal, IPI-like pulses) go through bounded per-shard SPSC
// mailboxes and are committed between epochs by a single deterministic merge
// rule. The headline property is determinism-by-construction:
//
//   ENOKI_SHARD_THREADS=1..T produces byte-identical runs.
//
// Epoch protocol (conservative PDES with lookahead = epoch_ns):
//
//   1. All shards run independently to a shared horizon H' = H + epoch_ns.
//      Within the window each shard is strictly single-threaded and
//      deterministic on its own loop.
//   2. Cross-shard messages carry latency >= epoch_ns, so a message sent at
//      t in [H, H'] delivers at t + latency >= H + epoch_ns >= H' — never
//      inside the window that produced it. Shards therefore cannot observe
//      each other mid-epoch, and the parallel execution is race-free by
//      construction (each loop is touched by exactly one thread per epoch;
//      the epoch barrier orders the hand-off).
//   3. At the barrier, all outboxes are drained and committed in sorted
//      (deliver_time, src_shard, src_seq) order. The sort key is a total
//      order independent of which thread ran which shard when, so the
//      insertion sequence numbers the destination loops assign — and hence
//      all downstream tie-breaking — are identical for every T.
//
// When every shard is quiet the horizon leaps directly to the global next
// event time (minus one window) instead of stepping epoch-by-epoch; this is
// safe because no event exists in the skipped span, and it makes idle
// stretches free.
//
// Adaptive epochs (Options::adaptive_epochs): a deterministic EpochController
// widens or narrows the *effective* window between epochs, from committed
// simulation state only — cross-shard message rate, idle-leap frequency, and
// event density over a sliding window of epochs. Wider windows amortize the
// barrier over more events; narrower windows protect the bounded outboxes
// under cross-shard pressure. The clamp invariant that keeps the lookahead
// argument intact: the window never exceeds the minimum cross-shard latency
// registered via RegisterCrossLatency (and never drops below a floor). All
// controller inputs are byte-identical across host thread counts, so the
// window schedule — and therefore the run — still is too.
//
// With K=1 the engine degrades to a zero-overhead forwarder around the plain
// EventLoop — benchmarks comparing "sharded vs unsharded" compare against
// the true single-threaded hot path.

#ifndef SRC_SIMKERNEL_SHARDED_EVENT_LOOP_H_
#define SRC_SIMKERNEL_SHARDED_EVENT_LOOP_H_

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/base/check.h"
#include "src/base/profile.h"
#include "src/base/ring_buffer.h"
#include "src/base/time.h"
#include "src/simkernel/event_loop.h"

namespace enoki {

// Deterministic per-epoch window controller. Fed one sample per *committed*
// epoch; every `period` samples it makes one decision:
//
//         ┌─────────────────────────────────────────────────┐
//         │                   HOLD (start)                  │
//         └─────────────────────────────────────────────────┘
//    msgs/epoch ≥ slots/4 │        │ leaps ≥ period/2  │ dense & headroom
//            ▼            │        ▼                   ▼
//         NARROW (w /= 2) │      HOLD          WIDEN (w *= 2)
//
//  1. NARROW when committed cross-shard messages per epoch approach the
//     bounded outbox capacity (≥ slots/4): halve the window (clamped to
//     `floor`) so one epoch's traffic cannot overflow a mailbox — overflow
//     is a checked error, so pressure must be relieved before the cliff.
//  2. HOLD when idle-leap epochs dominate the window (≥ half): the engine is
//     leaping over idle spans, so window width is already irrelevant and
//     drifting it would only add noise.
//  3. WIDEN when the epochs are dense (events/epoch ≥ widen_density) and
//     cross traffic has ample headroom (msgs/epoch ≤ slots/8): double the
//     window (clamped to `ceiling`) to amortize the barrier over more events.
//
// Every input is a pure function of the simulation (committed counts), never
// of host timing, so decision sequences are identical for any thread count.
// The ceiling is the lookahead clamp: callers must set it no higher than the
// minimum registered cross-shard latency.
class EpochController {
 public:
  struct Config {
    Duration floor = 0;
    Duration ceiling = 0;
    int period = 8;                // epochs per decision
    size_t mailbox_slots = 4096;   // NARROW threshold base
    uint64_t widen_density = 16;   // events/epoch needed to WIDEN
  };

  explicit EpochController(Config cfg) : cfg_(cfg) {
    ENOKI_CHECK(cfg.floor > 0 && cfg.ceiling >= cfg.floor && cfg.period > 0);
  }

  // Records one committed epoch and returns the window for the next one.
  Duration OnEpoch(Duration window, uint64_t committed_msgs, uint64_t events, bool leapt) {
    msgs_ += committed_msgs;
    events_ += events;
    leaps_ += leapt ? 1 : 0;
    if (++samples_ < cfg_.period) {
      return Clamp(window);
    }
    const uint64_t period = static_cast<uint64_t>(cfg_.period);
    const uint64_t avg_msgs = msgs_ / period;
    const uint64_t avg_events = events_ / period;
    const bool leap_dominated = leaps_ * 2 >= period;
    msgs_ = events_ = leaps_ = 0;
    samples_ = 0;
    if (avg_msgs * 4 >= cfg_.mailbox_slots) {
      const Duration w = Clamp(window / 2);
      narrows_ += (w != window) ? 1 : 0;
      return w;
    }
    if (leap_dominated) {
      return Clamp(window);
    }
    if (avg_events >= cfg_.widen_density && avg_msgs * 8 <= cfg_.mailbox_slots) {
      const Duration w = Clamp(window * 2);
      widens_ += (w != window) ? 1 : 0;
      return w;
    }
    return Clamp(window);
  }

  uint64_t widens() const { return widens_; }
  uint64_t narrows() const { return narrows_; }

 private:
  Duration Clamp(Duration w) const { return std::clamp(w, cfg_.floor, cfg_.ceiling); }

  const Config cfg_;
  uint64_t msgs_ = 0;
  uint64_t events_ = 0;
  uint64_t leaps_ = 0;
  int samples_ = 0;
  uint64_t widens_ = 0;
  uint64_t narrows_ = 0;
};

class ShardedEventLoop {
 public:
  struct Options {
    int nshards = 1;
    // Lookahead: epoch width and the minimum cross-shard latency. 20 us is
    // several times the simulated IPI + idle-exit cost, so remote wakeups
    // modelled through PostCross stay physically plausible.
    Duration epoch_ns = 20'000;
    // Host threads. 0 = take ENOKI_SHARD_THREADS from the environment
    // (default 1). Clamped to [1, nshards]. Thread count never affects
    // simulation output, only wall-clock.
    int threads = 0;
    // Per-shard outbox capacity (messages per epoch per shard). Power of
    // two; overflow is a checked error, not a drop — dropping would make
    // output depend on timing.
    size_t mailbox_slots = RingBuffer<int>::CheckedCapacity<4096>();
    // Coalesce consecutive same-(deliver_time, src) cross-shard messages
    // into one mailbox entry, expanded at commit (prof_batched_msgs counts
    // the riders). Purely a commit-cost optimization: the committed order,
    // MergeFingerprint, and run output are byte-identical either way (the
    // determinism sweep asserts this). Off = every message is a batch of 1
    // through the same code path.
    bool batched_commit = true;
    // Adaptive epochs: let an EpochController retune the effective window
    // between epochs. epoch_ns becomes the *initial* window; the controller
    // moves it within [min_epoch_ns, min registered cross-shard latency].
    bool adaptive_epochs = false;
    // Narrowing floor. 0 = epoch_ns / 4 (at least 1 ns).
    Duration min_epoch_ns = 0;
    // Optional widening cap below the registered-latency clamp. 0 = clamp
    // only by the minimum latency passed to RegisterCrossLatency (with no
    // registration the window cannot widen past epoch_ns at all).
    Duration max_epoch_ns = 0;
    // Epochs per controller decision (sliding stats window).
    int controller_period = 8;
  };

  explicit ShardedEventLoop(Options opts) : opts_(opts), window_(opts.epoch_ns) {
    ENOKI_CHECK(opts.nshards >= 1);
    ENOKI_CHECK(opts.epoch_ns > 0);
    threads_ = ResolveThreads(opts.threads, opts.nshards);
    shards_.reserve(static_cast<size_t>(opts.nshards));
    for (int i = 0; i < opts.nshards; ++i) {
      shards_.push_back(std::make_unique<Shard>(opts.mailbox_slots));
    }
    // Workers own a static shard partition (worker j runs shards with
    // index % threads == j+1; the calling thread runs index % threads == 0).
    // Static partitioning keeps the barrier logic minimal and is fair when
    // shards are symmetric, which NUMA-node shards are.
    for (int j = 1; j < threads_; ++j) {
      workers_.emplace_back([this, j] { WorkerMain(j); });
    }
  }

  ~ShardedEventLoop() {
    stop_.store(true, std::memory_order_release);
    epoch_gen_.fetch_add(1, std::memory_order_release);  // wake waiters
    for (auto& w : workers_) {
      w.join();
    }
  }

  ShardedEventLoop(const ShardedEventLoop&) = delete;
  ShardedEventLoop& operator=(const ShardedEventLoop&) = delete;

  int nshards() const { return opts_.nshards; }
  int threads() const { return threads_; }
  Duration epoch_ns() const { return opts_.epoch_ns; }
  // Current effective window (== epoch_ns until an adaptive controller moves
  // it).
  Duration window_ns() const { return window_; }
  EventLoop& shard(int i) { return shards_[static_cast<size_t>(i)]->loop; }

  // Committed horizon: no shard has unexecuted events at or before this time.
  Time now() const { return now_; }

  // Declares that every future PostCross through this engine carries at
  // least `latency`. Must be called before the first epoch runs. The
  // adaptive controller may then widen the window up to the smallest
  // registered latency — the clamp that keeps the lookahead argument (no
  // message lands inside the window that sent it) intact. Static mode
  // ignores registrations; the fixed epoch_ns bound already holds.
  void RegisterCrossLatency(Duration latency) {
    ENOKI_CHECK_MSG(prof_.epochs == 0, "RegisterCrossLatency after the engine started");
    ENOKI_CHECK_MSG(latency >= opts_.epoch_ns,
                    "registered cross-shard latency below the base epoch window");
    min_cross_latency_ = std::min(min_cross_latency_, latency);
  }

  // Barrier/merge/controller counters. Count-type fields are deterministic
  // across hosts and thread counts; *_ns fields are wall-clock.
  ShardProfile profile() const {
    ShardProfile p = prof_;
    if (controller_ != nullptr) {
      p.widens = controller_->widens();
      p.narrows = controller_->narrows();
    }
    return p;
  }

  // Sum of the per-shard wheel profiles (cascades, slab growth, ...).
  WheelProfile WheelProfileSum() const {
    WheelProfile sum;
    for (const auto& sh : shards_) {
      sum.MergeFrom(sh->loop.wheel_profile());
    }
    return sum;
  }

  // Sends work across a shard boundary: `fn` runs on shard `dst`'s loop at
  // (send time + latency). Must be called from shard `src`'s execution
  // context (its callbacks), which is single-threaded per epoch. Cross-shard
  // latency must be >= epoch_ns — that inequality is the entire correctness
  // argument for running shards in parallel. Same-shard posts have no floor
  // and schedule directly.
  void PostCross(int src, int dst, Duration latency, std::function<void()> fn) {
    ENOKI_CHECK(src >= 0 && src < opts_.nshards && dst >= 0 && dst < opts_.nshards);
    Shard& s = *shards_[static_cast<size_t>(src)];
    if (dst == src) {
      s.loop.ScheduleAfter(latency, std::move(fn));
      return;
    }
    ENOKI_CHECK_MSG(latency >= LookaheadBound(),
                    "cross-shard latency below the epoch lookahead bound "
                    "(adaptive mode: register the smallest latency in use)");
    if (opts_.nshards == 1) {
      s.loop.ScheduleAfter(latency, std::move(fn));
      return;
    }
    const Time deliver_at = s.loop.now() + latency;
    const uint64_t seq = ++s.out_seq;
    ENOKI_CHECK_MSG(s.subs.size() < opts_.mailbox_slots,
                    "shard outbox overflow (bounded mailbox)");
    s.subs.push_back(CrossSub{dst, std::move(fn)});
    // Batched commit: a message sent at the same instant as the open batch
    // rides it — its seq is the next in the batch's contiguous run by
    // construction (out_seq increments once per send, and the batch has
    // absorbed every send since it opened).
    if (opts_.batched_commit && s.open.count > 0 && s.open.deliver_at == deliver_at) {
      ++s.open.count;
      return;
    }
    if (s.open.count > 0) {
      ENOKI_CHECK_MSG(s.outbox.Push(s.open), "shard outbox overflow (bounded mailbox)");
    }
    s.open = CrossMsg{deliver_at, src, seq, static_cast<uint32_t>(s.subs.size() - 1), 1};
  }

  // Runs all events with time <= deadline; on return now() == deadline.
  void RunUntil(Time deadline) {
    if (opts_.nshards == 1) {
      shards_[0]->loop.RunUntil(deadline);
      now_ = deadline;
      return;
    }
    while (now_ < deadline) {
      const Time gmin = GlobalNextTime();
      if (gmin > deadline) {
        break;
      }
      bool leapt = false;
      const Time target = EpochTarget(gmin, deadline, &leapt);
      RunEpoch(target, leapt);
    }
    if (now_ < deadline) {
      // No events in (now_, deadline]: just advance every clock.
      for (auto& sh : shards_) {
        sh->loop.RunUntil(deadline);
      }
      now_ = deadline;
    }
  }

  void RunUntilIdle() {
    if (opts_.nshards == 1) {
      shards_[0]->loop.RunUntilIdle();
      now_ = shards_[0]->loop.now();
      return;
    }
    for (;;) {
      const Time gmin = GlobalNextTime();
      if (gmin == kTimeMax) {
        return;
      }
      bool leapt = false;
      const Time target = EpochTarget(gmin, kTimeMax, &leapt);
      RunEpoch(target, leapt);
    }
  }

  bool HasWork() const {
    for (const auto& sh : shards_) {
      if (sh->loop.HasWork()) {
        return true;
      }
    }
    return false;
  }

  uint64_t events_executed() const {
    uint64_t n = 0;
    for (const auto& sh : shards_) {
      n += sh->loop.events_executed();
    }
    return n;
  }

  uint64_t cross_messages() const { return cross_messages_; }
  uint64_t epochs() const { return epochs_; }

  // FNV-1a digest of the committed merge order: every cross-shard message's
  // (deliver_time, src, dst, seq) in commit order. Identical across thread
  // counts by construction; the determinism tests assert exactly that.
  uint64_t MergeFingerprint() const { return merge_hash_; }

  // Observer invoked for each committed cross-shard message in commit order;
  // used to record the merge sequence into an Enoki trace (see
  // AttachShardMergeRecorder in enoki/runtime.h).
  using MergeObserver = std::function<void(Time deliver_at, int src, int dst, uint64_t seq)>;
  void set_merge_observer(MergeObserver obs) { merge_observer_ = std::move(obs); }

  static int ResolveThreads(int requested, int nshards) {
    int t = requested;
    if (t <= 0) {
      const char* env = std::getenv("ENOKI_SHARD_THREADS");
      t = (env != nullptr) ? std::atoi(env) : 1;
    }
    return std::clamp(t, 1, nshards);
  }

 private:
  // One sub-message of a batch: destination shard + closure. Stored in the
  // sending shard's `subs` side vector; batch headers reference contiguous
  // runs of it by index.
  struct CrossSub {
    int dst = 0;
    std::function<void()> fn;
  };

  // Batch header travelling through the SPSC outbox: `count` sub-messages
  // sharing one (deliver_at, src), with contiguous seqs starting at
  // first_seq and payloads at subs[sub_base .. sub_base+count). With
  // batching off every header has count == 1, so the unbatched engine is
  // the same code path, not a second one.
  struct CrossMsg {
    Time deliver_at = 0;
    int src = 0;
    uint64_t first_seq = 0;
    uint32_t sub_base = 0;
    uint32_t count = 0;
  };

  struct Shard {
    explicit Shard(size_t mailbox_slots) : outbox(mailbox_slots) {}
    EventLoop loop;
    RingBuffer<CrossMsg> outbox;  // batch headers; producer: shard thread
    // (dst, fn) payloads for this epoch's batches. Written by the shard's
    // epoch thread, read and cleared by the barrier thread at commit — the
    // epoch barrier's acquire/release pair orders both directions.
    std::vector<CrossSub> subs;
    CrossMsg open;  // open (unpushed) batch; count == 0 means none
    uint64_t out_seq = 0;
  };

  // Earliest pending event time across all shards. Mailboxes are always
  // empty here (drained at every barrier), so shard loops are the whole
  // picture.
  Time GlobalNextTime() {
    Time t = kTimeMax;
    for (auto& sh : shards_) {
      t = std::min(t, sh->loop.PeekTime());
    }
    return t;
  }

  // Upper bound the effective window may ever reach — the lookahead clamp
  // PostCross latencies are checked against. Static mode: the fixed
  // epoch_ns. Adaptive mode: the smallest registered cross-shard latency
  // (optionally capped by max_epoch_ns); with nothing registered the window
  // cannot widen, so the bound stays epoch_ns.
  Duration LookaheadBound() const {
    if (!opts_.adaptive_epochs) {
      return opts_.epoch_ns;
    }
    Duration c = min_cross_latency_;
    if (opts_.max_epoch_ns > 0) {
      c = std::min(c, opts_.max_epoch_ns);
    }
    return c == kTimeMax ? opts_.epoch_ns : std::max(c, opts_.epoch_ns);
  }

  Duration WindowFloor() const {
    if (opts_.min_epoch_ns > 0) {
      return std::min(opts_.min_epoch_ns, opts_.epoch_ns);
    }
    return std::max<Duration>(opts_.epoch_ns / 4, 1);
  }

  // Next horizon. The window must be at most window_ wide so the lookahead
  // argument holds; when the next event is beyond one window the start leaps
  // to (gmin - window_), which is safe because the skipped span is empty.
  // Sets *leapt when the start leapt an idle span (a controller input).
  Time EpochTarget(Time gmin, Time deadline, bool* leapt) const {
    Time start = now_;
    *leapt = false;
    if (gmin > window_ && gmin - window_ > start) {
      start = gmin - window_;
      *leapt = true;
    }
    return std::min(start + window_, deadline);
  }

  void RunEpoch(Time target, bool leapt) {
    ++epochs_;
    ++prof_.epochs;
    prof_.idle_leaps += leapt ? 1 : 0;
    const uint64_t events_before = events_executed();
    if (threads_ == 1) {
      for (auto& sh : shards_) {
        sh->loop.RunUntil(target);
      }
    } else {
      target_ = target;
      // Release on the generation bump publishes target_ (and all prior
      // shard state) to workers; their acquire load pairs with it.
      epoch_gen_.fetch_add(1, std::memory_order_release);
      RunOwnedShards(/*worker=*/0, target);
      // Workers' release increments of done_workers_ pair with this acquire
      // loop: once observed, all their shard mutations and outbox pushes
      // happen-before the merge below.
      ProfTimer wait_timer(&prof_.barrier_ns);
      while (done_workers_.load(std::memory_order_acquire) < threads_ - 1) {
        std::this_thread::yield();
      }
      done_workers_.store(0, std::memory_order_relaxed);
    }
    const uint64_t committed = CommitMailboxes(target);
    now_ = target;
    if (opts_.adaptive_epochs) {
      if (controller_ == nullptr) {
        EpochController::Config cc;
        cc.floor = WindowFloor();
        cc.ceiling = LookaheadBound();
        cc.period = opts_.controller_period;
        cc.mailbox_slots = opts_.mailbox_slots;
        controller_ = std::make_unique<EpochController>(cc);
        window_ = std::clamp(window_, cc.floor, cc.ceiling);
      }
      // Committed counts only: identical for every host thread count, so
      // the window schedule (and the run) stays byte-identical too.
      window_ = controller_->OnEpoch(window_, committed, events_executed() - events_before,
                                     leapt);
    }
  }

  void RunOwnedShards(int worker, Time target) {
    for (int i = worker; i < opts_.nshards; i += threads_) {
      shards_[static_cast<size_t>(i)]->loop.RunUntil(target);
    }
  }

  void WorkerMain(int worker) {
    uint64_t seen = 0;
    for (;;) {
      const uint64_t gen = epoch_gen_.load(std::memory_order_acquire);
      if (stop_.load(std::memory_order_acquire)) {
        return;
      }
      if (gen == seen) {
        std::this_thread::yield();
        continue;
      }
      seen = gen;
      RunOwnedShards(worker, target_);
      done_workers_.fetch_add(1, std::memory_order_release);
    }
  }

  // Drains every outbox and commits the messages in (deliver_at, src, seq)
  // order — a total order (seq is unique per src) that does not depend on
  // which thread ran which shard, so destination-loop insertion sequence
  // numbers are reproducible for any thread count.
  //
  // Batching preserves that order exactly: headers sort by
  // (deliver_at, src, first_seq) and each expands to its contiguous seq run
  // first_seq .. first_seq+count-1 at a single (deliver_at, src). Any two
  // batches either differ in (deliver_at, src) — ordered the same as every
  // message they contain — or share it, in which case their seq runs are
  // disjoint and the earlier first_seq's entire run precedes the later's
  // (seqs are assigned monotonically per src). Expansion therefore emits the
  // identical sequence a per-message sort would, and the fingerprint mixes
  // each (deliver_at, src, dst, seq) individually — byte-for-byte the
  // unbatched digest.
  uint64_t CommitMailboxes(Time target) {
    ProfTimer commit_timer(&prof_.commit_ns);
    scratch_.clear();
    for (auto& sh : shards_) {
      while (auto m = sh->outbox.Pop()) {
        scratch_.push_back(*m);
      }
      // The still-open batch never went through the ring; the epoch barrier
      // ordered the shard thread's writes, so it is taken directly.
      if (sh->open.count > 0) {
        scratch_.push_back(sh->open);
        sh->open.count = 0;
      }
    }
    if (scratch_.empty()) {
      return 0;
    }
    std::sort(scratch_.begin(), scratch_.end(), [](const CrossMsg& a, const CrossMsg& b) {
      if (a.deliver_at != b.deliver_at) {
        return a.deliver_at < b.deliver_at;
      }
      if (a.src != b.src) {
        return a.src < b.src;
      }
      return a.first_seq < b.first_seq;
    });
    uint64_t committed = 0;
    for (const CrossMsg& m : scratch_) {
      // Lookahead held: the message cannot land inside the epoch that sent it.
      ENOKI_CHECK(m.deliver_at >= target);
      Shard& src_shard = *shards_[static_cast<size_t>(m.src)];
      prof_.batched_msgs += m.count - 1;
      for (uint32_t i = 0; i < m.count; ++i) {
        CrossSub& sub = src_shard.subs[m.sub_base + i];
        const uint64_t seq = m.first_seq + i;
        merge_hash_ = MixMerge(merge_hash_, m.deliver_at, m.src, sub.dst, seq);
        ++cross_messages_;
        if (merge_observer_) {
          merge_observer_(m.deliver_at, m.src, sub.dst, seq);
        }
        shards_[static_cast<size_t>(sub.dst)]->loop.ScheduleAt(m.deliver_at,
                                                               std::move(sub.fn));
        ++committed;
      }
    }
    for (auto& sh : shards_) {
      sh->subs.clear();
    }
    prof_.commit_msgs += committed;
    return committed;
  }

  static uint64_t MixMerge(uint64_t h, Time deliver_at, int src, int dst, uint64_t seq) {
    auto mix = [](uint64_t acc, uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        acc ^= (v >> (i * 8)) & 0xff;
        acc *= 1099511628211ull;
      }
      return acc;
    };
    h = mix(h, deliver_at);
    h = mix(h, static_cast<uint64_t>(src));
    h = mix(h, static_cast<uint64_t>(dst));
    h = mix(h, seq);
    return h;
  }

  const Options opts_;
  int threads_ = 1;
  Time now_ = 0;
  uint64_t epochs_ = 0;
  uint64_t cross_messages_ = 0;
  uint64_t merge_hash_ = 14695981039346656037ull;
  Duration window_;  // effective epoch width (moved by the controller)
  Duration min_cross_latency_ = kTimeMax;  // smallest RegisterCrossLatency
  std::unique_ptr<EpochController> controller_;  // built lazily, adaptive only
  ShardProfile prof_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<CrossMsg> scratch_;  // reused merge buffer
  MergeObserver merge_observer_;

  // Epoch barrier state. target_ is plain: it is published by the release
  // bump of epoch_gen_ and read only after the paired acquire.
  Time target_ = 0;
  std::atomic<uint64_t> epoch_gen_{0};
  std::atomic<int> done_workers_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

}  // namespace enoki

#endif  // SRC_SIMKERNEL_SHARDED_EVENT_LOOP_H_
