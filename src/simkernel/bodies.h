// Reusable TaskBody building blocks for tests, examples, and workloads.

#ifndef SRC_SIMKERNEL_BODIES_H_
#define SRC_SIMKERNEL_BODIES_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/simkernel/task.h"

namespace enoki {

// Plays a fixed list of actions, then exits.
class ScriptedBody : public TaskBody {
 public:
  explicit ScriptedBody(std::vector<Action> actions) : actions_(std::move(actions)) {}

  Action NextAction(SimContext& ctx) override {
    if (index_ >= actions_.size()) {
      return Action::Exit();
    }
    return actions_[index_++];
  }

 private:
  std::vector<Action> actions_;
  size_t index_ = 0;
};

// Delegates to a callable; the callable owns all state. Ideal for lambdas in
// tests and for workload closures.
class FnBody : public TaskBody {
 public:
  using Fn = std::function<Action(SimContext&)>;
  explicit FnBody(Fn fn) : fn_(std::move(fn)) {}

  Action NextAction(SimContext& ctx) override { return fn_(ctx); }

 private:
  Fn fn_;
};

inline std::unique_ptr<TaskBody> MakeFnBody(FnBody::Fn fn) {
  return std::make_unique<FnBody>(std::move(fn));
}

// Computes in fixed-size chunks until the given total CPU time has been
// consumed, then exits. The chunking gives the scheduler regular preemption
// points, like a real compute loop under timer ticks.
class CpuBoundBody : public TaskBody {
 public:
  CpuBoundBody(Duration total, Duration chunk) : remaining_(total), chunk_(chunk) {}

  Action NextAction(SimContext& ctx) override {
    if (remaining_ == 0) {
      return Action::Exit();
    }
    const Duration step = remaining_ < chunk_ ? remaining_ : chunk_;
    remaining_ -= step;
    return Action::Compute(step);
  }

  Duration remaining() const { return remaining_; }

 private:
  Duration remaining_;
  const Duration chunk_;
};

// Spins forever in chunks; used for batch/background applications.
class SpinForeverBody : public TaskBody {
 public:
  explicit SpinForeverBody(Duration chunk) : chunk_(chunk) {}

  Action NextAction(SimContext& ctx) override { return Action::Compute(chunk_); }

 private:
  const Duration chunk_;
};

}  // namespace enoki

#endif  // SRC_SIMKERNEL_BODIES_H_
