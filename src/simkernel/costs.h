// The simulator cost model.
//
// Every mechanism-level cost in the simulated kernel is a named constant
// here. The defaults are calibrated so that the relative behaviour of the
// schedulers reproduces the paper's evaluation on its 8-core i7-9700
// (3 GHz) machine: a CFS pipe ping-pong costs ~3 us per wakeup, the Enoki
// framework adds 100-150 ns per scheduler invocation (4 invocations per
// schedule operation, section 5.2), and ghOSt pays agent-scheduling latency
// on every decision.

#ifndef SRC_SIMKERNEL_COSTS_H_
#define SRC_SIMKERNEL_COSTS_H_

#include "src/base/time.h"

namespace enoki {

struct SimCosts {
  // Direct cost of a context switch (register/state swap, rq lock traffic).
  Duration context_switch_ns = 900;

  // Kernel entry/exit plus wake-path work charged to the waking task
  // (try_to_wake_up: select_task_rq, enqueue, preemption check).
  Duration wake_syscall_ns = 700;

  // Kernel entry/exit plus dequeue work on the blocking side.
  Duration block_syscall_ns = 500;

  // Core-scheduler pick path (per schedule operation, native scheduler).
  Duration pick_path_ns = 900;

  // Cross-CPU reschedule interrupt delivery.
  Duration ipi_ns = 400;

  // C-state ladder: cores descend through sleep states as idle time grows
  // (menu-governor behaviour). Exit latency is paid at wakeup.
  //   shallow (C1):  idle < medium threshold
  //   medium  (C3):  idle < deep threshold
  //   deep    (C6+): prolonged idle; tens of microseconds to exit, which
  //                  dominates schbench-style wakeup latencies (Tables 4, 6)
  //                  and is what warm-core placement (Nest) avoids.
  Duration shallow_idle_exit_ns = 500;
  Duration medium_idle_exit_ns = 6'000;
  Duration deep_idle_exit_ns = 30'000;

  Duration medium_idle_threshold_ns = 15'000;
  Duration deep_idle_threshold_ns = 300'000;

  // Per-invocation overhead of the Enoki framework: message marshalling,
  // the RwLock read acquire, and the dispatch through the module's
  // processing function. The paper measured 100-150 ns per invocation.
  Duration enoki_call_ns = 125;

  // Additional per-invocation cost when the Enoki record system is active
  // (serializing the call message into the record ring buffer).
  Duration enoki_record_ns = 3'000;

  // ghOSt: producing a message into an agent channel.
  Duration ghost_msg_ns = 400;

  // ghOSt: agent-side handling cost per message (parse, policy, txn setup).
  Duration ghost_agent_op_ns = 1'700;

  // ghOSt: committing a transaction (syscall + commit protocol).
  Duration ghost_commit_ns = 1'000;

  // Live upgrade: per-CPU cost of draining in-flight read-locked calls while
  // the upgrade holds the write lock (scales the pause with core count,
  // section 5.7).
  Duration upgrade_percpu_drain_ns = 110;

  // Live upgrade: fixed cost of the module pointer swap plus lock handoff.
  Duration upgrade_swap_ns = 300;

  // Watchdog fallback: per-task cost of re-policying a quarantined module's
  // task onto the fallback class (setscheduler path minus syscall entry).
  Duration fallback_pertask_ns = 150;

  // Transactional upgrade: serializing a quiesced module's accounting state
  // into a checkpoint (memcpy-dominated; flat approximation).
  Duration checkpoint_save_ns = 600;

  // Recovery: per-task cost of re-minting a token and re-injecting a parked
  // task into a restored module after a rollback or supervised restart.
  Duration restore_pertask_ns = 180;

  // Supervised restart: constructing and attaching a fresh module instance
  // (module load minus the original registration syscall).
  Duration module_restart_ns = 2'000;

  // Arming a per-CPU hrtimer from an Enoki scheduler.
  Duration timer_arm_ns = 350;

  // Timer tick period (CONFIG_HZ=1000).
  Duration tick_ns = 1'000'000;

  // User-level thread context switch (Arachne runtime).
  Duration user_switch_ns = 45;

  // Writing a hint into a user->kernel queue (store + optional kick).
  Duration hint_write_ns = 100;

  // Socket round-trip latency (original Arachne arbiter communication).
  Duration socket_rtt_ns = 25'000;
};

}  // namespace enoki

#endif  // SRC_SIMKERNEL_COSTS_H_
