// SchedCore: the simulated core scheduling loop (kernel/sched/core.c analog).
//
// SchedCore owns the event loop, the CPUs, and the tasks. It drives task
// bodies, charges the cost model, and dispatches every scheduling decision
// through registered SchedClass instances in class-priority order. The
// protocol visible to a SchedClass mirrors the kernel's:
//
//   wakeup:    SelectTaskRq -> EnqueueTask -> WakeupPreempt check
//   block:     DequeueTask(kBlocked) -> schedule()
//   schedule:  [Balance] -> PickNextTask (per class, priority order)
//   preempt:   TaskPreempted (requeue) -> schedule()
//   tick:      TaskTick (may SetNeedResched)
//
// The contract for PickNextTask is pick-and-remove: a returned task is no
// longer on the class's queue (set_next_task semantics), so no other CPU can
// steal it during the context-switch window.

#ifndef SRC_SIMKERNEL_SCHED_CORE_H_
#define SRC_SIMKERNEL_SCHED_CORE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/base/stats.h"
#include "src/base/time.h"
#include "src/simkernel/costs.h"
#include "src/simkernel/event_loop.h"
#include "src/simkernel/sched_class.h"
#include "src/simkernel/task.h"

namespace enoki {

struct MachineSpec {
  MachineSpec() = default;
  MachineSpec(int ncpus_in, int nodes_in, std::string name_in)
      : ncpus(ncpus_in), nodes(nodes_in), name(std::move(name_in)) {}

  int ncpus = 8;
  int nodes = 1;
  std::string name = "1-socket i7-9700 (8 cores)";
  // SMT topology hint: when true, adjacent CPU ids (0,1), (2,3), ... are
  // hyperthread siblings on one physical core. Off by default so every
  // pre-existing config is byte-identical.
  bool smt_pairs = false;
  // Explicit per-CPU NUMA node map. Empty means the historical layout of
  // `nodes` contiguous blocks of ncpus/nodes CPUs each.
  std::vector<int> node_of;
  // Warm-path hint: Start() pre-sizes the event loop's slab pool for
  // ncpus * this many concurrently-live events, so steady state never pays a
  // mid-run slab growth. 0 (default) keeps the historical demand-growth
  // behavior; a hint that proves small only costs the growth the pool would
  // have paid anyway. Simulation output is identical either way — warming
  // moves allocations, never events.
  int warm_events_per_cpu = 0;

  int NodeOfCpu(int cpu) const {
    if (cpu >= 0 && cpu < static_cast<int>(node_of.size())) {
      return node_of[cpu];
    }
    return cpu / (ncpus / nodes);
  }

  // The SMT sibling of `cpu`, or -1 on machines without SMT.
  int SiblingOfCpu(int cpu) const { return smt_pairs ? (cpu ^ 1) : -1; }

  // The 8-core one-socket machine used for most of the paper's evaluation.
  static MachineSpec OneSocket8() { return MachineSpec{8, 1, "1-socket i7-9700 (8 cores)"}; }

  // The 80-core two-socket Xeon Gold 6138 machine used for scalability tests.
  static MachineSpec TwoSocket80() {
    return MachineSpec{80, 2, "2-socket Xeon Gold 6138 (80 cores)"};
  }

  // SMT variant of the 8-thread machine: 4 physical cores x 2 threads.
  static MachineSpec SmtOneSocket8() {
    MachineSpec s{8, 1, "1-socket SMT (4 cores x 2 threads)"};
    s.smt_pairs = true;
    return s;
  }

  // Small two-node machine for NUMA-domain scheduling tests and benches.
  static MachineSpec TwoNode16() { return MachineSpec{16, 2, "2-node NUMA (2x8 cores)"}; }

  // 16 threads, 2 nodes, SMT pairs: every portfolio policy's topology needs
  // are met on one machine (used by the cross-policy upgrade sweeps).
  static MachineSpec PortfolioBox16() {
    MachineSpec s{16, 2, "2-node SMT portfolio box (2x4 cores x 2 threads)"};
    s.smt_pairs = true;
    return s;
  }

  // Large multi-socket boxes for the sharded-engine scaling story. The
  // paper's evaluation tops out at 80 cores; these model the datacenter-class
  // machines the ROADMAP targets.
  static MachineSpec FourNode128() { return MachineSpec{128, 4, "4-node NUMA (4x32 cores)"}; }
  static MachineSpec EightNode256() { return MachineSpec{256, 8, "8-node NUMA (8x32 cores)"}; }

  // Carves one shard (a contiguous group of NUMA nodes) out of this machine.
  // Sharded simulations run one SchedCore per shard: shard `shard` of
  // `nshards` models CPUs [shard*ncpus/nshards, (shard+1)*ncpus/nshards) of
  // the full box, renumbered from 0. Requires nodes % nshards == 0 so shard
  // boundaries coincide with NUMA-node boundaries (no sched domain spans two
  // shards).
  MachineSpec ShardSpec(int shard, int nshards) const {
    ENOKI_CHECK(nshards > 0 && shard >= 0 && shard < nshards);
    ENOKI_CHECK(nodes % nshards == 0 && ncpus % nshards == 0);
    ENOKI_CHECK(node_of.empty());  // explicit maps would need renumbering
    MachineSpec s;
    s.ncpus = ncpus / nshards;
    s.nodes = nodes / nshards;
    s.smt_pairs = smt_pairs;
    s.warm_events_per_cpu = warm_events_per_cpu;  // shard-local warming hint
    s.name = name + " [shard " + std::to_string(shard) + "/" + std::to_string(nshards) + "]";
    return s;
  }
};

class SchedCore {
 public:
  SchedCore(MachineSpec spec, SimCosts costs);

  // Runs this core on an externally owned event loop (one shard of a
  // ShardedEventLoop). The loop must outlive the core. All scheduling events
  // land on `loop`; cross-shard traffic is the caller's business (see
  // ShardedEventLoop::PostCross).
  SchedCore(MachineSpec spec, SimCosts costs, EventLoop* loop);

  ~SchedCore();

  SchedCore(const SchedCore&) = delete;
  SchedCore& operator=(const SchedCore&) = delete;

  // ---- Configuration (before Start) ----

  // Registers a scheduling class. Registration order defines class priority:
  // earlier registrations are tried first by the pick loop (like the
  // stop > dl > rt > fair ordering in Linux).
  // Returns the policy id used by CreateTask.
  int RegisterClass(SchedClass* cls);

  void set_ticks_enabled(bool enabled) { ticks_enabled_ = enabled; }

  // ---- Lifecycle ----

  // Arms per-CPU ticks. Must be called once before running.
  void Start();

  void RunFor(Duration d) { loop_->RunUntil(loop_->now() + d); }
  void RunUntil(Time t) { loop_->RunUntil(t); }

  // Runs until every created task has exited, or `deadline` passes. Returns
  // true if all tasks exited.
  bool RunUntilAllExit(Time deadline);

  // Runs until every task in `tasks` has exited (daemon tasks such as ghOSt
  // agents may keep running), or `deadline` passes.
  bool RunUntilTasksDead(const std::vector<Task*>& tasks, Time deadline) {
    auto all_dead = [&tasks] {
      for (const Task* t : tasks) {
        if (t->state() != TaskState::kDead) {
          return false;
        }
      }
      return true;
    };
    while (loop_->now() < deadline && !all_dead()) {
      if (!loop_->RunOne()) {
        break;
      }
    }
    return all_dead();
  }

  // ---- Task management ----

  Task* CreateTask(std::string name, std::unique_ptr<TaskBody> body, int policy, int nice = 0);
  Task* CreateTaskOn(std::string name, std::unique_ptr<TaskBody> body, int policy, int nice,
                     const CpuMask& affinity);

  // Wakes a blocked task from outside the action system (timers, agents).
  void WakeTaskExternal(Task* t, bool sync = false, int from_cpu = -1);

  // Signals a wait queue from kernel/event context (wakes one waiter or
  // leaves a pending signal), mirroring a task's Action::Wake.
  void Signal(WaitQueue* wq, bool sync = false, int from_cpu = -1) {
    DoWake(wq, sync, from_cpu);
  }

  void SetTaskNice(Task* t, int nice);
  void SetTaskAffinity(Task* t, const CpuMask& mask);

  // sched_setscheduler analog: moves a task to another policy. The old
  // class sees DequeueTask(kDeparted) (Enoki: task_departed, returning the
  // Schedulable token); the new class receives the task as new.
  void SetTaskPolicy(Task* t, int policy);

  Task* FindTask(uint64_t pid) const;

  // ---- Services for SchedClass implementations ----

  void SetNeedResched(int cpu);

  // Ensures `cpu` re-enters the scheduler soon: if idle, schedules a pick;
  // if busy, sends a resched IPI that preempts the current task.
  void KickCpu(int cpu, int from_cpu = -1);

  // Charges scheduler-path overhead to `cpu`; applied at its next dispatch
  // (or folded into the waking task's on-CPU time on the wake path).
  void ChargeCpu(int cpu, Duration d) { cpus_[cpu].pending_charge += d; }

  // Arms a one-shot per-CPU policy timer (hrtimer analog); `cls->TimerFired`
  // runs on expiry. Returns an id usable with CancelClassTimer.
  EventId ArmClassTimer(int cpu, Duration delay, SchedClass* cls);
  void CancelClassTimer(EventId id) { loop_->Cancel(id); }

  // Placement hint for the periodic tick's steady-state re-arm, derived from
  // the cost model's tick period against the event loop's lane horizon.
  DeadlineClass TickDeadlineClass() const;

  // Runtime of a task including its in-progress on-CPU segment.
  Duration TaskRuntime(const Task* t) const;

  // Records that a class moved a queued (runnable, not running) task to
  // another CPU's queue. The class is responsible for its own queue state;
  // the core validates the move and updates the task's CPU.
  void MoveQueuedTask(Task* t, int to_cpu);

  // Starvation detector (soft-lockup / hung-task analog). When the bound is
  // non-zero, each cpu-0 tick scans for tasks that have been runnable but
  // off-CPU for longer than the bound and reports each such task once per
  // runnable episode to its class's OnTaskStarved. Zero disables the scan.
  void set_starvation_bound(Duration bound) { starvation_bound_ = bound; }
  Duration starvation_bound() const { return starvation_bound_; }

  // ---- Introspection ----

  EventLoop& loop() { return *loop_; }
  Time now() const { return loop_->now(); }
  int ncpus() const { return spec_.ncpus; }
  int NodeOf(int cpu) const { return spec_.NodeOfCpu(cpu); }
  int SiblingOf(int cpu) const { return spec_.SiblingOfCpu(cpu); }
  const MachineSpec& spec() const { return spec_; }
  const SimCosts& costs() const { return costs_; }
  SchedClass* ClassForPolicy(int policy) const { return classes_[policy]; }
  int ClassPriority(const SchedClass* cls) const;

  Task* CurrentOn(int cpu) const { return cpus_[cpu].current; }
  bool CpuIdle(int cpu) const {
    return cpus_[cpu].current == nullptr && !cpus_[cpu].in_switch;
  }

  // True while `cpu` is inside the context-switch window: a task has been
  // picked (and left its class's queue) but FinishSwitch has not yet run.
  // Re-policying such a task would double-attach it; callers that sweep
  // tasks across classes (watchdog fallback) must wait the window out.
  bool CpuInSwitch(int cpu) const { return cpus_[cpu].in_switch; }

  // True while an idle-exit kick (wakeup dispatch) is in flight for `cpu`:
  // the CPU has been sent its resched IPI and will pick shortly. Balancers
  // should not steal from a queue whose CPU is already waking.
  bool CpuKickPending(int cpu) const { return cpus_[cpu].kick_pending; }

  uint64_t context_switches() const { return context_switches_; }
  uint64_t coalesced_ipis() const { return coalesced_ipis_; }
  uint64_t live_task_count() const { return live_tasks_; }
  const LatencyRecorder& wake_latency() const { return wake_latency_; }
  LatencyRecorder& mutable_wake_latency() { return wake_latency_; }
  const std::vector<std::unique_ptr<Task>>& tasks() const { return tasks_; }
  uint64_t pick_errors() const { return pick_errors_; }
  void CountPickError() { ++pick_errors_; }

  // Hook invoked with (task, wake-to-run latency) at every dispatch following
  // a wakeup; workloads use it for per-task latency attribution.
  void set_wake_latency_hook(std::function<void(Task*, Duration)> hook) {
    wake_latency_hook_ = std::move(hook);
  }

  // Order-sensitive digest of this core's observable state: simulated time,
  // events executed, context switches, per-CPU occupancy, per-task progress,
  // and the wake-latency distribution. Two runs that made identical
  // scheduling decisions in identical order produce identical fingerprints;
  // the sharded determinism tests compare these across thread counts.
  uint64_t Fingerprint() const;

 private:
  friend class SimContext;

  struct CpuState {
    Task* current = nullptr;
    bool in_switch = false;
    bool need_resched = false;
    bool kick_pending = false;
    // Arrival time of the resched IPI currently in flight to this (busy)
    // CPU, or kTimeMax when none. Used to coalesce same-tick wakeups: a
    // second IPI arriving at the identical instant would re-run the exact
    // same preempt check, so it is elided (batched wakeup delivery).
    Time ipi_inflight_at = kTimeMax;
    Time idle_since = 0;
    Duration pending_charge = 0;
    uint64_t idle_ticks = 0;
    EventId tick_event = kInvalidEventId;
  };

  // Idle CPUs attempt a balance pass every this many ticks (nohz idle
  // balancing analog).
  static constexpr uint64_t kIdleBalanceTicks = 4;

  void WarmLoop();
  void WakeTaskInternal(Task* t, bool sync, int from_cpu, bool is_new);
  void Schedule(int cpu);
  Task* PickNext(int cpu);
  void Dispatch(int cpu, Task* next);
  void FinishSwitch(int cpu, Task* next);
  void RunCurrent(int cpu);
  void OnComputeDone(int cpu, Task* t);
  void PreemptCurrent(int cpu);
  void BlockCurrent(int cpu, WaitQueue* wq);
  void SleepCurrent(int cpu, Duration d);
  void YieldCurrent(int cpu);
  void ExitCurrent(int cpu);
  void DoWake(WaitQueue* wq, bool sync, int from_cpu);
  void StopCompute(Task* t);
  void AccrueRuntime(Task* t);
  Duration IdleExitCost(int cpu) const;
  void TickFired(int cpu);
  void CheckStarvation();
  Duration TakeCharge(int cpu) {
    const Duration d = cpus_[cpu].pending_charge;
    cpus_[cpu].pending_charge = 0;
    return d;
  }

  const MachineSpec spec_;
  const SimCosts costs_;
  // The loop events land on. Owned by default; a sharded run hands in one
  // shard's loop instead (owned_loop_ stays null).
  std::unique_ptr<EventLoop> owned_loop_;
  EventLoop* loop_;
  std::vector<CpuState> cpus_;
  std::vector<SchedClass*> classes_;  // priority order
  std::vector<std::unique_ptr<Task>> tasks_;  // index pid-1: the pid table
  uint64_t next_pid_ = 1;
  uint64_t live_tasks_ = 0;
  uint64_t context_switches_ = 0;
  uint64_t coalesced_ipis_ = 0;
  uint64_t pick_errors_ = 0;
  bool ticks_enabled_ = true;
  bool started_ = false;
  Duration starvation_bound_ = 0;  // 0 = detector off
  LatencyRecorder wake_latency_;
  std::function<void(Task*, Duration)> wake_latency_hook_;
};

}  // namespace enoki

#endif  // SRC_SIMKERNEL_SCHED_CORE_H_
