// Reproduces Table 2: lines of code per component. For the paper's Rust/C
// split we report the corresponding components of this C++ reproduction and
// print the paper's numbers alongside.

#include <cstdio>
#include <string>
#include <vector>

namespace enoki {
namespace {

int CountLines(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return 0;
  }
  int lines = 0;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      ++lines;
    }
  }
  std::fclose(f);
  return lines;
}

int CountAll(const std::vector<std::string>& files) {
  int total = 0;
  for (const auto& f : files) {
    total += CountLines("src/" + f);
  }
  return total;
}

void Run() {
  std::printf("Table 2: lines of code per component (this reproduction vs paper)\n\n");
  struct Row {
    const char* component;
    int loc;
    const char* paper;
  };
  const Row rows[] = {
      {"Enoki-C analog (runtime + upgrade + hints)",
       CountAll({"enoki/runtime.h", "enoki/runtime.cc"}), "Enoki-C: 2411 (C)"},
      {"Scheduler libEnoki (API/trait, tokens, queues)",
       CountAll({"enoki/api.h", "enoki/lock.h", "enoki/lock.cc"}),
       "Scheduler libEnoki: 962 (Rust, 94 unsafe)"},
      {"Other libEnoki analog (simulated kernel substrate)",
       CountAll({"simkernel/sched_core.h", "simkernel/sched_core.cc", "simkernel/task.h",
                 "simkernel/sched_class.h", "simkernel/event_loop.h", "simkernel/costs.h",
                 "simkernel/bodies.h"}),
       "Other libEnoki: 5870 (Rust, 2858 unsafe)"},
      {"Userspace record", CountAll({"enoki/record.h", "enoki/record.cc"}),
       "Userspace record: 95 (Rust)"},
      {"Replay", CountAll({"enoki/replay.h", "enoki/replay.cc"}), "Replay: 646 (Rust)"},
  };
  std::printf("%-50s %8s   %s\n", "Component", "LOC", "(paper)");
  for (const Row& r : rows) {
    std::printf("%-50s %8d   %s\n", r.component, r.loc, r.paper);
  }

  std::printf("\nScheduler module sizes (paper section 4.2):\n");
  const Row scheds[] = {
      {"Enoki WFQ", CountAll({"sched/wfq.h", "sched/wfq.cc"}), "646 (vs 6247 for CFS)"},
      {"Enoki Shinjuku", CountAll({"sched/shinjuku.h"}), "285"},
      {"Locality aware", CountAll({"sched/locality.h"}), "203"},
      {"Arachne core arbiter", CountAll({"sched/arbiter.h"}), "579"},
      {"Nest-style warm-core (extension)", CountAll({"sched/nest.h"}), "n/a (extension)"},
      {"Native CFS baseline", CountAll({"sched/cfs.h", "sched/cfs.cc"}), "6247 (Linux CFS)"},
  };
  for (const Row& r : scheds) {
    std::printf("%-50s %8d   paper: %s\n", r.component, r.loc, r.paper);
  }
  std::printf("\n(Run from the repository root so relative paths resolve.)\n");
}

}  // namespace
}  // namespace enoki

int main() {
  enoki::Run();
  return 0;
}
