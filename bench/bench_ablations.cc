// Ablations for the design choices called out in DESIGN.md section 4.
// Each section isolates one mechanism and sweeps its knob:
//   A1  synchronous in-kernel calls vs asynchronous agent (ghOSt agent cost)
//   A2  deep-C-state exit latency (the wakeup-latency driver in Tables 4/6)
//   A3  WFQ idle-time stealing on/off (work conservation)
//   A4  Shinjuku preemption slice (latency vs churn)
//   A5  upgrade quiesce drain vs core count
//   A6  warm-core (Nest-style) placement vs spreading, few tasks on many cores

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "bench/sweep_runner.h"
#include "src/sched/fifo.h"
#include "src/sched/nest.h"
#include "src/sched/shinjuku.h"
#include "src/sched/wfq.h"
#include "src/workloads/dispersive.h"
#include "src/workloads/pipe.h"
#include "src/workloads/schbench.h"

namespace enoki {
namespace {

void AblateAgentCost() {
  std::printf("A1: pipe latency vs ghOSt agent op cost (async upcall penalty)\n");
  std::printf("%14s %18s\n", "agent op (us)", "pipe us/wakeup");
  const std::vector<Duration> ops = {400, 800, 1'700, 3'400, 6'800};
  std::vector<double> usec(ops.size());
  SweepRunner sweep;
  for (size_t i = 0; i < ops.size(); ++i) {
    sweep.Add([&, i] {
      SimCosts costs;
      costs.ghost_agent_op_ns = ops[i];
      Stack s = MakeGhostStack(GhostClass::Mode::kSol, CpuMask::All(7), 7,
                               MachineSpec::OneSocket8(), costs);
      PipeBenchConfig cfg;
      cfg.messages = 20'000;
      usec[i] = RunPipeBench(*s.core, s.policy, cfg).usec_per_wakeup;
    });
  }
  sweep.Run();
  for (size_t i = 0; i < ops.size(); ++i) {
    std::printf("%14.1f %18.2f\n", static_cast<double>(ops[i]) / 1e3, usec[i]);
  }
  std::printf("  -> the Enoki equivalent is a ~0.125 us synchronous call: the agent\n"
              "     path costs scale directly into scheduling latency.\n\n");
}

void AblateIdleExit() {
  std::printf("A2: schbench wakeup p50 vs deep C-state exit latency\n");
  std::printf("%16s %14s %14s\n", "deep exit (us)", "CFS p50 (us)", "CFS p99 (us)");
  const std::vector<Duration> exits = {0, 5'000, 15'000, 30'000, 60'000};
  std::vector<std::pair<Duration, Duration>> pcts(exits.size());
  SweepRunner sweep;
  for (size_t i = 0; i < exits.size(); ++i) {
    sweep.Add([&, i] {
      SimCosts costs;
      costs.deep_idle_exit_ns = exits[i];
      Stack s = MakeCfsStack(MachineSpec::OneSocket8(), costs);
      SchbenchConfig cfg;
      cfg.warmup = Milliseconds(200);
      cfg.runtime = Seconds(2);
      const auto r = RunSchbench(*s.core, s.policy, cfg);
      pcts[i] = {r.p50, r.p99};
    });
  }
  sweep.Run();
  for (size_t i = 0; i < exits.size(); ++i) {
    std::printf("%16.1f %14.0f %14.0f\n", static_cast<double>(exits[i]) / 1e3,
                ToMicroseconds(pcts[i].first), ToMicroseconds(pcts[i].second));
  }
  std::printf("  -> Table 6's locality-hint win is exactly this cost avoided.\n\n");
}

// WFQ with stealing disabled: the paper's "otherwise, our scheduler does
// not rebalance tasks" minus the one mechanism it does have.
class NoStealWfq : public WfqSched {
 public:
  explicit NoStealWfq(int policy) : WfqSched(policy) {}
  std::optional<uint64_t> Balance(int cpu) override { return std::nullopt; }
};

void AblateStealing() {
  std::printf("A3: WFQ idle-time stealing on/off (24 uneven tasks, 8 cores)\n");
  auto run = [](bool steal) {
    Stack s = steal ? MakeEnokiStack(std::make_unique<WfqSched>(0))
                    : MakeEnokiStack(std::make_unique<NoStealWfq>(0));
    for (int i = 0; i < 24; ++i) {
      s.core->CreateTask("t",
                         std::make_unique<CpuBoundBody>(Milliseconds(5 + 2 * i), Milliseconds(1)),
                         s.policy);
    }
    s.core->Start();
    s.core->RunUntilAllExit(Seconds(30));
    return ToSeconds(s.core->now());
  };
  double with_steal = 0.0;
  double without = 0.0;
  SweepRunner sweep;
  sweep.Add([&] { with_steal = run(true); });
  sweep.Add([&] { without = run(false); });
  sweep.Run();
  std::printf("  makespan with stealing:    %.3f s\n", with_steal);
  std::printf("  makespan without stealing: %.3f s (%.1f%% worse)\n", without,
              (without / with_steal - 1.0) * 100.0);
  std::printf("  -> the single balance rule buys most of CFS-grade work conservation.\n\n");
}

void AblateShinjukuSlice() {
  std::printf("A4: Shinjuku preemption slice vs dispersive-load p99 (40 kreq/s)\n");
  std::printf("%12s %14s %16s\n", "slice (us)", "p99 (us)", "achieved kreq/s");
  CpuMask workers;
  for (int i = 2; i < 7; ++i) {
    workers.Set(i);
  }
  const std::vector<Duration> slices = {5'000, 10'000, 20'000, 50'000, 200'000};
  std::vector<std::pair<Duration, double>> results(slices.size());
  SweepRunner sweep;
  for (size_t i = 0; i < slices.size(); ++i) {
    sweep.Add([&, i] {
      Stack s = MakeEnokiStack(std::make_unique<ShinjukuSched>(0, slices[i], workers));
      DispersiveConfig cfg;
      cfg.rate_per_sec = 40'000;
      cfg.runtime = Seconds(2);
      cfg.worker_policy = s.policy;
      cfg.cfs_policy = s.cfs_policy;
      const auto r = RunDispersive(*s.core, cfg);
      results[i] = {r.p99, r.achieved_kreq_per_sec};
    });
  }
  sweep.Run();
  for (size_t i = 0; i < slices.size(); ++i) {
    std::printf("%12.0f %14.1f %16.1f\n", static_cast<double>(slices[i]) / 1e3,
                ToMicroseconds(results[i].first), results[i].second);
  }
  std::printf("  -> short slices bound GET latency behind 10 ms scans; very long\n"
              "     slices degenerate toward CFS behaviour. The paper picked 10 us.\n\n");
}

void AblateUpgradeDrain() {
  std::printf("A5: upgrade pause vs core count (reader drain scaling)\n");
  std::printf("%8s %12s\n", "cores", "pause (us)");
  for (int ncpus : {2, 8, 16, 40, 80}) {
    SchedCore core(MachineSpec{ncpus, ncpus >= 40 ? 2 : 1, "ablate"}, SimCosts{});
    EnokiRuntime runtime(std::make_unique<WfqSched>(0));
    CfsClass cfs;
    core.RegisterClass(&runtime);
    core.RegisterClass(&cfs);
    const auto report = runtime.Upgrade(std::make_unique<WfqSched>(0));
    std::printf("%8d %12.2f\n", ncpus, ToMicroseconds(report.pause_ns));
  }
  std::printf("  -> linear in cores: each CPU's in-flight read-locked call drains.\n\n");
}

void AblateWarmCores() {
  std::printf("A6: Nest-style warm-core placement vs spreading (3 tasks, 8 cores)\n");
  // Three sleep/wake tasks on an 8-core machine: a spreading scheduler
  // keeps hitting cold cores; the warm-core scheduler reuses the nest.
  auto run = [](bool nest) {
    Stack s = nest ? MakeEnokiStack(std::make_unique<NestSched>(0))
                   : MakeEnokiStack(std::make_unique<FifoSched>(0));
    auto latencies = std::make_shared<LatencyRecorder>();
    s.core->set_wake_latency_hook(
        [latencies](Task* t, Duration lat) { latencies->Record(lat); });
    for (int i = 0; i < 3; ++i) {
      auto step = std::make_shared<int>(0);
      // Slightly different periods desynchronize the tasks, as independent
      // service threads would be.
      const Duration sleep = Microseconds(480) + Microseconds(57) * i;
      s.core->CreateTask("t", MakeFnBody([step, sleep](SimContext&) -> Action {
                           *step ^= 1;
                           if (*step == 1) {
                             return Action::Compute(Microseconds(20));
                           }
                           return Action::Sleep(sleep);
                         }),
                         s.policy);
    }
    s.core->Start();
    s.core->RunFor(Seconds(2));
    return std::make_pair(latencies->Percentile(50.0), latencies->Percentile(99.0));
  };
  std::pair<Duration, Duration> fifo_r;
  std::pair<Duration, Duration> nest_r;
  SweepRunner sweep;
  sweep.Add([&] { fifo_r = run(false); });
  sweep.Add([&] { nest_r = run(true); });
  sweep.Run();
  const auto [fifo_p50, fifo_p99] = fifo_r;
  const auto [nest_p50, nest_p99] = nest_r;
  std::printf("  round-robin spread: wake p50 %5.1f us, p99 %5.1f us\n",
              ToMicroseconds(fifo_p50), ToMicroseconds(fifo_p99));
  std::printf("  Nest (warm cores):  wake p50 %5.1f us, p99 %5.1f us\n",
              ToMicroseconds(nest_p50), ToMicroseconds(nest_p99));
  std::printf("  -> reusing warm cores avoids deep C-state exits (the Nest paper's\n"
              "     effect), in a %d-line Enoki scheduler.\n\n", 230);
}

}  // namespace
}  // namespace enoki

int main() {
  std::printf("Design ablations (DESIGN.md section 4)\n\n");
  enoki::AblateAgentCost();
  enoki::AblateIdleExit();
  enoki::AblateStealing();
  enoki::AblateShinjukuSlice();
  enoki::AblateUpgradeDrain();
  enoki::AblateWarmCores();
  return 0;
}
