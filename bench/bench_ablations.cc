// Ablations for the design choices called out in DESIGN.md section 4.
// Each section isolates one mechanism and sweeps its knob:
//   A1  synchronous in-kernel calls vs asynchronous agent (ghOSt agent cost)
//   A2  deep-C-state exit latency (the wakeup-latency driver in Tables 4/6)
//   A3  WFQ idle-time stealing on/off (work conservation)
//   A4  Shinjuku preemption slice (latency vs churn)
//   A5  upgrade quiesce drain vs core count
//   A6  warm-core (Nest-style) placement vs spreading, few tasks on many cores
//   A7  central dispatch pulse interval (latency vs pulse overhead)
//   A8  pair cookie diversity (the sibling-exclusion security tax)
//   A9  layered batch-layer weight (arbitration starvation control)
//   A10 rusty greedy-steal ratio (NUMA penalty guard)

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "bench/sweep_runner.h"
#include "src/sched/ext/central.h"
#include "src/sched/ext/layered.h"
#include "src/sched/ext/pair.h"
#include "src/sched/ext/rusty.h"
#include "src/sched/fifo.h"
#include "src/sched/nest.h"
#include "src/sched/shinjuku.h"
#include "src/sched/wfq.h"
#include "src/workloads/dispersive.h"
#include "src/workloads/pipe.h"
#include "src/workloads/portfolio.h"
#include "src/workloads/schbench.h"

namespace enoki {
namespace {

void AblateAgentCost() {
  std::printf("A1: pipe latency vs ghOSt agent op cost (async upcall penalty)\n");
  std::printf("%14s %18s\n", "agent op (us)", "pipe us/wakeup");
  const std::vector<Duration> ops = {400, 800, 1'700, 3'400, 6'800};
  std::vector<double> usec(ops.size());
  SweepRunner sweep;
  for (size_t i = 0; i < ops.size(); ++i) {
    sweep.Add([&, i] {
      SimCosts costs;
      costs.ghost_agent_op_ns = ops[i];
      Stack s = MakeGhostStack(GhostClass::Mode::kSol, CpuMask::All(7), 7,
                               MachineSpec::OneSocket8(), costs);
      PipeBenchConfig cfg;
      cfg.messages = 20'000;
      usec[i] = RunPipeBench(*s.core, s.policy, cfg).usec_per_wakeup;
    });
  }
  sweep.Run();
  for (size_t i = 0; i < ops.size(); ++i) {
    std::printf("%14.1f %18.2f\n", static_cast<double>(ops[i]) / 1e3, usec[i]);
  }
  std::printf("  -> the Enoki equivalent is a ~0.125 us synchronous call: the agent\n"
              "     path costs scale directly into scheduling latency.\n\n");
}

void AblateIdleExit() {
  std::printf("A2: schbench wakeup p50 vs deep C-state exit latency\n");
  std::printf("%16s %14s %14s\n", "deep exit (us)", "CFS p50 (us)", "CFS p99 (us)");
  const std::vector<Duration> exits = {0, 5'000, 15'000, 30'000, 60'000};
  std::vector<std::pair<Duration, Duration>> pcts(exits.size());
  SweepRunner sweep;
  for (size_t i = 0; i < exits.size(); ++i) {
    sweep.Add([&, i] {
      SimCosts costs;
      costs.deep_idle_exit_ns = exits[i];
      Stack s = MakeCfsStack(MachineSpec::OneSocket8(), costs);
      SchbenchConfig cfg;
      cfg.warmup = Milliseconds(200);
      cfg.runtime = Seconds(2);
      const auto r = RunSchbench(*s.core, s.policy, cfg);
      pcts[i] = {r.p50, r.p99};
    });
  }
  sweep.Run();
  for (size_t i = 0; i < exits.size(); ++i) {
    std::printf("%16.1f %14.0f %14.0f\n", static_cast<double>(exits[i]) / 1e3,
                ToMicroseconds(pcts[i].first), ToMicroseconds(pcts[i].second));
  }
  std::printf("  -> Table 6's locality-hint win is exactly this cost avoided.\n\n");
}

// WFQ with stealing disabled: the paper's "otherwise, our scheduler does
// not rebalance tasks" minus the one mechanism it does have.
class NoStealWfq : public WfqSched {
 public:
  explicit NoStealWfq(int policy) : WfqSched(policy) {}
  std::optional<uint64_t> Balance(int cpu) override { return std::nullopt; }
};

void AblateStealing() {
  std::printf("A3: WFQ idle-time stealing on/off (24 uneven tasks, 8 cores)\n");
  auto run = [](bool steal) {
    Stack s = steal ? MakeEnokiStack(std::make_unique<WfqSched>(0))
                    : MakeEnokiStack(std::make_unique<NoStealWfq>(0));
    for (int i = 0; i < 24; ++i) {
      s.core->CreateTask("t",
                         std::make_unique<CpuBoundBody>(Milliseconds(5 + 2 * i), Milliseconds(1)),
                         s.policy);
    }
    s.core->Start();
    s.core->RunUntilAllExit(Seconds(30));
    return ToSeconds(s.core->now());
  };
  double with_steal = 0.0;
  double without = 0.0;
  SweepRunner sweep;
  sweep.Add([&] { with_steal = run(true); });
  sweep.Add([&] { without = run(false); });
  sweep.Run();
  std::printf("  makespan with stealing:    %.3f s\n", with_steal);
  std::printf("  makespan without stealing: %.3f s (%.1f%% worse)\n", without,
              (without / with_steal - 1.0) * 100.0);
  std::printf("  -> the single balance rule buys most of CFS-grade work conservation.\n\n");
}

void AblateShinjukuSlice() {
  std::printf("A4: Shinjuku preemption slice vs dispersive-load p99 (40 kreq/s)\n");
  std::printf("%12s %14s %16s\n", "slice (us)", "p99 (us)", "achieved kreq/s");
  CpuMask workers;
  for (int i = 2; i < 7; ++i) {
    workers.Set(i);
  }
  const std::vector<Duration> slices = {5'000, 10'000, 20'000, 50'000, 200'000};
  std::vector<std::pair<Duration, double>> results(slices.size());
  SweepRunner sweep;
  for (size_t i = 0; i < slices.size(); ++i) {
    sweep.Add([&, i] {
      Stack s = MakeEnokiStack(std::make_unique<ShinjukuSched>(0, slices[i], workers));
      DispersiveConfig cfg;
      cfg.rate_per_sec = 40'000;
      cfg.runtime = Seconds(2);
      cfg.worker_policy = s.policy;
      cfg.cfs_policy = s.cfs_policy;
      const auto r = RunDispersive(*s.core, cfg);
      results[i] = {r.p99, r.achieved_kreq_per_sec};
    });
  }
  sweep.Run();
  for (size_t i = 0; i < slices.size(); ++i) {
    std::printf("%12.0f %14.1f %16.1f\n", static_cast<double>(slices[i]) / 1e3,
                ToMicroseconds(results[i].first), results[i].second);
  }
  std::printf("  -> short slices bound GET latency behind 10 ms scans; very long\n"
              "     slices degenerate toward CFS behaviour. The paper picked 10 us.\n\n");
}

void AblateUpgradeDrain() {
  std::printf("A5: upgrade pause vs core count (reader drain scaling)\n");
  std::printf("%8s %12s\n", "cores", "pause (us)");
  for (int ncpus : {2, 8, 16, 40, 80}) {
    SchedCore core(MachineSpec{ncpus, ncpus >= 40 ? 2 : 1, "ablate"}, SimCosts{});
    EnokiRuntime runtime(std::make_unique<WfqSched>(0));
    CfsClass cfs;
    core.RegisterClass(&runtime);
    core.RegisterClass(&cfs);
    const auto report = runtime.Upgrade(std::make_unique<WfqSched>(0));
    std::printf("%8d %12.2f\n", ncpus, ToMicroseconds(report.pause_ns));
  }
  std::printf("  -> linear in cores: each CPU's in-flight read-locked call drains.\n\n");
}

void AblateWarmCores() {
  std::printf("A6: Nest-style warm-core placement vs spreading (3 tasks, 8 cores)\n");
  // Three sleep/wake tasks on an 8-core machine: a spreading scheduler
  // keeps hitting cold cores; the warm-core scheduler reuses the nest.
  auto run = [](bool nest) {
    Stack s = nest ? MakeEnokiStack(std::make_unique<NestSched>(0))
                   : MakeEnokiStack(std::make_unique<FifoSched>(0));
    auto latencies = std::make_shared<LatencyRecorder>();
    s.core->set_wake_latency_hook(
        [latencies](Task* t, Duration lat) { latencies->Record(lat); });
    for (int i = 0; i < 3; ++i) {
      auto step = std::make_shared<int>(0);
      // Slightly different periods desynchronize the tasks, as independent
      // service threads would be.
      const Duration sleep = Microseconds(480) + Microseconds(57) * i;
      s.core->CreateTask("t", MakeFnBody([step, sleep](SimContext&) -> Action {
                           *step ^= 1;
                           if (*step == 1) {
                             return Action::Compute(Microseconds(20));
                           }
                           return Action::Sleep(sleep);
                         }),
                         s.policy);
    }
    s.core->Start();
    s.core->RunFor(Seconds(2));
    return std::make_pair(latencies->Percentile(50.0), latencies->Percentile(99.0));
  };
  std::pair<Duration, Duration> fifo_r;
  std::pair<Duration, Duration> nest_r;
  SweepRunner sweep;
  sweep.Add([&] { fifo_r = run(false); });
  sweep.Add([&] { nest_r = run(true); });
  sweep.Run();
  const auto [fifo_p50, fifo_p99] = fifo_r;
  const auto [nest_p50, nest_p99] = nest_r;
  std::printf("  round-robin spread: wake p50 %5.1f us, p99 %5.1f us\n",
              ToMicroseconds(fifo_p50), ToMicroseconds(fifo_p99));
  std::printf("  Nest (warm cores):  wake p50 %5.1f us, p99 %5.1f us\n",
              ToMicroseconds(nest_p50), ToMicroseconds(nest_p99));
  std::printf("  -> reusing warm cores avoids deep C-state exits (the Nest paper's\n"
              "     effect), in a %d-line Enoki scheduler.\n\n", 230);
}

void AblateCentralPulse() {
  std::printf("A7: central dispatch pulse interval vs tenant wake latency\n");
  std::printf("%12s %12s %12s %14s\n", "pulse (us)", "p50 (us)", "p99 (us)", "pulses");
  const std::vector<Duration> pulses = {Microseconds(20), Microseconds(50), Microseconds(100),
                                        Microseconds(250), Milliseconds(1)};
  std::vector<TenantMixResult> results(pulses.size());
  std::vector<uint64_t> fired(pulses.size());
  SweepRunner sweep;
  for (size_t i = 0; i < pulses.size(); ++i) {
    sweep.Add([&, i] {
      auto module = std::make_unique<CentralSched>(0, 0, pulses[i]);
      CentralSched* central = module.get();
      Stack s = MakeEnokiStack(std::move(module));
      TenantMixConfig cfg;
      cfg.rounds = 400;
      // A spinner on every worker CPU: a waking tenant always lands behind
      // one, so the pulse interval directly bounds its wait.
      cfg.batch_tasks = 7;
      results[i] = RunTenantMix(*s.core, s.policy, cfg);
      fired[i] = central->dispatch_pulses();
    });
  }
  sweep.Run();
  for (size_t i = 0; i < pulses.size(); ++i) {
    std::printf("%12.0f %12.1f %12.1f %14llu\n", static_cast<double>(pulses[i]) / 1e3,
                results[i].p50 / 1e3, results[i].p99 / 1e3,
                static_cast<unsigned long long>(fired[i]));
  }
  std::printf("  -> the pulse bounds how long a spinner can overstay its slice; past\n"
              "     the tenants' think time it stops mattering and only adds timers.\n\n");
}

void AblatePairCookies() {
  std::printf("A8: pair cookie diversity (sibling exclusion tax, SMT 4x2)\n");
  std::printf("%10s %14s %12s %14s\n", "cookies", "makespan ms", "p99 (us)", "compat stalls");
  const std::vector<int> cookie_counts = {1, 2, 4};
  std::vector<SiblingPairsResult> results(cookie_counts.size());
  std::vector<uint64_t> stalls(cookie_counts.size());
  SweepRunner sweep;
  for (size_t i = 0; i < cookie_counts.size(); ++i) {
    sweep.Add([&, i] {
      auto module = std::make_unique<PairSched>(0);
      PairSched* pair = module.get();
      Stack s = MakeEnokiStack(std::move(module), MachineSpec::SmtOneSocket8());
      SiblingPairsConfig cfg;
      cfg.cookies = cookie_counts[i];
      cfg.tasks_per_cookie = 16 / cookie_counts[i];  // constant total: 2x oversubscribed
      cfg.rounds = 600;
      cfg.hint_runtime = s.runtime.get();
      cfg.hint_queue = s.runtime->CreateHintQueue(64);
      results[i] = RunSiblingPairs(*s.core, s.policy, cfg);
      stalls[i] = pair->compat_stalls();
    });
  }
  sweep.Run();
  for (size_t i = 0; i < cookie_counts.size(); ++i) {
    std::printf("%10d %14.2f %12.1f %14llu\n", cookie_counts[i], results[i].makespan / 1e6,
                results[i].p99 / 1e3, static_cast<unsigned long long>(stalls[i]));
  }
  std::printf("  -> one cookie never stalls a sibling; each extra security domain\n"
              "     forces more half-idle cores, the L1TF mitigation cost.\n\n");
}

void AblateLayerWeight() {
  std::printf("A9: layered batch-layer weight vs tier latency (8 cores)\n");
  std::printf("%14s %16s %12s %12s\n", "batch weight", "frontend p99us", "mid p99us",
              "batch cpus");
  const std::vector<uint64_t> weights = {10, 25, 100, 400};
  std::vector<ServiceTiersResult> results(weights.size());
  SweepRunner sweep;
  for (size_t i = 0; i < weights.size(); ++i) {
    sweep.Add([&, i] {
      auto layers = LayeredSched::DefaultThreeTier(8);
      layers.back().weight = weights[i];
      Stack s = MakeEnokiStack(std::make_unique<LayeredSched>(0, std::move(layers)));
      ServiceTiersConfig cfg;
      cfg.rounds = 600;
      // Saturate every CPU with batch work so the weight arbitration (not
      // spare capacity) decides who runs in the open CPUs.
      cfg.batch_tasks = 10;
      results[i] = RunServiceTiers(*s.core, s.policy, cfg);
    });
  }
  sweep.Run();
  for (size_t i = 0; i < weights.size(); ++i) {
    std::printf("%14llu %16.1f %12.1f %12.2f\n", static_cast<unsigned long long>(weights[i]),
                results[i].frontend_p99 / 1e3, results[i].mid_p99 / 1e3,
                results[i].batch_cpus);
  }
  std::printf("  -> the latency layer's guaranteed CPUs hold its p99 flat; weight\n"
              "     only shifts how much of the open capacity batch work wins.\n\n");
}

void AblateGreedyRatio() {
  std::printf("A10: rusty greedy-steal ratio vs imbalance makespan (2 nodes)\n");
  std::printf("%12s %14s %14s %14s\n", "ratio (%)", "makespan ms", "cross steals",
              "local steals");
  // 1'000'000% never triggers: greedy stealing effectively off.
  const std::vector<uint64_t> ratios = {125, 200, 400, 1'000'000};
  std::vector<SocketImbalanceResult> results(ratios.size());
  std::vector<std::pair<uint64_t, uint64_t>> steals(ratios.size());
  SweepRunner sweep;
  for (size_t i = 0; i < ratios.size(); ++i) {
    sweep.Add([&, i] {
      auto module = std::make_unique<RustySched>(0, ratios[i]);
      RustySched* rusty = module.get();
      Stack s = MakeEnokiStack(std::move(module), MachineSpec::TwoNode16());
      SocketImbalanceConfig cfg;
      cfg.tasks = 32;
      cfg.work_total = Milliseconds(12);
      results[i] = RunSocketImbalance(*s.core, s.policy, cfg);
      steals[i] = {rusty->cross_steals(), rusty->local_steals()};
    });
  }
  sweep.Run();
  for (size_t i = 0; i < ratios.size(); ++i) {
    std::printf("%12llu %14.2f %14llu %14llu\n",
                static_cast<unsigned long long>(ratios[i]), results[i].makespan / 1e6,
                static_cast<unsigned long long>(steals[i].first),
                static_cast<unsigned long long>(steals[i].second));
  }
  std::printf("  -> without greedy steals node 1 idles while node 0 drains its pin\n"
              "     backlog; an eager ratio converges fastest on this workload.\n\n");
}

}  // namespace
}  // namespace enoki

int main() {
  std::printf("Design ablations (DESIGN.md section 4)\n\n");
  enoki::AblateAgentCost();
  enoki::AblateIdleExit();
  enoki::AblateStealing();
  enoki::AblateShinjukuSlice();
  enoki::AblateUpgradeDrain();
  enoki::AblateWarmCores();
  enoki::AblateCentralPulse();
  enoki::AblatePairCookies();
  enoki::AblateLayerWeight();
  enoki::AblateGreedyRatio();
  return 0;
}
