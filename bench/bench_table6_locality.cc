// Reproduces Table 6: wakeup latency for the modified schbench benchmark
// (2 message threads x 2 workers) under four configurations:
//   CFS (default placement), CFS with everything pinned to one core
//   (cgroups), the locality scheduler with random placement (no hints), and
//   the locality scheduler with co-location hints.
//
// Paper reference (us):
//            CFS   CFS One Core   Random   Hints
//   p50       33        17          46       2
//   p99       50     32032          49       4

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sched/locality.h"
#include "src/workloads/schbench.h"

namespace enoki {
namespace {

SchbenchConfig BaseConfig() {
  SchbenchConfig cfg;
  cfg.message_threads = 2;
  cfg.workers_per_thread = 2;
  cfg.worker_work_ns = Microseconds(3);  // schbench workers do little work
  cfg.warmup = Seconds(1);
  cfg.runtime = Seconds(10);
  return cfg;
}

void Run() {
  std::printf("Table 6: modified schbench wakeup latency (us), 2 msg x 2 workers\n\n");

  struct Row {
    const char* name;
    Duration p50;
    Duration p99;
    double paper_p50;
    double paper_p99;
  };
  Row rows[4];

  {
    Stack s = MakeCfsStack();
    auto r = RunSchbench(*s.core, s.policy, BaseConfig());
    rows[0] = {"CFS", r.p50, r.p99, 33, 50};
  }
  {
    Stack s = MakeCfsStack();
    SchbenchConfig cfg = BaseConfig();
    cfg.pin_all_to_one_core = true;  // the cgroup/cpuset configuration
    auto r = RunSchbench(*s.core, s.policy, cfg);
    rows[1] = {"CFS One Core", r.p50, r.p99, 17, 32032};
  }
  {
    Stack s = MakeEnokiStack(std::make_unique<LocalitySched>(0, /*use_hints=*/false));
    auto r = RunSchbench(*s.core, s.policy, BaseConfig());
    rows[2] = {"Random", r.p50, r.p99, 46, 49};
  }
  {
    Stack s = MakeEnokiStack(std::make_unique<LocalitySched>(0, /*use_hints=*/true));
    SchbenchConfig cfg = BaseConfig();
    cfg.hint_runtime = s.runtime.get();
    cfg.hint_queue = s.runtime->CreateHintQueue(1024);
    auto r = RunSchbench(*s.core, s.policy, cfg);
    rows[3] = {"Hints", r.p50, r.p99, 2, 4};
  }

  std::printf("%-14s %10s %10s %12s %12s\n", "Config", "p50 (us)", "p99 (us)", "(paper p50)",
              "(paper p99)");
  for (const Row& r : rows) {
    std::printf("%-14s %10.0f %10.0f %12.0f %12.0f\n", r.name, ToMicroseconds(r.p50),
                ToMicroseconds(r.p99), r.paper_p50, r.paper_p99);
  }
  std::printf("\nShape check: hints give order-of-magnitude lower latency than CFS/Random;\n"
              "one-core pinning improves the median but destroys the tail.\n");
}

}  // namespace
}  // namespace enoki

int main() {
  enoki::Run();
  return 0;
}
