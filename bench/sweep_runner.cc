#include "bench/sweep_runner.h"

#include <atomic>
#include <cstdlib>
#include <thread>

namespace enoki {

int SweepRunner::ThreadCount(size_t njobs) {
  int n = 0;
  if (const char* env = std::getenv("ENOKI_SWEEP_THREADS")) {
    n = std::atoi(env);
  }
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) {
      n = 1;
    }
  }
  if (static_cast<size_t>(n) > njobs) {
    n = static_cast<int>(njobs);
  }
  return n < 1 ? 1 : n;
}

void SweepRunner::Run() {
  const int nthreads = ThreadCount(jobs_.size());
  if (nthreads <= 1) {
    for (auto& job : jobs_) {
      job();
    }
    jobs_.clear();
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs_.size()) {
        return;
      }
      jobs_[i]();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    pool.emplace_back(worker);
  }
  for (auto& t : pool) {
    t.join();
  }
  jobs_.clear();
}

}  // namespace enoki
