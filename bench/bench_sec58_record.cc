// Reproduces section 5.8: record and replay performance on the WFQ pipe
// benchmark.
//
// Paper reference: the pipe benchmark takes ~4 s normally, ~30 s with record
// active (~7.5x), and the replay takes ~3 minutes (~45x), with replay time
// dominated by blocking threads until their recorded turn.

#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/enoki/replay.h"
#include "src/sched/wfq.h"
#include "src/workloads/pipe.h"

namespace enoki {
namespace {

constexpr uint64_t kMessages = 20'000;  // scaled from the paper's 1M

void Run() {
  std::printf("Section 5.8: record and replay on the WFQ pipe benchmark (%llu messages)\n\n",
              static_cast<unsigned long long>(kMessages));

  // --- Normal operation ---
  Duration normal_ns;
  {
    Stack s = MakeEnokiStack(std::make_unique<WfqSched>(0));
    PipeBenchConfig cfg;
    cfg.messages = kMessages;
    normal_ns = RunPipeBench(*s.core, s.policy, cfg).elapsed_ns;
  }

  // --- Record mode ---
  Recorder recorder(1 << 22);
  Duration record_ns;
  {
    SetLockHooks(&recorder);
    Stack s = MakeEnokiStack(std::make_unique<WfqSched>(0));
    s.runtime->SetRecorder(&recorder);
    // The userspace record task drains the ring to the log, as in the paper.
    auto drain = [&recorder](SimContext&) -> Action {
      recorder.Drain();
      return Action::Sleep(Milliseconds(1));
    };
    s.core->CreateTaskOn("record-task", MakeFnBody(drain), s.cfs_policy, 0, CpuMask::Single(7));
    PipeBenchConfig cfg;
    cfg.messages = kMessages;
    record_ns = RunPipeBench(*s.core, s.policy, cfg).elapsed_ns;
    SetLockHooks(nullptr);
  }
  auto log = recorder.TakeLog();

  std::printf("normal:   %8.3f s (simulated)\n", ToSeconds(normal_ns));
  std::printf("record:   %8.3f s (simulated), slowdown %.1fx (paper: ~7.5x)\n",
              ToSeconds(record_ns),
              static_cast<double>(record_ns) / static_cast<double>(normal_ns));
  std::printf("log:      %zu entries, %llu dropped\n", log.size(),
              static_cast<unsigned long long>(recorder.dropped()));

  // --- Replay (real threads, real wall-clock) ---
  ReplayEngine engine(std::move(log), 8);
  engine.InstallHooks();
  auto module = std::make_unique<WfqSched>(0);
  module->Attach(engine.env());
  const auto result = engine.Run(module.get());
  std::printf("replay:   %8.3f s wall clock, %llu calls, %llu mismatches, %llu lock waits\n",
              result.replay_seconds, static_cast<unsigned long long>(result.calls_replayed),
              static_cast<unsigned long long>(result.response_mismatches),
              static_cast<unsigned long long>(result.lock_blocks));
  std::printf("\nShape check: record costs several-x over normal; replay is far slower than\n"
              "the original (thread-per-message + enforced lock order), and validates with\n"
              "zero response mismatches.\n");
}

}  // namespace
}  // namespace enoki

int main() {
  enoki::Run();
  return 0;
}
