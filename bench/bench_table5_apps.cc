// Reproduces Table 5: CFS vs Enoki WFQ across the NAS Parallel Benchmark
// analogs and the Phoronix Multicore analogs (36 benchmarks), reporting the
// per-benchmark performance delta and the geometric mean.
//
// Paper reference: max slowdown 8.57%, geometric mean 0.74%, with a few
// speedups (up to -8.03%) from the simplified balancing.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/sweep_runner.h"
#include "src/base/stats.h"
#include "src/sched/ext/central.h"
#include "src/sched/ext/layered.h"
#include "src/sched/ext/pair.h"
#include "src/sched/ext/rusty.h"
#include "src/sched/wfq.h"
#include "src/workloads/apps.h"
#include "src/workloads/portfolio.h"

namespace enoki {
namespace {

void Run() {
  const MachineSpec spec = MachineSpec::OneSocket8();
  std::printf("Table 5: CFS vs Enoki WFQ on the NAS + Phoronix Multicore analogs\n");
  std::printf("machine: %s; score = work units/s (higher is better)\n\n", spec.name.c_str());
  std::printf("%-28s %12s %12s %9s\n", "Benchmark", "CFS", "WFQ", "delta");

  const auto suite = Table5Suite(spec.ncpus);

  // Each (benchmark, scheduler) pair is an independent simulation: run them
  // all on the sweep pool, then report in suite order.
  std::vector<AppResult> cfs_results(suite.size());
  std::vector<AppResult> wfq_results(suite.size());
  SweepRunner sweep;
  for (size_t i = 0; i < suite.size(); ++i) {
    sweep.Add([&, i] {
      Stack cfs = MakeCfsStack(spec);
      cfs_results[i] = RunApp(*cfs.core, cfs.policy, suite[i]);
    });
    sweep.Add([&, i] {
      Stack wfq = MakeEnokiStack(std::make_unique<WfqSched>(0), spec);
      wfq_results[i] = RunApp(*wfq.core, wfq.policy, suite[i]);
    });
  }
  sweep.Run();

  std::vector<double> ratios;
  double max_slowdown = 0.0;
  double max_speedup = 0.0;
  for (size_t i = 0; i < suite.size(); ++i) {
    const AppSpec& spec_entry = suite[i];
    const AppResult& cfs_result = cfs_results[i];
    const AppResult& wfq_result = wfq_results[i];
    if (!cfs_result.completed || !wfq_result.completed) {
      std::printf("%-28s DID NOT COMPLETE\n", spec_entry.name.c_str());
      continue;
    }
    // Positive delta = WFQ slower, matching the paper's sign convention.
    const double delta = (cfs_result.score - wfq_result.score) / cfs_result.score * 100.0;
    max_slowdown = std::max(max_slowdown, delta);
    max_speedup = std::min(max_speedup, delta);
    ratios.push_back(cfs_result.score / wfq_result.score);
    std::printf("%-28s %12.2f %12.2f %8.2f%%\n", spec_entry.name.c_str(), cfs_result.score,
                wfq_result.score, delta);
  }
  const double geomean_pct = (GeometricMean(ratios) - 1.0) * 100.0;
  std::printf("\nGeometric mean slowdown: %.2f%% (paper: 0.74%%)\n", geomean_pct);
  std::printf("Max slowdown: %.2f%% (paper: 8.57%%), max speedup: %.2f%% (paper: -8.03%%)\n",
              max_slowdown, max_speedup);
}

// ---- Policy portfolio -----------------------------------------------------
// Each sched_ext portfolio policy on the workload it was built for, against
// CFS on the same machine; central additionally against ghOSt SOL, the
// centralized-dispatch baseline it is modeled after.

void RunPortfolio() {
  std::printf("\nPolicy portfolio: each sched_ext policy on its paired workload\n\n");

  // central vs CFS vs ghOSt SOL: tenant wake-to-run latency under batch load.
  {
    const MachineSpec spec = MachineSpec::OneSocket8();
    TenantMixConfig cfg;
    cfg.rounds = 400;
    TenantMixResult central;
    TenantMixResult cfs;
    TenantMixResult sol;
    SweepRunner sweep;
    sweep.Add([&] {
      Stack s = MakeEnokiStack(std::make_unique<CentralSched>(0), spec);
      central = RunTenantMix(*s.core, s.policy, cfg);
    });
    sweep.Add([&] {
      Stack s = MakeCfsStack(spec);
      cfs = RunTenantMix(*s.core, s.policy, cfg);
    });
    sweep.Add([&] {
      // SOL's global agent spins on CPU 7; workers get the rest, like the
      // central scheduler's reserved dispatch CPU.
      CpuMask workers;
      for (int c = 0; c < spec.ncpus - 1; ++c) {
        workers.Set(c);
      }
      Stack s = MakeGhostStack(GhostClass::Mode::kSol, workers, spec.ncpus - 1, spec);
      sol = RunTenantMix(*s.core, s.policy, cfg);
    });
    sweep.Run();
    std::printf("tenant mix (central's workload): wake-to-run latency, lower is better\n");
    std::printf("  %-12s %12s %12s %10s\n", "scheduler", "p50 (us)", "p99 (us)", "complete");
    std::printf("  %-12s %12.1f %12.1f %10s\n", "central", central.p50 / 1e3, central.p99 / 1e3,
                central.completed ? "yes" : "NO");
    std::printf("  %-12s %12.1f %12.1f %10s\n", "ghost-sol", sol.p50 / 1e3, sol.p99 / 1e3,
                sol.completed ? "yes" : "NO");
    std::printf("  %-12s %12.1f %12.1f %10s\n\n", "cfs", cfs.p50 / 1e3, cfs.p99 / 1e3,
                cfs.completed ? "yes" : "NO");
  }

  // pair vs CFS: the throughput cost of the sibling cookie rule.
  {
    const MachineSpec spec = MachineSpec::SmtOneSocket8();
    SiblingPairsConfig cfg;
    cfg.rounds = 600;
    SiblingPairsResult pair;
    SiblingPairsResult cfs;
    SweepRunner sweep;
    sweep.Add([&] {
      Stack s = MakeEnokiStack(std::make_unique<PairSched>(0), spec);
      SiblingPairsConfig c = cfg;
      c.hint_runtime = s.runtime.get();
      c.hint_queue = s.runtime->CreateHintQueue(64);
      pair = RunSiblingPairs(*s.core, s.policy, c);
    });
    sweep.Add([&] {
      Stack s = MakeCfsStack(spec);
      cfs = RunSiblingPairs(*s.core, s.policy, cfg);
    });
    sweep.Run();
    const double tax = cfs.makespan > 0
                           ? (static_cast<double>(pair.makespan) / cfs.makespan - 1.0) * 100.0
                           : 0.0;
    std::printf("sibling pairs (pair's workload): makespan, 2 cookie domains\n");
    std::printf("  %-12s %12s %12s %10s\n", "scheduler", "makespan ms", "p99 (us)", "complete");
    std::printf("  %-12s %12.2f %12.1f %10s\n", "pair", pair.makespan / 1e6, pair.p99 / 1e3,
                pair.completed ? "yes" : "NO");
    std::printf("  %-12s %12.2f %12.1f %10s\n", "cfs", cfs.makespan / 1e6, cfs.p99 / 1e3,
                cfs.completed ? "yes" : "NO");
    std::printf("  security tax: %+.1f%% makespan vs CFS (isolation is not free)\n\n", tax);
  }

  // layered vs CFS: latency-tier p99 with batch load underneath.
  {
    const MachineSpec spec = MachineSpec::OneSocket8();
    ServiceTiersConfig cfg;
    cfg.rounds = 600;
    ServiceTiersResult layered;
    ServiceTiersResult cfs;
    SweepRunner sweep;
    sweep.Add([&] {
      Stack s = MakeEnokiStack(
          std::make_unique<LayeredSched>(0, LayeredSched::DefaultThreeTier(spec.ncpus)), spec);
      layered = RunServiceTiers(*s.core, s.policy, cfg);
    });
    sweep.Add([&] {
      Stack s = MakeCfsStack(spec);
      cfs = RunServiceTiers(*s.core, s.policy, cfg);
    });
    sweep.Run();
    std::printf("service tiers (layered's workload): per-tier wake-to-run p99\n");
    std::printf("  %-12s %14s %12s %12s %10s\n", "scheduler", "frontend p99us", "mid p99us",
                "batch cpus", "complete");
    std::printf("  %-12s %14.1f %12.1f %12.2f %10s\n", "layered", layered.frontend_p99 / 1e3,
                layered.mid_p99 / 1e3, layered.batch_cpus, layered.completed ? "yes" : "NO");
    std::printf("  %-12s %14.1f %12.1f %12.2f %10s\n\n", "cfs", cfs.frontend_p99 / 1e3,
                cfs.mid_p99 / 1e3, cfs.batch_cpus, cfs.completed ? "yes" : "NO");
  }

  // rusty vs CFS: makespan after a node-0 pin is released mid-run.
  {
    const MachineSpec spec = MachineSpec::TwoNode16();
    SocketImbalanceConfig cfg;
    cfg.tasks = 32;
    cfg.work_total = Milliseconds(12);
    SocketImbalanceResult rusty;
    SocketImbalanceResult cfs;
    SweepRunner sweep;
    sweep.Add([&] {
      Stack s = MakeEnokiStack(std::make_unique<RustySched>(0), spec);
      rusty = RunSocketImbalance(*s.core, s.policy, cfg);
    });
    sweep.Add([&] {
      Stack s = MakeCfsStack(spec);
      cfs = RunSocketImbalance(*s.core, s.policy, cfg);
    });
    sweep.Run();
    std::printf("socket imbalance (rusty's workload): makespan after pin release\n");
    std::printf("  %-12s %12s %10s\n", "scheduler", "makespan ms", "complete");
    std::printf("  %-12s %12.2f %10s\n", "rusty", rusty.makespan / 1e6,
                rusty.completed ? "yes" : "NO");
    std::printf("  %-12s %12.2f %10s\n", "cfs", cfs.makespan / 1e6,
                cfs.completed ? "yes" : "NO");
  }
}

}  // namespace
}  // namespace enoki

int main() {
  enoki::Run();
  enoki::RunPortfolio();
  return 0;
}
