// Reproduces Table 5: CFS vs Enoki WFQ across the NAS Parallel Benchmark
// analogs and the Phoronix Multicore analogs (36 benchmarks), reporting the
// per-benchmark performance delta and the geometric mean.
//
// Paper reference: max slowdown 8.57%, geometric mean 0.74%, with a few
// speedups (up to -8.03%) from the simplified balancing.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/sweep_runner.h"
#include "src/base/stats.h"
#include "src/sched/wfq.h"
#include "src/workloads/apps.h"

namespace enoki {
namespace {

void Run() {
  const MachineSpec spec = MachineSpec::OneSocket8();
  std::printf("Table 5: CFS vs Enoki WFQ on the NAS + Phoronix Multicore analogs\n");
  std::printf("machine: %s; score = work units/s (higher is better)\n\n", spec.name.c_str());
  std::printf("%-28s %12s %12s %9s\n", "Benchmark", "CFS", "WFQ", "delta");

  const auto suite = Table5Suite(spec.ncpus);

  // Each (benchmark, scheduler) pair is an independent simulation: run them
  // all on the sweep pool, then report in suite order.
  std::vector<AppResult> cfs_results(suite.size());
  std::vector<AppResult> wfq_results(suite.size());
  SweepRunner sweep;
  for (size_t i = 0; i < suite.size(); ++i) {
    sweep.Add([&, i] {
      Stack cfs = MakeCfsStack(spec);
      cfs_results[i] = RunApp(*cfs.core, cfs.policy, suite[i]);
    });
    sweep.Add([&, i] {
      Stack wfq = MakeEnokiStack(std::make_unique<WfqSched>(0), spec);
      wfq_results[i] = RunApp(*wfq.core, wfq.policy, suite[i]);
    });
  }
  sweep.Run();

  std::vector<double> ratios;
  double max_slowdown = 0.0;
  double max_speedup = 0.0;
  for (size_t i = 0; i < suite.size(); ++i) {
    const AppSpec& spec_entry = suite[i];
    const AppResult& cfs_result = cfs_results[i];
    const AppResult& wfq_result = wfq_results[i];
    if (!cfs_result.completed || !wfq_result.completed) {
      std::printf("%-28s DID NOT COMPLETE\n", spec_entry.name.c_str());
      continue;
    }
    // Positive delta = WFQ slower, matching the paper's sign convention.
    const double delta = (cfs_result.score - wfq_result.score) / cfs_result.score * 100.0;
    max_slowdown = std::max(max_slowdown, delta);
    max_speedup = std::min(max_speedup, delta);
    ratios.push_back(cfs_result.score / wfq_result.score);
    std::printf("%-28s %12.2f %12.2f %8.2f%%\n", spec_entry.name.c_str(), cfs_result.score,
                wfq_result.score, delta);
  }
  const double geomean_pct = (GeometricMean(ratios) - 1.0) * 100.0;
  std::printf("\nGeometric mean slowdown: %.2f%% (paper: 0.74%%)\n", geomean_pct);
  std::printf("Max slowdown: %.2f%% (paper: 8.57%%), max speedup: %.2f%% (paper: -8.03%%)\n",
              max_slowdown, max_speedup);
}

}  // namespace
}  // namespace enoki

int main() {
  enoki::Run();
  return 0;
}
