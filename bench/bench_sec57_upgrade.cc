// Reproduces section 5.7: live-upgrade service interruption, measured with
// schbench running, on both machines.
//
// Paper reference: 1.5 us on the 8-core one-socket machine (2x2 schbench);
// 9.9 us / 10.1 us on the 80-core two-socket machine (2x2 and 2x40).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sched/wfq.h"
#include "src/workloads/schbench.h"

namespace enoki {
namespace {

struct Result {
  double pause_us = 0;
  Duration p99_before = 0;
  Duration p99_with_upgrades = 0;
};

Result Measure(MachineSpec spec, int workers) {
  // Baseline tail without upgrades.
  Duration baseline_p99;
  {
    Stack s = MakeEnokiStack(std::make_unique<WfqSched>(0), spec);
    SchbenchConfig cfg;
    cfg.workers_per_thread = workers;
    cfg.warmup = Milliseconds(500);
    cfg.runtime = Seconds(3);
    baseline_p99 = RunSchbench(*s.core, s.policy, cfg).p99;
  }
  // Same run with three live upgrades; average the measured pauses.
  Stack s = MakeEnokiStack(std::make_unique<WfqSched>(0), spec);
  SchbenchConfig cfg;
  cfg.workers_per_thread = workers;
  cfg.warmup = Milliseconds(500);
  cfg.runtime = Seconds(3);
  double pause_sum = 0;
  int pauses = 0;
  EnokiRuntime* runtime = s.runtime.get();
  for (int i = 1; i <= 3; ++i) {
    s.core->loop().ScheduleAfter(Seconds(1) * i, [runtime, &pause_sum, &pauses] {
      auto report = runtime->Upgrade(std::make_unique<WfqSched>(0));
      if (report.ok) {
        pause_sum += ToMicroseconds(report.pause_ns);
        ++pauses;
      }
    });
  }
  auto run = RunSchbench(*s.core, s.policy, cfg);
  Result r;
  r.pause_us = pauses > 0 ? pause_sum / pauses : 0;
  r.p99_before = baseline_p99;
  r.p99_with_upgrades = run.p99;
  return r;
}

void Run() {
  std::printf("Section 5.7: live upgrade pause (schbench running, 3 upgrades averaged)\n\n");
  std::printf("%-40s %8s %10s %14s %16s\n", "Machine / workload", "pause", "(paper)",
              "schbench p99", "p99 w/ upgrades");
  struct Case {
    MachineSpec spec;
    int workers;
    double paper_us;
  };
  const Case cases[] = {
      {MachineSpec::OneSocket8(), 2, 1.5},
      {MachineSpec::TwoSocket80(), 2, 9.9},
      {MachineSpec::TwoSocket80(), 40, 10.1},
  };
  for (const Case& c : cases) {
    const Result r = Measure(c.spec, c.workers);
    std::printf("%-33s 2x%-3d %6.1fus %8.1fus %12.0fus %14.0fus\n", c.spec.name.c_str(),
                c.workers, r.pause_us, c.paper_us, ToMicroseconds(r.p99_before),
                ToMicroseconds(r.p99_with_upgrades));
  }
  std::printf("\nShape check: pause grows ~linearly with core count; upgrades do not move\n"
              "the schbench tail (the paper needed kernel timing instrumentation too).\n");
}

}  // namespace
}  // namespace enoki

int main() {
  enoki::Run();
  return 0;
}
