// Reproduces Figure 2: the Shinjuku dispersive-load experiment on RocksDB.
//   2a: 99th-percentile latency vs throughput, RocksDB alone
//       (CFS vs ghOSt-Shinjuku vs Enoki-Shinjuku; log-scale latency).
//   2b: the same with a co-located CFS batch application.
//   2c: CPU share obtained by the batch application.
//
// Workload (as in the paper / ghOSt): 99.5% 4us GETs, 0.5% 10ms scans,
// 50 workers on 5 reserved cores, load generator and background work on
// separate cores, ghOSt agent on its own core. RocksDB nice -20, batch 19.
//
// Paper shape: both Shinjuku implementations hold p99 in the tens of us up
// to ~80 kreq/s (Enoki ~30% below ghOSt at high load); CFS p99 is orders of
// magnitude higher. Batch CPU share: CFS ~ Enoki >> ghOSt (agent burns a
// core and pays userspace overhead).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "bench/sweep_runner.h"
#include "src/sched/shinjuku.h"
#include "src/workloads/dispersive.h"

namespace enoki {
namespace {

CpuMask WorkerMask() {
  CpuMask m;
  for (int i = 2; i < 7; ++i) {
    m.Set(i);
  }
  return m;
}

DispersiveConfig BaseConfig(double rate, bool batch) {
  DispersiveConfig cfg;
  cfg.rate_per_sec = rate;
  cfg.warmup = Milliseconds(500);
  cfg.runtime = Seconds(3);
  cfg.batch_tasks = batch ? 5 : 0;
  return cfg;
}

struct Point {
  double kreq = 0;
  Duration p99 = 0;
  double batch_cpus = 0;
};

Point RunCfs(double rate, bool batch) {
  Stack s = MakeCfsStack();
  DispersiveConfig cfg = BaseConfig(rate, batch);
  cfg.worker_policy = s.cfs_policy;
  cfg.cfs_policy = s.cfs_policy;
  cfg.worker_nice = -20;  // RocksDB priority -20, batch 19
  auto r = RunDispersive(*s.core, cfg);
  return {r.achieved_kreq_per_sec, r.p99, r.batch_cpus};
}

Point RunEnokiShinjuku(double rate, bool batch) {
  Stack s = MakeEnokiStack(std::make_unique<ShinjukuSched>(
      0, ShinjukuSched::kDefaultPreemptionSliceNs, WorkerMask()));
  DispersiveConfig cfg = BaseConfig(rate, batch);
  cfg.worker_policy = s.policy;
  cfg.cfs_policy = s.cfs_policy;
  auto r = RunDispersive(*s.core, cfg);
  return {r.achieved_kreq_per_sec, r.p99, r.batch_cpus};
}

Point RunGhostShinjuku(double rate, bool batch) {
  // Agent spins on core 7; workers on cores 2-6.
  Stack s = MakeGhostStack(GhostClass::Mode::kShinjuku, WorkerMask(), 7);
  DispersiveConfig cfg = BaseConfig(rate, batch);
  cfg.worker_policy = s.policy;
  cfg.cfs_policy = s.cfs_policy;
  auto r = RunDispersive(*s.core, cfg);
  return {r.achieved_kreq_per_sec, r.p99, r.batch_cpus};
}

void Run() {
  const std::vector<double> rates = {10e3, 20e3, 30e3, 40e3, 50e3, 60e3, 70e3, 80e3};

  // Every sweep point is an independent simulation: compute them all on the
  // pool, then print in program order (byte-identical for any thread count).
  std::vector<Point> cfs_pts[2];
  std::vector<Point> ghost_pts[2];
  std::vector<Point> enoki_pts[2];
  SweepRunner sweep;
  for (int b = 0; b < 2; ++b) {
    cfs_pts[b].resize(rates.size());
    ghost_pts[b].resize(rates.size());
    enoki_pts[b].resize(rates.size());
    for (size_t i = 0; i < rates.size(); ++i) {
      const double rate = rates[i];
      const bool batch = b == 1;
      sweep.Add([&, b, i, rate, batch] { cfs_pts[b][i] = RunCfs(rate, batch); });
      sweep.Add([&, b, i, rate, batch] { ghost_pts[b][i] = RunGhostShinjuku(rate, batch); });
      sweep.Add([&, b, i, rate, batch] { enoki_pts[b][i] = RunEnokiShinjuku(rate, batch); });
    }
  }
  sweep.Run();

  for (bool batch : {false, true}) {
    const int b = batch ? 1 : 0;
    std::printf("Figure 2%s: RocksDB dispersive load%s\n", batch ? "b/2c" : "a",
                batch ? " co-located with a batch app (5 spinners, nice 19)" : "");
    std::printf("%-10s | %-22s | %-22s | %-22s\n", "", "CFS", "ghOSt-Shinjuku",
                "Enoki-Shinjuku");
    std::printf("%-10s | %10s %11s | %10s %11s | %10s %11s\n", "offered", "kreq/s", "p99(us)",
                "kreq/s", "p99(us)", "kreq/s", "p99(us)");
    for (size_t i = 0; i < rates.size(); ++i) {
      const Point& c = cfs_pts[b][i];
      const Point& g = ghost_pts[b][i];
      const Point& e = enoki_pts[b][i];
      std::printf("%8.0fk | %10.1f %11.1f | %10.1f %11.1f | %10.1f %11.1f\n", rates[i] / 1e3,
                  c.kreq, ToMicroseconds(c.p99), g.kreq, ToMicroseconds(g.p99), e.kreq,
                  ToMicroseconds(e.p99));
    }
    if (batch) {
      std::printf("\nFigure 2c: batch application CPU share (CPUs)\n");
      std::printf("%-10s %10s %16s %16s\n", "offered", "CFS", "ghOSt-Shinjuku",
                  "Enoki-Shinjuku");
      for (size_t i = 0; i < rates.size(); ++i) {
        std::printf("%8.0fk %10.2f %16.2f %16.2f\n", rates[i] / 1e3, cfs_pts[b][i].batch_cpus,
                    ghost_pts[b][i].batch_cpus, enoki_pts[b][i].batch_cpus);
      }
    }
    std::printf("\n");
  }
  std::printf("Shape check: Shinjuku p99 stays ~10-100us across the sweep while CFS p99 is\n"
              "100x+ higher; batch CPU share: CFS ~ Enoki >> ghOSt.\n");
}

}  // namespace
}  // namespace enoki

int main() {
  enoki::Run();
  return 0;
}
