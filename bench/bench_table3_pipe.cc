// Reproduces Table 3: scheduler latency for the perf bench sched pipe
// benchmark, in us per wakeup, for every scheduler on one and two cores.
//
// Paper reference (8-core i7-9700):
//             CFS  ghOSt-SOL  ghOSt-FIFO  WFQ  Shinjuku  Locality  Arachne
//   One core  3.0     6.0        9.1      3.6    4.0       3.5       0.1
//   Two cores 3.6     5.8        7.0      4.0    4.4       3.9       0.2

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sched/locality.h"
#include "src/sched/shinjuku.h"
#include "src/sched/wfq.h"
#include "src/workloads/pipe.h"

namespace enoki {
namespace {

constexpr uint64_t kMessages = 100'000;

double RunOn(Stack stack, bool same_core, bool user_threads = false) {
  PipeBenchConfig cfg;
  cfg.messages = kMessages;
  cfg.same_core = same_core;
  const PipeBenchResult result =
      user_threads ? RunUserThreadPipeBench(*stack.core, stack.policy, cfg)
                   : RunPipeBench(*stack.core, stack.policy, cfg);
  if (!result.completed) {
    std::fprintf(stderr, "WARNING: pipe run did not complete\n");
  }
  return result.usec_per_wakeup;
}

void Run() {
  std::printf("Table 3: perf bench sched pipe, message latency (us per wakeup)\n");
  std::printf("machine: %s, %llu messages\n\n", MachineSpec::OneSocket8().name.c_str(),
              static_cast<unsigned long long>(kMessages));

  struct Row {
    const char* name;
    double one_core;
    double two_cores;
    double paper_one;
    double paper_two;
  };
  Row rows[7];

  auto cfs = [&](bool same) { return RunOn(MakeCfsStack(), same); };
  rows[0] = {"CFS", cfs(true), cfs(false), 3.0, 3.6};

  auto sol = [&](bool same) {
    return RunOn(MakeGhostStack(GhostClass::Mode::kSol, CpuMask::All(7), 7), same);
  };
  rows[1] = {"GhOSt SOL", sol(true), sol(false), 6.0, 5.8};

  auto fifo = [&](bool same) {
    return RunOn(MakeGhostStack(GhostClass::Mode::kPerCpuFifo, CpuMask::All(8), -1), same);
  };
  rows[2] = {"GhOSt FIFO", fifo(true), fifo(false), 9.1, 7.0};

  auto wfq = [&](bool same) { return RunOn(MakeEnokiStack(std::make_unique<WfqSched>(0)), same); };
  rows[3] = {"WFQ", wfq(true), wfq(false), 3.6, 4.0};

  auto shinjuku = [&](bool same) {
    return RunOn(MakeEnokiStack(std::make_unique<ShinjukuSched>(0)), same);
  };
  rows[4] = {"Shinjuku", shinjuku(true), shinjuku(false), 4.0, 4.4};

  auto locality = [&](bool same) {
    return RunOn(MakeEnokiStack(std::make_unique<LocalitySched>(0, /*use_hints=*/false)), same);
  };
  rows[5] = {"Locality", locality(true), locality(false), 3.5, 3.9};

  // Arachne: user-level threads on one activation, never entering the kernel.
  auto arachne = [&](bool same) { return RunOn(MakeCfsStack(), same, /*user_threads=*/true); };
  rows[6] = {"Arachne", arachne(true), arachne(false), 0.1, 0.2};

  std::printf("%-12s %12s %12s %14s %14s\n", "Scheduler", "One Core", "Two Cores",
              "(paper 1-core)", "(paper 2-core)");
  for (const Row& r : rows) {
    std::printf("%-12s %10.2f %12.2f %14.1f %14.1f\n", r.name, r.one_core, r.two_cores,
                r.paper_one, r.paper_two);
  }
  std::printf("\nShape check: ghOSt schedulers above CFS/Enoki; Enoki adds <1us over CFS;\n"
              "Arachne user-level switching is an order of magnitude below everything.\n");
}

}  // namespace
}  // namespace enoki

int main() {
  enoki::Run();
  return 0;
}
