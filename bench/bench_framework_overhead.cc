// Micro-benchmarks (google-benchmark) for the framework's host-side hot
// paths and the ablation knobs called out in DESIGN.md: the event loop, the
// SPSC hint/record ring, token minting, the end-to-end per-invocation cost
// of the Enoki layer (ablating SimCosts::enoki_call_ns), and the
// simulator's events-per-second rate.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_common.h"
#include "src/base/ring_buffer.h"
#include "src/sched/wfq.h"
#include "src/workloads/pipe.h"

namespace enoki {
namespace {

void BM_EventLoopScheduleRun(benchmark::State& state) {
  EventLoop loop;
  uint64_t sink = 0;
  for (auto _ : state) {
    loop.ScheduleAfter(1, [&sink] { ++sink; });
    loop.RunOne();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_RingBufferPushPop(benchmark::State& state) {
  RingBuffer<HintBlob> ring(1024);
  HintBlob blob;
  for (auto _ : state) {
    ring.Push(blob);
    benchmark::DoNotOptimize(ring.Pop());
  }
}
BENCHMARK(BM_RingBufferPushPop);

void BM_SchedulableMintMove(benchmark::State& state) {
  uint64_t gen = 0;
  for (auto _ : state) {
    Schedulable s = SchedulableMinter::Mint(42, 3, ++gen);
    Schedulable t = std::move(s);
    benchmark::DoNotOptimize(t.pid());
  }
}
BENCHMARK(BM_SchedulableMintMove);

// Simulated pipe latency as a function of the Enoki per-call overhead
// (ablation: 0 ns = free framework, 125 ns = calibrated, 500 ns = heavy).
void BM_PipeLatencyVsEnokiCallCost(benchmark::State& state) {
  const Duration call_ns = static_cast<Duration>(state.range(0));
  double last = 0;
  for (auto _ : state) {
    SimCosts costs;
    costs.enoki_call_ns = call_ns;
    Stack s = MakeEnokiStack(std::make_unique<WfqSched>(0), MachineSpec::OneSocket8(), costs);
    PipeBenchConfig cfg;
    cfg.messages = 2'000;
    last = RunPipeBench(*s.core, s.policy, cfg).usec_per_wakeup;
  }
  state.counters["sim_usec_per_wakeup"] = last;
}
BENCHMARK(BM_PipeLatencyVsEnokiCallCost)->Arg(0)->Arg(125)->Arg(250)->Arg(500);

// Host-side simulator throughput: simulated pipe events per host second.
void BM_SimulatorEventRate(benchmark::State& state) {
  uint64_t events = 0;
  for (auto _ : state) {
    Stack s = MakeCfsStack();
    PipeBenchConfig cfg;
    cfg.messages = 5'000;
    RunPipeBench(*s.core, s.policy, cfg);
    events += s.core->loop().events_executed();
  }
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorEventRate);

}  // namespace
}  // namespace enoki

BENCHMARK_MAIN();
