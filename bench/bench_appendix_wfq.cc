// Reproduces Appendix A.1: WFQ functional equivalence between CFS and the
// Enoki WFQ scheduler.
//
// Paper reference:
//  - 5 CPU-bound tasks: ~4.6 s spread across cores, ~22.2 s co-located;
//  - one task at minimum priority: the other four finish together (~17.6 s)
//    and the low-priority task ~4.4 s later;
//  - one task per core: ~9 s completions with low runtime variance; a
//    forced migration raises WFQ's variance more than CFS's (0.001 s ->
//    0.018 s) because of its simpler rebalancing.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/base/stats.h"
#include "src/sched/wfq.h"
#include "src/workloads/fairness.h"

namespace enoki {
namespace {

constexpr Duration kWork = Seconds(4) + Milliseconds(600);  // ~4.6 s isolated

void PrintCompletions(const char* label, const FairnessResult& result) {
  std::printf("  %-18s", label);
  for (double c : result.completion_seconds) {
    std::printf(" %6.2fs", c);
  }
  std::printf("\n");
}

void Run() {
  std::printf("Appendix A.1: WFQ functional equivalence (CFS vs Enoki WFQ)\n\n");

  // --- Benchmark 1: equal sharing ---
  std::printf("1) Five CPU-bound tasks (paper: ~4.6 s spread, ~22.2 s co-located)\n");
  for (bool same_core : {false, true}) {
    {
      Stack s = MakeCfsStack();
      auto r = RunFairness(*s.core, s.policy, 5, kWork, same_core, {});
      PrintCompletions(same_core ? "CFS one core:" : "CFS spread:", r);
    }
    {
      Stack s = MakeEnokiStack(std::make_unique<WfqSched>(0));
      auto r = RunFairness(*s.core, s.policy, 5, kWork, same_core, {});
      PrintCompletions(same_core ? "WFQ one core:" : "WFQ spread:", r);
    }
  }

  // --- Benchmark 2: weighting ---
  std::printf("\n2) One task at minimum priority, all co-located\n");
  std::printf("   (paper: four tasks ~17.6 s together, low-prio ~4.4 s later)\n");
  {
    Stack s = MakeCfsStack();
    auto r = RunFairness(*s.core, s.policy, 5, kWork, true, {0, 0, 0, 0, kMaxNice});
    PrintCompletions("CFS:", r);
  }
  {
    Stack s = MakeEnokiStack(std::make_unique<WfqSched>(0));
    auto r = RunFairness(*s.core, s.policy, 5, kWork, true, {0, 0, 0, 0, kMaxNice});
    PrintCompletions("WFQ:", r);
  }

  // --- Benchmark 3: placement and migration ---
  std::printf("\n3) One task per core; then force task 0 to another core at t=2 s\n");
  std::printf("   (paper: ~9 s completions; WFQ migration variance 0.018 s vs CFS ~0.001 s)\n");
  const Duration work9 = Seconds(9);
  auto variance_of = [](const FairnessResult& r) {
    StatAccumulator acc;
    for (double c : r.completion_seconds) {
      acc.Record(c);
    }
    return acc.stddev();
  };
  for (bool migrate : {false, true}) {
    {
      Stack s = MakeCfsStack();
      auto r = RunFairness(*s.core, s.policy, 8, work9, false, {}, migrate ? 1 : -1, Seconds(2));
      std::printf("  CFS %-12s stddev of completions: %.4f s\n",
                  migrate ? "(migrated)" : "(no move)", variance_of(r));
    }
    {
      Stack s = MakeEnokiStack(std::make_unique<WfqSched>(0));
      auto r = RunFairness(*s.core, s.policy, 8, work9, false, {}, migrate ? 1 : -1, Seconds(2));
      std::printf("  WFQ %-12s stddev of completions: %.4f s\n",
                  migrate ? "(migrated)" : "(no move)", variance_of(r));
    }
  }
  std::printf("\nShape check: CFS and WFQ agree on sharing, weighting, and placement; WFQ's\n"
              "migration disturbs completion variance more.\n");
}

}  // namespace
}  // namespace enoki

int main() {
  enoki::Run();
  return 0;
}
