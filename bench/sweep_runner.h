// SweepRunner: a thread-pool harness for embarrassingly parallel benchmark
// sweeps.
//
// The paper-reproduction benchmarks sweep offered load (or another axis)
// across many fully independent simulations; serially they dominate bench
// wall-clock. Each sweep point is a closed function of its config — separate
// SchedCore, separate EventLoop, no shared mutable state — so points can run
// on any thread in any order. (The only process-wide state the simulator
// touches is the lock-hook registry, which is a null atomic outside
// record/replay, and the thread-local kthread id.)
//
// Determinism contract: jobs must write results into caller-owned slots
// (e.g. a pre-sized vector indexed by sweep point) and must not print.
// Printing happens after Run() returns, in program order, so stdout is
// byte-identical for any thread count — including 1.
//
// Thread count: ENOKI_SWEEP_THREADS if set (1 disables threading), else the
// hardware concurrency, capped at the job count.

#ifndef BENCH_SWEEP_RUNNER_H_
#define BENCH_SWEEP_RUNNER_H_

#include <functional>
#include <vector>

namespace enoki {

class SweepRunner {
 public:
  // Queues one independent sweep point. Not thread-safe; call before Run().
  void Add(std::function<void()> job) { jobs_.push_back(std::move(job)); }

  // Runs every queued job and waits for completion. Jobs are claimed in
  // submission order (earlier points start first). Clears the queue, so the
  // runner can be reused for a subsequent phase.
  void Run();

  // Threads Run() would use for `njobs` jobs (for reporting).
  static int ThreadCount(size_t njobs);

 private:
  std::vector<std::function<void()>> jobs_;
};

}  // namespace enoki

#endif  // BENCH_SWEEP_RUNNER_H_
