// Simulator hot-path microbenchmark: how fast does the event loop itself go?
//
// ghOSt (SOSP '21) reports scheduler-infrastructure overhead as a first-class
// result; this bench does the same for the simulator substrate every other
// experiment stands on. It drives three representative workloads end to end
// and reports, per workload:
//   - events/sec   : simulated events executed per wall-clock second
//   - ns/event     : wall-clock nanoseconds per simulated event
//   - allocs/event : heap allocations per simulated event (counted by a
//                    global operator new override, so it sees everything)
//
// Flags:
//   --quick                shorter runs (CI perf-smoke)
//   --json=<path>          machine-readable rows (bench_common.h BenchJson)
//   --check-against=<path> compare against a baseline BENCH_simperf.json and
//                          exit nonzero on regression
//   --max-regress=<frac>   regression tolerance for the check (default 0.25)
//   --reps=<n>             repetitions per config (default 3); wall-clock
//                          metrics keep the fastest rep, event counts must
//                          be identical across reps
//   --require-speedup-gate fail (instead of loudly skipping) the shard
//                          speedup gates when the host has < 4 hardware
//                          threads; set by the dedicated multi-core CI job
//   --profile-top          after the throughput table, print each config's
//                          top-5 count-type prof_* rows by value — the next
//                          optimisation round's target, one command away
//
// Besides throughput rows, every config emits prof_* subsystem counters
// (src/base/profile.h): timing-wheel cascades, slab/arena growth, epoch
// barrier and controller decisions. Count-type prof rows are deterministic
// and gated exactly by --check-against; *_ns rows are wall-clock profiling.
//
// The workload mix is chosen to stress the three event-queue behaviours that
// matter: schbench (dense wake/block churn), pipe (long same-pattern chains
// through the Enoki runtime), dispersive (timer-heavy Shinjuku with frequent
// hrtimer cancellation).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include <thread>

#include "bench/bench_common.h"
#include "src/sched/ext/central.h"
#include "src/sched/ext/layered.h"
#include "src/sched/ext/pair.h"
#include "src/sched/ext/rusty.h"
#include "src/sched/shinjuku.h"
#include "src/sched/wfq.h"
#include "src/workloads/dispersive.h"
#include "src/workloads/multitenant.h"
#include "src/workloads/pipe.h"
#include "src/workloads/portfolio.h"
#include "src/workloads/schbench.h"

// ---- Global allocation counter -------------------------------------------
// Replacing operator new in this translation unit affects the whole binary,
// which is exactly what we want: every heap allocation made while a workload
// runs is attributed to it.

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

// The replacement operator new routes through malloc, so the replacement
// delete frees with free(); GCC cannot prove the pairing and warns at every
// new-expression in the file.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace enoki {
namespace {

struct PerfResult {
  std::string name;
  uint64_t events = 0;
  double wall_sec = 0.0;
  uint64_t allocs = 0;
  uint64_t seed = 0;
  int shard_threads = 0;  // 0 = single-loop config (no shard column)
  // Subsystem profile counters (src/base/profile.h), emitted as prof_<name>
  // JSON rows. Count-type counters are deterministic and gated exactly
  // against the baseline — a regression names the subsystem that regressed;
  // *_ns counters are wall-clock and reported but never gated.
  std::vector<std::pair<std::string, double>> counters;

  double events_per_sec() const { return wall_sec > 0 ? events / wall_sec : 0.0; }
  double ns_per_event() const { return events > 0 ? wall_sec * 1e9 / events : 0.0; }
  double allocs_per_event() const {
    return events > 0 ? static_cast<double>(allocs) / events : 0.0;
  }
};

// Snapshot of the process-wide allocation counters, for per-config deltas.
struct GlobalCounterSnap {
  uint64_t arena_chunks = 0;
  uint64_t event_slabs = 0;

  static GlobalCounterSnap Take() {
    GlobalCounterSnap s;
    s.arena_chunks = GlobalCounters::Get().Value(GlobalCounters::kArenaChunks);
    s.event_slabs = GlobalCounters::Get().Value(GlobalCounters::kEventSlabs);
    return s;
  }
};

void AppendWheelCounters(PerfResult* r, const WheelProfile& w) {
  r->counters.emplace_back("prof_wheel_cascades", static_cast<double>(w.cascades));
  r->counters.emplace_back("prof_wheel_bulk_cascades",
                           static_cast<double>(w.bulk_cascades));
  r->counters.emplace_back("prof_wheel_lane_hits", static_cast<double>(w.lane_hits));
  r->counters.emplace_back("prof_wheel_lane_spills", static_cast<double>(w.lane_spills));
  r->counters.emplace_back("prof_wheel_overflow_pulls",
                           static_cast<double>(w.overflow_pulls));
  r->counters.emplace_back("prof_wheel_behind_inserts",
                           static_cast<double>(w.behind_inserts));
  r->counters.emplace_back("prof_wheel_slab_allocs", static_cast<double>(w.slab_allocs));
}

void AppendGlobalCounters(PerfResult* r, const GlobalCounterSnap& before) {
  const GlobalCounterSnap now = GlobalCounterSnap::Take();
  r->counters.emplace_back("prof_arena_chunks",
                           static_cast<double>(now.arena_chunks - before.arena_chunks));
  r->counters.emplace_back("prof_event_slabs",
                           static_cast<double>(now.event_slabs - before.event_slabs));
}

// Repetitions per config: wall-clock metrics keep the best (fastest) rep so
// transient host load cannot fake a hot-path regression, which is what lets
// the CI gate be a hard per-metric check. Event counts must be identical
// across reps — a free determinism assertion on every config.
int g_reps = 3;

// Runs `body(core)` against the stack, measuring the event loop around it.
template <typename MakeStackFn, typename BodyFn>
PerfResult Measure(const std::string& name, uint64_t seed, MakeStackFn make_stack,
                   BodyFn body) {
  PerfResult r;
  r.name = name;
  r.seed = seed;
  for (int rep = 0; rep < std::max(1, g_reps); ++rep) {
    // Snapshot before construction: prof_event_slabs/prof_arena_chunks gate
    // the *whole process* — task creation included, not just the run phase.
    const GlobalCounterSnap snap = GlobalCounterSnap::Take();
    Stack s = make_stack();
    const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
    const auto wall_start = std::chrono::steady_clock::now();
    body(s);
    const auto wall_end = std::chrono::steady_clock::now();
    const uint64_t events = s.core->loop().events_executed();
    const uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
    const double wall_sec = std::chrono::duration<double>(wall_end - wall_start).count();
    if (rep == 0) {
      r.events = events;
      r.allocs = allocs;
      r.wall_sec = wall_sec;
      AppendWheelCounters(&r, s.core->loop().wheel_profile());
      AppendGlobalCounters(&r, snap);
      continue;
    }
    if (events != r.events) {
      std::fprintf(stderr, "DETERMINISM VIOLATION %s: rep %d executed %llu events, rep 0 %llu\n",
                   name.c_str(), rep, static_cast<unsigned long long>(events),
                   static_cast<unsigned long long>(r.events));
      std::exit(2);
    }
    r.wall_sec = std::min(r.wall_sec, wall_sec);
    r.allocs = std::min(r.allocs, allocs);
  }
  return r;
}

// Sharded-engine variant of Measure: events come from the engine (sum over
// shard loops) and every rep's result fingerprint must match — the bench
// doubles as a double-run determinism check on the exact configs it gates.
PerfResult MeasureMt(const std::string& name, const MultitenantConfig& cfg) {
  PerfResult r;
  r.name = name;
  r.seed = cfg.seed;
  r.shard_threads = ShardedEventLoop::ResolveThreads(cfg.shard_threads, cfg.nshards);
  uint64_t fingerprint = 0;
  for (int rep = 0; rep < std::max(1, g_reps); ++rep) {
    // Snapshot before construction (see Measure): the slab-growth gate
    // covers tenant/task creation, which precedes Start().
    const GlobalCounterSnap snap = GlobalCounterSnap::Take();
    MultitenantSim sim(cfg);
    const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
    const auto wall_start = std::chrono::steady_clock::now();
    const MultitenantResult res = sim.Run();
    const auto wall_end = std::chrono::steady_clock::now();
    const uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
    const double wall_sec = std::chrono::duration<double>(wall_end - wall_start).count();
    if (rep == 0) {
      r.events = res.events;
      r.allocs = allocs;
      r.wall_sec = wall_sec;
      fingerprint = res.fingerprint;
      const ShardProfile prof = sim.engine().profile();
      r.counters.emplace_back("prof_epochs", static_cast<double>(prof.epochs));
      r.counters.emplace_back("prof_idle_leaps", static_cast<double>(prof.idle_leaps));
      r.counters.emplace_back("prof_commit_msgs", static_cast<double>(prof.commit_msgs));
      r.counters.emplace_back("prof_commit_batched_msgs",
                              static_cast<double>(prof.batched_msgs));
      r.counters.emplace_back("prof_widens", static_cast<double>(prof.widens));
      r.counters.emplace_back("prof_narrows", static_cast<double>(prof.narrows));
      r.counters.emplace_back("prof_final_window",
                              static_cast<double>(sim.engine().window_ns()));
      AppendWheelCounters(&r, sim.engine().WheelProfileSum());
      AppendGlobalCounters(&r, snap);
      // Wall-clock (host-dependent) profile rows: reported, never gated.
      r.counters.emplace_back("prof_commit_wall_ns", static_cast<double>(prof.commit_ns));
      r.counters.emplace_back("prof_barrier_wall_ns", static_cast<double>(prof.barrier_ns));
      continue;
    }
    if (res.events != r.events || res.fingerprint != fingerprint) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION %s: rep %d events %llu fp %llx, rep 0 %llu/%llx\n",
                   name.c_str(), rep, static_cast<unsigned long long>(res.events),
                   static_cast<unsigned long long>(res.fingerprint),
                   static_cast<unsigned long long>(r.events),
                   static_cast<unsigned long long>(fingerprint));
      std::exit(2);
    }
    r.wall_sec = std::min(r.wall_sec, wall_sec);
    r.allocs = std::min(r.allocs, allocs);
  }
  return r;
}

MultitenantConfig MtConfig(MachineSpec machine, int nshards, int shard_threads, bool quick) {
  MultitenantConfig cfg;
  cfg.machine = machine;
  cfg.nshards = nshards;
  cfg.shard_threads = shard_threads;
  cfg.warmup = Milliseconds(quick ? 10 : 20);
  cfg.runtime = Milliseconds(quick ? 80 : 300);
  cfg.seed = 11;
  return cfg;
}

// Adaptive-epoch variant: the cross-node RPC latency is raised to 100 us so
// the controller has real widening headroom (the clamp is the minimum
// cross-shard latency; at 25 us the window could only grow 20 -> 25 us).
// The flat (nshards=1) twin uses the same latency, so "adaptive sharded vs
// unsharded" still compares the identical logical system.
MultitenantConfig MtAdaptiveConfig(MachineSpec machine, int nshards, int shard_threads,
                                   bool quick) {
  MultitenantConfig cfg = MtConfig(machine, nshards, shard_threads, quick);
  cfg.remote_latency = Microseconds(100);
  cfg.adaptive_epochs = true;
  return cfg;
}

CpuMask ShinjukuWorkerMask() {
  CpuMask m;
  for (int i = 2; i < 7; ++i) {
    m.Set(i);
  }
  return m;
}

std::vector<PerfResult> RunAll(bool quick) {
  std::vector<PerfResult> out;

  // schbench on CFS: wake/block churn through the pure simkernel path.
  out.push_back(Measure(
      "schbench", 0, [] { return MakeCfsStack(); },
      [quick](Stack& s) {
        SchbenchConfig cfg;
        cfg.message_threads = 4;
        cfg.workers_per_thread = 4;
        cfg.warmup = Milliseconds(quick ? 50 : 200);
        cfg.runtime = quick ? Milliseconds(500) : Seconds(4);
        (void)RunSchbench(*s.core, s.policy, cfg);
      }));

  // pipe ping-pong through the Enoki runtime (WFQ): the per-callback message
  // round-trip path.
  out.push_back(Measure(
      "pipe", 0, [] { return MakeEnokiStack(std::make_unique<WfqSched>(0)); },
      [quick](Stack& s) {
        PipeBenchConfig cfg;
        cfg.messages = quick ? 30'000 : 300'000;
        (void)RunPipeBench(*s.core, s.policy, cfg);
      }));

  // dispersive load under Enoki-Shinjuku: hrtimer arm/cancel heavy.
  const uint64_t dispersive_seed = 7;
  out.push_back(Measure(
      "dispersive", dispersive_seed,
      [] {
        return MakeEnokiStack(std::make_unique<ShinjukuSched>(
            0, ShinjukuSched::kDefaultPreemptionSliceNs, ShinjukuWorkerMask()));
      },
      [quick, dispersive_seed](Stack& s) {
        DispersiveConfig cfg;
        cfg.rate_per_sec = 40'000;
        cfg.warmup = Milliseconds(quick ? 50 : 200);
        cfg.runtime = quick ? Milliseconds(500) : Seconds(3);
        cfg.worker_policy = s.policy;
        cfg.cfs_policy = s.cfs_policy;
        cfg.seed = dispersive_seed;
        (void)RunDispersive(*s.core, cfg);
      }));

  // ---- sched_ext policy portfolio: each policy on its paired workload ----

  // central: tickless tenant mix, dispatch pulses from one CPU.
  out.push_back(Measure(
      "central_mix", 1, [] { return MakeEnokiStack(std::make_unique<CentralSched>(0)); },
      [quick](Stack& s) {
        TenantMixConfig cfg;
        cfg.rounds = quick ? 120 : 1'000;
        (void)RunTenantMix(*s.core, s.policy, cfg);
      }));

  // pair: sibling co-scheduling with two adversarial cookie populations,
  // cookies delivered through the module hint queue.
  out.push_back(Measure(
      "pair_gang", 1,
      [] {
        return MakeEnokiStack(std::make_unique<PairSched>(0), MachineSpec::SmtOneSocket8());
      },
      [quick](Stack& s) {
        SiblingPairsConfig cfg;
        cfg.rounds = quick ? 400 : 3'000;
        cfg.hint_runtime = s.runtime.get();
        cfg.hint_queue = s.runtime->CreateHintQueue(64);
        (void)RunSiblingPairs(*s.core, s.policy, cfg);
      }));

  // layered: three-tier service with guaranteed CPUs for the latency layer.
  out.push_back(Measure(
      "layered_tiers", 1,
      [] {
        return MakeEnokiStack(
            std::make_unique<LayeredSched>(0, LayeredSched::DefaultThreeTier(8)));
      },
      [quick](Stack& s) {
        ServiceTiersConfig cfg;
        cfg.rounds = quick ? 400 : 3'000;
        (void)RunServiceTiers(*s.core, s.policy, cfg);
      }));

  // rusty: cross-socket imbalance resolved by greedy domain stealing.
  out.push_back(Measure(
      "rusty_numa", 1,
      [] {
        return MakeEnokiStack(std::make_unique<RustySched>(0), MachineSpec::TwoNode16());
      },
      [quick](Stack& s) {
        SocketImbalanceConfig cfg;
        cfg.tasks = quick ? 32 : 48;
        cfg.work_total = quick ? Milliseconds(16) : Milliseconds(48);
        cfg.chunk = Microseconds(50);
        (void)RunSocketImbalance(*s.core, s.policy, cfg);
      }));

  // ---- large sharded machines: the multitenant datacenter workload -------
  // The flat rows are the true single-threaded engine (K=1 fast path) on the
  // whole box; the _s*t* rows shard per NUMA node and vary host threads.
  // t1-vs-t4 event counts and fingerprints are asserted identical inside
  // MeasureMt; t4-vs-flat throughput is the speedup gate below.
  const MachineSpec m128 = MachineSpec::FourNode128();
  const MachineSpec m256 = MachineSpec::EightNode256();
  out.push_back(MeasureMt("mt128_flat", MtConfig(m128, 1, 1, quick)));
  out.push_back(MeasureMt("mt128_s4t1", MtConfig(m128, 4, 1, quick)));
  out.push_back(MeasureMt("mt128_s4t4", MtConfig(m128, 4, 4, quick)));
  out.push_back(MeasureMt("mt256_flat", MtConfig(m256, 1, 1, quick)));
  out.push_back(MeasureMt("mt256_s8t1", MtConfig(m256, 8, 1, quick)));
  out.push_back(MeasureMt("mt256_s8t4", MtConfig(m256, 8, 4, quick)));

  // Adaptive-epoch rows (ISSUE 8): same machines, 100 us cross-node latency,
  // controller widening the window from committed traffic. The static rows
  // above stay as the baseline column.
  out.push_back(MeasureMt("mt128_s4t4a", MtAdaptiveConfig(m128, 4, 4, quick)));
  out.push_back(MeasureMt("mt256_flata", MtAdaptiveConfig(m256, 1, 1, quick)));
  out.push_back(MeasureMt("mt256_s8t1a", MtAdaptiveConfig(m256, 8, 1, quick)));
  out.push_back(MeasureMt("mt256_s8t4a", MtAdaptiveConfig(m256, 8, 4, quick)));

  // Heavy-tailed multitenant arrivals: Pareto inter-arrival gaps, mean-matched
  // to the Poisson rows' load. Exercises bursty queue depth on the sharded
  // engine.
  {
    MultitenantConfig heavy = MtConfig(m128, 4, 4, quick);
    heavy.arrival = ArrivalDist::kPareto;
    heavy.pareto_alpha = 1.5;
    out.push_back(MeasureMt("mt128_s4t4h", heavy));
  }

  return out;
}

// ---- Shard speedup gate ----------------------------------------------------

double EventsPerSecOf(const std::vector<PerfResult>& results, const std::string& name) {
  for (const PerfResult& r : results) {
    if (r.name == name) {
      return r.events_per_sec();
    }
  }
  return 0.0;
}

// Speedup gates on the 256-CPU config: static epochs must keep the ISSUE 7
// >= 1.5x bound, adaptive epochs must reach the raised ISSUE 8 >= 1.8x
// bound (the controller widens 20 us -> 100 us, cutting barrier count ~5x).
//
// Both bounds need >= 4 real hardware threads. On smaller hosts the gate
// skips — but *loudly*: a skip is printed, recorded in the JSON output
// (config "mt256_gate", metric "gate_skipped" = 1), and turned into a hard
// failure under --require-speedup-gate, which the dedicated multi-core CI
// job passes so the gate can never be silently skipped fleet-wide.
int CheckShardSpeedup(const std::vector<PerfResult>& results, BenchJson* json,
                      bool require_gate) {
  struct Gate {
    const char* label;
    const char* flat;
    const char* t4;
    double bound;
  };
  const Gate gates[] = {
      {"static", "mt256_flat", "mt256_s8t4", 1.5},
      {"adaptive", "mt256_flata", "mt256_s8t4a", 1.8},
  };
  const unsigned hc = std::thread::hardware_concurrency();
  const bool enforceable = hc >= 4;
  int failures = 0;
  for (const Gate& g : gates) {
    const double flat = EventsPerSecOf(results, g.flat);
    const double t4 = EventsPerSecOf(results, g.t4);
    if (flat <= 0.0 || t4 <= 0.0) {
      continue;  // configs not run
    }
    const double speedup = t4 / flat;
    std::printf("shard speedup [%s] (%s vs %s): %.2fx, bound %.1fx, %u-core host\n",
                g.label, g.t4, g.flat, speedup, g.bound, hc);
    json->Row(std::string("mt256_gate_") + g.label, "shard_speedup", speedup, 11);
    json->Row(std::string("mt256_gate_") + g.label, "gate_skipped", enforceable ? 0.0 : 1.0,
              11);
    if (!enforceable) {
      if (require_gate) {
        std::fprintf(stderr,
                     "GATE FAILURE [%s]: --require-speedup-gate on a %u-thread host; "
                     "run this gate on >= 4 hardware threads\n",
                     g.label, hc);
        ++failures;
      } else {
        std::printf("SKIPPING shard speedup gate [%s]: host has %u hardware threads (< 4); "
                    "the >=%.1fx bound is only enforceable with real parallelism "
                    "(recorded as gate_skipped=1 in --json)\n",
                    g.label, hc, g.bound);
      }
      continue;
    }
    if (speedup < g.bound) {
      std::fprintf(stderr, "REGRESSION shard speedup [%s]: %.2fx < %.1fx (%s vs %s)\n",
                   g.label, speedup, g.bound, g.t4, g.flat);
      ++failures;
    }
  }
  return failures;
}

// ---- Baseline comparison --------------------------------------------------
// Parses the flat rows BenchJson writes (one object per line) without a JSON
// library: good enough because we only ever read files we wrote.

struct BaselineRow {
  std::string config;
  std::string metric;
  double value = 0.0;
};

bool ExtractField(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\": \"";
  const size_t start = line.find(needle);
  if (start == std::string::npos) {
    return false;
  }
  const size_t vstart = start + needle.size();
  const size_t vend = line.find('"', vstart);
  if (vend == std::string::npos) {
    return false;
  }
  *out = line.substr(vstart, vend - vstart);
  return true;
}

bool LoadBaseline(const std::string& path, std::vector<BaselineRow>* rows) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    BaselineRow row;
    if (!ExtractField(line, "config", &row.config) ||
        !ExtractField(line, "metric", &row.metric)) {
      continue;
    }
    const size_t vpos = line.find("\"value\": ");
    if (vpos == std::string::npos) {
      continue;
    }
    row.value = std::strtod(line.c_str() + vpos + std::strlen("\"value\": "), nullptr);
    rows->push_back(row);
  }
  return true;
}

double BaselineValue(const std::vector<BaselineRow>& rows, const std::string& config,
                     const std::string& metric, bool* found) {
  for (const BaselineRow& r : rows) {
    if (r.config == config && r.metric == metric) {
      *found = true;
      return r.value;
    }
  }
  *found = false;
  return 0.0;
}

// Returns the number of regressions beyond tolerance. Every metric is gated,
// each with the comparison direction that makes sense for it:
//   events           exact match — the simulation is deterministic, so any
//                    drift means behaviour changed, not just got slower
//   events_per_sec   lower bound (relative tolerance)
//   ns_per_event     upper bound (relative tolerance)
//   allocs_per_event upper bound (relative tolerance + small absolute slack,
//                    so a near-zero baseline is not impossibly tight)
// A config present in the results but missing from the baseline fails the
// check: new configs must land with baseline rows. The reverse also fails:
// a baseline config or count-type prof_* row the results no longer emit is a
// silently retired gate (exactly how the cascade-rate blind spot happened —
// a renamed counter would otherwise just stop being checked).
int CheckAgainstBaseline(const std::vector<PerfResult>& results, const std::string& path,
                         double max_regress) {
  std::vector<BaselineRow> baseline;
  if (!LoadBaseline(path, &baseline)) {
    std::fprintf(stderr, "bench_simperf: cannot read baseline %s\n", path.c_str());
    return 1;
  }
  int failures = 0;
  for (const PerfResult& r : results) {
    bool found = false;
    const double base_events = BaselineValue(baseline, r.name, "events", &found);
    if (!found) {
      std::fprintf(stderr, "MISSING BASELINE %s: regenerate %s\n", r.name.c_str(),
                   path.c_str());
      ++failures;
      continue;
    }
    if (static_cast<double>(r.events) != base_events) {
      std::fprintf(stderr, "REGRESSION %s events: %llu vs baseline %.0f (determinism)\n",
                   r.name.c_str(), static_cast<unsigned long long>(r.events), base_events);
      ++failures;
    }
    const double base_eps = BaselineValue(baseline, r.name, "events_per_sec", &found);
    if (found && r.events_per_sec() < base_eps * (1.0 - max_regress)) {
      std::fprintf(stderr,
                   "REGRESSION %s events_per_sec: %.0f vs baseline %.0f (-%.1f%%)\n",
                   r.name.c_str(), r.events_per_sec(), base_eps,
                   (1.0 - r.events_per_sec() / base_eps) * 100.0);
      ++failures;
    }
    const double base_npe = BaselineValue(baseline, r.name, "ns_per_event", &found);
    if (found && base_npe > 0 && r.ns_per_event() > base_npe * (1.0 + max_regress)) {
      std::fprintf(stderr, "REGRESSION %s ns_per_event: %.1f vs baseline %.1f (+%.1f%%)\n",
                   r.name.c_str(), r.ns_per_event(), base_npe,
                   (r.ns_per_event() / base_npe - 1.0) * 100.0);
      ++failures;
    }
    const double base_ape = BaselineValue(baseline, r.name, "allocs_per_event", &found);
    if (found && r.allocs_per_event() > base_ape * (1.0 + max_regress) + 0.25) {
      std::fprintf(stderr,
                   "REGRESSION %s allocs_per_event: %.3f vs baseline %.3f\n",
                   r.name.c_str(), r.allocs_per_event(), base_ape);
      ++failures;
    }
    // Subsystem profile counters: count-type prof_* rows are pure functions
    // of the simulation, so they are compared exactly — a drift does not just
    // say "slower", it names the subsystem (wheel cascades, slab growth,
    // arena chunks, epoch barriers, controller decisions) that regressed.
    // Wall-clock *_ns rows are host-dependent and skipped.
    for (const auto& [counter, value] : r.counters) {
      if (counter.size() > 3 && counter.compare(counter.size() - 3, 3, "_ns") == 0) {
        continue;
      }
      const double base = BaselineValue(baseline, r.name, counter, &found);
      if (!found) {
        std::fprintf(stderr, "MISSING BASELINE %s %s: regenerate %s\n", r.name.c_str(),
                     counter.c_str(), path.c_str());
        ++failures;
        continue;
      }
      if (value != base) {
        std::fprintf(stderr, "REGRESSION %s %s: %.0f vs baseline %.0f (deterministic)\n",
                     r.name.c_str(), counter.c_str(), value, base);
        ++failures;
      }
    }
  }
  // Reverse direction: every baseline config must still be produced, and
  // every count-type baseline prof_* row of a produced config must still be
  // emitted under the same name.
  for (const BaselineRow& b : baseline) {
    const PerfResult* result = nullptr;
    for (const PerfResult& r : results) {
      if (r.name == b.config) {
        result = &r;
        break;
      }
    }
    if (b.metric == "events") {
      if (result == nullptr) {
        std::fprintf(stderr,
                     "STALE BASELINE %s: config no longer produced; regenerate %s\n",
                     b.config.c_str(), path.c_str());
        ++failures;
      }
      continue;
    }
    if (result == nullptr || b.metric.compare(0, 5, "prof_") != 0 ||
        (b.metric.size() > 3 && b.metric.compare(b.metric.size() - 3, 3, "_ns") == 0)) {
      continue;
    }
    bool emitted = false;
    for (const auto& [counter, value] : result->counters) {
      if (counter == b.metric) {
        emitted = true;
        break;
      }
    }
    if (!emitted) {
      std::fprintf(stderr,
                   "STALE BASELINE %s %s: counter no longer emitted; regenerate %s\n",
                   b.config.c_str(), b.metric.c_str(), path.c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("baseline check: OK (tolerance %.0f%%, baseline %s)\n", max_regress * 100.0,
                path.c_str());
  }
  return failures;
}

// Per-config top-5 count-type prof_* rows by value: the hottest cold paths,
// i.e. the next optimisation round's profile-named target.
void PrintProfileTop(const std::vector<PerfResult>& results) {
  std::printf("\nprofile top-5 (count-type prof_* rows per config)\n");
  for (const PerfResult& r : results) {
    std::vector<std::pair<std::string, double>> rows;
    for (const auto& [counter, value] : r.counters) {
      if (counter.size() > 3 && counter.compare(counter.size() - 3, 3, "_ns") == 0) {
        continue;  // wall-clock rows are not optimisation targets by count
      }
      rows.emplace_back(counter, value);
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) { return a.second > b.second; });
    std::printf("  %s:\n", r.name.c_str());
    for (size_t i = 0; i < rows.size() && i < 5; ++i) {
      std::printf("    %-28s %14.0f\n", rows[i].first.c_str(), rows[i].second);
    }
  }
}

int Run(int argc, char** argv) {
  const bool quick = BenchHasFlag(argc, argv, "--quick");
  if (const char* reps = BenchArgValue(argc, argv, "--reps")) {
    g_reps = std::atoi(reps);
  }
  BenchJson json("bench_simperf", argc, argv);

  std::printf("Simulator hot-path microbenchmark (%s mode)\n", quick ? "quick" : "full");
  std::printf("%-12s %8s %14s %14s %12s %14s\n", "workload", "shrdthr", "events",
              "events/sec", "ns/event", "allocs/event");

  const std::vector<PerfResult> results = RunAll(quick);
  for (const PerfResult& r : results) {
    char shard_col[8] = "-";
    if (r.shard_threads > 0) {
      std::snprintf(shard_col, sizeof(shard_col), "%d", r.shard_threads);
    }
    std::printf("%-12s %8s %14llu %14.0f %12.1f %14.3f\n", r.name.c_str(), shard_col,
                static_cast<unsigned long long>(r.events), r.events_per_sec(),
                r.ns_per_event(), r.allocs_per_event());
    json.Row(r.name, "events_per_sec", r.events_per_sec(), r.seed);
    json.Row(r.name, "ns_per_event", r.ns_per_event(), r.seed);
    json.Row(r.name, "allocs_per_event", r.allocs_per_event(), r.seed);
    json.Row(r.name, "events", static_cast<double>(r.events), r.seed);
    if (r.shard_threads > 0) {
      json.Row(r.name, "shard_threads", static_cast<double>(r.shard_threads), r.seed);
    }
    for (const auto& [counter, value] : r.counters) {
      json.Row(r.name, counter, value, r.seed);
    }
  }

  if (BenchHasFlag(argc, argv, "--profile-top")) {
    PrintProfileTop(results);
  }

  int failures = CheckShardSpeedup(results, &json,
                                   BenchHasFlag(argc, argv, "--require-speedup-gate"));
  json.Write();
  if (const char* baseline = BenchArgValue(argc, argv, "--check-against")) {
    double max_regress = 0.25;
    if (const char* tol = BenchArgValue(argc, argv, "--max-regress")) {
      max_regress = std::strtod(tol, nullptr);
    }
    failures += CheckAgainstBaseline(results, baseline, max_regress);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace enoki

int main(int argc, char** argv) { return enoki::Run(argc, argv); }
