// Fault-containment cost: what does a watchdog trip cost the machine,
// compared with the planned live upgrade it is built on top of?
//
// The fallback path reuses the upgrade quiesce machinery (swap + per-CPU
// drain) and then re-policies every module task onto CFS, so its pause is
// the upgrade pause plus a per-task re-policy term. We trip the watchdog
// manually (AbortModule) at a fixed instant while schbench runs, read the
// pause out of the CrashReport, and put it next to a live upgrade measured
// on an identical stack. Shape check: both grow ~linearly with core count;
// fallback adds a component linear in the number of rescued tasks.
//
// The third column measures the middle rung of the recovery ladder: a
// supervised restart (backoff + fresh instance + checkpoint restore +
// wakeup re-injection), reported as trip-to-reinstall latency. It sits
// between the upgrade pause and a full fallback — the cost of keeping the
// custom policy instead of surrendering to CFS.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/fault/supervisor.h"
#include "src/sched/wfq.h"
#include "src/workloads/schbench.h"

namespace enoki {
namespace {

struct Result {
  double upgrade_pause_us = 0;
  double restart_latency_us = 0;
  double fallback_pause_us = 0;
  uint64_t tasks_repolicied = 0;
  // Generation-ring telemetry from the supervised restart: how deep into the
  // ring the restore walked (1 = newest generation loaded cleanly) and the
  // simulated work window lost — trip time minus the loaded generation's
  // capture time, bounded by the periodic-checkpoint cadence.
  uint64_t restore_depth = 0;
  double work_lost_us = 0;
};

Result Measure(MachineSpec spec, int workers) {
  SchbenchConfig cfg;
  cfg.workers_per_thread = workers;
  cfg.warmup = Milliseconds(500);
  cfg.runtime = Seconds(2);

  Result r;
  {
    // Live upgrade on a healthy module: the baseline interruption.
    Stack s = MakeEnokiStack(std::make_unique<WfqSched>(0), spec);
    EnokiRuntime* runtime = s.runtime.get();
    s.core->loop().ScheduleAfter(Seconds(1), [runtime, &r] {
      auto report = runtime->Upgrade(std::make_unique<WfqSched>(0));
      if (report.ok) r.upgrade_pause_us = ToMicroseconds(report.pause_ns);
    });
    RunSchbench(*s.core, s.policy, cfg);
  }
  {
    // Supervised restart at the same instant: backoff + rebuild + restore.
    // A periodic cadence keeps fresh generations in the ring, so the work
    // lost at restore is bounded by the interval rather than by how long ago
    // the last upgrade happened.
    Stack s = MakeEnokiStack(std::make_unique<WfqSched>(0), spec);
    EnokiRuntime* runtime = s.runtime.get();
    runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
    runtime->EnableSupervisor(SupervisorConfig{}, [] { return std::make_unique<WfqSched>(0); });
    runtime->SetCheckpointInterval(Milliseconds(10));
    s.core->loop().ScheduleAfter(Seconds(1), [runtime] {
      runtime->AbortModule("bench: simulated module failure");
    });
    RunSchbench(*s.core, s.policy, cfg);
    if (!runtime->supervisor()->timeline().empty()) {
      const RestartEvent& ev = runtime->supervisor()->timeline().front();
      r.restart_latency_us = ToMicroseconds(ev.restarted_at - ev.tripped_at);
      r.restore_depth = runtime->last_restore_depth();
      r.work_lost_us = ToMicroseconds(runtime->last_restore_age_ns());
    }
  }
  {
    // Watchdog trip at the same instant: quiesce + rescue every task.
    Stack s = MakeEnokiStack(std::make_unique<WfqSched>(0), spec);
    EnokiRuntime* runtime = s.runtime.get();
    runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
    s.core->loop().ScheduleAfter(Seconds(1), [runtime] {
      runtime->AbortModule("bench: simulated module failure");
    });
    RunSchbench(*s.core, s.policy, cfg);
    if (runtime->crash_report()) {
      r.fallback_pause_us = ToMicroseconds(runtime->crash_report()->fallback_pause_ns);
      r.tasks_repolicied = runtime->crash_report()->tasks_repolicied;
    }
  }
  return r;
}

void Run() {
  std::printf("Fault containment: watchdog-fallback pause vs live-upgrade pause\n"
              "(schbench running; trip/upgrade fired at t=1s)\n\n");
  std::printf("%-40s %10s %10s %10s %8s %6s %10s\n", "Machine / workload", "upgrade", "restart",
              "fallback", "tasks", "depth", "lost");
  struct Case {
    MachineSpec spec;
    int workers;
  };
  const Case cases[] = {
      {MachineSpec::OneSocket8(), 2},
      {MachineSpec::OneSocket8(), 16},
      {MachineSpec::TwoSocket80(), 2},
      {MachineSpec::TwoSocket80(), 40},
  };
  for (const Case& c : cases) {
    const Result r = Measure(c.spec, c.workers);
    std::printf("%-33s 2x%-3d %8.1fus %8.1fus %8.1fus %8llu %6llu %8.1fus\n", c.spec.name.c_str(),
                c.workers, r.upgrade_pause_us, r.restart_latency_us, r.fallback_pause_us,
                static_cast<unsigned long long>(r.tasks_repolicied),
                static_cast<unsigned long long>(r.restore_depth), r.work_lost_us);
  }
  std::printf("\nShape check: all three grow ~linearly with core count; the fallback\n"
              "pause exceeds the upgrade pause by ~%d ns per rescued task, so crashing a\n"
              "module stays in the same cost class as upgrading it. The supervised\n"
              "restart latency is dominated by its deliberate backoff (%d ns on the\n"
              "first attempt) — the recovery work itself costs about one upgrade.\n"
              "depth is how deep the restore walked the generation ring (1 = the\n"
              "newest generation loaded cleanly); lost is the simulated work window\n"
              "discarded at restore, bounded by the 10ms periodic-checkpoint cadence\n"
              "rather than by the time since the last upgrade.\n",
              static_cast<int>(SimCosts{}.fallback_pertask_ns),
              static_cast<int>(SupervisorConfig{}.backoff_initial_ns));
}

}  // namespace
}  // namespace enoki

int main() {
  enoki::Run();
  return 0;
}
