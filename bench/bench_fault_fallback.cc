// Fault-containment cost: what does a watchdog trip cost the machine,
// compared with the planned live upgrade it is built on top of?
//
// The fallback path reuses the upgrade quiesce machinery (swap + per-CPU
// drain) and then re-policies every module task onto CFS, so its pause is
// the upgrade pause plus a per-task re-policy term. We trip the watchdog
// manually (AbortModule) at a fixed instant while schbench runs, read the
// pause out of the CrashReport, and put it next to a live upgrade measured
// on an identical stack. Shape check: both grow ~linearly with core count;
// fallback adds a component linear in the number of rescued tasks.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/sched/wfq.h"
#include "src/workloads/schbench.h"

namespace enoki {
namespace {

struct Result {
  double upgrade_pause_us = 0;
  double fallback_pause_us = 0;
  uint64_t tasks_repolicied = 0;
};

Result Measure(MachineSpec spec, int workers) {
  SchbenchConfig cfg;
  cfg.workers_per_thread = workers;
  cfg.warmup = Milliseconds(500);
  cfg.runtime = Seconds(2);

  Result r;
  {
    // Live upgrade on a healthy module: the baseline interruption.
    Stack s = MakeEnokiStack(std::make_unique<WfqSched>(0), spec);
    EnokiRuntime* runtime = s.runtime.get();
    s.core->loop().ScheduleAfter(Seconds(1), [runtime, &r] {
      auto report = runtime->Upgrade(std::make_unique<WfqSched>(0));
      if (report.ok) r.upgrade_pause_us = ToMicroseconds(report.pause_ns);
    });
    RunSchbench(*s.core, s.policy, cfg);
  }
  {
    // Watchdog trip at the same instant: quiesce + rescue every task.
    Stack s = MakeEnokiStack(std::make_unique<WfqSched>(0), spec);
    EnokiRuntime* runtime = s.runtime.get();
    runtime->EnableWatchdog(WatchdogConfig{}, s.cfs_policy);
    s.core->loop().ScheduleAfter(Seconds(1), [runtime] {
      runtime->AbortModule("bench: simulated module failure");
    });
    RunSchbench(*s.core, s.policy, cfg);
    if (runtime->crash_report()) {
      r.fallback_pause_us = ToMicroseconds(runtime->crash_report()->fallback_pause_ns);
      r.tasks_repolicied = runtime->crash_report()->tasks_repolicied;
    }
  }
  return r;
}

void Run() {
  std::printf("Fault containment: watchdog-fallback pause vs live-upgrade pause\n"
              "(schbench running; trip/upgrade fired at t=1s)\n\n");
  std::printf("%-40s %10s %10s %8s\n", "Machine / workload", "upgrade", "fallback", "tasks");
  struct Case {
    MachineSpec spec;
    int workers;
  };
  const Case cases[] = {
      {MachineSpec::OneSocket8(), 2},
      {MachineSpec::OneSocket8(), 16},
      {MachineSpec::TwoSocket80(), 2},
      {MachineSpec::TwoSocket80(), 40},
  };
  for (const Case& c : cases) {
    const Result r = Measure(c.spec, c.workers);
    std::printf("%-33s 2x%-3d %8.1fus %8.1fus %8llu\n", c.spec.name.c_str(), c.workers,
                r.upgrade_pause_us, r.fallback_pause_us,
                static_cast<unsigned long long>(r.tasks_repolicied));
  }
  std::printf("\nShape check: both pauses grow ~linearly with core count; the fallback\n"
              "pause exceeds the upgrade pause by ~%d ns per rescued task, so crashing a\n"
              "module stays in the same cost class as upgrading it.\n",
              static_cast<int>(SimCosts{}.fallback_pertask_ns));
}

}  // namespace
}  // namespace enoki

int main() {
  enoki::Run();
  return 0;
}
