// Reproduces Figure 3: tail latency of requests to a memcached-like server
// under a Mutilate-style ETC load, comparing baseline memcached on CFS,
// original Arachne (userspace core arbiter over sockets + cpuset), and
// Arachne with the Enoki in-kernel core arbiter (bidirectional hint queues).
//
// Paper shape: the two Arachne variants track each other closely and beat
// CFS at high load; both autoscale between 2 and 7 cores.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/sched/arbiter.h"
#include "src/workloads/memcached.h"

namespace enoki {
namespace {

McConfig BaseConfig(double rate) {
  McConfig cfg;
  cfg.rate_per_sec = rate;
  cfg.warmup = Milliseconds(500);
  cfg.runtime = Seconds(3);
  return cfg;
}

struct Point {
  double kreq = 0;
  Duration p99 = 0;
  double cores = 0;
};

Point RunCfs(double rate) {
  Stack s = MakeCfsStack();
  McConfig cfg = BaseConfig(rate);
  cfg.cfs_policy = s.cfs_policy;
  auto r = RunMemcached(*s.core, cfg);
  return {r.achieved_kreq_per_sec, r.p99, r.avg_cores};
}

Point RunArachne(double rate) {
  Stack s = MakeCfsStack();
  McConfig cfg = BaseConfig(rate);
  cfg.mode = McMode::kArachne;
  cfg.cfs_policy = s.cfs_policy;
  auto r = RunMemcached(*s.core, cfg);
  return {r.achieved_kreq_per_sec, r.p99, r.avg_cores};
}

Point RunEnokiArachne(double rate) {
  Stack s = MakeEnokiStack(std::make_unique<ArbiterSched>(0, 1, 7));
  McConfig cfg = BaseConfig(rate);
  cfg.mode = McMode::kEnokiArachne;
  cfg.cfs_policy = s.cfs_policy;
  cfg.arbiter_policy = s.policy;
  cfg.arbiter_runtime = s.runtime.get();
  cfg.hint_queue = s.runtime->CreateHintQueue(1024);
  cfg.rev_queue = s.runtime->CreateRevQueue(1024);
  auto r = RunMemcached(*s.core, cfg);
  return {r.achieved_kreq_per_sec, r.p99, r.avg_cores};
}

void Run() {
  std::printf("Figure 3: memcached + Mutilate-style ETC load, p99 vs throughput\n");
  std::printf("(Arachne variants autoscale 2-7 cores; CFS baseline uses all 8)\n\n");
  std::printf("%-10s | %-19s | %-26s | %-26s\n", "", "CFS", "Arachne", "Enoki-Arachne");
  std::printf("%-10s | %8s %9s | %8s %9s %6s | %8s %9s %6s\n", "offered", "kreq/s", "p99(us)",
              "kreq/s", "p99(us)", "cores", "kreq/s", "p99(us)", "cores");
  const std::vector<double> rates = {50e3, 100e3, 150e3, 200e3, 250e3, 300e3, 350e3};
  for (double rate : rates) {
    const Point c = RunCfs(rate);
    const Point a = RunArachne(rate);
    const Point e = RunEnokiArachne(rate);
    std::printf("%8.0fk | %8.1f %9.1f | %8.1f %9.1f %6.1f | %8.1f %9.1f %6.1f\n", rate / 1e3,
                c.kreq, ToMicroseconds(c.p99), a.kreq, ToMicroseconds(a.p99), a.cores, e.kreq,
                ToMicroseconds(e.p99), e.cores);
  }
  std::printf("\nShape check: Enoki-Arachne ~ Arachne, both below CFS p99 at high load.\n");
}

}  // namespace
}  // namespace enoki

int main() {
  enoki::Run();
  return 0;
}
