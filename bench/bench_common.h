// Shared experiment-stack builders for the paper-reproduction benchmarks.
//
// Each bench binary builds a "stack": a SchedCore with the scheduling
// classes of one experimental configuration registered in priority order
// (agents > Enoki/ghOSt policy > CFS), mirroring how the paper's testbed
// composes schedulers.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "src/enoki/runtime.h"
#include "src/sched/cfs.h"
#include "src/sched/ghost.h"
#include "src/simkernel/sched_core.h"

namespace enoki {

struct Stack {
  std::unique_ptr<SchedCore> core;
  std::unique_ptr<CfsClass> cfs;
  std::unique_ptr<EnokiRuntime> runtime;   // set for Enoki stacks
  std::unique_ptr<AgentClass> agents;      // set for ghOSt stacks
  std::unique_ptr<GhostClass> ghost;       // set for ghOSt stacks
  int policy = 0;      // the experiment's primary scheduling policy
  int cfs_policy = 0;  // the CFS policy id on this stack
};

// CFS-only stack.
inline Stack MakeCfsStack(MachineSpec spec = MachineSpec::OneSocket8(),
                          SimCosts costs = SimCosts{}) {
  Stack s;
  s.core = std::make_unique<SchedCore>(spec, costs);
  s.cfs = std::make_unique<CfsClass>();
  s.policy = s.core->RegisterClass(s.cfs.get());
  s.cfs_policy = s.policy;
  return s;
}

// Enoki module above CFS.
inline Stack MakeEnokiStack(std::unique_ptr<EnokiSched> module,
                            MachineSpec spec = MachineSpec::OneSocket8(),
                            SimCosts costs = SimCosts{}) {
  Stack s;
  s.core = std::make_unique<SchedCore>(spec, costs);
  s.runtime = std::make_unique<EnokiRuntime>(std::move(module));
  s.cfs = std::make_unique<CfsClass>();
  s.policy = s.core->RegisterClass(s.runtime.get());
  s.cfs_policy = s.core->RegisterClass(s.cfs.get());
  return s;
}

// ghOSt: agents > ghost > CFS. `agent_cpu` is the dedicated core for
// SOL/Shinjuku agents (ignored for per-CPU FIFO).
inline Stack MakeGhostStack(GhostClass::Mode mode, CpuMask worker_cpus, int agent_cpu,
                            MachineSpec spec = MachineSpec::OneSocket8(),
                            SimCosts costs = SimCosts{}) {
  Stack s;
  s.core = std::make_unique<SchedCore>(spec, costs);
  s.agents = std::make_unique<AgentClass>();
  s.ghost = std::make_unique<GhostClass>(mode, worker_cpus);
  s.cfs = std::make_unique<CfsClass>();
  const int agent_policy = s.core->RegisterClass(s.agents.get());
  s.policy = s.core->RegisterClass(s.ghost.get());
  s.cfs_policy = s.core->RegisterClass(s.cfs.get());
  s.ghost->SpawnAgents(agent_policy, agent_cpu);
  return s;
}

}  // namespace enoki

#endif  // BENCH_BENCH_COMMON_H_
